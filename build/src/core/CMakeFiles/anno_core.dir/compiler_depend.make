# Empty compiler generated dependencies file for anno_core.
# This may be replaced when dependencies are built.
