file(REMOVE_RECURSE
  "CMakeFiles/anno_core.dir/anno_codec.cpp.o"
  "CMakeFiles/anno_core.dir/anno_codec.cpp.o.d"
  "CMakeFiles/anno_core.dir/annotate.cpp.o"
  "CMakeFiles/anno_core.dir/annotate.cpp.o.d"
  "CMakeFiles/anno_core.dir/annotation.cpp.o"
  "CMakeFiles/anno_core.dir/annotation.cpp.o.d"
  "CMakeFiles/anno_core.dir/roi.cpp.o"
  "CMakeFiles/anno_core.dir/roi.cpp.o.d"
  "CMakeFiles/anno_core.dir/runtime.cpp.o"
  "CMakeFiles/anno_core.dir/runtime.cpp.o.d"
  "CMakeFiles/anno_core.dir/scene_detect.cpp.o"
  "CMakeFiles/anno_core.dir/scene_detect.cpp.o.d"
  "CMakeFiles/anno_core.dir/sketch.cpp.o"
  "CMakeFiles/anno_core.dir/sketch.cpp.o.d"
  "libanno_core.a"
  "libanno_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anno_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
