file(REMOVE_RECURSE
  "libanno_core.a"
)
