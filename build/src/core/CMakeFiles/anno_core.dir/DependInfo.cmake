
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/anno_codec.cpp" "src/core/CMakeFiles/anno_core.dir/anno_codec.cpp.o" "gcc" "src/core/CMakeFiles/anno_core.dir/anno_codec.cpp.o.d"
  "/root/repo/src/core/annotate.cpp" "src/core/CMakeFiles/anno_core.dir/annotate.cpp.o" "gcc" "src/core/CMakeFiles/anno_core.dir/annotate.cpp.o.d"
  "/root/repo/src/core/annotation.cpp" "src/core/CMakeFiles/anno_core.dir/annotation.cpp.o" "gcc" "src/core/CMakeFiles/anno_core.dir/annotation.cpp.o.d"
  "/root/repo/src/core/roi.cpp" "src/core/CMakeFiles/anno_core.dir/roi.cpp.o" "gcc" "src/core/CMakeFiles/anno_core.dir/roi.cpp.o.d"
  "/root/repo/src/core/runtime.cpp" "src/core/CMakeFiles/anno_core.dir/runtime.cpp.o" "gcc" "src/core/CMakeFiles/anno_core.dir/runtime.cpp.o.d"
  "/root/repo/src/core/scene_detect.cpp" "src/core/CMakeFiles/anno_core.dir/scene_detect.cpp.o" "gcc" "src/core/CMakeFiles/anno_core.dir/scene_detect.cpp.o.d"
  "/root/repo/src/core/sketch.cpp" "src/core/CMakeFiles/anno_core.dir/sketch.cpp.o" "gcc" "src/core/CMakeFiles/anno_core.dir/sketch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compensate/CMakeFiles/anno_compensate.dir/DependInfo.cmake"
  "/root/repo/build/src/display/CMakeFiles/anno_display.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/anno_media.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
