file(REMOVE_RECURSE
  "libanno_display.a"
)
