file(REMOVE_RECURSE
  "CMakeFiles/anno_display.dir/characterize.cpp.o"
  "CMakeFiles/anno_display.dir/characterize.cpp.o.d"
  "CMakeFiles/anno_display.dir/device.cpp.o"
  "CMakeFiles/anno_display.dir/device.cpp.o.d"
  "CMakeFiles/anno_display.dir/emissive.cpp.o"
  "CMakeFiles/anno_display.dir/emissive.cpp.o.d"
  "CMakeFiles/anno_display.dir/panel.cpp.o"
  "CMakeFiles/anno_display.dir/panel.cpp.o.d"
  "CMakeFiles/anno_display.dir/profile_io.cpp.o"
  "CMakeFiles/anno_display.dir/profile_io.cpp.o.d"
  "CMakeFiles/anno_display.dir/quantize.cpp.o"
  "CMakeFiles/anno_display.dir/quantize.cpp.o.d"
  "CMakeFiles/anno_display.dir/transfer.cpp.o"
  "CMakeFiles/anno_display.dir/transfer.cpp.o.d"
  "libanno_display.a"
  "libanno_display.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anno_display.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
