# Empty dependencies file for anno_display.
# This may be replaced when dependencies are built.
