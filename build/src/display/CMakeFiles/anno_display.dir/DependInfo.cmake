
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/display/characterize.cpp" "src/display/CMakeFiles/anno_display.dir/characterize.cpp.o" "gcc" "src/display/CMakeFiles/anno_display.dir/characterize.cpp.o.d"
  "/root/repo/src/display/device.cpp" "src/display/CMakeFiles/anno_display.dir/device.cpp.o" "gcc" "src/display/CMakeFiles/anno_display.dir/device.cpp.o.d"
  "/root/repo/src/display/emissive.cpp" "src/display/CMakeFiles/anno_display.dir/emissive.cpp.o" "gcc" "src/display/CMakeFiles/anno_display.dir/emissive.cpp.o.d"
  "/root/repo/src/display/panel.cpp" "src/display/CMakeFiles/anno_display.dir/panel.cpp.o" "gcc" "src/display/CMakeFiles/anno_display.dir/panel.cpp.o.d"
  "/root/repo/src/display/profile_io.cpp" "src/display/CMakeFiles/anno_display.dir/profile_io.cpp.o" "gcc" "src/display/CMakeFiles/anno_display.dir/profile_io.cpp.o.d"
  "/root/repo/src/display/quantize.cpp" "src/display/CMakeFiles/anno_display.dir/quantize.cpp.o" "gcc" "src/display/CMakeFiles/anno_display.dir/quantize.cpp.o.d"
  "/root/repo/src/display/transfer.cpp" "src/display/CMakeFiles/anno_display.dir/transfer.cpp.o" "gcc" "src/display/CMakeFiles/anno_display.dir/transfer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/media/CMakeFiles/anno_media.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
