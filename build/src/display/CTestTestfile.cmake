# CMake generated Testfile for 
# Source directory: /root/repo/src/display
# Build directory: /root/repo/build/src/display
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
