
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/battery.cpp" "src/power/CMakeFiles/anno_power.dir/battery.cpp.o" "gcc" "src/power/CMakeFiles/anno_power.dir/battery.cpp.o.d"
  "/root/repo/src/power/daq.cpp" "src/power/CMakeFiles/anno_power.dir/daq.cpp.o" "gcc" "src/power/CMakeFiles/anno_power.dir/daq.cpp.o.d"
  "/root/repo/src/power/dvfs.cpp" "src/power/CMakeFiles/anno_power.dir/dvfs.cpp.o" "gcc" "src/power/CMakeFiles/anno_power.dir/dvfs.cpp.o.d"
  "/root/repo/src/power/power.cpp" "src/power/CMakeFiles/anno_power.dir/power.cpp.o" "gcc" "src/power/CMakeFiles/anno_power.dir/power.cpp.o.d"
  "/root/repo/src/power/trace.cpp" "src/power/CMakeFiles/anno_power.dir/trace.cpp.o" "gcc" "src/power/CMakeFiles/anno_power.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/display/CMakeFiles/anno_display.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/anno_media.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
