file(REMOVE_RECURSE
  "libanno_power.a"
)
