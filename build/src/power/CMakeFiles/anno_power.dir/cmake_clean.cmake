file(REMOVE_RECURSE
  "CMakeFiles/anno_power.dir/battery.cpp.o"
  "CMakeFiles/anno_power.dir/battery.cpp.o.d"
  "CMakeFiles/anno_power.dir/daq.cpp.o"
  "CMakeFiles/anno_power.dir/daq.cpp.o.d"
  "CMakeFiles/anno_power.dir/dvfs.cpp.o"
  "CMakeFiles/anno_power.dir/dvfs.cpp.o.d"
  "CMakeFiles/anno_power.dir/power.cpp.o"
  "CMakeFiles/anno_power.dir/power.cpp.o.d"
  "CMakeFiles/anno_power.dir/trace.cpp.o"
  "CMakeFiles/anno_power.dir/trace.cpp.o.d"
  "libanno_power.a"
  "libanno_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anno_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
