# Empty compiler generated dependencies file for anno_power.
# This may be replaced when dependencies are built.
