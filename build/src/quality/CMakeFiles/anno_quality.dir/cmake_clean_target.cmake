file(REMOVE_RECURSE
  "libanno_quality.a"
)
