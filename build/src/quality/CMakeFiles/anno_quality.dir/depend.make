# Empty dependencies file for anno_quality.
# This may be replaced when dependencies are built.
