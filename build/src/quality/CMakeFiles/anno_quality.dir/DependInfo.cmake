
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quality/camera.cpp" "src/quality/CMakeFiles/anno_quality.dir/camera.cpp.o" "gcc" "src/quality/CMakeFiles/anno_quality.dir/camera.cpp.o.d"
  "/root/repo/src/quality/metrics.cpp" "src/quality/CMakeFiles/anno_quality.dir/metrics.cpp.o" "gcc" "src/quality/CMakeFiles/anno_quality.dir/metrics.cpp.o.d"
  "/root/repo/src/quality/validate.cpp" "src/quality/CMakeFiles/anno_quality.dir/validate.cpp.o" "gcc" "src/quality/CMakeFiles/anno_quality.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/display/CMakeFiles/anno_display.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/anno_media.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
