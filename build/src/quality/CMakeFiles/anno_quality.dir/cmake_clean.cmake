file(REMOVE_RECURSE
  "CMakeFiles/anno_quality.dir/camera.cpp.o"
  "CMakeFiles/anno_quality.dir/camera.cpp.o.d"
  "CMakeFiles/anno_quality.dir/metrics.cpp.o"
  "CMakeFiles/anno_quality.dir/metrics.cpp.o.d"
  "CMakeFiles/anno_quality.dir/validate.cpp.o"
  "CMakeFiles/anno_quality.dir/validate.cpp.o.d"
  "libanno_quality.a"
  "libanno_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anno_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
