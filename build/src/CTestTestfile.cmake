# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("media")
subdirs("display")
subdirs("power")
subdirs("quality")
subdirs("compensate")
subdirs("core")
subdirs("stream")
subdirs("player")
