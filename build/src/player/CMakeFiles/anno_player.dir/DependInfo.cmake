
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/player/adaptive.cpp" "src/player/CMakeFiles/anno_player.dir/adaptive.cpp.o" "gcc" "src/player/CMakeFiles/anno_player.dir/adaptive.cpp.o.d"
  "/root/repo/src/player/baselines.cpp" "src/player/CMakeFiles/anno_player.dir/baselines.cpp.o" "gcc" "src/player/CMakeFiles/anno_player.dir/baselines.cpp.o.d"
  "/root/repo/src/player/experiment.cpp" "src/player/CMakeFiles/anno_player.dir/experiment.cpp.o" "gcc" "src/player/CMakeFiles/anno_player.dir/experiment.cpp.o.d"
  "/root/repo/src/player/integrated.cpp" "src/player/CMakeFiles/anno_player.dir/integrated.cpp.o" "gcc" "src/player/CMakeFiles/anno_player.dir/integrated.cpp.o.d"
  "/root/repo/src/player/oled.cpp" "src/player/CMakeFiles/anno_player.dir/oled.cpp.o" "gcc" "src/player/CMakeFiles/anno_player.dir/oled.cpp.o.d"
  "/root/repo/src/player/playback.cpp" "src/player/CMakeFiles/anno_player.dir/playback.cpp.o" "gcc" "src/player/CMakeFiles/anno_player.dir/playback.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/anno_core.dir/DependInfo.cmake"
  "/root/repo/build/src/compensate/CMakeFiles/anno_compensate.dir/DependInfo.cmake"
  "/root/repo/build/src/display/CMakeFiles/anno_display.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/anno_media.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/anno_power.dir/DependInfo.cmake"
  "/root/repo/build/src/quality/CMakeFiles/anno_quality.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
