file(REMOVE_RECURSE
  "libanno_player.a"
)
