# Empty compiler generated dependencies file for anno_player.
# This may be replaced when dependencies are built.
