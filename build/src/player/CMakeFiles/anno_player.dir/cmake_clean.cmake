file(REMOVE_RECURSE
  "CMakeFiles/anno_player.dir/adaptive.cpp.o"
  "CMakeFiles/anno_player.dir/adaptive.cpp.o.d"
  "CMakeFiles/anno_player.dir/baselines.cpp.o"
  "CMakeFiles/anno_player.dir/baselines.cpp.o.d"
  "CMakeFiles/anno_player.dir/experiment.cpp.o"
  "CMakeFiles/anno_player.dir/experiment.cpp.o.d"
  "CMakeFiles/anno_player.dir/integrated.cpp.o"
  "CMakeFiles/anno_player.dir/integrated.cpp.o.d"
  "CMakeFiles/anno_player.dir/oled.cpp.o"
  "CMakeFiles/anno_player.dir/oled.cpp.o.d"
  "CMakeFiles/anno_player.dir/playback.cpp.o"
  "CMakeFiles/anno_player.dir/playback.cpp.o.d"
  "libanno_player.a"
  "libanno_player.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anno_player.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
