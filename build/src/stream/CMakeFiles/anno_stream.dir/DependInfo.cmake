
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/client.cpp" "src/stream/CMakeFiles/anno_stream.dir/client.cpp.o" "gcc" "src/stream/CMakeFiles/anno_stream.dir/client.cpp.o.d"
  "/root/repo/src/stream/loss.cpp" "src/stream/CMakeFiles/anno_stream.dir/loss.cpp.o" "gcc" "src/stream/CMakeFiles/anno_stream.dir/loss.cpp.o.d"
  "/root/repo/src/stream/mux.cpp" "src/stream/CMakeFiles/anno_stream.dir/mux.cpp.o" "gcc" "src/stream/CMakeFiles/anno_stream.dir/mux.cpp.o.d"
  "/root/repo/src/stream/net.cpp" "src/stream/CMakeFiles/anno_stream.dir/net.cpp.o" "gcc" "src/stream/CMakeFiles/anno_stream.dir/net.cpp.o.d"
  "/root/repo/src/stream/proxy.cpp" "src/stream/CMakeFiles/anno_stream.dir/proxy.cpp.o" "gcc" "src/stream/CMakeFiles/anno_stream.dir/proxy.cpp.o.d"
  "/root/repo/src/stream/server.cpp" "src/stream/CMakeFiles/anno_stream.dir/server.cpp.o" "gcc" "src/stream/CMakeFiles/anno_stream.dir/server.cpp.o.d"
  "/root/repo/src/stream/session_sim.cpp" "src/stream/CMakeFiles/anno_stream.dir/session_sim.cpp.o" "gcc" "src/stream/CMakeFiles/anno_stream.dir/session_sim.cpp.o.d"
  "/root/repo/src/stream/traffic.cpp" "src/stream/CMakeFiles/anno_stream.dir/traffic.cpp.o" "gcc" "src/stream/CMakeFiles/anno_stream.dir/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/anno_core.dir/DependInfo.cmake"
  "/root/repo/build/src/compensate/CMakeFiles/anno_compensate.dir/DependInfo.cmake"
  "/root/repo/build/src/display/CMakeFiles/anno_display.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/anno_media.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/anno_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
