file(REMOVE_RECURSE
  "CMakeFiles/anno_stream.dir/client.cpp.o"
  "CMakeFiles/anno_stream.dir/client.cpp.o.d"
  "CMakeFiles/anno_stream.dir/loss.cpp.o"
  "CMakeFiles/anno_stream.dir/loss.cpp.o.d"
  "CMakeFiles/anno_stream.dir/mux.cpp.o"
  "CMakeFiles/anno_stream.dir/mux.cpp.o.d"
  "CMakeFiles/anno_stream.dir/net.cpp.o"
  "CMakeFiles/anno_stream.dir/net.cpp.o.d"
  "CMakeFiles/anno_stream.dir/proxy.cpp.o"
  "CMakeFiles/anno_stream.dir/proxy.cpp.o.d"
  "CMakeFiles/anno_stream.dir/server.cpp.o"
  "CMakeFiles/anno_stream.dir/server.cpp.o.d"
  "CMakeFiles/anno_stream.dir/session_sim.cpp.o"
  "CMakeFiles/anno_stream.dir/session_sim.cpp.o.d"
  "CMakeFiles/anno_stream.dir/traffic.cpp.o"
  "CMakeFiles/anno_stream.dir/traffic.cpp.o.d"
  "libanno_stream.a"
  "libanno_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anno_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
