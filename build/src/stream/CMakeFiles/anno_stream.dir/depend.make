# Empty dependencies file for anno_stream.
# This may be replaced when dependencies are built.
