file(REMOVE_RECURSE
  "libanno_stream.a"
)
