# Empty dependencies file for anno_media.
# This may be replaced when dependencies are built.
