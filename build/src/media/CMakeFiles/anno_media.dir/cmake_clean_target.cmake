file(REMOVE_RECURSE
  "libanno_media.a"
)
