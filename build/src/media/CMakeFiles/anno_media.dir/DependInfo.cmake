
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/media/bitstream.cpp" "src/media/CMakeFiles/anno_media.dir/bitstream.cpp.o" "gcc" "src/media/CMakeFiles/anno_media.dir/bitstream.cpp.o.d"
  "/root/repo/src/media/clipgen.cpp" "src/media/CMakeFiles/anno_media.dir/clipgen.cpp.o" "gcc" "src/media/CMakeFiles/anno_media.dir/clipgen.cpp.o.d"
  "/root/repo/src/media/codec.cpp" "src/media/CMakeFiles/anno_media.dir/codec.cpp.o" "gcc" "src/media/CMakeFiles/anno_media.dir/codec.cpp.o.d"
  "/root/repo/src/media/dct.cpp" "src/media/CMakeFiles/anno_media.dir/dct.cpp.o" "gcc" "src/media/CMakeFiles/anno_media.dir/dct.cpp.o.d"
  "/root/repo/src/media/histogram.cpp" "src/media/CMakeFiles/anno_media.dir/histogram.cpp.o" "gcc" "src/media/CMakeFiles/anno_media.dir/histogram.cpp.o.d"
  "/root/repo/src/media/image.cpp" "src/media/CMakeFiles/anno_media.dir/image.cpp.o" "gcc" "src/media/CMakeFiles/anno_media.dir/image.cpp.o.d"
  "/root/repo/src/media/io.cpp" "src/media/CMakeFiles/anno_media.dir/io.cpp.o" "gcc" "src/media/CMakeFiles/anno_media.dir/io.cpp.o.d"
  "/root/repo/src/media/luminance.cpp" "src/media/CMakeFiles/anno_media.dir/luminance.cpp.o" "gcc" "src/media/CMakeFiles/anno_media.dir/luminance.cpp.o.d"
  "/root/repo/src/media/video.cpp" "src/media/CMakeFiles/anno_media.dir/video.cpp.o" "gcc" "src/media/CMakeFiles/anno_media.dir/video.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
