file(REMOVE_RECURSE
  "CMakeFiles/anno_media.dir/bitstream.cpp.o"
  "CMakeFiles/anno_media.dir/bitstream.cpp.o.d"
  "CMakeFiles/anno_media.dir/clipgen.cpp.o"
  "CMakeFiles/anno_media.dir/clipgen.cpp.o.d"
  "CMakeFiles/anno_media.dir/codec.cpp.o"
  "CMakeFiles/anno_media.dir/codec.cpp.o.d"
  "CMakeFiles/anno_media.dir/dct.cpp.o"
  "CMakeFiles/anno_media.dir/dct.cpp.o.d"
  "CMakeFiles/anno_media.dir/histogram.cpp.o"
  "CMakeFiles/anno_media.dir/histogram.cpp.o.d"
  "CMakeFiles/anno_media.dir/image.cpp.o"
  "CMakeFiles/anno_media.dir/image.cpp.o.d"
  "CMakeFiles/anno_media.dir/io.cpp.o"
  "CMakeFiles/anno_media.dir/io.cpp.o.d"
  "CMakeFiles/anno_media.dir/luminance.cpp.o"
  "CMakeFiles/anno_media.dir/luminance.cpp.o.d"
  "CMakeFiles/anno_media.dir/video.cpp.o"
  "CMakeFiles/anno_media.dir/video.cpp.o.d"
  "libanno_media.a"
  "libanno_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anno_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
