# CMake generated Testfile for 
# Source directory: /root/repo/src/compensate
# Build directory: /root/repo/build/src/compensate
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
