# Empty compiler generated dependencies file for anno_compensate.
# This may be replaced when dependencies are built.
