file(REMOVE_RECURSE
  "CMakeFiles/anno_compensate.dir/compensate.cpp.o"
  "CMakeFiles/anno_compensate.dir/compensate.cpp.o.d"
  "CMakeFiles/anno_compensate.dir/planner.cpp.o"
  "CMakeFiles/anno_compensate.dir/planner.cpp.o.d"
  "libanno_compensate.a"
  "libanno_compensate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anno_compensate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
