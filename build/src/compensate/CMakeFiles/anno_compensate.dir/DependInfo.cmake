
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compensate/compensate.cpp" "src/compensate/CMakeFiles/anno_compensate.dir/compensate.cpp.o" "gcc" "src/compensate/CMakeFiles/anno_compensate.dir/compensate.cpp.o.d"
  "/root/repo/src/compensate/planner.cpp" "src/compensate/CMakeFiles/anno_compensate.dir/planner.cpp.o" "gcc" "src/compensate/CMakeFiles/anno_compensate.dir/planner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/display/CMakeFiles/anno_display.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/anno_media.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
