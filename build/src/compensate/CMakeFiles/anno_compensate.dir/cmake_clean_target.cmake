file(REMOVE_RECURSE
  "libanno_compensate.a"
)
