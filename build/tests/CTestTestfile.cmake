# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/media_tests[1]_include.cmake")
include("/root/repo/build/tests/display_tests[1]_include.cmake")
include("/root/repo/build/tests/power_tests[1]_include.cmake")
include("/root/repo/build/tests/quality_tests[1]_include.cmake")
include("/root/repo/build/tests/compensate_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/stream_tests[1]_include.cmake")
include("/root/repo/build/tests/player_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
