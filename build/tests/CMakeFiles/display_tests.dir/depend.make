# Empty dependencies file for display_tests.
# This may be replaced when dependencies are built.
