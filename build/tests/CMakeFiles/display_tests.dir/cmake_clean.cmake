file(REMOVE_RECURSE
  "CMakeFiles/display_tests.dir/display/characterize_test.cpp.o"
  "CMakeFiles/display_tests.dir/display/characterize_test.cpp.o.d"
  "CMakeFiles/display_tests.dir/display/device_test.cpp.o"
  "CMakeFiles/display_tests.dir/display/device_test.cpp.o.d"
  "CMakeFiles/display_tests.dir/display/emissive_test.cpp.o"
  "CMakeFiles/display_tests.dir/display/emissive_test.cpp.o.d"
  "CMakeFiles/display_tests.dir/display/panel_test.cpp.o"
  "CMakeFiles/display_tests.dir/display/panel_test.cpp.o.d"
  "CMakeFiles/display_tests.dir/display/profile_io_test.cpp.o"
  "CMakeFiles/display_tests.dir/display/profile_io_test.cpp.o.d"
  "CMakeFiles/display_tests.dir/display/quantize_test.cpp.o"
  "CMakeFiles/display_tests.dir/display/quantize_test.cpp.o.d"
  "CMakeFiles/display_tests.dir/display/transfer_test.cpp.o"
  "CMakeFiles/display_tests.dir/display/transfer_test.cpp.o.d"
  "display_tests"
  "display_tests.pdb"
  "display_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/display_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
