# Empty compiler generated dependencies file for stream_tests.
# This may be replaced when dependencies are built.
