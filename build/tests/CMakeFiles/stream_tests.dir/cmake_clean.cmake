file(REMOVE_RECURSE
  "CMakeFiles/stream_tests.dir/stream/client_test.cpp.o"
  "CMakeFiles/stream_tests.dir/stream/client_test.cpp.o.d"
  "CMakeFiles/stream_tests.dir/stream/loss_test.cpp.o"
  "CMakeFiles/stream_tests.dir/stream/loss_test.cpp.o.d"
  "CMakeFiles/stream_tests.dir/stream/mux_test.cpp.o"
  "CMakeFiles/stream_tests.dir/stream/mux_test.cpp.o.d"
  "CMakeFiles/stream_tests.dir/stream/net_test.cpp.o"
  "CMakeFiles/stream_tests.dir/stream/net_test.cpp.o.d"
  "CMakeFiles/stream_tests.dir/stream/proxy_test.cpp.o"
  "CMakeFiles/stream_tests.dir/stream/proxy_test.cpp.o.d"
  "CMakeFiles/stream_tests.dir/stream/server_test.cpp.o"
  "CMakeFiles/stream_tests.dir/stream/server_test.cpp.o.d"
  "CMakeFiles/stream_tests.dir/stream/session_sim_test.cpp.o"
  "CMakeFiles/stream_tests.dir/stream/session_sim_test.cpp.o.d"
  "CMakeFiles/stream_tests.dir/stream/traffic_test.cpp.o"
  "CMakeFiles/stream_tests.dir/stream/traffic_test.cpp.o.d"
  "stream_tests"
  "stream_tests.pdb"
  "stream_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
