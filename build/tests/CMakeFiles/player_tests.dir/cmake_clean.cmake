file(REMOVE_RECURSE
  "CMakeFiles/player_tests.dir/player/adaptive_test.cpp.o"
  "CMakeFiles/player_tests.dir/player/adaptive_test.cpp.o.d"
  "CMakeFiles/player_tests.dir/player/baselines_test.cpp.o"
  "CMakeFiles/player_tests.dir/player/baselines_test.cpp.o.d"
  "CMakeFiles/player_tests.dir/player/experiment_test.cpp.o"
  "CMakeFiles/player_tests.dir/player/experiment_test.cpp.o.d"
  "CMakeFiles/player_tests.dir/player/integrated_test.cpp.o"
  "CMakeFiles/player_tests.dir/player/integrated_test.cpp.o.d"
  "CMakeFiles/player_tests.dir/player/oled_test.cpp.o"
  "CMakeFiles/player_tests.dir/player/oled_test.cpp.o.d"
  "CMakeFiles/player_tests.dir/player/playback_test.cpp.o"
  "CMakeFiles/player_tests.dir/player/playback_test.cpp.o.d"
  "player_tests"
  "player_tests.pdb"
  "player_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/player_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
