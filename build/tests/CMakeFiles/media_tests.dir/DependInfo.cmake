
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/media/bitstream_test.cpp" "tests/CMakeFiles/media_tests.dir/media/bitstream_test.cpp.o" "gcc" "tests/CMakeFiles/media_tests.dir/media/bitstream_test.cpp.o.d"
  "/root/repo/tests/media/clipgen_test.cpp" "tests/CMakeFiles/media_tests.dir/media/clipgen_test.cpp.o" "gcc" "tests/CMakeFiles/media_tests.dir/media/clipgen_test.cpp.o.d"
  "/root/repo/tests/media/codec_test.cpp" "tests/CMakeFiles/media_tests.dir/media/codec_test.cpp.o" "gcc" "tests/CMakeFiles/media_tests.dir/media/codec_test.cpp.o.d"
  "/root/repo/tests/media/dct_test.cpp" "tests/CMakeFiles/media_tests.dir/media/dct_test.cpp.o" "gcc" "tests/CMakeFiles/media_tests.dir/media/dct_test.cpp.o.d"
  "/root/repo/tests/media/histogram_test.cpp" "tests/CMakeFiles/media_tests.dir/media/histogram_test.cpp.o" "gcc" "tests/CMakeFiles/media_tests.dir/media/histogram_test.cpp.o.d"
  "/root/repo/tests/media/image_test.cpp" "tests/CMakeFiles/media_tests.dir/media/image_test.cpp.o" "gcc" "tests/CMakeFiles/media_tests.dir/media/image_test.cpp.o.d"
  "/root/repo/tests/media/io_test.cpp" "tests/CMakeFiles/media_tests.dir/media/io_test.cpp.o" "gcc" "tests/CMakeFiles/media_tests.dir/media/io_test.cpp.o.d"
  "/root/repo/tests/media/luminance_test.cpp" "tests/CMakeFiles/media_tests.dir/media/luminance_test.cpp.o" "gcc" "tests/CMakeFiles/media_tests.dir/media/luminance_test.cpp.o.d"
  "/root/repo/tests/media/pixel_test.cpp" "tests/CMakeFiles/media_tests.dir/media/pixel_test.cpp.o" "gcc" "tests/CMakeFiles/media_tests.dir/media/pixel_test.cpp.o.d"
  "/root/repo/tests/media/rng_test.cpp" "tests/CMakeFiles/media_tests.dir/media/rng_test.cpp.o" "gcc" "tests/CMakeFiles/media_tests.dir/media/rng_test.cpp.o.d"
  "/root/repo/tests/media/video_test.cpp" "tests/CMakeFiles/media_tests.dir/media/video_test.cpp.o" "gcc" "tests/CMakeFiles/media_tests.dir/media/video_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/player/CMakeFiles/anno_player.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/anno_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/anno_core.dir/DependInfo.cmake"
  "/root/repo/build/src/compensate/CMakeFiles/anno_compensate.dir/DependInfo.cmake"
  "/root/repo/build/src/quality/CMakeFiles/anno_quality.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/anno_power.dir/DependInfo.cmake"
  "/root/repo/build/src/display/CMakeFiles/anno_display.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/anno_media.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
