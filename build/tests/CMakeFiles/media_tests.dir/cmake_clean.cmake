file(REMOVE_RECURSE
  "CMakeFiles/media_tests.dir/media/bitstream_test.cpp.o"
  "CMakeFiles/media_tests.dir/media/bitstream_test.cpp.o.d"
  "CMakeFiles/media_tests.dir/media/clipgen_test.cpp.o"
  "CMakeFiles/media_tests.dir/media/clipgen_test.cpp.o.d"
  "CMakeFiles/media_tests.dir/media/codec_test.cpp.o"
  "CMakeFiles/media_tests.dir/media/codec_test.cpp.o.d"
  "CMakeFiles/media_tests.dir/media/dct_test.cpp.o"
  "CMakeFiles/media_tests.dir/media/dct_test.cpp.o.d"
  "CMakeFiles/media_tests.dir/media/histogram_test.cpp.o"
  "CMakeFiles/media_tests.dir/media/histogram_test.cpp.o.d"
  "CMakeFiles/media_tests.dir/media/image_test.cpp.o"
  "CMakeFiles/media_tests.dir/media/image_test.cpp.o.d"
  "CMakeFiles/media_tests.dir/media/io_test.cpp.o"
  "CMakeFiles/media_tests.dir/media/io_test.cpp.o.d"
  "CMakeFiles/media_tests.dir/media/luminance_test.cpp.o"
  "CMakeFiles/media_tests.dir/media/luminance_test.cpp.o.d"
  "CMakeFiles/media_tests.dir/media/pixel_test.cpp.o"
  "CMakeFiles/media_tests.dir/media/pixel_test.cpp.o.d"
  "CMakeFiles/media_tests.dir/media/rng_test.cpp.o"
  "CMakeFiles/media_tests.dir/media/rng_test.cpp.o.d"
  "CMakeFiles/media_tests.dir/media/video_test.cpp.o"
  "CMakeFiles/media_tests.dir/media/video_test.cpp.o.d"
  "media_tests"
  "media_tests.pdb"
  "media_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/media_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
