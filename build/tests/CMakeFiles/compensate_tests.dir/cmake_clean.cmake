file(REMOVE_RECURSE
  "CMakeFiles/compensate_tests.dir/compensate/compensate_test.cpp.o"
  "CMakeFiles/compensate_tests.dir/compensate/compensate_test.cpp.o.d"
  "CMakeFiles/compensate_tests.dir/compensate/planner_test.cpp.o"
  "CMakeFiles/compensate_tests.dir/compensate/planner_test.cpp.o.d"
  "compensate_tests"
  "compensate_tests.pdb"
  "compensate_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compensate_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
