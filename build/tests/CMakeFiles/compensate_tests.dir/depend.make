# Empty dependencies file for compensate_tests.
# This may be replaced when dependencies are built.
