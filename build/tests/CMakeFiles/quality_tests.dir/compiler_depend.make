# Empty compiler generated dependencies file for quality_tests.
# This may be replaced when dependencies are built.
