file(REMOVE_RECURSE
  "CMakeFiles/quality_tests.dir/quality/camera_test.cpp.o"
  "CMakeFiles/quality_tests.dir/quality/camera_test.cpp.o.d"
  "CMakeFiles/quality_tests.dir/quality/metrics_test.cpp.o"
  "CMakeFiles/quality_tests.dir/quality/metrics_test.cpp.o.d"
  "CMakeFiles/quality_tests.dir/quality/validate_test.cpp.o"
  "CMakeFiles/quality_tests.dir/quality/validate_test.cpp.o.d"
  "quality_tests"
  "quality_tests.pdb"
  "quality_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quality_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
