# Empty compiler generated dependencies file for live_conference.
# This may be replaced when dependencies are built.
