file(REMOVE_RECURSE
  "CMakeFiles/live_conference.dir/live_conference.cpp.o"
  "CMakeFiles/live_conference.dir/live_conference.cpp.o.d"
  "live_conference"
  "live_conference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_conference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
