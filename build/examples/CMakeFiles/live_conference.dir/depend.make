# Empty dependencies file for live_conference.
# This may be replaced when dependencies are built.
