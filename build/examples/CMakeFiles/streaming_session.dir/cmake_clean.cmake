file(REMOVE_RECURSE
  "CMakeFiles/streaming_session.dir/streaming_session.cpp.o"
  "CMakeFiles/streaming_session.dir/streaming_session.cpp.o.d"
  "streaming_session"
  "streaming_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
