
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/characterize_device.cpp" "examples/CMakeFiles/characterize_device.dir/characterize_device.cpp.o" "gcc" "examples/CMakeFiles/characterize_device.dir/characterize_device.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/player/CMakeFiles/anno_player.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/anno_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/anno_core.dir/DependInfo.cmake"
  "/root/repo/build/src/compensate/CMakeFiles/anno_compensate.dir/DependInfo.cmake"
  "/root/repo/build/src/quality/CMakeFiles/anno_quality.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/anno_power.dir/DependInfo.cmake"
  "/root/repo/build/src/display/CMakeFiles/anno_display.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/anno_media.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
