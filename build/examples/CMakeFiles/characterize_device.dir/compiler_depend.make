# Empty compiler generated dependencies file for characterize_device.
# This may be replaced when dependencies are built.
