file(REMOVE_RECURSE
  "CMakeFiles/characterize_device.dir/characterize_device.cpp.o"
  "CMakeFiles/characterize_device.dir/characterize_device.cpp.o.d"
  "characterize_device"
  "characterize_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/characterize_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
