# Empty dependencies file for annolight_cli.
# This may be replaced when dependencies are built.
