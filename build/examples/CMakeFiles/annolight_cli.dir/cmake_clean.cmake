file(REMOVE_RECURSE
  "CMakeFiles/annolight_cli.dir/annolight_cli.cpp.o"
  "CMakeFiles/annolight_cli.dir/annolight_cli.cpp.o.d"
  "annolight_cli"
  "annolight_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/annolight_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
