# Empty compiler generated dependencies file for annotation_inspector.
# This may be replaced when dependencies are built.
