file(REMOVE_RECURSE
  "CMakeFiles/annotation_inspector.dir/annotation_inspector.cpp.o"
  "CMakeFiles/annotation_inspector.dir/annotation_inspector.cpp.o.d"
  "annotation_inspector"
  "annotation_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/annotation_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
