file(REMOVE_RECURSE
  "CMakeFiles/bench_adaptive_quality.dir/bench_adaptive_quality.cpp.o"
  "CMakeFiles/bench_adaptive_quality.dir/bench_adaptive_quality.cpp.o.d"
  "bench_adaptive_quality"
  "bench_adaptive_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adaptive_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
