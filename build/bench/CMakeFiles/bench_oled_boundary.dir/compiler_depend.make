# Empty compiler generated dependencies file for bench_oled_boundary.
# This may be replaced when dependencies are built.
