file(REMOVE_RECURSE
  "CMakeFiles/bench_oled_boundary.dir/bench_oled_boundary.cpp.o"
  "CMakeFiles/bench_oled_boundary.dir/bench_oled_boundary.cpp.o.d"
  "bench_oled_boundary"
  "bench_oled_boundary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_oled_boundary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
