# Empty dependencies file for bench_total_power.
# This may be replaced when dependencies are built.
