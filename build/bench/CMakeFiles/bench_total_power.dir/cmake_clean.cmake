file(REMOVE_RECURSE
  "CMakeFiles/bench_total_power.dir/bench_total_power.cpp.o"
  "CMakeFiles/bench_total_power.dir/bench_total_power.cpp.o.d"
  "bench_total_power"
  "bench_total_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_total_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
