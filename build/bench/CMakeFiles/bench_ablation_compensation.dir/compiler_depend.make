# Empty compiler generated dependencies file for bench_ablation_compensation.
# This may be replaced when dependencies are built.
