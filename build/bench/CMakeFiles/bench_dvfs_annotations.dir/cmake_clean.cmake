file(REMOVE_RECURSE
  "CMakeFiles/bench_dvfs_annotations.dir/bench_dvfs_annotations.cpp.o"
  "CMakeFiles/bench_dvfs_annotations.dir/bench_dvfs_annotations.cpp.o.d"
  "bench_dvfs_annotations"
  "bench_dvfs_annotations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dvfs_annotations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
