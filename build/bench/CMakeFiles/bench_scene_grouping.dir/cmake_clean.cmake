file(REMOVE_RECURSE
  "CMakeFiles/bench_scene_grouping.dir/bench_scene_grouping.cpp.o"
  "CMakeFiles/bench_scene_grouping.dir/bench_scene_grouping.cpp.o.d"
  "bench_scene_grouping"
  "bench_scene_grouping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scene_grouping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
