file(REMOVE_RECURSE
  "CMakeFiles/bench_streaming_session.dir/bench_streaming_session.cpp.o"
  "CMakeFiles/bench_streaming_session.dir/bench_streaming_session.cpp.o.d"
  "bench_streaming_session"
  "bench_streaming_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_streaming_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
