# Empty compiler generated dependencies file for bench_streaming_session.
# This may be replaced when dependencies are built.
