# Empty compiler generated dependencies file for bench_client_overhead.
# This may be replaced when dependencies are built.
