file(REMOVE_RECURSE
  "CMakeFiles/bench_client_overhead.dir/bench_client_overhead.cpp.o"
  "CMakeFiles/bench_client_overhead.dir/bench_client_overhead.cpp.o.d"
  "bench_client_overhead"
  "bench_client_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_client_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
