# Empty dependencies file for bench_loss_resilience.
# This may be replaced when dependencies are built.
