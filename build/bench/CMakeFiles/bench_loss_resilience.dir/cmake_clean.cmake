file(REMOVE_RECURSE
  "CMakeFiles/bench_loss_resilience.dir/bench_loss_resilience.cpp.o"
  "CMakeFiles/bench_loss_resilience.dir/bench_loss_resilience.cpp.o.d"
  "bench_loss_resilience"
  "bench_loss_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_loss_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
