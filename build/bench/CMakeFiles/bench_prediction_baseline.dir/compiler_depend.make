# Empty compiler generated dependencies file for bench_prediction_baseline.
# This may be replaced when dependencies are built.
