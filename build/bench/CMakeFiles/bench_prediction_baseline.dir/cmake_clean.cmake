file(REMOVE_RECURSE
  "CMakeFiles/bench_prediction_baseline.dir/bench_prediction_baseline.cpp.o"
  "CMakeFiles/bench_prediction_baseline.dir/bench_prediction_baseline.cpp.o.d"
  "bench_prediction_baseline"
  "bench_prediction_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prediction_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
