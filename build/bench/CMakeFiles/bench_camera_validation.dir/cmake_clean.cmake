file(REMOVE_RECURSE
  "CMakeFiles/bench_camera_validation.dir/bench_camera_validation.cpp.o"
  "CMakeFiles/bench_camera_validation.dir/bench_camera_validation.cpp.o.d"
  "bench_camera_validation"
  "bench_camera_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_camera_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
