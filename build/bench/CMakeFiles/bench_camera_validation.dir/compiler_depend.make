# Empty compiler generated dependencies file for bench_camera_validation.
# This may be replaced when dependencies are built.
