file(REMOVE_RECURSE
  "CMakeFiles/bench_display_characterization.dir/bench_display_characterization.cpp.o"
  "CMakeFiles/bench_display_characterization.dir/bench_display_characterization.cpp.o.d"
  "bench_display_characterization"
  "bench_display_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_display_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
