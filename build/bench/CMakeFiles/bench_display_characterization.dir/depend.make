# Empty dependencies file for bench_display_characterization.
# This may be replaced when dependencies are built.
