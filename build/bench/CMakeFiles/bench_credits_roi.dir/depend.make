# Empty dependencies file for bench_credits_roi.
# This may be replaced when dependencies are built.
