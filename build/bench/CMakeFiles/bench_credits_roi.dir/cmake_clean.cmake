file(REMOVE_RECURSE
  "CMakeFiles/bench_credits_roi.dir/bench_credits_roi.cpp.o"
  "CMakeFiles/bench_credits_roi.dir/bench_credits_roi.cpp.o.d"
  "bench_credits_roi"
  "bench_credits_roi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_credits_roi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
