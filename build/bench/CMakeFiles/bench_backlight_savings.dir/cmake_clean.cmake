file(REMOVE_RECURSE
  "CMakeFiles/bench_backlight_savings.dir/bench_backlight_savings.cpp.o"
  "CMakeFiles/bench_backlight_savings.dir/bench_backlight_savings.cpp.o.d"
  "bench_backlight_savings"
  "bench_backlight_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_backlight_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
