# Empty compiler generated dependencies file for bench_backlight_savings.
# This may be replaced when dependencies are built.
