file(REMOVE_RECURSE
  "CMakeFiles/bench_ambient_adaptation.dir/bench_ambient_adaptation.cpp.o"
  "CMakeFiles/bench_ambient_adaptation.dir/bench_ambient_adaptation.cpp.o.d"
  "bench_ambient_adaptation"
  "bench_ambient_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ambient_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
