# Empty compiler generated dependencies file for bench_ambient_adaptation.
# This may be replaced when dependencies are built.
