file(REMOVE_RECURSE
  "CMakeFiles/bench_nic_scheduling.dir/bench_nic_scheduling.cpp.o"
  "CMakeFiles/bench_nic_scheduling.dir/bench_nic_scheduling.cpp.o.d"
  "bench_nic_scheduling"
  "bench_nic_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nic_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
