# Empty dependencies file for bench_nic_scheduling.
# This may be replaced when dependencies are built.
