# Empty dependencies file for bench_annotation_overhead.
# This may be replaced when dependencies are built.
