file(REMOVE_RECURSE
  "CMakeFiles/bench_annotation_overhead.dir/bench_annotation_overhead.cpp.o"
  "CMakeFiles/bench_annotation_overhead.dir/bench_annotation_overhead.cpp.o.d"
  "bench_annotation_overhead"
  "bench_annotation_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_annotation_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
