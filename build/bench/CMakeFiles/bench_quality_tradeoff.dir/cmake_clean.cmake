file(REMOVE_RECURSE
  "CMakeFiles/bench_quality_tradeoff.dir/bench_quality_tradeoff.cpp.o"
  "CMakeFiles/bench_quality_tradeoff.dir/bench_quality_tradeoff.cpp.o.d"
  "bench_quality_tradeoff"
  "bench_quality_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_quality_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
