# Empty dependencies file for bench_quality_tradeoff.
# This may be replaced when dependencies are built.
