# Empty dependencies file for bench_ablation_scene_threshold.
# This may be replaced when dependencies are built.
