file(REMOVE_RECURSE
  "CMakeFiles/bench_combined_savings.dir/bench_combined_savings.cpp.o"
  "CMakeFiles/bench_combined_savings.dir/bench_combined_savings.cpp.o.d"
  "bench_combined_savings"
  "bench_combined_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_combined_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
