# Empty compiler generated dependencies file for bench_combined_savings.
# This may be replaced when dependencies are built.
