// Live-video (videoconferencing) scenario: the paper's Fig. 1 proxy
// "with the ability to process the video stream in real-time, on-the-fly
// (example in videoconferencing)".
//
// A live source cannot be annotated offline: the proxy runs the CAUSAL
// annotator, and a frame's backlight command is only known when its scene
// closes.  This example measures that annotation latency with and without
// the bounded-latency mode, and the power it costs/buys.
//
// Run: ./build/examples/live_conference
#include <cstdio>
#include <vector>

#include "core/annotate.h"
#include "core/runtime.h"
#include "media/clipgen.h"
#include "player/baselines.h"
#include "player/playback.h"
#include "power/power.h"

using namespace anno;

namespace {

/// Drives the causal engine over pre-profiled frame statistics and reports
/// the worst/mean "annotation latency": how many frames a frame waits until
/// its scene's annotation exists.  The scene callback fires at the exact
/// push that closes each scene, so latency falls straight out of it.
struct LiveRun {
  core::AnnotationTrack track;
  double meanLatencyFrames = 0.0;
  std::uint32_t worstLatencyFrames = 0;
};

LiveRun runLive(const media::VideoClip& clip,
                const std::vector<media::FrameStats>& stats,
                std::uint32_t latencyBound) {
  LiveRun run;
  double latencySum = 0.0;
  run.track = core::annotateStats(
      clip.name, clip.fps, stats, {}, latencyBound,
      [&](const core::SceneAnnotation& scene, std::uint32_t closedAt) {
        for (std::uint32_t f = scene.span.firstFrame;
             f <= scene.span.lastFrame(); ++f) {
          const std::uint32_t wait = closedAt - f;
          latencySum += wait;
          run.worstLatencyFrames = std::max(run.worstLatencyFrames, wait);
        }
      });
  run.meanLatencyFrames = latencySum / static_cast<double>(stats.size());
  return run;
}

}  // namespace

int main() {
  const media::VideoClip clip =
      media::generatePaperClip(media::PaperClip::kIRobot, 0.15, 96, 72);
  const std::vector<media::FrameStats> stats = media::profileClip(clip);
  const power::MobileDevicePower pda = power::makeIpaq5555Power();
  const display::DeviceModel& device = pda.displayDevice();
  std::printf("live source: %s-like content, %zu frames @ %.0f fps\n\n",
              clip.name.c_str(), clip.frameCount(), clip.fps);

  std::printf("%-18s %-10s %-12s %-14s %-12s\n", "latency_bound", "scenes",
              "mean_wait_f", "worst_wait_f", "bl_savings");
  for (std::uint32_t bound : {0u, 48u, 24u, 12u, 6u}) {
    const LiveRun run = runLive(clip, stats, bound);
    const core::BacklightSchedule schedule =
        core::buildSchedule(run.track, 2, device);
    const media::VideoClip compensated =
        core::compensateClip(clip, run.track, 2, device);
    player::AnnotationPolicy policy(schedule);
    player::PlaybackConfig cfg;
    cfg.qualityEvalStride = 1 << 20;
    const player::PlaybackReport r =
        player::play(clip, compensated, policy, pda, cfg);
    char boundStr[32];
    if (bound == 0) {
      std::snprintf(boundStr, sizeof boundStr, "unbounded");
    } else {
      std::snprintf(boundStr, sizeof boundStr, "%u frames (%.2fs)", bound,
                    bound / clip.fps);
    }
    std::printf("%-18s %-10zu %-12.1f %-14u %.1f%%\n", boundStr,
                run.track.scenes.size(), run.meanLatencyFrames,
                run.worstLatencyFrames, 100.0 * r.backlightSavings());
  }
  std::printf(
      "\nReading: unbounded annotation waits for each scene to END -- fine\n"
      "for stored clips, seconds of delay for live video.  Bounding the\n"
      "scene length caps the delay at a conference-friendly fraction of a\n"
      "second while the backlight savings stay essentially unchanged\n"
      "(identical chunks merge back together in the client's schedule).\n");
  return 0;
}
