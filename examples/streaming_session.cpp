// Full system-model walkthrough (paper Fig. 1): a media server with an
// annotated catalog, a proxy that can annotate legacy streams on the fly,
// a wireless network path, and a PDA client that negotiates its display
// characteristics, receives the stream, and plays it back while we meter
// the power -- both via the server path and the proxy path.
//
// Run: ./build/examples/streaming_session
#include <algorithm>
#include <cstdio>

#include "media/clipgen.h"
#include "player/baselines.h"
#include "player/playback.h"
#include "power/power.h"
#include "stream/client.h"
#include "stream/proxy.h"
#include "stream/server.h"

using namespace anno;

namespace {

void playAndReport(const char* label, const media::VideoClip& original,
                   const stream::ReceivedStream& rx,
                   const power::MobileDevicePower& pda) {
  player::AnnotationPolicy policy(rx.schedule);
  const player::PlaybackReport report =
      player::play(original, rx.video, policy, pda);
  std::printf(
      "  [%s] stream %.1f KB, delivered in %.2f s (%zu packets)\n"
      "        backlight saved %.1f%%, device saved %.1f%%, "
      "%zu backlight switches\n",
      label, rx.streamBytes / 1024.0, rx.network.durationSeconds,
      rx.network.packetCount, 100.0 * report.backlightSavings(),
      100.0 * report.totalSavings(), report.backlightSwitches);
}

}  // namespace

int main() {
  // --- Server: ingest a small catalog (profiles + annotates each clip). --
  stream::MediaServer server;
  const media::VideoClip movie =
      media::generatePaperClip(media::PaperClip::kTheMovie, 0.10, 96, 72);
  const media::VideoClip cartoon =
      media::generatePaperClip(media::PaperClip::kShrek2, 0.10, 96, 72);
  server.addClip(movie);
  server.addClip(cartoon);
  std::printf("server catalog:");
  for (const std::string& name : server.catalog()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n\n");

  // --- Client: an iPAQ 5555 that wants 5%-quality streaming. ------------
  const power::MobileDevicePower pda = power::makeIpaq5555Power();
  stream::ClientConfig clientCfg{pda.displayDevice(), /*qualityIndex=*/1,
                                 /*minBacklightLevel=*/10};
  const stream::ClientSession client(clientCfg, stream::makeReferencePath());
  std::printf("client: %s, quality level %zu (%.0f%% clip budget)\n\n",
              clientCfg.device.name.c_str(), clientCfg.qualityIndex, 5.0);

  // --- Path A: annotation-aware server. ----------------------------------
  std::printf("Path A: server annotates & compensates\n");
  const stream::ReceivedStream rxServer = [&] {
    const auto bytes = server.serve(movie.name, client.capabilities());
    return client.receive(bytes);
  }();
  playAndReport("server", movie, rxServer, pda);

  // --- Path B: legacy server + annotating proxy ("no changes for the
  //     client" -- it receives the same kind of stream).  The proxy's
  //     causal annotator and the server's offline pass are the same
  //     core::AnnotationEngine, so for stored content the two paths hand
  //     the client the SAME backlight schedule. --------------------------
  std::printf("\nPath B: legacy server, proxy annotates on the fly\n");
  {
    stream::ProxyNode proxy;
    const auto raw = server.serveRaw(movie.name);
    const auto bytes = proxy.transcode(raw, client.capabilities());
    const stream::ReceivedStream rxProxy = client.receive(bytes);
    playAndReport("proxy", movie, rxProxy, pda);
    const auto sameCommand = [](const core::BacklightCommand& a,
                                const core::BacklightCommand& b) {
      return a.frame == b.frame && a.level == b.level && a.gainK == b.gainK;
    };
    const bool sameSchedule =
        rxProxy.schedule.frameCount == rxServer.schedule.frameCount &&
        std::equal(rxProxy.schedule.commands.begin(),
                   rxProxy.schedule.commands.end(),
                   rxServer.schedule.commands.begin(),
                   rxServer.schedule.commands.end(), sameCommand);
    std::printf("        proxy schedule identical to server path: %s\n",
                sameSchedule ? "yes" : "NO");
  }

  // --- Different content behaves differently. ---------------------------
  std::printf("\nSame pipeline, brighter content (shrek2):\n");
  {
    const auto bytes = server.serve(cartoon.name, client.capabilities());
    playAndReport("server", cartoon, client.receive(bytes), pda);
  }

  // --- The negotiation matters: an older CCFL PDA gets its own levels. --
  std::printf("\nSame clip, older CCFL device (ipaq3650):\n");
  {
    const display::DeviceModel oldPda =
        display::makeDevice(display::KnownDevice::kIpaq3650);
    stream::ClientConfig oldCfg{oldPda, 1, 10};
    const stream::ClientSession oldClient(oldCfg,
                                          stream::makeReferencePath());
    const power::MobileDevicePower oldPower{oldPda};
    const auto bytes = server.serve(movie.name, oldClient.capabilities());
    playAndReport("server", movie, oldClient.receive(bytes), oldPower);
  }
  return 0;
}
