// Quickstart: the annotation pipeline in ~40 lines.
//
//   1. Load (here: synthesize) a video clip.
//   2. Annotate it: detect scenes, compute per-scene luminance ceilings for
//      each quality level.
//   3. Pick a device and a quality level; build the backlight schedule.
//   4. Play it back on the device power model and print the savings.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/annotate.h"
#include "core/runtime.h"
#include "media/clipgen.h"
#include "player/baselines.h"
#include "player/playback.h"
#include "power/power.h"

int main() {
  using namespace anno;

  // 1. A ~14 s action-movie-like clip (dark scenes, sparse highlights).
  const media::VideoClip clip =
      media::generatePaperClip(media::PaperClip::kSpiderman2, 0.12, 96, 72);
  std::printf("clip: %s, %zu frames @ %.0f fps\n", clip.name.c_str(),
              clip.frameCount(), clip.fps);

  // 2. Annotate (server side, done once per clip).
  const core::AnnotationTrack track = core::annotateClip(clip);
  std::printf("annotated: %zu scenes, %zu quality levels\n",
              track.scenes.size(), track.qualityLevels.size());

  // 3. Target device + quality level -> backlight schedule (client side:
  //    one multiply and one table lookup per scene).
  const power::MobileDevicePower pda = power::makeIpaq5555Power();
  const std::size_t quality = 2;  // 10% of brightest pixels may clip
  const core::BacklightSchedule schedule =
      core::buildSchedule(track, quality, pda.displayDevice());
  std::printf("schedule: %zu backlight changes over the whole clip\n",
              schedule.switchCount());

  // 4. Compensate frames (server side) and play back.
  const media::VideoClip compensated =
      core::compensateClip(clip, track, quality, pda.displayDevice());
  player::AnnotationPolicy policy(schedule);
  const player::PlaybackReport report =
      player::play(clip, compensated, policy, pda);

  std::printf("\nbacklight energy saved: %.1f%%\n",
              100.0 * report.backlightSavings());
  std::printf("total device energy saved: %.1f%%\n",
              100.0 * report.totalSavings());
  std::printf("perceived quality: mean PSNR %.1f dB, mean histogram EMD %.2f\n",
              report.meanPsnrDb, report.meanEmd);
  return 0;
}
