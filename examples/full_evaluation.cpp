// Full evaluation driver: runs the paper's entire experimental flow and
// writes every figure's data as CSV into a results directory -- the
// "reproduce the paper with one command" entry point.
//
//   1. Characterize all three PDA displays with the camera (Figs. 7/8).
//   2. Generate the ten evaluation clips.
//   3. Annotate, compensate, stream and play each at all five quality
//      levels on the iPAQ 5555 (Figs. 9/10 + battery projection).
//   4. Dump per-frame traces for one clip (Fig. 6).
//
// Run: ./build/examples/full_evaluation [results_dir] [scale]
//   scale (default 0.15) stretches clip durations; 1.0 ~ paper-length clips.
#include <cstdio>
#include <filesystem>
#include <string>

#include "display/characterize.h"
#include "media/clipgen.h"
#include "media/io.h"
#include "player/experiment.h"
#include "power/battery.h"
#include "power/power.h"
#include "quality/camera.h"

using namespace anno;

int main(int argc, char** argv) {
  const std::string outDir = argc > 1 ? argv[1] : "evaluation_results";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.15;
  if (scale <= 0.0) {
    std::fprintf(stderr, "scale must be positive\n");
    return 1;
  }
  std::filesystem::create_directories(outDir);

  // ---- 1. Display characterization (Figs. 7/8) --------------------------
  std::printf("[1/4] characterizing displays...\n");
  {
    quality::CameraConfig camCfg;
    camCfg.noiseRms = 0.5;
    media::CsvWriter csv({"device", "backlight_level", "rel_brightness"});
    for (display::KnownDevice id : display::allKnownDevices()) {
      const display::DeviceModel device = display::makeDevice(id);
      quality::CameraMeter meter(camCfg);
      const auto sweep = display::sweepBacklight(device, meter, 24);
      const double top = sweep.back().brightness;
      for (const display::SweepPoint& p : sweep) {
        csv.addRow(std::vector<std::string>{
            device.name, std::to_string(p.x),
            std::to_string(p.brightness / top)});
      }
    }
    csv.save(outDir + "/fig7_backlight_sweeps.csv");
  }

  // ---- 2 & 3. The ten clips x five quality levels ------------------------
  std::printf("[2/4] generating clips and running the quality sweep...\n");
  const power::MobileDevicePower devicePower = power::makeIpaq5555Power();
  const power::BatteryModel battery = power::BatteryModel::ipaq5555();
  player::PlaybackConfig playbackCfg;
  playbackCfg.qualityEvalStride = 8;

  media::CsvWriter fig9({"clip", "quality", "backlight_savings"});
  media::CsvWriter fig10({"clip", "quality", "total_savings_daq"});
  media::CsvWriter fig10b({"clip", "quality", "battery_hours"});
  media::CsvWriter quality({"clip", "quality", "mean_emd", "mean_psnr_db",
                            "switches"});

  player::PlaybackReport fig6Report;
  core::AnnotationTrack fig6Track;
  double fig6Fps = 0.0;

  for (media::PaperClip clipId : media::allPaperClips()) {
    const media::VideoClip clip =
        media::generatePaperClip(clipId, scale, 96, 72);
    const player::ClipExperimentResult result =
        player::runAnnotationExperiment(clip, devicePower, {}, playbackCfg);

    // Full-backlight reference power for the DAQ-measured comparison.
    player::PlaybackReport fullRef = result.reports.front();
    power::OperatingPoint fullOp;
    for (double& w : fullRef.frameTotalPowerW) {
      w = devicePower.totalWatts(fullOp);
    }
    const double fullWatts = player::measureAverageWatts(fullRef, clip.fps);

    for (std::size_t q = 0; q < result.qualityLevels.size(); ++q) {
      const player::PlaybackReport& r = result.reports[q];
      const std::string qs = std::to_string(result.qualityLevels[q]);
      fig9.addRow(std::vector<std::string>{
          clip.name, qs, std::to_string(r.backlightSavings())});
      const double measured = player::measureAverageWatts(r, clip.fps);
      fig10.addRow(std::vector<std::string>{
          clip.name, qs, std::to_string(1.0 - measured / fullWatts)});
      fig10b.addRow(std::vector<std::string>{
          clip.name, qs, std::to_string(battery.runtimeHours(measured))});
      quality.addRow(std::vector<std::string>{
          clip.name, qs, std::to_string(r.meanEmd),
          std::to_string(r.meanPsnrDb), std::to_string(r.backlightSwitches)});
    }
    std::printf("  %-22s backlight savings %4.1f%%..%4.1f%%\n",
                clip.name.c_str(),
                100.0 * result.reports.front().backlightSavings(),
                100.0 * result.reports.back().backlightSavings());

    if (clipId == media::PaperClip::kSpiderman2) {
      fig6Report = result.reports[2];
      fig6Track = core::annotateClip(clip);
      fig6Fps = clip.fps;
    }
  }
  fig9.save(outDir + "/fig9_backlight_savings.csv");
  fig10.save(outDir + "/fig10_total_savings.csv");
  fig10b.save(outDir + "/battery_hours.csv");
  quality.save(outDir + "/quality_metrics.csv");

  // ---- 4. Per-frame traces (Fig. 6) --------------------------------------
  std::printf("[3/4] writing per-frame traces...\n");
  {
    media::CsvWriter fig6({"time_s", "frame_max_luma", "backlight_level",
                           "backlight_power_w"});
    for (std::size_t f = 0; f < fig6Report.frameBacklightLevel.size(); ++f) {
      fig6.addRow(std::vector<double>{
          static_cast<double>(f) / fig6Fps,
          static_cast<double>(fig6Report.frameMaxLuma[f]),
          static_cast<double>(fig6Report.frameBacklightLevel[f]),
          fig6Report.frameBacklightPowerW[f]});
    }
    fig6.save(outDir + "/fig6_scene_grouping.csv");
  }

  std::printf("[4/4] done; results in %s/\n", outDir.c_str());
  std::printf(
      "\nfiles: fig7_backlight_sweeps.csv fig9_backlight_savings.csv\n"
      "       fig10_total_savings.csv battery_hours.csv quality_metrics.csv\n"
      "       fig6_scene_grouping.csv\n");
  return 0;
}
