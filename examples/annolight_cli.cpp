// annolight command-line tool: the library's operations as subcommands.
//
//   annolight_cli clips                       list the built-in clip profiles
//   annolight_cli devices                     list the device models
//   annolight_cli annotate <clip> [scale]     annotate and print the track
//   annolight_cli pack    <clip> <out.mux>    encode+annotate+mux to a file
//   annolight_cli inspect <in.mux>            demux a container and report
//   annolight_cli play    <clip> <device> <q> simulate playback, print power
//   annolight_cli characterize <device>       camera-characterize a display
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/anno_codec.h"
#include "core/annotate.h"
#include "core/runtime.h"
#include "display/characterize.h"
#include "display/profile_io.h"
#include "media/clipgen.h"
#include "media/codec.h"
#include "player/baselines.h"
#include "player/playback.h"
#include "power/power.h"
#include "quality/camera.h"
#include "stream/mux.h"

using namespace anno;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: annolight_cli <command> [args]\n"
      "  clips                        list built-in clip profiles\n"
      "  devices                      list device models\n"
      "  annotate <clip> [scale]      annotate a clip, print the scene table\n"
      "  pack <clip> <out.mux> [q]    encode + annotate + mux into a file\n"
      "  inspect <in.mux>             demux a container, report sections\n"
      "  play <clip> <device> <q>     simulate playback, print power report\n"
      "  characterize <device>        camera-characterize a display\n"
      "  export-profile <device> <out> write a device .profile file\n"
      "  show-profile <in>            load + summarize a .profile file\n");
  return 2;
}

bool findClip(const std::string& name, media::PaperClip& out) {
  for (media::PaperClip c : media::allPaperClips()) {
    if (media::paperClipName(c) == name) {
      out = c;
      return true;
    }
  }
  return false;
}

bool findDevice(const std::string& name, display::KnownDevice& out) {
  for (display::KnownDevice d : display::allKnownDevices()) {
    if (display::deviceName(d) == name) {
      out = d;
      return true;
    }
  }
  return false;
}

int cmdClips() {
  for (media::PaperClip c : media::allPaperClips()) {
    const media::ClipProfile p = media::paperClipProfile(c);
    std::printf("%-22s %5.0f s  %2.0f fps  %zu scenes\n",
                media::paperClipName(c).c_str(), p.durationSeconds(), p.fps,
                p.scenes.size());
  }
  return 0;
}

int cmdDevices() {
  for (display::KnownDevice id : display::allKnownDevices()) {
    const display::DeviceModel d = display::makeDevice(id);
    std::printf("%-15s %-13s panel, %-4s backlight, %.2f W max\n",
                d.name.c_str(), toString(d.panel.type).c_str(),
                toString(d.backlight.type).c_str(),
                d.backlight.maxPowerWatts);
  }
  return 0;
}

int cmdAnnotate(const std::string& clipName, double scale) {
  media::PaperClip clipId;
  if (!findClip(clipName, clipId)) {
    std::fprintf(stderr, "unknown clip '%s' (try: clips)\n",
                 clipName.c_str());
    return 1;
  }
  const media::VideoClip clip =
      media::generatePaperClip(clipId, scale, 96, 72);
  const core::AnnotationTrack track = core::annotateClip(clip);
  std::printf("%s: %u frames, %zu scenes, %zu quality levels\n",
              track.clipName.c_str(), track.frameCount, track.scenes.size(),
              track.qualityLevels.size());
  std::printf("%-6s %-8s | safeLuma per quality level\n", "scene", "frames");
  for (std::size_t s = 0; s < track.scenes.size(); ++s) {
    std::printf("%-6zu %-8u |", s, track.scenes[s].span.frameCount);
    for (std::uint8_t v : track.scenes[s].safeLuma) std::printf(" %4d", v);
    std::printf("\n");
  }
  const core::AnnotationSizeReport size = core::measureEncoding(track);
  std::printf("serialized: %zu bytes\n", size.encodedBytes);
  return 0;
}

int cmdPack(const std::string& clipName, const std::string& outPath,
            std::size_t quality) {
  media::PaperClip clipId;
  if (!findClip(clipName, clipId)) {
    std::fprintf(stderr, "unknown clip '%s'\n", clipName.c_str());
    return 1;
  }
  const media::VideoClip clip =
      media::generatePaperClip(clipId, 0.15, 96, 72);
  const core::AnnotationTrack track = core::annotateClip(clip);
  if (quality >= track.qualityLevels.size()) {
    std::fprintf(stderr, "quality index out of range (0..%zu)\n",
                 track.qualityLevels.size() - 1);
    return 1;
  }
  const display::DeviceModel device =
      display::makeDevice(display::KnownDevice::kIpaq5555);
  const media::VideoClip compensated =
      core::compensateClip(clip, track, quality, device);
  const media::EncodedClip encoded = media::encodeClip(compensated, {75, 12});
  const auto bytes = stream::mux(encoded, &track);
  std::ofstream f(outPath, std::ios::binary);
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", outPath.c_str());
    return 1;
  }
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  std::printf("wrote %s: %zu bytes (%zu frames, annotations %zu bytes)\n",
              outPath.c_str(), bytes.size(), encoded.frames.size(),
              core::encodeTrack(track).size());
  return 0;
}

int cmdInspect(const std::string& inPath) {
  std::ifstream f(inPath, std::ios::binary);
  if (!f) {
    std::fprintf(stderr, "cannot read %s\n", inPath.c_str());
    return 1;
  }
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(f)),
                                  std::istreambuf_iterator<char>());
  const stream::DemuxedStream d = stream::demux(bytes);
  std::printf("container: %zu bytes\n", bytes.size());
  std::printf("video: %s, %dx%d @ %.1f fps, %zu frames, %zu bytes\n",
              d.video.name.c_str(), d.video.width, d.video.height,
              d.video.fps, d.video.frames.size(), d.video.totalBytes());
  if (d.annotations) {
    std::printf("annotations: %zu scenes, %zu quality levels\n",
                d.annotations->scenes.size(),
                d.annotations->qualityLevels.size());
  } else {
    std::printf("annotations: none\n");
  }
  if (d.complexity) {
    std::printf("complexity track: %zu frames\n",
                d.complexity->frameMegacycles.size());
  }
  return 0;
}

int cmdPlay(const std::string& clipName, const std::string& deviceName,
            std::size_t quality) {
  media::PaperClip clipId;
  display::KnownDevice deviceId;
  if (!findClip(clipName, clipId) || !findDevice(deviceName, deviceId)) {
    std::fprintf(stderr, "unknown clip or device\n");
    return 1;
  }
  const media::VideoClip clip =
      media::generatePaperClip(clipId, 0.12, 96, 72);
  const display::DeviceModel device = display::makeDevice(deviceId);
  const power::MobileDevicePower devicePower{device};
  const core::AnnotationTrack track = core::annotateClip(clip);
  if (quality >= track.qualityLevels.size()) {
    std::fprintf(stderr, "quality index out of range\n");
    return 1;
  }
  const core::BacklightSchedule schedule =
      core::buildSchedule(track, quality, device);
  const media::VideoClip compensated =
      core::compensateClip(clip, track, quality, device);
  player::AnnotationPolicy policy(schedule);
  const player::PlaybackReport r =
      player::play(clip, compensated, policy, devicePower);
  std::printf("clip=%s device=%s quality=%.0f%%\n", clip.name.c_str(),
              device.name.c_str(), 100.0 * track.qualityLevels[quality]);
  std::printf("  backlight savings: %.1f%%\n", 100.0 * r.backlightSavings());
  std::printf("  total savings:     %.1f%%\n", 100.0 * r.totalSavings());
  std::printf("  switches: %zu, mean PSNR %.1f dB, mean EMD %.2f\n",
              r.backlightSwitches, r.meanPsnrDb, r.meanEmd);
  return 0;
}

int cmdExportProfile(const std::string& deviceName,
                     const std::string& outPath) {
  display::KnownDevice deviceId;
  if (!findDevice(deviceName, deviceId)) {
    std::fprintf(stderr, "unknown device '%s'\n", deviceName.c_str());
    return 1;
  }
  display::saveDeviceProfile(display::makeDevice(deviceId), outPath);
  std::printf("wrote %s\n", outPath.c_str());
  return 0;
}

int cmdShowProfile(const std::string& inPath) {
  const display::DeviceModel d = display::loadDeviceProfile(inPath);
  std::printf("%s: %s panel, %s backlight, %.2f W max, T(128)=%.3f\n",
              d.name.c_str(), toString(d.panel.type).c_str(),
              toString(d.backlight.type).c_str(), d.backlight.maxPowerWatts,
              d.transfer.relLuminance(128));
  return 0;
}

int cmdCharacterize(const std::string& deviceName) {
  display::KnownDevice deviceId;
  if (!findDevice(deviceName, deviceId)) {
    std::fprintf(stderr, "unknown device '%s' (try: devices)\n",
                 deviceName.c_str());
    return 1;
  }
  const display::DeviceModel device = display::makeDevice(deviceId);
  quality::CameraMeter meter;
  const display::CharacterizationResult result =
      display::characterizeDevice(device, meter, 18);
  std::printf("%s backlight->luminance (camera-measured):\n",
              device.name.c_str());
  const double top = result.backlightSweep.back().brightness;
  for (const display::SweepPoint& p : result.backlightSweep) {
    const int bars = static_cast<int>(40.0 * p.brightness / top);
    std::printf("  %3d |%.*s\n", p.x, bars,
                "########################################");
  }
  std::printf("fit error vs true transfer: %.3f\n", result.maxAbsFitError);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "clips") return cmdClips();
    if (cmd == "devices") return cmdDevices();
    if (cmd == "annotate" && argc >= 3) {
      return cmdAnnotate(argv[2], argc >= 4 ? std::atof(argv[3]) : 0.15);
    }
    if (cmd == "pack" && argc >= 4) {
      return cmdPack(argv[2], argv[3],
                     argc >= 5 ? std::strtoul(argv[4], nullptr, 10) : 1);
    }
    if (cmd == "inspect" && argc >= 3) return cmdInspect(argv[2]);
    if (cmd == "play" && argc >= 5) {
      return cmdPlay(argv[2], argv[3], std::strtoul(argv[4], nullptr, 10));
    }
    if (cmd == "characterize" && argc >= 3) return cmdCharacterize(argv[2]);
    if (cmd == "export-profile" && argc >= 4) {
      return cmdExportProfile(argv[2], argv[3]);
    }
    if (cmd == "show-profile" && argc >= 3) return cmdShowProfile(argv[2]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
