// Device characterization tool (the paper's Sec. 5 flow as a utility).
//
// Photographs solid gray patches on each known PDA model with the simulated
// digital camera, fits the backlight->luminance transfer function, and
// writes the sweep data as CSV files plus example snapshots as PGM images.
//
// Run: ./build/examples/characterize_device [output_dir]
#include <cstdio>
#include <filesystem>
#include <string>

#include "display/characterize.h"
#include "display/profile_io.h"
#include "media/io.h"
#include "quality/camera.h"

using namespace anno;

int main(int argc, char** argv) {
  const std::string outDir = argc > 1 ? argv[1] : "characterization_out";
  std::filesystem::create_directories(outDir);

  quality::CameraConfig camCfg;
  camCfg.noiseRms = 0.5;

  for (display::KnownDevice id : display::allKnownDevices()) {
    const display::DeviceModel device = display::makeDevice(id);
    std::printf("characterizing %s (%s panel, %s backlight)...\n",
                device.name.c_str(), toString(device.panel.type).c_str(),
                toString(device.backlight.type).c_str());

    quality::CameraMeter meter(camCfg);
    const display::CharacterizationResult result =
        display::characterizeDevice(device, meter, 24);

    // Fig. 7 data: brightness vs backlight level at white=255.
    media::CsvWriter fig7({"backlight_level", "measured_brightness"});
    for (const display::SweepPoint& p : result.backlightSweep) {
      fig7.addRow(std::vector<double>{static_cast<double>(p.x), p.brightness});
    }
    fig7.save(outDir + "/" + device.name + "_fig7_backlight_sweep.csv");

    // Fig. 8 data: brightness vs white value at backlight 255 / 128.
    media::CsvWriter fig8({"white_value", "brightness_bl255",
                           "brightness_bl128"});
    for (std::size_t i = 0; i < result.whiteSweepFull.size(); ++i) {
      fig8.addRow(std::vector<double>{
          static_cast<double>(result.whiteSweepFull[i].x),
          result.whiteSweepFull[i].brightness,
          result.whiteSweepHalf[i].brightness});
    }
    fig8.save(outDir + "/" + device.name + "_fig8_white_sweep.csv");

    // Fitted transfer LUT (what the client loads at negotiation time).
    media::CsvWriter lut({"backlight_level", "fitted_rel_luminance",
                          "true_rel_luminance"});
    for (int level = 0; level < 256; ++level) {
      lut.addRow(std::vector<double>{
          static_cast<double>(level),
          result.fittedTransfer.relLuminance(level),
          device.transfer.relLuminance(level)});
    }
    lut.save(outDir + "/" + device.name + "_transfer_lut.csv");

    // Example camera snapshots: the panel showing a mid-gray patch at full
    // and half backlight.
    quality::CameraModel camera(camCfg);
    const media::Image patch(96, 96, media::Rgb8{180, 180, 180});
    media::writePgm(camera.snapshot(device, patch, 255),
                    outDir + "/" + device.name + "_patch_bl255.pgm");
    media::writePgm(camera.snapshot(device, patch, 128),
                    outDir + "/" + device.name + "_patch_bl128.pgm");

    std::printf("  fit error vs true transfer: %.3f (max abs, 256 levels)\n",
                result.maxAbsFitError);

    // The deliverable a real characterization session produces: a device
    // profile with the CAMERA-FITTED transfer, loadable by any client.
    display::DeviceModel fitted = device;
    fitted.transfer = result.fittedTransfer;
    display::saveDeviceProfile(fitted,
                               outDir + "/" + device.name + ".profile");
  }
  std::printf("\nwrote sweep CSVs, transfer LUTs and snapshots to %s/\n",
              outDir.c_str());
  return 0;
}
