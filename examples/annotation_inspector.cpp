// Annotation inspector: shows exactly what rides along in the stream.
//
// Annotates a clip, prints the scene table (spans + per-quality luminance
// ceilings + per-device backlight levels), the serialized size breakdown,
// and writes an original/compensated frame pair as PPMs for eyeballing.
//
// Run: ./build/examples/annotation_inspector [clip_name] [output_dir]
//      clip_name in {themovie, catwoman, hunter_subres, i_robot, ice_age,
//                    officexp, returnoftheking, shrek2, spiderman2,
//                    theincredibles-tlr2}
#include <cstdio>
#include <filesystem>
#include <string>

#include "compensate/compensate.h"
#include "compensate/planner.h"
#include "core/anno_codec.h"
#include "core/annotate.h"
#include "core/runtime.h"
#include "media/clipgen.h"
#include "media/io.h"

using namespace anno;

int main(int argc, char** argv) {
  const std::string clipName = argc > 1 ? argv[1] : "i_robot";
  const std::string outDir = argc > 2 ? argv[2] : "inspector_out";

  media::PaperClip clipId = media::PaperClip::kIRobot;
  bool found = false;
  for (media::PaperClip c : media::allPaperClips()) {
    if (media::paperClipName(c) == clipName) {
      clipId = c;
      found = true;
      break;
    }
  }
  if (!found) {
    std::fprintf(stderr, "unknown clip '%s'\n", clipName.c_str());
    return 1;
  }

  const media::VideoClip clip =
      media::generatePaperClip(clipId, 0.12, 96, 72);
  const core::AnnotationTrack track = core::annotateClip(clip);
  const display::DeviceModel device =
      display::makeDevice(display::KnownDevice::kIpaq5555);

  std::printf("clip %s: %zu frames @ %.0f fps, %zu scenes\n\n",
              clip.name.c_str(), clip.frameCount(), clip.fps,
              track.scenes.size());

  std::printf("%-6s %-8s %-7s | safeLuma per quality | backlight (ipaq5555)\n",
              "scene", "frames", "t0(s)");
  for (std::size_t s = 0; s < track.scenes.size(); ++s) {
    const core::SceneAnnotation& scene = track.scenes[s];
    std::printf("%-6zu %-8u %-7.2f |", s, scene.span.frameCount,
                scene.span.firstFrame / clip.fps);
    for (std::uint8_t luma : scene.safeLuma) std::printf(" %4d", luma);
    std::printf(" |");
    for (std::uint8_t luma : scene.safeLuma) {
      std::printf(" %4d", compensate::planForLuma(device, luma).backlightLevel);
    }
    std::printf("\n");
  }

  const core::AnnotationSizeReport size = core::measureEncoding(track);
  std::printf(
      "\nserialized annotation: %zu bytes total "
      "(%zu header + %zu scene table; raw luma matrix %zu bytes pre-RLE)\n",
      size.encodedBytes, size.headerBytes, size.sceneTableBytes,
      size.rawLumaBytes);

  // Round-trip sanity.
  const core::AnnotationTrack decoded =
      core::decodeTrack(core::encodeTrack(track));
  std::printf("round-trip decode: %s\n",
              decoded == track ? "identical" : "MISMATCH");

  // Write a frame pair from the darkest scene at quality 10%.
  std::filesystem::create_directories(outDir);
  std::size_t darkest = 0;
  for (std::size_t s = 1; s < track.scenes.size(); ++s) {
    if (track.scenes[s].safeLuma[2] < track.scenes[darkest].safeLuma[2]) {
      darkest = s;
    }
  }
  const std::uint32_t f = track.scenes[darkest].span.firstFrame;
  const compensate::CompensationPlan plan =
      compensate::planForLuma(device, track.scenes[darkest].safeLuma[2]);
  media::writePpm(clip.frames[f], outDir + "/original.ppm");
  media::writePpm(compensate::contrastEnhance(clip.frames[f], plan.gainK),
                  outDir + "/compensated.ppm");
  std::printf(
      "\nwrote %s/original.ppm and %s/compensated.ppm (scene %zu, gain "
      "k=%.2f, backlight %d/255 -- view the compensated one dimmed to match)\n",
      outDir.c_str(), outDir.c_str(), darkest, plan.gainK,
      plan.backlightLevel);
  return 0;
}
