#include "fault/inject.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <stdexcept>

#include "media/rng.h"
#include "telemetry/metrics.h"

namespace anno::fault {
namespace {

/// Module-level instrument block, published atomically on attach.  One
/// counter per real mutation kind (identity never counts as applied).
struct FaultTelemetry {
  telemetry::Counter* plans = nullptr;
  std::array<telemetry::Counter*, 6> mutationsApplied{};
  telemetry::Counter* corpusBuffers = nullptr;
  telemetry::Counter* corpusMutated = nullptr;
};

std::atomic<const FaultTelemetry*> g_faultTelemetry{nullptr};

const FaultTelemetry* faultTelemetry() noexcept {
  return g_faultTelemetry.load(std::memory_order_acquire);
}

}  // namespace

void attachFaultTelemetry(telemetry::Registry& registry) {
  static FaultTelemetry block;
  block.plans = &registry.counter(
      "anno_fault_plans_total", {},
      "Injection plans expanded from seeds");
  for (std::uint8_t k = 0; k < block.mutationsApplied.size(); ++k) {
    block.mutationsApplied[k] = &registry.counter(
        "anno_fault_mutations_applied_total",
        {{"kind", mutationKindName(static_cast<MutationKind>(k))}},
        "Mutations that actually changed a buffer, by kind");
  }
  block.corpusBuffers = &registry.counter(
      "anno_fault_corpus_buffers_total", {},
      "Buffers produced by corpus runs");
  block.corpusMutated = &registry.counter(
      "anno_fault_corpus_mutated_total", {},
      "Corpus buffers that differed from the base");
  g_faultTelemetry.store(&block, std::memory_order_release);
}

void detachFaultTelemetry() noexcept {
  g_faultTelemetry.store(nullptr, std::memory_order_release);
}

namespace {

std::vector<MutationKind> enabledKinds(const InjectorConfig& cfg) {
  std::vector<MutationKind> kinds;
  if (cfg.bitFlips) kinds.push_back(MutationKind::kBitFlip);
  if (cfg.byteSets) kinds.push_back(MutationKind::kByteSet);
  if (cfg.truncations) kinds.push_back(MutationKind::kTruncate);
  if (cfg.duplications) kinds.push_back(MutationKind::kDuplicate);
  if (cfg.chunkDrops) kinds.push_back(MutationKind::kChunkDrop);
  if (cfg.reorders) kinds.push_back(MutationKind::kReorder);
  return kinds;
}

/// Applies one mutation in place; returns the as-applied (clamped) mutation,
/// or kIdentity if the buffer state made it a no-op.
Mutation applyOne(std::vector<std::uint8_t>& buf, Mutation m) {
  const std::size_t n = buf.size();
  switch (m.kind) {
    case MutationKind::kIdentity:
      break;
    case MutationKind::kBitFlip: {
      if (n == 0) return {};
      m.offset %= n;
      m.value &= 7;
      buf[m.offset] ^= static_cast<std::uint8_t>(1u << m.value);
      return m;
    }
    case MutationKind::kByteSet: {
      if (n == 0) return {};
      m.offset %= n;
      if (buf[m.offset] == m.value) return {};  // no change
      buf[m.offset] = m.value;
      return m;
    }
    case MutationKind::kTruncate: {
      // offset is the *kept* prefix length.
      if (n == 0) return {};
      m.offset %= n;  // keep in [0, n): always removes at least one byte
      m.length = n - m.offset;
      buf.resize(m.offset);
      return m;
    }
    case MutationKind::kDuplicate: {
      if (n == 0) return {};
      m.offset %= n;
      m.length = std::max<std::size_t>(1, std::min(m.length, n - m.offset));
      m.target %= (n + 1);
      const std::vector<std::uint8_t> chunk(
          buf.begin() + static_cast<std::ptrdiff_t>(m.offset),
          buf.begin() + static_cast<std::ptrdiff_t>(m.offset + m.length));
      buf.insert(buf.begin() + static_cast<std::ptrdiff_t>(m.target),
                 chunk.begin(), chunk.end());
      return m;
    }
    case MutationKind::kChunkDrop: {
      if (n == 0) return {};
      m.offset %= n;
      m.length = std::max<std::size_t>(1, std::min(m.length, n - m.offset));
      buf.erase(buf.begin() + static_cast<std::ptrdiff_t>(m.offset),
                buf.begin() + static_cast<std::ptrdiff_t>(m.offset + m.length));
      return m;
    }
    case MutationKind::kReorder: {
      if (n < 2) return {};
      m.offset %= n;
      m.length = std::max<std::size_t>(1, std::min(m.length, n - m.offset));
      const std::vector<std::uint8_t> chunk(
          buf.begin() + static_cast<std::ptrdiff_t>(m.offset),
          buf.begin() + static_cast<std::ptrdiff_t>(m.offset + m.length));
      buf.erase(buf.begin() + static_cast<std::ptrdiff_t>(m.offset),
                buf.begin() + static_cast<std::ptrdiff_t>(m.offset + m.length));
      m.target %= (buf.size() + 1);
      if (m.target == m.offset) {  // would reinsert in place
        m.target = (m.target + 1) % (buf.size() + 1);
      }
      buf.insert(buf.begin() + static_cast<std::ptrdiff_t>(m.target),
                 chunk.begin(), chunk.end());
      return m;
    }
  }
  return {};
}

}  // namespace

const char* mutationKindName(MutationKind kind) {
  switch (kind) {
    case MutationKind::kBitFlip: return "bit-flip";
    case MutationKind::kByteSet: return "byte-set";
    case MutationKind::kTruncate: return "truncate";
    case MutationKind::kDuplicate: return "duplicate";
    case MutationKind::kChunkDrop: return "chunk-drop";
    case MutationKind::kReorder: return "reorder";
    case MutationKind::kIdentity: return "identity";
  }
  return "unknown";
}

InjectionPlan planInjections(std::uint64_t seed, std::size_t bufferSize,
                             const InjectorConfig& cfg) {
  if (cfg.maxMutations == 0) {
    throw std::invalid_argument("planInjections: maxMutations must be > 0");
  }
  const std::vector<MutationKind> kinds = enabledKinds(cfg);
  if (kinds.empty()) {
    throw std::invalid_argument("planInjections: no mutation kinds enabled");
  }
  media::SplitMix64 rng(seed);
  InjectionPlan plan;
  plan.seed = seed;
  const std::size_t count = 1 + rng.below(cfg.maxMutations);
  const std::size_t span = std::max<std::size_t>(1, bufferSize);
  plan.mutations.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Mutation m;
    m.kind = kinds[rng.below(kinds.size())];
    m.offset = rng.below(span);
    m.length = 1 + rng.below(std::max<std::size_t>(1, cfg.maxChunkBytes));
    m.target = rng.below(span + 1);
    m.value = static_cast<std::uint8_t>(rng.below(256));
    plan.mutations.push_back(m);
  }
  if (const FaultTelemetry* t = faultTelemetry()) {
    telemetry::inc(t->plans);
  }
  return plan;
}

std::vector<std::uint8_t> applyPlan(std::span<const std::uint8_t> input,
                                    const InjectionPlan& plan,
                                    InjectionReport* report) {
  std::vector<std::uint8_t> buf(input.begin(), input.end());
  InjectionReport local;
  local.inputBytes = input.size();
  const FaultTelemetry* t = faultTelemetry();
  for (const Mutation& m : plan.mutations) {
    const Mutation applied = applyOne(buf, m);
    if (applied.kind != MutationKind::kIdentity) {
      local.applied.push_back(applied);
      ++local.mutationsApplied;
      if (t != nullptr) {
        const auto k = static_cast<std::size_t>(applied.kind);
        if (k < t->mutationsApplied.size()) {
          telemetry::inc(t->mutationsApplied[k]);
        }
      }
    }
  }
  local.outputBytes = buf.size();
  if (report != nullptr) *report = std::move(local);
  return buf;
}

std::vector<std::uint8_t> injectFaults(std::span<const std::uint8_t> input,
                                       std::uint64_t seed,
                                       const InjectorConfig& cfg,
                                       InjectionReport* report) {
  return applyPlan(input, planInjections(seed, input.size(), cfg), report);
}

std::size_t runCorpus(
    std::span<const std::uint8_t> base, std::uint64_t masterSeed,
    std::size_t count, const InjectorConfig& cfg,
    const std::function<void(std::span<const std::uint8_t>,
                             const InjectionPlan&,
                             const InjectionReport&)>& consume) {
  media::SplitMix64 master(masterSeed);
  std::size_t mutatedBuffers = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t seed = master.next();
    const InjectionPlan plan = planInjections(seed, base.size(), cfg);
    InjectionReport report;
    const std::vector<std::uint8_t> mutated = applyPlan(base, plan, &report);
    if (!report.identity()) ++mutatedBuffers;
    consume(mutated, plan, report);
  }
  if (const FaultTelemetry* t = faultTelemetry()) {
    telemetry::inc(t->corpusBuffers, count);
    telemetry::inc(t->corpusMutated, mutatedBuffers);
  }
  return mutatedBuffers;
}

}  // namespace anno::fault
