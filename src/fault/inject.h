// Deterministic byte-level fault injection for serialized buffers.
//
// Every wire format in this system (annotation tracks, mux containers,
// negotiation messages) eventually crosses the 802.11b hop the paper's
// system model ends on, and real radio paths corrupt, truncate, duplicate,
// drop and reorder data.  This module produces those faults *on purpose*,
// deterministically: a seed expands into an InjectionPlan -- an explicit
// list of mutations -- which applies to any byte buffer and yields a report
// of exactly what was changed.  Tests and benches replay plans byte-for-byte
// identically across runs and platforms (SplitMix64 arithmetic only).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace anno::telemetry {
class Registry;
}

namespace anno::fault {

/// Registers fault-injection instruments in `registry` and starts recording
/// from every plan/apply call in the process (free functions -> module-level
/// attachment):
///   anno_fault_plans_total, anno_fault_mutations_applied_total (labelled
///   {kind=...} per mutation kind), anno_fault_corpus_buffers_total,
///   anno_fault_corpus_mutated_total.
/// Detached by default; detach restores zero recording cost.
void attachFaultTelemetry(telemetry::Registry& registry);
void detachFaultTelemetry() noexcept;

/// The mutation repertoire: everything a lossy, reordering network or a bad
/// flash sector can plausibly do to a byte stream.
enum class MutationKind : std::uint8_t {
  kBitFlip = 0,    ///< flip one bit of one byte
  kByteSet = 1,    ///< overwrite one byte with an arbitrary value
  kTruncate = 2,   ///< drop the buffer's tail
  kDuplicate = 3,  ///< re-insert a copy of a chunk (retransmit duplicate)
  kChunkDrop = 4,  ///< erase a chunk (lost packet)
  kReorder = 5,    ///< move a chunk to another position (out-of-order arrival)
  kIdentity = 6,   ///< no-op (calibration: plan applies, nothing changes)
};

[[nodiscard]] const char* mutationKindName(MutationKind kind);

/// One planned mutation.  Offsets/lengths are expressed against the buffer
/// as it exists when the mutation applies (mutations apply in order, each
/// seeing the previous one's output) and are clamped to the live size, so a
/// plan generated for one buffer length applies safely to any other.
struct Mutation {
  MutationKind kind = MutationKind::kIdentity;
  std::size_t offset = 0;  ///< anchor byte
  std::size_t length = 0;  ///< chunk size (duplicate/drop/reorder), cut size (truncate)
  std::size_t target = 0;  ///< insertion point (duplicate/reorder)
  std::uint8_t value = 0;  ///< bit index (bit flip) or byte value (byte set)

  friend bool operator==(const Mutation&, const Mutation&) = default;
};

/// A deterministic, replayable mutation sequence.
struct InjectionPlan {
  std::uint64_t seed = 0;
  std::vector<Mutation> mutations;

  friend bool operator==(const InjectionPlan&, const InjectionPlan&) = default;
};

/// What a plan actually did to a particular buffer.
struct InjectionReport {
  std::size_t inputBytes = 0;
  std::size_t outputBytes = 0;
  std::size_t mutationsApplied = 0;  ///< mutations that changed the buffer
  /// The as-applied mutations (offsets/lengths after clamping); enumerates
  /// exactly what was changed, in application order.
  std::vector<Mutation> applied;

  [[nodiscard]] bool identity() const noexcept { return mutationsApplied == 0; }
};

/// Which mutation kinds a plan may draw from and how hard it hits.
struct InjectorConfig {
  std::size_t maxMutations = 4;    ///< plan length is 1..maxMutations
  std::size_t maxChunkBytes = 64;  ///< cap on duplicate/drop/reorder chunk size
  bool bitFlips = true;
  bool byteSets = true;
  bool truncations = true;
  bool duplications = true;
  bool chunkDrops = true;
  bool reorders = true;
};

/// Expands `seed` into a mutation plan sized for a `bufferSize`-byte buffer.
/// Deterministic: same (seed, bufferSize, cfg) -> same plan, on every
/// platform.  Throws std::invalid_argument if cfg enables nothing or
/// maxMutations == 0.
[[nodiscard]] InjectionPlan planInjections(std::uint64_t seed,
                                           std::size_t bufferSize,
                                           const InjectorConfig& cfg = {});

/// Applies `plan` to a copy of `input`; optionally reports what changed.
/// Never throws: every mutation clamps to the live buffer.
[[nodiscard]] std::vector<std::uint8_t> applyPlan(
    std::span<const std::uint8_t> input, const InjectionPlan& plan,
    InjectionReport* report = nullptr);

/// Convenience: plan + apply in one call.
[[nodiscard]] std::vector<std::uint8_t> injectFaults(
    std::span<const std::uint8_t> input, std::uint64_t seed,
    const InjectorConfig& cfg = {}, InjectionReport* report = nullptr);

/// Seeded corpus runner: derives `count` independent plans from `masterSeed`
/// (SplitMix64 split stream), applies each to `base`, and hands every
/// mutated buffer to `consume` together with its plan and report.  The
/// consume callback is the assertion site; the runner only guarantees the
/// corpus is deterministic and returns how many buffers differed from the
/// base.
std::size_t runCorpus(
    std::span<const std::uint8_t> base, std::uint64_t masterSeed,
    std::size_t count, const InjectorConfig& cfg,
    const std::function<void(std::span<const std::uint8_t> mutated,
                             const InjectionPlan& plan,
                             const InjectionReport& report)>& consume);

}  // namespace anno::fault
