// Annotation-driven adaptation for emissive (OLED) clients.
//
// The negotiation routes each display technology its own mechanism: backlit
// LCDs get compensated streams + backlight schedules; emissive panels get
// the ORIGINAL pixels, and this module turns the very same annotations --
// per-scene luminance ceilings and histogram sketches -- into per-scene
// CONTENT dimming: the brighter a scene, the more a bounded perceived-error
// budget buys, because emissive power is convex (~gamma 2.2) in drive.
// Client cost stays annotation-grade: one multiply per scene, no analysis.
#pragma once

#include <cstdint>
#include <vector>

#include "core/annotation.h"
#include "core/sketch.h"
#include "display/emissive.h"
#include "media/video.h"

namespace anno::player {

/// One scene's dimming decision.
struct OledSceneDecision {
  std::uint32_t firstFrame = 0;
  double dimFactor = 1.0;  ///< pixels scaled by this in [minDim, 1]
};

/// Controller knobs.
struct OledPlanConfig {
  /// Maximum mean perceived-luminance reduction, in 8-bit code units
  /// (mirrors the LCD path's average-point-shift threshold).
  double maxMeanLumaDrop = 8.0;
  /// Never dim below this factor (readability floor).
  double minDimFactor = 0.6;
};

/// Plans per-scene dim factors from the stream's annotations: each scene's
/// mean luminance comes from its histogram sketch, and the factor is the
/// deepest dim whose mean luminance drop stays within the budget.
[[nodiscard]] std::vector<OledSceneDecision> planOledDimming(
    const core::AnnotationTrack& track, const core::SketchTrack& sketches,
    const OledPlanConfig& cfg = {});

/// Playback outcome on an emissive panel.
struct OledPlaybackReport {
  double panelEnergyJ = 0.0;
  double panelEnergyOriginalJ = 0.0;  ///< undimmed reference
  double meanLumaDrop = 0.0;          ///< measured, code units
  std::size_t dimChanges = 0;

  [[nodiscard]] double panelSavings() const noexcept {
    return panelEnergyOriginalJ > 0.0
               ? 1.0 - panelEnergyJ / panelEnergyOriginalJ
               : 0.0;
  }
};

/// Applies the plan frame by frame on the emissive panel model and
/// integrates panel energy plus the measured quality cost.
[[nodiscard]] OledPlaybackReport playEmissive(
    const media::VideoClip& clip, const core::AnnotationTrack& track,
    const std::vector<OledSceneDecision>& plan,
    const display::EmissiveDisplay& panel);

}  // namespace anno::player
