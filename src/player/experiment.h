// Experiment drivers shared by the benches: run a clip through the full
// annotation pipeline at every quality level (Fig. 9), and replay the
// resulting power trace through the DAQ rig for "measured" totals (Fig. 10).
#pragma once

#include <string>
#include <vector>

#include "core/annotate.h"
#include "media/video.h"
#include "player/playback.h"
#include "power/daq.h"
#include "power/power.h"

namespace anno::player {

/// One clip x all quality levels.
struct ClipExperimentResult {
  std::string clipName;
  std::vector<double> qualityLevels;
  /// reports[q]: annotation-policy playback at quality level q.
  std::vector<PlaybackReport> reports;
};

/// Runs the annotation scheme on `clip` for every quality level in `cfg`:
/// annotate once (the offline core::AnnotationEngine adapter -- the same
/// engine every streaming path runs), then per level compensate
/// server-side, build the client schedule, and play back on `devicePower`.
[[nodiscard]] ClipExperimentResult runAnnotationExperiment(
    const media::VideoClip& clip, const power::MobileDevicePower& devicePower,
    const core::AnnotatorConfig& annotatorCfg = {},
    const PlaybackConfig& playbackCfg = {});

/// "Measured" power via the DAQ rig: reconstructs the device's power as a
/// piecewise-constant function of time from a playback report's per-frame
/// trace and samples it at 20 kS/s through the simulated measurement chain.
/// Returns the measured average power in watts.
[[nodiscard]] double measureAverageWatts(const PlaybackReport& report,
                                         double fps,
                                         const power::DaqConfig& daqCfg = {});

}  // namespace anno::player
