// Backlight policies: the annotation runtime plus every comparison baseline.
//
//  - AnnotationPolicy        the paper's scheme: levels from the annotation
//                            schedule; frames arrive already compensated.
//  - AnnotationClientPolicy  ablation: annotations drive the level but the
//                            gain is applied on the client CPU.
//  - FullBacklightPolicy     status quo: backlight pinned at 255.
//  - OracleFramePolicy       per-frame DLS with perfect knowledge of the
//                            current frame (upper bound; may flicker).
//  - HistoryPolicy           no annotations: predict the current frame's
//                            safe luminance from recent history (what a
//                            client must do without annotations; Sec. 3
//                            warns its mispredictions degrade quality).
//  - QabsPolicy              QABS-like baseline [Cheng et al. '05]: dim as
//                            far as a per-frame PSNR floor allows.
//  - SmoothedPolicy          decorator bounding the per-frame level slew
//                            (the postprocessing smoothing of [4] that the
//                            annotation scheme renders unnecessary).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>

#include "core/runtime.h"
#include "core/sketch.h"
#include "display/device.h"
#include "player/policy.h"

namespace anno::player {

/// The paper's scheme (server-side compensation).
class AnnotationPolicy final : public BacklightPolicy {
 public:
  explicit AnnotationPolicy(core::BacklightSchedule schedule);

  [[nodiscard]] std::string name() const override { return "annotation"; }
  [[nodiscard]] FrameDecision decide(std::uint32_t frameIndex,
                                     const media::FrameStats&) override;

 private:
  core::BacklightSchedule schedule_;
};

/// Ablation: annotation-driven levels, client-side compensation.
class AnnotationClientPolicy final : public BacklightPolicy {
 public:
  explicit AnnotationClientPolicy(core::BacklightSchedule schedule);

  [[nodiscard]] std::string name() const override {
    return "annotation-client-comp";
  }
  [[nodiscard]] FrameDecision decide(std::uint32_t frameIndex,
                                     const media::FrameStats&) override;

 private:
  core::BacklightSchedule schedule_;
};

/// Status quo.
class FullBacklightPolicy final : public BacklightPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "full-backlight"; }
  [[nodiscard]] FrameDecision decide(std::uint32_t,
                                     const media::FrameStats&) override {
    return FrameDecision{};
  }
};

/// Per-frame oracle DLS (client-side compensation, perfect knowledge).
class OracleFramePolicy final : public BacklightPolicy {
 public:
  OracleFramePolicy(display::DeviceModel device, double clipFraction,
                    int minBacklightLevel = 10);

  [[nodiscard]] std::string name() const override { return "oracle-frame"; }
  [[nodiscard]] FrameDecision decide(std::uint32_t,
                                     const media::FrameStats& stats) override;

 private:
  display::DeviceModel device_;
  double clipFraction_;
  int minLevel_;
};

/// History-based prediction (no annotations).  Predicts the current frame's
/// clip-safe luminance as the recent-window maximum plus a safety margin.
/// Tracks its own mispredictions: frames whose actual safe luminance
/// exceeded the ceiling it chose (visible over-clipping).
class HistoryPolicy final : public BacklightPolicy {
 public:
  HistoryPolicy(display::DeviceModel device, double clipFraction,
                int windowFrames = 8, double margin = 1.05,
                int minBacklightLevel = 10);

  [[nodiscard]] std::string name() const override { return "history"; }
  [[nodiscard]] FrameDecision decide(std::uint32_t,
                                     const media::FrameStats& stats) override;

  /// Frames where the chosen ceiling fell below the frame's actual
  /// clip-safe luminance (quality violations beyond the budget).
  [[nodiscard]] std::size_t mispredictions() const noexcept {
    return mispredictions_;
  }

 private:
  display::DeviceModel device_;
  double clipFraction_;
  std::size_t window_;
  double margin_;
  int minLevel_;
  std::deque<std::uint8_t> history_;
  std::size_t mispredictions_ = 0;
};

/// QABS-like PSNR-constrained scaling: per frame, the dimmest backlight
/// whose compensation-induced clipping keeps estimated PSNR above a floor.
class QabsPolicy final : public BacklightPolicy {
 public:
  QabsPolicy(display::DeviceModel device, double minPsnrDb = 35.0,
             int minBacklightLevel = 10);

  [[nodiscard]] std::string name() const override { return "qabs"; }
  [[nodiscard]] FrameDecision decide(std::uint32_t,
                                     const media::FrameStats& stats) override;

 private:
  display::DeviceModel device_;
  double minPsnrDb_;
  int minLevel_;
};

/// Slew-rate-limiting decorator (anti-flicker smoothing).  Dimming is
/// gradual; brightening is immediate (never undershoot the content).  When
/// the limited level differs from the inner policy's request, the gain is
/// re-derived from the achieved level via the device transfer so perceived
/// intensity stays matched.
class SmoothedPolicy final : public BacklightPolicy {
 public:
  SmoothedPolicy(std::unique_ptr<BacklightPolicy> inner,
                 display::DeviceModel device, int maxStepPerFrame = 8);

  [[nodiscard]] std::string name() const override {
    return inner_->name() + "+smoothed";
  }
  [[nodiscard]] FrameDecision decide(std::uint32_t frameIndex,
                                     const media::FrameStats& stats) override;

 private:
  std::unique_ptr<BacklightPolicy> inner_;
  display::DeviceModel device_;
  int maxStep_;
  int current_ = -1;
};

/// DTM-like baseline [Iranli & Pedram, DAC'05]: per frame, walks the
/// backlight down while a soft-knee tone curve keeps the luminance MSE
/// (vs ideal perceived-intensity preservation) under `maxMse`.  Tone
/// mapping rolls bright pixels off smoothly instead of clipping them, so
/// it tolerates deeper dimming on mid-bright content, at the cost of
/// client-side per-pixel work and some highlight compression.
class DtmPolicy final : public BacklightPolicy {
 public:
  DtmPolicy(display::DeviceModel device, double maxMse = 9.0,
            double kneeFraction = 0.85, int minBacklightLevel = 10);

  [[nodiscard]] std::string name() const override { return "dtm"; }
  [[nodiscard]] FrameDecision decide(std::uint32_t,
                                     const media::FrameStats& stats) override;

 private:
  display::DeviceModel device_;
  double maxMse_;
  double kneeFraction_;
  int minLevel_;
};

/// Sketch-driven DTM: tone mapping from the stream's per-scene histogram
/// SKETCHES (core/sketch.h) -- the client gets DtmPolicy-class adaptation
/// with ZERO frame analysis, the same delegation story as the backlight
/// annotations.  All decisions are precomputed per scene at construction;
/// decide() ignores the frame statistics entirely.
class SketchDtmPolicy final : public BacklightPolicy {
 public:
  SketchDtmPolicy(const display::DeviceModel& device,
                  core::AnnotationTrack track, core::SketchTrack sketches,
                  double maxMse = 9.0, double kneeFraction = 0.85,
                  int minBacklightLevel = 10);

  [[nodiscard]] std::string name() const override { return "dtm-sketch"; }
  [[nodiscard]] FrameDecision decide(std::uint32_t frameIndex,
                                     const media::FrameStats&) override;

 private:
  core::AnnotationTrack track_;
  std::vector<FrameDecision> perScene_;
};

/// Estimated PSNR (dB) of showing a frame with luma histogram `hist` under a
/// luminance ceiling `lumaCeiling` (clipped pixels lose (y - ceiling) of
/// luminance; unclipped pixels are exact under ideal compensation).
[[nodiscard]] double estimatePsnrUnderCeiling(const media::Histogram& hist,
                                              double lumaCeiling);

}  // namespace anno::player
