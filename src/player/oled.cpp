#include "player/oled.h"

#include <algorithm>
#include <stdexcept>

#include "media/luminance.h"

namespace anno::player {

std::vector<OledSceneDecision> planOledDimming(
    const core::AnnotationTrack& track, const core::SketchTrack& sketches,
    const OledPlanConfig& cfg) {
  core::validateTrack(track);
  if (sketches.scenes.size() != track.scenes.size()) {
    throw std::invalid_argument(
        "planOledDimming: sketch count != scene count");
  }
  if (cfg.maxMeanLumaDrop < 0.0 || cfg.minDimFactor <= 0.0 ||
      cfg.minDimFactor > 1.0) {
    throw std::invalid_argument("planOledDimming: bad configuration");
  }
  std::vector<OledSceneDecision> plan;
  plan.reserve(track.scenes.size());
  for (std::size_t s = 0; s < track.scenes.size(); ++s) {
    // Scene mean luminance from the sketch (no pixels needed).
    const media::Histogram hist = core::expandSketch(sketches.scenes[s]);
    const double mean = std::max(1.0, hist.averagePoint());
    // Dimming by d drops the mean by (1-d)*mean; the deepest in-budget d:
    const double d = std::clamp(1.0 - cfg.maxMeanLumaDrop / mean,
                                cfg.minDimFactor, 1.0);
    plan.push_back({track.scenes[s].span.firstFrame, d});
  }
  return plan;
}

OledPlaybackReport playEmissive(const media::VideoClip& clip,
                                const core::AnnotationTrack& track,
                                const std::vector<OledSceneDecision>& plan,
                                const display::EmissiveDisplay& panel) {
  media::validateClip(clip);
  core::validateTrack(track);
  if (plan.size() != track.scenes.size()) {
    throw std::invalid_argument("playEmissive: plan size != scene count");
  }
  if (clip.frames.size() != track.frameCount) {
    throw std::invalid_argument(
        "playEmissive: clip frame count != track frame count");
  }
  const double frameSeconds = 1.0 / clip.fps;
  OledPlaybackReport report;
  double lumaDropSum = 0.0;
  double prevFactor = -1.0;
  for (std::size_t s = 0; s < track.scenes.size(); ++s) {
    const core::SceneAnnotation& scene = track.scenes[s];
    const double d = plan[s].dimFactor;
    if (prevFactor >= 0.0 && d != prevFactor) ++report.dimChanges;
    prevFactor = d;
    for (std::uint32_t f = scene.span.firstFrame; f <= scene.span.lastFrame();
         ++f) {
      const media::Image& original = clip.frames[f];
      const media::Image dimmed = display::dimContent(original, d);
      report.panelEnergyJ += panel.powerWatts(dimmed) * frameSeconds;
      report.panelEnergyOriginalJ +=
          panel.powerWatts(original) * frameSeconds;
      lumaDropSum += media::analyzeLuminance(original).meanLuma -
                     media::analyzeLuminance(dimmed).meanLuma;
    }
  }
  report.meanLumaDrop =
      lumaDropSum / static_cast<double>(clip.frames.size());
  return report;
}

}  // namespace anno::player
