#include "player/integrated.h"

#include <algorithm>
#include <stdexcept>

namespace anno::player {

IntegratedReport playIntegrated(const media::EncodedClip& encoded,
                                const core::BacklightSchedule& schedule,
                                const power::MobileDevicePower& devicePower,
                                const power::DvfsCpu& cpu,
                                const stream::Link& wirelessLink,
                                const IntegratedConfig& cfg) {
  if (encoded.frames.empty() || encoded.fps <= 0.0) {
    throw std::invalid_argument("playIntegrated: empty or invalid clip");
  }
  const double frameSeconds = 1.0 / encoded.fps;
  const auto pixels = static_cast<std::size_t>(encoded.width) *
                      static_cast<std::size_t>(encoded.height);

  IntegratedReport report;
  report.durationSeconds =
      static_cast<double>(encoded.frames.size()) * frameSeconds;

  // ---- Radio: burst schedule over the whole clip ---------------------------
  {
    std::vector<std::size_t> wireBytes;
    wireBytes.reserve(encoded.frames.size());
    for (const media::EncodedFrame& f : encoded.frames) {
      wireBytes.push_back(
          stream::transferOverLink(wirelessLink, f.sizeBytes()).wireBytes);
    }
    const stream::NicScheduleResult nic =
        cfg.useAnnotatedRadio
            ? stream::nicAnnotated(devicePower.nic(), wireBytes, wirelessLink,
                                   encoded.fps, cfg.nicCfg)
            : stream::nicAlwaysOn(devicePower.nic(), wireBytes, wirelessLink,
                                  encoded.fps);
    report.nicEnergyJ = nic.energyJoules;
  }

  // ---- CPU + backlight, frame by frame -------------------------------------
  // `debt` carries decode overrun into following frame periods; while the
  // decoder is behind, arriving frames are dropped (their decode is skipped,
  // matching a player that discards late frames to resynchronize).
  double debtSeconds = 0.0;
  const std::size_t topOpp = cpu.oppCount() - 1;
  std::size_t debtOpp = topOpp;  // OPP the in-flight overrun is running at
  for (std::size_t i = 0; i < encoded.frames.size(); ++i) {
    // Backlight for this frame period.
    const std::uint8_t level =
        cfg.useAnnotatedBacklight
            ? schedule.levelAt(static_cast<std::uint32_t>(i))
            : 255;
    report.backlightEnergyJ +=
        devicePower.backlightWatts(level) * frameSeconds;

    if (debtSeconds >= frameSeconds) {
      // Still decoding an earlier frame: this frame is dropped, the CPU
      // keeps burning at the OPP that incurred the debt.
      ++report.droppedFrames;
      debtSeconds -= frameSeconds;
      report.cpuEnergyJ += cpu.activeWatts(debtOpp) * frameSeconds;
      continue;
    }

    const double megacycles = cfg.workModel.megacyclesFor(
        encoded.frames[i].sizeBytes(), pixels);
    const double budget = frameSeconds - debtSeconds;
    const std::size_t opp = cfg.useAnnotatedDvfs
                                ? cpu.lowestOppFor(megacycles, budget)
                                : topOpp;
    const double busy = cpu.secondsFor(megacycles, opp);
    if (busy > budget + 1e-12) {
      // Deadline miss: the NEXT frame(s) will be dropped while we finish.
      debtSeconds = busy - budget;
      debtOpp = opp;
      report.cpuEnergyJ += cpu.activeWatts(opp) * frameSeconds;
    } else {
      const double idle = budget - busy;
      // The leftover debt (if any) finished at the OPP that incurred it;
      // this frame's own decode runs at the freshly chosen OPP.
      report.cpuEnergyJ += cpu.activeWatts(debtOpp) * debtSeconds +
                           cpu.activeWatts(opp) * busy +
                           cpu.idleWatts() * idle;
      debtSeconds = 0.0;
    }
  }

  // ---- Fixed remainder: panel + device base ---------------------------------
  power::OperatingPoint idleOp{power::CpuState::kIdle, power::NicState::kSleep,
                               0, true};
  const double fixedWatts = devicePower.totalWatts(idleOp) -
                            devicePower.cpu().idleWatts -
                            devicePower.nic().sleepWatts;
  report.fixedEnergyJ = fixedWatts * report.durationSeconds;
  return report;
}

}  // namespace anno::player
