// Battery-aware adaptive quality control.
//
// Paper Sec. 4.2: "The user specifies the quality level when he requests
// the video clip from the server and the system tries to maximize power
// savings while maintaining the quality of service above the given
// threshold" -- and Sec. 5: savings can go higher still "if the user allows
// a more aggressive QoS-energy trade-off".
//
// This controller closes that loop at runtime: given the battery's state of
// charge and a target playback time (e.g. "this 2h movie must finish"), it
// selects, per scene, the LOWEST quality degradation whose projected energy
// still meets the target -- sliding along the annotation track's quality
// axis only as far as the battery requires.  Because every quality level's
// backlight schedule is derivable from the same annotations, switching
// level costs the client nothing but a different table column.
#pragma once

#include <cstdint>
#include <vector>

#include "core/annotation.h"
#include "display/device.h"
#include "power/battery.h"
#include "power/power.h"

namespace anno::player {

/// Controller inputs.
struct AdaptiveConfig {
  double batteryChargeFraction = 1.0;  ///< state of charge at playback start
  double targetSeconds = 0.0;          ///< playback that must complete
  /// Quality index the user prefers (the controller never goes BELOW the
  /// clip budget of this level unless the battery demands it).
  std::size_t preferredQuality = 0;
  int minBacklightLevel = 10;
};

/// One scene's decision.
struct AdaptiveDecision {
  std::uint32_t firstFrame = 0;
  std::size_t qualityIndex = 0;
  std::uint8_t backlightLevel = 255;
};

/// Controller output.
struct AdaptivePlan {
  std::vector<AdaptiveDecision> decisions;  ///< one per scene
  double projectedEnergyJoules = 0.0;       ///< whole-clip device energy
  double availableEnergyJoules = 0.0;
  bool feasible = false;  ///< target met (possibly at max degradation)
  /// Highest quality index used anywhere (the degradation actually paid).
  std::size_t worstQualityUsed = 0;
};

/// Builds the plan.  Projection uses the whole-device power model at each
/// candidate quality level; scenes are upgraded to cheaper (more degraded)
/// levels greedily, most-expensive-scene first, until the projection fits
/// the available energy or every scene is at the last level.
[[nodiscard]] AdaptivePlan planAdaptivePlayback(
    const core::AnnotationTrack& track,
    const power::MobileDevicePower& devicePower,
    const power::BatteryModel& battery, const AdaptiveConfig& cfg);

}  // namespace anno::player
