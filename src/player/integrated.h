// Integrated playback: backlight scaling + DVFS + radio scheduling in one
// frame loop, with their interactions modeled -- a DVFS deadline miss is a
// DROPPED FRAME (the previous frame stays on screen), radio bursts overlap
// decode, and every component's energy is integrated per frame.
//
// This is the "whole system" view the combined bench approximates
// analytically; here the coupling is explicit and testable.
#pragma once

#include <cstdint>
#include <vector>

#include "core/runtime.h"
#include "media/codec.h"
#include "media/video.h"
#include "power/battery.h"
#include "power/dvfs.h"
#include "power/power.h"
#include "stream/net.h"
#include "stream/traffic.h"

namespace anno::player {

/// Integrated run configuration.
struct IntegratedConfig {
  bool useAnnotatedBacklight = true;
  bool useAnnotatedDvfs = true;
  bool useAnnotatedRadio = true;
  power::DecodeWorkModel workModel;
  stream::NicScheduleConfig nicCfg;
};

/// Per-component and total energy plus playback health.
struct IntegratedReport {
  double durationSeconds = 0.0;
  double backlightEnergyJ = 0.0;
  double cpuEnergyJ = 0.0;
  double nicEnergyJ = 0.0;
  double fixedEnergyJ = 0.0;  ///< panel + base (not optimized by anything)
  std::size_t droppedFrames = 0;

  [[nodiscard]] double totalEnergyJ() const noexcept {
    return backlightEnergyJ + cpuEnergyJ + nicEnergyJ + fixedEnergyJ;
  }
  [[nodiscard]] double averageWatts() const noexcept {
    return durationSeconds > 0.0 ? totalEnergyJ() / durationSeconds : 0.0;
  }
};

/// Runs the integrated loop over an ENCODED clip (sizes drive CPU and
/// radio) with a backlight schedule from the annotation track.
///
/// Component behaviour per flag:
///  - backlight: annotated schedule vs pinned 255.
///  - CPU: annotated lowest-feasible OPP vs race-to-idle at the top OPP.
///    Either way, if the chosen OPP cannot decode the frame within its
///    period, the frame is dropped and the overrun spills into the next
///    period (decode continues; the backlight command still applies).
///  - radio: annotated burst schedule vs always-on (rx during bursts,
///    idle-listen otherwise).
[[nodiscard]] IntegratedReport playIntegrated(
    const media::EncodedClip& encoded, const core::BacklightSchedule& schedule,
    const power::MobileDevicePower& devicePower, const power::DvfsCpu& cpu,
    const stream::Link& wirelessLink, const IntegratedConfig& cfg = {});

}  // namespace anno::player
