#include "player/experiment.h"

#include <stdexcept>

#include "player/baselines.h"

namespace anno::player {

ClipExperimentResult runAnnotationExperiment(
    const media::VideoClip& clip, const power::MobileDevicePower& devicePower,
    const core::AnnotatorConfig& annotatorCfg,
    const PlaybackConfig& playbackCfg) {
  media::validateClip(clip);
  const display::DeviceModel& device = devicePower.displayDevice();
  const core::AnnotationTrack track = core::annotateClip(clip, annotatorCfg);

  ClipExperimentResult result;
  result.clipName = clip.name;
  result.qualityLevels = track.qualityLevels;
  result.reports.reserve(track.qualityLevels.size());

  for (std::size_t q = 0; q < track.qualityLevels.size(); ++q) {
    const media::VideoClip compensated =
        core::compensateClip(clip, track, q, device);
    const core::BacklightSchedule schedule =
        core::buildSchedule(track, q, device);
    AnnotationPolicy policy(schedule);
    result.reports.push_back(
        play(clip, compensated, policy, devicePower, playbackCfg));
  }
  return result;
}

double measureAverageWatts(const PlaybackReport& report, double fps,
                           const power::DaqConfig& daqCfg) {
  if (report.frameTotalPowerW.empty() || fps <= 0.0) {
    throw std::invalid_argument("measureAverageWatts: empty report or bad fps");
  }
  const double frameSeconds = 1.0 / fps;
  const auto& trace = report.frameTotalPowerW;
  power::DaqSimulator daq(daqCfg);
  const power::PowerTrace measured = daq.record(
      [&](double t) {
        auto idx = static_cast<std::size_t>(t / frameSeconds);
        if (idx >= trace.size()) idx = trace.size() - 1;
        return trace[idx];
      },
      static_cast<double>(trace.size()) * frameSeconds);
  return measured.averageWatts();
}

}  // namespace anno::player
