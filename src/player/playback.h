// Playback engine: drives frames through a backlight policy, renders the
// panel, tracks quality against a full-backlight reference, and integrates
// component power -- the software analogue of the paper's instrumented iPAQ
// running the modified Berkeley MPEG player.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "media/video.h"
#include "player/policy.h"
#include "power/power.h"
#include "quality/metrics.h"

namespace anno::player {

/// Engine knobs.
struct PlaybackConfig {
  /// Evaluate perceived quality every Nth frame (panel render + histograms
  /// are the expensive part; 1 = every frame).
  int qualityEvalStride = 4;
  /// Ambient illumination during playback (0 = dark room, the paper's
  /// measurement setup).
  double ambientRel = 0.0;
  /// The client is receiving the stream while playing (NIC in receive).
  bool streamingWhilePlaying = true;
};

/// Everything the experiments read out of one playback run.
struct PlaybackReport {
  std::string policyName;
  double durationSeconds = 0.0;

  // Energy.
  double backlightEnergyJ = 0.0;
  double backlightEnergyFullJ = 0.0;  ///< same playback at level 255
  double totalEnergyJ = 0.0;
  double totalEnergyFullJ = 0.0;
  [[nodiscard]] double backlightSavings() const noexcept {
    return backlightEnergyFullJ > 0.0
               ? 1.0 - backlightEnergyJ / backlightEnergyFullJ
               : 0.0;
  }
  [[nodiscard]] double totalSavings() const noexcept {
    return totalEnergyFullJ > 0.0 ? 1.0 - totalEnergyJ / totalEnergyFullJ
                                  : 0.0;
  }

  // Flicker.  Each switch keeps the backlight in transition for the
  // device's response time (paper Sec. 2: CCFL ~tens of ms, LED ~ms --
  // why per-frame adaptation flickers visibly on CCFL devices).
  std::size_t backlightSwitches = 0;
  double transitionSeconds = 0.0;
  [[nodiscard]] double transitionFraction() const noexcept {
    return durationSeconds > 0.0 ? transitionSeconds / durationSeconds : 0.0;
  }

  // Quality (perceived panel output vs full-backlight original).
  double meanEmd = 0.0;        ///< histogram earth-mover distance
  double meanPsnrDb = 0.0;     ///< PSNR of perceived images
  double meanSsim = 1.0;       ///< structural similarity of perceived images
  double worstEmd = 0.0;
  std::size_t qualityEvalCount = 0;

  // Per-frame traces (Fig. 6 inputs; frameTotalPowerW also feeds the DAQ
  // "measured" experiments).
  std::vector<std::uint8_t> frameBacklightLevel;
  std::vector<double> frameBacklightPowerW;
  std::vector<double> frameTotalPowerW;
  std::vector<std::uint8_t> frameMaxLuma;  ///< of the ORIGINAL frames
};

/// Plays `received` (what the client got -- possibly server-compensated)
/// against `reference` (the original clip at full backlight) under `policy`.
/// Both clips must have the same frame count/geometry.
[[nodiscard]] PlaybackReport play(const media::VideoClip& reference,
                                  const media::VideoClip& received,
                                  BacklightPolicy& policy,
                                  const power::MobileDevicePower& devicePower,
                                  const PlaybackConfig& cfg = {});

}  // namespace anno::player
