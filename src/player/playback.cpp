#include "player/playback.h"

#include <algorithm>
#include <stdexcept>

#include "compensate/compensate.h"
#include "display/panel.h"
#include "media/histogram.h"

namespace anno::player {

PlaybackReport play(const media::VideoClip& reference,
                    const media::VideoClip& received,
                    BacklightPolicy& policy,
                    const power::MobileDevicePower& devicePower,
                    const PlaybackConfig& cfg) {
  media::validateClip(reference);
  media::validateClip(received);
  if (reference.frames.size() != received.frames.size() ||
      reference.width() != received.width() ||
      reference.height() != received.height()) {
    throw std::invalid_argument("play: reference/received geometry mismatch");
  }
  if (cfg.qualityEvalStride < 1) {
    throw std::invalid_argument("play: qualityEvalStride >= 1");
  }

  const display::DeviceModel& device = devicePower.displayDevice();
  const double frameSeconds = 1.0 / received.fps;
  const power::NicState nic = cfg.streamingWhilePlaying
                                  ? power::NicState::kReceive
                                  : power::NicState::kIdle;

  PlaybackReport report;
  report.policyName = policy.name();
  report.durationSeconds = received.durationSeconds();
  report.frameBacklightLevel.reserve(received.frames.size());
  report.frameBacklightPowerW.reserve(received.frames.size());
  report.frameMaxLuma.reserve(received.frames.size());

  int previousLevel = -1;
  double emdSum = 0.0;
  double psnrSum = 0.0;
  double ssimSum = 0.0;

  for (std::uint32_t i = 0; i < received.frames.size(); ++i) {
    const media::Image& rxFrame = received.frames[i];
    const media::FrameStats rxStats = media::profileFrame(rxFrame);
    const FrameDecision decision = policy.decide(i, rxStats);

    // The frame actually put on the panel.
    media::Image displayedFrame =
        decision.toneCurve
            ? compensate::applyToneCurve(rxFrame, *decision.toneCurve)
            : (decision.gainAppliedOnClient && decision.gainK > 1.0
                   ? compensate::contrastEnhance(rxFrame, decision.gainK)
                   : rxFrame);

    // --- Power accounting -------------------------------------------------
    power::OperatingPoint op;
    op.cpu = decision.gainAppliedOnClient || decision.toneCurve
                 ? power::CpuState::kDecodeCompensate
                 : power::CpuState::kDecode;
    op.nic = nic;
    op.backlightLevel = decision.backlightLevel;
    const double framePower = devicePower.totalWatts(op);
    const double backlightPower =
        devicePower.backlightWatts(decision.backlightLevel);

    power::OperatingPoint fullOp;
    fullOp.cpu = power::CpuState::kDecode;  // baseline player: no compensation
    fullOp.nic = nic;
    fullOp.backlightLevel = 255;
    report.totalEnergyJ += framePower * frameSeconds;
    report.totalEnergyFullJ += devicePower.totalWatts(fullOp) * frameSeconds;
    report.backlightEnergyJ += backlightPower * frameSeconds;
    report.backlightEnergyFullJ +=
        devicePower.backlightWatts(255) * frameSeconds;

    if (previousLevel >= 0 && previousLevel != decision.backlightLevel) {
      ++report.backlightSwitches;
      report.transitionSeconds +=
          device.backlight.responseTimeMs / 1000.0;
    }
    previousLevel = decision.backlightLevel;

    // --- Traces -----------------------------------------------------------
    const media::FrameStats refStats = media::profileFrame(reference.frames[i]);
    report.frameBacklightLevel.push_back(decision.backlightLevel);
    report.frameBacklightPowerW.push_back(backlightPower);
    report.frameTotalPowerW.push_back(framePower);
    report.frameMaxLuma.push_back(refStats.luminance.maxLuma);

    // --- Perceived quality -------------------------------------------------
    if (i % static_cast<std::uint32_t>(cfg.qualityEvalStride) == 0) {
      const double backlightRel =
          device.transfer.relLuminance(decision.backlightLevel);
      const media::GrayImage perceived = display::displayedLuma(
          device.panel, displayedFrame, backlightRel, cfg.ambientRel);
      const media::GrayImage ideal = display::displayedLuma(
          device.panel, reference.frames[i], 1.0, cfg.ambientRel);
      const double emd = media::Histogram::earthMovers(
          media::Histogram::ofGray(ideal), media::Histogram::ofGray(perceived));
      emdSum += emd;
      report.worstEmd = std::max(report.worstEmd, emd);
      psnrSum += quality::psnr(ideal, perceived);
      ssimSum += quality::ssim(ideal, perceived);
      ++report.qualityEvalCount;
    }
  }

  if (report.qualityEvalCount > 0) {
    report.meanEmd = emdSum / static_cast<double>(report.qualityEvalCount);
    report.meanPsnrDb = psnrSum / static_cast<double>(report.qualityEvalCount);
    report.meanSsim = ssimSum / static_cast<double>(report.qualityEvalCount);
  }
  return report;
}

}  // namespace anno::player
