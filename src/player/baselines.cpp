#include "player/baselines.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "compensate/planner.h"
#include "core/annotate.h"
#include "core/sketch.h"

namespace anno::player {

AnnotationPolicy::AnnotationPolicy(core::BacklightSchedule schedule)
    : schedule_(std::move(schedule)) {}

FrameDecision AnnotationPolicy::decide(std::uint32_t frameIndex,
                                       const media::FrameStats&) {
  // Server already compensated the frames; the client only sets the level.
  FrameDecision d;
  d.backlightLevel = schedule_.levelAt(frameIndex);
  return d;
}

AnnotationClientPolicy::AnnotationClientPolicy(core::BacklightSchedule schedule)
    : schedule_(std::move(schedule)) {}

FrameDecision AnnotationClientPolicy::decide(std::uint32_t frameIndex,
                                             const media::FrameStats&) {
  FrameDecision d;
  d.backlightLevel = schedule_.levelAt(frameIndex);
  d.gainK = schedule_.gainAt(frameIndex);
  d.gainAppliedOnClient = true;
  // Curve-carrying schedules (HEBS tracks): playback applies the curve
  // instead of the linear gain.
  d.toneCurve = schedule_.curveAt(frameIndex);
  return d;
}

OracleFramePolicy::OracleFramePolicy(display::DeviceModel device,
                                     double clipFraction,
                                     int minBacklightLevel)
    : device_(std::move(device)),
      clipFraction_(clipFraction),
      minLevel_(minBacklightLevel) {
  if (clipFraction_ < 0.0 || clipFraction_ >= 1.0) {
    throw std::invalid_argument("OracleFramePolicy: clipFraction in [0,1)");
  }
}

FrameDecision OracleFramePolicy::decide(std::uint32_t,
                                        const media::FrameStats& stats) {
  const compensate::CompensationPlan plan = compensate::planForHistogram(
      device_, stats.histogram, clipFraction_, minLevel_);
  FrameDecision d;
  d.backlightLevel = plan.backlightLevel;
  d.gainK = plan.gainK;
  d.gainAppliedOnClient = true;
  return d;
}

HistoryPolicy::HistoryPolicy(display::DeviceModel device, double clipFraction,
                             int windowFrames, double margin,
                             int minBacklightLevel)
    : device_(std::move(device)),
      clipFraction_(clipFraction),
      window_(static_cast<std::size_t>(windowFrames)),
      margin_(margin),
      minLevel_(minBacklightLevel) {
  if (clipFraction_ < 0.0 || clipFraction_ >= 1.0) {
    throw std::invalid_argument("HistoryPolicy: clipFraction in [0,1)");
  }
  if (windowFrames < 1 || margin < 1.0) {
    throw std::invalid_argument("HistoryPolicy: bad window/margin");
  }
}

FrameDecision HistoryPolicy::decide(std::uint32_t,
                                    const media::FrameStats& stats) {
  // The safe luminance the frame ACTUALLY requires (known only after
  // analysis -- which is exactly the work the client is trying to avoid;
  // here we use it to (a) update history and (b) count mispredictions).
  const std::vector<std::uint8_t> actual =
      core::safeLumaLevels(stats.histogram, {clipFraction_});
  const std::uint8_t actualSafe = actual.front();

  std::uint8_t predicted = 255;  // no history yet: stay safe
  if (!history_.empty()) {
    std::uint8_t recentMax = 0;
    for (std::uint8_t v : history_) recentMax = std::max(recentMax, v);
    predicted = static_cast<std::uint8_t>(
        std::min(255.0, std::ceil(recentMax * margin_)));
  }

  const compensate::CompensationPlan plan =
      compensate::planForLuma(device_, predicted, minLevel_);
  if (plan.lumaCeiling + 0.5 < actualSafe) ++mispredictions_;

  history_.push_back(actualSafe);
  if (history_.size() > window_) history_.pop_front();

  FrameDecision d;
  d.backlightLevel = plan.backlightLevel;
  d.gainK = plan.gainK;
  d.gainAppliedOnClient = true;
  return d;
}

double estimatePsnrUnderCeiling(const media::Histogram& hist,
                                double lumaCeiling) {
  if (hist.total() == 0) return 99.0;
  double sse = 0.0;
  for (int v = 0; v < 256; ++v) {
    if (v > lumaCeiling) {
      const double d = v - lumaCeiling;
      sse += d * d * static_cast<double>(hist.count(v));
    }
  }
  const double mse = sse / static_cast<double>(hist.total());
  if (mse <= 0.0) return 99.0;
  return std::min(99.0, 10.0 * std::log10(255.0 * 255.0 / mse));
}

QabsPolicy::QabsPolicy(display::DeviceModel device, double minPsnrDb,
                       int minBacklightLevel)
    : device_(std::move(device)),
      minPsnrDb_(minPsnrDb),
      minLevel_(minBacklightLevel) {}

FrameDecision QabsPolicy::decide(std::uint32_t,
                                 const media::FrameStats& stats) {
  // Walk the ceiling down from the frame maximum until PSNR would drop
  // below the floor; the transfer LUT then yields the level.
  std::uint8_t best = stats.luminance.maxLuma;
  for (int c = stats.luminance.maxLuma; c >= 1; --c) {
    if (estimatePsnrUnderCeiling(stats.histogram, c) < minPsnrDb_) break;
    best = static_cast<std::uint8_t>(c);
  }
  const compensate::CompensationPlan plan =
      compensate::planForLuma(device_, best, minLevel_);
  FrameDecision d;
  d.backlightLevel = plan.backlightLevel;
  d.gainK = plan.gainK;
  d.gainAppliedOnClient = true;
  return d;
}

DtmPolicy::DtmPolicy(display::DeviceModel device, double maxMse,
                     double kneeFraction, int minBacklightLevel)
    : device_(std::move(device)),
      maxMse_(maxMse),
      kneeFraction_(kneeFraction),
      minLevel_(minBacklightLevel) {
  if (maxMse_ < 0.0) {
    throw std::invalid_argument("DtmPolicy: maxMse must be >= 0");
  }
  if (kneeFraction_ <= 0.0 || kneeFraction_ > 1.0) {
    throw std::invalid_argument("DtmPolicy: kneeFraction in (0,1]");
  }
}

FrameDecision DtmPolicy::decide(std::uint32_t,
                                const media::FrameStats& stats) {
  // Candidate levels: walk down through distinct transfer outputs until the
  // tone-mapped distortion exceeds the budget.  The gain at level b is
  // k = 1/T(b); the soft knee absorbs what plain scaling would clip.
  int bestLevel = 255;
  compensate::ToneCurve bestCurve = compensate::softKneeToneCurve(1.0, 1.0);
  for (int level = 255; level >= minLevel_; level -= 5) {
    const double rel = device_.transfer.relLuminance(level);
    if (rel <= 0.0) break;
    const double k = std::max(1.0, 1.0 / rel);
    const compensate::ToneCurve curve =
        compensate::softKneeToneCurve(k, kneeFraction_);
    if (compensate::toneCurveMse(stats.histogram, curve, k) > maxMse_) break;
    bestLevel = level;
    bestCurve = curve;
  }
  FrameDecision d;
  d.backlightLevel = static_cast<std::uint8_t>(bestLevel);
  d.gainAppliedOnClient = true;
  d.toneCurve =
      std::make_shared<const compensate::ToneCurve>(bestCurve);
  return d;
}

SketchDtmPolicy::SketchDtmPolicy(const display::DeviceModel& device,
                                 core::AnnotationTrack track,
                                 core::SketchTrack sketches, double maxMse,
                                 double kneeFraction, int minBacklightLevel)
    : track_(std::move(track)) {
  core::validateTrack(track_);
  if (sketches.scenes.size() != track_.scenes.size()) {
    throw std::invalid_argument(
        "SketchDtmPolicy: sketch count != scene count");
  }
  if (maxMse < 0.0 || kneeFraction <= 0.0 || kneeFraction > 1.0) {
    throw std::invalid_argument("SketchDtmPolicy: bad parameters");
  }
  // Precompute every scene's decision from its sketch: the playback loop
  // then costs one table lookup per frame, like the backlight runtime.
  perScene_.reserve(track_.scenes.size());
  for (const core::SceneSketch& sketch : sketches.scenes) {
    const media::Histogram hist = core::expandSketch(sketch);
    int bestLevel = 255;
    compensate::ToneCurve bestCurve = compensate::softKneeToneCurve(1.0, 1.0);
    for (int level = 255; level >= minBacklightLevel; level -= 5) {
      const double rel = device.transfer.relLuminance(level);
      if (rel <= 0.0) break;
      const double k = std::max(1.0, 1.0 / rel);
      const compensate::ToneCurve curve =
          compensate::softKneeToneCurve(k, kneeFraction);
      if (compensate::toneCurveMse(hist, curve, k) > maxMse) break;
      bestLevel = level;
      bestCurve = curve;
    }
    FrameDecision d;
    d.backlightLevel = static_cast<std::uint8_t>(bestLevel);
    d.gainAppliedOnClient = true;
    d.toneCurve = std::make_shared<const compensate::ToneCurve>(bestCurve);
    perScene_.push_back(std::move(d));
  }
}

FrameDecision SketchDtmPolicy::decide(std::uint32_t frameIndex,
                                      const media::FrameStats&) {
  const std::uint32_t frame =
      std::min(frameIndex, track_.frameCount - 1);
  return perScene_[core::sceneIndexForFrame(track_, frame)];
}

SmoothedPolicy::SmoothedPolicy(std::unique_ptr<BacklightPolicy> inner,
                               display::DeviceModel device,
                               int maxStepPerFrame)
    : inner_(std::move(inner)),
      device_(std::move(device)),
      maxStep_(maxStepPerFrame) {
  if (!inner_) throw std::invalid_argument("SmoothedPolicy: null inner");
  if (maxStep_ < 1) throw std::invalid_argument("SmoothedPolicy: bad step");
}

FrameDecision SmoothedPolicy::decide(std::uint32_t frameIndex,
                                     const media::FrameStats& stats) {
  FrameDecision d = inner_->decide(frameIndex, stats);
  const int target = d.backlightLevel;
  if (current_ < 0 || target >= current_) {
    // First frame, or brightening: jump immediately (never undershoot the
    // content's luminance needs).
    current_ = target;
    return d;
  }
  // Dimming: slew-limited.
  current_ = std::max(target, current_ - maxStep_);
  if (current_ != target) {
    d.backlightLevel = static_cast<std::uint8_t>(current_);
    if (d.gainAppliedOnClient) {
      // Brighter backlight than planned: less gain is needed to preserve
      // perceived intensity (k = 1 / T(level)).
      const double rel = device_.transfer.relLuminance(current_);
      d.gainK = rel > 0.0 ? std::max(1.0, 1.0 / rel) : 1.0;
    }
  }
  return d;
}

}  // namespace anno::player
