#include "player/adaptive.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "compensate/backend.h"
#include "compensate/planner.h"
#include "core/runtime.h"

namespace anno::player {
namespace {

/// Device power for a scene shown at a given quality level, resolved
/// through the track's compensation backend (HEBS tracks dim to the
/// perceived-curve peak, not the raw safe luma).
double sceneWatts(const compensate::Backend& backend,
                  const core::AnnotationTrack& track, std::size_t sceneIndex,
                  std::size_t quality,
                  const power::MobileDevicePower& devicePower,
                  int minBacklightLevel) {
  const compensate::CompensationDecision d = core::decideForScene(
      backend, track, sceneIndex, quality, devicePower.displayDevice(),
      minBacklightLevel);
  power::OperatingPoint op;
  op.cpu = power::CpuState::kDecode;
  op.nic = power::NicState::kReceive;
  op.backlightLevel = d.plan.backlightLevel;
  return devicePower.totalWatts(op);
}

}  // namespace

AdaptivePlan planAdaptivePlayback(const core::AnnotationTrack& track,
                                  const power::MobileDevicePower& devicePower,
                                  const power::BatteryModel& battery,
                                  const AdaptiveConfig& cfg) {
  core::validateTrack(track);
  if (cfg.batteryChargeFraction <= 0.0 || cfg.batteryChargeFraction > 1.0) {
    throw std::invalid_argument(
        "planAdaptivePlayback: charge fraction in (0,1]");
  }
  if (cfg.preferredQuality >= track.qualityLevels.size()) {
    throw std::out_of_range("planAdaptivePlayback: preferred quality");
  }
  const double targetSeconds =
      cfg.targetSeconds > 0.0
          ? cfg.targetSeconds
          : static_cast<double>(track.frameCount) / track.fps;

  // Available energy: the pack's watt-hours at the current charge.  (The
  // Peukert correction depends on the draw; we approximate with the rated
  // capacity, conservative at the sub-1C currents of a PDA.)
  AdaptivePlan plan;
  plan.availableEnergyJoules = battery.voltage() *
                               battery.nominalCapacitymAh() / 1000.0 *
                               3600.0 * cfg.batteryChargeFraction;

  // Seconds per frame scaled so the plan covers the requested target (for
  // a 2h movie target on a shorter profiling clip, scale proportionally).
  const double clipSeconds =
      static_cast<double>(track.frameCount) / track.fps;
  const double timeScale = targetSeconds / clipSeconds;

  // Start every scene at the preferred quality.
  plan.decisions.reserve(track.scenes.size());
  std::vector<double> sceneSeconds(track.scenes.size());
  for (std::size_t s = 0; s < track.scenes.size(); ++s) {
    const core::SceneAnnotation& scene = track.scenes[s];
    sceneSeconds[s] =
        static_cast<double>(scene.span.frameCount) / track.fps * timeScale;
    plan.decisions.push_back(
        {scene.span.firstFrame, cfg.preferredQuality, 255});
  }

  const std::unique_ptr<const compensate::Backend> backend =
      core::backendForTrack(track);
  const auto totalEnergy = [&] {
    double joules = 0.0;
    for (std::size_t s = 0; s < track.scenes.size(); ++s) {
      joules += sceneWatts(*backend, track, s,
                           plan.decisions[s].qualityIndex, devicePower,
                           cfg.minBacklightLevel) *
                sceneSeconds[s];
    }
    return joules;
  };

  // Greedy degradation: while over budget, bump the scene with the largest
  // energy gain from moving one quality level down the track.
  plan.projectedEnergyJoules = totalEnergy();
  while (plan.projectedEnergyJoules > plan.availableEnergyJoules) {
    std::size_t bestScene = track.scenes.size();
    double bestGain = 0.0;
    for (std::size_t s = 0; s < track.scenes.size(); ++s) {
      const std::size_t q = plan.decisions[s].qualityIndex;
      if (q + 1 >= track.qualityLevels.size()) continue;
      const double now = sceneWatts(*backend, track, s, q, devicePower,
                                    cfg.minBacklightLevel);
      const double next = sceneWatts(*backend, track, s, q + 1, devicePower,
                                     cfg.minBacklightLevel);
      const double gain = (now - next) * sceneSeconds[s];
      if (gain > bestGain) {
        bestGain = gain;
        bestScene = s;
      }
    }
    if (bestScene == track.scenes.size() || bestGain <= 0.0) {
      break;  // every scene already at maximum degradation
    }
    ++plan.decisions[bestScene].qualityIndex;
    plan.projectedEnergyJoules -= bestGain;
  }

  // Materialize backlight levels and summary fields.
  for (std::size_t s = 0; s < track.scenes.size(); ++s) {
    const compensate::CompensationDecision d = core::decideForScene(
        *backend, track, s, plan.decisions[s].qualityIndex,
        devicePower.displayDevice(), cfg.minBacklightLevel);
    plan.decisions[s].backlightLevel = d.plan.backlightLevel;
    plan.worstQualityUsed =
        std::max(plan.worstQualityUsed, plan.decisions[s].qualityIndex);
  }
  plan.feasible = plan.projectedEnergyJoules <= plan.availableEnergyJoules;
  return plan;
}

}  // namespace anno::player
