// Backlight control policies.
//
// The playback engine is policy-agnostic; each policy decides, per frame,
// the backlight level and the compensation gain, and whether that gain is
// applied on the client (costing CPU power) or was already applied upstream
// (the annotation scheme's server-side compensation).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "compensate/compensate.h"
#include "media/video.h"

namespace anno::player {

/// Per-frame decision.
struct FrameDecision {
  std::uint8_t backlightLevel = 255;
  double gainK = 1.0;             ///< compensation gain for this frame
  bool gainAppliedOnClient = false;  ///< true: client multiplies pixels itself
  /// Tone-mapping policies (DTM baseline) supply a full curve instead of a
  /// scalar gain; when set, it supersedes gainK and is applied client-side.
  std::shared_ptr<const compensate::ToneCurve> toneCurve;
};

/// Interface implemented by the annotation runtime and all baselines.
class BacklightPolicy {
 public:
  virtual ~BacklightPolicy() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Decides for frame `frameIndex`.  `receivedStats` are the luminance
  /// statistics of the frame as received by the client (client-side
  /// policies may use them; the annotation policy does not need them --
  /// that is the point of annotations).
  [[nodiscard]] virtual FrameDecision decide(
      std::uint32_t frameIndex, const media::FrameStats& receivedStats) = 0;
};

}  // namespace anno::player
