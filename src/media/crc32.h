// CRC-32 (IEEE 802.3 polynomial, reflected) for integrity-checked framing.
//
// The resilient annotation frame format (core/anno_codec) checksums every
// chunk so a damaged scene-span is *detected* instead of silently decoding
// into garbage backlight levels -- a wrong-but-plausible level is worse than
// a known-missing one, because the client can always fall back to full
// backlight.
#pragma once

#include <cstdint>
#include <span>

namespace anno::media {

/// CRC-32 of `data`, optionally continuing from a previous crc value
/// (pass the prior return value to checksum split buffers incrementally).
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data,
                                  std::uint32_t crc = 0);

}  // namespace anno::media
