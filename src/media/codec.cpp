#include "media/codec.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "media/bitstream.h"
#include "media/dct.h"

namespace anno::media {
namespace {

// JPEG Annex K luminance quantization matrix; we use it for all three
// planes (we code full-resolution chroma, so the luma table is fine).
constexpr int kBaseQuant[64] = {
    16, 11, 10, 16, 24,  40,  51,  61,   //
    12, 12, 14, 19, 26,  58,  60,  55,   //
    14, 13, 16, 24, 40,  57,  69,  56,   //
    14, 17, 22, 29, 51,  87,  80,  62,   //
    18, 22, 37, 56, 68,  109, 103, 77,   //
    24, 35, 55, 64, 81,  104, 113, 92,   //
    49, 64, 78, 87, 103, 121, 120, 101,  //
    72, 92, 95, 98, 112, 100, 103, 99};

constexpr std::uint8_t kFrameIntra = 0;
constexpr std::uint8_t kFrameInter = 1;
constexpr std::uint8_t kBlockSkip = 0;
constexpr std::uint8_t kBlockDelta = 1;

/// JPEG-style quality scaling of the base matrix.
std::array<int, 64> quantMatrix(int quality) {
  if (quality < 1 || quality > 100) {
    throw std::invalid_argument("codec: quality must be in [1,100]");
  }
  const int scale = quality < 50 ? 5000 / quality : 200 - 2 * quality;
  std::array<int, 64> q{};
  for (int i = 0; i < 64; ++i) {
    q[i] = std::clamp((kBaseQuant[i] * scale + 50) / 100, 1, 255);
  }
  return q;
}

struct Ycbcr {
  double y, cb, cr;
};

Ycbcr toYcbcr(const Rgb8& p) {
  const double y = kLumaR * p.r + kLumaG * p.g + kLumaB * p.b;
  const double cb = 128.0 + (-0.168736 * p.r - 0.331264 * p.g + 0.5 * p.b);
  const double cr = 128.0 + (0.5 * p.r - 0.418688 * p.g - 0.081312 * p.b);
  return {y, cb, cr};
}

Rgb8 toRgb(double y, double cb, double cr) {
  const double r = y + 1.402 * (cr - 128.0);
  const double g = y - 0.344136 * (cb - 128.0) - 0.714136 * (cr - 128.0);
  const double b = y + 1.772 * (cb - 128.0);
  return Rgb8{clamp8(r), clamp8(g), clamp8(b)};
}

int blocksAcross(int dim) { return (dim + 7) / 8; }

using Planes = std::array<std::vector<double>, 3>;

Planes toPlanes(const Image& frame) {
  Planes planes;
  for (auto& p : planes) {
    p.resize(frame.pixelCount());
  }
  auto src = frame.pixels();
  for (std::size_t i = 0; i < src.size(); ++i) {
    const Ycbcr c = toYcbcr(src[i]);
    planes[0][i] = c.y;
    planes[1][i] = c.cb;
    planes[2][i] = c.cr;
  }
  return planes;
}

Image fromPlanes(const Planes& planes, int width, int height) {
  Image img(width, height);
  auto dst = img.pixels();
  for (std::size_t i = 0; i < dst.size(); ++i) {
    dst[i] = toRgb(planes[0][i], planes[1][i], planes[2][i]);
  }
  return img;
}

/// Extracts the 8x8 block at block coordinates (bx,by) from `plane`,
/// replicating edge samples for partial blocks.  `offset` is subtracted
/// from every sample (128 for intra blocks, 0 for residuals).
Block8x8 fetchBlock(const std::vector<double>& plane, int width, int height,
                    int bx, int by, double offset) {
  Block8x8 blk{};
  for (int y = 0; y < 8; ++y) {
    const int sy = std::min(by * 8 + y, height - 1);
    for (int x = 0; x < 8; ++x) {
      const int sx = std::min(bx * 8 + x, width - 1);
      blk[y * 8 + x] =
          plane[static_cast<std::size_t>(sy) * width + sx] - offset;
    }
  }
  return blk;
}

/// Writes the block into the plane, adding `offset` back; pixels outside
/// the image are dropped.
void storeBlock(const Block8x8& blk, std::vector<double>& plane, int width,
                int height, int bx, int by, double offset) {
  for (int y = 0; y < 8; ++y) {
    const int sy = by * 8 + y;
    if (sy >= height) break;
    for (int x = 0; x < 8; ++x) {
      const int sx = bx * 8 + x;
      if (sx >= width) break;
      plane[static_cast<std::size_t>(sy) * width + sx] =
          blk[y * 8 + x] + offset;
    }
  }
}

/// Adds a residual block onto the reference plane content.
void addBlock(const Block8x8& residual, const std::vector<double>& ref,
              std::vector<double>& plane, int width, int height, int bx,
              int by) {
  for (int y = 0; y < 8; ++y) {
    const int sy = by * 8 + y;
    if (sy >= height) break;
    for (int x = 0; x < 8; ++x) {
      const int sx = bx * 8 + x;
      if (sx >= width) break;
      const std::size_t idx = static_cast<std::size_t>(sy) * width + sx;
      plane[idx] = ref[idx] + residual[y * 8 + x];
    }
  }
}

void copyBlock(const std::vector<double>& ref, std::vector<double>& plane,
               int width, int height, int bx, int by) {
  for (int y = 0; y < 8; ++y) {
    const int sy = by * 8 + y;
    if (sy >= height) break;
    for (int x = 0; x < 8; ++x) {
      const int sx = bx * 8 + x;
      if (sx >= width) break;
      const std::size_t idx = static_cast<std::size_t>(sy) * width + sx;
      plane[idx] = ref[idx];
    }
  }
}

/// Mean absolute difference of a block position between two planes.
double blockMad(const std::vector<double>& a, const std::vector<double>& b,
                int width, int height, int bx, int by) {
  double sum = 0.0;
  int n = 0;
  for (int y = 0; y < 8; ++y) {
    const int sy = by * 8 + y;
    if (sy >= height) break;
    for (int x = 0; x < 8; ++x) {
      const int sx = bx * 8 + x;
      if (sx >= width) break;
      const std::size_t idx = static_cast<std::size_t>(sy) * width + sx;
      sum += std::abs(a[idx] - b[idx]);
      ++n;
    }
  }
  return n > 0 ? sum / n : 0.0;
}

/// Encodes one quantized, zigzagged block: DC delta then (run,level) pairs
/// terminated by run=0 marker.
void encodeBlock(const Block8x8& freq, const std::array<int, 64>& quant,
                 int& dcPred, ByteWriter& w) {
  const auto& zz = zigzagOrder();
  int coeffs[64];
  for (int i = 0; i < 64; ++i) {
    const double q = freq[zz[i]] / quant[zz[i]];
    coeffs[i] = static_cast<int>(std::lround(q));
  }
  w.svarint(coeffs[0] - dcPred);
  dcPred = coeffs[0];
  int run = 0;
  for (int i = 1; i < 64; ++i) {
    if (coeffs[i] == 0) {
      ++run;
      continue;
    }
    w.varint(static_cast<std::uint64_t>(run) + 1);  // 1-based: 0 = EOB
    w.svarint(coeffs[i]);
    run = 0;
  }
  w.varint(0);  // end of block
}

Block8x8 decodeBlock(const std::array<int, 64>& quant, int& dcPred,
                     ByteReader& r) {
  const auto& zz = zigzagOrder();
  int coeffs[64] = {};
  dcPred += static_cast<int>(r.svarint());
  coeffs[0] = dcPred;
  int pos = 0;
  for (;;) {
    const std::uint64_t marker = r.varint();
    if (marker == 0) break;  // EOB
    pos += static_cast<int>(marker);  // marker = run+1 -> advance past zeros
    if (pos > 63) throw std::runtime_error("codec: coefficient overrun");
    coeffs[pos] = static_cast<int>(r.svarint());
  }
  Block8x8 freq{};
  for (int i = 0; i < 64; ++i) {
    freq[zz[i]] = static_cast<double>(coeffs[i]) * quant[zz[i]];
  }
  return freq;
}

void checkFrameGeometry(const Image& frame) {
  if (frame.empty()) throw std::invalid_argument("codec: empty frame");
}

}  // namespace

EncodedFrame encodeFrame(const Image& frame, const CodecConfig& cfg) {
  checkFrameGeometry(frame);
  const int w = frame.width();
  const int h = frame.height();
  const auto quant = quantMatrix(cfg.quality);
  const Planes planes = toPlanes(frame);

  ByteWriter out;
  out.u8(static_cast<std::uint8_t>(cfg.quality));
  out.u8(kFrameIntra);
  const int bw = blocksAcross(w);
  const int bh = blocksAcross(h);
  for (const auto& plane : planes) {
    int dcPred = 0;
    for (int by = 0; by < bh; ++by) {
      for (int bx = 0; bx < bw; ++bx) {
        encodeBlock(forwardDct(fetchBlock(plane, w, h, bx, by, 128.0)), quant,
                    dcPred, out);
      }
    }
  }
  return EncodedFrame{out.take(), /*intra=*/true};
}

EncodedFrame encodePFrame(const Image& frame, const Image& reference,
                          const CodecConfig& cfg) {
  checkFrameGeometry(frame);
  if (reference.width() != frame.width() ||
      reference.height() != frame.height()) {
    throw std::invalid_argument("encodePFrame: reference geometry mismatch");
  }
  const int w = frame.width();
  const int h = frame.height();
  const auto quant = quantMatrix(cfg.quality);
  const Planes cur = toPlanes(frame);
  const Planes ref = toPlanes(reference);

  ByteWriter out;
  out.u8(static_cast<std::uint8_t>(cfg.quality));
  out.u8(kFrameInter);
  const int bw = blocksAcross(w);
  const int bh = blocksAcross(h);
  for (int p = 0; p < 3; ++p) {
    int dcPred = 0;
    for (int by = 0; by < bh; ++by) {
      for (int bx = 0; bx < bw; ++bx) {
        const double mad = blockMad(cur[p], ref[p], w, h, bx, by);
        if (mad < cfg.skipThreshold) {
          out.u8(kBlockSkip);
          continue;
        }
        out.u8(kBlockDelta);
        // Residual block: cur - ref (no 128 offset on residuals).
        Block8x8 residual = fetchBlock(cur[p], w, h, bx, by, 0.0);
        const Block8x8 refBlk = fetchBlock(ref[p], w, h, bx, by, 0.0);
        for (int i = 0; i < 64; ++i) residual[i] -= refBlk[i];
        encodeBlock(forwardDct(residual), quant, dcPred, out);
      }
    }
  }
  return EncodedFrame{out.take(), /*intra=*/false};
}

Image decodeFrame(const EncodedFrame& frame, int width, int height,
                  const Image* reference) {
  if (width <= 0 || height <= 0) {
    throw std::invalid_argument("decodeFrame: bad dimensions");
  }
  ByteReader r(frame.bytes);
  const int quality = r.u8();
  const std::uint8_t frameType = r.u8();
  const auto quant = quantMatrix(quality == 0 ? 1 : quality);

  const bool inter = frameType == kFrameInter;
  if (frameType != kFrameIntra && !inter) {
    throw std::runtime_error("decodeFrame: unknown frame type");
  }
  Planes ref;
  if (inter) {
    if (reference == nullptr) {
      throw std::runtime_error("decodeFrame: P frame needs a reference");
    }
    if (reference->width() != width || reference->height() != height) {
      throw std::invalid_argument("decodeFrame: reference geometry mismatch");
    }
    ref = toPlanes(*reference);
  }

  Planes planes;
  for (auto& p : planes) {
    p.assign(static_cast<std::size_t>(width) * height, 0.0);
  }
  const int bw = blocksAcross(width);
  const int bh = blocksAcross(height);
  for (int p = 0; p < 3; ++p) {
    int dcPred = 0;
    for (int by = 0; by < bh; ++by) {
      for (int bx = 0; bx < bw; ++bx) {
        if (!inter) {
          storeBlock(inverseDct(decodeBlock(quant, dcPred, r)), planes[p],
                     width, height, bx, by, 128.0);
          continue;
        }
        const std::uint8_t mode = r.u8();
        if (mode == kBlockSkip) {
          copyBlock(ref[p], planes[p], width, height, bx, by);
        } else if (mode == kBlockDelta) {
          addBlock(inverseDct(decodeBlock(quant, dcPred, r)), ref[p],
                   planes[p], width, height, bx, by);
        } else {
          throw std::runtime_error("decodeFrame: unknown block mode");
        }
      }
    }
  }
  return fromPlanes(planes, width, height);
}

EncodedClip encodeClip(const VideoClip& clip, const CodecConfig& cfg) {
  validateClip(clip);
  if (cfg.gopLength < 1) {
    throw std::invalid_argument("encodeClip: gopLength must be >= 1");
  }
  EncodedClip out;
  out.name = clip.name;
  out.width = clip.width();
  out.height = clip.height();
  out.fps = clip.fps;
  out.quality = cfg.quality;
  out.frames.reserve(clip.frames.size());

  // Closed-loop encoding: P frames reference the previous DECODED frame so
  // the decoder never drifts.
  Image decodedRef;
  for (std::size_t i = 0; i < clip.frames.size(); ++i) {
    const bool intra = (i % static_cast<std::size_t>(cfg.gopLength)) == 0;
    EncodedFrame enc =
        intra ? encodeFrame(clip.frames[i], cfg)
              : encodePFrame(clip.frames[i], decodedRef, cfg);
    decodedRef = decodeFrame(enc, out.width, out.height,
                             intra ? nullptr : &decodedRef);
    out.frames.push_back(std::move(enc));
  }
  return out;
}

VideoClip decodeClip(const EncodedClip& clip) {
  VideoClip out;
  out.name = clip.name;
  out.fps = clip.fps;
  out.frames.reserve(clip.frames.size());
  for (const EncodedFrame& f : clip.frames) {
    const Image* ref = out.frames.empty() ? nullptr : &out.frames.back();
    out.frames.push_back(decodeFrame(f, clip.width, clip.height, ref));
  }
  return out;
}

namespace {
constexpr std::uint32_t kClipMagic = 0x30564100;  // "\0AV0"
}

std::vector<std::uint8_t> serializeClip(const EncodedClip& clip) {
  ByteWriter w;
  w.u32(kClipMagic);
  w.varint(clip.name.size());
  w.bytes(std::span(reinterpret_cast<const std::uint8_t*>(clip.name.data()),
                    clip.name.size()));
  w.varint(static_cast<std::uint64_t>(clip.width));
  w.varint(static_cast<std::uint64_t>(clip.height));
  w.varint(static_cast<std::uint64_t>(std::lround(clip.fps * 1000.0)));
  w.varint(static_cast<std::uint64_t>(clip.quality));
  w.varint(clip.frames.size());
  for (const EncodedFrame& f : clip.frames) {
    w.u8(f.intra ? 1 : 0);
    w.varint(f.bytes.size());
    w.bytes(f.bytes);
  }
  return w.take();
}

EncodedClip parseClip(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  if (r.u32() != kClipMagic) {
    throw std::runtime_error("parseClip: bad magic");
  }
  EncodedClip clip;
  const std::size_t nameLen = r.varint();
  auto nameBytes = r.bytes(nameLen);
  clip.name.assign(reinterpret_cast<const char*>(nameBytes.data()), nameLen);
  clip.width = static_cast<int>(r.varint());
  clip.height = static_cast<int>(r.varint());
  clip.fps = static_cast<double>(r.varint()) / 1000.0;
  clip.quality = static_cast<int>(r.varint());
  const std::size_t nframes = r.varint();
  clip.frames.reserve(nframes);
  for (std::size_t i = 0; i < nframes; ++i) {
    EncodedFrame f;
    f.intra = r.u8() != 0;
    const std::size_t len = r.varint();
    auto payload = r.bytes(len);
    f.bytes.assign(payload.begin(), payload.end());
    clip.frames.push_back(std::move(f));
  }
  return clip;
}

}  // namespace anno::media
