// 256-bin luminance histograms and the histogram-derived metrics the paper
// uses to validate quality (Sec. 4.2, Fig. 3): the *average point* and the
// *dynamic range*, plus distance measures between histograms.
//
// The paper explicitly chose histograms over pixel-level differences:
// "We estimate the difference between the LCD snapshots by computing their
//  histograms. The histogram was chosen as a metric because it represents
//  both the average luminance and dynamic range for an image."
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "media/image.h"

namespace anno::media {

/// Immutable-after-build 256-bin histogram over 8-bit luminance codes.
class Histogram {
 public:
  Histogram() = default;

  /// Histogram of the luma plane of an RGB image.
  static Histogram ofImage(const Image& img);

  /// Histogram of an 8-bit plane (camera snapshots, luma planes).
  static Histogram ofGray(const GrayImage& img);

  /// Histogram of max(r,g,b) per pixel.  A pixel clips under the
  /// compensation transform iff its max channel reaches the scalar clip
  /// threshold, so this histogram answers clipped-fraction queries for ANY
  /// scale factor in O(256) (see compensate::clippedFraction).
  static Histogram ofMaxChannel(const Image& img);

  /// Builds from raw bin counts (e.g. accumulated across frames).
  static Histogram fromCounts(const std::array<std::uint64_t, 256>& counts);

  /// Adds another histogram bin-wise (accumulate scene statistics).
  void accumulate(const Histogram& other);

  /// Adds a single sample.
  void add(std::uint8_t value, std::uint64_t count = 1);

  [[nodiscard]] std::uint64_t count(int bin) const { return counts_.at(bin); }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] const std::array<std::uint64_t, 256>& counts() const noexcept {
    return counts_;
  }

  /// Fig. 3 "Average Point": mean of the distribution.
  [[nodiscard]] double averagePoint() const noexcept;

  /// Fig. 3 "Dynamic Range": distance between the lowest and highest
  /// occupied bins, optionally trimming a fraction of outlier mass at each
  /// tail (trim=0 gives the raw min..max span).
  [[nodiscard]] int dynamicRange(double trimFraction = 0.0) const;

  /// Lowest / highest occupied bin after trimming `trimFraction` of the
  /// total mass from the respective tail.  Returns 0 / 255 on empty.
  [[nodiscard]] int lowPoint(double trimFraction = 0.0) const;
  [[nodiscard]] int highPoint(double trimFraction = 0.0) const;

  /// Value at a cumulative quantile q in [0,1].
  [[nodiscard]] std::uint8_t quantile(double q) const;

  /// Fraction of mass in bins strictly above `value`.
  [[nodiscard]] double fractionAbove(std::uint8_t value) const noexcept;

  /// Normalized histogram intersection in [0,1]; 1 means identical shapes.
  [[nodiscard]] static double intersection(const Histogram& a,
                                           const Histogram& b);

  /// Symmetric chi-squared distance on normalized bins; 0 means identical.
  [[nodiscard]] static double chiSquared(const Histogram& a,
                                         const Histogram& b);

  /// 1-D earth mover's distance on normalized bins, in code-value units.
  /// This is the primary "how far did the picture move" metric in our
  /// camera-based validation, since it is sensitive to both the average
  /// point shift and the dynamic-range change of Fig. 3.
  [[nodiscard]] static double earthMovers(const Histogram& a,
                                          const Histogram& b);

  /// Multi-line ASCII rendering (for examples / debugging), `rows` tall.
  [[nodiscard]] std::string asciiPlot(int rows = 12, int cols = 64) const;

  friend bool operator==(const Histogram&, const Histogram&) = default;

 private:
  std::array<std::uint64_t, 256> counts_{};
  std::uint64_t total_ = 0;
};

}  // namespace anno::media
