// Synthetic video generation.
//
// The paper evaluates on ten movie trailers downloaded from apple.com
// (themovie, catwoman, hunter_subres, i_robot, ice_age, officexp,
// returnoftheking, shrek2, spiderman2, theincredibles-tlr2).  Those files are
// not redistributable, so we synthesize clips whose *luminance statistics*
// match the paper's qualitative description of each trailer: scene structure
// (groups of frames with near-constant maximum luminance), dark scenes whose
// "highlights are concentrated in a few points or spots", and for
// hunter_subres / ice_age bright backgrounds that defeat the technique.
// Backlight savings are a pure function of these statistics, so the shape of
// Figs. 6/9/10 is preserved.  Generation is fully deterministic (SplitMix64).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "media/image.h"
#include "media/rng.h"
#include "media/video.h"

namespace anno::media {

/// One scene of a synthetic clip.  A scene renders as a smoothly varying
/// background (low spatial frequency), a set of drifting bright "highlight"
/// spots, and small per-frame temporal jitter.
struct SceneSpec {
  double durationSeconds = 2.0;
  std::uint8_t backgroundLuma = 60;    ///< mean background luminance
  std::uint8_t backgroundSpread = 30;  ///< +- spatial variation amplitude
  double highlightFraction = 0.0;      ///< fraction of pixels inside spots
  std::uint8_t highlightLuma = 250;    ///< peak luminance of spots
  double motion = 0.3;                 ///< 0..1 drift speed of content
  double flicker = 2.0;                ///< temporal jitter amplitude (codes)
  /// Per-channel colour cast, multiplied into R/G/B (1.0 = neutral gray).
  double castR = 1.0, castG = 1.0, castB = 1.0;
};

/// Full recipe for a synthetic clip.
struct ClipProfile {
  std::string name;
  int width = 160;
  int height = 120;
  double fps = 12.0;
  std::uint64_t seed = 1;
  std::vector<SceneSpec> scenes;

  [[nodiscard]] double durationSeconds() const noexcept {
    double d = 0.0;
    for (const SceneSpec& s : scenes) d += s.durationSeconds;
    return d;
  }
};

/// Renders a profile into frames.  Deterministic for a given profile.
[[nodiscard]] VideoClip generateClip(const ClipProfile& profile);

/// An end-credits-like scene: uniform near-black background with a sparse
/// population of bright "text" pixels, scrolling slowly.  Used to exercise
/// the annotator's credits-protection heuristic (the paper's future work:
/// clipping "may distort the text ... and the background is uniform").
[[nodiscard]] SceneSpec creditsScene(double durationSeconds = 4.0);

/// Renders a single frame (used by tests and by streaming-side on-the-fly
/// generation).  `sceneRng` must be the scene's layout generator; `t` is the
/// time offset in seconds from scene start.
[[nodiscard]] Image renderSceneFrame(const SceneSpec& scene, int width,
                                     int height, double t,
                                     SplitMix64 sceneRng);

/// The ten evaluation clips of the paper, by name.
enum class PaperClip {
  kTheMovie,
  kCatwoman,
  kHunterSubres,
  kIRobot,
  kIceAge,
  kOfficeXp,
  kReturnOfTheKing,
  kShrek2,
  kSpiderman2,
  kIncrediblesTlr2,
};

inline constexpr int kPaperClipCount = 10;

/// All ten paper clips in the order of Fig. 9 / Fig. 10.
[[nodiscard]] std::vector<PaperClip> allPaperClips();

/// The clip's name as printed in the paper's figures.
[[nodiscard]] std::string paperClipName(PaperClip clip);

/// Builds the content profile for a paper clip.  `durationScale` shrinks or
/// stretches every scene (1.0 gives the full paper-like duration, 30 s-3 min;
/// benches use ~0.2 for speed); `width`/`height` set the resolution (the
/// paper's PDAs are 320x240; benches use 160x120).  `seedOverride` (nonzero)
/// redraws the scene composition with a different deterministic stream --
/// same content STATISTICS, different realization -- for sensitivity
/// analysis of the results to the synthetic content.
[[nodiscard]] ClipProfile paperClipProfile(PaperClip clip,
                                           double durationScale = 1.0,
                                           int width = 160, int height = 120,
                                           std::uint64_t seedOverride = 0);

/// Convenience: profile + render.
[[nodiscard]] VideoClip generatePaperClip(PaperClip clip,
                                          double durationScale = 1.0,
                                          int width = 160, int height = 120);

}  // namespace anno::media
