#include "media/histogram.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "media/kernels/kernels.h"
#include "media/pixel.h"

namespace anno::media {

Histogram Histogram::ofImage(const Image& img) {
  kernels::FrameProfile profile;
  kernels::active().profileRgb(img.pixels().data(), img.pixelCount(), profile);
  Histogram h;
  h.counts_ = profile.hist;
  h.total_ = img.pixelCount();
  return h;
}

Histogram Histogram::ofGray(const GrayImage& img) {
  kernels::FrameProfile profile;
  kernels::active().profileGray(img.pixels().data(), img.pixelCount(),
                                profile);
  Histogram h;
  h.counts_ = profile.hist;
  h.total_ = img.pixelCount();
  return h;
}

Histogram Histogram::ofMaxChannel(const Image& img) {
  Histogram h;
  kernels::active().maxChannelHistogram(img.pixels().data(), img.pixelCount(),
                                        h.counts_.data());
  h.total_ = img.pixelCount();
  return h;
}

Histogram Histogram::fromCounts(const std::array<std::uint64_t, 256>& counts) {
  Histogram h;
  h.counts_ = counts;
  h.total_ = 0;
  for (std::uint64_t c : counts) h.total_ += c;
  return h;
}

void Histogram::accumulate(const Histogram& other) {
  kernels::active().histAccumulate(counts_.data(), other.counts_.data());
  total_ += other.total_;
}

void Histogram::add(std::uint8_t value, std::uint64_t count) {
  counts_[value] += count;
  total_ += count;
}

double Histogram::averagePoint() const noexcept {
  if (total_ == 0) return 0.0;
  double sum = 0.0;
  for (int v = 0; v < 256; ++v) {
    sum += static_cast<double>(v) * static_cast<double>(counts_[v]);
  }
  return sum / static_cast<double>(total_);
}

int Histogram::lowPoint(double trimFraction) const {
  if (trimFraction < 0.0 || trimFraction >= 0.5) {
    throw std::invalid_argument("Histogram: trimFraction must be in [0,0.5)");
  }
  if (total_ == 0) return 0;
  const auto budget = static_cast<std::uint64_t>(
      trimFraction * static_cast<double>(total_));
  return kernels::active().lowPoint(counts_.data(), budget);
}

int Histogram::highPoint(double trimFraction) const {
  if (trimFraction < 0.0 || trimFraction >= 0.5) {
    throw std::invalid_argument("Histogram: trimFraction must be in [0,0.5)");
  }
  if (total_ == 0) return 255;
  const auto budget = static_cast<std::uint64_t>(
      trimFraction * static_cast<double>(total_));
  return kernels::active().highPoint(counts_.data(), budget);
}

int Histogram::dynamicRange(double trimFraction) const {
  const int lo = lowPoint(trimFraction);
  const int hi = highPoint(trimFraction);
  return hi >= lo ? hi - lo : 0;
}

std::uint8_t Histogram::quantile(double q) const {
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("Histogram::quantile: q must be in [0,1]");
  }
  if (total_ == 0) return 0;
  // Ceiling, not floor: quantile(p) must cover at least ceil(p*total)
  // samples so that at most (1-p) of the mass lies strictly above it.
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total_)));
  std::uint64_t seen = 0;
  for (int v = 0; v < 256; ++v) {
    seen += counts_[v];
    if (seen >= target && seen > 0) return static_cast<std::uint8_t>(v);
  }
  return 255;
}

double Histogram::fractionAbove(std::uint8_t value) const noexcept {
  if (total_ == 0) return 0.0;
  std::uint64_t above = 0;
  for (int v = value + 1; v < 256; ++v) above += counts_[v];
  return static_cast<double>(above) / static_cast<double>(total_);
}

double Histogram::intersection(const Histogram& a, const Histogram& b) {
  if (a.total_ == 0 || b.total_ == 0) return a.total_ == b.total_ ? 1.0 : 0.0;
  double sum = 0.0;
  for (int v = 0; v < 256; ++v) {
    const double pa =
        static_cast<double>(a.counts_[v]) / static_cast<double>(a.total_);
    const double pb =
        static_cast<double>(b.counts_[v]) / static_cast<double>(b.total_);
    sum += std::min(pa, pb);
  }
  return sum;
}

double Histogram::chiSquared(const Histogram& a, const Histogram& b) {
  if (a.total_ == 0 || b.total_ == 0) return a.total_ == b.total_ ? 0.0 : 1.0;
  double sum = 0.0;
  for (int v = 0; v < 256; ++v) {
    const double pa =
        static_cast<double>(a.counts_[v]) / static_cast<double>(a.total_);
    const double pb =
        static_cast<double>(b.counts_[v]) / static_cast<double>(b.total_);
    const double denom = pa + pb;
    if (denom > 0.0) sum += (pa - pb) * (pa - pb) / denom;
  }
  return 0.5 * sum;
}

double Histogram::earthMovers(const Histogram& a, const Histogram& b) {
  if (a.total_ == 0 || b.total_ == 0) return 0.0;
  // EMD in 1-D equals the L1 distance between CDFs.  Clearing the two
  // normalizations from |cdfA/tA - cdfB/tB| gives an exact integer
  // numerator sum_v |cdfA(v)*tB - cdfB(v)*tA| and ONE final divide, so the
  // result carries a single rounding step, is exactly symmetric in its
  // arguments, and is bit-identical across every kernel dispatch level.
  const kernels::Uint128 num = kernels::active().emdNumerator(
      a.counts_.data(), a.total_, b.counts_.data(), b.total_);
  return static_cast<double>(num) /
         (static_cast<double>(a.total_) * static_cast<double>(b.total_));
}

std::string Histogram::asciiPlot(int rows, int cols) const {
  if (rows < 1 || cols < 1 || cols > 256) {
    throw std::invalid_argument("Histogram::asciiPlot: bad geometry");
  }
  // Re-bin 256 values into `cols` columns.
  std::vector<std::uint64_t> col(cols, 0);
  for (int v = 0; v < 256; ++v) {
    col[static_cast<std::size_t>(v) * cols / 256] += counts_[v];
  }
  const std::uint64_t peak = *std::max_element(col.begin(), col.end());
  std::string out;
  out.reserve(static_cast<std::size_t>(rows + 1) * (cols + 1));
  for (int r = rows; r >= 1; --r) {
    for (int c = 0; c < cols; ++c) {
      const double level =
          peak == 0 ? 0.0
                    : static_cast<double>(col[c]) / static_cast<double>(peak);
      out.push_back(level * rows >= r ? '#' : ' ');
    }
    out.push_back('\n');
  }
  for (int c = 0; c < cols; ++c) out.push_back('-');
  out.push_back('\n');
  return out;
}

}  // namespace anno::media
