// 8x8 type-II DCT / type-III inverse DCT used by the toy intra codec.
//
// The paper's player is built on the Berkeley MPEG tools; our substrate
// codec is an intra-only block-DCT codec (MJPEG-like) which exercises the
// same decode path structure (entropy decode -> dequant -> IDCT -> colour)
// that loads the PDA's CPU during playback.
#pragma once

#include <array>

namespace anno::media {

/// One 8x8 block of coefficients or samples, row-major.
using Block8x8 = std::array<double, 64>;

/// Forward 8x8 DCT-II with orthonormal scaling.
[[nodiscard]] Block8x8 forwardDct(const Block8x8& spatial);

/// Inverse 8x8 DCT (DCT-III) with orthonormal scaling; exact inverse of
/// forwardDct up to floating-point rounding.
[[nodiscard]] Block8x8 inverseDct(const Block8x8& freq);

/// Zigzag scan order of an 8x8 block (JPEG order).
[[nodiscard]] const std::array<int, 64>& zigzagOrder();

}  // namespace anno::media
