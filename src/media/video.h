// Video clips: frame sequences with timing, plus per-frame luminance
// statistics.  The annotation pipeline (src/core) consumes FrameStats rather
// than raw frames, mirroring the paper's offline profiling pass.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "media/histogram.h"
#include "media/image.h"
#include "media/luminance.h"

namespace anno::concurrency {
class ThreadPool;
}

namespace anno::media {

/// A decoded video clip.  Frames share one resolution; `fps` is constant.
struct VideoClip {
  std::string name;
  double fps = 25.0;
  std::vector<Image> frames;

  [[nodiscard]] int width() const noexcept {
    return frames.empty() ? 0 : frames.front().width();
  }
  [[nodiscard]] int height() const noexcept {
    return frames.empty() ? 0 : frames.front().height();
  }
  [[nodiscard]] std::size_t frameCount() const noexcept {
    return frames.size();
  }
  [[nodiscard]] double durationSeconds() const noexcept {
    return fps > 0.0 ? static_cast<double>(frames.size()) / fps : 0.0;
  }
};

/// Offline per-frame profile: everything the annotator needs, without
/// holding pixel data.  This is the "analysis step" of Sec. 3.
struct FrameStats {
  FrameLuminance luminance;
  Histogram histogram;  ///< luma histogram of the frame

  friend bool operator==(const FrameStats&, const FrameStats&) = default;
};

/// Profiling-stage hook: invoked for each frame right after profileFrame,
/// free to rewrite the stats in place (e.g. core's ROI adapter swaps in a
/// region-weighted histogram).  Runs inside the parallel loop, so it must
/// be safe to call concurrently for DIFFERENT frame indices.
using FrameStatsHook = std::function<void(
    std::size_t frameIndex, const Image& frame, FrameStats& stats)>;

/// Profiles every frame of a clip (single pass per frame).  Frames are
/// independent: with a pool they are chunked across its threads, each frame
/// written into its own slot, so the result is byte-identical to the serial
/// pass for any thread count.  `pool == nullptr` runs serially.  A non-null
/// `hook` post-processes each frame's stats in place (same determinism
/// contract: per-frame slots, no cross-frame state).
[[nodiscard]] std::vector<FrameStats> profileClip(
    const VideoClip& clip, concurrency::ThreadPool* pool = nullptr,
    const FrameStatsHook& hook = {});

/// Profiles one frame.
[[nodiscard]] FrameStats profileFrame(const Image& frame);

/// Validates structural invariants (non-empty, uniform resolution,
/// positive fps).  Throws std::invalid_argument describing the violation.
void validateClip(const VideoClip& clip);

}  // namespace anno::media
