// Image containers: interleaved RGB8 frames and single-channel gray planes.
//
// Frames in this library are small (PDA resolutions, e.g. 320x240), so we
// favour a simple owning value type with bounds-checked accessors over views
// or strided buffers.  All heavier analysis (histograms, luminance planes)
// lives in free functions in luminance.h / histogram.h.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "media/pixel.h"

namespace anno::media {

/// Owning interleaved RGB8 image.  Row-major, origin top-left.
class Image {
 public:
  Image() = default;

  /// Creates a width x height image filled with `fill`.
  /// Throws std::invalid_argument on zero/overflow dimensions.
  Image(int width, int height, Rgb8 fill = Rgb8{})
      : width_(width), height_(height) {
    if (width <= 0 || height <= 0 || width > kMaxDim || height > kMaxDim) {
      throw std::invalid_argument("Image: dimensions out of range");
    }
    pixels_.assign(static_cast<std::size_t>(width) * height, fill);
  }

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }
  [[nodiscard]] std::size_t pixelCount() const noexcept {
    return pixels_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return pixels_.empty(); }

  /// Unchecked access (hot loops); UB if out of range, as for vector.
  [[nodiscard]] Rgb8& operator()(int x, int y) noexcept {
    return pixels_[static_cast<std::size_t>(y) * width_ + x];
  }
  [[nodiscard]] const Rgb8& operator()(int x, int y) const noexcept {
    return pixels_[static_cast<std::size_t>(y) * width_ + x];
  }

  /// Checked access; throws std::out_of_range.
  [[nodiscard]] Rgb8& at(int x, int y) {
    checkBounds(x, y);
    return (*this)(x, y);
  }
  [[nodiscard]] const Rgb8& at(int x, int y) const {
    checkBounds(x, y);
    return (*this)(x, y);
  }

  [[nodiscard]] std::span<Rgb8> pixels() noexcept { return pixels_; }
  [[nodiscard]] std::span<const Rgb8> pixels() const noexcept {
    return pixels_;
  }

  friend bool operator==(const Image&, const Image&) = default;

  static constexpr int kMaxDim = 1 << 15;

 private:
  void checkBounds(int x, int y) const {
    if (x < 0 || x >= width_ || y < 0 || y >= height_) {
      throw std::out_of_range("Image::at: coordinate out of range");
    }
  }

  int width_ = 0;
  int height_ = 0;
  std::vector<Rgb8> pixels_;
};

/// Bilinear resampling to a new resolution (both up and down).  The proxy
/// uses this to adapt streams to smaller PDA screens (the transcoding role
/// of the paper's Fig. 1 proxy, cf. the data-shaping work it cites).
/// Throws std::invalid_argument on empty input or non-positive target.
[[nodiscard]] Image resizeBilinear(const Image& src, int width, int height);

/// Owning single-channel 8-bit plane (luma planes, camera captures, solid
/// gray characterization patches).
class GrayImage {
 public:
  GrayImage() = default;

  GrayImage(int width, int height, std::uint8_t fill = 0)
      : width_(width), height_(height) {
    if (width <= 0 || height <= 0 || width > Image::kMaxDim ||
        height > Image::kMaxDim) {
      throw std::invalid_argument("GrayImage: dimensions out of range");
    }
    pixels_.assign(static_cast<std::size_t>(width) * height, fill);
  }

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }
  [[nodiscard]] std::size_t pixelCount() const noexcept {
    return pixels_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return pixels_.empty(); }

  [[nodiscard]] std::uint8_t& operator()(int x, int y) noexcept {
    return pixels_[static_cast<std::size_t>(y) * width_ + x];
  }
  [[nodiscard]] std::uint8_t operator()(int x, int y) const noexcept {
    return pixels_[static_cast<std::size_t>(y) * width_ + x];
  }

  [[nodiscard]] std::uint8_t& at(int x, int y) {
    checkBounds(x, y);
    return (*this)(x, y);
  }
  [[nodiscard]] std::uint8_t at(int x, int y) const {
    checkBounds(x, y);
    return (*this)(x, y);
  }

  [[nodiscard]] std::span<std::uint8_t> pixels() noexcept { return pixels_; }
  [[nodiscard]] std::span<const std::uint8_t> pixels() const noexcept {
    return pixels_;
  }

  friend bool operator==(const GrayImage&, const GrayImage&) = default;

 private:
  void checkBounds(int x, int y) const {
    if (x < 0 || x >= width_ || y < 0 || y >= height_) {
      throw std::out_of_range("GrayImage::at: coordinate out of range");
    }
  }

  int width_ = 0;
  int height_ = 0;
  std::vector<std::uint8_t> pixels_;
};

}  // namespace anno::media
