#include "media/luminance.h"

#include <stdexcept>

#include "media/kernels/kernels.h"

namespace anno::media {

GrayImage lumaPlane(const Image& img) {
  if (img.empty()) return {};
  GrayImage out(img.width(), img.height());
  kernels::active().lumaPlane(img.pixels().data(), img.pixelCount(),
                              out.pixels().data());
  return out;
}

FrameLuminance analyzeLuminance(const Image& img) {
  FrameLuminance fl;
  fl.pixelCount = img.pixelCount();
  if (fl.pixelCount == 0) return fl;
  kernels::FrameProfile profile;
  kernels::active().profileRgb(img.pixels().data(), fl.pixelCount, profile);
  fl.minLuma = profile.minLuma;
  fl.maxLuma = profile.maxLuma;
  // Exact integer sum, one final divide.  Identical to the old running
  // double sum (integer partial sums stay exactly representable far past
  // any real frame size) but order-independent, so SIMD lane decomposition
  // cannot perturb it.
  fl.meanLuma = static_cast<double>(profile.lumaSum) /
                static_cast<double>(fl.pixelCount);
  return fl;
}

std::uint8_t clipSafeLuma(const std::uint64_t (&counts)[256],
                          std::uint64_t totalPixels, double clipFraction) {
  if (clipFraction < 0.0 || clipFraction >= 1.0) {
    throw std::invalid_argument("clipSafeLuma: clipFraction must be in [0,1)");
  }
  if (totalPixels == 0) return 0;
  // Largest budget of pixels we may clip; the chosen level L is the smallest
  // value with at most `budget` pixels strictly above it.
  const auto budget =
      static_cast<std::uint64_t>(clipFraction * static_cast<double>(totalPixels));
  return static_cast<std::uint8_t>(
      kernels::active().tailBudgetLevel(counts, budget));
}

std::uint8_t clipSafeLuma(const Image& img, double clipFraction) {
  kernels::FrameProfile profile;
  kernels::active().profileRgb(img.pixels().data(), img.pixelCount(), profile);
  return clipSafeLuma(
      *reinterpret_cast<const std::uint64_t(*)[256]>(profile.hist.data()),
      img.pixelCount(), clipFraction);
}

}  // namespace anno::media
