#include "media/luminance.h"

#include <stdexcept>

namespace anno::media {

GrayImage lumaPlane(const Image& img) {
  if (img.empty()) return {};
  GrayImage out(img.width(), img.height());
  auto src = img.pixels();
  auto dst = out.pixels();
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = luma8(src[i]);
  }
  return out;
}

FrameLuminance analyzeLuminance(const Image& img) {
  FrameLuminance fl;
  fl.pixelCount = img.pixelCount();
  if (fl.pixelCount == 0) return fl;
  fl.minLuma = 255;
  fl.maxLuma = 0;
  double sum = 0.0;
  for (const Rgb8& p : img.pixels()) {
    const std::uint8_t y = luma8(p);
    sum += y;
    if (y < fl.minLuma) fl.minLuma = y;
    if (y > fl.maxLuma) fl.maxLuma = y;
  }
  fl.meanLuma = sum / static_cast<double>(fl.pixelCount);
  return fl;
}

std::uint8_t clipSafeLuma(const std::uint64_t (&counts)[256],
                          std::uint64_t totalPixels, double clipFraction) {
  if (clipFraction < 0.0 || clipFraction >= 1.0) {
    throw std::invalid_argument("clipSafeLuma: clipFraction must be in [0,1)");
  }
  if (totalPixels == 0) return 0;
  // Largest budget of pixels we may clip; the chosen level L is the smallest
  // value with at most `budget` pixels strictly above it.
  const auto budget =
      static_cast<std::uint64_t>(clipFraction * static_cast<double>(totalPixels));
  std::uint64_t above = 0;
  for (int v = 255; v >= 1; --v) {
    above += counts[v];
    if (above > budget) return static_cast<std::uint8_t>(v);
  }
  return 0;
}

std::uint8_t clipSafeLuma(const Image& img, double clipFraction) {
  std::uint64_t counts[256] = {};
  for (const Rgb8& p : img.pixels()) ++counts[luma8(p)];
  return clipSafeLuma(counts, img.pixelCount(), clipFraction);
}

}  // namespace anno::media
