#include "media/clipgen.h"

#include <cmath>
#include <stdexcept>

namespace anno::media {
namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

double smoothstep(double e0, double e1, double x) {
  if (x <= e0) return 0.0;
  if (x >= e1) return 1.0;
  const double t = (x - e0) / (e1 - e0);
  return t * t * (3.0 - 2.0 * t);
}

/// Scene layout drawn once per scene from the scene RNG: background wave
/// parameters and highlight spot tracks.
struct SceneLayout {
  double fx, fy;            // background spatial frequencies (cycles/frame)
  double phx, phy;          // background phases
  double driftX, driftY;    // background drift (cycles/second)
  double flickerPhase;
  struct Spot {
    double x, y;       // centre, fraction of frame size
    double vx, vy;     // drift, fraction/second
    double radius;     // pixels
  };
  std::vector<Spot> spots;
};

SceneLayout drawLayout(const SceneSpec& scene, int width, int height,
                       SplitMix64& rng) {
  SceneLayout l;
  l.fx = rng.uniform(0.7, 2.2);
  l.fy = rng.uniform(0.7, 2.2);
  l.phx = rng.uniform(0.0, 1.0);
  l.phy = rng.uniform(0.0, 1.0);
  l.driftX = scene.motion * rng.uniform(0.02, 0.12);
  l.driftY = scene.motion * rng.uniform(0.02, 0.12);
  l.flickerPhase = rng.uniform(0.0, kTwoPi);

  if (scene.highlightFraction > 0.0) {
    const double area = scene.highlightFraction * width * height;
    const int nspots = static_cast<int>(rng.between(3, 8));
    const double perSpot = area / nspots;
    const double radius =
        std::max(1.2, std::sqrt(perSpot / 3.14159265358979323846));
    l.spots.reserve(nspots);
    for (int i = 0; i < nspots; ++i) {
      SceneLayout::Spot s;
      s.x = rng.uniform(0.08, 0.92);
      s.y = rng.uniform(0.08, 0.92);
      s.vx = scene.motion * rng.uniform(-0.06, 0.06);
      s.vy = scene.motion * rng.uniform(-0.06, 0.06);
      s.radius = radius * rng.uniform(0.8, 1.25);
      l.spots.push_back(s);
    }
  }
  return l;
}

}  // namespace

Image renderSceneFrame(const SceneSpec& scene, int width, int height,
                       double t, SplitMix64 sceneRng) {
  if (width <= 0 || height <= 0) {
    throw std::invalid_argument("renderSceneFrame: bad dimensions");
  }
  const SceneLayout layout = drawLayout(scene, width, height, sceneRng);

  // Normalize colour casts so the cast-weighted luma equals the target
  // luminance (keeps maximum luminance under the spec's control).
  double castSum = kLumaR * scene.castR + kLumaG * scene.castG +
                   kLumaB * scene.castB;
  if (castSum <= 0.0) castSum = 1.0;
  const double cr = scene.castR / castSum;
  const double cg = scene.castG / castSum;
  const double cb = scene.castB / castSum;

  // Small deterministic temporal jitter so consecutive frames of a scene
  // differ slightly in max luminance (the paper's Fig. 6 "Max. Luminance"
  // trace wiggles inside a scene).
  const double jitter =
      scene.flicker * std::sin(kTwoPi * 1.3 * t + layout.flickerPhase);

  Image img(width, height);
  const double bg = scene.backgroundLuma;
  const double spread = scene.backgroundSpread;
  for (int y = 0; y < height; ++y) {
    const double fy = static_cast<double>(y) / height;
    for (int x = 0; x < width; ++x) {
      const double fx = static_cast<double>(x) / width;
      const double wave =
          0.5 * (std::sin(kTwoPi * (layout.fx * fx + layout.phx +
                                    layout.driftX * t)) +
                 std::sin(kTwoPi * (layout.fy * fy + layout.phy +
                                    layout.driftY * t)));
      double luma = bg + spread * wave + jitter;

      // Highlight spots only ever raise luminance toward highlightLuma.
      for (const SceneLayout::Spot& s : layout.spots) {
        const double cx = (s.x + s.vx * t) * width;
        const double cy = (s.y + s.vy * t) * height;
        const double dx = x - cx;
        const double dy = y - cy;
        const double d = std::sqrt(dx * dx + dy * dy);
        if (d < s.radius) {
          const double w = 1.0 - smoothstep(0.6 * s.radius, s.radius, d);
          const double hl = scene.highlightLuma + jitter * 0.25;
          luma = std::max(luma, luma + (hl - luma) * w);
        }
      }

      img(x, y) = Rgb8{clamp8(luma * cr), clamp8(luma * cg),
                       clamp8(luma * cb)};
    }
  }
  return img;
}

VideoClip generateClip(const ClipProfile& profile) {
  if (profile.scenes.empty()) {
    throw std::invalid_argument("generateClip: profile has no scenes");
  }
  if (profile.fps <= 0.0) {
    throw std::invalid_argument("generateClip: fps must be positive");
  }
  VideoClip clip;
  clip.name = profile.name;
  clip.fps = profile.fps;
  SplitMix64 rng(profile.seed);
  for (const SceneSpec& scene : profile.scenes) {
    SplitMix64 sceneRng = rng.split();
    const int nframes = std::max(
        1, static_cast<int>(std::lround(scene.durationSeconds * profile.fps)));
    for (int i = 0; i < nframes; ++i) {
      const double t = static_cast<double>(i) / profile.fps;
      clip.frames.push_back(renderSceneFrame(scene, profile.width,
                                             profile.height, t, sceneRng));
    }
  }
  return clip;
}

SceneSpec creditsScene(double durationSeconds) {
  SceneSpec s;
  s.durationSeconds = durationSeconds;
  s.backgroundLuma = 12;
  s.backgroundSpread = 3;       // near-uniform black
  s.highlightFraction = 0.02;   // thin bright strokes
  s.highlightLuma = 235;
  s.motion = 0.15;              // slow scroll
  s.flicker = 0.5;
  return s;
}

std::vector<PaperClip> allPaperClips() {
  return {PaperClip::kTheMovie,        PaperClip::kCatwoman,
          PaperClip::kHunterSubres,    PaperClip::kIRobot,
          PaperClip::kIceAge,          PaperClip::kOfficeXp,
          PaperClip::kReturnOfTheKing, PaperClip::kShrek2,
          PaperClip::kSpiderman2,      PaperClip::kIncrediblesTlr2};
}

std::string paperClipName(PaperClip clip) {
  switch (clip) {
    case PaperClip::kTheMovie: return "themovie";
    case PaperClip::kCatwoman: return "catwoman";
    case PaperClip::kHunterSubres: return "hunter_subres";
    case PaperClip::kIRobot: return "i_robot";
    case PaperClip::kIceAge: return "ice_age";
    case PaperClip::kOfficeXp: return "officexp";
    case PaperClip::kReturnOfTheKing: return "returnoftheking";
    case PaperClip::kShrek2: return "shrek2";
    case PaperClip::kSpiderman2: return "spiderman2";
    case PaperClip::kIncrediblesTlr2: return "theincredibles-tlr2";
  }
  throw std::invalid_argument("paperClipName: unknown clip");
}

namespace {

/// Scene archetypes used to compose the per-clip mixes.
enum class SceneKind {
  kDarkPlain,     // dark scene, no highlights: low max luminance
  kDarkSparse,    // dark scene, few bright spots: high max, low clip-safe
  kMedium,        // mid-luminance scene
  kBrightDense,   // bright background, mass concentrated high (snow, sky)
};

SceneSpec drawScene(SceneKind kind, SplitMix64& rng) {
  SceneSpec s;
  s.durationSeconds = rng.uniform(2.0, 6.0);
  s.motion = rng.uniform(0.1, 0.9);
  s.flicker = rng.uniform(1.0, 3.5);
  s.castR = rng.uniform(0.85, 1.15);
  s.castG = rng.uniform(0.85, 1.15);
  s.castB = rng.uniform(0.85, 1.15);
  switch (kind) {
    case SceneKind::kDarkPlain:
      s.backgroundLuma = static_cast<std::uint8_t>(rng.between(35, 75));
      s.backgroundSpread = static_cast<std::uint8_t>(rng.between(15, 35));
      s.highlightFraction = 0.0;
      break;
    case SceneKind::kDarkSparse:
      s.backgroundLuma = static_cast<std::uint8_t>(rng.between(40, 85));
      s.backgroundSpread = static_cast<std::uint8_t>(rng.between(15, 40));
      s.highlightFraction = rng.uniform(0.002, 0.012);
      s.highlightLuma = static_cast<std::uint8_t>(rng.between(235, 255));
      break;
    case SceneKind::kMedium:
      s.backgroundLuma = static_cast<std::uint8_t>(rng.between(105, 140));
      s.backgroundSpread = static_cast<std::uint8_t>(rng.between(30, 55));
      s.highlightFraction = rng.uniform(0.0, 0.004);
      s.highlightLuma = static_cast<std::uint8_t>(rng.between(210, 245));
      break;
    case SceneKind::kBrightDense:
      s.backgroundLuma = static_cast<std::uint8_t>(rng.between(185, 215));
      s.backgroundSpread = static_cast<std::uint8_t>(rng.between(25, 40));
      // Dense highlights: a large share of pixels sits near the top of the
      // range, so clipping budgets buy almost nothing (paper: ice_age,
      // hunter_subres -- "pixels are concentrated in the high luminance
      // range").
      s.highlightFraction = rng.uniform(0.05, 0.14);
      s.highlightLuma = static_cast<std::uint8_t>(rng.between(245, 255));
      break;
  }
  return s;
}

struct ClipMix {
  double totalSeconds;
  double fps;
  // Scene-kind weights (need not sum to 1; normalized at draw time).
  double darkPlain, darkSparse, medium, brightDense;
  std::uint64_t seed;
};

ClipMix mixFor(PaperClip clip) {
  // Durations roughly match the paper's "between 30 seconds and 3 minutes";
  // the mixes encode the qualitative content description: dark entertainment
  // clips save the most, ice_age / hunter_subres are bright and save little.
  switch (clip) {
    case PaperClip::kTheMovie:
      return {120.0, 12.0, 0.55, 0.33, 0.12, 0.00, 101};
    case PaperClip::kCatwoman:
      return {90.0, 12.0, 0.45, 0.40, 0.15, 0.00, 102};
    case PaperClip::kHunterSubres:
      return {45.0, 12.0, 0.00, 0.05, 0.25, 0.70, 103};
    case PaperClip::kIRobot:
      return {100.0, 12.0, 0.35, 0.40, 0.25, 0.00, 104};
    case PaperClip::kIceAge:
      return {80.0, 12.0, 0.00, 0.02, 0.13, 0.85, 105};
    case PaperClip::kOfficeXp:
      return {30.0, 12.0, 0.30, 0.30, 0.40, 0.00, 106};
    case PaperClip::kReturnOfTheKing:
      return {150.0, 12.0, 0.60, 0.30, 0.10, 0.00, 107};
    case PaperClip::kShrek2:
      return {90.0, 12.0, 0.30, 0.35, 0.35, 0.00, 108};
    case PaperClip::kSpiderman2:
      return {120.0, 12.0, 0.40, 0.40, 0.20, 0.00, 109};
    case PaperClip::kIncrediblesTlr2:
      return {110.0, 12.0, 0.35, 0.35, 0.28, 0.02, 110};
  }
  throw std::invalid_argument("mixFor: unknown clip");
}

}  // namespace

ClipProfile paperClipProfile(PaperClip clip, double durationScale, int width,
                             int height, std::uint64_t seedOverride) {
  if (durationScale <= 0.0) {
    throw std::invalid_argument("paperClipProfile: durationScale must be > 0");
  }
  const ClipMix mix = mixFor(clip);
  ClipProfile profile;
  profile.name = paperClipName(clip);
  profile.width = width;
  profile.height = height;
  profile.fps = mix.fps;
  profile.seed = seedOverride != 0 ? seedOverride : mix.seed;

  SplitMix64 rng(profile.seed * 0x9E3779B97F4A7C15ULL + 7);
  const double target = mix.totalSeconds * durationScale;
  const double wsum =
      mix.darkPlain + mix.darkSparse + mix.medium + mix.brightDense;
  double elapsed = 0.0;
  while (elapsed < target) {
    const double u = rng.uniform() * wsum;
    SceneKind kind;
    if (u < mix.darkPlain) {
      kind = SceneKind::kDarkPlain;
    } else if (u < mix.darkPlain + mix.darkSparse) {
      kind = SceneKind::kDarkSparse;
    } else if (u < mix.darkPlain + mix.darkSparse + mix.medium) {
      kind = SceneKind::kMedium;
    } else {
      kind = SceneKind::kBrightDense;
    }
    SceneSpec s = drawScene(kind, rng);
    if (elapsed + s.durationSeconds > target) {
      s.durationSeconds = std::max(0.5, target - elapsed);
    }
    elapsed += s.durationSeconds;
    profile.scenes.push_back(s);
  }
  return profile;
}

VideoClip generatePaperClip(PaperClip clip, double durationScale, int width,
                            int height) {
  return generateClip(paperClipProfile(clip, durationScale, width, height));
}

}  // namespace anno::media
