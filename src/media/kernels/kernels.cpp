// Kernel dispatch: pick the best table the CPU supports, once, and let
// every hot path read it through one atomic pointer.
#include "media/kernels/kernels.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "media/kernels/kernels_internal.h"

namespace anno::media::kernels {
namespace {

std::atomic<const KernelTable*> g_active{nullptr};

/// Best level supported by this build AND this CPU.
Level bestLevel() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("popcnt")) {
    return Level::kAvx2;
  }
  return Level::kSse2;  // x86-64 baseline
#elif defined(__aarch64__)
  return Level::kNeon;  // Advanced SIMD is mandatory on aarch64
#else
  return Level::kScalar;
#endif
}

/// Resolves the startup table: ANNO_SIMD env var beats the CMake default
/// beats CPU detection.  Unknown or unavailable requests warn once on
/// stderr and fall back to the best available level.
const KernelTable* select() {
  std::string_view requested;
  const char* source = nullptr;
  if (const char* env = std::getenv("ANNO_SIMD"); env != nullptr && *env) {
    requested = env;
    source = "ANNO_SIMD";
  }
#ifdef ANNO_SIMD_DEFAULT
  else {
    requested = ANNO_SIMD_DEFAULT;
    source = "ANNO_SIMD cmake default";
  }
#endif
  if (!requested.empty()) {
    if (const std::optional<Level> level = parseLevel(requested)) {
      if (const KernelTable* table = tableFor(*level)) return table;
      std::fprintf(stderr,
                   "[anno] %s=%.*s not available on this cpu/build; "
                   "using %s kernels\n",
                   source, static_cast<int>(requested.size()),
                   requested.data(), levelName(bestLevel()));
    } else {
      std::fprintf(stderr,
                   "[anno] %s=%.*s not recognized "
                   "(want scalar|sse2|avx2|neon); using %s kernels\n",
                   source, static_cast<int>(requested.size()),
                   requested.data(), levelName(bestLevel()));
    }
  }
  return tableFor(bestLevel());
}

}  // namespace

const char* levelName(Level level) noexcept {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSse2:
      return "sse2";
    case Level::kAvx2:
      return "avx2";
    case Level::kNeon:
      return "neon";
  }
  return "?";
}

std::optional<Level> parseLevel(std::string_view name) noexcept {
  if (name == "scalar") return Level::kScalar;
  if (name == "sse2") return Level::kSse2;
  if (name == "avx2") return Level::kAvx2;
  if (name == "neon") return Level::kNeon;
  return std::nullopt;
}

int clipThreshold(double k) noexcept { return detail::clipThreshold(k); }

bool available(Level level) noexcept { return tableFor(level) != nullptr; }

std::vector<Level> availableLevels() {
  std::vector<Level> levels;
  for (std::size_t i = 0; i < kLevelCount; ++i) {
    const Level level = static_cast<Level>(i);
    if (available(level)) levels.push_back(level);
  }
  return levels;
}

const KernelTable* tableFor(Level level) noexcept {
  switch (level) {
    case Level::kScalar:
      return &scalarTable();
#if defined(__x86_64__) || defined(_M_X64)
    case Level::kSse2:
      return &sse2Table();
    case Level::kAvx2:
      return (__builtin_cpu_supports("avx2") &&
              __builtin_cpu_supports("popcnt"))
                 ? &avx2Table()
                 : nullptr;
#elif defined(__aarch64__)
    case Level::kNeon:
      return &neonTable();
#endif
    default:
      return nullptr;
  }
}

const KernelTable& active() noexcept {
  const KernelTable* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) {
    // First use (or a race between first uses: select() is deterministic,
    // so concurrent winners store the same pointer).
    table = select();
    g_active.store(table, std::memory_order_release);
  }
  return *table;
}

Level activeLevel() noexcept { return active().level; }

ScopedLevel::ScopedLevel(Level level) : previous_(&active()) {
  const KernelTable* table = tableFor(level);
  g_active.store(table != nullptr ? table : &scalarTable(),
                 std::memory_order_release);
}

ScopedLevel::~ScopedLevel() {
  g_active.store(previous_, std::memory_order_release);
}

}  // namespace anno::media::kernels
