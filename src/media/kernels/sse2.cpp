// SSE2 kernel variants -- the x86-64 baseline level (every x86-64 CPU has
// SSE2, so this is the floor the dispatcher can always select on x86).
//
// Bit-identical contract: the double-precision kernels run each pixel
// through the exact scalar operation sequence, two pixels per vector; the
// integer kernels are exact.  Clipped counting compares bytes against a
// threshold derived from the scalar predicate (detail::clipThreshold), so
// it reproduces the per-pixel double comparison on every input.
//
// This TU is compiled WITHOUT extra ISA flags: SSE2 is part of the x86-64
// ABI, so the intrinsics below are always available here.
#if defined(__x86_64__) || defined(_M_X64)

#include <emmintrin.h>

#include "media/kernels/kernels.h"
#include "media/kernels/kernels_internal.h"

namespace anno::media::kernels {
namespace {

// Baseline SSE2 has no byte shuffle (SSSE3) or widening loads (SSE4.1), so
// the RGB deinterleave costs more scalar construction than the two-wide
// double math saves: the measured 2-lane variants ran ~0.85x of scalar.
// The profile and plane kernels therefore use the scalar reference here;
// SSE2 still wins on the byte-oriented kernels below.
void profileRgbSse2(const Rgb8* px, std::size_t n, FrameProfile& out) {
  out = FrameProfile{};
  int minAcc = 255;
  int maxAcc = 0;
  detail::profileRgbRange(px, n, out, minAcc, maxAcc);
  detail::finishProfile(out, n, minAcc, maxAcc);
}

void profileGraySse2(const std::uint8_t* px, std::size_t n,
                     FrameProfile& out) {
  out = FrameProfile{};
  int minAcc = 255;
  int maxAcc = 0;
  std::uint32_t h[4][256] = {};
  __m128i sumAcc = _mm_setzero_si128();
  __m128i minAccV = _mm_set1_epi8(static_cast<char>(0xFF));
  __m128i maxAccV = _mm_setzero_si128();
  std::size_t i = 0;
  alignas(16) std::uint8_t buf[16];
  for (; i + 16 <= n; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(px + i));
    sumAcc = _mm_add_epi64(sumAcc, _mm_sad_epu8(v, _mm_setzero_si128()));
    minAccV = _mm_min_epu8(minAccV, v);
    maxAccV = _mm_max_epu8(maxAccV, v);
    _mm_store_si128(reinterpret_cast<__m128i*>(buf), v);
    for (int j = 0; j < 16; ++j) ++h[j & 3][buf[j]];
  }
  if (i != 0) {
    out.lumaSum = static_cast<std::uint64_t>(_mm_cvtsi128_si64(sumAcc)) +
                  static_cast<std::uint64_t>(
                      _mm_cvtsi128_si64(_mm_unpackhi_epi64(sumAcc, sumAcc)));
    _mm_store_si128(reinterpret_cast<__m128i*>(buf), minAccV);
    for (int j = 0; j < 16; ++j) minAcc = std::min<int>(minAcc, buf[j]);
    _mm_store_si128(reinterpret_cast<__m128i*>(buf), maxAccV);
    for (int j = 0; j < 16; ++j) maxAcc = std::max<int>(maxAcc, buf[j]);
    for (int v = 0; v < 256; ++v) {
      out.hist[v] = static_cast<std::uint64_t>(h[0][v]) + h[1][v] + h[2][v] +
                    h[3][v];
    }
  }
  detail::profileGrayRange(px + i, n - i, out, minAcc, maxAcc);
  detail::finishProfile(out, n, minAcc, maxAcc);
}

void maxChannelHistogramSse2(const Rgb8* px, std::size_t n,
                             std::uint64_t* hist) {
  // One 16-byte load covers 5 packed RGB pixels (15 bytes).  Byte-shifting
  // the vector right by 1 and 2 and taking the unsigned max makes byte j
  // hold max(bytes j, j+1, j+2) -- at j = 0,3,6,9,12 exactly max(r,g,b) of
  // a pixel.  The scatter runs on four banked uint32 histograms (the same
  // dependency-breaking shape as profileGray) and ADDS into the caller's
  // histogram at the end: the scalar kernel accumulates, so must we.
  std::uint32_t h[4][256] = {};
  const std::uint8_t* bytes = reinterpret_cast<const std::uint8_t*>(px);
  std::size_t i = 0;
  alignas(16) std::uint8_t buf[16];
  // The load reads bytes [3i, 3i+16); 3i+16 <= 3(i+6) keeps it in bounds.
  for (; i + 6 <= n; i += 5) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(bytes + 3 * i));
    const __m128i m = _mm_max_epu8(
        _mm_max_epu8(v, _mm_srli_si128(v, 1)), _mm_srli_si128(v, 2));
    _mm_store_si128(reinterpret_cast<__m128i*>(buf), m);
    ++h[0][buf[0]];
    ++h[1][buf[3]];
    ++h[2][buf[6]];
    ++h[3][buf[9]];
    ++h[0][buf[12]];
  }
  if (i != 0) {
    for (int v = 0; v < 256; ++v) {
      hist[v] += static_cast<std::uint64_t>(h[0][v]) + h[1][v] + h[2][v] +
                 h[3][v];
    }
  }
  detail::maxChannelRange(px + i, n - i, hist);
}

void lumaPlaneSse2(const Rgb8* px, std::size_t n, std::uint8_t* out) {
  detail::lumaPlaneRange(px, n, out);  // see the profileRgbSse2 note
}

void histAccumulateSse2(std::uint64_t* dst, const std::uint64_t* src) {
  for (int v = 0; v < 256; v += 2) {
    const __m128i d =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + v));
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + v));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + v),
                     _mm_add_epi64(d, s));
  }
}

Uint128 emdNumeratorSse2(const std::uint64_t* a, std::uint64_t totalA,
                         const std::uint64_t* b, std::uint64_t totalB) {
  if (totalA > detail::kEmdFastMaxTotal || totalB > detail::kEmdFastMaxTotal) {
    return detail::emdNumeratorExact(a, totalA, b, totalB);
  }
  if (totalA == totalB) {
    // Equal totals factor the numerator as t * sum|cdfA - cdfB| -- one
    // multiply total instead of two per bin (still exact integers).
    std::int64_t cdfDiff = 0;
    std::uint64_t sumAbs = 0;
    for (int v = 0; v < 256; ++v) {
      cdfDiff += static_cast<std::int64_t>(a[v]) -
                 static_cast<std::int64_t>(b[v]);
      sumAbs += static_cast<std::uint64_t>(cdfDiff < 0 ? -cdfDiff : cdfDiff);
    }
    return static_cast<Uint128>(totalA * sumAbs);
  }
  // 64-bit fast path: with totals <= 2^27 every product fits well inside
  // a signed 64-bit value (exact, so identical to the 128-bit reference).
  std::uint64_t cdfA = 0;
  std::uint64_t cdfB = 0;
  std::uint64_t acc = 0;
  for (int v = 0; v < 256; ++v) {
    cdfA += a[v];
    cdfB += b[v];
    const std::int64_t d = static_cast<std::int64_t>(cdfA * totalB) -
                           static_cast<std::int64_t>(cdfB * totalA);
    acc += static_cast<std::uint64_t>(d < 0 ? -d : d);
  }
  return acc;
}

void scalePixelsSse2(const Rgb8* src, std::size_t n, double k, Rgb8* dst) {
  if (k < 0.0) {
    detail::scaleRange(src, n, k, dst);
    return;
  }
  const __m128d kv = _mm_set1_pd(k);
  const __m128d half = _mm_set1_pd(0.5);
  const __m128d lim = _mm_set1_pd(255.0);
  const std::uint8_t* in = reinterpret_cast<const std::uint8_t*>(src);
  std::uint8_t* outp = reinterpret_cast<std::uint8_t*>(dst);
  const std::size_t channels = n * 3;
  std::size_t c = 0;
  for (; c + 2 <= channels; c += 2) {
    // clamp8(v*k): v*k >= 0 here, so only the >= 255 clamp can fire and
    // truncating v*k + 0.5 reproduces the scalar rounding exactly.
    const __m128d y = _mm_mul_pd(_mm_set_pd(in[c + 1], in[c]), kv);
    __m128d t = _mm_add_pd(y, half);
    const __m128d ge = _mm_cmpge_pd(y, lim);
    t = _mm_or_pd(_mm_and_pd(ge, lim), _mm_andnot_pd(ge, t));
    const __m128i yi = _mm_cvttpd_epi32(t);
    outp[c] = static_cast<std::uint8_t>(_mm_cvtsi128_si32(yi));
    outp[c + 1] = static_cast<std::uint8_t>(
        _mm_cvtsi128_si32(_mm_shuffle_epi32(yi, 1)));
  }
  if (c < channels) {
    // Odd channel count only when n is odd; finish the final pixel.
    dst[n - 1] = scale(src[n - 1], k);
  }
}

std::size_t countClippedSse2(const Rgb8* px, std::size_t n, double k) {
  if (k < 0.0) return detail::countClippedRange(px, n, k);
  const int threshold = detail::clipThreshold(k);
  if (threshold > 255) return 0;  // not even code 255 clips
  // A pixel clips iff max(r,g,b) >= threshold; byte-compare all three
  // channel bytes and OR the three per-pixel bits of the movemask.
  const __m128i tv = _mm_set1_epi8(static_cast<char>(threshold));
  const std::uint8_t* bytes = reinterpret_cast<const std::uint8_t*>(px);
  std::size_t clipped = 0;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const std::uint8_t* blk = bytes + 3 * i;
    std::uint64_t mask = 0;
    for (int part = 0; part < 3; ++part) {
      const __m128i v = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(blk + 16 * part));
      // Unsigned v >= threshold  <=>  max(v, threshold) == v.
      const __m128i ge = _mm_cmpeq_epi8(_mm_max_epu8(v, tv), v);
      mask |= static_cast<std::uint64_t>(
                  static_cast<std::uint32_t>(_mm_movemask_epi8(ge)))
              << (16 * part);
    }
    const std::uint64_t pixelBits =
        (mask | (mask >> 1) | (mask >> 2)) & 0x249249249249ull;
    clipped += static_cast<std::size_t>(__builtin_popcountll(pixelBits));
  }
  return clipped + detail::countClippedRange(px + i, n - i, k);
}

int tailBudgetLevelSse2(const std::uint64_t* counts, std::uint64_t budget) {
  return detail::tailBudgetLevelRange(counts, budget);
}

int lowPointSse2(const std::uint64_t* counts, std::uint64_t budget) {
  return detail::lowPointRange(counts, budget);
}

int highPointSse2(const std::uint64_t* counts, std::uint64_t budget) {
  return detail::highPointRange(counts, budget);
}

}  // namespace

const KernelTable& sse2Table() noexcept {
  static constexpr KernelTable kTable{
      Level::kSse2,        profileRgbSse2,    profileGraySse2,
      maxChannelHistogramSse2, lumaPlaneSse2, histAccumulateSse2,
      emdNumeratorSse2,    scalePixelsSse2,   countClippedSse2,
      tailBudgetLevelSse2, lowPointSse2,      highPointSse2,
  };
  return kTable;
}

}  // namespace anno::media::kernels

#endif  // x86-64
