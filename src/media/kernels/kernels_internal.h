// Shared scalar kernel bodies.  Each SIMD variant reuses these for ragged
// tails and for operand ranges outside its fast path, so "what a kernel
// computes" is defined in exactly one place.  Everything here is inline and
// ISA-independent; it must stay compilable in TUs built with and without
// vector flags.
#pragma once

#include <cstddef>
#include <cstdint>

#include "media/kernels/kernels.h"
#include "media/pixel.h"

namespace anno::media::kernels {

// Variant tables, each defined in its own TU (compiled with the matching
// ISA flags) and registered by kernels.cpp.
[[nodiscard]] const KernelTable& scalarTable() noexcept;
#if defined(__x86_64__) || defined(_M_X64)
[[nodiscard]] const KernelTable& sse2Table() noexcept;
[[nodiscard]] const KernelTable& avx2Table() noexcept;
#elif defined(__aarch64__)
[[nodiscard]] const KernelTable& neonTable() noexcept;
#endif

}  // namespace anno::media::kernels

namespace anno::media::kernels::detail {

/// Accumulates `n` RGB pixels into an in-progress profile.  `minAcc` /
/// `maxAcc` are int running values (255 / 0 sentinels when empty) so the
/// caller can fold vector-phase partials in before the tail.
inline void profileRgbRange(const Rgb8* px, std::size_t n, FrameProfile& out,
                            int& minAcc, int& maxAcc) {
  for (std::size_t i = 0; i < n; ++i) {
    const int y = luma8(px[i]);
    ++out.hist[static_cast<std::size_t>(y)];
    out.lumaSum += static_cast<std::uint64_t>(y);
    if (y < minAcc) minAcc = y;
    if (y > maxAcc) maxAcc = y;
  }
}

/// Folds sentinel-based running min/max into the profile (empty -> 0/0).
inline void finishProfile(FrameProfile& out, std::size_t n, int minAcc,
                          int maxAcc) {
  out.minLuma = n == 0 ? 0 : static_cast<std::uint8_t>(minAcc);
  out.maxLuma = n == 0 ? 0 : static_cast<std::uint8_t>(maxAcc);
}

inline void profileGrayRange(const std::uint8_t* px, std::size_t n,
                             FrameProfile& out, int& minAcc, int& maxAcc) {
  for (std::size_t i = 0; i < n; ++i) {
    const int y = px[i];
    ++out.hist[static_cast<std::size_t>(y)];
    out.lumaSum += static_cast<std::uint64_t>(y);
    if (y < minAcc) minAcc = y;
    if (y > maxAcc) maxAcc = y;
  }
}

inline void maxChannelRange(const Rgb8* px, std::size_t n,
                            std::uint64_t* hist) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t m =
        std::max(px[i].r, std::max(px[i].g, px[i].b));
    ++hist[m];
  }
}

inline void lumaPlaneRange(const Rgb8* px, std::size_t n, std::uint8_t* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = luma8(px[i]);
}

inline void scaleRange(const Rgb8* src, std::size_t n, double k, Rgb8* dst) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = scale(src[i], k);
}

inline std::size_t countClippedRange(const Rgb8* px, std::size_t n,
                                     double k) {
  std::size_t clipped = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (clipsWhenScaled(px[i], k)) ++clipped;
  }
  return clipped;
}

/// Smallest 8-bit code whose scaled value clips, derived from the EXACT
/// scalar predicate (clipsWhenScaled is monotone in the channel value for
/// k >= 0), or 256 if no code clips.  SIMD clip counting reduces to a byte
/// comparison against this threshold; sharing the derivation keeps every
/// variant bit-identical to the per-pixel double predicate.
inline int clipThreshold(double k) {
  // Monotone predicate: binary search would work, but 256 probes of a
  // double multiply cost nothing next to the pixel loop they replace.
  for (int c = 0; c <= 255; ++c) {
    if (static_cast<double>(c) * k > 255.0) return c;
  }
  return 256;
}

/// Exact EMD numerator via 128-bit products -- the reference for any
/// operand size.  Each |cdfA*totalB - cdfB*totalA| is at most
/// totalA*totalB, so the 256-term sum stays within Uint128 whenever
/// totalA*totalB <= 2^120 -- totals up to 2^60 samples each, far beyond
/// any frame or scene mass this system produces.
inline Uint128 emdNumeratorExact(const std::uint64_t* a, std::uint64_t totalA,
                                 const std::uint64_t* b,
                                 std::uint64_t totalB) {
  std::uint64_t cdfA = 0;
  std::uint64_t cdfB = 0;
  Uint128 acc = 0;
  for (int v = 0; v < 256; ++v) {
    cdfA += a[v];
    cdfB += b[v];
    const Uint128 pa = static_cast<Uint128>(cdfA) * totalB;
    const Uint128 pb = static_cast<Uint128>(cdfB) * totalA;
    acc += pa >= pb ? pa - pb : pb - pa;
  }
  return acc;
}

/// Largest total for which the 64-bit EMD fast path is overflow-free:
/// per-bin |cdfA*totalB - cdfB*totalA| <= totalA*totalB <= 2^54, and the
/// 256-term sum <= 255 * 2^54 < 2^62.
inline constexpr std::uint64_t kEmdFastMaxTotal = 1ull << 27;

inline int tailBudgetLevelRange(const std::uint64_t* counts,
                                std::uint64_t budget) {
  std::uint64_t above = 0;
  for (int v = 255; v >= 1; --v) {
    above += counts[v];
    if (above > budget) return v;
  }
  return 0;
}

inline int lowPointRange(const std::uint64_t* counts, std::uint64_t budget) {
  std::uint64_t seen = 0;
  for (int v = 0; v < 256; ++v) {
    seen += counts[v];
    if (seen > budget) return v;
  }
  return 255;
}

inline int highPointRange(const std::uint64_t* counts, std::uint64_t budget) {
  std::uint64_t seen = 0;
  for (int v = 255; v >= 0; --v) {
    seen += counts[v];
    if (seen > budget) return v;
  }
  return 0;
}

inline void histAccumulateRange(std::uint64_t* dst, const std::uint64_t* src) {
  for (int v = 0; v < 256; ++v) dst[v] += src[v];
}

}  // namespace anno::media::kernels::detail
