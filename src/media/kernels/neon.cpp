// NEON kernel variants for aarch64.  Advanced SIMD is mandatory on
// aarch64, so this table is always available there and kernels.cpp selects
// it by default.
//
// The double-precision kernels vectorize two pixels per 128-bit vector
// (float64x2) with the exact scalar IEEE op sequence per lane -- vmulq_f64
// and vaddq_f64 only, no vfmaq -- mirroring the SSE2 variant.  Integer
// kernels are exact by construction.  This file deliberately stays
// conservative: it is compiled on hardware the maintainers cannot always
// bench, so it favours obviously-correct lane mappings over aggressive
// unrolling.
#if defined(__aarch64__)

#include <arm_neon.h>

#include "media/kernels/kernels.h"
#include "media/kernels/kernels_internal.h"

namespace anno::media::kernels {
namespace {

void profileRgbNeon(const Rgb8* px, std::size_t n, FrameProfile& out) {
  out = FrameProfile{};
  int minAcc = 255;
  int maxAcc = 0;
  const float64x2_t cR = vdupq_n_f64(kLumaR);
  const float64x2_t cG = vdupq_n_f64(kLumaG);
  const float64x2_t cB = vdupq_n_f64(kLumaB);
  const float64x2_t half = vdupq_n_f64(0.5);
  const float64x2_t lim = vdupq_n_f64(255.0);
  std::uint32_t h0[256] = {};
  std::uint32_t h1[256] = {};
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const Rgb8 p0 = px[i];
    const Rgb8 p1 = px[i + 1];
    const float64x2_t rd = {static_cast<double>(p0.r),
                            static_cast<double>(p1.r)};
    const float64x2_t gd = {static_cast<double>(p0.g),
                            static_cast<double>(p1.g)};
    const float64x2_t bd = {static_cast<double>(p0.b),
                            static_cast<double>(p1.b)};
    const float64x2_t y = vaddq_f64(
        vaddq_f64(vmulq_f64(rd, cR), vmulq_f64(gd, cG)), vmulq_f64(bd, cB));
    float64x2_t t = vaddq_f64(y, half);
    // luma8 compares (y + 0.5) >= 255 before truncating.
    const uint64x2_t ge = vcgeq_f64(t, lim);
    t = vbslq_f64(ge, lim, t);
    const int64x2_t yi = vcvtq_s64_f64(t);  // toward zero, like the cast
    const int y0 = static_cast<int>(vgetq_lane_s64(yi, 0));
    const int y1 = static_cast<int>(vgetq_lane_s64(yi, 1));
    ++h0[y0];
    ++h1[y1];
    out.lumaSum += static_cast<std::uint64_t>(y0 + y1);
    minAcc = std::min(minAcc, std::min(y0, y1));
    maxAcc = std::max(maxAcc, std::max(y0, y1));
  }
  if (i != 0) {
    for (int v = 0; v < 256; ++v) {
      out.hist[v] = static_cast<std::uint64_t>(h0[v]) + h1[v];
    }
  }
  detail::profileRgbRange(px + i, n - i, out, minAcc, maxAcc);
  detail::finishProfile(out, n, minAcc, maxAcc);
}

void profileGrayNeon(const std::uint8_t* px, std::size_t n,
                     FrameProfile& out) {
  out = FrameProfile{};
  int minAcc = 255;
  int maxAcc = 0;
  std::uint32_t h[4][256] = {};
  std::uint64_t sum = 0;
  uint8x16_t minV = vdupq_n_u8(0xFF);
  uint8x16_t maxV = vdupq_n_u8(0);
  std::size_t i = 0;
  alignas(16) std::uint8_t buf[16];
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t v = vld1q_u8(px + i);
    sum += vaddlvq_u8(v);
    minV = vminq_u8(minV, v);
    maxV = vmaxq_u8(maxV, v);
    vst1q_u8(buf, v);
    for (int j = 0; j < 16; ++j) ++h[j & 3][buf[j]];
  }
  if (i != 0) {
    out.lumaSum = sum;
    minAcc = vminvq_u8(minV);
    maxAcc = vmaxvq_u8(maxV);
    for (int v = 0; v < 256; ++v) {
      out.hist[v] = static_cast<std::uint64_t>(h[0][v]) + h[1][v] + h[2][v] +
                    h[3][v];
    }
  }
  detail::profileGrayRange(px + i, n - i, out, minAcc, maxAcc);
  detail::finishProfile(out, n, minAcc, maxAcc);
}

void maxChannelHistogramNeon(const Rgb8* px, std::size_t n,
                             std::uint64_t* hist) {
  // vld3q_u8 deinterleaves 16 packed pixels into R/G/B planes; one
  // max-chain yields 16 per-pixel channel maxima.  Banks fold by ADDING
  // into the caller's histogram (the scalar kernel accumulates).
  std::uint32_t h[4][256] = {};
  const std::uint8_t* bytes = reinterpret_cast<const std::uint8_t*>(px);
  std::size_t i = 0;
  alignas(16) std::uint8_t buf[16];
  for (; i + 16 <= n; i += 16) {
    const uint8x16x3_t p = vld3q_u8(bytes + 3 * i);
    const uint8x16_t m =
        vmaxq_u8(vmaxq_u8(p.val[0], p.val[1]), p.val[2]);
    vst1q_u8(buf, m);
    for (int j = 0; j < 16; ++j) ++h[j & 3][buf[j]];
  }
  if (i != 0) {
    for (int v = 0; v < 256; ++v) {
      hist[v] += static_cast<std::uint64_t>(h[0][v]) + h[1][v] + h[2][v] +
                 h[3][v];
    }
  }
  detail::maxChannelRange(px + i, n - i, hist);
}

void lumaPlaneNeon(const Rgb8* px, std::size_t n, std::uint8_t* out) {
  const float64x2_t cR = vdupq_n_f64(kLumaR);
  const float64x2_t cG = vdupq_n_f64(kLumaG);
  const float64x2_t cB = vdupq_n_f64(kLumaB);
  const float64x2_t half = vdupq_n_f64(0.5);
  const float64x2_t lim = vdupq_n_f64(255.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const Rgb8 p0 = px[i];
    const Rgb8 p1 = px[i + 1];
    const float64x2_t rd = {static_cast<double>(p0.r),
                            static_cast<double>(p1.r)};
    const float64x2_t gd = {static_cast<double>(p0.g),
                            static_cast<double>(p1.g)};
    const float64x2_t bd = {static_cast<double>(p0.b),
                            static_cast<double>(p1.b)};
    const float64x2_t y = vaddq_f64(
        vaddq_f64(vmulq_f64(rd, cR), vmulq_f64(gd, cG)), vmulq_f64(bd, cB));
    float64x2_t t = vaddq_f64(y, half);
    const uint64x2_t ge = vcgeq_f64(t, lim);
    t = vbslq_f64(ge, lim, t);
    const int64x2_t yi = vcvtq_s64_f64(t);
    out[i] = static_cast<std::uint8_t>(vgetq_lane_s64(yi, 0));
    out[i + 1] = static_cast<std::uint8_t>(vgetq_lane_s64(yi, 1));
  }
  detail::lumaPlaneRange(px + i, n - i, out + i);
}

void histAccumulateNeon(std::uint64_t* dst, const std::uint64_t* src) {
  for (int v = 0; v < 256; v += 2) {
    vst1q_u64(dst + v, vaddq_u64(vld1q_u64(dst + v), vld1q_u64(src + v)));
  }
}

Uint128 emdNumeratorNeon(const std::uint64_t* a, std::uint64_t totalA,
                         const std::uint64_t* b, std::uint64_t totalB) {
  if (totalA > detail::kEmdFastMaxTotal || totalB > detail::kEmdFastMaxTotal) {
    return detail::emdNumeratorExact(a, totalA, b, totalB);
  }
  // Exact in 64 bits for totals <= 2^27 (see kEmdFastMaxTotal).
  std::uint64_t cdfA = 0;
  std::uint64_t cdfB = 0;
  std::uint64_t acc = 0;
  for (int v = 0; v < 256; ++v) {
    cdfA += a[v];
    cdfB += b[v];
    const std::int64_t d = static_cast<std::int64_t>(cdfA * totalB) -
                           static_cast<std::int64_t>(cdfB * totalA);
    acc += static_cast<std::uint64_t>(d < 0 ? -d : d);
  }
  return static_cast<Uint128>(acc);
}

void scalePixelsNeon(const Rgb8* src, std::size_t n, double k, Rgb8* dst) {
  if (k < 0.0) {
    detail::scaleRange(src, n, k, dst);
    return;
  }
  const float64x2_t kv = vdupq_n_f64(k);
  const float64x2_t half = vdupq_n_f64(0.5);
  const float64x2_t lim = vdupq_n_f64(255.0);
  const std::uint8_t* in = reinterpret_cast<const std::uint8_t*>(src);
  std::uint8_t* outp = reinterpret_cast<std::uint8_t*>(dst);
  const std::size_t channels = n * 3;
  std::size_t c = 0;
  for (; c + 2 <= channels; c += 2) {
    const float64x2_t v = {static_cast<double>(in[c]),
                           static_cast<double>(in[c + 1])};
    // clamp8(v*k): the high clamp compares the PRODUCT against 255, before
    // the + 0.5; v*k >= 0 so the low clamp cannot fire.
    const float64x2_t y = vmulq_f64(v, kv);
    float64x2_t t = vaddq_f64(y, half);
    const uint64x2_t ge = vcgeq_f64(y, lim);
    t = vbslq_f64(ge, lim, t);
    const int64x2_t yi = vcvtq_s64_f64(t);
    outp[c] = static_cast<std::uint8_t>(vgetq_lane_s64(yi, 0));
    outp[c + 1] = static_cast<std::uint8_t>(vgetq_lane_s64(yi, 1));
  }
  if (c < channels) {
    outp[c] = clamp8(static_cast<double>(in[c]) * k);
  }
}

std::size_t countClippedNeon(const Rgb8* px, std::size_t n, double k) {
  if (k < 0.0) return detail::countClippedRange(px, n, k);
  const int threshold = detail::clipThreshold(k);
  if (threshold > 255) return 0;
  const uint8x16_t tv = vdupq_n_u8(static_cast<std::uint8_t>(threshold));
  const std::uint8_t* bytes = reinterpret_cast<const std::uint8_t*>(px);
  std::size_t clipped = 0;
  std::size_t i = 0;
  // 16 pixels = 48 bytes: deinterleave with vld3q so each register holds
  // one channel, take the per-pixel channel max, compare, count 0xFF hits.
  for (; i + 16 <= n; i += 16) {
    const uint8x16x3_t v = vld3q_u8(bytes + 3 * i);
    const uint8x16_t mx = vmaxq_u8(vmaxq_u8(v.val[0], v.val[1]), v.val[2]);
    const uint8x16_t ge = vcgeq_u8(mx, tv);
    clipped += vaddlvq_u8(vshrq_n_u8(ge, 7));
  }
  return clipped + detail::countClippedRange(px + i, n - i, k);
}

int tailBudgetLevelNeon(const std::uint64_t* counts, std::uint64_t budget) {
  return detail::tailBudgetLevelRange(counts, budget);
}

int lowPointNeon(const std::uint64_t* counts, std::uint64_t budget) {
  return detail::lowPointRange(counts, budget);
}

int highPointNeon(const std::uint64_t* counts, std::uint64_t budget) {
  return detail::highPointRange(counts, budget);
}

}  // namespace

const KernelTable& neonTable() noexcept {
  static constexpr KernelTable kTable{
      Level::kNeon,        profileRgbNeon,    profileGrayNeon,
      maxChannelHistogramNeon, lumaPlaneNeon, histAccumulateNeon,
      emdNumeratorNeon,    scalePixelsNeon,   countClippedNeon,
      tailBudgetLevelNeon, lowPointNeon,      highPointNeon,
  };
  return kTable;
}

}  // namespace anno::media::kernels

#endif  // aarch64
