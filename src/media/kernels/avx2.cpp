// AVX2 kernel variants -- the fast path on every x86-64 CPU from the last
// decade.  Compiled with -mavx2 -mpopcnt (see src/media/CMakeLists.txt);
// kernels.cpp only installs this table after __builtin_cpu_supports
// confirms both features at runtime.
//
// Bit-identical contract: four pixels per vector, each lane running the
// scalar double sequence ((cR*r + cG*g) + cB*b) with explicit mul/add
// intrinsics (no FMA contraction possible), truncating conversions
// matching the scalar casts, and exact integer reductions everywhere else.
// See kernels.h and DESIGN.md sec. 12.
#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include "media/kernels/kernels.h"
#include "media/kernels/kernels_internal.h"

namespace anno::media::kernels {
namespace {

/// Deinterleaves 4 packed RGB pixels (12 bytes of a 16-byte load) into
/// three 4-lane double vectors.
struct Rgb4d {
  __m256d r, g, b;
};

inline Rgb4d loadRgb4(const std::uint8_t* bytes) {
  const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(bytes));
  const __m128i rSel = _mm_setr_epi8(0, -1, -1, -1, 3, -1, -1, -1,  //
                                     6, -1, -1, -1, 9, -1, -1, -1);
  const __m128i gSel = _mm_setr_epi8(1, -1, -1, -1, 4, -1, -1, -1,  //
                                     7, -1, -1, -1, 10, -1, -1, -1);
  const __m128i bSel = _mm_setr_epi8(2, -1, -1, -1, 5, -1, -1, -1,  //
                                     8, -1, -1, -1, 11, -1, -1, -1);
  return Rgb4d{
      _mm256_cvtepi32_pd(_mm_shuffle_epi8(v, rSel)),
      _mm256_cvtepi32_pd(_mm_shuffle_epi8(v, gSel)),
      _mm256_cvtepi32_pd(_mm_shuffle_epi8(v, bSel)),
  };
}

/// luma8 of 4 pixels: the scalar op sequence per lane, result as 4 x i32.
inline __m128i luma4(const Rgb4d& p) {
  const __m256d y = _mm256_add_pd(
      _mm256_add_pd(_mm256_mul_pd(p.r, _mm256_set1_pd(kLumaR)),
                    _mm256_mul_pd(p.g, _mm256_set1_pd(kLumaG))),
      _mm256_mul_pd(p.b, _mm256_set1_pd(kLumaB)));
  __m256d t = _mm256_add_pd(y, _mm256_set1_pd(0.5));
  const __m256d lim = _mm256_set1_pd(255.0);
  // luma8 compares (y + 0.5) >= 255 before truncating.
  const __m256d ge = _mm256_cmp_pd(t, lim, _CMP_GE_OQ);
  t = _mm256_blendv_pd(t, lim, ge);
  return _mm256_cvttpd_epi32(t);
}

void profileRgbAvx2(const Rgb8* px, std::size_t n, FrameProfile& out) {
  out = FrameProfile{};
  int minAcc = 255;
  int maxAcc = 0;
  std::uint32_t h[4][256] = {};
  __m256i sumV = _mm256_setzero_si256();
  __m256i minB = _mm256_set1_epi8(static_cast<char>(0xFF));
  __m256i maxB = _mm256_setzero_si256();
  const std::uint8_t* bytes = reinterpret_cast<const std::uint8_t*>(px);
  const __m128i pack = _mm_setr_epi8(0, 4, 8, 12, -1, -1, -1, -1,  //
                                     -1, -1, -1, -1, -1, -1, -1, -1);
  std::size_t i = 0;
  alignas(32) std::uint8_t tile[32];
  // 32 pixels per tile: the FP lanes pack straight to luma BYTES, so the
  // statistics run on one byte vector (SAD for the sum, min/max_epu8)
  // instead of per-lane extracts -- the same shape as profileGray.  The
  // last quad starts at pixel i+28 and its 16-byte load needs 6 spare
  // pixels (see loadRgb4), hence the i+34 guard.
  for (; i + 34 <= n; i += 32) {
    for (int q = 0; q < 8; ++q) {
      const __m128i yi = luma4(loadRgb4(bytes + 3 * (i + 4 * q)));
      const std::uint32_t packed = static_cast<std::uint32_t>(
          _mm_cvtsi128_si32(_mm_shuffle_epi8(yi, pack)));
      __builtin_memcpy(tile + 4 * q, &packed, 4);
    }
    const __m256i v =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(tile));
    sumV = _mm256_add_epi64(sumV, _mm256_sad_epu8(v, _mm256_setzero_si256()));
    minB = _mm256_min_epu8(minB, v);
    maxB = _mm256_max_epu8(maxB, v);
    for (int j = 0; j < 32; j += 4) {
      ++h[0][tile[j]];
      ++h[1][tile[j + 1]];
      ++h[2][tile[j + 2]];
      ++h[3][tile[j + 3]];
    }
  }
  if (i != 0) {
    alignas(32) std::uint64_t sums[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(sums), sumV);
    out.lumaSum = sums[0] + sums[1] + sums[2] + sums[3];
    _mm256_store_si256(reinterpret_cast<__m256i*>(tile), minB);
    for (int j = 0; j < 32; ++j) minAcc = std::min<int>(minAcc, tile[j]);
    _mm256_store_si256(reinterpret_cast<__m256i*>(tile), maxB);
    for (int j = 0; j < 32; ++j) maxAcc = std::max<int>(maxAcc, tile[j]);
    for (int v = 0; v < 256; ++v) {
      out.hist[v] = static_cast<std::uint64_t>(h[0][v]) + h[1][v] + h[2][v] +
                    h[3][v];
    }
  }
  detail::profileRgbRange(px + i, n - i, out, minAcc, maxAcc);
  detail::finishProfile(out, n, minAcc, maxAcc);
}

void profileGrayAvx2(const std::uint8_t* px, std::size_t n,
                     FrameProfile& out) {
  out = FrameProfile{};
  int minAcc = 255;
  int maxAcc = 0;
  std::uint32_t h[4][256] = {};
  __m256i sumV = _mm256_setzero_si256();
  __m256i minV = _mm256_set1_epi8(static_cast<char>(0xFF));
  __m256i maxV = _mm256_setzero_si256();
  std::size_t i = 0;
  alignas(32) std::uint8_t buf[32];
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(px + i));
    sumV = _mm256_add_epi64(sumV, _mm256_sad_epu8(v, _mm256_setzero_si256()));
    minV = _mm256_min_epu8(minV, v);
    maxV = _mm256_max_epu8(maxV, v);
    _mm256_store_si256(reinterpret_cast<__m256i*>(buf), v);
    for (int j = 0; j < 32; ++j) ++h[j & 3][buf[j]];
  }
  if (i != 0) {
    alignas(32) std::uint64_t sums[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(sums), sumV);
    out.lumaSum = sums[0] + sums[1] + sums[2] + sums[3];
    _mm256_store_si256(reinterpret_cast<__m256i*>(buf), minV);
    for (int j = 0; j < 32; ++j) minAcc = std::min<int>(minAcc, buf[j]);
    _mm256_store_si256(reinterpret_cast<__m256i*>(buf), maxV);
    for (int j = 0; j < 32; ++j) maxAcc = std::max<int>(maxAcc, buf[j]);
    for (int v = 0; v < 256; ++v) {
      out.hist[v] = static_cast<std::uint64_t>(h[0][v]) + h[1][v] + h[2][v] +
                    h[3][v];
    }
  }
  detail::profileGrayRange(px + i, n - i, out, minAcc, maxAcc);
  detail::finishProfile(out, n, minAcc, maxAcc);
}

void maxChannelHistogramAvx2(const Rgb8* px, std::size_t n,
                             std::uint64_t* hist) {
  // Two 16-byte loads of 5 packed pixels each per iteration.  Shift-and-max
  // puts max(r,g,b) at bytes 0,3,6,9,12; pshufb compacts those five into
  // the low qword so the banked scatter reads consecutive bytes.  Banks
  // fold by ADDING into the caller's histogram -- the scalar kernel
  // accumulates, so must we.
  std::uint32_t h[4][256] = {};
  const std::uint8_t* bytes = reinterpret_cast<const std::uint8_t*>(px);
  const __m128i pack = _mm_setr_epi8(0, 3, 6, 9, 12, -1, -1, -1,  //
                                     -1, -1, -1, -1, -1, -1, -1, -1);
  std::size_t i = 0;
  alignas(16) std::uint8_t buf[16];
  // Second load reads bytes [3(i+5), 3(i+5)+16); in bounds while i+11 <= n.
  for (; i + 11 <= n; i += 10) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(bytes + 3 * i));
    const __m128i vb = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(bytes + 3 * (i + 5)));
    const __m128i ma = _mm_max_epu8(
        _mm_max_epu8(va, _mm_srli_si128(va, 1)), _mm_srli_si128(va, 2));
    const __m128i mb = _mm_max_epu8(
        _mm_max_epu8(vb, _mm_srli_si128(vb, 1)), _mm_srli_si128(vb, 2));
    _mm_storel_epi64(reinterpret_cast<__m128i*>(buf),
                     _mm_shuffle_epi8(ma, pack));
    _mm_storel_epi64(reinterpret_cast<__m128i*>(buf + 8),
                     _mm_shuffle_epi8(mb, pack));
    ++h[0][buf[0]];
    ++h[1][buf[1]];
    ++h[2][buf[2]];
    ++h[3][buf[3]];
    ++h[0][buf[4]];
    ++h[1][buf[8]];
    ++h[2][buf[9]];
    ++h[3][buf[10]];
    ++h[0][buf[11]];
    ++h[1][buf[12]];
  }
  if (i != 0) {
    for (int v = 0; v < 256; ++v) {
      hist[v] += static_cast<std::uint64_t>(h[0][v]) + h[1][v] + h[2][v] +
                 h[3][v];
    }
  }
  detail::maxChannelRange(px + i, n - i, hist);
}

void lumaPlaneAvx2(const Rgb8* px, std::size_t n, std::uint8_t* out) {
  const std::uint8_t* bytes = reinterpret_cast<const std::uint8_t*>(px);
  const __m128i pack = _mm_setr_epi8(0, 4, 8, 12, -1, -1, -1, -1,  //
                                     -1, -1, -1, -1, -1, -1, -1, -1);
  std::size_t i = 0;
  for (; i + 6 <= n; i += 4) {
    const __m128i yi = luma4(loadRgb4(bytes + 3 * i));
    const std::uint32_t packed = static_cast<std::uint32_t>(
        _mm_cvtsi128_si32(_mm_shuffle_epi8(yi, pack)));
    __builtin_memcpy(out + i, &packed, 4);
  }
  detail::lumaPlaneRange(px + i, n - i, out + i);
}

void histAccumulateAvx2(std::uint64_t* dst, const std::uint64_t* src) {
  for (int v = 0; v < 256; v += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + v));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + v));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + v),
                        _mm256_add_epi64(d, s));
  }
}

Uint128 emdNumeratorAvx2(const std::uint64_t* a, std::uint64_t totalA,
                         const std::uint64_t* b, std::uint64_t totalB) {
  if (totalA > detail::kEmdFastMaxTotal || totalB > detail::kEmdFastMaxTotal) {
    return detail::emdNumeratorExact(a, totalA, b, totalB);
  }
  if (totalA == totalB) {
    // Equal totals (same-resolution frames -- the scene detector's case):
    // the numerator factors as t * sum_v |cdfA_v - cdfB_v|, and the running
    // cdf difference fits i32 (|diff| <= t <= 2^27), so the prefix sum runs
    // 8 bins wide with the multiply hoisted out of the loop entirely.
    const __m256i zero = _mm256_setzero_si256();
    const __m256i lane7 = _mm256_set1_epi32(7);
    const __m256i order =
        _mm256_setr_epi32(0, 1, 4, 5, 2, 3, 6, 7);  // undo shuffle_ps halves
    __m256i carry = zero;  // running cdf diff in every lane
    __m256i acc64 = zero;
    for (int v = 0; v < 256; v += 64) {
      __m256i acc32 = zero;  // 8 iterations x 2^27 < 2^31: no overflow
      for (int u = v; u < v + 64; u += 8) {
        const __m256i d0 = _mm256_sub_epi64(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + u)),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + u)));
        const __m256i d1 = _mm256_sub_epi64(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + u + 4)),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + u + 4)));
        // Low dwords hold the (two's-complement) per-bin count diffs;
        // compress them into one 8 x i32 vector in bin order.
        __m256i p = _mm256_permutevar8x32_epi32(
            _mm256_castps_si256(_mm256_shuffle_ps(
                _mm256_castsi256_ps(d0), _mm256_castsi256_ps(d1),
                _MM_SHUFFLE(2, 0, 2, 0))),
            order);
        // Inclusive 8-lane prefix sum.
        p = _mm256_add_epi32(p, _mm256_slli_si256(p, 4));
        p = _mm256_add_epi32(p, _mm256_slli_si256(p, 8));
        p = _mm256_add_epi32(
            p, _mm256_shuffle_epi32(_mm256_permute2x128_si256(p, p, 0x08),
                                    0xFF));
        const __m256i cdfDiff = _mm256_add_epi32(p, carry);
        carry =
            _mm256_add_epi32(carry, _mm256_permutevar8x32_epi32(p, lane7));
        acc32 = _mm256_add_epi32(acc32, _mm256_abs_epi32(cdfDiff));
      }
      acc64 = _mm256_add_epi64(acc64, _mm256_unpacklo_epi32(acc32, zero));
      acc64 = _mm256_add_epi64(acc64, _mm256_unpackhi_epi32(acc32, zero));
    }
    alignas(32) std::uint64_t parts[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(parts), acc64);
    // sumAbs <= 256 * 2^27 and t <= 2^27, so the product stays under 2^62.
    return static_cast<Uint128>(
        totalA * (parts[0] + parts[1] + parts[2] + parts[3]));
  }
  // Totals <= 2^27: counts and CDFs fit the low 32 bits of their 64-bit
  // lanes (high halves are zero), so mul_epu32 on the raw count vectors is
  // exact; products stay under 2^54 and the 256-term sum under 2^62.  One
  // fused pass: per-bin diffs e_v = a_v*tB - b_v*tA are prefix-summed
  // in-register (giving d_v = cdfA_v*tB - cdfB_v*tA) and |d_v| accumulated,
  // 8 bins per iteration -- no prefix arrays, and the carry chain is two
  // 64-bit adds per iteration.  Integer throughout, so any evaluation order
  // gives the identical numerator.
  const __m256i tb = _mm256_set1_epi64x(static_cast<long long>(totalB));
  const __m256i ta = _mm256_set1_epi64x(static_cast<long long>(totalA));
  const __m256i zero = _mm256_setzero_si256();
  const auto prefix4 = [zero](__m256i e) {
    // Inclusive prefix sum over the four 64-bit lanes.
    __m256i s = _mm256_blend_epi32(_mm256_permute4x64_epi64(e, 0x90), zero,
                                   0x03);  // [0, e0, e1, e2]
    e = _mm256_add_epi64(e, s);
    s = _mm256_permute2x128_si256(e, e, 0x08);  // [0, 0, p0, p1]
    return _mm256_add_epi64(e, s);
  };
  __m256i carry = zero;  // running d broadcast to every lane
  __m256i acc0 = zero;
  __m256i acc1 = zero;
  for (int v = 0; v < 256; v += 8) {
    const __m256i a0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + v));
    const __m256i b0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + v));
    const __m256i a1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + v + 4));
    const __m256i b1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + v + 4));
    const __m256i p0 = prefix4(_mm256_sub_epi64(_mm256_mul_epu32(a0, tb),
                                                _mm256_mul_epu32(b0, ta)));
    const __m256i p1 = prefix4(_mm256_sub_epi64(_mm256_mul_epu32(a1, tb),
                                                _mm256_mul_epu32(b1, ta)));
    const __m256i d0 = _mm256_add_epi64(p0, carry);
    const __m256i carry1 =
        _mm256_add_epi64(carry, _mm256_permute4x64_epi64(p0, 0xFF));
    const __m256i d1 = _mm256_add_epi64(p1, carry1);
    carry = _mm256_add_epi64(carry1, _mm256_permute4x64_epi64(p1, 0xFF));
    const __m256i sign0 = _mm256_cmpgt_epi64(zero, d0);
    const __m256i sign1 = _mm256_cmpgt_epi64(zero, d1);
    acc0 = _mm256_add_epi64(
        acc0, _mm256_sub_epi64(_mm256_xor_si256(d0, sign0), sign0));
    acc1 = _mm256_add_epi64(
        acc1, _mm256_sub_epi64(_mm256_xor_si256(d1, sign1), sign1));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes),
                     _mm256_add_epi64(acc0, acc1));
  return static_cast<Uint128>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
}

void scalePixelsAvx2(const Rgb8* src, std::size_t n, double k, Rgb8* dst) {
  if (k < 0.0) {
    detail::scaleRange(src, n, k, dst);
    return;
  }
  const __m256d kv = _mm256_set1_pd(k);
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d lim = _mm256_set1_pd(255.0);
  const __m128i pack = _mm_setr_epi8(0, 4, 8, 12, -1, -1, -1, -1,  //
                                     -1, -1, -1, -1, -1, -1, -1, -1);
  const std::uint8_t* in = reinterpret_cast<const std::uint8_t*>(src);
  std::uint8_t* outp = reinterpret_cast<std::uint8_t*>(dst);
  const std::size_t channels = n * 3;
  std::size_t c = 0;
  for (; c + 4 <= channels; c += 4) {
    std::uint32_t quad;
    __builtin_memcpy(&quad, in + c, 4);
    const __m256d v = _mm256_cvtepi32_pd(
        _mm_cvtepu8_epi32(_mm_cvtsi32_si128(static_cast<int>(quad))));
    // clamp8(v*k): compare the PRODUCT against 255 (clamp8's order), then
    // truncate product + 0.5; v*k >= 0 so the low clamp cannot fire.
    const __m256d y = _mm256_mul_pd(v, kv);
    __m256d t = _mm256_add_pd(y, half);
    const __m256d ge = _mm256_cmp_pd(y, lim, _CMP_GE_OQ);
    t = _mm256_blendv_pd(t, lim, ge);
    const __m128i yi = _mm256_cvttpd_epi32(t);
    const std::uint32_t packed = static_cast<std::uint32_t>(
        _mm_cvtsi128_si32(_mm_shuffle_epi8(yi, pack)));
    __builtin_memcpy(outp + c, &packed, 4);
  }
  for (; c < channels; ++c) {
    outp[c] = clamp8(static_cast<double>(in[c]) * k);
  }
}

std::size_t countClippedAvx2(const Rgb8* px, std::size_t n, double k) {
  if (k < 0.0) return detail::countClippedRange(px, n, k);
  const int threshold = detail::clipThreshold(k);
  if (threshold > 255) return 0;
  const __m256i tv = _mm256_set1_epi8(static_cast<char>(threshold));
  const std::uint8_t* bytes = reinterpret_cast<const std::uint8_t*>(px);
  std::size_t clipped = 0;
  std::size_t i = 0;
  // 32 pixels = 96 bytes per iteration; movemask bit j maps to byte j of
  // the load, i.e. pixel j/3 channel j%3.
  for (; i + 32 <= n; i += 32) {
    const std::uint8_t* blk = bytes + 3 * i;
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    for (int part = 0; part < 3; ++part) {
      const __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(blk + 32 * part));
      const __m256i ge = _mm256_cmpeq_epi8(_mm256_max_epu8(v, tv), v);
      const std::uint64_t m = static_cast<std::uint32_t>(
          _mm256_movemask_epi8(ge));
      if (part == 0) {
        lo |= m;
      } else if (part == 1) {
        lo |= m << 32;
      } else {
        hi |= m;
      }
    }
    // Fold the 96 channel bits into one bit per pixel (bit 3p of lo/hi
    // after OR-ing each group of three).
    const std::uint64_t loBits = lo | (lo >> 1) | (lo >> 2);
    const std::uint64_t hiBits = hi | (hi >> 1) | (hi >> 2);
    // Channel bit 64 = pixel 21 channel 1 etc.: handle the seam exactly by
    // recombining the straddled pixel (pixel 21 spans bits 63..64).
    // Simpler: pixels 0..20 live entirely in lo (bits 0..62), pixels
    // 22..31 entirely in hi (bits 2..31 of hi<<?), pixel 21 spans.
    clipped += static_cast<std::size_t>(
        __builtin_popcountll(loBits & 0x1249249249249249ull));  // pixels 0..20
    const bool seam = ((lo >> 63) | hi | (hi >> 1)) & 1ull;     // pixel 21
    clipped += static_cast<std::size_t>(seam);
    clipped += static_cast<std::size_t>(
        __builtin_popcountll(hiBits & (0x249249249249ull << 2)));  // 22..31
  }
  return clipped + detail::countClippedRange(px + i, n - i, k);
}

int tailBudgetLevelAvx2(const std::uint64_t* counts, std::uint64_t budget) {
  return detail::tailBudgetLevelRange(counts, budget);
}

int lowPointAvx2(const std::uint64_t* counts, std::uint64_t budget) {
  return detail::lowPointRange(counts, budget);
}

int highPointAvx2(const std::uint64_t* counts, std::uint64_t budget) {
  return detail::highPointRange(counts, budget);
}

}  // namespace

const KernelTable& avx2Table() noexcept {
  static constexpr KernelTable kTable{
      Level::kAvx2,        profileRgbAvx2,    profileGrayAvx2,
      maxChannelHistogramAvx2, lumaPlaneAvx2, histAccumulateAvx2,
      emdNumeratorAvx2,    scalePixelsAvx2,   countClippedAvx2,
      tailBudgetLevelAvx2, lowPointAvx2,      highPointAvx2,
  };
  return kTable;
}

}  // namespace anno::media::kernels

#endif  // x86-64
