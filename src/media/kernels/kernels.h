// Runtime-dispatched SIMD kernels for the per-pixel / per-frame hot paths.
//
// Every frame served by this repo funnels through a handful of tight loops:
// luma extraction, 256-bin histogram build, min/max/sum stats, the
// compensation transform C' = min(1, C*k), clipped-pixel counting, and the
// per-frame histogram earth-mover's distance of the EMD scene detector.
// This layer provides one scalar reference implementation per kernel plus
// SSE2/AVX2 (x86-64) and NEON (aarch64) variants behind a single dispatch
// table selected once at startup via CPUID.
//
// THE BIT-IDENTICAL CONTRACT (DESIGN.md sec. 12): every variant of every
// kernel produces output byte-identical to the scalar reference, on every
// input, by construction:
//
//   * Floating-point kernels (frame profile, pixel scale) vectorize ACROSS
//     pixels while keeping each pixel's IEEE-754 operation sequence exactly
//     the one the scalar code performs (same multiplies, same adds, same
//     order, no FMA contraction).  Lanes are pixels, so vectorization
//     cannot change any pixel's rounding.
//   * Integer kernels (histogram build/merge, EMD numerator, tail scans,
//     clipped counting) are exact, so accumulation order is irrelevant and
//     any lane decomposition gives the same result.
//   * The EMD kernel computes an exact integer numerator
//         sum_v | cdfA(v)*totalB - cdfB(v)*totalA |
//     and performs a SINGLE final floating divide by totalA*totalB, so
//     scalar and SIMD agree bit-for-bit (and the result is symmetric in its
//     arguments exactly, which the old incremental-double version was not).
//
// Dispatch is overridable for testing with the ANNO_SIMD environment
// variable (scalar|sse2|avx2|neon) or the ANNO_SIMD CMake cache knob; an
// unavailable or unknown request falls back to the best available level
// with a one-line stderr warning.  The engine golden suite runs once per
// available level (tests/engine) and tests/media/kernels_test.cpp
// property-tests every variant against the scalar reference.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "media/pixel.h"

namespace anno::media::kernels {

/// Exact 128-bit unsigned integer for the EMD numerator (GCC/Clang).
using Uint128 = unsigned __int128;

/// Dispatch levels, worst to best.  kSse2 and kAvx2 exist only on x86-64
/// builds, kNeon only on aarch64; kScalar always exists.
enum class Level : std::uint8_t { kScalar = 0, kSse2 = 1, kAvx2 = 2, kNeon = 3 };
inline constexpr std::size_t kLevelCount = 4;

[[nodiscard]] const char* levelName(Level level) noexcept;
[[nodiscard]] std::optional<Level> parseLevel(std::string_view name) noexcept;

/// Result of the fused per-frame profile pass: 256-bin luma histogram plus
/// min/max/sum of the 8-bit luma codes, all from ONE walk over the pixels.
/// For an empty span minLuma == maxLuma == 0 and everything else is zero.
struct FrameProfile {
  std::array<std::uint64_t, 256> hist{};
  std::uint64_t lumaSum = 0;  ///< exact integer sum of luma8 codes
  std::uint8_t minLuma = 0;
  std::uint8_t maxLuma = 0;
};

/// The dispatch table.  All function pointers are non-null in every
/// registered table.  Histogram arrays are 256 bins of uint64.
struct KernelTable {
  Level level = Level::kScalar;

  /// (1) Fused frame profile over interleaved RGB pixels: luma8 conversion
  /// + histogram + min/max/sum in one pass.
  void (*profileRgb)(const Rgb8* px, std::size_t n, FrameProfile& out);
  /// Fused frame profile over an 8-bit gray plane.
  void (*profileGray)(const std::uint8_t* px, std::size_t n,
                      FrameProfile& out);
  /// Max-channel histogram: hist[max(r,g,b)] per pixel (clip prediction).
  void (*maxChannelHistogram)(const Rgb8* px, std::size_t n,
                              std::uint64_t* hist);
  /// BT.601 luma plane extraction (out[i] = luma8(px[i])).
  void (*lumaPlane)(const Rgb8* px, std::size_t n, std::uint8_t* out);

  /// (2) Histogram accumulate: dst[v] += src[v] for all 256 bins.
  void (*histAccumulate)(std::uint64_t* dst, const std::uint64_t* src);

  /// (3) Exact EMD numerator: sum_v |cdfA(v)*totalB - cdfB(v)*totalA|.
  /// Mathematically exact for any operand (wide-integer fallback above the
  /// vector fast-path range), so all variants agree bit-for-bit.
  Uint128 (*emdNumerator)(const std::uint64_t* a, std::uint64_t totalA,
                          const std::uint64_t* b, std::uint64_t totalB);

  /// (4) Compensation transform: per-channel saturating scale
  /// dst[i] = media::scale(src[i], k).  k must be >= 0.
  void (*scalePixels)(const Rgb8* src, std::size_t n, double k, Rgb8* dst);
  /// Number of pixels with media::clipsWhenScaled(px[i], k).  k >= 0.
  std::size_t (*countClipped)(const Rgb8* px, std::size_t n, double k);

  /// (5) Tail scans over a 256-bin histogram.
  /// Smallest v in [1,255] with sum(counts[v..255]) > budget, else 0 --
  /// the clip-safe luminance scan of clipSafeLuma / safeLumaLevels /
  /// planForHistogram.
  int (*tailBudgetLevel)(const std::uint64_t* counts, std::uint64_t budget);
  /// First v from 0 upward with cumulative count > budget, else 255
  /// (Histogram::lowPoint body; caller handles the empty histogram).
  int (*lowPoint)(const std::uint64_t* counts, std::uint64_t budget);
  /// First v from 255 downward with cumulative count > budget, else 0.
  int (*highPoint)(const std::uint64_t* counts, std::uint64_t budget);
};

/// Smallest 8-bit channel code whose clamp-scale by k (k >= 0) clips, or
/// 256 if none does.  Derived by probing the EXACT scalar predicate
/// (monotone in the code for k >= 0), so it is shared ground truth for the
/// SIMD countClipped variants and for the O(256) histogram-based
/// clipped-fraction fast path (compensate::clippedFraction).
[[nodiscard]] int clipThreshold(double k) noexcept;

/// The active table.  Selected once on first use: ANNO_SIMD env var if set,
/// else the ANNO_SIMD CMake default if non-empty, else the best level the
/// CPU supports.  A relaxed pointer load thereafter.
[[nodiscard]] const KernelTable& active() noexcept;
[[nodiscard]] Level activeLevel() noexcept;

/// True if `level` is compiled in AND supported by this CPU.
[[nodiscard]] bool available(Level level) noexcept;
/// All available levels, ascending (kScalar always first).
[[nodiscard]] std::vector<Level> availableLevels();
/// Table for an explicit level, or nullptr if unavailable.  Used by the
/// differential tests and bench_simd_kernels; production code goes through
/// active().
[[nodiscard]] const KernelTable* tableFor(Level level) noexcept;

/// RAII dispatch override for tests: swaps the active table, restores on
/// destruction.  Not thread-safe against concurrent overrides; intended
/// for single-threaded test set-up (concurrent READERS of active() are
/// fine -- the pointer swap is atomic).
class ScopedLevel {
 public:
  explicit ScopedLevel(Level level);
  ~ScopedLevel();
  ScopedLevel(const ScopedLevel&) = delete;
  ScopedLevel& operator=(const ScopedLevel&) = delete;

 private:
  const KernelTable* previous_;
};

}  // namespace anno::media::kernels
