// Scalar reference kernels: the semantic definition every SIMD variant is
// property-tested against.  Clarity over speed -- the dispatcher never
// selects this level on x86-64 (SSE2 is baseline) unless forced with
// ANNO_SIMD=scalar.
#include "media/kernels/kernels.h"
#include "media/kernels/kernels_internal.h"

namespace anno::media::kernels {
namespace {

void profileRgbScalar(const Rgb8* px, std::size_t n, FrameProfile& out) {
  out = FrameProfile{};
  int minAcc = 255;
  int maxAcc = 0;
  detail::profileRgbRange(px, n, out, minAcc, maxAcc);
  detail::finishProfile(out, n, minAcc, maxAcc);
}

void profileGrayScalar(const std::uint8_t* px, std::size_t n,
                       FrameProfile& out) {
  out = FrameProfile{};
  int minAcc = 255;
  int maxAcc = 0;
  detail::profileGrayRange(px, n, out, minAcc, maxAcc);
  detail::finishProfile(out, n, minAcc, maxAcc);
}

void maxChannelHistogramScalar(const Rgb8* px, std::size_t n,
                               std::uint64_t* hist) {
  detail::maxChannelRange(px, n, hist);
}

void lumaPlaneScalar(const Rgb8* px, std::size_t n, std::uint8_t* out) {
  detail::lumaPlaneRange(px, n, out);
}

void histAccumulateScalar(std::uint64_t* dst, const std::uint64_t* src) {
  detail::histAccumulateRange(dst, src);
}

Uint128 emdNumeratorScalar(const std::uint64_t* a, std::uint64_t totalA,
                           const std::uint64_t* b, std::uint64_t totalB) {
  return detail::emdNumeratorExact(a, totalA, b, totalB);
}

void scalePixelsScalar(const Rgb8* src, std::size_t n, double k, Rgb8* dst) {
  detail::scaleRange(src, n, k, dst);
}

std::size_t countClippedScalar(const Rgb8* px, std::size_t n, double k) {
  return detail::countClippedRange(px, n, k);
}

int tailBudgetLevelScalar(const std::uint64_t* counts, std::uint64_t budget) {
  return detail::tailBudgetLevelRange(counts, budget);
}

int lowPointScalar(const std::uint64_t* counts, std::uint64_t budget) {
  return detail::lowPointRange(counts, budget);
}

int highPointScalar(const std::uint64_t* counts, std::uint64_t budget) {
  return detail::highPointRange(counts, budget);
}

}  // namespace

const KernelTable& scalarTable() noexcept {
  static constexpr KernelTable kTable{
      Level::kScalar,        profileRgbScalar,    profileGrayScalar,
      maxChannelHistogramScalar, lumaPlaneScalar, histAccumulateScalar,
      emdNumeratorScalar,    scalePixelsScalar,   countClippedScalar,
      tailBudgetLevelScalar, lowPointScalar,      highPointScalar,
  };
  return kTable;
}

}  // namespace anno::media::kernels
