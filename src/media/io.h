// Minimal image/file I/O: binary PPM/PGM (for eyeballing frames and camera
// snapshots) and CSV table writing (for regenerating the paper's figures in
// any plotting tool).
#pragma once

#include <string>
#include <vector>

#include "media/image.h"
#include "media/video.h"

namespace anno::media {

/// Writes a binary PPM (P6).  Throws std::runtime_error on I/O failure.
void writePpm(const Image& img, const std::string& path);

/// Writes a binary PGM (P5).
void writePgm(const GrayImage& img, const std::string& path);

/// Reads a binary PPM (P6) written by writePpm (8-bit maxval only).
[[nodiscard]] Image readPpm(const std::string& path);

/// Reads a binary PGM (P5) written by writePgm.
[[nodiscard]] GrayImage readPgm(const std::string& path);

/// Writes a clip as YUV4MPEG2 (4:4:4, 8-bit) -- playable/inspectable with
/// standard tools (mpv, ffplay, ffmpeg).  Throws on I/O failure.
void writeY4m(const VideoClip& clip, const std::string& path);

/// Reads a YUV4MPEG2 file written by writeY4m (C444, 8-bit only).
[[nodiscard]] VideoClip readY4m(const std::string& path);

/// Simple CSV writer: header row then data rows; values are rendered with
/// full precision.  Used by every bench to dump figure data.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void addRow(const std::vector<std::string>& row);
  void addRow(const std::vector<double>& row);

  /// Renders the full table.
  [[nodiscard]] std::string str() const;

  /// Writes the table to a file.  Throws std::runtime_error on failure.
  void save(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace anno::media
