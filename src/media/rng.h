// Deterministic pseudo-random number generation for synthetic workloads.
//
// All synthetic content in this reproduction (clip generation, sensor noise,
// DAQ noise) must be bit-reproducible across runs and platforms so that the
// benchmark tables in EXPERIMENTS.md are stable.  std::mt19937 would work but
// its distributions are not guaranteed identical across standard libraries,
// so we implement SplitMix64 (Steele et al., "Fast Splittable Pseudorandom
// Number Generators", OOPSLA 2014) plus the small set of distributions we
// need, all with fully specified arithmetic.
#pragma once

#include <cstdint>
#include <cmath>

namespace anno::media {

/// SplitMix64: tiny, fast, well-distributed 64-bit PRNG with fully
/// deterministic cross-platform output.  Passes BigCrush when used as a
/// 64-bit generator; more than adequate for workload synthesis.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next raw 64-bit value.
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    // 53 random mantissa bits -> exact dyadic rational in [0,1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).  n must be > 0.
  constexpr std::uint64_t below(std::uint64_t n) noexcept {
    // Multiplicative range reduction (Lemire); bias is < 2^-64 per draw,
    // irrelevant for workload synthesis.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * n) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Standard normal deviate via Box-Muller (polar rejection avoided to
  /// keep the draw count per call fixed and the stream reproducible).
  double gaussian() noexcept {
    // Box-Muller, basic form: consumes exactly two uniforms per call.
    const double u1 = 1.0 - uniform();  // (0,1], avoids log(0)
    const double u2 = uniform();
    constexpr double kTwoPi = 6.283185307179586476925286766559;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
  }

  /// Normal deviate with given mean and standard deviation.
  double gaussian(double mean, double stddev) noexcept {
    return mean + stddev * gaussian();
  }

  /// Derive an independent child generator (splittable property).
  constexpr SplitMix64 split() noexcept { return SplitMix64(next()); }

 private:
  std::uint64_t state_;
};

}  // namespace anno::media
