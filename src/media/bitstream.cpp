#include "media/bitstream.h"

namespace anno::media {

std::vector<std::uint8_t> rleEncode(std::span<const std::uint8_t> data) {
  ByteWriter w;
  std::size_t i = 0;
  while (i < data.size()) {
    const std::uint8_t v = data[i];
    std::size_t run = 1;
    while (i + run < data.size() && data[i + run] == v) ++run;
    w.varint(run);
    w.u8(v);
    i += run;
  }
  return w.take();
}

std::vector<std::uint8_t> rleDecode(std::span<const std::uint8_t> data,
                                    std::size_t maxBytes) {
  ByteReader r(data);
  std::vector<std::uint8_t> out;
  while (!r.atEnd()) {
    const std::uint64_t run = r.varint();
    if (run == 0) throw std::runtime_error("rleDecode: zero-length run");
    if (run > (1ULL << 32)) throw std::runtime_error("rleDecode: run too long");
    if (run > maxBytes - out.size()) {
      throw std::runtime_error("rleDecode: output exceeds expected size");
    }
    const std::uint8_t v = r.u8();
    out.insert(out.end(), static_cast<std::size_t>(run), v);
  }
  return out;
}

}  // namespace anno::media
