#include "media/dct.h"

#include <cmath>

namespace anno::media {
namespace {

constexpr double kPi = 3.14159265358979323846;

/// Cosine basis table: cosTable[k][n] = c(k) * cos((2n+1) k pi / 16) where
/// c(0)=sqrt(1/8), c(k>0)=sqrt(2/8).  Built once.
struct CosTable {
  double t[8][8];
  CosTable() {
    for (int k = 0; k < 8; ++k) {
      const double ck = k == 0 ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0);
      for (int n = 0; n < 8; ++n) {
        t[k][n] = ck * std::cos((2.0 * n + 1.0) * k * kPi / 16.0);
      }
    }
  }
};

const CosTable& cosTable() {
  static const CosTable table;
  return table;
}

}  // namespace

Block8x8 forwardDct(const Block8x8& spatial) {
  const auto& C = cosTable().t;
  // Separable: rows then columns.
  Block8x8 tmp{};
  for (int y = 0; y < 8; ++y) {
    for (int k = 0; k < 8; ++k) {
      double acc = 0.0;
      for (int x = 0; x < 8; ++x) acc += spatial[y * 8 + x] * C[k][x];
      tmp[y * 8 + k] = acc;
    }
  }
  Block8x8 out{};
  for (int k = 0; k < 8; ++k) {
    for (int j = 0; j < 8; ++j) {
      double acc = 0.0;
      for (int y = 0; y < 8; ++y) acc += tmp[y * 8 + k] * C[j][y];
      out[j * 8 + k] = acc;
    }
  }
  return out;
}

Block8x8 inverseDct(const Block8x8& freq) {
  const auto& C = cosTable().t;
  Block8x8 tmp{};
  for (int j = 0; j < 8; ++j) {
    for (int x = 0; x < 8; ++x) {
      double acc = 0.0;
      for (int k = 0; k < 8; ++k) acc += freq[j * 8 + k] * C[k][x];
      tmp[j * 8 + x] = acc;
    }
  }
  Block8x8 out{};
  for (int x = 0; x < 8; ++x) {
    for (int y = 0; y < 8; ++y) {
      double acc = 0.0;
      for (int j = 0; j < 8; ++j) acc += tmp[j * 8 + x] * C[j][y];
      out[y * 8 + x] = acc;
    }
  }
  return out;
}

const std::array<int, 64>& zigzagOrder() {
  static const std::array<int, 64> order = [] {
    std::array<int, 64> z{};
    int idx = 0;
    for (int s = 0; s < 15; ++s) {
      if (s % 2 == 0) {  // up-right
        for (int y = std::min(s, 7); y >= 0 && s - y <= 7; --y) {
          z[idx++] = y * 8 + (s - y);
        }
      } else {  // down-left
        for (int x = std::min(s, 7); x >= 0 && s - x <= 7; --x) {
          z[idx++] = (s - x) * 8 + x;
        }
      }
    }
    return z;
  }();
  return order;
}

}  // namespace anno::media
