#include "media/crc32.h"

#include <array>

namespace anno::media {
namespace {

// Reflected CRC-32, polynomial 0xEDB88320 (IEEE 802.3 / zlib compatible).
constexpr std::array<std::uint32_t, 256> makeTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = makeTable();

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t crc) {
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (const std::uint8_t b : data) {
    c = kTable[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace anno::media
