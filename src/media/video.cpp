#include "media/video.h"

#include <stdexcept>

#include "concurrency/parallel.h"
#include "media/kernels/kernels.h"

namespace anno::media {

namespace {
/// Frames per profiling chunk.  Purely a scheduling knob: per-frame slots
/// make the output identical for any grain or thread count.
constexpr std::size_t kProfileGrain = 8;
}  // namespace

FrameStats profileFrame(const Image& frame) {
  FrameStats fs;
  const std::size_t n = frame.pixelCount();
  fs.luminance.pixelCount = n;
  if (n == 0) {
    // Preserve the histogram-derived summary of an empty frame (lowPoint /
    // highPoint of an empty histogram are 0 / 255).
    fs.luminance.maxLuma = 255;
    return fs;
  }
  // One fused pass: histogram + min/max/sum together, instead of the old
  // Histogram::ofImage walk followed by three histogram scans.
  kernels::FrameProfile profile;
  kernels::active().profileRgb(frame.pixels().data(), n, profile);
  fs.histogram = Histogram::fromCounts(profile.hist);
  fs.luminance.meanLuma =
      static_cast<double>(profile.lumaSum) / static_cast<double>(n);
  fs.luminance.minLuma = profile.minLuma;
  fs.luminance.maxLuma = profile.maxLuma;
  return fs;
}

std::vector<FrameStats> profileClip(const VideoClip& clip,
                                    concurrency::ThreadPool* pool,
                                    const FrameStatsHook& hook) {
  std::vector<FrameStats> stats(clip.frames.size());
  concurrency::parallelFor(
      pool, clip.frames.size(), kProfileGrain,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          stats[i] = profileFrame(clip.frames[i]);
          if (hook) hook(i, clip.frames[i], stats[i]);
        }
      });
  return stats;
}

void validateClip(const VideoClip& clip) {
  if (clip.frames.empty()) {
    throw std::invalid_argument("VideoClip '" + clip.name + "': no frames");
  }
  if (clip.fps <= 0.0) {
    throw std::invalid_argument("VideoClip '" + clip.name +
                                "': fps must be positive");
  }
  const int w = clip.frames.front().width();
  const int h = clip.frames.front().height();
  for (std::size_t i = 1; i < clip.frames.size(); ++i) {
    if (clip.frames[i].width() != w || clip.frames[i].height() != h) {
      throw std::invalid_argument("VideoClip '" + clip.name +
                                  "': frame resolutions differ");
    }
  }
}

}  // namespace anno::media
