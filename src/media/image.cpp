#include "media/image.h"

#include <cmath>

namespace anno::media {

Image resizeBilinear(const Image& src, int width, int height) {
  if (src.empty()) {
    throw std::invalid_argument("resizeBilinear: empty source");
  }
  if (width <= 0 || height <= 0 || width > Image::kMaxDim ||
      height > Image::kMaxDim) {
    throw std::invalid_argument("resizeBilinear: bad target dimensions");
  }
  Image dst(width, height);
  // Pixel-centre mapping: dst pixel centres sample the source at
  // proportional positions, clamped at the borders.
  const double sx = static_cast<double>(src.width()) / width;
  const double sy = static_cast<double>(src.height()) / height;
  for (int y = 0; y < height; ++y) {
    const double fy = std::max(0.0, (y + 0.5) * sy - 0.5);
    const int y0 = std::min(static_cast<int>(fy), src.height() - 1);
    const int y1 = std::min(y0 + 1, src.height() - 1);
    const double wy = fy - y0;
    for (int x = 0; x < width; ++x) {
      const double fx = std::max(0.0, (x + 0.5) * sx - 0.5);
      const int x0 = std::min(static_cast<int>(fx), src.width() - 1);
      const int x1 = std::min(x0 + 1, src.width() - 1);
      const double wx = fx - x0;

      const Rgb8& p00 = src(x0, y0);
      const Rgb8& p10 = src(x1, y0);
      const Rgb8& p01 = src(x0, y1);
      const Rgb8& p11 = src(x1, y1);
      const auto lerp2 = [&](auto get) {
        const double top = get(p00) * (1.0 - wx) + get(p10) * wx;
        const double bot = get(p01) * (1.0 - wx) + get(p11) * wx;
        return top * (1.0 - wy) + bot * wy;
      };
      dst(x, y) = Rgb8{clamp8(lerp2([](const Rgb8& p) { return double(p.r); })),
                       clamp8(lerp2([](const Rgb8& p) { return double(p.g); })),
                       clamp8(lerp2([](const Rgb8& p) { return double(p.b); }))};
    }
  }
  return dst;
}

}  // namespace anno::media
