// Luminance analysis of frames: luma planes and the per-frame statistics the
// annotation pipeline feeds on (Sec. 4.3 of the paper).
#pragma once

#include <cstdint>

#include "media/image.h"

namespace anno::media {

/// Extracts the BT.601 luma plane of an RGB image.
[[nodiscard]] GrayImage lumaPlane(const Image& img);

/// Per-frame luminance summary.  `maxLuma` drives the paper's scene
/// detection; `clipSafeLuma(q)` -- the luminance value below which a fraction
/// (1-q) of pixels lie -- drives the quality-level trade-off (Fig. 5).
struct FrameLuminance {
  double meanLuma = 0.0;      ///< average luminance, [0,255]
  std::uint8_t minLuma = 0;   ///< darkest pixel
  std::uint8_t maxLuma = 0;   ///< brightest pixel (paper's "max luminance")
  std::size_t pixelCount = 0;

  friend bool operator==(const FrameLuminance&,
                         const FrameLuminance&) = default;
};

/// Computes the frame luminance summary in one pass.
[[nodiscard]] FrameLuminance analyzeLuminance(const Image& img);

/// Luminance value L such that at most `clipFraction` of the pixels are
/// strictly brighter than L.  clipFraction = 0 returns the true maximum.
/// This is the paper's quality heuristic: "we allow a fixed percent of the
/// very bright pixels to be clipped".
[[nodiscard]] std::uint8_t clipSafeLuma(const Image& img, double clipFraction);

/// As above but operating on a precomputed 256-bin luma histogram
/// (counts[v] = number of pixels with luma v) -- the annotation pipeline
/// computes histograms anyway, so this avoids a second pass.
[[nodiscard]] std::uint8_t clipSafeLuma(const std::uint64_t (&counts)[256],
                                        std::uint64_t totalPixels,
                                        double clipFraction);

}  // namespace anno::media
