// Pixel types and the luminance model used throughout the library.
//
// The paper (Sec. 4.1) computes pixel luminance as Y = rR + gG + bB with the
// standard constants; we use ITU-R BT.601 weights, the convention of the
// MPEG-1/2 era players the paper built on (Berkeley MPEG tools).
#pragma once

#include <algorithm>
#include <cstdint>

namespace anno::media {

/// 8-bit interleaved RGB pixel (the 64K-colour PDA panels of the paper are
/// RGB565; we keep full 8-bit channels and model panel quantization in the
/// display layer where it belongs).
struct Rgb8 {
  std::uint8_t r = 0;
  std::uint8_t g = 0;
  std::uint8_t b = 0;

  friend constexpr bool operator==(const Rgb8&, const Rgb8&) = default;
};

/// BT.601 luma weights (paper Sec. 4.1: "Y = rR + gG + bB, where r, g, b are
/// known constants").
inline constexpr double kLumaR = 0.299;
inline constexpr double kLumaG = 0.587;
inline constexpr double kLumaB = 0.114;

/// Luminance of an RGB pixel in [0, 255], full double precision.
[[nodiscard]] constexpr double luminance(const Rgb8& p) noexcept {
  return kLumaR * p.r + kLumaG * p.g + kLumaB * p.b;
}

/// Luminance rounded to the nearest 8-bit code value.
[[nodiscard]] constexpr std::uint8_t luma8(const Rgb8& p) noexcept {
  const double y = luminance(p) + 0.5;
  return static_cast<std::uint8_t>(y >= 255.0 ? 255 : y);
}

/// Clamp a double to the representable 8-bit pixel range and round.
[[nodiscard]] constexpr std::uint8_t clamp8(double v) noexcept {
  if (v <= 0.0) return 0;
  if (v >= 255.0) return 255;
  return static_cast<std::uint8_t>(v + 0.5);
}

/// Saturating per-channel scale: C' = min(255, C*k).  This is the contrast
/// enhancement primitive of the paper (Sec. 4.1, "C' = min(1, C*k)" on
/// normalized values).
[[nodiscard]] constexpr Rgb8 scale(const Rgb8& p, double k) noexcept {
  return Rgb8{clamp8(p.r * k), clamp8(p.g * k), clamp8(p.b * k)};
}

/// Saturating per-channel offset: C' = min(255, C + delta).  Brightness
/// compensation primitive (paper Sec. 4.1, "C' = min(1, C + deltaC)").
[[nodiscard]] constexpr Rgb8 offset(const Rgb8& p, double delta) noexcept {
  return Rgb8{clamp8(p.r + delta), clamp8(p.g + delta), clamp8(p.b + delta)};
}

/// True if any channel would clip when scaled by k.
[[nodiscard]] constexpr bool clipsWhenScaled(const Rgb8& p, double k) noexcept {
  return p.r * k > 255.0 || p.g * k > 255.0 || p.b * k > 255.0;
}

/// Largest scale factor that keeps this pixel unclipped (>= 1.0 result means
/// the pixel tolerates at least that much contrast enhancement).
[[nodiscard]] constexpr double maxScaleWithoutClip(const Rgb8& p) noexcept {
  const int m = std::max({p.r, p.g, p.b});
  if (m == 0) return 1e9;  // black pixels never clip
  return 255.0 / static_cast<double>(m);
}

}  // namespace anno::media
