// Toy intra-only block-DCT video codec ("AV0").
//
// Substrate for the streaming experiments: the paper streams MPEG clips of
// "a few megabytes" and embeds annotations whose RLE-compressed size is
// "in the order of hundreds of bytes".  To measure that ratio honestly we
// need a real (if simple) compressed representation of the video, plus a
// decode path that exercises the client CPU like a software MPEG player.
//
// Design: RGB -> BT.601 YCbCr, per-plane 8x8 DCT, uniform quantization with
// a JPEG-style matrix scaled by a quality factor, zigzag scan, DC prediction
// across blocks, and (run,level) entropy coding with LEB128 varints.
//
// Two frame types, MPEG-style:
//   I (intra):  blocks coded standalone; every GOP starts with one.
//   P (inter):  per-block conditional replenishment against the previous
//               decoded frame -- SKIP (copy reference) or DELTA (DCT of the
//               residual).  Dark/static scenes produce tiny P frames, which
//               is exactly the size variation the annotation-driven DVFS and
//               NIC-scheduling experiments exploit.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "media/image.h"
#include "media/video.h"

namespace anno::media {

/// Codec tuning.  quality in [1,100]; higher = larger, more faithful.
/// gopLength = 1 forces intra-only (every frame independently decodable);
/// larger values insert P frames between I frames.
struct CodecConfig {
  int quality = 75;
  int gopLength = 1;
  /// Mean-abs-difference (per pixel) below which a P block is SKIPped.
  double skipThreshold = 1.5;
};

/// One compressed frame.
struct EncodedFrame {
  std::vector<std::uint8_t> bytes;
  bool intra = true;

  [[nodiscard]] std::size_t sizeBytes() const noexcept { return bytes.size(); }
};

/// A compressed clip: header metadata plus per-frame payloads.
struct EncodedClip {
  std::string name;
  int width = 0;
  int height = 0;
  double fps = 0.0;
  int quality = 75;
  std::vector<EncodedFrame> frames;

  [[nodiscard]] std::size_t totalBytes() const noexcept {
    std::size_t n = 0;
    for (const EncodedFrame& f : frames) n += f.sizeBytes();
    return n;
  }
};

/// Encodes one RGB frame as an I frame.
[[nodiscard]] EncodedFrame encodeFrame(const Image& frame,
                                       const CodecConfig& cfg = {});

/// Encodes one RGB frame as a P frame against `reference` (the previous
/// DECODED frame, so encoder and decoder stay in sync).
[[nodiscard]] EncodedFrame encodePFrame(const Image& frame,
                                        const Image& reference,
                                        const CodecConfig& cfg = {});

/// Decodes one frame; dimensions must match the encoder's.  `reference`
/// must be the previous decoded frame for P frames (may be null for I
/// frames).  Throws std::runtime_error on malformed payloads or a missing
/// reference.
[[nodiscard]] Image decodeFrame(const EncodedFrame& frame, int width,
                                int height, const Image* reference = nullptr);

/// Encodes a whole clip.
[[nodiscard]] EncodedClip encodeClip(const VideoClip& clip,
                                     const CodecConfig& cfg = {});

/// Decodes a whole clip.
[[nodiscard]] VideoClip decodeClip(const EncodedClip& clip);

/// Serializes an EncodedClip into one flat container byte stream
/// (magic, header, frame table, payloads) and parses it back.
[[nodiscard]] std::vector<std::uint8_t> serializeClip(const EncodedClip& clip);
[[nodiscard]] EncodedClip parseClip(std::span<const std::uint8_t> bytes);

}  // namespace anno::media
