// Byte-oriented serialization primitives shared by the video codec and the
// annotation codec: LEB128 varints, zigzag signed mapping, and run-length
// encoding.  The paper stores annotations "RLE compressed, so the overhead is
// minimal, in the order of hundreds of bytes" (Sec. 4.3).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace anno::media {

/// Growable byte sink with varint support.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }

  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v & 0xFF));
    u8(static_cast<std::uint8_t>(v >> 8));
  }

  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v & 0xFFFF));
    u16(static_cast<std::uint16_t>(v >> 16));
  }

  /// Unsigned LEB128.
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      u8(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    u8(static_cast<std::uint8_t>(v));
  }

  /// Zigzag-mapped signed LEB128.
  void svarint(std::int64_t v) {
    varint((static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63));
  }

  void bytes(std::span<const std::uint8_t> data) {
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }

  [[nodiscard]] const std::vector<std::uint8_t>& data() const noexcept {
    return bytes_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked byte source.  Throws std::out_of_range on underrun and
/// std::runtime_error on malformed varints, so truncated/corrupted streams
/// surface as exceptions rather than UB.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8() {
    if (pos_ >= data_.size()) throw std::out_of_range("ByteReader: underrun");
    return data_[pos_++];
  }

  [[nodiscard]] std::uint16_t u16() {
    const std::uint16_t lo = u8();
    return static_cast<std::uint16_t>(lo | (static_cast<std::uint16_t>(u8()) << 8));
  }

  [[nodiscard]] std::uint32_t u32() {
    const std::uint32_t lo = u16();
    return lo | (static_cast<std::uint32_t>(u16()) << 16);
  }

  [[nodiscard]] std::uint64_t varint() {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      const std::uint8_t b = u8();
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return v;
    }
    throw std::runtime_error("ByteReader: varint too long");
  }

  [[nodiscard]] std::int64_t svarint() {
    const std::uint64_t z = varint();
    return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
  }

  [[nodiscard]] std::span<const std::uint8_t> bytes(std::size_t n) {
    if (pos_ + n > data_.size()) {
      throw std::out_of_range("ByteReader: underrun");
    }
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] bool atEnd() const noexcept { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Run-length encodes a byte sequence as (count,value) varint pairs.
[[nodiscard]] std::vector<std::uint8_t> rleEncode(
    std::span<const std::uint8_t> data);

/// Inverse of rleEncode.  Throws on malformed input, and -- so corrupt run
/// counts cannot drive gigabyte allocations from a hundred-byte buffer --
/// when the decoded size would exceed `maxBytes` (callers usually know the
/// exact expected size from framing).
[[nodiscard]] std::vector<std::uint8_t> rleDecode(
    std::span<const std::uint8_t> data,
    std::size_t maxBytes = static_cast<std::size_t>(-1));

}  // namespace anno::media
