#include "media/io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace anno::media {
namespace {

void writeFile(const std::string& path, const std::string& header,
               const void* data, std::size_t size) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open for writing: " + path);
  f << header;
  f.write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
  if (!f) throw std::runtime_error("write failed: " + path);
}

struct PnmHeader {
  std::string magic;
  int width = 0;
  int height = 0;
  int maxval = 0;
};

PnmHeader readPnmHeader(std::ifstream& f, const std::string& path) {
  PnmHeader h;
  f >> h.magic >> h.width >> h.height >> h.maxval;
  if (!f || h.width <= 0 || h.height <= 0 || h.maxval != 255) {
    throw std::runtime_error("malformed PNM header: " + path);
  }
  f.get();  // single whitespace after maxval
  return h;
}

}  // namespace

void writePpm(const Image& img, const std::string& path) {
  if (img.empty()) throw std::invalid_argument("writePpm: empty image");
  std::ostringstream header;
  header << "P6\n" << img.width() << ' ' << img.height() << "\n255\n";
  static_assert(sizeof(Rgb8) == 3, "Rgb8 must be packed for PPM output");
  writeFile(path, header.str(), img.pixels().data(),
            img.pixelCount() * sizeof(Rgb8));
}

void writePgm(const GrayImage& img, const std::string& path) {
  if (img.empty()) throw std::invalid_argument("writePgm: empty image");
  std::ostringstream header;
  header << "P5\n" << img.width() << ' ' << img.height() << "\n255\n";
  writeFile(path, header.str(), img.pixels().data(), img.pixelCount());
}

Image readPpm(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open: " + path);
  const PnmHeader h = readPnmHeader(f, path);
  if (h.magic != "P6") throw std::runtime_error("not a P6 PPM: " + path);
  Image img(h.width, h.height);
  f.read(reinterpret_cast<char*>(img.pixels().data()),
         static_cast<std::streamsize>(img.pixelCount() * sizeof(Rgb8)));
  if (!f) throw std::runtime_error("truncated PPM: " + path);
  return img;
}

GrayImage readPgm(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open: " + path);
  const PnmHeader h = readPnmHeader(f, path);
  if (h.magic != "P5") throw std::runtime_error("not a P5 PGM: " + path);
  GrayImage img(h.width, h.height);
  f.read(reinterpret_cast<char*>(img.pixels().data()),
         static_cast<std::streamsize>(img.pixelCount()));
  if (!f) throw std::runtime_error("truncated PGM: " + path);
  return img;
}

namespace {

struct YcbcrPlanes {
  std::vector<std::uint8_t> y, cb, cr;
};

YcbcrPlanes frameToPlanes(const Image& frame) {
  YcbcrPlanes p;
  const std::size_t n = frame.pixelCount();
  p.y.resize(n);
  p.cb.resize(n);
  p.cr.resize(n);
  auto src = frame.pixels();
  for (std::size_t i = 0; i < n; ++i) {
    const Rgb8& px = src[i];
    p.y[i] = clamp8(kLumaR * px.r + kLumaG * px.g + kLumaB * px.b);
    p.cb[i] = clamp8(128.0 - 0.168736 * px.r - 0.331264 * px.g + 0.5 * px.b);
    p.cr[i] = clamp8(128.0 + 0.5 * px.r - 0.418688 * px.g - 0.081312 * px.b);
  }
  return p;
}

Image planesToFrame(const YcbcrPlanes& p, int width, int height) {
  Image frame(width, height);
  auto dst = frame.pixels();
  for (std::size_t i = 0; i < dst.size(); ++i) {
    const double y = p.y[i];
    const double cb = p.cb[i] - 128.0;
    const double cr = p.cr[i] - 128.0;
    dst[i] = Rgb8{clamp8(y + 1.402 * cr),
                  clamp8(y - 0.344136 * cb - 0.714136 * cr),
                  clamp8(y + 1.772 * cb)};
  }
  return frame;
}

}  // namespace

void writeY4m(const VideoClip& clip, const std::string& path) {
  validateClip(clip);
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open for writing: " + path);
  // Frame rate as a rational: millifps over 1000.
  const auto fpsNum = static_cast<long>(clip.fps * 1000.0 + 0.5);
  f << "YUV4MPEG2 W" << clip.width() << " H" << clip.height() << " F"
    << fpsNum << ":1000 Ip A1:1 C444\n";
  for (const Image& frame : clip.frames) {
    f << "FRAME\n";
    const YcbcrPlanes p = frameToPlanes(frame);
    f.write(reinterpret_cast<const char*>(p.y.data()),
            static_cast<std::streamsize>(p.y.size()));
    f.write(reinterpret_cast<const char*>(p.cb.data()),
            static_cast<std::streamsize>(p.cb.size()));
    f.write(reinterpret_cast<const char*>(p.cr.data()),
            static_cast<std::streamsize>(p.cr.size()));
  }
  if (!f) throw std::runtime_error("write failed: " + path);
}

VideoClip readY4m(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open: " + path);
  std::string header;
  std::getline(f, header);
  if (header.rfind("YUV4MPEG2", 0) != 0) {
    throw std::runtime_error("not a Y4M file: " + path);
  }
  int width = 0, height = 0;
  long fpsNum = 0, fpsDen = 1;
  bool c444 = false;
  std::istringstream hs(header);
  std::string token;
  while (hs >> token) {
    if (token.size() < 2) continue;
    switch (token[0]) {
      case 'W': width = std::stoi(token.substr(1)); break;
      case 'H': height = std::stoi(token.substr(1)); break;
      case 'F': {
        const auto colon = token.find(':');
        if (colon != std::string::npos) {
          fpsNum = std::stol(token.substr(1, colon - 1));
          fpsDen = std::stol(token.substr(colon + 1));
        }
        break;
      }
      case 'C':
        c444 = token == "C444";
        break;
      default: break;
    }
  }
  if (width <= 0 || height <= 0 || fpsNum <= 0 || fpsDen <= 0) {
    throw std::runtime_error("malformed Y4M header: " + path);
  }
  if (!c444) {
    throw std::runtime_error("readY4m: only C444 is supported: " + path);
  }
  VideoClip clip;
  clip.fps = static_cast<double>(fpsNum) / static_cast<double>(fpsDen);
  const std::size_t planeBytes =
      static_cast<std::size_t>(width) * static_cast<std::size_t>(height);
  std::string frameLine;
  while (std::getline(f, frameLine)) {
    if (frameLine.rfind("FRAME", 0) != 0) {
      throw std::runtime_error("malformed Y4M frame marker: " + path);
    }
    YcbcrPlanes p;
    p.y.resize(planeBytes);
    p.cb.resize(planeBytes);
    p.cr.resize(planeBytes);
    f.read(reinterpret_cast<char*>(p.y.data()),
           static_cast<std::streamsize>(planeBytes));
    f.read(reinterpret_cast<char*>(p.cb.data()),
           static_cast<std::streamsize>(planeBytes));
    f.read(reinterpret_cast<char*>(p.cr.data()),
           static_cast<std::streamsize>(planeBytes));
    if (!f) throw std::runtime_error("truncated Y4M frame: " + path);
    clip.frames.push_back(planesToFrame(p, width, height));
  }
  if (clip.frames.empty()) {
    throw std::runtime_error("Y4M file has no frames: " + path);
  }
  return clip;
}

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) {
    throw std::invalid_argument("CsvWriter: header must be non-empty");
  }
}

void CsvWriter::addRow(const std::vector<std::string>& row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("CsvWriter: row width != header width");
  }
  rows_.push_back(row);
}

void CsvWriter::addRow(const std::vector<double>& row) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) {
    std::ostringstream os;
    os << v;
    cells.push_back(os.str());
  }
  addRow(cells);
}

std::string CsvWriter::str() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < header_.size(); ++i) {
    os << (i ? "," : "") << header_[i];
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << (i ? "," : "") << row[i];
    }
    os << '\n';
  }
  return os.str();
}

void CsvWriter::save(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open for writing: " + path);
  f << str();
  if (!f) throw std::runtime_error("write failed: " + path);
}

}  // namespace anno::media
