#include "concurrency/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>
#include <memory>

namespace anno::concurrency {

unsigned resolveThreads(unsigned requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

PoolLease leaseFor(unsigned threads) {
  if (resolveThreads(threads) <= 1) return {};
  PoolLease lease;
  if (threads == 0) {
    lease.pool = &ThreadPool::shared();
  } else {
    lease.owned = std::make_unique<ThreadPool>(threads);
    lease.pool = lease.owned.get();
  }
  return lease;
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned total = resolveThreads(threads);
  const unsigned workerCount = total > 1 ? total - 1 : 0;
  workers_.reserve(workerCount);
  for (unsigned i = 0; i < workerCount; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(0);
  return pool;
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

namespace {

/// Shared state of one runChunked call.  Helpers hold it by shared_ptr: a
/// helper task may be dequeued after the batch already finished (the caller
/// claimed every chunk itself), in which case it finds no work and returns.
struct ChunkBatch {
  std::size_t chunks = 0;
  std::function<void(std::size_t)> fn;
  std::atomic<std::size_t> next{0};

  std::mutex mu;
  std::condition_variable doneCv;
  std::size_t done = 0;  // guarded by mu
  std::size_t errorChunk = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error;  // lowest-index chunk's exception; guarded by mu

  void run() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= chunks) return;
      std::exception_ptr err;
      try {
        fn(i);
      } catch (...) {
        err = std::current_exception();
      }
      const std::lock_guard<std::mutex> lock(mu);
      if (err && i < errorChunk) {
        errorChunk = i;
        error = err;
      }
      if (++done == chunks) doneCv.notify_all();
    }
  }
};

}  // namespace

void ThreadPool::runChunked(std::size_t chunks,
                            const std::function<void(std::size_t)>& fn) {
  if (chunks == 0) return;
  if (workers_.empty() || chunks == 1) {
    // Serial fast path; exceptions propagate directly.
    for (std::size_t i = 0; i < chunks; ++i) fn(i);
    return;
  }
  auto batch = std::make_shared<ChunkBatch>();
  batch->chunks = chunks;
  batch->fn = fn;
  const std::size_t helpers = std::min<std::size_t>(workers_.size(), chunks - 1);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < helpers; ++i) {
      tasks_.emplace_back([batch] { batch->run(); });
    }
  }
  if (helpers == 1) {
    cv_.notify_one();
  } else {
    cv_.notify_all();
  }
  batch->run();  // the caller participates; guarantees progress when nested
  std::unique_lock<std::mutex> lock(batch->mu);
  batch->doneCv.wait(lock, [&] { return batch->done == batch->chunks; });
  if (batch->error) std::rethrow_exception(batch->error);
}

}  // namespace anno::concurrency
