#include "concurrency/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>
#include <memory>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace anno::concurrency {

namespace {

/// Aggregate pool instruments, published once by attachPoolTelemetry.  Hot
/// paths load one atomic pointer; detached (nullptr) costs a branch.
struct PoolTelemetry {
  telemetry::Counter* workersStarted = nullptr;
  telemetry::Counter* chunkedCalls = nullptr;
  telemetry::Counter* serialCalls = nullptr;
  telemetry::Counter* tasksRun = nullptr;
  telemetry::Counter* callerChunks = nullptr;
  telemetry::Gauge* queueHighWater = nullptr;
};
std::atomic<const PoolTelemetry*> g_poolTelemetry{nullptr};

const PoolTelemetry* poolTelemetry() noexcept {
  return g_poolTelemetry.load(std::memory_order_acquire);
}

std::atomic<telemetry::TraceRecorder*> g_poolTrace{nullptr};

telemetry::TraceRecorder* poolTrace() noexcept {
  return g_poolTrace.load(std::memory_order_acquire);
}

}  // namespace

void attachPoolTelemetry(telemetry::Registry& registry) {
  static PoolTelemetry block;
  block.workersStarted = &registry.counter(
      "anno_pool_workers_started_total", {},
      "Worker threads spawned across all thread pools");
  block.chunkedCalls = &registry.counter(
      "anno_pool_chunked_calls_total", {},
      "Pooled runChunked invocations (caller participates in each)");
  block.serialCalls = &registry.counter(
      "anno_pool_serial_calls_total", {},
      "runChunked invocations on the serial fast path");
  block.tasksRun = &registry.counter(
      "anno_pool_tasks_run_total", {},
      "Chunks executed on any thread");
  block.callerChunks = &registry.counter(
      "anno_pool_caller_chunks_total", {},
      "Chunks executed by the calling (participating) thread");
  block.queueHighWater = &registry.gauge(
      "anno_pool_queue_depth_high_water", {},
      "Maximum helper tasks ever enqueued at once");
  g_poolTelemetry.store(&block, std::memory_order_release);
}

void detachPoolTelemetry() noexcept {
  g_poolTelemetry.store(nullptr, std::memory_order_release);
}

void attachPoolTrace(telemetry::TraceRecorder& trace) noexcept {
  g_poolTrace.store(&trace, std::memory_order_release);
}

void detachPoolTrace() noexcept {
  g_poolTrace.store(nullptr, std::memory_order_release);
}

unsigned resolveThreads(unsigned requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

PoolLease leaseFor(unsigned threads) {
  if (resolveThreads(threads) <= 1) return {};
  PoolLease lease;
  if (threads == 0) {
    lease.pool = &ThreadPool::shared();
  } else {
    lease.owned = std::make_unique<ThreadPool>(threads);
    lease.pool = lease.owned.get();
  }
  return lease;
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned total = resolveThreads(threads);
  const unsigned workerCount = total > 1 ? total - 1 : 0;
  workers_.reserve(workerCount);
  for (unsigned i = 0; i < workerCount; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
  if (const PoolTelemetry* m = poolTelemetry()) {
    telemetry::inc(m->workersStarted, workerCount);
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(0);
  return pool;
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

namespace {

/// Shared state of one runChunked call.  Helpers hold it by shared_ptr: a
/// helper task may be dequeued after the batch already finished (the caller
/// claimed every chunk itself), in which case it finds no work and returns.
struct ChunkBatch {
  std::size_t chunks = 0;
  std::function<void(std::size_t)> fn;
  std::atomic<std::size_t> next{0};

  std::mutex mu;
  std::condition_variable doneCv;
  std::size_t done = 0;  // guarded by mu
  std::size_t errorChunk = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error;  // lowest-index chunk's exception; guarded by mu

  void run(bool isCaller) {
    telemetry::TraceRecorder* const trace = poolTrace();
    if (trace != nullptr && !isCaller) trace->nameThisThread("pool-worker");
    std::size_t executed = 0;
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= chunks) break;
      ++executed;
      std::exception_ptr err;
      {
        // Per-chunk span on this thread's track (cat "pool": scheduling-
        // dependent, exempt from determinism checks).
        telemetry::TraceSpan span(trace, "task", "pool",
                                  {{"chunk", static_cast<double>(i)}});
        try {
          fn(i);
        } catch (...) {
          err = std::current_exception();
        }
      }
      const std::lock_guard<std::mutex> lock(mu);
      if (err && i < errorChunk) {
        errorChunk = i;
        error = err;
      }
      if (++done == chunks) doneCv.notify_all();
    }
    if (executed == 0) return;
    if (const PoolTelemetry* m = poolTelemetry()) {
      telemetry::inc(m->tasksRun, executed);
      if (isCaller) telemetry::inc(m->callerChunks, executed);
    }
  }
};

}  // namespace

void ThreadPool::runChunked(std::size_t chunks,
                            const std::function<void(std::size_t)>& fn) {
  if (chunks == 0) return;
  const PoolTelemetry* const metrics = poolTelemetry();
  if (workers_.empty() || chunks == 1) {
    // Serial fast path; exceptions propagate directly.
    if (metrics != nullptr) {
      telemetry::inc(metrics->serialCalls);
      telemetry::inc(metrics->tasksRun, chunks);
      telemetry::inc(metrics->callerChunks, chunks);
    }
    for (std::size_t i = 0; i < chunks; ++i) fn(i);
    return;
  }
  if (metrics != nullptr) telemetry::inc(metrics->chunkedCalls);
  auto batch = std::make_shared<ChunkBatch>();
  batch->chunks = chunks;
  batch->fn = fn;
  const std::size_t helpers = std::min<std::size_t>(workers_.size(), chunks - 1);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < helpers; ++i) {
      tasks_.emplace_back([batch] { batch->run(/*isCaller=*/false); });
    }
    // Measured at enqueue time, under the same lock hold, so the high-water
    // mark is well-defined (workers have not started draining this batch).
    if (metrics != nullptr) {
      telemetry::updateMax(metrics->queueHighWater,
                           static_cast<std::int64_t>(tasks_.size()));
    }
  }
  if (helpers == 1) {
    cv_.notify_one();
  } else {
    cv_.notify_all();
  }
  batch->run(/*isCaller=*/true);  // caller participates; progress when nested
  std::unique_lock<std::mutex> lock(batch->mu);
  batch->doneCv.wait(lock, [&] { return batch->done == batch->chunks; });
  if (batch->error) std::rethrow_exception(batch->error);
}

}  // namespace anno::concurrency
