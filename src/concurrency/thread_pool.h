// A small fixed-size thread pool plus a chunked work-distribution primitive,
// the foundation of the parallel annotation pipeline (see parallel.h for the
// parallel_for / parallel_reduce helpers built on top).
//
// Design notes:
//  - The caller PARTICIPATES in every runChunked() call: chunk indices are
//    handed out through an atomic counter and the calling thread keeps
//    claiming chunks until none remain, so forward progress never depends on
//    a worker being free.  This makes nested parallelism (a pool task that
//    itself calls runChunked on the same pool) deadlock-free: at worst the
//    nested call degrades to serial execution on its calling thread.
//  - Chunks are claimed in ascending index order (work-stealing-friendly
//    dynamic scheduling) but NOTHING about the output may depend on which
//    thread ran which chunk; determinism is the contract of the helpers in
//    parallel.h, which merge per-chunk results in chunk order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace anno::telemetry {
class Registry;
class TraceRecorder;
}

namespace anno::concurrency {

class ThreadPool;

/// Publishes process-wide thread-pool telemetry into `registry` (all pools,
/// shared and leased, feed the same aggregate instruments):
///   anno_pool_workers_started_total   worker threads spawned
///   anno_pool_chunked_calls_total     pooled runChunked invocations (the
///                                     caller participates in every one)
///   anno_pool_serial_calls_total      runChunked calls on the serial fast
///                                     path (no workers / single chunk)
///   anno_pool_tasks_run_total         chunks executed, any thread
///   anno_pool_caller_chunks_total     chunks the calling thread claimed
///   anno_pool_queue_depth_high_water  max helper tasks ever queued
/// Detached by default (one branch per would-be update, nothing recorded).
/// Attach before pools start running work; handles live in `registry`.
void attachPoolTelemetry(telemetry::Registry& registry);
void detachPoolTelemetry() noexcept;

/// Starts emitting trace spans from every pooled runChunked in the process:
/// one `task` span (cat "pool") per executed chunk, on the track of the
/// thread that ran it, with workers' tracks named "pool-worker".  Which
/// thread claims which chunk is scheduling-dependent, so cat "pool" events
/// are exempt from cross-thread-count determinism checks (the chunk RESULTS
/// remain deterministic -- see the parallel.h contract).  Module-level like
/// attachPoolTelemetry; the recorder must outlive attachment.
void attachPoolTrace(telemetry::TraceRecorder& trace) noexcept;
void detachPoolTrace() noexcept;

/// Resolves a thread-count knob: 0 means one thread per hardware thread
/// (at least 1), any other value is taken literally.
[[nodiscard]] unsigned resolveThreads(unsigned requested) noexcept;

/// Owns-or-borrows the pool a hot path runs on (get() == nullptr = serial).
/// Produced by leaseFor(); keep the lease alive for as long as the pool
/// pointer is used.
struct PoolLease {
  ThreadPool* pool = nullptr;
  std::unique_ptr<ThreadPool> owned;

  [[nodiscard]] ThreadPool* get() const noexcept { return pool; }
};

/// Resolves a `threads` knob into a usable pool: <=1 resolved threads stays
/// serial (null pool), 0 borrows the shared hardware-sized pool, otherwise
/// a pool of exactly the requested size is spun up for the lease's
/// lifetime.
[[nodiscard]] PoolLease leaseFor(unsigned threads);

class ThreadPool {
 public:
  /// `threads` is the TOTAL concurrency of a runChunked call, including the
  /// calling thread, so ThreadPool(4) spawns 3 workers.  0 = one thread per
  /// hardware thread.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency (workers + the participating caller).
  [[nodiscard]] unsigned concurrency() const noexcept {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Process-wide pool sized to the hardware, constructed on first use.
  [[nodiscard]] static ThreadPool& shared();

  /// Executes fn(0) .. fn(chunks-1), each exactly once, distributing chunks
  /// dynamically across the caller and the workers; blocks until every chunk
  /// has finished.  Every chunk runs even if an earlier one throws, and the
  /// exception of the LOWEST-indexed throwing chunk is rethrown -- so the
  /// observable behaviour (result or exception) is the serial loop's,
  /// independent of thread count.
  void runChunked(std::size_t chunks, const std::function<void(std::size_t)>& fn);

 private:
  void workerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  bool stop_ = false;
};

}  // namespace anno::concurrency
