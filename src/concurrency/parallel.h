// Deterministic data-parallel loops over a ThreadPool.
//
// The determinism contract: chunk boundaries depend ONLY on (n, grain) --
// never on the thread count or on scheduling -- and parallelReduce merges
// per-chunk shards on the calling thread in ascending chunk order.  Shards
// are chunk-local (no atomics, no shared mutable bins), so a reduction is
// bit-identical to the serial left fold over the same chunking for ANY
// thread count, including non-commutative merge operations.  Callers that
// additionally want thread-count-invariant results (the annotation pipeline
// does) must therefore pick `grain` independently of the pool size whenever
// the merge is not associative-exact -- for exact merges (integer histogram
// bins, slot writes) any grain gives identical output anyway.
#pragma once

#include <algorithm>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "concurrency/thread_pool.h"

namespace anno::concurrency {

/// Number of grain-sized chunks covering [0, n).
[[nodiscard]] constexpr std::size_t chunkCount(std::size_t n,
                                               std::size_t grain) noexcept {
  const std::size_t g = grain == 0 ? 1 : grain;
  return n == 0 ? 0 : (n + g - 1) / g;
}

/// Chunked parallel loop: invokes body(begin, end) over disjoint subranges
/// covering [0, n).  `pool == nullptr` (or a pool with no workers) runs the
/// whole range serially on the caller.  Blocks until every chunk finished;
/// rethrows the lowest-indexed chunk's exception.
template <typename Body>
void parallelFor(ThreadPool* pool, std::size_t n, std::size_t grain,
                 Body&& body) {
  if (n == 0) return;
  const std::size_t g = grain == 0 ? 1 : grain;
  if (pool == nullptr || pool->concurrency() <= 1 || n <= g) {
    body(std::size_t{0}, n);
    return;
  }
  pool->runChunked(chunkCount(n, g), [&](std::size_t c) {
    const std::size_t begin = c * g;
    body(begin, std::min(n, begin + g));
  });
}

/// Deterministic sharded reduction: map(begin, end) produces one shard per
/// chunk in parallel; merge(acc, std::move(shard)) folds the shards into
/// `init` in ascending chunk order on the calling thread.  The chunking is
/// ALWAYS the (n, grain) decomposition -- the serial path walks the very
/// same chunks -- so the result is identical for any pool (including none),
/// even when map's output depends on its chunk boundaries or merge is
/// non-commutative.  T must be movable.
template <typename T, typename Map, typename Merge>
[[nodiscard]] T parallelReduce(ThreadPool* pool, std::size_t n,
                               std::size_t grain, T init, Map&& map,
                               Merge&& merge) {
  if (n == 0) return init;
  const std::size_t g = grain == 0 ? 1 : grain;
  const std::size_t chunks = chunkCount(n, g);
  if (pool == nullptr || pool->concurrency() <= 1 || chunks == 1) {
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t begin = c * g;
      merge(init, map(begin, std::min(n, begin + g)));
    }
    return init;
  }
  std::vector<std::optional<T>> shards(chunks);
  pool->runChunked(chunks, [&](std::size_t c) {
    const std::size_t begin = c * g;
    shards[c].emplace(map(begin, std::min(n, begin + g)));
  });
  for (std::optional<T>& shard : shards) {
    merge(init, std::move(*shard));
  }
  return init;
}

}  // namespace anno::concurrency
