// Sharded, fingerprint-keyed annotation-track cache: the fleet-scale
// sharing layer (ROADMAP "one engine pass, N clients, M tenants").
//
// The paper computes annotation ONCE upstream precisely so that thousands
// of battery-constrained clients can reuse it.  This cache makes that
// sharing explicit for heterogeneous tenants: entries are keyed on
// (clip id, AnnotatorConfig::fingerprint()), so any two tenants whose
// configs plan identically -- regardless of cosmetic differences like
// thread counts or telemetry attachments -- hit the same cached track, and
// any plan-affecting difference by construction gets its own entry
// (fingerprints never alias plans; see engine.h).
//
// Structure follows the directory-tracked shared cache-line shape: a fixed
// power-of-two array of independently locked shards, each holding its slice
// of the key space with per-entry sharing metadata (hit count, live
// references) and its own LRU list under a per-shard byte budget.  Fills
// are SINGLE-FLIGHT: when N requests race on a missing key, exactly one
// runs the engine pass while the rest wait on the shard's condition
// variable and share the result -- the invariant the fleet bench and the
// tests/fleet concurrency stress pin (fills == unique keys).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/annotation.h"
#include "core/sketch.h"

namespace anno::telemetry {
class Registry;
class Counter;
class Gauge;
class Histogram;
}

namespace anno::core {

/// Cache key: a caller-defined clip identity (the MediaServer uses
/// "name@revision" so re-ingested content can never serve stale tracks)
/// plus the tenant config's plan fingerprint.
struct TrackKey {
  std::string clipId;
  std::uint64_t fingerprint = 0;

  friend bool operator==(const TrackKey&, const TrackKey&) = default;
  friend auto operator<=>(const TrackKey&, const TrackKey&) = default;
};

/// One cached annotation result: everything a serve path needs that is a
/// pure function of (clip content, annotator config).
struct CachedTrack {
  AnnotationTrack track;
  SketchTrack sketches;
  /// Retained-size estimate charged against the byte budget.  Fillers may
  /// leave it 0; the cache then charges estimateTrackBytes().
  std::size_t bytes = 0;
};

using CachedTrackPtr = std::shared_ptr<const CachedTrack>;

/// Retained-size estimate of a cached entry (struct + scene vectors +
/// sketches + key strings are the caller's to add).
[[nodiscard]] std::size_t estimateTrackBytes(const CachedTrack& value);

struct TrackCacheConfig {
  /// Shard count, rounded up to a power of two (>= 1).  More shards =
  /// less lock contention between unrelated keys.
  std::size_t shardCount = 16;
  /// Total byte budget across all shards (each shard gets an equal slice);
  /// 0 = unbounded.  Eviction is LRU within the overfull shard.
  std::size_t byteBudget = 64u << 20;
};

/// Aggregated point-in-time statistics (sums over shards; individually
/// consistent counters, not a single atomic snapshot).
struct TrackCacheStats {
  std::uint64_t hits = 0;        ///< served from a completed entry
  std::uint64_t misses = 0;      ///< no entry: the caller ran the filler
  std::uint64_t fills = 0;       ///< fillers that completed == engine passes
  std::uint64_t evictions = 0;   ///< entries dropped by the LRU budget
  std::uint64_t singleFlightWaits = 0;  ///< requests that waited on a fill
  double fillSeconds = 0.0;      ///< wall time spent inside fillers
  std::size_t entries = 0;
  std::size_t bytes = 0;

  [[nodiscard]] double hitRate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                     : 0.0;
  }
};

/// Per-entry sharing metadata (tests + fleet reports).
struct TrackCacheEntryInfo {
  TrackKey key;
  std::uint64_t hits = 0;   ///< times served after the fill
  long liveRefs = 0;        ///< CachedTrackPtr holders outside the cache
  std::size_t bytes = 0;
};

class TrackCache {
 public:
  /// Produces the value for a missing key.  Runs OUTSIDE the shard lock
  /// (concurrent fills of different keys proceed in parallel); may throw,
  /// in which case the key stays absent and one waiter retries the fill.
  using Filler = std::function<CachedTrackPtr()>;

  explicit TrackCache(TrackCacheConfig cfg = {});

  /// The entry for `key`, filling it via `fill` on a miss (single-flight:
  /// racing requests for the same missing key run `fill` exactly once).
  /// Never returns null; propagates the filler's exception to the caller
  /// that ran it.
  [[nodiscard]] CachedTrackPtr getOrFill(const TrackKey& key,
                                         const Filler& fill);

  /// The entry if present and filled, else null.  Does not touch LRU order
  /// or hit/miss counters (an observation, not a use).
  [[nodiscard]] CachedTrackPtr peek(const TrackKey& key) const;

  /// Drops every completed entry of `clipId` (content replaced upstream).
  /// Returns the number of entries removed.  In-flight fills for the clip
  /// are left to finish (their waiters still get a consistent value);
  /// callers key re-ingested content by a NEW clipId (revision suffix), so
  /// a stale fill can never serve requests for the new content -- eraseClip
  /// is reclamation, not correctness.
  std::size_t eraseClip(const std::string& clipId);

  /// Drops every completed entry (in-flight fills are left to finish).
  void clear();

  /// Re-budgets the cache mid-run (0 = unbounded) and evicts each shard
  /// down to its new slice -- the cache-squeeze lever degradation drills
  /// pull.  Not safe concurrently with in-flight fills of the same shard
  /// being PUBLISHED (the usual driver calls it between ticks).
  void setByteBudget(std::size_t byteBudget);

  [[nodiscard]] TrackCacheStats stats() const;

  /// Completed entries with their sharing metadata, in no particular order.
  [[nodiscard]] std::vector<TrackCacheEntryInfo> entries() const;

  /// Registers cache instruments in `registry` and starts recording:
  ///   anno_track_cache_hits_total / anno_track_cache_misses_total,
  ///   anno_track_cache_fills_total (== engine passes),
  ///   anno_track_cache_evictions_total,
  ///   anno_track_cache_single_flight_waits_total,
  ///   anno_track_cache_fill_seconds,
  ///   anno_track_cache_entries / anno_track_cache_bytes.
  /// Detached by default (null handles, zero recording cost).  Attach
  /// before concurrent use; the registry must outlive the cache or be
  /// detached first.
  void attachTelemetry(telemetry::Registry& registry);
  void detachTelemetry() noexcept;

 private:
  struct Entry {
    TrackKey key;
    CachedTrackPtr value;      ///< null while the fill is in flight
    std::uint64_t hits = 0;
    std::size_t bytes = 0;
    bool filling = false;
  };

  struct Shard {
    mutable std::mutex mu;
    std::condition_variable cv;       ///< fill completion / abandonment
    /// MRU-first LRU list; map values point into it.
    std::list<Entry> lru;
    std::map<TrackKey, std::list<Entry>::iterator> index;
    std::size_t bytes = 0;            ///< completed entries only
    // Shard-local stats (under mu; aggregated by stats()).
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t fills = 0;
    std::uint64_t evictions = 0;
    std::uint64_t singleFlightWaits = 0;
    double fillSeconds = 0.0;
  };

  struct Telemetry {
    telemetry::Counter* hits = nullptr;
    telemetry::Counter* misses = nullptr;
    telemetry::Counter* fills = nullptr;
    telemetry::Counter* evictions = nullptr;
    telemetry::Counter* singleFlightWaits = nullptr;
    telemetry::Histogram* fillSeconds = nullptr;
    telemetry::Gauge* entries = nullptr;
    telemetry::Gauge* bytes = nullptr;
  };

  [[nodiscard]] Shard& shardFor(const TrackKey& key) const;
  /// Evicts from `shard`'s LRU tail until it fits its budget slice.
  /// Caller holds shard.mu.
  void evictOverBudget(Shard& shard);
  void publishGauges() const;

  std::size_t shardMask_ = 0;
  std::size_t shardByteBudget_ = 0;  ///< per shard; 0 = unbounded
  mutable std::vector<Shard> shards_;
  Telemetry metrics_;
};

}  // namespace anno::core
