#include "core/roi.h"

#include <cmath>
#include <stdexcept>

#include "concurrency/thread_pool.h"

namespace anno::core {

media::Histogram weightedHistogram(const media::Image& frame,
                                   std::span<const RoiRect> rois,
                                   double roiWeight) {
  if (roiWeight < 1.0) {
    throw std::invalid_argument("weightedHistogram: roiWeight must be >= 1");
  }
  if (frame.empty()) {
    throw std::invalid_argument("weightedHistogram: empty frame");
  }
  const auto weight = static_cast<std::uint64_t>(std::llround(roiWeight));
  media::Histogram hist;
  for (int y = 0; y < frame.height(); ++y) {
    for (int x = 0; x < frame.width(); ++x) {
      bool inRoi = false;
      for (const RoiRect& r : rois) {
        if (r.contains(x, y)) {
          inRoi = true;
          break;
        }
      }
      hist.add(media::luma8(frame(x, y)), inRoi ? weight : 1);
    }
  }
  return hist;
}

AnnotationTrack annotateClipWithRoi(const media::VideoClip& clip,
                                    std::span<const RoiRect> rois,
                                    double roiWeight,
                                    const AnnotatorConfig& cfg) {
  media::validateClip(clip);
  for (const RoiRect& r : rois) {
    if (r.x0 < 0 || r.y0 < 0 || r.x1 > clip.width() ||
        r.y1 > clip.height() || r.empty()) {
      throw std::invalid_argument(
          "annotateClipWithRoi: ROI outside frame or empty");
    }
  }
  if (roiWeight < 1.0) {
    throw std::invalid_argument("annotateClipWithRoi: roiWeight must be >= 1");
  }
  // Profile with weighted histograms -- the ROI weighting is a profiling-
  // stage hook, so the frames run through the same parallel loop as the
  // plain path (per-frame slots: bit-identical to serial for any
  // cfg.threads).  Max luminance (scene detection input) comes from the
  // unweighted content and is unaffected by weighting; planning is the
  // engine's, unforked.
  const concurrency::PoolLease lease = concurrency::leaseFor(cfg.threads);
  const std::vector<media::FrameStats> stats = media::profileClip(
      clip, lease.get(),
      [&](std::size_t, const media::Image& frame, media::FrameStats& fs) {
        fs.histogram = weightedHistogram(frame, rois, roiWeight);
      });
  return annotate(clip.name, clip.fps, stats, cfg);
}

}  // namespace anno::core
