// Histogram-sketch annotations: a 16-bin luminance sketch per scene.
//
// The paper's track carries one number per (scene, quality) -- enough for
// backlight scaling.  Richer client-side optimizations (tone mapping,
// contrast enhancement, OLED content shaping) want the luminance
// DISTRIBUTION, which the client could only get by analyzing frames -- the
// exact work annotations exist to remove.  A coarse sketch (16 bins, one
// byte each, RLE-friendly) carries that distribution for tens of bytes per
// scene, extending the annotation idea from "one ceiling" to "the shape".
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "core/annotation.h"
#include "media/histogram.h"
#include "media/video.h"

namespace anno::core {

/// One scene's sketch: 16 bins over luminance [0,255], each bin the scene's
/// mass share quantized to 1/255ths (bins sum to ~255).
struct SceneSketch {
  std::array<std::uint8_t, 16> bins{};

  friend bool operator==(const SceneSketch&, const SceneSketch&) = default;
};

/// Per-scene sketches, parallel to an AnnotationTrack's scenes.
struct SketchTrack {
  std::vector<SceneSketch> scenes;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static SketchTrack decode(std::span<const std::uint8_t> bytes);

  friend bool operator==(const SketchTrack&, const SketchTrack&) = default;
};

/// Quantizes a full histogram into a sketch.
[[nodiscard]] SceneSketch sketchHistogram(const media::Histogram& hist);

/// Expands a sketch back into an approximate 256-bin histogram (mass spread
/// uniformly within each bin).  Total is normalized to 255*16 units.
[[nodiscard]] media::Histogram expandSketch(const SceneSketch& sketch);

/// Builds the sketch track for an annotation track from the profiled frame
/// statistics (server side, alongside annotate()).  Scene spans must match.
[[nodiscard]] SketchTrack buildSketchTrack(
    const AnnotationTrack& track, const std::vector<media::FrameStats>& stats);

}  // namespace anno::core
