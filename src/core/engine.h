// The annotation engine: THE single, causal implementation of the paper's
// annotation algorithm (Sec. 4.3, "Technique for Annotations"):
//
//   per-frame stats -> causal scene cuts -> per-scene accumulated histogram
//   -> clip-safe luminance per offered quality level.
//
// Every serving context in this repo is a thin adapter over this class:
//
//   adapter                          | feeds the engine with            | latency
//   ---------------------------------+----------------------------------+--------
//   core::annotate()/annotateClip()  | profiled stats, frame order      | 0 (offline)
//   core::annotateClips()            | per-clip stats (parallel batch)  | 0 (offline)
//   core::annotateClipWithRoi()      | ROI-weighted stats (hook)        | 0 (offline)
//   stream::OnlineAnnotator (alias)  | live stats, one push per frame   | 0 or bounded
//   stream::ProxyNode::transcode()   | decoded frames, push per frame   | 0 or bounded
//
// The engine is push-based and strictly causal: a frame is examined exactly
// once, a scene's annotation is emitted the moment the scene closes, and no
// lookahead beyond the current frame is ever required.  The offline paths
// get bit-identical output to a whole-clip pass because the paper's own
// detectors are causal in structure (the offline detectScenes /
// detectScenesHistogram walk frames in order too -- tested byte-for-byte in
// tests/engine).  Both detectors (kMaxLuma and kHistogramEmd), both
// granularities, credits protection and the live-video latency bound are
// handled here and ONLY here.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/annotation.h"
#include "media/video.h"

namespace anno::telemetry {
class TraceRecorder;  // telemetry/trace.h; config holds only a pointer
}

namespace anno::core {

/// Which scene detector the annotator runs (kMaxLuma is the paper's cheap
/// heuristic; kHistogramEmd is the ablation alternative -- more sensitive,
/// ~256x the per-frame comparison cost).
enum class SceneDetector : std::uint8_t { kMaxLuma = 0, kHistogramEmd = 1 };

/// Why the engine closed a scene.  kLatencyForced is reported only when the
/// live-video bound fired and the active detector did NOT -- a cut the
/// latency policy paid for, the signal the adaptive-latency roadmap item
/// needs.  kPerFrame covers Granularity::kPerFrame (no detector consulted);
/// kEndOfStream is the flush() of the final open scene.
enum class CutReason : std::uint8_t {
  kLumaChange = 0,    ///< max-luma detector fired
  kHistogramEmd = 1,  ///< histogram-EMD detector fired
  kLatencyForced = 2, ///< maxLatencyFrames bound forced the cut
  kPerFrame = 3,      ///< per-frame granularity closes every frame
  kEndOfStream = 4,   ///< flush() closed the final scene
};
inline constexpr std::size_t kCutReasonCount = 5;

[[nodiscard]] const char* cutReasonName(CutReason reason) noexcept;

/// Everything an observer learns when a scene closes -- the engine-level
/// metrics feed (scenes/sec, cut-reason mix, latency-forced ratio,
/// histogram mass per scene) that servers and proxies export for free
/// because every annotation path runs through this one engine.
struct SceneCloseEvent {
  CutReason reason = CutReason::kEndOfStream;
  std::uint32_t firstFrame = 0;       ///< span start of the closed scene
  std::uint32_t frameCount = 0;       ///< frames in the closed scene
  std::uint64_t histogramMass = 0;    ///< accumulated luminance samples
  /// Safe-luma planning wall time; < 0 = not sampled.  The engine times
  /// planning on 1 in kPlanTimingSampleStride scene closes (engine-local
  /// stride, so sampled-event counts stay deterministic): two clock reads
  /// per scene would otherwise dominate the attached-observer budget that
  /// bench_telemetry enforces.
  double planSeconds = -1.0;
  bool creditsCapped = false;         ///< credits protection capped the budget
};

/// Plan-timing sample stride: scene closes whose engine-local index is a
/// multiple of this get planSeconds measured; the rest pass < 0.
inline constexpr std::uint32_t kPlanTimingSampleStride = 8;

/// Engine-level observer hook.  The default (nullptr on AnnotatorConfig) is
/// the null object: the engine reads no clocks and makes no calls, so an
/// unobserved engine costs exactly what it did before this interface
/// existed.  Implementations MUST be thread-safe -- the batch adapters
/// annotate multiple clips concurrently, each clip's engine invoking the
/// same observer from its own thread (telemetry::Registry instruments are
/// atomics, so the stock EngineTelemetry adapter qualifies).
class EngineObserver {
 public:
  virtual ~EngineObserver() = default;
  virtual void onSceneClosed(const SceneCloseEvent& event) = 0;
};

/// Annotator knobs (shared by every adapter; the engine interprets them).
struct AnnotatorConfig {
  SceneDetectConfig sceneDetect;
  HistogramSceneDetectConfig histogramDetect;
  SceneDetector detector = SceneDetector::kMaxLuma;
  Granularity granularity = Granularity::kPerScene;
  /// Offered quality levels, ascending.  Default: the paper's five.
  std::vector<double> qualityLevels = {0.00, 0.05, 0.10, 0.15, 0.20};
  /// End-credits protection (the paper's declared future work: the fixed
  /// clip-percent heuristic "may distort the text if too many pixels are
  /// clipped and the background is uniform").  When enabled, scenes that
  /// look like credits -- uniform dark background with a thin bright text
  /// population -- have their clip budget capped at `creditsClipCap`.
  bool protectCredits = false;
  double creditsClipCap = 0.005;
  /// Compensation backend the produced tracks target (and its knobs).  The
  /// default (kLinearGain) produces tracks byte-identical to the
  /// pre-backend format; curve-carrying backends (kHebs) make the engine
  /// derive per-scene perceived-target curves at scene close.
  compensate::BackendConfig backend;
  /// Worker threads for the profiling stage of the clip-level adapters:
  /// 1 = serial (default), 0 = one thread per hardware thread, N = exactly
  /// N threads.  Frames are profiled into per-frame slots, so output is
  /// bit-identical for any value; the engine's push loop itself is causal
  /// and always serial (per-frame work is O(histogram bins), profiling is
  /// O(pixels) -- the pool goes where the time is).
  unsigned threads = 1;
  /// Scene-close observer (telemetry hook).  Null = unobserved: zero cost,
  /// bit-identical behaviour.  Not owned; must outlive every engine built
  /// from this config and be thread-safe (see EngineObserver).
  EngineObserver* observer = nullptr;
  /// Trace recorder (telemetry/trace.h).  Null = untraced: zero cost, the
  /// same null-object contract as `observer`.  When attached the engine
  /// emits `scene` lifecycle spans (cat "engine") carrying the cut reason
  /// and planned safe luminance.  Not owned; must outlive every engine
  /// built from this config.
  telemetry::TraceRecorder* trace = nullptr;

  /// Canonical fingerprint over every PLAN-AFFECTING field: two configs
  /// with equal fingerprints produce bit-identical annotation output for
  /// every input, so the fingerprint is a safe sharing key for
  /// core::TrackCache (one cached track serves every tenant that hashes to
  /// it).  The hash covers detector, granularity, the quality ladder,
  /// credits protection, and the ACTIVE knobs only: the inactive detector's
  /// thresholds and (when protectCredits is off) creditsClipCap cannot
  /// change the plan and are excluded, so tenants differing only in dormant
  /// knobs still share.  The compensation backend kind always contributes
  /// (distinct backends must never alias in TrackCache); backend knobs
  /// contribute only under the backend they belong to
  /// (hebsEqualizationWeight under kHebs, spatialScale under
  /// kSpatialScaling).  Cosmetic fields -- threads (bit-identical by the
  /// concurrency contract), observer, trace -- never contribute.  Stable
  /// within a process AND across processes/runs (pure function of the field
  /// values; no pointers hashed), versioned internally so the encoding can
  /// evolve.  Pinned by tests/fleet/fingerprint_test.cpp's one-field
  /// perturbation property suite.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;
};

/// Credits-scene detector: dark, highly uniform background (the bulk of the
/// mass confined to a narrow dark band) plus a small-but-nonzero bright
/// population (the text strokes).
[[nodiscard]] bool looksLikeCredits(const media::Histogram& sceneHistogram);

/// Clip-safe luminance ceilings of a (scene-accumulated) histogram for each
/// quality level: safe[q] is the smallest luminance with at most
/// qualityLevels[q] of the mass strictly above it, forced non-increasing.
[[nodiscard]] std::vector<std::uint8_t> safeLumaLevels(
    const media::Histogram& sceneHistogram,
    const std::vector<double>& qualityLevels);

/// Push-based causal scene annotator.
///
/// State machine: the engine always holds one OPEN scene ([sceneStart,
/// framesSeen)).  Each push() examines the incoming frame's statistics
/// against the open scene; if the active detector declares a cut -- or the
/// latency bound forces one -- the open scene is CLOSED (histogram planned
/// into a SceneAnnotation, returned to the caller) and the incoming frame
/// opens the next scene.  flush() closes the final open scene at
/// end-of-stream.
///
/// LATENCY: a scene's annotation is only known when the scene ENDS, so a
/// streaming adapter delays each frame by its scene's remaining length.
/// For stored content that is free (the whole clip is on disk); for live
/// video (videoconferencing) set `maxLatencyFrames` to force a scene cut
/// after that many frames -- annotation delay is then bounded at the cost
/// of a few extra (identical-level, hence merged) backlight commands.  The
/// bound applies uniformly to BOTH detectors.
class AnnotationEngine {
 public:
  explicit AnnotationEngine(AnnotatorConfig cfg = {},
                            std::uint32_t maxLatencyFrames = 0);

  /// Feeds the next frame's statistics.  Returns a completed annotation
  /// when this frame *starts a new scene* (the returned annotation covers
  /// the previous scene).
  [[nodiscard]] std::optional<SceneAnnotation> push(
      const media::FrameStats& stats);

  /// Finishes the stream: returns the final open scene, if any.
  [[nodiscard]] std::optional<SceneAnnotation> flush();

  /// Rewinds to the start-of-stream state (config and bound retained), so
  /// one engine can annotate many clips back to back.
  void reset();

  [[nodiscard]] std::uint32_t framesSeen() const noexcept { return frame_; }

  /// First frame of the currently open scene (== framesSeen() right after a
  /// scene closed).  Streaming adapters use this for latency accounting.
  [[nodiscard]] std::uint32_t openSceneStart() const noexcept {
    return sceneStart_;
  }

  /// Worst-case frames a frame can wait for its scene's annotation (the
  /// live-video latency bound); 0 means unbounded (stored streaming).
  [[nodiscard]] std::uint32_t maxLatencyFrames() const noexcept {
    return maxLatencyFrames_;
  }

  [[nodiscard]] const AnnotatorConfig& config() const noexcept { return cfg_; }

 private:
  [[nodiscard]] SceneAnnotation finishScene(std::uint32_t endFrame,
                                            CutReason reason);

  AnnotatorConfig cfg_;
  std::unique_ptr<const compensate::Backend> backend_;
  std::uint32_t maxLatencyFrames_ = 0;
  std::uint32_t frame_ = 0;
  std::uint32_t sceneStart_ = 0;
  std::uint32_t closedScenes_ = 0;  ///< engine-local plan-timing sample index
  double reference_ = 0.0;     ///< kMaxLuma: running max of the open scene
  media::Histogram prevHist_;  ///< kHistogramEmd: last pushed frame's histogram
  media::Histogram sceneHist_; ///< accumulated histogram of the open scene
};

/// Per-scene emission callback for annotateStats: the closed scene plus the
/// frame index at which it closed (== stats.size() for the flush-emitted
/// final scene).  closedAt - frame is a frame's annotation latency.
using SceneCallback =
    std::function<void(const SceneAnnotation&, std::uint32_t closedAtFrame)>;

/// Drives an engine over a whole stats sequence in frame order and collects
/// the emissions into a validated AnnotationTrack -- the one track-assembly
/// routine every offline adapter and example shares.  `onScene` (optional)
/// observes each scene as it closes.
[[nodiscard]] AnnotationTrack annotateStats(
    const std::string& clipName, double fps,
    std::span<const media::FrameStats> stats, const AnnotatorConfig& cfg = {},
    std::uint32_t maxLatencyFrames = 0, const SceneCallback& onScene = {});

}  // namespace anno::core
