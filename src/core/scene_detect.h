// Scene detection from per-frame maximum luminance.
//
// Paper Sec. 4.3 / Fig. 6: "we grouped frames into scenes based on their
// maximum luminance levels: a change of 10% or more in frame maximum
// luminance level is considered a scene change, but only if it does not
// occur more frequently than a threshold interval."  Both thresholds "were
// experimentally set for minimizing visible spikes".
#pragma once

#include <cstdint>
#include <vector>

#include "media/video.h"

namespace anno::core {

/// Detector knobs.
struct SceneDetectConfig {
  /// Relative max-luminance change that constitutes a scene cut (0.10 =
  /// the paper's 10%).
  double changeThreshold = 0.10;
  /// Minimum scene length in frames (the paper's "threshold interval",
  /// which also prevents backlight flicker).  At 12 fps, 6 frames = 0.5 s.
  int minSceneFrames = 6;
};

/// A contiguous run of frames forming one scene.
struct SceneSpan {
  std::uint32_t firstFrame = 0;
  std::uint32_t frameCount = 0;

  [[nodiscard]] std::uint32_t lastFrame() const noexcept {
    return firstFrame + frameCount - 1;
  }
  friend bool operator==(const SceneSpan&, const SceneSpan&) = default;
};

/// Splits a clip into scenes given its per-frame maximum luminance trace.
/// The spans partition [0, maxLuma.size()): contiguous, non-overlapping,
/// complete.  Empty input yields no scenes.
[[nodiscard]] std::vector<SceneSpan> detectScenes(
    const std::vector<std::uint8_t>& maxLuma,
    const SceneDetectConfig& cfg = {});

/// Convenience: extracts the max-luma trace from profiled frame stats.
[[nodiscard]] std::vector<std::uint8_t> maxLumaTrace(
    const std::vector<media::FrameStats>& stats);

/// Alternative detector (ablation): cuts when the earth-mover distance
/// between consecutive frame HISTOGRAMS exceeds a threshold.  Catches
/// content changes the max-luminance heuristic misses (e.g. a cut between
/// two scenes sharing the same peak), at ~256x the per-frame comparison
/// cost -- the trade the paper's cheap heuristic makes.
struct HistogramSceneDetectConfig {
  double emdThreshold = 12.0;  ///< code-value units
  int minSceneFrames = 6;
};

[[nodiscard]] std::vector<SceneSpan> detectScenesHistogram(
    const std::vector<media::FrameStats>& stats,
    const HistogramSceneDetectConfig& cfg = {});

}  // namespace anno::core
