#include "core/engine.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace anno::core {

std::vector<std::uint8_t> safeLumaLevels(
    const media::Histogram& sceneHistogram,
    const std::vector<double>& qualityLevels) {
  if (sceneHistogram.total() == 0) {
    throw std::invalid_argument("safeLumaLevels: empty histogram");
  }
  std::vector<std::uint8_t> safeLevels;
  safeLevels.reserve(qualityLevels.size());
  std::uint8_t prev = 255;
  for (double q : qualityLevels) {
    if (q < 0.0 || q >= 1.0) {
      throw std::invalid_argument("safeLumaLevels: quality level in [0,1)");
    }
    const auto budget = static_cast<std::uint64_t>(
        q * static_cast<double>(sceneHistogram.total()));
    std::uint64_t above = 0;
    std::uint8_t safe = 0;
    for (int v = 255; v >= 1; --v) {
      above += sceneHistogram.count(v);
      if (above > budget) {
        safe = static_cast<std::uint8_t>(v);
        break;
      }
    }
    safe = std::min(safe, prev);
    prev = safe;
    safeLevels.push_back(safe);
  }
  return safeLevels;
}

bool looksLikeCredits(const media::Histogram& sceneHistogram) {
  if (sceneHistogram.total() == 0) return false;
  // Bright "text" population: sparse but present.
  const double bright = sceneHistogram.fractionAbove(180);
  if (bright < 0.002 || bright > 0.20) return false;
  // Background: dark and uniform.  The darkest 70% of the mass must sit
  // below code 70 and span a narrow band.
  const std::uint8_t p70 = sceneHistogram.quantile(0.70);
  if (p70 > 70) return false;
  const int band = sceneHistogram.quantile(0.70) -
                   sceneHistogram.quantile(0.05);
  return band <= 25;
}

AnnotationEngine::AnnotationEngine(AnnotatorConfig cfg,
                                   std::uint32_t maxLatencyFrames)
    : cfg_(std::move(cfg)), maxLatencyFrames_(maxLatencyFrames) {
  if (cfg_.qualityLevels.empty()) {
    throw std::invalid_argument("AnnotationEngine: no quality levels");
  }
  // Per-frame granularity never consults a detector, so its config is not
  // validated (matching the offline pass, which built 1-frame spans without
  // ever touching the detector).
  if (cfg_.granularity == Granularity::kPerFrame) return;
  int minSceneFrames = 0;
  if (cfg_.detector == SceneDetector::kHistogramEmd) {
    if (cfg_.histogramDetect.emdThreshold <= 0.0) {
      throw std::invalid_argument(
          "AnnotationEngine: emdThreshold must be positive");
    }
    minSceneFrames = cfg_.histogramDetect.minSceneFrames;
  } else {
    if (cfg_.sceneDetect.changeThreshold <= 0.0 ||
        cfg_.sceneDetect.changeThreshold >= 1.0) {
      throw std::invalid_argument(
          "AnnotationEngine: changeThreshold in (0,1)");
    }
    minSceneFrames = cfg_.sceneDetect.minSceneFrames;
  }
  if (minSceneFrames < 1) {
    throw std::invalid_argument("AnnotationEngine: minSceneFrames >= 1");
  }
  if (maxLatencyFrames_ != 0 &&
      maxLatencyFrames_ < static_cast<std::uint32_t>(minSceneFrames)) {
    throw std::invalid_argument(
        "AnnotationEngine: latency bound below minimum scene length");
  }
}

SceneAnnotation AnnotationEngine::finishScene(std::uint32_t endFrame) {
  SceneAnnotation sa;
  sa.span = SceneSpan{sceneStart_, endFrame - sceneStart_};
  if (cfg_.protectCredits && looksLikeCredits(sceneHist_)) {
    // Cap the budget: text strokes must not be clipped away.
    std::vector<double> capped = cfg_.qualityLevels;
    for (double& q : capped) q = std::min(q, cfg_.creditsClipCap);
    sa.safeLuma = safeLumaLevels(sceneHist_, capped);
  } else {
    sa.safeLuma = safeLumaLevels(sceneHist_, cfg_.qualityLevels);
  }
  sceneHist_ = media::Histogram{};
  sceneStart_ = endFrame;
  return sa;
}

std::optional<SceneAnnotation> AnnotationEngine::push(
    const media::FrameStats& stats) {
  std::optional<SceneAnnotation> finished;
  if (cfg_.granularity == Granularity::kPerFrame) {
    // Per-frame mode: every frame closes the previous one-frame scene
    // (no detector consulted; may flicker -- the paper's caveat).
    if (frame_ > 0) finished = finishScene(frame_);
  } else if (frame_ == 0) {
    reference_ = stats.luminance.maxLuma;
  } else {
    bool cut = false;
    // Live mode: force a cut once the latency bound is reached, even mid-
    // scene (the two chunks annotate to near-identical levels and merge in
    // the client's schedule).  Applies uniformly to both detectors.
    const bool latencyForced =
        maxLatencyFrames_ != 0 && frame_ - sceneStart_ >= maxLatencyFrames_;
    if (cfg_.detector == SceneDetector::kHistogramEmd) {
      const double emd =
          media::Histogram::earthMovers(prevHist_, stats.histogram);
      const bool longEnough =
          frame_ - sceneStart_ >=
          static_cast<std::uint32_t>(cfg_.histogramDetect.minSceneFrames);
      cut = (emd >= cfg_.histogramDetect.emdThreshold && longEnough) ||
            latencyForced;
    } else {
      const double current = stats.luminance.maxLuma;
      const double base = std::max(reference_, 1.0);
      const bool bigChange = std::abs(current - reference_) / base >=
                             cfg_.sceneDetect.changeThreshold;
      const bool longEnough =
          frame_ - sceneStart_ >=
          static_cast<std::uint32_t>(cfg_.sceneDetect.minSceneFrames);
      cut = (bigChange && longEnough) || latencyForced;
      if (cut) {
        reference_ = current;
      } else {
        // Track the scene's running max so a slow ramp within a scene
        // cannot leave annotated levels below actual content.
        reference_ = std::max(reference_, current);
      }
    }
    if (cut) finished = finishScene(frame_);
  }
  sceneHist_.accumulate(stats.histogram);
  if (cfg_.detector == SceneDetector::kHistogramEmd &&
      cfg_.granularity != Granularity::kPerFrame) {
    prevHist_ = stats.histogram;
  }
  ++frame_;
  return finished;
}

std::optional<SceneAnnotation> AnnotationEngine::flush() {
  if (frame_ == sceneStart_) return std::nullopt;
  return finishScene(frame_);
}

void AnnotationEngine::reset() {
  frame_ = 0;
  sceneStart_ = 0;
  reference_ = 0.0;
  prevHist_ = media::Histogram{};
  sceneHist_ = media::Histogram{};
}

AnnotationTrack annotateStats(const std::string& clipName, double fps,
                              std::span<const media::FrameStats> stats,
                              const AnnotatorConfig& cfg,
                              std::uint32_t maxLatencyFrames,
                              const SceneCallback& onScene) {
  if (stats.empty()) {
    throw std::invalid_argument("annotate: no frame statistics");
  }
  AnnotationTrack track;
  track.clipName = clipName;
  track.fps = fps;
  track.frameCount = static_cast<std::uint32_t>(stats.size());
  track.granularity = cfg.granularity;
  track.qualityLevels = cfg.qualityLevels;

  AnnotationEngine engine(cfg, maxLatencyFrames);
  const auto emit = [&](SceneAnnotation scene, std::uint32_t closedAt) {
    if (onScene) onScene(scene, closedAt);
    track.scenes.push_back(std::move(scene));
  };
  for (std::uint32_t i = 0; i < stats.size(); ++i) {
    if (auto scene = engine.push(stats[i])) emit(std::move(*scene), i);
  }
  if (auto scene = engine.flush()) {
    emit(std::move(*scene), static_cast<std::uint32_t>(stats.size()));
  }
  validateTrack(track);
  return track;
}

}  // namespace anno::core
