#include "core/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "media/kernels/kernels.h"
#include "telemetry/trace.h"

namespace anno::core {

const char* cutReasonName(CutReason reason) noexcept {
  switch (reason) {
    case CutReason::kLumaChange: return "luma";
    case CutReason::kHistogramEmd: return "emd";
    case CutReason::kLatencyForced: return "latency";
    case CutReason::kPerFrame: return "per_frame";
    case CutReason::kEndOfStream: return "end_of_stream";
  }
  return "unknown";
}

namespace {

/// FNV-1a 64-bit over a canonical little-endian byte feed.  The feed is a
/// pure function of the field VALUES (doubles contribute their IEEE-754 bit
/// patterns), so the fingerprint is reproducible across processes and runs.
class Fnv1a {
 public:
  void u8(std::uint8_t v) noexcept {
    h_ = (h_ ^ v) * 0x100000001b3ULL;
  }
  void u64(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i64(std::int64_t v) noexcept { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) noexcept {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    __builtin_memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;  // FNV offset basis
};

/// Bump when the set of hashed fields or their encoding changes, so stale
/// fingerprints from an older layout can never alias a newer plan.
/// v2: compensation backend (kind + its active knobs) joined the feed.
constexpr std::uint8_t kFingerprintVersion = 2;

}  // namespace

std::uint64_t AnnotatorConfig::fingerprint() const noexcept {
  Fnv1a h;
  h.u8(kFingerprintVersion);
  h.u8(static_cast<std::uint8_t>(detector));
  h.u8(static_cast<std::uint8_t>(granularity));
  // Only the ACTIVE detector's knobs steer scene cuts; hashing the dormant
  // one would needlessly split tenants that plan identically.
  switch (detector) {
    case SceneDetector::kMaxLuma:
      h.f64(sceneDetect.changeThreshold);
      h.i64(sceneDetect.minSceneFrames);
      break;
    case SceneDetector::kHistogramEmd:
      h.f64(histogramDetect.emdThreshold);
      h.i64(histogramDetect.minSceneFrames);
      break;
  }
  h.u64(qualityLevels.size());
  for (double q : qualityLevels) h.f64(q);
  h.u8(protectCredits ? 1 : 0);
  // creditsClipCap only caps budgets when protection is on.
  if (protectCredits) h.f64(creditsClipCap);
  // The backend kind always contributes -- distinct backends must never
  // alias in TrackCache -- but each knob only steers output under its own
  // backend, so (like the detectors above) dormant knobs are excluded.
  h.u8(static_cast<std::uint8_t>(backend.kind));
  switch (backend.kind) {
    case compensate::BackendKind::kLinearGain:
      break;
    case compensate::BackendKind::kHebs:
      h.f64(backend.hebsEqualizationWeight);
      break;
    case compensate::BackendKind::kSpatialScaling:
      h.f64(backend.spatialScale);
      break;
  }
  return h.value();
}

std::vector<std::uint8_t> safeLumaLevels(
    const media::Histogram& sceneHistogram,
    const std::vector<double>& qualityLevels) {
  if (sceneHistogram.total() == 0) {
    throw std::invalid_argument("safeLumaLevels: empty histogram");
  }
  std::vector<std::uint8_t> safeLevels;
  safeLevels.reserve(qualityLevels.size());
  std::uint8_t prev = 255;
  for (double q : qualityLevels) {
    if (q < 0.0 || q >= 1.0) {
      throw std::invalid_argument("safeLumaLevels: quality level in [0,1)");
    }
    const auto budget = static_cast<std::uint64_t>(
        q * static_cast<double>(sceneHistogram.total()));
    auto safe = static_cast<std::uint8_t>(media::kernels::active().tailBudgetLevel(
        sceneHistogram.counts().data(), budget));
    safe = std::min(safe, prev);
    prev = safe;
    safeLevels.push_back(safe);
  }
  return safeLevels;
}

bool looksLikeCredits(const media::Histogram& sceneHistogram) {
  if (sceneHistogram.total() == 0) return false;
  // Bright "text" population: sparse but present.
  const double bright = sceneHistogram.fractionAbove(180);
  if (bright < 0.002 || bright > 0.20) return false;
  // Background: dark and uniform.  The darkest 70% of the mass must sit
  // below code 70 and span a narrow band.
  const std::uint8_t p70 = sceneHistogram.quantile(0.70);
  if (p70 > 70) return false;
  const int band = sceneHistogram.quantile(0.70) -
                   sceneHistogram.quantile(0.05);
  return band <= 25;
}

AnnotationEngine::AnnotationEngine(AnnotatorConfig cfg,
                                   std::uint32_t maxLatencyFrames)
    : cfg_(std::move(cfg)), maxLatencyFrames_(maxLatencyFrames) {
  if (cfg_.qualityLevels.empty()) {
    throw std::invalid_argument("AnnotationEngine: no quality levels");
  }
  // Builds the compensation backend up front: validates its knobs at
  // construction (matching the detector checks below) and gives finishScene
  // a ready planner for curve-carrying backends.
  backend_ = compensate::makeBackend(cfg_.backend);
  // Per-frame granularity never consults a detector, so its config is not
  // validated (matching the offline pass, which built 1-frame spans without
  // ever touching the detector).
  if (cfg_.granularity == Granularity::kPerFrame) return;
  int minSceneFrames = 0;
  if (cfg_.detector == SceneDetector::kHistogramEmd) {
    if (cfg_.histogramDetect.emdThreshold <= 0.0) {
      throw std::invalid_argument(
          "AnnotationEngine: emdThreshold must be positive");
    }
    minSceneFrames = cfg_.histogramDetect.minSceneFrames;
  } else {
    if (cfg_.sceneDetect.changeThreshold <= 0.0 ||
        cfg_.sceneDetect.changeThreshold >= 1.0) {
      throw std::invalid_argument(
          "AnnotationEngine: changeThreshold in (0,1)");
    }
    minSceneFrames = cfg_.sceneDetect.minSceneFrames;
  }
  if (minSceneFrames < 1) {
    throw std::invalid_argument("AnnotationEngine: minSceneFrames >= 1");
  }
  if (maxLatencyFrames_ != 0 &&
      maxLatencyFrames_ < static_cast<std::uint32_t>(minSceneFrames)) {
    throw std::invalid_argument(
        "AnnotationEngine: latency bound below minimum scene length");
  }
}

SceneAnnotation AnnotationEngine::finishScene(std::uint32_t endFrame,
                                              CutReason reason) {
  // The observer path reads the clock around planning; the unobserved path
  // must stay exactly as cheap as before the hook existed, so all metrics
  // work is gated on the null check.  Plan timing is further sampled at
  // kPlanTimingSampleStride (engine-local, hence deterministic): two clock
  // reads on every close would eat most of the attached-observer budget.
  EngineObserver* const observer = cfg_.observer;
  const std::uint64_t mass = observer != nullptr ? sceneHist_.total() : 0;
  const bool samplePlan =
      observer != nullptr && closedScenes_ % kPlanTimingSampleStride == 0;
  const std::chrono::steady_clock::time_point planStart =
      samplePlan ? std::chrono::steady_clock::now()
                 : std::chrono::steady_clock::time_point{};

  SceneAnnotation sa;
  sa.span = SceneSpan{sceneStart_, endFrame - sceneStart_};
  const bool creditsCapped =
      cfg_.protectCredits && looksLikeCredits(sceneHist_);
  if (creditsCapped) {
    // Cap the budget: text strokes must not be clipped away.
    std::vector<double> capped = cfg_.qualityLevels;
    for (double& q : capped) q = std::min(q, cfg_.creditsClipCap);
    sa.safeLuma = safeLumaLevels(sceneHist_, capped);
  } else {
    sa.safeLuma = safeLumaLevels(sceneHist_, cfg_.qualityLevels);
  }
  // Curve-carrying backends (HEBS) derive their device-independent
  // perceived-target curves from the same scene histogram and (possibly
  // credits-capped) ceilings; the default backend returns nothing and this
  // is free.
  sa.perceivedCurves = backend_->annotateScene(sceneHist_, sa.safeLuma);

  if (observer != nullptr) {
    SceneCloseEvent event;
    event.reason = reason;
    event.firstFrame = sceneStart_;
    event.frameCount = endFrame - sceneStart_;
    event.histogramMass = mass;
    if (samplePlan) {
      event.planSeconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - planStart)
                              .count();
    }
    event.creditsCapped = creditsCapped;
    observer->onSceneClosed(event);
  }
  if (telemetry::TraceRecorder* const trace = cfg_.trace; trace != nullptr) {
    // Close this scene's span with the facts the paper's timeline plots
    // need (cut reason, planned ceiling at the most aggressive quality
    // level), then open the next scene's span -- the engine always holds
    // one open scene except after end-of-stream.
    trace->spanEnd(
        "scene", "engine",
        {{"first_frame", static_cast<double>(sceneStart_)},
         {"frames", static_cast<double>(endFrame - sceneStart_)},
         {"safe_luma", static_cast<double>(sa.safeLuma.back())}},
        "reason", cutReasonName(reason));
    if (reason != CutReason::kEndOfStream) {
      trace->spanBegin("scene", "engine",
                       {{"first_frame", static_cast<double>(endFrame)}});
    }
  }
  ++closedScenes_;

  sceneHist_ = media::Histogram{};
  sceneStart_ = endFrame;
  return sa;
}

std::optional<SceneAnnotation> AnnotationEngine::push(
    const media::FrameStats& stats) {
  std::optional<SceneAnnotation> finished;
  if (frame_ == 0 && cfg_.trace != nullptr) {
    // The very first frame opens the first scene; later scenes are opened
    // by finishScene as their predecessor closes.
    cfg_.trace->spanBegin("scene", "engine", {{"first_frame", 0.0}});
  }
  if (cfg_.granularity == Granularity::kPerFrame) {
    // Per-frame mode: every frame closes the previous one-frame scene
    // (no detector consulted; may flicker -- the paper's caveat).
    if (frame_ > 0) finished = finishScene(frame_, CutReason::kPerFrame);
  } else if (frame_ == 0) {
    reference_ = stats.luminance.maxLuma;
  } else {
    bool cut = false;
    // A detector-driven cut is attributed to the detector even when the
    // latency bound fired on the same frame; kLatencyForced counts only the
    // cuts the latency policy alone paid for.
    CutReason reason = CutReason::kLatencyForced;
    // Live mode: force a cut once the latency bound is reached, even mid-
    // scene (the two chunks annotate to near-identical levels and merge in
    // the client's schedule).  Applies uniformly to both detectors.
    const bool latencyForced =
        maxLatencyFrames_ != 0 && frame_ - sceneStart_ >= maxLatencyFrames_;
    if (cfg_.detector == SceneDetector::kHistogramEmd) {
      const double emd =
          media::Histogram::earthMovers(prevHist_, stats.histogram);
      const bool longEnough =
          frame_ - sceneStart_ >=
          static_cast<std::uint32_t>(cfg_.histogramDetect.minSceneFrames);
      const bool detected =
          emd >= cfg_.histogramDetect.emdThreshold && longEnough;
      if (detected) reason = CutReason::kHistogramEmd;
      cut = detected || latencyForced;
    } else {
      const double current = stats.luminance.maxLuma;
      const double base = std::max(reference_, 1.0);
      const bool bigChange = std::abs(current - reference_) / base >=
                             cfg_.sceneDetect.changeThreshold;
      const bool longEnough =
          frame_ - sceneStart_ >=
          static_cast<std::uint32_t>(cfg_.sceneDetect.minSceneFrames);
      const bool detected = bigChange && longEnough;
      if (detected) reason = CutReason::kLumaChange;
      cut = detected || latencyForced;
      if (cut) {
        reference_ = current;
      } else {
        // Track the scene's running max so a slow ramp within a scene
        // cannot leave annotated levels below actual content.
        reference_ = std::max(reference_, current);
      }
    }
    if (cut) finished = finishScene(frame_, reason);
  }
  sceneHist_.accumulate(stats.histogram);
  if (cfg_.detector == SceneDetector::kHistogramEmd &&
      cfg_.granularity != Granularity::kPerFrame) {
    prevHist_ = stats.histogram;
  }
  ++frame_;
  return finished;
}

std::optional<SceneAnnotation> AnnotationEngine::flush() {
  if (frame_ == sceneStart_) return std::nullopt;
  return finishScene(frame_, CutReason::kEndOfStream);
}

void AnnotationEngine::reset() {
  frame_ = 0;
  sceneStart_ = 0;
  closedScenes_ = 0;
  reference_ = 0.0;
  prevHist_ = media::Histogram{};
  sceneHist_ = media::Histogram{};
}

AnnotationTrack annotateStats(const std::string& clipName, double fps,
                              std::span<const media::FrameStats> stats,
                              const AnnotatorConfig& cfg,
                              std::uint32_t maxLatencyFrames,
                              const SceneCallback& onScene) {
  if (stats.empty()) {
    throw std::invalid_argument("annotate: no frame statistics");
  }
  AnnotationTrack track;
  track.clipName = clipName;
  track.fps = fps;
  track.frameCount = static_cast<std::uint32_t>(stats.size());
  track.granularity = cfg.granularity;
  track.qualityLevels = cfg.qualityLevels;
  track.backendKind = cfg.backend.kind;
  track.spatialScale =
      cfg.backend.kind == compensate::BackendKind::kSpatialScaling
          ? cfg.backend.spatialScale
          : 1.0;

  AnnotationEngine engine(cfg, maxLatencyFrames);
  const auto emit = [&](SceneAnnotation scene, std::uint32_t closedAt) {
    if (onScene) onScene(scene, closedAt);
    track.scenes.push_back(std::move(scene));
  };
  const double frameSeconds = fps > 0.0 ? 1.0 / fps : 0.0;
  for (std::uint32_t i = 0; i < stats.size(); ++i) {
    // Advance the virtual media clock so every engine event carries the
    // content timestamp alongside wall time (two-clock stamping).
    telemetry::traceSetMediaTime(cfg.trace, static_cast<double>(i) *
                                                frameSeconds);
    if (auto scene = engine.push(stats[i])) emit(std::move(*scene), i);
  }
  telemetry::traceSetMediaTime(
      cfg.trace, static_cast<double>(stats.size()) * frameSeconds);
  if (auto scene = engine.flush()) {
    emit(std::move(*scene), static_cast<std::uint32_t>(stats.size()));
  }
  telemetry::traceClearMediaTime(cfg.trace);
  validateTrack(track);
  return track;
}

}  // namespace anno::core
