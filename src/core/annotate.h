// The annotator: the offline profiling + annotation pass run at the server
// or proxy (paper Sec. 4.3, "Technique for Annotations").
//
// Pipeline: per-frame luminance profiling -> scene detection on the max-
// luminance trace -> per-scene accumulated histogram -> clip-safe luminance
// per offered quality level -> AnnotationTrack.
#pragma once

#include <span>
#include <vector>

#include "core/annotation.h"
#include "core/scene_detect.h"
#include "display/device.h"
#include "media/video.h"

namespace anno::concurrency {
class ThreadPool;
}

namespace anno::core {

/// Which scene detector the annotator runs (kMaxLuma is the paper's cheap
/// heuristic; kHistogramEmd is the ablation alternative -- more sensitive,
/// ~256x the per-frame comparison cost).
enum class SceneDetector : std::uint8_t { kMaxLuma = 0, kHistogramEmd = 1 };

/// Annotator knobs.
struct AnnotatorConfig {
  SceneDetectConfig sceneDetect;
  HistogramSceneDetectConfig histogramDetect;
  SceneDetector detector = SceneDetector::kMaxLuma;
  Granularity granularity = Granularity::kPerScene;
  /// Offered quality levels, ascending.  Default: the paper's five.
  std::vector<double> qualityLevels = {0.00, 0.05, 0.10, 0.15, 0.20};
  /// End-credits protection (the paper's declared future work: the fixed
  /// clip-percent heuristic "may distort the text if too many pixels are
  /// clipped and the background is uniform").  When enabled, scenes that
  /// look like credits -- uniform dark background with a thin bright text
  /// population -- have their clip budget capped at `creditsClipCap`.
  bool protectCredits = false;
  double creditsClipCap = 0.005;
  /// Worker threads for the profiling/annotation hot path: 1 = serial
  /// (default), 0 = one thread per hardware thread, N = exactly N threads.
  /// Output is bit-identical to the serial path for any value -- histograms
  /// are accumulated in per-chunk shards merged in frame order, and scenes /
  /// frames write into pre-sized slots (see src/concurrency/parallel.h).
  unsigned threads = 1;
};

/// Credits-scene detector: dark, highly uniform background (the bulk of the
/// mass confined to a narrow dark band) plus a small-but-nonzero bright
/// population (the text strokes).
[[nodiscard]] bool looksLikeCredits(const media::Histogram& sceneHistogram);

/// Clip-safe luminance ceilings of a (scene-accumulated) histogram for each
/// quality level: safe[q] is the smallest luminance with at most
/// qualityLevels[q] of the mass strictly above it, forced non-increasing.
[[nodiscard]] std::vector<std::uint8_t> safeLumaLevels(
    const media::Histogram& sceneHistogram,
    const std::vector<double>& qualityLevels);

/// Builds the annotation track from profiled frame statistics.
/// (Use media::profileClip to produce `stats` from a decoded clip.)
/// A non-null `pool` overrides cfg.threads (the batch path shares one pool
/// across clips); otherwise a pool is resolved from cfg.threads.
[[nodiscard]] AnnotationTrack annotate(const std::string& clipName, double fps,
                                       const std::vector<media::FrameStats>& stats,
                                       const AnnotatorConfig& cfg = {},
                                       concurrency::ThreadPool* pool = nullptr);

/// Convenience: profile + annotate a decoded clip.
[[nodiscard]] AnnotationTrack annotateClip(const media::VideoClip& clip,
                                           const AnnotatorConfig& cfg = {},
                                           concurrency::ThreadPool* pool = nullptr);

/// Batch annotation: profiles and annotates every clip over ONE pool
/// resolved from cfg.threads, parallelising across clips and, within a
/// clip, across frames and scenes (nested parallelism on the same pool is
/// deadlock-free by construction).  Tracks come back in input order and are
/// bit-identical to annotateClip(clips[i], cfg).  When `statsOut` is
/// non-null it receives the per-clip frame statistics (index-parallel to
/// the result) so callers that also need them -- e.g. the media server's
/// sketch builder -- avoid a second profiling pass.
[[nodiscard]] std::vector<AnnotationTrack> annotateClips(
    std::span<const media::VideoClip> clips, const AnnotatorConfig& cfg = {},
    std::vector<std::vector<media::FrameStats>>* statsOut = nullptr);

/// Server-side frame compensation (Sec. 4.3: "the compensation of the
/// frames in the video stream is performed at either the server or the
/// intermediary proxy node").  Applies each scene's contrast gain for the
/// chosen quality level on `device`, returning the compensated clip the
/// client will receive.  Frame count must match the track.
/// `minBacklightLevel` must match the floor the client's schedule uses
/// (negotiated in ClientCapabilities), so gains and levels stay paired.
[[nodiscard]] media::VideoClip compensateClip(const media::VideoClip& clip,
                                              const AnnotationTrack& track,
                                              std::size_t qualityIndex,
                                              const display::DeviceModel& device,
                                              int minBacklightLevel = 10);

}  // namespace anno::core
