// Offline annotation adapters: the profiling + annotation passes run at the
// server (paper Sec. 4.3, "Technique for Annotations").
//
// Pipeline: per-frame luminance profiling (parallel across frames) -> the
// causal core::AnnotationEngine pushed in frame order (scene detection,
// per-scene histogram, credits protection, safe-luma planning -- see
// core/engine.h, the single implementation every serving context shares).
#pragma once

#include <span>
#include <vector>

#include "core/annotation.h"
#include "core/engine.h"
#include "core/scene_detect.h"
#include "display/device.h"
#include "media/video.h"

namespace anno::concurrency {
class ThreadPool;
}

namespace anno::core {

/// Builds the annotation track from profiled frame statistics: a thin
/// adapter that feeds `stats` to an AnnotationEngine in frame order.
/// (Use media::profileClip to produce `stats` from a decoded clip.)
[[nodiscard]] AnnotationTrack annotate(const std::string& clipName, double fps,
                                       const std::vector<media::FrameStats>& stats,
                                       const AnnotatorConfig& cfg = {});

/// Convenience: profile + annotate a decoded clip.  Profiling runs on the
/// pool resolved from cfg.threads (or `pool` when non-null -- the batch
/// path shares one pool across clips); the engine pass is causal/serial
/// and bit-identical for any thread count.
[[nodiscard]] AnnotationTrack annotateClip(const media::VideoClip& clip,
                                           const AnnotatorConfig& cfg = {},
                                           concurrency::ThreadPool* pool = nullptr);

/// Batch annotation: profiles and annotates every clip over ONE pool
/// resolved from cfg.threads, parallelising across clips and, within a
/// clip, across frames (nested parallelism on the same pool is
/// deadlock-free by construction).  Tracks come back in input order and are
/// bit-identical to annotateClip(clips[i], cfg).  When `statsOut` is
/// non-null it receives the per-clip frame statistics (index-parallel to
/// the result) so callers that also need them -- e.g. the media server's
/// sketch builder -- avoid a second profiling pass.
[[nodiscard]] std::vector<AnnotationTrack> annotateClips(
    std::span<const media::VideoClip> clips, const AnnotatorConfig& cfg = {},
    std::vector<std::vector<media::FrameStats>>* statsOut = nullptr);

/// Server-side frame compensation (Sec. 4.3: "the compensation of the
/// frames in the video stream is performed at either the server or the
/// intermediary proxy node").  Applies each scene's contrast gain for the
/// chosen quality level on `device`, returning the compensated clip the
/// client will receive.  Frame count must match the track.
/// `minBacklightLevel` must match the floor the client's schedule uses
/// (negotiated in ClientCapabilities), so gains and levels stay paired.
[[nodiscard]] media::VideoClip compensateClip(const media::VideoClip& clip,
                                              const AnnotationTrack& track,
                                              std::size_t qualityIndex,
                                              const display::DeviceModel& device,
                                              int minBacklightLevel = 10);

}  // namespace anno::core
