// Annotation track serialization.
//
// Paper Sec. 4.3: "The annotations are RLE compressed, so the overhead is
// minimal, in the order of hundreds of bytes for our video clips which are
// on the order of a few megabytes."
//
// Layout: a small varint header (name, fps, frame count, granularity,
// quality levels), then two byte streams -- scene lengths (varints) and the
// safeLuma matrix (quality-major) -- the latter RLE-compressed: consecutive
// scenes frequently share luminance ceilings at a given quality level, so
// quality-major ordering produces the long runs RLE thrives on.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/annotation.h"

namespace anno::core {

/// Serializes a validated track.  Throws std::invalid_argument if the track
/// fails validateTrack.
[[nodiscard]] std::vector<std::uint8_t> encodeTrack(
    const AnnotationTrack& track);

/// Parses a serialized track; validates before returning.
/// Throws std::runtime_error on malformed input.
[[nodiscard]] AnnotationTrack decodeTrack(std::span<const std::uint8_t> bytes);

/// Size breakdown for the overhead experiment (Sec. 4.3 claim).
struct AnnotationSizeReport {
  std::size_t encodedBytes = 0;     ///< total serialized size
  std::size_t headerBytes = 0;      ///< name/fps/levels portion
  std::size_t sceneTableBytes = 0;  ///< span + RLE'd safeLuma portion
  std::size_t sceneCount = 0;
  std::size_t rawLumaBytes = 0;     ///< safeLuma matrix before RLE
};

[[nodiscard]] AnnotationSizeReport measureEncoding(
    const AnnotationTrack& track);

}  // namespace anno::core
