// Annotation track serialization.
//
// Paper Sec. 4.3: "The annotations are RLE compressed, so the overhead is
// minimal, in the order of hundreds of bytes for our video clips which are
// on the order of a few megabytes."
//
// Two wire formats:
//
//  - ANN0 (legacy): one monolithic blob -- varint header, scene-length
//    varints, RLE'd safeLuma matrix.  A single corrupted byte kills the
//    whole track.  Still decodable for back-compat.
//
//  - ANN1 (resilient, the default): versioned, CRC32-checksummed chunks.
//    After the magic and a version byte, the stream is a sequence of
//    self-describing chunks [type u8 | payload-length varint | crc32 u32 |
//    payload].  Chunk 1 is the header (clip metadata, quality levels, scene
//    count); chunks of type 2 each carry a *group* of up to 16 scenes
//    (first scene index, first frame, span lengths, RLE'd safeLuma,
//    quality-major within the group) and are self-locating, so damage to
//    one chunk loses only its scene-spans.  decodeTrackLenient repairs the
//    gap with conservative full-backlight scenes and reports exactly what
//    was lost; the strict decodeTrack still throws on any damage.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/annotation.h"

namespace anno::telemetry {
class Registry;
}

namespace anno::core {

/// Publishes process-wide codec telemetry into `registry`: lenient decodes
/// attempted, damaged chunks, and repair scenes/frames synthesized (the
/// TrackDamageReport totals, counted at the decoder so every consumer --
/// client demux, proxy, fault corpus -- feeds the same counters).  Detached
/// by default: the decoder then takes one branch and records nothing.
/// Attach before concurrent decoding starts; handles live in `registry`.
void attachCodecTelemetry(telemetry::Registry& registry);
void detachCodecTelemetry() noexcept;

/// Serializes a validated track in the resilient ANN1 framing.  Throws
/// std::invalid_argument if the track fails validateTrack.
[[nodiscard]] std::vector<std::uint8_t> encodeTrack(
    const AnnotationTrack& track);

/// Serializes in the legacy ANN0 framing (no per-chunk checksums); kept so
/// old streams remain producible for compatibility tests and old consumers.
[[nodiscard]] std::vector<std::uint8_t> encodeTrackLegacy(
    const AnnotationTrack& track);

/// Parses a serialized track (either framing); validates before returning.
/// Strict: throws std::runtime_error on any malformed or damaged input.
[[nodiscard]] AnnotationTrack decodeTrack(std::span<const std::uint8_t> bytes);

/// What a lenient decode had to give up on.
struct TrackDamageReport {
  bool headerIntact = false;   ///< clip metadata chunk survived
  bool legacyFormat = false;   ///< input was ANN0 (all-or-nothing decode)
  std::size_t totalChunks = 0;
  std::size_t damagedChunks = 0;  ///< CRC mismatch, short, or unparsable
  std::uint32_t damagedFrames = 0;  ///< frames whose annotations were lost
  /// Frame spans that were synthesized as conservative full-backlight
  /// scenes because their annotation chunks were damaged or missing.
  std::vector<SceneSpan> repairedSpans;

  /// True when the decode recovered the track byte-for-byte losslessly.
  [[nodiscard]] bool intact() const noexcept {
    return headerIntact && damagedChunks == 0 && repairedSpans.empty();
  }
};

/// Result of a lenient decode: `usable` means `track` passes validateTrack
/// (possibly with full-backlight repair scenes standing in for damaged
/// spans); when false, the header itself was unrecoverable and `track` is
/// default-constructed.
struct LenientDecodeResult {
  AnnotationTrack track;
  TrackDamageReport damage;
  bool usable = false;
};

/// Parses as much of a serialized track as survives corruption.  NEVER
/// throws: any input -- truncated, bit-flipped, reordered, or pure noise --
/// yields a result; damaged scene-spans come back as full-backlight repair
/// scenes (safeLuma 255 at every quality level) listed in the damage report.
[[nodiscard]] LenientDecodeResult decodeTrackLenient(
    std::span<const std::uint8_t> bytes) noexcept;

/// Size breakdown for the overhead experiment (Sec. 4.3 claim).
struct AnnotationSizeReport {
  std::size_t encodedBytes = 0;     ///< total serialized size
  std::size_t headerBytes = 0;      ///< framing + clip metadata portion
  std::size_t sceneTableBytes = 0;  ///< scene-group chunks portion
  std::size_t sceneCount = 0;
  std::size_t rawLumaBytes = 0;     ///< safeLuma matrix before RLE
};

[[nodiscard]] AnnotationSizeReport measureEncoding(
    const AnnotationTrack& track);

}  // namespace anno::core
