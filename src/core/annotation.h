// Annotation records: the data the server/proxy attaches to a video stream.
//
// Design follows the paper's deployment model (Sec. 4.3): annotations are
// DEVICE-INDEPENDENT luminance targets -- one clip-safe maximum luminance
// per scene per quality level.  "The server (or proxy node) provides a
// number of different video qualities ... same for all types of PDA clients.
// Device specific are the actual backlight levels to be set at runtime",
// derived through the device's transfer LUT either at the server after
// capability negotiation or on the client (a multiply + table lookup).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "compensate/backend.h"
#include "core/scene_detect.h"

namespace anno::core {

/// Backlight adaptation granularity (Sec. 4.3: per-frame "may introduce
/// some flicker"; per-scene is the paper's default).
enum class Granularity : std::uint8_t { kPerScene = 0, kPerFrame = 1 };

/// One annotated scene: the span plus the clip-safe maximum luminance for
/// each offered quality level (qualityLevels in AnnotationTrack).
struct SceneAnnotation {
  SceneSpan span;
  /// safeLuma[q]: luminance ceiling at quality level q; pixels brighter
  /// than this will clip after compensation.  Monotone non-increasing in q.
  std::vector<std::uint8_t> safeLuma;
  /// Per-quality perceived-target tone curves for curve-carrying backends
  /// (HEBS).  Either empty (no curves for this scene) or one canonical
  /// curve per quality level, parallel to safeLuma.  Device-independent:
  /// the map P(y) the viewer should perceive, with P(y) <= y.
  std::vector<compensate::ToneCurve> perceivedCurves;

  friend bool operator==(const SceneAnnotation&,
                         const SceneAnnotation&) = default;
};

/// The full annotation track for one clip.
struct AnnotationTrack {
  std::string clipName;
  double fps = 0.0;
  std::uint32_t frameCount = 0;
  Granularity granularity = Granularity::kPerScene;
  /// Offered quality levels (fraction of brightest pixels clipped), sorted
  /// ascending; the paper offers {0, .05, .10, .15, .20}.
  std::vector<double> qualityLevels;
  std::vector<SceneAnnotation> scenes;
  /// Compensation backend the track was produced for.  kLinearGain tracks
  /// encode exactly as before this field existed (no backend chunk).
  compensate::BackendKind backendKind = compensate::BackendKind::kLinearGain;
  /// Proxy-side resolution factor (kSpatialScaling only; 1.0 otherwise).
  double spatialScale = 1.0;

  [[nodiscard]] std::size_t qualityCount() const noexcept {
    return qualityLevels.size();
  }

  friend bool operator==(const AnnotationTrack&,
                         const AnnotationTrack&) = default;
};

/// Structural validation: spans partition [0, frameCount), every scene has
/// one safeLuma per quality level, quality levels sorted and in [0,1),
/// safeLuma non-increasing across quality levels.  Throws
/// std::invalid_argument describing the first violation.
void validateTrack(const AnnotationTrack& track);

/// Index of the scene containing `frame` (binary search).  Throws
/// std::out_of_range if frame >= frameCount.
[[nodiscard]] std::size_t sceneIndexForFrame(const AnnotationTrack& track,
                                             std::uint32_t frame);

}  // namespace anno::core
