#include "core/annotate.h"

#include <memory>
#include <stdexcept>

#include "compensate/compensate.h"
#include "compensate/planner.h"
#include "concurrency/parallel.h"
#include "concurrency/thread_pool.h"

namespace anno::core {

namespace {

/// Owns-or-borrows the pool the hot path runs on (nullptr = serial).
struct PoolHandle {
  concurrency::ThreadPool* pool = nullptr;
  std::unique_ptr<concurrency::ThreadPool> owned;
};

/// Resolves the AnnotatorConfig::threads knob: <=1 resolved threads stays
/// serial, 0 borrows the shared hardware-sized pool, otherwise a pool of
/// exactly the requested size is spun up for the call.
PoolHandle poolFor(unsigned threads) {
  if (concurrency::resolveThreads(threads) <= 1) return {};
  PoolHandle handle;
  if (threads == 0) {
    handle.pool = &concurrency::ThreadPool::shared();
  } else {
    handle.owned = std::make_unique<concurrency::ThreadPool>(threads);
    handle.pool = handle.owned.get();
  }
  return handle;
}

/// Frames per histogram shard when accumulating a scene's histogram.  MUST
/// stay independent of the thread count: shard boundaries define the merge
/// order (integer bin adds are exact, but keeping the chunking fixed makes
/// determinism structural rather than arithmetic).
constexpr std::size_t kHistogramShardFrames = 64;

}  // namespace

std::vector<std::uint8_t> safeLumaLevels(
    const media::Histogram& sceneHistogram,
    const std::vector<double>& qualityLevels) {
  if (sceneHistogram.total() == 0) {
    throw std::invalid_argument("safeLumaLevels: empty histogram");
  }
  std::vector<std::uint8_t> safeLevels;
  safeLevels.reserve(qualityLevels.size());
  std::uint8_t prev = 255;
  for (double q : qualityLevels) {
    if (q < 0.0 || q >= 1.0) {
      throw std::invalid_argument("safeLumaLevels: quality level in [0,1)");
    }
    const auto budget = static_cast<std::uint64_t>(
        q * static_cast<double>(sceneHistogram.total()));
    std::uint64_t above = 0;
    std::uint8_t safe = 0;
    for (int v = 255; v >= 1; --v) {
      above += sceneHistogram.count(v);
      if (above > budget) {
        safe = static_cast<std::uint8_t>(v);
        break;
      }
    }
    safe = std::min(safe, prev);
    prev = safe;
    safeLevels.push_back(safe);
  }
  return safeLevels;
}

bool looksLikeCredits(const media::Histogram& sceneHistogram) {
  if (sceneHistogram.total() == 0) return false;
  // Bright "text" population: sparse but present.
  const double bright = sceneHistogram.fractionAbove(180);
  if (bright < 0.002 || bright > 0.20) return false;
  // Background: dark and uniform.  The darkest 70% of the mass must sit
  // below code 70 and span a narrow band.
  const std::uint8_t p70 = sceneHistogram.quantile(0.70);
  if (p70 > 70) return false;
  const int band = sceneHistogram.quantile(0.70) -
                   sceneHistogram.quantile(0.05);
  return band <= 25;
}

AnnotationTrack annotate(const std::string& clipName, double fps,
                         const std::vector<media::FrameStats>& stats,
                         const AnnotatorConfig& cfg,
                         concurrency::ThreadPool* pool) {
  if (stats.empty()) {
    throw std::invalid_argument("annotate: no frame statistics");
  }
  if (cfg.qualityLevels.empty()) {
    throw std::invalid_argument("annotate: no quality levels");
  }
  PoolHandle handle;
  if (pool == nullptr) {
    handle = poolFor(cfg.threads);
    pool = handle.pool;
  }
  AnnotationTrack track;
  track.clipName = clipName;
  track.fps = fps;
  track.frameCount = static_cast<std::uint32_t>(stats.size());
  track.granularity = cfg.granularity;
  track.qualityLevels = cfg.qualityLevels;

  std::vector<SceneSpan> spans;
  if (cfg.granularity == Granularity::kPerFrame) {
    // Per-frame mode: every frame is its own "scene" (may flicker).
    spans.reserve(stats.size());
    for (std::uint32_t i = 0; i < stats.size(); ++i) spans.push_back({i, 1});
  } else if (cfg.detector == SceneDetector::kHistogramEmd) {
    spans = detectScenesHistogram(stats, cfg.histogramDetect);
  } else {
    spans = detectScenes(maxLumaTrace(stats), cfg.sceneDetect);
  }

  // Scenes are planned independently into pre-sized slots; within a scene
  // the histogram is accumulated in fixed-size frame shards merged in frame
  // order, so the track is identical for any thread count.
  track.scenes.resize(spans.size());
  const auto planScene = [&](std::size_t s) {
    const SceneSpan& span = spans[s];
    // Accumulate the scene's luma histogram across its frames so the clip
    // budget applies to the scene's population, not a single frame's.
    media::Histogram sceneHist = concurrency::parallelReduce(
        pool, span.frameCount, kHistogramShardFrames, media::Histogram{},
        [&](std::size_t begin, std::size_t end) {
          media::Histogram shard;
          for (std::size_t f = begin; f < end; ++f) {
            shard.accumulate(stats[span.firstFrame + f].histogram);
          }
          return shard;
        },
        [](media::Histogram& acc, media::Histogram&& shard) {
          acc.accumulate(shard);
        });
    SceneAnnotation sa;
    sa.span = span;
    if (cfg.protectCredits && looksLikeCredits(sceneHist)) {
      // Cap the budget: text strokes must not be clipped away.
      std::vector<double> capped = cfg.qualityLevels;
      for (double& q : capped) q = std::min(q, cfg.creditsClipCap);
      sa.safeLuma = safeLumaLevels(sceneHist, capped);
    } else {
      sa.safeLuma = safeLumaLevels(sceneHist, cfg.qualityLevels);
    }
    track.scenes[s] = std::move(sa);
  };
  // Scheduling-only grain (slot writes are exact for any chunking): keep
  // chunks small enough to balance, coarse enough to amortize dispatch in
  // per-frame-granularity mode where spans == frames.
  const std::size_t sceneGrain =
      pool ? std::max<std::size_t>(1, spans.size() / (8 * pool->concurrency()))
           : spans.size();
  concurrency::parallelFor(pool, spans.size(), sceneGrain,
                           [&](std::size_t begin, std::size_t end) {
                             for (std::size_t s = begin; s < end; ++s) {
                               planScene(s);
                             }
                           });
  validateTrack(track);
  return track;
}

AnnotationTrack annotateClip(const media::VideoClip& clip,
                             const AnnotatorConfig& cfg,
                             concurrency::ThreadPool* pool) {
  media::validateClip(clip);
  PoolHandle handle;
  if (pool == nullptr) {
    handle = poolFor(cfg.threads);
    pool = handle.pool;
  }
  return annotate(clip.name, clip.fps, media::profileClip(clip, pool), cfg,
                  pool);
}

std::vector<AnnotationTrack> annotateClips(
    std::span<const media::VideoClip> clips, const AnnotatorConfig& cfg,
    std::vector<std::vector<media::FrameStats>>* statsOut) {
  std::vector<AnnotationTrack> tracks(clips.size());
  if (statsOut) {
    statsOut->clear();
    statsOut->resize(clips.size());
  }
  if (clips.empty()) return tracks;
  const PoolHandle handle = poolFor(cfg.threads);
  concurrency::ThreadPool* pool = handle.pool;
  concurrency::parallelFor(
      pool, clips.size(), 1, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          media::validateClip(clips[i]);
          std::vector<media::FrameStats> stats =
              media::profileClip(clips[i], pool);
          tracks[i] = annotate(clips[i].name, clips[i].fps, stats, cfg, pool);
          if (statsOut) (*statsOut)[i] = std::move(stats);
        }
      });
  return tracks;
}

media::VideoClip compensateClip(const media::VideoClip& clip,
                                const AnnotationTrack& track,
                                std::size_t qualityIndex,
                                const display::DeviceModel& device,
                                int minBacklightLevel) {
  media::validateClip(clip);
  validateTrack(track);
  if (qualityIndex >= track.qualityLevels.size()) {
    throw std::out_of_range("compensateClip: qualityIndex out of range");
  }
  if (clip.frames.size() != track.frameCount) {
    throw std::invalid_argument(
        "compensateClip: clip frame count != track frame count");
  }
  media::VideoClip out;
  out.name = clip.name;
  out.fps = clip.fps;
  out.frames.reserve(clip.frames.size());
  for (const SceneAnnotation& scene : track.scenes) {
    const compensate::CompensationPlan plan = compensate::planForLuma(
        device, scene.safeLuma[qualityIndex], minBacklightLevel);
    for (std::uint32_t f = scene.span.firstFrame; f <= scene.span.lastFrame();
         ++f) {
      out.frames.push_back(
          compensate::contrastEnhance(clip.frames[f], plan.gainK));
    }
  }
  return out;
}

}  // namespace anno::core
