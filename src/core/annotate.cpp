#include "core/annotate.h"

#include <memory>
#include <stdexcept>

#include "compensate/backend.h"
#include "compensate/compensate.h"
#include "compensate/planner.h"
#include "concurrency/parallel.h"
#include "concurrency/thread_pool.h"
#include "core/runtime.h"

namespace anno::core {

AnnotationTrack annotate(const std::string& clipName, double fps,
                         const std::vector<media::FrameStats>& stats,
                         const AnnotatorConfig& cfg) {
  return annotateStats(clipName, fps, stats, cfg);
}

AnnotationTrack annotateClip(const media::VideoClip& clip,
                             const AnnotatorConfig& cfg,
                             concurrency::ThreadPool* pool) {
  media::validateClip(clip);
  concurrency::PoolLease lease;
  if (pool == nullptr) {
    lease = concurrency::leaseFor(cfg.threads);
    pool = lease.get();
  }
  return annotate(clip.name, clip.fps, media::profileClip(clip, pool), cfg);
}

std::vector<AnnotationTrack> annotateClips(
    std::span<const media::VideoClip> clips, const AnnotatorConfig& cfg,
    std::vector<std::vector<media::FrameStats>>* statsOut) {
  std::vector<AnnotationTrack> tracks(clips.size());
  if (statsOut) {
    statsOut->clear();
    statsOut->resize(clips.size());
  }
  if (clips.empty()) return tracks;
  const concurrency::PoolLease lease = concurrency::leaseFor(cfg.threads);
  concurrency::ThreadPool* pool = lease.get();
  concurrency::parallelFor(
      pool, clips.size(), 1, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          media::validateClip(clips[i]);
          std::vector<media::FrameStats> stats =
              media::profileClip(clips[i], pool);
          tracks[i] = annotate(clips[i].name, clips[i].fps, stats, cfg);
          if (statsOut) (*statsOut)[i] = std::move(stats);
        }
      });
  return tracks;
}

media::VideoClip compensateClip(const media::VideoClip& clip,
                                const AnnotationTrack& track,
                                std::size_t qualityIndex,
                                const display::DeviceModel& device,
                                int minBacklightLevel) {
  media::validateClip(clip);
  validateTrack(track);
  if (qualityIndex >= track.qualityLevels.size()) {
    throw std::out_of_range("compensateClip: qualityIndex out of range");
  }
  if (clip.frames.size() != track.frameCount) {
    throw std::invalid_argument(
        "compensateClip: clip frame count != track frame count");
  }
  media::VideoClip out;
  out.name = clip.name;
  out.fps = clip.fps;
  out.frames.reserve(clip.frames.size());
  const std::unique_ptr<const compensate::Backend> backend =
      backendForTrack(track);
  for (std::size_t si = 0; si < track.scenes.size(); ++si) {
    const SceneAnnotation& scene = track.scenes[si];
    const compensate::CompensationDecision decision = decideForScene(
        *backend, track, si, qualityIndex, device, minBacklightLevel);
    for (std::uint32_t f = scene.span.firstFrame; f <= scene.span.lastFrame();
         ++f) {
      out.frames.push_back(backend->apply(clip.frames[f], decision));
    }
  }
  return out;
}

}  // namespace anno::core
