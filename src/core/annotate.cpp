#include "core/annotate.h"

#include <stdexcept>

#include "compensate/compensate.h"
#include "compensate/planner.h"

namespace anno::core {

std::vector<std::uint8_t> safeLumaLevels(
    const media::Histogram& sceneHistogram,
    const std::vector<double>& qualityLevels) {
  if (sceneHistogram.total() == 0) {
    throw std::invalid_argument("safeLumaLevels: empty histogram");
  }
  std::vector<std::uint8_t> safeLevels;
  safeLevels.reserve(qualityLevels.size());
  std::uint8_t prev = 255;
  for (double q : qualityLevels) {
    if (q < 0.0 || q >= 1.0) {
      throw std::invalid_argument("safeLumaLevels: quality level in [0,1)");
    }
    const auto budget = static_cast<std::uint64_t>(
        q * static_cast<double>(sceneHistogram.total()));
    std::uint64_t above = 0;
    std::uint8_t safe = 0;
    for (int v = 255; v >= 1; --v) {
      above += sceneHistogram.count(v);
      if (above > budget) {
        safe = static_cast<std::uint8_t>(v);
        break;
      }
    }
    safe = std::min(safe, prev);
    prev = safe;
    safeLevels.push_back(safe);
  }
  return safeLevels;
}

bool looksLikeCredits(const media::Histogram& sceneHistogram) {
  if (sceneHistogram.total() == 0) return false;
  // Bright "text" population: sparse but present.
  const double bright = sceneHistogram.fractionAbove(180);
  if (bright < 0.002 || bright > 0.20) return false;
  // Background: dark and uniform.  The darkest 70% of the mass must sit
  // below code 70 and span a narrow band.
  const std::uint8_t p70 = sceneHistogram.quantile(0.70);
  if (p70 > 70) return false;
  const int band = sceneHistogram.quantile(0.70) -
                   sceneHistogram.quantile(0.05);
  return band <= 25;
}

AnnotationTrack annotate(const std::string& clipName, double fps,
                         const std::vector<media::FrameStats>& stats,
                         const AnnotatorConfig& cfg) {
  if (stats.empty()) {
    throw std::invalid_argument("annotate: no frame statistics");
  }
  if (cfg.qualityLevels.empty()) {
    throw std::invalid_argument("annotate: no quality levels");
  }
  AnnotationTrack track;
  track.clipName = clipName;
  track.fps = fps;
  track.frameCount = static_cast<std::uint32_t>(stats.size());
  track.granularity = cfg.granularity;
  track.qualityLevels = cfg.qualityLevels;

  std::vector<SceneSpan> spans;
  if (cfg.granularity == Granularity::kPerFrame) {
    // Per-frame mode: every frame is its own "scene" (may flicker).
    spans.reserve(stats.size());
    for (std::uint32_t i = 0; i < stats.size(); ++i) spans.push_back({i, 1});
  } else if (cfg.detector == SceneDetector::kHistogramEmd) {
    spans = detectScenesHistogram(stats, cfg.histogramDetect);
  } else {
    spans = detectScenes(maxLumaTrace(stats), cfg.sceneDetect);
  }

  track.scenes.reserve(spans.size());
  for (const SceneSpan& span : spans) {
    // Accumulate the scene's luma histogram across its frames so the clip
    // budget applies to the scene's population, not a single frame's.
    media::Histogram sceneHist;
    for (std::uint32_t f = span.firstFrame; f <= span.lastFrame(); ++f) {
      sceneHist.accumulate(stats[f].histogram);
    }
    SceneAnnotation sa;
    sa.span = span;
    if (cfg.protectCredits && looksLikeCredits(sceneHist)) {
      // Cap the budget: text strokes must not be clipped away.
      std::vector<double> capped = cfg.qualityLevels;
      for (double& q : capped) q = std::min(q, cfg.creditsClipCap);
      sa.safeLuma = safeLumaLevels(sceneHist, capped);
    } else {
      sa.safeLuma = safeLumaLevels(sceneHist, cfg.qualityLevels);
    }
    track.scenes.push_back(std::move(sa));
  }
  validateTrack(track);
  return track;
}

AnnotationTrack annotateClip(const media::VideoClip& clip,
                             const AnnotatorConfig& cfg) {
  media::validateClip(clip);
  return annotate(clip.name, clip.fps, media::profileClip(clip), cfg);
}

media::VideoClip compensateClip(const media::VideoClip& clip,
                                const AnnotationTrack& track,
                                std::size_t qualityIndex,
                                const display::DeviceModel& device,
                                int minBacklightLevel) {
  media::validateClip(clip);
  validateTrack(track);
  if (qualityIndex >= track.qualityLevels.size()) {
    throw std::out_of_range("compensateClip: qualityIndex out of range");
  }
  if (clip.frames.size() != track.frameCount) {
    throw std::invalid_argument(
        "compensateClip: clip frame count != track frame count");
  }
  media::VideoClip out;
  out.name = clip.name;
  out.fps = clip.fps;
  out.frames.reserve(clip.frames.size());
  for (const SceneAnnotation& scene : track.scenes) {
    const compensate::CompensationPlan plan = compensate::planForLuma(
        device, scene.safeLuma[qualityIndex], minBacklightLevel);
    for (std::uint32_t f = scene.span.firstFrame; f <= scene.span.lastFrame();
         ++f) {
      out.frames.push_back(
          compensate::contrastEnhance(clip.frames[f], plan.gainK));
    }
  }
  return out;
}

}  // namespace anno::core
