#include "core/sketch.h"

#include <cmath>
#include <stdexcept>

#include "media/bitstream.h"

namespace anno::core {

SceneSketch sketchHistogram(const media::Histogram& hist) {
  if (hist.total() == 0) {
    throw std::invalid_argument("sketchHistogram: empty histogram");
  }
  SceneSketch sketch;
  for (int bin = 0; bin < 16; ++bin) {
    std::uint64_t mass = 0;
    for (int v = bin * 16; v < (bin + 1) * 16; ++v) {
      mass += hist.count(v);
    }
    const double share =
        static_cast<double>(mass) / static_cast<double>(hist.total());
    sketch.bins[bin] = static_cast<std::uint8_t>(
        std::min(255.0, std::round(share * 255.0)));
  }
  return sketch;
}

media::Histogram expandSketch(const SceneSketch& sketch) {
  media::Histogram hist;
  for (int bin = 0; bin < 16; ++bin) {
    // Spread each bin's 16x-scaled mass uniformly over its 16 values so the
    // expanded histogram's per-value resolution stays integral.
    for (int v = bin * 16; v < (bin + 1) * 16; ++v) {
      hist.add(static_cast<std::uint8_t>(v), sketch.bins[bin]);
    }
  }
  return hist;
}

std::vector<std::uint8_t> SketchTrack::encode() const {
  media::ByteWriter w;
  w.varint(scenes.size());
  // Bin-major layout: bin b of every scene consecutively -- neighbouring
  // scenes have similar shapes, so runs form for the RLE.
  std::vector<std::uint8_t> raw;
  raw.reserve(scenes.size() * 16);
  for (int bin = 0; bin < 16; ++bin) {
    for (const SceneSketch& s : scenes) {
      raw.push_back(s.bins[bin]);
    }
  }
  const std::vector<std::uint8_t> rle = media::rleEncode(raw);
  w.varint(rle.size());
  w.bytes(rle);
  return w.take();
}

SketchTrack SketchTrack::decode(std::span<const std::uint8_t> bytes) {
  media::ByteReader r(bytes);
  SketchTrack track;
  const std::size_t nscenes = r.varint();
  const std::size_t rleLen = r.varint();
  const std::vector<std::uint8_t> raw = media::rleDecode(r.bytes(rleLen));
  if (raw.size() != nscenes * 16) {
    throw std::runtime_error("SketchTrack::decode: size mismatch");
  }
  track.scenes.resize(nscenes);
  for (int bin = 0; bin < 16; ++bin) {
    for (std::size_t s = 0; s < nscenes; ++s) {
      track.scenes[s].bins[bin] = raw[bin * nscenes + s];
    }
  }
  return track;
}

SketchTrack buildSketchTrack(const AnnotationTrack& track,
                             const std::vector<media::FrameStats>& stats) {
  validateTrack(track);
  if (stats.size() != track.frameCount) {
    throw std::invalid_argument(
        "buildSketchTrack: stats count != track frame count");
  }
  SketchTrack sketches;
  sketches.scenes.reserve(track.scenes.size());
  for (const SceneAnnotation& scene : track.scenes) {
    media::Histogram sceneHist;
    for (std::uint32_t f = scene.span.firstFrame; f <= scene.span.lastFrame();
         ++f) {
      sceneHist.accumulate(stats[f].histogram);
    }
    sketches.scenes.push_back(sketchHistogram(sceneHist));
  }
  return sketches;
}

}  // namespace anno::core
