#include "core/engine_metrics.h"

namespace anno::core {

EngineTelemetry::EngineTelemetry(telemetry::Registry& registry) {
  scenesClosed_ = &registry.counter(
      "anno_engine_scenes_closed_total", {},
      "Scenes closed by the annotation engine (all adapters)");
  frames_ = &registry.counter(
      "anno_engine_frames_total", {},
      "Frames covered by closed scenes");
  creditsCapped_ = &registry.counter(
      "anno_engine_credits_capped_total", {},
      "Scenes whose clip budget was capped by credits protection");
  for (std::size_t r = 0; r < kCutReasonCount; ++r) {
    cutReasons_[r] = &registry.counter(
        "anno_engine_scene_cuts_total",
        {{"reason", cutReasonName(static_cast<CutReason>(r))}},
        "Scene cuts by cause");
  }
  framesPerScene_ = &registry.histogram(
      "anno_engine_frames_per_scene", telemetry::countBuckets(), {},
      "Distribution of closed-scene lengths in frames");
  histogramMass_ = &registry.histogram(
      "anno_engine_scene_histogram_mass", telemetry::magnitudeBuckets(), {},
      "Accumulated luminance samples per closed scene");
  planSeconds_ = &registry.histogram(
      "anno_engine_plan_seconds", telemetry::secondsBuckets(), {},
      "Safe-luma planning wall time per closed scene");
}

void EngineTelemetry::onSceneClosed(const SceneCloseEvent& event) {
  scenesClosed_->inc();
  frames_->inc(event.frameCount);
  if (event.creditsCapped) creditsCapped_->inc();
  const auto r = static_cast<std::size_t>(event.reason);
  if (r < cutReasons_.size()) cutReasons_[r]->inc();
  framesPerScene_->observe(static_cast<double>(event.frameCount));
  histogramMass_->observe(static_cast<double>(event.histogramMass));
  // Plan timing is sampled by the engine (kPlanTimingSampleStride); an
  // unsampled close carries a negative sentinel.
  if (event.planSeconds >= 0.0) planSeconds_->observe(event.planSeconds);
}

}  // namespace anno::core
