// User-supervised annotation: regions of interest.
//
// Paper Sec. 3: annotation "can be either automated ... or under user
// supervision (for example, the user may specify which parts or objects of
// the video stream are more important in a power-quality trade-off
// scenario)."
//
// Mechanism: ROI pixels enter the scene histogram with a weight > 1, so the
// clipping budget treats one ROI pixel like `roiWeight` background pixels --
// the planner then keeps the luminance ceiling high enough to protect ROI
// highlights while still clipping unimportant background sparkle.
#pragma once

#include <span>
#include <vector>

#include "core/annotate.h"
#include "media/histogram.h"
#include "media/image.h"

namespace anno::core {

/// Axis-aligned region, inclusive-exclusive: [x0,x1) x [y0,y1).
struct RoiRect {
  int x0 = 0, y0 = 0, x1 = 0, y1 = 0;

  [[nodiscard]] bool contains(int x, int y) const noexcept {
    return x >= x0 && x < x1 && y >= y0 && y < y1;
  }
  [[nodiscard]] bool empty() const noexcept { return x1 <= x0 || y1 <= y0; }
};

/// Luma histogram where pixels inside any ROI count `roiWeight` times.
/// roiWeight must be >= 1.
[[nodiscard]] media::Histogram weightedHistogram(
    const media::Image& frame, std::span<const RoiRect> rois,
    double roiWeight);

/// Annotates a clip with static ROIs (the user's "important objects").
/// Scene detection is unchanged (max luminance is ROI-independent); only
/// the per-scene clip-safe luminance computation sees the weighting.  The
/// weighting runs as a profiling-stage hook on the pool resolved from
/// cfg.threads (bit-identical to serial for any thread count); everything
/// downstream is the shared core::AnnotationEngine.
[[nodiscard]] AnnotationTrack annotateClipWithRoi(
    const media::VideoClip& clip, std::span<const RoiRect> rois,
    double roiWeight = 8.0, const AnnotatorConfig& cfg = {});

}  // namespace anno::core
