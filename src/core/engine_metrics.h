// The stock EngineObserver -> telemetry::Registry bridge.
//
// One EngineTelemetry instance resolves every engine instrument to a handle
// at construction (label sets included -- one counter per cut reason), then
// services onSceneClosed with a handful of relaxed atomic operations.  All
// instruments are atomics, so one instance can safely observe many engines
// across threads (the batch adapters annotate clips concurrently) and the
// resulting counters are bit-deterministic for any thread count: integer
// adds commute, and the per-clip push loops themselves are causal/serial.
//
// Instrument catalog (DESIGN.md §10):
//   anno_engine_scenes_closed_total            scenes the engine emitted
//   anno_engine_frames_total                   frames covered by closed scenes
//   anno_engine_scene_cuts_total{reason=...}   luma|emd|latency|per_frame|
//                                              end_of_stream
//   anno_engine_credits_capped_total           scenes clip-capped as credits
//   anno_engine_frames_per_scene               histogram, octave buckets
//   anno_engine_scene_histogram_mass           histogram, decade buckets
//   anno_engine_plan_seconds                   safe-luma planning wall time
//                                              (sampled 1-in-8 scene closes,
//                                              see kPlanTimingSampleStride)
#pragma once

#include <array>

#include "core/engine.h"
#include "telemetry/metrics.h"

namespace anno::core {

class EngineTelemetry final : public EngineObserver {
 public:
  explicit EngineTelemetry(telemetry::Registry& registry);

  void onSceneClosed(const SceneCloseEvent& event) override;

 private:
  telemetry::Counter* scenesClosed_;
  telemetry::Counter* frames_;
  telemetry::Counter* creditsCapped_;
  std::array<telemetry::Counter*, kCutReasonCount> cutReasons_;
  telemetry::Histogram* framesPerScene_;
  telemetry::Histogram* histogramMass_;
  telemetry::Histogram* planSeconds_;
};

}  // namespace anno::core
