#include "core/anno_codec.h"

#include <cmath>
#include <stdexcept>

#include "media/bitstream.h"

namespace anno::core {
namespace {

constexpr std::uint32_t kTrackMagic = 0x414E4E30;  // "ANN0"

media::ByteWriter encodeHeader(const AnnotationTrack& track) {
  media::ByteWriter w;
  w.u32(kTrackMagic);
  w.varint(track.clipName.size());
  w.bytes(std::span(
      reinterpret_cast<const std::uint8_t*>(track.clipName.data()),
      track.clipName.size()));
  w.varint(static_cast<std::uint64_t>(std::llround(track.fps * 1000.0)));
  w.varint(track.frameCount);
  w.u8(static_cast<std::uint8_t>(track.granularity));
  w.varint(track.qualityLevels.size());
  for (double q : track.qualityLevels) {
    // Quality levels as per-mille (0..999), exact for the paper's 5% grid.
    w.varint(static_cast<std::uint64_t>(std::llround(q * 1000.0)));
  }
  return w;
}

}  // namespace

std::vector<std::uint8_t> encodeTrack(const AnnotationTrack& track) {
  validateTrack(track);
  media::ByteWriter w = encodeHeader(track);

  // Scene spans: only lengths are needed (spans are contiguous from 0).
  w.varint(track.scenes.size());
  for (const SceneAnnotation& s : track.scenes) {
    w.varint(s.span.frameCount);
  }

  // safeLuma matrix, QUALITY-major, RLE compressed: consecutive scenes at
  // the same quality level often share ceilings (e.g. repeated dark scenes),
  // so runs form along the scene axis, not across quality levels.
  std::vector<std::uint8_t> raw;
  raw.reserve(track.scenes.size() * track.qualityLevels.size());
  for (std::size_t q = 0; q < track.qualityLevels.size(); ++q) {
    for (const SceneAnnotation& s : track.scenes) {
      raw.push_back(s.safeLuma[q]);
    }
  }
  const std::vector<std::uint8_t> rle = media::rleEncode(raw);
  w.varint(rle.size());
  w.bytes(rle);
  return w.take();
}

AnnotationTrack decodeTrack(std::span<const std::uint8_t> bytes) {
  media::ByteReader r(bytes);
  if (r.u32() != kTrackMagic) {
    throw std::runtime_error("decodeTrack: bad magic");
  }
  AnnotationTrack track;
  const std::size_t nameLen = r.varint();
  auto nameBytes = r.bytes(nameLen);
  track.clipName.assign(reinterpret_cast<const char*>(nameBytes.data()),
                        nameLen);
  track.fps = static_cast<double>(r.varint()) / 1000.0;
  track.frameCount = static_cast<std::uint32_t>(r.varint());
  track.granularity = static_cast<Granularity>(r.u8());
  const std::size_t nq = r.varint();
  track.qualityLevels.reserve(nq);
  for (std::size_t i = 0; i < nq; ++i) {
    track.qualityLevels.push_back(static_cast<double>(r.varint()) / 1000.0);
  }

  const std::size_t nscenes = r.varint();
  track.scenes.resize(nscenes);
  std::uint32_t start = 0;
  for (std::size_t i = 0; i < nscenes; ++i) {
    const auto len = static_cast<std::uint32_t>(r.varint());
    track.scenes[i].span = SceneSpan{start, len};
    start += len;
  }

  const std::size_t rleLen = r.varint();
  auto rleBytes = r.bytes(rleLen);
  const std::vector<std::uint8_t> raw = media::rleDecode(rleBytes);
  if (raw.size() != nscenes * nq) {
    throw std::runtime_error("decodeTrack: safeLuma matrix size mismatch");
  }
  for (std::size_t i = 0; i < nscenes; ++i) {
    track.scenes[i].safeLuma.resize(nq);
    for (std::size_t q = 0; q < nq; ++q) {
      track.scenes[i].safeLuma[q] = raw[q * nscenes + i];
    }
  }
  try {
    validateTrack(track);
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error(std::string("decodeTrack: invalid track: ") +
                             e.what());
  }
  return track;
}

AnnotationSizeReport measureEncoding(const AnnotationTrack& track) {
  AnnotationSizeReport report;
  report.sceneCount = track.scenes.size();
  report.rawLumaBytes = track.scenes.size() * track.qualityLevels.size();
  report.headerBytes = encodeHeader(track).size();
  const std::vector<std::uint8_t> full = encodeTrack(track);
  report.encodedBytes = full.size();
  report.sceneTableBytes = report.encodedBytes - report.headerBytes;
  return report;
}

}  // namespace anno::core
