#include "core/anno_codec.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <map>
#include <stdexcept>

#include "media/bitstream.h"
#include "media/crc32.h"
#include "telemetry/metrics.h"

namespace anno::core {
namespace {

constexpr std::uint32_t kTrackMagicLegacy = 0x414E4E30;  // "ANN0"
constexpr std::uint32_t kTrackMagic = 0x414E4E31;        // "ANN1"
constexpr std::uint8_t kFormatVersion = 1;

constexpr std::uint8_t kChunkHeader = 1;
constexpr std::uint8_t kChunkSceneGroup = 2;
/// Backend identity chunk (curve-format version, backend kind, spatial
/// scale).  Written ONLY for non-default backends, so kLinearGain tracks
/// encode byte-identically to the pre-backend format -- and decoders from
/// before this chunk existed skip it via the unknown-chunk rule below.
constexpr std::uint8_t kChunkBackend = 3;
/// Per-scene-group tone curves (HEBS perceived-target curves), written only
/// when at least one scene in the group carries curves.
constexpr std::uint8_t kChunkToneCurveGroup = 4;
/// Versions the control-point encoding of tone curves inside chunks 3/4.
constexpr std::uint8_t kCurveFormatVersion = 1;

/// Scenes per group chunk: the damage blast radius.  One corrupted chunk
/// loses at most this many scene-spans; the rest of the track survives.
constexpr std::size_t kScenesPerGroup = 16;

// Sanity bounds so corrupt varints cannot drive pathological allocations
// (the "no hang" half of the robustness contract).
constexpr std::size_t kMaxNameBytes = 4096;
constexpr std::size_t kMaxQualityLevels = 256;

std::uint8_t repairLuma() { return 255; }  // full backlight: always safe

// ---------------------------------------------------------------------------
// Legacy ANN0 framing.
// ---------------------------------------------------------------------------

media::ByteWriter encodeHeaderLegacy(const AnnotationTrack& track) {
  media::ByteWriter w;
  w.u32(kTrackMagicLegacy);
  w.varint(track.clipName.size());
  w.bytes(std::span(
      reinterpret_cast<const std::uint8_t*>(track.clipName.data()),
      track.clipName.size()));
  w.varint(static_cast<std::uint64_t>(std::llround(track.fps * 1000.0)));
  w.varint(track.frameCount);
  w.u8(static_cast<std::uint8_t>(track.granularity));
  w.varint(track.qualityLevels.size());
  for (double q : track.qualityLevels) {
    // Quality levels as per-mille (0..999), exact for the paper's 5% grid.
    w.varint(static_cast<std::uint64_t>(std::llround(q * 1000.0)));
  }
  return w;
}

AnnotationTrack decodeLegacy(std::span<const std::uint8_t> bytes) {
  media::ByteReader r(bytes);
  if (r.u32() != kTrackMagicLegacy) {
    throw std::runtime_error("decodeTrack: bad magic");
  }
  AnnotationTrack track;
  const std::size_t nameLen = r.varint();
  if (nameLen > kMaxNameBytes) {
    throw std::runtime_error("decodeTrack: clip name too long");
  }
  auto nameBytes = r.bytes(nameLen);
  track.clipName.assign(reinterpret_cast<const char*>(nameBytes.data()),
                        nameLen);
  track.fps = static_cast<double>(r.varint()) / 1000.0;
  track.frameCount = static_cast<std::uint32_t>(r.varint());
  track.granularity = static_cast<Granularity>(r.u8());
  const std::size_t nq = r.varint();
  if (nq > kMaxQualityLevels) {
    throw std::runtime_error("decodeTrack: too many quality levels");
  }
  track.qualityLevels.reserve(nq);
  for (std::size_t i = 0; i < nq; ++i) {
    track.qualityLevels.push_back(static_cast<double>(r.varint()) / 1000.0);
  }

  const std::size_t nscenes = r.varint();
  // Each scene needs at least one span byte; anything larger is corrupt.
  if (nscenes > r.remaining()) {
    throw std::runtime_error("decodeTrack: scene count exceeds payload");
  }
  track.scenes.resize(nscenes);
  std::uint32_t start = 0;
  for (std::size_t i = 0; i < nscenes; ++i) {
    const auto len = static_cast<std::uint32_t>(r.varint());
    track.scenes[i].span = SceneSpan{start, len};
    start += len;
  }

  const std::size_t rleLen = r.varint();
  auto rleBytes = r.bytes(rleLen);
  const std::vector<std::uint8_t> raw =
      media::rleDecode(rleBytes, nscenes * nq);
  if (raw.size() != nscenes * nq) {
    throw std::runtime_error("decodeTrack: safeLuma matrix size mismatch");
  }
  for (std::size_t i = 0; i < nscenes; ++i) {
    track.scenes[i].safeLuma.resize(nq);
    for (std::size_t q = 0; q < nq; ++q) {
      track.scenes[i].safeLuma[q] = raw[q * nscenes + i];
    }
  }
  try {
    validateTrack(track);
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error(std::string("decodeTrack: invalid track: ") +
                             e.what());
  }
  return track;
}

// ---------------------------------------------------------------------------
// Resilient ANN1 framing.
// ---------------------------------------------------------------------------

void writeChunk(media::ByteWriter& w, std::uint8_t type,
                std::span<const std::uint8_t> payload) {
  w.u8(type);
  w.varint(payload.size());
  w.u32(media::crc32(payload));
  w.bytes(payload);
}

std::vector<std::uint8_t> headerChunkPayload(const AnnotationTrack& track) {
  media::ByteWriter w;
  w.varint(track.clipName.size());
  w.bytes(std::span(
      reinterpret_cast<const std::uint8_t*>(track.clipName.data()),
      track.clipName.size()));
  w.varint(static_cast<std::uint64_t>(std::llround(track.fps * 1000.0)));
  w.varint(track.frameCount);
  w.u8(static_cast<std::uint8_t>(track.granularity));
  w.varint(track.qualityLevels.size());
  for (double q : track.qualityLevels) {
    w.varint(static_cast<std::uint64_t>(std::llround(q * 1000.0)));
  }
  w.varint(track.scenes.size());
  return w.take();
}

std::vector<std::uint8_t> sceneGroupPayload(const AnnotationTrack& track,
                                            std::size_t firstScene,
                                            std::size_t count) {
  media::ByteWriter w;
  w.varint(firstScene);
  w.varint(count);
  w.varint(track.scenes[firstScene].span.firstFrame);
  for (std::size_t i = 0; i < count; ++i) {
    w.varint(track.scenes[firstScene + i].span.frameCount);
  }
  // safeLuma, quality-major WITHIN the group, RLE'd: runs still form along
  // the scene axis (repeated dark scenes), just bounded by the group.
  std::vector<std::uint8_t> raw;
  raw.reserve(count * track.qualityLevels.size());
  for (std::size_t q = 0; q < track.qualityLevels.size(); ++q) {
    for (std::size_t i = 0; i < count; ++i) {
      raw.push_back(track.scenes[firstScene + i].safeLuma[q]);
    }
  }
  const std::vector<std::uint8_t> rle = media::rleEncode(raw);
  w.varint(rle.size());
  w.bytes(rle);
  return w.take();
}

std::vector<std::uint8_t> backendChunkPayload(const AnnotationTrack& track) {
  media::ByteWriter w;
  w.u8(kCurveFormatVersion);
  w.u8(static_cast<std::uint8_t>(track.backendKind));
  // Spatial scale as per-mille: exact for the sensible grid, 1 byte varint.
  w.varint(static_cast<std::uint64_t>(
      std::llround(track.spatialScale * 1000.0)));
  return w.take();
}

[[nodiscard]] bool groupHasCurves(const AnnotationTrack& track,
                                  std::size_t firstScene, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    if (!track.scenes[firstScene + i].perceivedCurves.empty()) return true;
  }
  return false;
}

std::vector<std::uint8_t> toneCurveGroupPayload(const AnnotationTrack& track,
                                                std::size_t firstScene,
                                                std::size_t count) {
  media::ByteWriter w;
  w.varint(firstScene);
  w.varint(count);
  w.varint(compensate::kCurveControlPoints);
  std::uint64_t mask = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (!track.scenes[firstScene + i].perceivedCurves.empty()) {
      mask |= std::uint64_t{1} << i;
    }
  }
  w.varint(mask);
  // Control points, quality-major then present-scene-major, RLE'd: adjacent
  // scenes' curves at one quality level are often near-identical, so runs
  // form along the scene axis like the safeLuma matrix above.
  std::vector<std::uint8_t> raw;
  for (std::size_t q = 0; q < track.qualityLevels.size(); ++q) {
    for (std::size_t i = 0; i < count; ++i) {
      const SceneAnnotation& s = track.scenes[firstScene + i];
      if (s.perceivedCurves.empty()) continue;
      const auto pts = compensate::curveToControlPoints(s.perceivedCurves[q]);
      raw.insert(raw.end(), pts.begin(), pts.end());
    }
  }
  const std::vector<std::uint8_t> rle = media::rleEncode(raw);
  w.varint(rle.size());
  w.bytes(rle);
  return w.take();
}

/// A parsed, CRC-verified tone-curve-group chunk (curves still RLE'd; the
/// quality count lives in the header chunk).
struct CurveGroup {
  std::size_t firstScene = 0;
  std::size_t sceneCount = 0;
  std::uint64_t presenceMask = 0;
  std::vector<std::uint8_t> rleCurves;
};

CurveGroup parseCurveGroup(std::span<const std::uint8_t> payload) {
  media::ByteReader r(payload);
  CurveGroup g;
  g.firstScene = r.varint();
  g.sceneCount = r.varint();
  if (g.sceneCount == 0 || g.sceneCount > kScenesPerGroup) {
    throw std::runtime_error("curve group: bad scene count");
  }
  if (r.varint() != compensate::kCurveControlPoints) {
    throw std::runtime_error("curve group: unknown control-point count");
  }
  g.presenceMask = r.varint();
  if (g.presenceMask >> g.sceneCount != 0) {
    throw std::runtime_error("curve group: presence mask exceeds group");
  }
  const std::size_t rleLen = r.varint();
  auto rle = r.bytes(rleLen);
  g.rleCurves.assign(rle.begin(), rle.end());
  if (!r.atEnd()) {
    throw std::runtime_error("curve group: trailing payload bytes");
  }
  return g;
}

/// A parsed, CRC-verified backend chunk.
struct BackendInfo {
  compensate::BackendKind kind = compensate::BackendKind::kLinearGain;
  double spatialScale = 1.0;
};

BackendInfo parseBackendChunk(std::span<const std::uint8_t> payload) {
  media::ByteReader r(payload);
  if (r.u8() != kCurveFormatVersion) {
    throw std::runtime_error("backend chunk: unknown curve format version");
  }
  const std::uint8_t raw = r.u8();
  if (!compensate::isKnownBackendKind(raw)) {
    throw std::runtime_error("backend chunk: unknown backend kind");
  }
  BackendInfo info;
  info.kind = static_cast<compensate::BackendKind>(raw);
  const std::uint64_t perMille = r.varint();
  if (perMille == 0 || perMille > 1000) {
    throw std::runtime_error("backend chunk: spatial scale out of range");
  }
  info.spatialScale = static_cast<double>(perMille) / 1000.0;
  if (!r.atEnd()) {
    throw std::runtime_error("backend chunk: trailing payload bytes");
  }
  return info;
}

/// A parsed, CRC-verified scene-group chunk (luma still RLE'd: the quality
/// count needed to unpack it lives in the header chunk).
struct SceneGroup {
  std::size_t firstScene = 0;
  std::size_t sceneCount = 0;
  std::uint32_t firstFrame = 0;
  std::vector<std::uint32_t> spanLengths;
  std::vector<std::uint8_t> rleLuma;
};

SceneGroup parseSceneGroup(std::span<const std::uint8_t> payload) {
  media::ByteReader r(payload);
  SceneGroup g;
  g.firstScene = r.varint();
  g.sceneCount = r.varint();
  if (g.sceneCount == 0 || g.sceneCount > kScenesPerGroup) {
    throw std::runtime_error("scene group: bad scene count");
  }
  g.firstFrame = static_cast<std::uint32_t>(r.varint());
  g.spanLengths.reserve(g.sceneCount);
  for (std::size_t i = 0; i < g.sceneCount; ++i) {
    g.spanLengths.push_back(static_cast<std::uint32_t>(r.varint()));
  }
  const std::size_t rleLen = r.varint();
  auto rle = r.bytes(rleLen);
  g.rleLuma.assign(rle.begin(), rle.end());
  if (!r.atEnd()) {
    throw std::runtime_error("scene group: trailing payload bytes");
  }
  return g;
}

struct ParsedHeader {
  AnnotationTrack shell;  ///< metadata only, scenes empty
  std::size_t sceneCount = 0;
};

ParsedHeader parseHeader(std::span<const std::uint8_t> payload) {
  media::ByteReader r(payload);
  ParsedHeader h;
  const std::size_t nameLen = r.varint();
  if (nameLen > kMaxNameBytes) {
    throw std::runtime_error("header: clip name too long");
  }
  auto nameBytes = r.bytes(nameLen);
  h.shell.clipName.assign(reinterpret_cast<const char*>(nameBytes.data()),
                          nameLen);
  h.shell.fps = static_cast<double>(r.varint()) / 1000.0;
  h.shell.frameCount = static_cast<std::uint32_t>(r.varint());
  h.shell.granularity = static_cast<Granularity>(r.u8());
  const std::size_t nq = r.varint();
  if (nq > kMaxQualityLevels) {
    throw std::runtime_error("header: too many quality levels");
  }
  h.shell.qualityLevels.reserve(nq);
  for (std::size_t i = 0; i < nq; ++i) {
    h.shell.qualityLevels.push_back(static_cast<double>(r.varint()) / 1000.0);
  }
  h.sceneCount = r.varint();
  if (!r.atEnd()) {
    throw std::runtime_error("header: trailing payload bytes");
  }
  return h;
}

SceneAnnotation repairScene(std::uint32_t firstFrame, std::uint32_t frames,
                            std::size_t nq) {
  SceneAnnotation s;
  s.span = SceneSpan{firstFrame, frames};
  s.safeLuma.assign(nq, repairLuma());
  return s;
}

LenientDecodeResult decodeResilientLenient(
    std::span<const std::uint8_t> bytes) {
  LenientDecodeResult out;
  TrackDamageReport& dmg = out.damage;

  media::ByteReader r(bytes);
  (void)r.u32();  // magic, checked by caller
  if (r.u8() != kFormatVersion) {
    return out;  // unknown layout: nothing can be trusted
  }

  bool haveHeader = false;
  ParsedHeader header;
  std::vector<SceneGroup> groups;
  bool haveBackend = false;
  BackendInfo backendInfo;
  std::vector<CurveGroup> curveGroups;
  while (!r.atEnd()) {
    std::uint8_t type = 0;
    std::uint64_t len = 0;
    std::uint32_t crc = 0;
    try {
      type = r.u8();
      len = r.varint();
      crc = r.u32();
    } catch (const std::exception&) {
      ++dmg.totalChunks;
      ++dmg.damagedChunks;
      break;  // truncated framing: nothing after this is locatable
    }
    ++dmg.totalChunks;
    if (len > r.remaining()) {
      ++dmg.damagedChunks;
      break;  // length field points past the buffer
    }
    auto payload = r.bytes(static_cast<std::size_t>(len));
    if (media::crc32(payload) != crc) {
      ++dmg.damagedChunks;
      continue;  // damaged chunk; framing stays aligned, keep scanning
    }
    try {
      if (type == kChunkHeader) {
        if (!haveHeader) {
          header = parseHeader(payload);
          haveHeader = true;
        }
      } else if (type == kChunkSceneGroup) {
        groups.push_back(parseSceneGroup(payload));
      } else if (type == kChunkBackend) {
        if (!haveBackend) {
          backendInfo = parseBackendChunk(payload);
          haveBackend = true;
        }
      } else if (type == kChunkToneCurveGroup) {
        curveGroups.push_back(parseCurveGroup(payload));
      }
      // Unknown chunk types with a valid CRC are skipped (forward compat).
    } catch (const std::exception&) {
      ++dmg.damagedChunks;
    }
  }

  if (!haveHeader) {
    return out;  // no metadata: no frame count, no quality levels -- unusable
  }
  dmg.headerIntact = true;

  const std::size_t nq = header.shell.qualityLevels.size();
  std::stable_sort(groups.begin(), groups.end(),
                   [](const SceneGroup& a, const SceneGroup& b) {
                     return a.firstScene < b.firstScene;
                   });

  AnnotationTrack track = header.shell;
  if (haveBackend) {
    // A damaged (hence absent) backend chunk leaves the safe default:
    // kLinearGain ignores any curves, and curve-carrying scenes without a
    // usable backend annotation render at full backlight downstream.
    track.backendKind = backendInfo.kind;
    track.spatialScale = backendInfo.spatialScale;
  }
  // Curve groups pair with scene groups by firstScene (keep-first on
  // duplicate delivery, matching the scene-group rule).
  std::map<std::size_t, const CurveGroup*> curveByFirstScene;
  for (const CurveGroup& cg : curveGroups) {
    curveByFirstScene.insert({cg.firstScene, &cg});
  }
  std::uint32_t cursorFrame = 0;
  std::size_t cursorScene = 0;
  const auto repairGapTo = [&](std::uint32_t frame) {
    if (frame <= cursorFrame) return;
    const SceneAnnotation s =
        repairScene(cursorFrame, frame - cursorFrame, nq);
    dmg.repairedSpans.push_back(s.span);
    dmg.damagedFrames += s.span.frameCount;
    track.scenes.push_back(s);
    cursorFrame = frame;
  };
  for (const SceneGroup& g : groups) {
    if (g.firstScene < cursorScene) continue;  // duplicate delivery
    if (g.firstFrame < cursorFrame) continue;  // overlaps covered frames
    // Unpack the luma matrix; a size mismatch against the header's quality
    // count means header and group disagree -- treat the group as damaged.
    std::vector<std::uint8_t> raw;
    try {
      raw = media::rleDecode(g.rleLuma, g.sceneCount * nq);
    } catch (const std::exception&) {
      ++dmg.damagedChunks;
      continue;
    }
    if (raw.size() != g.sceneCount * nq) {
      ++dmg.damagedChunks;
      continue;
    }
    // Unpack this group's tone curves, if an intact curve chunk matches.
    // Damage here never rejects the scene group: the scenes keep empty
    // perceivedCurves and curve-carrying backends fall back to full
    // backlight for them (the client cannot reconstruct the curve).
    const CurveGroup* curves = nullptr;
    std::vector<std::uint8_t> curveRaw;
    if (const auto cit = curveByFirstScene.find(g.firstScene);
        cit != curveByFirstScene.end() &&
        cit->second->sceneCount == g.sceneCount) {
      const CurveGroup& cg = *cit->second;
      const std::size_t present =
          static_cast<std::size_t>(std::popcount(cg.presenceMask));
      const std::size_t want =
          present * nq * compensate::kCurveControlPoints;
      try {
        curveRaw = media::rleDecode(cg.rleCurves, want);
      } catch (const std::exception&) {
        curveRaw.clear();
      }
      if (curveRaw.size() == want && present > 0) {
        curves = &cg;
      } else {
        ++dmg.damagedChunks;
      }
    }
    repairGapTo(g.firstFrame);
    std::uint32_t frame = g.firstFrame;
    for (std::size_t i = 0; i < g.sceneCount; ++i) {
      SceneAnnotation s;
      s.span = SceneSpan{frame, g.spanLengths[i]};
      s.safeLuma.resize(nq);
      for (std::size_t q = 0; q < nq; ++q) {
        s.safeLuma[q] = raw[q * g.sceneCount + i];
      }
      if (curves != nullptr && (curves->presenceMask >> i & 1) != 0) {
        const auto present =
            static_cast<std::size_t>(std::popcount(curves->presenceMask));
        const auto rank = static_cast<std::size_t>(std::popcount(
            curves->presenceMask & ((std::uint64_t{1} << i) - 1)));
        s.perceivedCurves.reserve(nq);
        for (std::size_t q = 0; q < nq; ++q) {
          const std::size_t off =
              (q * present + rank) * compensate::kCurveControlPoints;
          s.perceivedCurves.push_back(compensate::curveFromControlPoints(
              std::span(curveRaw.data() + off,
                        compensate::kCurveControlPoints)));
        }
      }
      frame += g.spanLengths[i];
      track.scenes.push_back(std::move(s));
    }
    cursorFrame = frame;
    cursorScene = g.firstScene + g.sceneCount;
  }
  repairGapTo(track.frameCount);

  try {
    validateTrack(track);
  } catch (const std::exception&) {
    return out;  // inconsistent survivors (forged CRC class): unusable
  }
  out.track = std::move(track);
  out.usable = true;
  return out;
}

std::uint32_t peekMagic(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 4) return 0;
  return static_cast<std::uint32_t>(bytes[0]) |
         (static_cast<std::uint32_t>(bytes[1]) << 8) |
         (static_cast<std::uint32_t>(bytes[2]) << 16) |
         (static_cast<std::uint32_t>(bytes[3]) << 24);
}

}  // namespace

std::vector<std::uint8_t> encodeTrack(const AnnotationTrack& track) {
  validateTrack(track);
  media::ByteWriter w;
  w.u32(kTrackMagic);
  w.u8(kFormatVersion);
  writeChunk(w, kChunkHeader, headerChunkPayload(track));
  // Backend identity only when it deviates from the default, so linear
  // tracks stay byte-identical to the pre-backend format.
  if (track.backendKind != compensate::BackendKind::kLinearGain ||
      track.spatialScale != 1.0) {
    writeChunk(w, kChunkBackend, backendChunkPayload(track));
  }
  for (std::size_t first = 0; first < track.scenes.size();
       first += kScenesPerGroup) {
    const std::size_t count =
        std::min(kScenesPerGroup, track.scenes.size() - first);
    writeChunk(w, kChunkSceneGroup, sceneGroupPayload(track, first, count));
    if (groupHasCurves(track, first, count)) {
      writeChunk(w, kChunkToneCurveGroup,
                 toneCurveGroupPayload(track, first, count));
    }
  }
  return w.take();
}

std::vector<std::uint8_t> encodeTrackLegacy(const AnnotationTrack& track) {
  validateTrack(track);
  media::ByteWriter w = encodeHeaderLegacy(track);

  // Scene spans: only lengths are needed (spans are contiguous from 0).
  w.varint(track.scenes.size());
  for (const SceneAnnotation& s : track.scenes) {
    w.varint(s.span.frameCount);
  }

  // safeLuma matrix, QUALITY-major, RLE compressed: consecutive scenes at
  // the same quality level often share ceilings (e.g. repeated dark scenes),
  // so runs form along the scene axis, not across quality levels.
  std::vector<std::uint8_t> raw;
  raw.reserve(track.scenes.size() * track.qualityLevels.size());
  for (std::size_t q = 0; q < track.qualityLevels.size(); ++q) {
    for (const SceneAnnotation& s : track.scenes) {
      raw.push_back(s.safeLuma[q]);
    }
  }
  const std::vector<std::uint8_t> rle = media::rleEncode(raw);
  w.varint(rle.size());
  w.bytes(rle);
  return w.take();
}

AnnotationTrack decodeTrack(std::span<const std::uint8_t> bytes) {
  if (peekMagic(bytes) == kTrackMagicLegacy) {
    return decodeLegacy(bytes);
  }
  if (peekMagic(bytes) != kTrackMagic) {
    throw std::runtime_error("decodeTrack: bad magic");
  }
  LenientDecodeResult lenient = decodeResilientLenient(bytes);
  if (!lenient.usable || !lenient.damage.intact()) {
    throw std::runtime_error("decodeTrack: damaged track (" +
                             std::to_string(lenient.damage.damagedChunks) +
                             " of " +
                             std::to_string(lenient.damage.totalChunks) +
                             " chunks)");
  }
  return std::move(lenient.track);
}

namespace {

/// Process-wide codec telemetry handles, published once by
/// attachCodecTelemetry.  Hot paths read one atomic pointer; detached
/// (nullptr) costs a single branch.
struct CodecTelemetry {
  telemetry::Counter* lenientDecodes = nullptr;
  telemetry::Counter* damagedChunks = nullptr;
  telemetry::Counter* repairedScenes = nullptr;
  telemetry::Counter* repairedFrames = nullptr;
};
std::atomic<const CodecTelemetry*> g_codecTelemetry{nullptr};

LenientDecodeResult decodeTrackLenientImpl(
    std::span<const std::uint8_t> bytes) noexcept {
  try {
    if (peekMagic(bytes) == kTrackMagicLegacy) {
      // Legacy framing has no per-chunk checksums: all-or-nothing.
      LenientDecodeResult out;
      out.damage.legacyFormat = true;
      out.damage.totalChunks = 1;
      try {
        out.track = decodeLegacy(bytes);
        out.damage.headerIntact = true;
        out.usable = true;
      } catch (const std::exception&) {
        out.damage.damagedChunks = 1;
      }
      return out;
    }
    if (peekMagic(bytes) != kTrackMagic) {
      return {};  // unrecognized framing: unusable, zero chunks seen
    }
    return decodeResilientLenient(bytes);
  } catch (...) {
    return {};  // belt and braces: lenient decode must never throw
  }
}

}  // namespace

void attachCodecTelemetry(telemetry::Registry& registry) {
  static CodecTelemetry block;
  block.lenientDecodes = &registry.counter(
      "anno_codec_lenient_decodes_total", {},
      "Lenient annotation-track decodes attempted");
  block.damagedChunks = &registry.counter(
      "anno_codec_damaged_chunks_total", {},
      "Track chunks lost to CRC mismatch, truncation, or parse failure");
  block.repairedScenes = &registry.counter(
      "anno_codec_repaired_scenes_total", {},
      "Full-backlight repair scenes synthesized for damaged spans");
  block.repairedFrames = &registry.counter(
      "anno_codec_repaired_frames_total", {},
      "Frames whose annotations were replaced by repair scenes");
  g_codecTelemetry.store(&block, std::memory_order_release);
}

void detachCodecTelemetry() noexcept {
  g_codecTelemetry.store(nullptr, std::memory_order_release);
}

LenientDecodeResult decodeTrackLenient(
    std::span<const std::uint8_t> bytes) noexcept {
  LenientDecodeResult out = decodeTrackLenientImpl(bytes);
  if (const CodecTelemetry* m =
          g_codecTelemetry.load(std::memory_order_acquire)) {
    telemetry::inc(m->lenientDecodes);
    telemetry::inc(m->damagedChunks, out.damage.damagedChunks);
    telemetry::inc(m->repairedScenes, out.damage.repairedSpans.size());
    telemetry::inc(m->repairedFrames, out.damage.damagedFrames);
  }
  return out;
}

AnnotationSizeReport measureEncoding(const AnnotationTrack& track) {
  AnnotationSizeReport report;
  report.sceneCount = track.scenes.size();
  report.rawLumaBytes = track.scenes.size() * track.qualityLevels.size();
  // Magic + version + framed header chunk (type + length varint + crc).
  const std::vector<std::uint8_t> hp = headerChunkPayload(track);
  std::size_t lenVarint = 1;
  for (std::uint64_t v = hp.size(); v >= 0x80; v >>= 7) ++lenVarint;
  report.headerBytes = 4 + 1 + 1 + lenVarint + 4 + hp.size();
  const std::vector<std::uint8_t> full = encodeTrack(track);
  report.encodedBytes = full.size();
  report.sceneTableBytes = report.encodedBytes - report.headerBytes;
  return report;
}

}  // namespace anno::core
