// Client-side annotation runtime.
//
// Paper Sec. 4.3: "The only extra operation that the device has to perform
// during playback is to adjust the backlight level periodically, according
// to the annotations in the video stream" -- per scene, a "simple
// multiplication, followed by a table look-up" against the device's
// backlight-luminance transfer LUT.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "compensate/backend.h"
#include "core/annotation.h"
#include "display/device.h"

namespace anno::core {

/// One backlight change command.
struct BacklightCommand {
  std::uint32_t frame = 0;        ///< effective from this frame onward
  std::uint8_t level = 255;       ///< software backlight level
  double gainK = 1.0;             ///< gain the stream was compensated with
  /// Device-scaled pixel tone curve for curve-carrying backends (HEBS);
  /// null for the linear default (apply gainK instead).
  std::shared_ptr<const compensate::ToneCurve> toneCurve;
};

/// The full per-clip backlight schedule for one quality level on one device.
struct BacklightSchedule {
  std::vector<BacklightCommand> commands;  ///< sorted by frame, deduplicated
  std::uint32_t frameCount = 0;

  /// Level in effect at `frame` (binary search).
  [[nodiscard]] std::uint8_t levelAt(std::uint32_t frame) const;

  /// Gain in effect at `frame`.
  [[nodiscard]] double gainAt(std::uint32_t frame) const;

  /// Tone curve in effect at `frame` (null outside curve-carrying spans).
  [[nodiscard]] std::shared_ptr<const compensate::ToneCurve> curveAt(
      std::uint32_t frame) const;

  /// Number of backlight *changes* during playback (flicker proxy; the
  /// initial set is not counted).
  [[nodiscard]] std::size_t switchCount() const noexcept {
    return commands.empty() ? 0 : commands.size() - 1;
  }
};

/// Reconstructs the compensation backend a decoded track was produced for
/// (kind + spatial scale; server-only knobs like the HEBS equalization
/// weight are baked into the shipped curves and not needed at decode time).
[[nodiscard]] std::unique_ptr<const compensate::Backend> backendForTrack(
    const AnnotationTrack& track);

/// The single decision routine every consumer of a decoded track shares
/// (buildSchedule, compensateClip, the proxy render, the adaptive player):
/// resolves scene `sceneIndex` at `qualityIndex` on `device` through the
/// track's backend.  Curve-carrying backends receive the scene's perceived
/// curve when present; when absent (legacy track, damaged curve chunk) they
/// return the full-backlight decision.
[[nodiscard]] compensate::CompensationDecision decideForScene(
    const compensate::Backend& backend, const AnnotationTrack& track,
    std::size_t sceneIndex, std::size_t qualityIndex,
    const display::DeviceModel& device, int minBacklightLevel = 10);

/// Maps an annotation track onto a device: for each scene, safeLuma ->
/// target relative luminance (the multiplication) -> minimum backlight
/// level (the table lookup).  Consecutive scenes resolving to the same
/// level are merged, which is how the annotation scheme "avoids a
/// postprocessing step by limiting backlight changes".  Curve-carrying
/// tracks (HEBS) attach the device-scaled pixel curve to each command;
/// merging then also requires an identical curve.
[[nodiscard]] BacklightSchedule buildSchedule(const AnnotationTrack& track,
                                              std::size_t qualityIndex,
                                              const display::DeviceModel& device,
                                              int minBacklightLevel = 10);

/// Conservative degradation schedule: full backlight (level 255, gain 1)
/// for the whole clip.  What the client programs when the stream carries no
/// usable annotations -- exactly the paper's non-annotated baseline, so the
/// worst failure mode costs power, never correctness.
[[nodiscard]] BacklightSchedule fullBacklightSchedule(std::uint32_t frameCount);

/// Bounds the per-frame backlight level delta of a schedule (flicker
/// control at repair boundaries).  The result is the LOWEST schedule that
/// (a) never drops below the input schedule's level at any frame -- dimming
/// below the planned level could clip compensated pixels, brightening above
/// it never can -- and (b) changes by at most `maxDeltaPerFrame` levels
/// between consecutive frames.  Brightening is therefore anticipated (the
/// ramp ends as the brighter span begins) and dimming is spread out after
/// the boundary.  Gains are carried over from the input schedule unchanged
/// (the gain belongs to the content the server compensated, not to the
/// level the client happens to hold during a ramp).
/// `maxDeltaPerFrame == 0` disables limiting (returns the input).
/// `clampedFrames` (optional) receives the number of frames whose level the
/// limiter had to raise above the input schedule -- 0 means the schedule
/// was already within the slew bound (the client telemetry signal for how
/// often repair boundaries actually flickered).
[[nodiscard]] BacklightSchedule limitSlewRate(const BacklightSchedule& schedule,
                                              std::uint8_t maxDeltaPerFrame,
                                              std::size_t* clampedFrames = nullptr);

/// Rough operation count of building + executing the schedule on the client
/// (for the "negligible work" claim): one multiply + one LUT lookup per
/// scene plus one backlight write per switch.
struct ClientWorkEstimate {
  std::size_t multiplies = 0;
  std::size_t tableLookups = 0;
  std::size_t backlightWrites = 0;
};

[[nodiscard]] ClientWorkEstimate estimateClientWork(
    const AnnotationTrack& track, const BacklightSchedule& schedule);

}  // namespace anno::core
