#include "core/runtime.h"

#include <algorithm>
#include <stdexcept>

#include "compensate/planner.h"

namespace anno::core {

std::uint8_t BacklightSchedule::levelAt(std::uint32_t frame) const {
  if (commands.empty()) return 255;
  auto it = std::upper_bound(commands.begin(), commands.end(), frame,
                             [](std::uint32_t f, const BacklightCommand& c) {
                               return f < c.frame;
                             });
  if (it == commands.begin()) return 255;
  return std::prev(it)->level;
}

double BacklightSchedule::gainAt(std::uint32_t frame) const {
  if (commands.empty()) return 1.0;
  auto it = std::upper_bound(commands.begin(), commands.end(), frame,
                             [](std::uint32_t f, const BacklightCommand& c) {
                               return f < c.frame;
                             });
  if (it == commands.begin()) return 1.0;
  return std::prev(it)->gainK;
}

std::shared_ptr<const compensate::ToneCurve> BacklightSchedule::curveAt(
    std::uint32_t frame) const {
  if (commands.empty()) return nullptr;
  auto it = std::upper_bound(commands.begin(), commands.end(), frame,
                             [](std::uint32_t f, const BacklightCommand& c) {
                               return f < c.frame;
                             });
  if (it == commands.begin()) return nullptr;
  return std::prev(it)->toneCurve;
}

std::unique_ptr<const compensate::Backend> backendForTrack(
    const AnnotationTrack& track) {
  compensate::BackendConfig cfg;
  cfg.kind = track.backendKind;
  cfg.spatialScale = track.spatialScale;
  return compensate::makeBackend(cfg);
}

compensate::CompensationDecision decideForScene(
    const compensate::Backend& backend, const AnnotationTrack& track,
    std::size_t sceneIndex, std::size_t qualityIndex,
    const display::DeviceModel& device, int minBacklightLevel) {
  const SceneAnnotation& scene = track.scenes.at(sceneIndex);
  const compensate::ToneCurve* curve =
      scene.perceivedCurves.empty() ? nullptr
                                    : &scene.perceivedCurves.at(qualityIndex);
  return backend.decide(device, scene.safeLuma.at(qualityIndex), curve,
                        minBacklightLevel, nullptr);
}

BacklightSchedule buildSchedule(const AnnotationTrack& track,
                                std::size_t qualityIndex,
                                const display::DeviceModel& device,
                                int minBacklightLevel) {
  validateTrack(track);
  if (qualityIndex >= track.qualityLevels.size()) {
    throw std::out_of_range("buildSchedule: qualityIndex out of range");
  }
  const std::unique_ptr<const compensate::Backend> backend =
      backendForTrack(track);
  BacklightSchedule schedule;
  schedule.frameCount = track.frameCount;
  schedule.commands.reserve(track.scenes.size());
  for (std::size_t si = 0; si < track.scenes.size(); ++si) {
    const compensate::CompensationDecision d = decideForScene(
        *backend, track, si, qualityIndex, device, minBacklightLevel);
    // Merge with the previous command when neither the level nor the pixel
    // curve changes: no backlight write is issued, so no flicker and no
    // switch counted.  Curves compare by content -- decide() allocates a
    // fresh curve per scene even when the values repeat.
    if (!schedule.commands.empty()) {
      const BacklightCommand& back = schedule.commands.back();
      const bool sameCurve =
          (back.toneCurve == nullptr) == (d.pixelCurve == nullptr) &&
          (back.toneCurve == nullptr || *back.toneCurve == *d.pixelCurve);
      if (back.level == d.plan.backlightLevel && sameCurve) continue;
    }
    schedule.commands.push_back({track.scenes[si].span.firstFrame,
                                 d.plan.backlightLevel, d.plan.gainK,
                                 d.pixelCurve});
  }
  return schedule;
}

BacklightSchedule fullBacklightSchedule(std::uint32_t frameCount) {
  BacklightSchedule schedule;
  schedule.frameCount = frameCount;
  if (frameCount > 0) {
    schedule.commands.push_back({0, 255, 1.0});
  }
  return schedule;
}

BacklightSchedule limitSlewRate(const BacklightSchedule& schedule,
                                std::uint8_t maxDeltaPerFrame,
                                std::size_t* clampedFrames) {
  if (clampedFrames != nullptr) *clampedFrames = 0;
  if (maxDeltaPerFrame == 0 || schedule.commands.size() < 2 ||
      schedule.frameCount == 0) {
    return schedule;
  }
  const std::size_t n = schedule.frameCount;
  // Desired per-frame levels from the command list.
  std::vector<std::uint8_t> desired(n);
  for (std::size_t f = 0; f < n; ++f) {
    desired[f] = schedule.levelAt(static_cast<std::uint32_t>(f));
  }
  // Lowest envelope that never undercuts `desired` and moves at most
  // `maxDeltaPerFrame` per frame: out[f] = max_g(desired[g] - d*|f-g|),
  // computed as a forward pass (bounds dim-down speed) and a backward pass
  // (starts brightening ramps early enough to arrive on time).
  std::vector<std::uint8_t> limited(n);
  int prev = desired[0];
  limited[0] = desired[0];
  for (std::size_t f = 1; f < n; ++f) {
    prev = std::max<int>(desired[f], prev - maxDeltaPerFrame);
    limited[f] = static_cast<std::uint8_t>(prev);
  }
  for (std::size_t f = n - 1; f-- > 0;) {
    limited[f] = static_cast<std::uint8_t>(
        std::max<int>(limited[f], limited[f + 1] - maxDeltaPerFrame));
  }
  if (clampedFrames != nullptr) {
    std::size_t clamped = 0;
    for (std::size_t f = 0; f < n; ++f) {
      if (limited[f] != desired[f]) ++clamped;
    }
    *clampedFrames = clamped;
  }
  // Recompress into commands; a command breaks on a level change or on a
  // gain or tone-curve change in the underlying schedule (curves switch
  // only at input-command boundaries, so pointer identity suffices).
  BacklightSchedule out;
  out.frameCount = schedule.frameCount;
  for (std::size_t f = 0; f < n; ++f) {
    const double gain = schedule.gainAt(static_cast<std::uint32_t>(f));
    const std::shared_ptr<const compensate::ToneCurve> curve =
        schedule.curveAt(static_cast<std::uint32_t>(f));
    if (out.commands.empty() || out.commands.back().level != limited[f] ||
        out.commands.back().gainK != gain ||
        out.commands.back().toneCurve != curve) {
      out.commands.push_back(
          {static_cast<std::uint32_t>(f), limited[f], gain, curve});
    }
  }
  return out;
}

ClientWorkEstimate estimateClientWork(const AnnotationTrack& track,
                                      const BacklightSchedule& schedule) {
  ClientWorkEstimate est;
  est.multiplies = track.scenes.size();
  est.tableLookups = track.scenes.size();
  est.backlightWrites = schedule.commands.size();
  return est;
}

}  // namespace anno::core
