#include "core/runtime.h"

#include <algorithm>
#include <stdexcept>

#include "compensate/planner.h"

namespace anno::core {

std::uint8_t BacklightSchedule::levelAt(std::uint32_t frame) const {
  if (commands.empty()) return 255;
  auto it = std::upper_bound(commands.begin(), commands.end(), frame,
                             [](std::uint32_t f, const BacklightCommand& c) {
                               return f < c.frame;
                             });
  if (it == commands.begin()) return 255;
  return std::prev(it)->level;
}

double BacklightSchedule::gainAt(std::uint32_t frame) const {
  if (commands.empty()) return 1.0;
  auto it = std::upper_bound(commands.begin(), commands.end(), frame,
                             [](std::uint32_t f, const BacklightCommand& c) {
                               return f < c.frame;
                             });
  if (it == commands.begin()) return 1.0;
  return std::prev(it)->gainK;
}

BacklightSchedule buildSchedule(const AnnotationTrack& track,
                                std::size_t qualityIndex,
                                const display::DeviceModel& device,
                                int minBacklightLevel) {
  validateTrack(track);
  if (qualityIndex >= track.qualityLevels.size()) {
    throw std::out_of_range("buildSchedule: qualityIndex out of range");
  }
  BacklightSchedule schedule;
  schedule.frameCount = track.frameCount;
  schedule.commands.reserve(track.scenes.size());
  for (const SceneAnnotation& scene : track.scenes) {
    const compensate::CompensationPlan plan = compensate::planForLuma(
        device, scene.safeLuma[qualityIndex], minBacklightLevel);
    // Merge with the previous command when the level does not change: no
    // backlight write is issued, so no flicker and no switch counted.
    if (!schedule.commands.empty() &&
        schedule.commands.back().level == plan.backlightLevel) {
      continue;
    }
    schedule.commands.push_back(
        {scene.span.firstFrame, plan.backlightLevel, plan.gainK});
  }
  return schedule;
}

ClientWorkEstimate estimateClientWork(const AnnotationTrack& track,
                                      const BacklightSchedule& schedule) {
  ClientWorkEstimate est;
  est.multiplies = track.scenes.size();
  est.tableLookups = track.scenes.size();
  est.backlightWrites = schedule.commands.size();
  return est;
}

}  // namespace anno::core
