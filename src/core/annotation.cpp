#include "core/annotation.h"

#include <algorithm>
#include <stdexcept>

namespace anno::core {

void validateTrack(const AnnotationTrack& track) {
  if (track.fps <= 0.0) {
    throw std::invalid_argument("AnnotationTrack: fps must be positive");
  }
  if (track.qualityLevels.empty()) {
    throw std::invalid_argument("AnnotationTrack: no quality levels");
  }
  if (!std::is_sorted(track.qualityLevels.begin(),
                      track.qualityLevels.end())) {
    throw std::invalid_argument(
        "AnnotationTrack: quality levels must be sorted ascending");
  }
  for (double q : track.qualityLevels) {
    if (q < 0.0 || q >= 1.0) {
      throw std::invalid_argument(
          "AnnotationTrack: quality levels must be in [0,1)");
    }
  }
  if (track.scenes.empty()) {
    throw std::invalid_argument("AnnotationTrack: no scenes");
  }
  std::uint32_t expectedStart = 0;
  for (const SceneAnnotation& s : track.scenes) {
    if (s.span.firstFrame != expectedStart) {
      throw std::invalid_argument(
          "AnnotationTrack: scene spans must be contiguous from frame 0");
    }
    if (s.span.frameCount == 0) {
      throw std::invalid_argument("AnnotationTrack: empty scene span");
    }
    if (s.safeLuma.size() != track.qualityLevels.size()) {
      throw std::invalid_argument(
          "AnnotationTrack: safeLuma count != quality level count");
    }
    for (std::size_t q = 1; q < s.safeLuma.size(); ++q) {
      if (s.safeLuma[q] > s.safeLuma[q - 1]) {
        throw std::invalid_argument(
            "AnnotationTrack: safeLuma must be non-increasing in quality");
      }
    }
    if (!s.perceivedCurves.empty() &&
        s.perceivedCurves.size() != track.qualityLevels.size()) {
      throw std::invalid_argument(
          "AnnotationTrack: perceivedCurves must be empty or one per "
          "quality level");
    }
    expectedStart += s.span.frameCount;
  }
  if (!(track.spatialScale > 0.0 && track.spatialScale <= 1.0)) {
    throw std::invalid_argument(
        "AnnotationTrack: spatialScale must be in (0, 1]");
  }
  if (expectedStart != track.frameCount) {
    throw std::invalid_argument(
        "AnnotationTrack: scene spans do not cover frameCount");
  }
}

std::size_t sceneIndexForFrame(const AnnotationTrack& track,
                               std::uint32_t frame) {
  if (frame >= track.frameCount) {
    throw std::out_of_range("sceneIndexForFrame: frame out of range");
  }
  // Binary search over firstFrame.
  const auto it = std::upper_bound(
      track.scenes.begin(), track.scenes.end(), frame,
      [](std::uint32_t f, const SceneAnnotation& s) {
        return f < s.span.firstFrame;
      });
  return static_cast<std::size_t>(it - track.scenes.begin()) - 1;
}

}  // namespace anno::core
