#include "core/track_cache.h"

#include <bit>
#include <chrono>
#include <stdexcept>

#include "telemetry/metrics.h"

namespace anno::core {

namespace {

/// Same FNV-1a stream the config fingerprint uses; here it only spreads
/// keys across shards, so collisions merely share a lock.
std::uint64_t shardHash(const TrackKey& key) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : key.clipId) h = (h ^ c) * 0x100000001b3ULL;
  for (int i = 0; i < 8; ++i) {
    h = (h ^ static_cast<std::uint8_t>(key.fingerprint >> (8 * i))) *
        0x100000001b3ULL;
  }
  return h;
}

std::size_t sceneBytes(const std::vector<SceneAnnotation>& scenes) {
  std::size_t total = scenes.capacity() * sizeof(SceneAnnotation);
  for (const SceneAnnotation& s : scenes) {
    total += s.safeLuma.capacity() * sizeof(std::uint8_t);
  }
  return total;
}

}  // namespace

std::size_t estimateTrackBytes(const CachedTrack& value) {
  return sizeof(CachedTrack) + value.track.clipName.capacity() +
         value.track.qualityLevels.capacity() * sizeof(double) +
         sceneBytes(value.track.scenes) +
         value.sketches.scenes.capacity() * sizeof(SceneSketch);
}

TrackCache::TrackCache(TrackCacheConfig cfg) {
  const std::size_t shards =
      std::bit_ceil(cfg.shardCount > 0 ? cfg.shardCount : std::size_t{1});
  shardMask_ = shards - 1;
  shardByteBudget_ = cfg.byteBudget == 0 ? 0 : cfg.byteBudget / shards;
  if (cfg.byteBudget != 0 && shardByteBudget_ == 0) shardByteBudget_ = 1;
  shards_ = std::vector<Shard>(shards);
}

TrackCache::Shard& TrackCache::shardFor(const TrackKey& key) const {
  return shards_[shardHash(key) & shardMask_];
}

CachedTrackPtr TrackCache::getOrFill(const TrackKey& key, const Filler& fill) {
  Shard& shard = shardFor(key);
  std::unique_lock<std::mutex> lock(shard.mu);
  for (;;) {
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      Entry& entry = *it->second;
      if (entry.value != nullptr) {
        ++entry.hits;
        ++shard.hits;
        telemetry::inc(metrics_.hits);
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        return entry.value;
      }
      // A racing request is filling this key: wait for it to complete (or
      // abandon on exception) and re-evaluate.  Sharing the in-flight pass
      // instead of running our own is the single-flight contract.
      ++shard.singleFlightWaits;
      telemetry::inc(metrics_.singleFlightWaits);
      shard.cv.wait(lock);
      continue;
    }
    break;
  }
  // Miss: claim the key with a filling placeholder, run the filler outside
  // the lock so other keys (and other shards) proceed.
  ++shard.misses;
  telemetry::inc(metrics_.misses);
  shard.lru.push_front(Entry{key, nullptr, 0, 0, true});
  shard.index.emplace(key, shard.lru.begin());
  lock.unlock();

  CachedTrackPtr value;
  const auto fillStart = std::chrono::steady_clock::now();
  try {
    value = fill();
  } catch (...) {
    lock.lock();
    const auto it = shard.index.find(key);
    if (it != shard.index.end() && it->second->filling) {
      shard.lru.erase(it->second);
      shard.index.erase(it);
    }
    shard.cv.notify_all();  // one waiter will retry the fill
    throw;
  }
  const double fillSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    fillStart)
          .count();
  if (value == nullptr) {
    // Treat a null fill like a throw: don't cache absence.
    lock.lock();
    const auto it = shard.index.find(key);
    if (it != shard.index.end() && it->second->filling) {
      shard.lru.erase(it->second);
      shard.index.erase(it);
    }
    shard.cv.notify_all();
    throw std::logic_error("TrackCache: filler returned null");
  }

  lock.lock();
  ++shard.fills;
  shard.fillSeconds += fillSeconds;
  telemetry::inc(metrics_.fills);
  telemetry::observe(metrics_.fillSeconds, fillSeconds);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    // clear()/eraseClip() dropped our placeholder mid-fill; serve the value
    // to this caller without caching it.
    shard.cv.notify_all();
    publishGauges();
    return value;
  }
  Entry& entry = *it->second;
  entry.value = value;
  entry.filling = false;
  entry.bytes = value->bytes != 0 ? value->bytes
                                  : estimateTrackBytes(*value) +
                                        key.clipId.size() + sizeof(Entry);
  shard.bytes += entry.bytes;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  evictOverBudget(shard);
  shard.cv.notify_all();
  lock.unlock();
  publishGauges();
  return value;
}

void TrackCache::evictOverBudget(Shard& shard) {
  if (shardByteBudget_ == 0) return;
  // Walk from the LRU tail; skip in-flight fills (their waiters hold the
  // key by identity).  Live references do NOT pin an entry -- the
  // shared_ptr keeps evicted values alive for their holders, the directory
  // just stops advertising them -- so eviction always makes progress.
  auto it = shard.lru.end();
  while (shard.bytes > shardByteBudget_ && it != shard.lru.begin()) {
    --it;
    if (it->filling) continue;
    shard.bytes -= it->bytes;
    shard.index.erase(it->key);
    it = shard.lru.erase(it);
    ++shard.evictions;
    telemetry::inc(metrics_.evictions);
  }
}

void TrackCache::setByteBudget(std::size_t byteBudget) {
  const std::size_t shards = shardMask_ + 1;
  std::size_t perShard = byteBudget == 0 ? 0 : byteBudget / shards;
  if (byteBudget != 0 && perShard == 0) perShard = 1;
  shardByteBudget_ = perShard;
  for (Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mu);
    evictOverBudget(shard);
  }
  publishGauges();
}

CachedTrackPtr TrackCache::peek(const TrackKey& key) const {
  Shard& shard = shardFor(key);
  const std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) return nullptr;
  return it->second->value;
}

std::size_t TrackCache::eraseClip(const std::string& clipId) {
  std::size_t removed = 0;
  for (Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->key.clipId == clipId && !it->filling) {
        shard.bytes -= it->bytes;
        shard.index.erase(it->key);
        it = shard.lru.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
  }
  publishGauges();
  return removed;
}

void TrackCache::clear() {
  for (Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (!it->filling) {
        shard.bytes -= it->bytes;
        shard.index.erase(it->key);
        it = shard.lru.erase(it);
      } else {
        ++it;
      }
    }
  }
  publishGauges();
}

TrackCacheStats TrackCache::stats() const {
  TrackCacheStats out;
  for (Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mu);
    out.hits += shard.hits;
    out.misses += shard.misses;
    out.fills += shard.fills;
    out.evictions += shard.evictions;
    out.singleFlightWaits += shard.singleFlightWaits;
    out.fillSeconds += shard.fillSeconds;
    out.bytes += shard.bytes;
    for (const Entry& e : shard.lru) {
      if (e.value != nullptr) ++out.entries;
    }
  }
  return out;
}

std::vector<TrackCacheEntryInfo> TrackCache::entries() const {
  std::vector<TrackCacheEntryInfo> out;
  for (Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mu);
    for (const Entry& e : shard.lru) {
      if (e.value == nullptr) continue;
      out.push_back(TrackCacheEntryInfo{
          e.key, e.hits, e.value.use_count() - 1, e.bytes});
    }
  }
  return out;
}

void TrackCache::publishGauges() const {
  if (metrics_.entries == nullptr && metrics_.bytes == nullptr) return;
  std::size_t entries = 0;
  std::size_t bytes = 0;
  for (Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mu);
    bytes += shard.bytes;
    for (const Entry& e : shard.lru) {
      if (e.value != nullptr) ++entries;
    }
  }
  telemetry::set(metrics_.entries, static_cast<std::int64_t>(entries));
  telemetry::set(metrics_.bytes, static_cast<std::int64_t>(bytes));
}

void TrackCache::attachTelemetry(telemetry::Registry& registry) {
  metrics_.hits = &registry.counter(
      "anno_track_cache_hits_total", {},
      "Requests served from a completed cache entry (shared engine pass)");
  metrics_.misses = &registry.counter(
      "anno_track_cache_misses_total", {},
      "Requests that found no entry and triggered a fill");
  metrics_.fills = &registry.counter(
      "anno_track_cache_fills_total", {},
      "Completed fills == annotation engine passes the fleet paid for");
  metrics_.evictions = &registry.counter(
      "anno_track_cache_evictions_total", {},
      "Entries dropped from the LRU tail under the byte budget");
  metrics_.singleFlightWaits = &registry.counter(
      "anno_track_cache_single_flight_waits_total", {},
      "Requests that waited on a racing fill instead of running their own");
  metrics_.fillSeconds = &registry.histogram(
      "anno_track_cache_fill_seconds", telemetry::secondsBuckets(), {},
      "Wall time of one cache fill (annotate + sketch for one key)");
  metrics_.entries = &registry.gauge(
      "anno_track_cache_entries", {}, "Completed entries currently cached");
  metrics_.bytes = &registry.gauge(
      "anno_track_cache_bytes", {}, "Bytes charged against the budget");
  publishGauges();
}

void TrackCache::detachTelemetry() noexcept { metrics_ = Telemetry{}; }

}  // namespace anno::core
