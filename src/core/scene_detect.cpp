#include "core/scene_detect.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace anno::core {

std::vector<std::uint8_t> maxLumaTrace(
    const std::vector<media::FrameStats>& stats) {
  std::vector<std::uint8_t> trace;
  trace.reserve(stats.size());
  for (const media::FrameStats& s : stats) {
    trace.push_back(s.luminance.maxLuma);
  }
  return trace;
}

std::vector<SceneSpan> detectScenes(const std::vector<std::uint8_t>& maxLuma,
                                    const SceneDetectConfig& cfg) {
  if (cfg.changeThreshold <= 0.0 || cfg.changeThreshold >= 1.0) {
    throw std::invalid_argument("detectScenes: changeThreshold in (0,1)");
  }
  if (cfg.minSceneFrames < 1) {
    throw std::invalid_argument("detectScenes: minSceneFrames >= 1");
  }
  std::vector<SceneSpan> scenes;
  if (maxLuma.empty()) return scenes;

  std::uint32_t sceneStart = 0;
  // Reference level the paper compares against: the running maximum of the
  // current scene (the quantity later annotated).
  double reference = maxLuma[0];

  for (std::uint32_t i = 1; i < maxLuma.size(); ++i) {
    const double current = maxLuma[i];
    const double base = std::max(reference, 1.0);
    const bool bigChange =
        std::abs(current - reference) / base >= cfg.changeThreshold;
    const bool longEnough =
        i - sceneStart >= static_cast<std::uint32_t>(cfg.minSceneFrames);
    if (bigChange && longEnough) {
      scenes.push_back({sceneStart, i - sceneStart});
      sceneStart = i;
      reference = current;
    } else {
      // Track the scene's running max so a slow ramp within a scene cannot
      // leave annotated levels below actual content.
      reference = std::max(reference, current);
    }
  }
  scenes.push_back({sceneStart,
                    static_cast<std::uint32_t>(maxLuma.size()) - sceneStart});
  return scenes;
}

std::vector<SceneSpan> detectScenesHistogram(
    const std::vector<media::FrameStats>& stats,
    const HistogramSceneDetectConfig& cfg) {
  if (cfg.emdThreshold <= 0.0) {
    throw std::invalid_argument(
        "detectScenesHistogram: emdThreshold must be positive");
  }
  if (cfg.minSceneFrames < 1) {
    throw std::invalid_argument(
        "detectScenesHistogram: minSceneFrames >= 1");
  }
  std::vector<SceneSpan> scenes;
  if (stats.empty()) return scenes;

  std::uint32_t sceneStart = 0;
  for (std::uint32_t i = 1; i < stats.size(); ++i) {
    const double emd = media::Histogram::earthMovers(stats[i - 1].histogram,
                                                     stats[i].histogram);
    const bool longEnough =
        i - sceneStart >= static_cast<std::uint32_t>(cfg.minSceneFrames);
    if (emd >= cfg.emdThreshold && longEnough) {
      scenes.push_back({sceneStart, i - sceneStart});
      sceneStart = i;
    }
  }
  scenes.push_back({sceneStart,
                    static_cast<std::uint32_t>(stats.size()) - sceneStart});
  return scenes;
}

}  // namespace anno::core
