// Deterministic, seedable traffic-mix generation for the fleet soak.
//
// The ROADMAP's north star is the paper's watts-saved claim held at fleet
// scale, and a fleet is not one workload: it is device classes x content
// profiles x link conditions x tenant configs arriving on a diurnal curve.
// This module composes those axes into an explicit, replayable arrival
// schedule -- a vector of SessionPlan, one per session, each pinned to a
// scheduler tick -- in the spirit of EVSO's environment-driven workload
// diversity (PAPERS.md) and McPAT-style capacity modeling (SNIPPETS.md
// snippet 1): before anything runs, the mix itself is a queryable object
// (how many sessions per cell, how many unique (clip, tenant) keys), which
// is exactly what the CapacityModel predicts against.
//
// Everything is SplitMix64 arithmetic: the same TrafficMixConfig produces
// the same schedule on every platform, so a soak run is exactly
// reproducible and FLEET_SOAK.json can be diffed across machines.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.h"
#include "display/device.h"
#include "media/clipgen.h"

namespace anno::soak {

/// One class of client hardware + access link.  The display device drives
/// the watts-saved roll-up (backlight electrical power is device-specific);
/// the link parameters drive startup/rebuffer behaviour.
struct DeviceClass {
  std::string name;
  display::KnownDevice device = display::KnownDevice::kIpaq5555;
  std::size_t qualityIndex = 1;
  int minBacklightLevel = 10;
  double meanBitsPerSec = 6e6;
  /// Per-session link-rate spread: each session draws a multiplier in
  /// [1 - jitter, 1 + jitter] around meanBitsPerSec.
  double bandwidthJitter = 0.25;
  /// When true, the link periodically dips to dipFraction of its rate
  /// (commute through elevators and microwave ovens): provokes rebuffering
  /// so the p99 columns of the fleet report measure something real.
  bool periodicDips = false;
  double dipFraction = 0.15;
  double dipPeriodSeconds = 2.0;
  double dipSeconds = 0.5;
  double startupBufferSeconds = 0.3;
  double bufferCapacitySeconds = 4.0;
  double weight = 1.0;  ///< relative share of arrivals
};

/// One catalog entry recipe (which paper clip, how long, what resolution).
struct ContentProfile {
  std::string name;
  media::PaperClip source = media::PaperClip::kTheMovie;
  double durationScale = 0.01;
  int width = 32;
  int height = 24;
  double weight = 1.0;  ///< relative share of arrivals
};

/// Diurnal arrival-rate shape: a raised cosine over the 24h day.  The rate
/// at hour h is trough + (peak - trough) * (1 + cos(2*pi*(h - peakHour)/24))/2,
/// normalized so the schedule lands exactly `sessions` arrivals.
struct DiurnalShape {
  double troughFraction = 0.15;  ///< trough rate relative to peak
  double peakHour = 20.0;        ///< prime time
};

/// The full mix recipe.  Empty deviceClasses/contentProfiles are filled
/// with the defaults below at generation time.
struct TrafficMixConfig {
  std::uint64_t seed = 0x50AC;
  std::size_t sessions = 50'000;
  /// Simulated seconds representing one 24h diurnal day (the soak
  /// compresses a day onto a tractable tick count; one "virtual hour" is
  /// daySeconds / 24 simulated seconds).
  double daySeconds = 600.0;
  double tickSeconds = 0.1;
  DiurnalShape diurnal;
  std::vector<DeviceClass> deviceClasses;
  std::vector<ContentProfile> contentProfiles;
  std::size_t tenantCount = 8;
  /// Fraction of sessions that close the player mid-stream.
  double leaveFraction = 0.02;
  /// Fraction of sessions whose served bytes additionally run the fault
  /// injector + a real client decode (the soak's live fault-injection arm).
  double faultFraction = 0.02;
};

/// One planned session: where on the day it arrives and which cell of the
/// (device class x content profile x tenant) cross-product it belongs to.
struct SessionPlan {
  std::uint64_t arrivalTick = 0;
  std::uint32_t deviceClass = 0;
  std::uint32_t contentProfile = 0;
  std::uint32_t tenant = 0;
  double bandwidthScale = 1.0;
  /// Nonzero: fault-inject this session's served bytes and decode them
  /// through a real ClientSession after playback completes.
  std::uint64_t faultSeed = 0;
  /// Nonzero: leave() this many ticks after arrival (if still active).
  std::uint64_t leaveAfterTicks = 0;

  friend bool operator==(const SessionPlan&, const SessionPlan&) = default;
};

/// A generated mix: resolved config, tenant configs, and the schedule
/// (sorted by arrivalTick, stable in plan order).
struct TrafficMix {
  TrafficMixConfig config;  ///< with defaults filled in
  std::vector<core::AnnotatorConfig> tenants;
  std::vector<SessionPlan> sessions;
  std::uint64_t ticks = 0;  ///< schedule horizon (arrivals all land before)
  /// Planned arrivals per virtual hour (24 buckets over daySeconds).
  std::vector<std::size_t> arrivalsPerHour;

  /// Unique (content profile, tenant fingerprint) pairs the schedule
  /// touches == the engine passes a big-enough TrackCache will pay.
  [[nodiscard]] std::size_t uniqueAnnotationKeys() const;
};

/// Four default device classes (paper PDAs + a lossy "commute" profile).
[[nodiscard]] std::vector<DeviceClass> defaultDeviceClasses();

/// `count` content profiles drawn from the ten paper clips with varied
/// durations (count > 10 wraps with a different durationScale).
[[nodiscard]] std::vector<ContentProfile> defaultContentProfiles(
    std::size_t count);

/// `count` plan-distinct tenant configs (distinct fingerprints by
/// construction, pinned by tests/soak): detector / granularity / ladder /
/// credits / backend variations, then active-threshold nudges past ten.
[[nodiscard]] std::vector<core::AnnotatorConfig> makeTenantConfigs(
    std::size_t count);

/// Relative arrival rate at `hourOfDay` in [0, 24).
[[nodiscard]] double diurnalWeight(const DiurnalShape& shape,
                                   double hourOfDay);

/// Expands a config into the full deterministic schedule.  Throws
/// std::invalid_argument on a degenerate config (no sessions, bad tick or
/// day length, zero tenants).
[[nodiscard]] TrafficMix generateTrafficMix(TrafficMixConfig cfg);

}  // namespace anno::soak
