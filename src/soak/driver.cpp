#include "soak/driver.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "core/runtime.h"
#include "core/track_cache.h"
#include "fault/inject.h"
#include "media/clipgen.h"
#include "stream/client.h"
#include "stream/net.h"
#include "telemetry/metrics.h"

namespace anno::soak {

namespace {

double nowWall() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Nearest-rank percentile over an already-sorted sample (q in (0, 1]).
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = std::ceil(q * static_cast<double>(sorted.size()));
  const std::size_t idx = static_cast<std::size_t>(
      std::max(1.0, std::min(rank, static_cast<double>(sorted.size()))));
  return sorted[idx - 1];
}

/// Mean backlight watts SAVED (vs level 255) while playing `track` on
/// `device` at the given negotiation -- averaged across frames, which is
/// exactly the time average because frames are equally spaced.
double meanSavedWatts(const core::AnnotationTrack& track,
                      std::size_t qualityIndex,
                      const display::DeviceModel& device,
                      int minBacklightLevel) {
  if (track.frameCount == 0) return 0.0;
  const core::BacklightSchedule schedule =
      core::buildSchedule(track, qualityIndex, device, minBacklightLevel);
  const double fullWatts = device.backlightPowerWatts(255);
  double savedSum = 0.0;
  for (std::uint32_t f = 0; f < track.frameCount; ++f) {
    savedSum += fullWatts - device.backlightPowerWatts(schedule.levelAt(f));
  }
  return savedSum / static_cast<double>(track.frameCount);
}

void appendKv(std::string& out, const char* key, double value, bool last) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  out += "  \"";
  out += key;
  out += "\": ";
  out += buf;
  if (!last) out += ',';
  out += '\n';
}

void appendKv(std::string& out, const char* key, std::uint64_t value,
              bool last) {
  out += "  \"";
  out += key;
  out += "\": ";
  out += std::to_string(value);
  if (!last) out += ',';
  out += '\n';
}

std::string num(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return buf;
}

/// SplitMix64 finalizer: the forced-fault draw for degradation drills must
/// be a pure function of (mix seed, session id) so the drilled run is as
/// reproducible as the clean one.
std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

HealthOptions defaultHealthOptions(const TrafficMixConfig& mix,
                                   double expectedWattsPerMillionSessions) {
  using telemetry::HealthSignal;
  using telemetry::HealthSignalKind;
  using telemetry::SloBoundKind;
  using telemetry::SloRule;

  const double hourSeconds = mix.daySeconds / 24.0;
  const std::uint64_t hourTicks = std::max<std::uint64_t>(
      4, static_cast<std::uint64_t>(hourSeconds / mix.tickSeconds));
  const std::uint64_t fast = std::max<std::uint64_t>(5, hourTicks / 2);
  const std::uint64_t slow = 2 * hourTicks;

  HealthOptions opts;
  opts.enabled = true;
  opts.config.tickSeconds = mix.tickSeconds;

  const auto rule = [&](const char* name, SloBoundKind bound, double limit,
                        double limitHigh = 0.0) {
    SloRule r;
    r.name = name;
    r.signal = name;  // rule-per-signal naming keeps reports self-describing
    r.bound = bound;
    r.limit = limit;
    r.limitHigh = limitHigh;
    r.fastWindowTicks = fast;
    r.slowWindowTicks = slow;
    r.clearHoldTicks = fast;
    r.hysteresis = 0.1;
    return r;
  };

  // Stall rate: rebuffer events per active-session tick.
  {
    HealthSignal s;
    s.name = "stall_rate";
    s.kind = HealthSignalKind::kCounterRatio;
    s.metric = "anno_fleet_stalls_total";
    s.denominatorMetrics = {"anno_fleet_session_ticks_total"};
    opts.config.signals.push_back(std::move(s));
    SloRule r = rule("stall_rate", SloBoundKind::kMax, 0.005);
    r.minWeight = 100.0;  // session-ticks of exposure
    opts.config.rules.push_back(std::move(r));
  }
  // Annotation-cache hit rate.  A cold cache is structurally miss-heavy, so
  // the rule warms up for a few virtual hours before judging.
  {
    HealthSignal s;
    s.name = "cache_hit_rate";
    s.kind = HealthSignalKind::kCounterRatio;
    s.metric = "anno_track_cache_hits_total";
    s.denominatorMetrics = {"anno_track_cache_hits_total",
                            "anno_track_cache_misses_total"};
    opts.config.signals.push_back(std::move(s));
    SloRule r = rule("cache_hit_rate", SloBoundKind::kMin, 0.85);
    r.warmupTicks = 4 * hourTicks;
    r.minWeight = 20.0;  // cache lookups in the window
    opts.config.rules.push_back(std::move(r));
  }
  // Startup p99: bucket-interpolated from the scheduler's histogram.
  {
    HealthSignal s;
    s.name = "startup_p99_seconds";
    s.kind = HealthSignalKind::kHistogramQuantile;
    s.metric = "anno_fleet_startup_seconds";
    s.quantile = 0.99;
    opts.config.signals.push_back(std::move(s));
    SloRule r = rule("startup_p99_seconds", SloBoundKind::kMax, 2.0);
    r.minWeight = 20.0;  // session starts in the window
    opts.config.rules.push_back(std::move(r));
  }
  // Fault-session rate among terminal sessions.
  {
    HealthSignal s;
    s.name = "fault_session_rate";
    s.kind = HealthSignalKind::kCounterRatio;
    s.metric = "anno_soak_fault_sessions_total";
    s.denominatorMetrics = {"anno_fleet_sessions_completed_total",
                            "anno_fleet_sessions_left_total"};
    opts.config.signals.push_back(std::move(s));
    SloRule r = rule("fault_session_rate", SloBoundKind::kMax, 0.08);
    r.minWeight = 40.0;  // terminal sessions in the window
    opts.config.rules.push_back(std::move(r));
  }
  // Watts saved per million playing sessions, held to a band around the
  // calibrated expectation.  playing-power gauge is milliwatts per session,
  // so x1e3 scales (mW/session) to (W per million sessions).
  if (expectedWattsPerMillionSessions > 0.0) {
    HealthSignal s;
    s.name = "watts_saved_per_million_sessions";
    s.kind = HealthSignalKind::kGaugeRatio;
    s.metric = "anno_fleet_playing_power_milliwatts";
    s.denominatorMetric = "anno_fleet_sessions_playing";
    s.scale = 1e3;
    opts.config.signals.push_back(std::move(s));
    SloRule r = rule("watts_saved_per_million_sessions", SloBoundKind::kBand,
                     0.5 * expectedWattsPerMillionSessions,
                     2.0 * expectedWattsPerMillionSessions);
    r.warmupTicks = 2 * hourTicks;
    r.minWeight = 10.0 * static_cast<double>(fast);  // playing-session ticks
    opts.config.rules.push_back(std::move(r));
  }
  return opts;
}

FleetSoakReport runSoak(const SoakConfig& cfg) {
  const double wallStart = nowWall();
  const TrafficMix mix = generateTrafficMix(cfg.mix);
  const std::vector<DeviceClass>& classes = mix.config.deviceClasses;
  const std::vector<ContentProfile>& profiles = mix.config.contentProfiles;

  FleetSoakReport report;
  report.seed = mix.config.seed;
  report.sessionsPlanned = mix.sessions.size();
  report.tenants = mix.tenants.size();
  report.deviceClasses = classes.size();
  report.contentProfiles = profiles.size();
  report.hours.assign(24, SoakHourBucket{});
  for (std::size_t h = 0; h < 24; ++h) {
    report.hours[h].arrivals = mix.arrivalsPerHour[h];
  }

  // --- Ingest the catalog -------------------------------------------------
  core::AnnotatorConfig serverCfg;
  serverCfg.threads = cfg.ingestThreads;
  stream::MediaServer server(serverCfg);
  core::TrackCache cache(
      {.shardCount = 16, .byteBudget = cfg.cacheByteBudget});
  server.attachTrackCache(cache);
  {
    const double t0 = nowWall();
    std::vector<media::VideoClip> clips;
    clips.reserve(profiles.size());
    for (const ContentProfile& p : profiles) {
      media::ClipProfile recipe = media::paperClipProfile(
          p.source, p.durationScale, p.width, p.height);
      media::VideoClip clip = media::generateClip(recipe);
      clip.name = p.name;  // distinct catalog entries even across wraps
      clips.push_back(std::move(clip));
    }
    server.addClips(std::move(clips));
    report.ingestSeconds = nowWall() - t0;
  }

  // --- Per-device-class precomputation ------------------------------------
  std::vector<display::DeviceModel> deviceModels;
  std::vector<stream::ClientCapabilities> classCaps;
  deviceModels.reserve(classes.size());
  classCaps.reserve(classes.size());
  for (const DeviceClass& dc : classes) {
    display::DeviceModel dev = display::makeDevice(dc.device);
    stream::ClientCapabilities caps;
    caps.deviceName = dev.name;
    caps.transfer = dev.transfer;
    caps.qualityIndex = dc.qualityIndex;
    caps.minBacklightLevel = dc.minBacklightLevel;
    deviceModels.push_back(std::move(dev));
    classCaps.push_back(std::move(caps));
  }

  // --- The soak loop ------------------------------------------------------
  stream::SessionScheduler::Config schedCfg;
  schedCfg.policy = cfg.policy;
  schedCfg.tickSeconds = mix.config.tickSeconds;
  schedCfg.serviceBudgetPerTick = cfg.serviceBudgetPerTick;
  schedCfg.deliveryThreads = cfg.deliveryThreads;
  stream::SessionScheduler sched(server, schedCfg);

  // --- Live-health arm (registry + monitor + flight recorder) -------------
  telemetry::Registry registry;
  std::unique_ptr<telemetry::HealthMonitor> monitor;
  std::unique_ptr<telemetry::FlightRecorder> flight;
  telemetry::Counter* faultSessionsCounter = nullptr;
  if (cfg.health.enabled) {
    cache.attachTelemetry(registry);
    sched.attachTelemetry(registry);
    faultSessionsCounter = &registry.counter(
        "anno_soak_fault_sessions_total", {},
        "Terminal sessions routed through the fault-injection arm");
    monitor = std::make_unique<telemetry::HealthMonitor>(cfg.health.config,
                                                         &registry);
    if (cfg.health.flightRecorder) {
      flight = std::make_unique<telemetry::FlightRecorder>(cfg.health.flight);
      monitor->attachFlightRecorder(flight.get());
    }
    sched.attachHealth(monitor.get());
  }

  // One buildSchedule per (tenant, device class, content profile) cell: the
  // saved-watts figure is a pure function of the cell.  Filled at each
  // cell's first arrival (reusing the arrival's own annotationFor result,
  // so cache counters are untouched) and reused by the post-loop roll-up.
  std::map<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>,
           std::pair<double, double>>
      cellWatts;  // cell -> {meanSavedWatts, fullWatts}
  const auto cellSavedWatts = [&](const SessionPlan& plan,
                                  const core::CachedTrackPtr& track) {
    const auto key =
        std::make_tuple(plan.tenant, plan.deviceClass, plan.contentProfile);
    auto it = cellWatts.find(key);
    if (it == cellWatts.end()) {
      const DeviceClass& dc = classes[plan.deviceClass];
      const double saved =
          meanSavedWatts(track->track, dc.qualityIndex,
                         deviceModels[plan.deviceClass], dc.minBacklightLevel);
      const double full =
          deviceModels[plan.deviceClass].backlightPowerWatts(255);
      it = cellWatts.emplace(key, std::make_pair(saved, full)).first;
    }
    return it->second.first;
  };

  struct LiveSession {
    std::uint64_t id = 0;
    std::uint32_t plan = 0;  ///< index into mix.sessions
    std::uint64_t faultSeed = 0;
  };
  std::vector<std::uint32_t> planOf;  // session id -> plan index (ids are 1..N)
  planOf.reserve(mix.sessions.size() + 1);
  planOf.push_back(0);  // ids start at 1
  std::multimap<std::uint64_t, std::uint64_t> leavesAt;  // tick -> session id
  std::vector<LiveSession> faultPending;

  // Fault arm state (deterministic: plan seeds + memoized stream bytes).
  const fault::InjectorConfig faultCfg;  // full repertoire, defaults
  std::vector<std::unique_ptr<stream::ClientSession>> faultClients(
      classes.size());
  const auto runFaultArm = [&](std::uint32_t planIdx,
                               std::uint64_t faultSeed) {
    const SessionPlan& plan = mix.sessions[planIdx];
    const DeviceClass& dc = classes[plan.deviceClass];
    if (!faultClients[plan.deviceClass]) {
      stream::ClientConfig clientCfg;
      clientCfg.device = deviceModels[plan.deviceClass];
      clientCfg.qualityIndex = dc.qualityIndex;
      clientCfg.minBacklightLevel = dc.minBacklightLevel;
      faultClients[plan.deviceClass] = std::make_unique<stream::ClientSession>(
          clientCfg, stream::makeReferencePath());
    }
    // The exact bytes this session streamed (serve memo: no recompute).
    const std::vector<std::uint8_t> bytes =
        server.serve(profiles[plan.contentProfile].name,
                     classCaps[plan.deviceClass], mix.tenants[plan.tenant]);
    fault::InjectionReport injection;
    const std::vector<std::uint8_t> damaged =
        fault::injectFaults(bytes, faultSeed, faultCfg, &injection);
    ++report.faultSessions;
    telemetry::inc(faultSessionsCounter);
    report.faultMutationsApplied += injection.mutationsApplied;
    try {
      const stream::ReceivedStream received =
          faultClients[plan.deviceClass]->receive(damaged);
      if (received.ok) {
        ++report.faultDecodeOk;
        if (received.annotationFallback) ++report.faultFallbacks;
      } else {
        ++report.faultUndecodable;
      }
    } catch (...) {
      ++report.faultThrows;  // contract violation; the tool gates on 0
    }
  };

  const std::uint64_t maxTicks =
      cfg.maxTicks != 0 ? cfg.maxTicks : mix.ticks + 1'000'000;
  std::size_t nextPlan = 0;
  std::uint64_t prevCacheHits = 0, prevCacheMisses = 0;
  std::uint64_t prevStalls = 0, prevBytes = 0;
  std::size_t prevCompleted = 0, prevHour = 0;
  const auto hourOfTick = [&](std::uint64_t t) {
    const double frac = static_cast<double>(t) * mix.config.tickSeconds /
                        mix.config.daySeconds;
    return std::min<std::size_t>(23,
                                 static_cast<std::size_t>(frac * 24.0));
  };

  std::vector<char> degrWasActive(cfg.degradations.size(), 0);
  for (std::uint64_t t = 0; t < maxTicks; ++t) {
    // Degradation drills: apply/lift whichever levers cross their window
    // edge this tick, and collect the levers that shape this tick's joins.
    double powerFactor = 1.0;
    double forcedFaultFraction = 0.0;
    for (std::size_t d = 0; d < cfg.degradations.size(); ++d) {
      const Degradation& deg = cfg.degradations[d];
      const bool on =
          t >= deg.startTick && (deg.endTick == 0 || t < deg.endTick);
      if (on != static_cast<bool>(degrWasActive[d])) {
        degrWasActive[d] = on ? 1 : 0;
        switch (deg.kind) {
          case Degradation::Kind::kCacheSqueeze:
            // Clamp to >= 1: a squeeze means "tiny", never "unbounded"
            // (a budget of 0 disables eviction entirely).
            cache.setByteBudget(
                on ? std::max<std::size_t>(
                         1, static_cast<std::size_t>(
                                static_cast<double>(cfg.cacheByteBudget) *
                                deg.magnitude))
                   : cfg.cacheByteBudget);
            break;
          case Degradation::Kind::kServiceBudgetSqueeze:
            sched.setServiceBudget(on ? static_cast<std::size_t>(deg.magnitude)
                                      : cfg.serviceBudgetPerTick);
            break;
          default: break;  // join-time levers, handled below
        }
      }
      if (on && deg.kind == Degradation::Kind::kPowerRegression) {
        powerFactor *= deg.magnitude;
      }
      if (on && deg.kind == Degradation::Kind::kFaultRateStep) {
        forcedFaultFraction = std::max(forcedFaultFraction, deg.magnitude);
      }
    }

    // Flight-recorder generation rotation + this tick's media stamp.
    if (flight) {
      flight->onTick(t);
      flight->recorder()->setMediaTime(static_cast<double>(t) *
                                       mix.config.tickSeconds);
    }

    // Arrivals scheduled for this tick.
    while (nextPlan < mix.sessions.size() &&
           mix.sessions[nextPlan].arrivalTick == t) {
      const SessionPlan& plan = mix.sessions[nextPlan];
      const DeviceClass& dc = classes[plan.deviceClass];
      // Per-session annotation resolution: this is the cache's hot path
      // (the serve memo below only pays it once per stream group, but every
      // CLIENT joining resolves its tenant's track).
      const core::CachedTrackPtr track = server.annotationFor(
          profiles[plan.contentProfile].name, mix.tenants[plan.tenant]);
      stream::FleetSessionConfig fleet;
      fleet.clipName = profiles[plan.contentProfile].name;
      fleet.caps = classCaps[plan.deviceClass];
      fleet.tenantCfg = mix.tenants[plan.tenant];
      const double rate = dc.meanBitsPerSec * plan.bandwidthScale;
      fleet.bandwidth =
          dc.periodicDips
              ? stream::BandwidthTrace::periodicDip(
                    rate, rate * dc.dipFraction, dc.dipPeriodSeconds,
                    dc.dipSeconds)
              : stream::BandwidthTrace::constant(rate);
      fleet.startupBufferSeconds = dc.startupBufferSeconds;
      fleet.bufferCapacitySeconds = dc.bufferCapacitySeconds;
      fleet.powerWeight = cellSavedWatts(plan, track) * powerFactor;
      const std::uint64_t id = sched.join(fleet);
      planOf.push_back(static_cast<std::uint32_t>(nextPlan));
      if (plan.leaveAfterTicks != 0) {
        leavesAt.emplace(t + plan.leaveAfterTicks, id);
      }
      std::uint64_t faultSeed = plan.faultSeed;
      if (cfg.faultInjection && faultSeed == 0 &&
          forcedFaultFraction > 0.0) {
        // Fault-rate-step drill: a deterministic per-session draw forces
        // extra arrivals into the fault arm.
        const std::uint64_t draw =
            splitmix64(mix.config.seed ^ (id * 0x9E3779B97F4A7C15ULL));
        if (static_cast<double>(draw >> 11) * 0x1.0p-53 <
            forcedFaultFraction) {
          faultSeed = draw | 1;  // nonzero by construction
        }
      }
      if (cfg.faultInjection && faultSeed != 0) {
        faultPending.push_back(
            {id, static_cast<std::uint32_t>(nextPlan), faultSeed});
      }
      ++nextPlan;
    }

    // Departures scheduled for this tick (no-op if already terminal).
    for (auto [it, end] = leavesAt.equal_range(t); it != end; ++it) {
      (void)sched.leave(it->second);
    }
    leavesAt.erase(t);

    sched.tick();

    // Fault arm: sessions run their injected decode as they terminate
    // (the injectors are live DURING the soak, not a post-pass).
    if (!faultPending.empty()) {
      std::size_t kept = 0;
      for (const LiveSession& live : faultPending) {
        const stream::SessionReport r = sched.report(live.id);
        if (r.phase == stream::SessionPhase::kCompleted ||
            r.phase == stream::SessionPhase::kLeft) {
          runFaultArm(live.plan, live.faultSeed);
        } else {
          faultPending[kept++] = live;
        }
      }
      faultPending.resize(kept);
    }

    // Diurnal roll-up: per-tick deltas attributed to the tick's hour (the
    // drain past the day's end folds into hour 23).
    const stream::FleetStats fs = sched.stats();
    const core::TrackCacheStats cs = cache.stats();
    const std::size_t h = hourOfTick(t);
    SoakHourBucket& bucket = report.hours[h];
    bucket.cacheHits += cs.hits - prevCacheHits;
    bucket.cacheMisses += cs.misses - prevCacheMisses;
    bucket.stallEvents += fs.stallEvents - prevStalls;
    bucket.bytesDelivered += fs.bytesDelivered - prevBytes;
    bucket.completions += fs.sessionsCompleted - prevCompleted;
    prevCacheHits = cs.hits;
    prevCacheMisses = cs.misses;
    prevStalls = fs.stallEvents;
    prevBytes = fs.bytesDelivered;
    prevCompleted = fs.sessionsCompleted;
    // Trace context for the flight recorder: a few fleet counters per tick
    // so an anomaly capture shows the shape of the minutes around it.
    if (flight) {
      telemetry::TraceRecorder* rec = flight->recorder();
      rec->counter("active_sessions", "fleet",
                   static_cast<double>(fs.activeSessions));
      rec->counter("stalls_total", "fleet",
                   static_cast<double>(fs.stallEvents));
      rec->counter("cache_hits_total", "cache",
                   static_cast<double>(cs.hits));
      rec->counter("cache_misses_total", "cache",
                   static_cast<double>(cs.misses));
    }
    if (h != prevHour) {
      report.hours[prevHour].activeAtEnd = fs.activeSessions;
      if (monitor) {
        // Hour-boundary margin samples: the --health plot's time series.
        for (const telemetry::HealthRuleStatus& rs : monitor->ruleStatuses()) {
          report.healthSamples.push_back(
              {t, h, rs.rule.name,
               telemetry::sloRuleStateName(rs.status.state),
               rs.status.fastValue, rs.status.margin});
        }
      }
      prevHour = h;
    }

    if (nextPlan == mix.sessions.size() && sched.allSessionsTerminal()) {
      report.ticks = t + 1;
      break;
    }
    report.ticks = t + 1;
  }
  for (const LiveSession& live : faultPending) {
    runFaultArm(live.plan, live.faultSeed);
  }
  report.hours[prevHour].activeAtEnd = sched.stats().activeSessions;

  // --- Health verdicts ----------------------------------------------------
  if (monitor) {
    const std::uint64_t lastTick = report.ticks > 0 ? report.ticks - 1 : 0;
    for (const telemetry::HealthEvent& ev : monitor->events()) {
      report.healthEvents.push_back({ev.rule, ev.fired, ev.tick,
                                     hourOfTick(ev.tick), ev.fastValue,
                                     ev.slowValue, ev.limit});
    }
    for (const telemetry::HealthRuleStatus& rs : monitor->ruleStatuses()) {
      report.healthRules.push_back(
          {rs.rule.name, telemetry::sloRuleStateName(rs.status.state),
           rs.status.fireCount, rs.status.fastValue, rs.status.margin});
      report.healthSamples.push_back(
          {lastTick, hourOfTick(lastTick), rs.rule.name,
           telemetry::sloRuleStateName(rs.status.state), rs.status.fastValue,
           rs.status.margin});
    }
  }
  if (flight) {
    report.flightTriggers = flight->triggerCount();
    report.flightCaptureCount = flight->captures().size();
    report.flightCaptures = flight->captures();
  }

  // --- Snapshot serving-stack accounting BEFORE the power sweep (whose
  // annotationFor calls would otherwise pollute the hit counters). ---------
  {
    const stream::FleetStats fs = sched.stats();
    report.sessionsJoined = fs.sessionsJoined;
    report.sessionsCompleted = fs.sessionsCompleted;
    report.sessionsLeft = fs.sessionsLeft;
    report.peakConcurrentSessions = fs.peakConcurrentSessions;
    report.uniqueStreams = fs.uniqueStreams;
    report.stallEvents = fs.stallEvents;
    report.stallSeconds = fs.stallSeconds;
    report.bytesDelivered = fs.bytesDelivered;
    const core::TrackCacheStats cs = cache.stats();
    report.cacheHits = cs.hits;
    report.cacheMisses = cs.misses;
    report.cacheFills = cs.fills;
    report.cacheEvictions = cs.evictions;
    report.cacheHitRate = cs.hitRate();
    report.engineSecondsTotal = cs.fillSeconds;
  }

  // --- Per-session aggregation + the power roll-up ------------------------
  // cellWatts was filled at each cell's first arrival; the lazy fill below
  // only covers cells no session reached (defensive, normally dead).
  std::map<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>, SoakCell>
      cells;
  std::vector<double> startups;
  std::vector<double> rebuffers;
  double fullJoules = 0.0;
  double servedSeconds = 0.0;
  for (std::uint64_t id = 1; id < planOf.size(); ++id) {
    const SessionPlan& plan = mix.sessions[planOf[id]];
    const stream::SessionReport r = sched.report(id);
    const auto key =
        std::make_tuple(plan.tenant, plan.deviceClass, plan.contentProfile);
    auto wattsIt = cellWatts.find(key);
    if (wattsIt == cellWatts.end()) {
      const core::CachedTrackPtr track = server.annotationFor(
          profiles[plan.contentProfile].name, mix.tenants[plan.tenant]);
      const DeviceClass& dc = classes[plan.deviceClass];
      const double saved =
          meanSavedWatts(track->track, dc.qualityIndex,
                         deviceModels[plan.deviceClass], dc.minBacklightLevel);
      const double full =
          deviceModels[plan.deviceClass].backlightPowerWatts(255);
      wattsIt = cellWatts.emplace(key, std::make_pair(saved, full)).first;
    }
    const double joules = wattsIt->second.first * r.playedSeconds;
    SoakCell& cell = cells[key];
    cell.tenant = plan.tenant;
    cell.deviceClass = plan.deviceClass;
    cell.contentProfile = plan.contentProfile;
    ++cell.sessions;
    const bool started = r.playedSeconds > 0.0;
    if (started) {
      ++cell.started;
      startups.push_back(r.startupDelaySeconds);
      rebuffers.push_back(r.stallSeconds);
    }
    if (r.phase == stream::SessionPhase::kCompleted) ++cell.completed;
    cell.servedSeconds += r.playedSeconds;
    cell.joulesSaved += joules;
    cell.startupSecondsSum += started ? r.startupDelaySeconds : 0.0;
    cell.stallSecondsSum += r.stallSeconds;
    cell.streamBytesSum += static_cast<double>(r.streamBytes);
    report.joulesSaved += joules;
    fullJoules += wattsIt->second.second * r.playedSeconds;
    servedSeconds += r.playedSeconds;
    const std::size_t arrivalHour = hourOfTick(plan.arrivalTick);
    report.hours[arrivalHour].joulesSaved += joules;
    report.hours[arrivalHour].servedSeconds += r.playedSeconds;
  }
  report.cells.reserve(cells.size());
  for (auto& [key, cell] : cells) report.cells.push_back(cell);

  report.servedHours = servedSeconds / 3600.0;
  report.wattsSavedPerMillionSessions =
      servedSeconds > 0.0 ? report.joulesSaved / servedSeconds * 1e6 : 0.0;
  report.backlightSavingsFraction =
      fullJoules > 0.0 ? report.joulesSaved / fullJoules : 0.0;
  std::sort(startups.begin(), startups.end());
  std::sort(rebuffers.begin(), rebuffers.end());
  report.startupP50Seconds = percentile(startups, 0.50);
  report.startupP99Seconds = percentile(startups, 0.99);
  report.rebufferP50Seconds = percentile(rebuffers, 0.50);
  report.rebufferP99Seconds = percentile(rebuffers, 0.99);
  report.enginePassesPerServedHour =
      report.servedHours > 0.0
          ? static_cast<double>(report.cacheFills) / report.servedHours
          : 0.0;
  report.engineSecondsPerServedHour =
      report.servedHours > 0.0 ? report.engineSecondsTotal / report.servedHours
                               : 0.0;
  report.soakWallSeconds = nowWall() - wallStart;
  return report;
}

std::string deterministicJson(const FleetSoakReport& r) {
  std::string out = "{\n";
  appendKv(out, "seed", r.seed, false);
  appendKv(out, "sessions_planned", static_cast<std::uint64_t>(r.sessionsPlanned), false);
  appendKv(out, "sessions_joined", static_cast<std::uint64_t>(r.sessionsJoined), false);
  appendKv(out, "sessions_completed", static_cast<std::uint64_t>(r.sessionsCompleted), false);
  appendKv(out, "sessions_left", static_cast<std::uint64_t>(r.sessionsLeft), false);
  appendKv(out, "peak_concurrent_sessions", static_cast<std::uint64_t>(r.peakConcurrentSessions), false);
  appendKv(out, "ticks", r.ticks, false);
  appendKv(out, "tenants", static_cast<std::uint64_t>(r.tenants), false);
  appendKv(out, "device_classes", static_cast<std::uint64_t>(r.deviceClasses), false);
  appendKv(out, "content_profiles", static_cast<std::uint64_t>(r.contentProfiles), false);
  appendKv(out, "unique_streams", static_cast<std::uint64_t>(r.uniqueStreams), false);
  appendKv(out, "cache_hits", r.cacheHits, false);
  appendKv(out, "cache_misses", r.cacheMisses, false);
  appendKv(out, "cache_fills", r.cacheFills, false);
  appendKv(out, "cache_evictions", r.cacheEvictions, false);
  appendKv(out, "cache_hit_rate", r.cacheHitRate, false);
  appendKv(out, "served_hours", r.servedHours, false);
  appendKv(out, "joules_saved", r.joulesSaved, false);
  appendKv(out, "watts_saved_per_million_sessions", r.wattsSavedPerMillionSessions, false);
  appendKv(out, "backlight_savings_fraction", r.backlightSavingsFraction, false);
  appendKv(out, "startup_p50_seconds", r.startupP50Seconds, false);
  appendKv(out, "startup_p99_seconds", r.startupP99Seconds, false);
  appendKv(out, "rebuffer_p50_seconds", r.rebufferP50Seconds, false);
  appendKv(out, "rebuffer_p99_seconds", r.rebufferP99Seconds, false);
  appendKv(out, "stall_events", r.stallEvents, false);
  appendKv(out, "stall_seconds", r.stallSeconds, false);
  appendKv(out, "bytes_delivered", r.bytesDelivered, false);
  appendKv(out, "engine_passes_per_served_hour", r.enginePassesPerServedHour, false);
  appendKv(out, "fault_sessions", static_cast<std::uint64_t>(r.faultSessions), false);
  appendKv(out, "fault_mutations_applied", static_cast<std::uint64_t>(r.faultMutationsApplied), false);
  appendKv(out, "fault_decode_ok", static_cast<std::uint64_t>(r.faultDecodeOk), false);
  appendKv(out, "fault_fallbacks", static_cast<std::uint64_t>(r.faultFallbacks), false);
  appendKv(out, "fault_undecodable", static_cast<std::uint64_t>(r.faultUndecodable), false);
  appendKv(out, "fault_throws", static_cast<std::uint64_t>(r.faultThrows), false);
  out += "  \"hours\": [\n";
  for (std::size_t h = 0; h < r.hours.size(); ++h) {
    const SoakHourBucket& b = r.hours[h];
    out += "    {\"hour\": " + std::to_string(h) +
           ", \"arrivals\": " + std::to_string(b.arrivals) +
           ", \"completions\": " + std::to_string(b.completions) +
           ", \"active_at_end\": " + std::to_string(b.activeAtEnd) +
           ", \"cache_hits\": " + std::to_string(b.cacheHits) +
           ", \"cache_misses\": " + std::to_string(b.cacheMisses) +
           ", \"hit_rate\": " + num(b.hitRate()) +
           ", \"stall_events\": " + std::to_string(b.stallEvents) +
           ", \"bytes_delivered\": " + std::to_string(b.bytesDelivered) +
           ", \"joules_saved\": " + num(b.joulesSaved) +
           ", \"served_seconds\": " + num(b.servedSeconds) + "}";
    out += h + 1 < r.hours.size() ? ",\n" : "\n";
  }
  out += "  ],\n";
  out += "  \"cells\": [\n";
  for (std::size_t i = 0; i < r.cells.size(); ++i) {
    const SoakCell& c = r.cells[i];
    out += "    {\"tenant\": " + std::to_string(c.tenant) +
           ", \"device_class\": " + std::to_string(c.deviceClass) +
           ", \"content_profile\": " + std::to_string(c.contentProfile) +
           ", \"sessions\": " + std::to_string(c.sessions) +
           ", \"started\": " + std::to_string(c.started) +
           ", \"completed\": " + std::to_string(c.completed) +
           ", \"served_seconds\": " + num(c.servedSeconds) +
           ", \"joules_saved\": " + num(c.joulesSaved) +
           ", \"startup_seconds_sum\": " + num(c.startupSecondsSum) +
           ", \"stall_seconds_sum\": " + num(c.stallSecondsSum) +
           ", \"stream_bytes_sum\": " + num(c.streamBytesSum) + "}";
    out += i + 1 < r.cells.size() ? ",\n" : "\n";
  }
  out += "  ],\n";
  out += "  \"health_events\": [";
  for (std::size_t i = 0; i < r.healthEvents.size(); ++i) {
    const SoakHealthEvent& e = r.healthEvents[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"rule\": \"" + telemetry::escapeJson(e.rule) +
           "\", \"fired\": " + (e.fired ? "true" : "false") +
           ", \"tick\": " + std::to_string(e.tick) +
           ", \"hour\": " + std::to_string(e.hour) +
           ", \"fast\": " + num(e.fastValue) +
           ", \"slow\": " + num(e.slowValue) +
           ", \"limit\": " + num(e.limit) + "}";
  }
  out += r.healthEvents.empty() ? "],\n" : "\n  ],\n";
  out += "  \"health_rules\": [";
  for (std::size_t i = 0; i < r.healthRules.size(); ++i) {
    const SoakHealthRule& h = r.healthRules[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"" + telemetry::escapeJson(h.name) +
           "\", \"state\": \"" + h.state +
           "\", \"fire_count\": " + std::to_string(h.fireCount) +
           ", \"fast\": " + num(h.fastValue) +
           ", \"margin\": " + num(h.margin) + "}";
  }
  out += r.healthRules.empty() ? "],\n" : "\n  ],\n";
  out += "  \"health_samples\": [";
  for (std::size_t i = 0; i < r.healthSamples.size(); ++i) {
    const SoakHealthSample& s = r.healthSamples[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"tick\": " + std::to_string(s.tick) +
           ", \"hour\": " + std::to_string(s.hour) +
           ", \"rule\": \"" + telemetry::escapeJson(s.rule) +
           "\", \"state\": \"" + s.state +
           "\", \"fast\": " + num(s.fastValue) +
           ", \"margin\": " + num(s.margin) + "}";
  }
  out += r.healthSamples.empty() ? "],\n" : "\n  ],\n";
  appendKv(out, "flight_triggers", r.flightTriggers, false);
  appendKv(out, "flight_capture_count",
           static_cast<std::uint64_t>(r.flightCaptureCount), true);
  out += "}";
  return out;
}

std::string toJson(const FleetSoakReport& r, const std::string& extra) {
  std::string det = deterministicJson(r);
  det.pop_back();  // strip the closing brace; reopen below
  std::string out = std::move(det);
  out += ",\n";
  appendKv(out, "engine_seconds_total", r.engineSecondsTotal, false);
  appendKv(out, "engine_seconds_per_served_hour", r.engineSecondsPerServedHour,
           false);
  appendKv(out, "ingest_seconds", r.ingestSeconds, false);
  appendKv(out, "soak_wall_seconds", r.soakWallSeconds, extra.empty());
  if (!extra.empty()) out += extra;
  out += "}\n";
  return out;
}

}  // namespace anno::soak
