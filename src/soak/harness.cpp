#include "soak/harness.h"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "concurrency/thread_pool.h"
#include "core/anno_codec.h"
#include "core/annotate.h"
#include "core/engine_metrics.h"
#include "fault/inject.h"
#include "media/clipgen.h"
#include "media/codec.h"
#include "power/power.h"
#include "stream/client.h"
#include "stream/loss.h"
#include "stream/mux.h"
#include "stream/proxy.h"
#include "stream/server.h"
#include "stream/session_sim.h"

namespace anno::soak {

void runCannedWorkload(const HarnessOptions& opts) {
  if (opts.registry != nullptr) {
    core::attachCodecTelemetry(*opts.registry);
    concurrency::attachPoolTelemetry(*opts.registry);
    stream::attachLossTelemetry(*opts.registry);
    fault::attachFaultTelemetry(*opts.registry);
  }
  if (opts.trace != nullptr) {
    concurrency::attachPoolTrace(*opts.trace);
    stream::attachLossTrace(*opts.trace);
  }

  std::optional<core::EngineTelemetry> engineObserver;
  core::AnnotatorConfig annotatorCfg;
  annotatorCfg.threads = opts.threads;
  if (opts.registry != nullptr) {
    engineObserver.emplace(*opts.registry);
    annotatorCfg.observer = &*engineObserver;
  }
  annotatorCfg.trace = opts.trace;

  // Server ingest: the primary clip always; the proxy's second clip only
  // when the workload wants a two-clip catalog.
  stream::MediaServer server(annotatorCfg);
  if (opts.registry != nullptr) server.attachTelemetry(*opts.registry);
  if (opts.trace != nullptr) server.attachTrace(*opts.trace);
  media::VideoClip movie =
      media::generatePaperClip(media::PaperClip::kTheMovie, 0.06, 64, 48);
  const std::string movieName = movie.name;
  const media::VideoClip original = movie;
  std::vector<media::VideoClip> ingest;
  ingest.push_back(std::move(movie));
  std::string proxyClipName = movieName;
  if (opts.proxySecondClip) {
    media::VideoClip cartoon =
        media::generatePaperClip(media::PaperClip::kShrek2, 0.06, 64, 48);
    proxyClipName = cartoon.name;
    ingest.push_back(std::move(cartoon));
  }
  server.addClips(std::move(ingest));

  const power::MobileDevicePower pda = power::makeIpaq5555Power();
  stream::ClientConfig clientCfg{pda.displayDevice(), /*qualityIndex=*/1,
                                 /*minBacklightLevel=*/10};
  stream::ClientSession client(clientCfg, stream::makeReferencePath());
  if (opts.registry != nullptr) client.attachTelemetry(*opts.registry);
  if (opts.trace != nullptr) client.attachTrace(*opts.trace);

  // Server path, twice with identical negotiation: miss then cache hit.
  const auto served = server.serve(movieName, client.capabilities());
  (void)server.serve(movieName, client.capabilities());
  (void)client.receive(served);

  // Proxy path: a raw (legacy) stream re-annotated on the fly.
  stream::ProxyNode proxy(annotatorCfg);
  if (opts.registry != nullptr) proxy.attachTelemetry(*opts.registry);
  if (opts.trace != nullptr) proxy.attachTrace(*opts.trace);
  const auto transcoded =
      proxy.transcode(server.serveRaw(proxyClipName), client.capabilities());
  if (opts.clientReceivesProxy) (void)client.receive(transcoded);

  // The track the lossy annotation hop carries: per-frame granularity spans
  // dozens of tiny-MTU packets (the interesting erasure case); the default
  // per-scene track keeps single-clip traces lean.
  const std::vector<std::uint8_t> hopTrackBytes = [&] {
    if (!opts.perFrameLossyTrack) {
      return core::encodeTrack(server.entry(movieName).track);
    }
    core::AnnotatorConfig perFrameCfg = annotatorCfg;
    perFrameCfg.granularity = core::Granularity::kPerFrame;
    return core::encodeTrack(core::annotateClip(original, perFrameCfg));
  }();

  fault::InjectorConfig faultCfg;
  faultCfg.maxMutations = 6;
  if (opts.faultCorpus) {
    // Damaged streams: every mutated buffer into the client, which must
    // degrade (fallback, repairs, slew clamps, or ok == false), never throw.
    fault::runCorpus(served, /*masterSeed=*/0x51, /*count=*/8, faultCfg,
                     [&client](std::span<const std::uint8_t> mutated,
                               const fault::InjectionPlan&,
                               const fault::InjectionReport&) {
                       (void)client.receive(mutated);
                     });

    // Annotation-targeted damage: bit flips in the track's back half damage
    // SOME scene-group chunks while the header and earlier groups survive,
    // reliably exercising the client's partial-repair path (full-backlight
    // spans next to real scenes, slew clamps at the boundaries).
    core::AnnotatorConfig perFrameCfg = annotatorCfg;
    perFrameCfg.granularity = core::Granularity::kPerFrame;
    const core::AnnotationTrack perFrameTrack =
        core::annotateClip(original, perFrameCfg);
    const std::vector<std::uint8_t> perFrameBytes =
        core::encodeTrack(perFrameTrack);
    std::vector<std::uint8_t> bytes =
        stream::mux(media::encodeClip(original), &perFrameTrack);
    const auto trackPos =
        std::search(bytes.begin(), bytes.end(), perFrameBytes.begin(),
                    perFrameBytes.end());
    if (trackPos != bytes.end()) {
      const auto base = static_cast<std::size_t>(trackPos - bytes.begin());
      fault::InjectionPlan annoPlan;
      annoPlan.seed = 0xA110;
      for (std::size_t i = 5; i <= 7; ++i) {
        fault::Mutation m;
        m.kind = fault::MutationKind::kBitFlip;
        m.offset = base + (i * perFrameBytes.size()) / 8;
        m.value = 2;
        annoPlan.mutations.push_back(m);
      }
      bytes = fault::applyPlan(bytes, annoPlan);
    }
    (void)client.receive(bytes);
  }

  if (opts.negotiationMismatch) {
    // A client asking for a quality level the track does not carry must
    // fall back (annotations present but unusable).
    stream::ClientConfig mismatchCfg = clientCfg;
    mismatchCfg.qualityIndex = 9;
    stream::ClientSession mismatchClient(mismatchCfg,
                                         stream::makeReferencePath());
    if (opts.registry != nullptr) mismatchClient.attachTelemetry(*opts.registry);
    (void)mismatchClient.receive(served);
  }

  if (opts.lossyVideoHop) {
    // Packetized video delivery + concealment over a lossy 802.11b hop.
    const media::EncodedClip encoded = media::encodeClip(original);
    const stream::Link wireless{"802.11b", 11e6, 0.002, 1500};
    const stream::LossyChannel channel{/*packetLossProbability=*/0.08,
                                       /*seed=*/0x7};
    const auto deliveries = stream::deliverFrames(encoded, wireless, channel);
    (void)stream::decodeWithConcealment(encoded, deliveries);
  }

  // Annotation track over a tiny-MTU hop: erasures without NACK (the lost
  // bytes exercise the lenient decoder's repairs), then recovery with NACK.
  const stream::Link tinyMtu{"802.11b-frag", 11e6, 0.002,
                             /*mtuBytes=*/stream::kPacketHeaderBytes + 24};
  stream::AnnotationDeliveryConfig lossyCfg;
  lossyCfg.channel = {/*packetLossProbability=*/0.30, /*seed=*/0x11};
  if (opts.annotationHopNoNack) {
    const auto erased =
        stream::deliverAnnotationTrack(hopTrackBytes, tinyMtu, lossyCfg);
    (void)core::decodeTrackLenient(erased.bytes);
  }
  lossyCfg.nackEnabled = true;
  (void)stream::deliverAnnotationTrack(hopTrackBytes, tinyMtu, lossyCfg);

  if (opts.faultCorpus) {
    // Corpus over the encoded track: every mutated buffer must decode
    // leniently (the fault suite's contract).
    fault::runCorpus(hopTrackBytes, /*masterSeed=*/0xC0FFEE, /*count=*/8,
                     faultCfg,
                     [](std::span<const std::uint8_t> mutated,
                        const fault::InjectionPlan&,
                        const fault::InjectionReport&) {
                       (void)core::decodeTrackLenient(mutated);
                     });
  }

  if (opts.sessionSim) {
    // Playback over a link carrying ~60% of the stream bitrate, so the
    // session provably stalls (rebuffer spans + buffer_seconds samples).
    const media::EncodedClip encoded = media::encodeClip(original);
    const stream::Link wifi = stream::makeReferencePath().lastHop();
    const double bitrate = static_cast<double>(encoded.totalBytes()) * 8.0 /
                           original.durationSeconds();
    stream::SessionSimConfig simCfg;
    simCfg.startupBufferSeconds = 0.25;
    simCfg.bufferCapacitySeconds = 1.0;
    simCfg.trace = opts.trace;
    (void)stream::simulateSession(
        encoded, wifi, stream::BandwidthTrace::constant(bitrate * 0.6),
        simCfg);
  }

  if (opts.registry != nullptr) {
    core::detachCodecTelemetry();
    concurrency::detachPoolTelemetry();
    stream::detachLossTelemetry();
    fault::detachFaultTelemetry();
  }
  if (opts.trace != nullptr) {
    concurrency::detachPoolTrace();
    stream::detachLossTrace();
  }
}

}  // namespace anno::soak
