#include "soak/traffic_mix.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <set>
#include <stdexcept>
#include <utility>

#include "media/rng.h"

namespace anno::soak {

namespace {

/// Weighted index pick: cumulative scan over `weights` (sums are tiny --
/// a handful of classes -- so no prefix table needed).
template <typename T>
std::uint32_t pickWeighted(const std::vector<T>& items, double draw) {
  double total = 0.0;
  for (const T& item : items) total += item.weight;
  double x = draw * total;
  for (std::size_t i = 0; i < items.size(); ++i) {
    x -= items[i].weight;
    if (x < 0.0) return static_cast<std::uint32_t>(i);
  }
  return static_cast<std::uint32_t>(items.size() - 1);
}

}  // namespace

std::vector<DeviceClass> defaultDeviceClasses() {
  std::vector<DeviceClass> classes;
  {
    DeviceClass c;  // the paper's measurement target on home WLAN
    c.name = "ipaq5555-wlan";
    c.device = display::KnownDevice::kIpaq5555;
    c.qualityIndex = 1;
    c.meanBitsPerSec = 6e6;
    c.weight = 4.0;
    classes.push_back(std::move(c));
  }
  {
    DeviceClass c;  // older front-lit PDA, slower link, deeper dimming
    c.name = "ipaq3650-legacy";
    c.device = display::KnownDevice::kIpaq3650;
    c.qualityIndex = 2;
    c.meanBitsPerSec = 3e6;
    c.startupBufferSeconds = 0.5;
    c.weight = 2.0;
    classes.push_back(std::move(c));
  }
  {
    DeviceClass c;  // battery-saver profile: brighter floor, top quality cut
    c.name = "zaurus-saver";
    c.device = display::KnownDevice::kZaurusSl5600;
    c.qualityIndex = 3;
    c.minBacklightLevel = 20;
    c.meanBitsPerSec = 4e6;
    c.weight = 2.0;
    classes.push_back(std::move(c));
  }
  {
    DeviceClass c;  // commute: link periodically collapses -> rebuffering
    c.name = "ipaq5555-commute";
    c.device = display::KnownDevice::kIpaq5555;
    c.qualityIndex = 0;
    c.meanBitsPerSec = 2.5e6;
    c.bandwidthJitter = 0.4;
    c.periodicDips = true;
    c.startupBufferSeconds = 0.4;
    c.weight = 1.0;
    classes.push_back(std::move(c));
  }
  return classes;
}

std::vector<ContentProfile> defaultContentProfiles(std::size_t count) {
  const std::vector<media::PaperClip> sources = media::allPaperClips();
  std::vector<ContentProfile> profiles;
  profiles.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    ContentProfile p;
    p.source = sources[i % sources.size()];
    // Wraps get a longer cut of the same trailer (distinct catalog entry,
    // distinct duration); the scale spread keeps session lifetimes diverse.
    p.durationScale = 0.008 + 0.004 * static_cast<double>(i / sources.size())
                      + 0.001 * static_cast<double>(i % 3);
    p.name = media::paperClipName(p.source) + "-soak" + std::to_string(i);
    // Popularity is head-heavy: the first few titles draw most sessions
    // (what makes an annotation cache earn its keep on a real catalog).
    p.weight = 1.0 / (1.0 + 0.35 * static_cast<double>(i));
    profiles.push_back(std::move(p));
  }
  return profiles;
}

std::vector<core::AnnotatorConfig> makeTenantConfigs(std::size_t count) {
  std::vector<core::AnnotatorConfig> tenants;
  tenants.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    core::AnnotatorConfig cfg;
    switch (i % 10) {
      case 0: break;  // the server default
      case 1: cfg.granularity = core::Granularity::kPerFrame; break;
      case 2: cfg.detector = core::SceneDetector::kHistogramEmd; break;
      case 3: cfg.backend.kind = compensate::BackendKind::kHebs; break;
      case 4: cfg.qualityLevels = {0.0, 0.1, 0.2, 0.3}; break;
      case 5: cfg.protectCredits = true; break;
      case 6: cfg.sceneDetect.changeThreshold = 0.15; break;
      case 7:
        cfg.detector = core::SceneDetector::kHistogramEmd;
        cfg.granularity = core::Granularity::kPerFrame;
        break;
      case 8:
        // Four levels minimum: device classes index up to quality 3.
        cfg.granularity = core::Granularity::kPerFrame;
        cfg.qualityLevels = {0.0, 0.05, 0.15, 0.3};
        break;
      case 9:
        cfg.protectCredits = true;
        cfg.detector = core::SceneDetector::kHistogramEmd;
        break;
    }
    // Past ten, perturb the ACTIVE detector's threshold so fingerprints
    // stay distinct (inactive knobs are cosmetic to the fingerprint).
    if (i >= 10) {
      const double nudge = 0.001 * static_cast<double>(i);
      if (cfg.detector == core::SceneDetector::kHistogramEmd) {
        cfg.histogramDetect.emdThreshold += nudge;
      } else {
        cfg.sceneDetect.changeThreshold += nudge;
      }
    }
    tenants.push_back(std::move(cfg));
  }
  return tenants;
}

double diurnalWeight(const DiurnalShape& shape, double hourOfDay) {
  const double phase =
      2.0 * std::numbers::pi * (hourOfDay - shape.peakHour) / 24.0;
  const double raised = 0.5 * (1.0 + std::cos(phase));
  return shape.troughFraction + (1.0 - shape.troughFraction) * raised;
}

std::size_t TrafficMix::uniqueAnnotationKeys() const {
  std::set<std::pair<std::uint32_t, std::uint64_t>> keys;
  for (const SessionPlan& s : sessions) {
    keys.insert({s.contentProfile, tenants[s.tenant].fingerprint()});
  }
  return keys.size();
}

TrafficMix generateTrafficMix(TrafficMixConfig cfg) {
  if (cfg.sessions == 0) {
    throw std::invalid_argument("generateTrafficMix: sessions must be > 0");
  }
  if (cfg.tickSeconds <= 0.0 || cfg.daySeconds < cfg.tickSeconds) {
    throw std::invalid_argument(
        "generateTrafficMix: need 0 < tickSeconds <= daySeconds");
  }
  if (cfg.tenantCount == 0) {
    throw std::invalid_argument("generateTrafficMix: tenantCount must be > 0");
  }
  if (cfg.deviceClasses.empty()) cfg.deviceClasses = defaultDeviceClasses();
  if (cfg.contentProfiles.empty()) {
    cfg.contentProfiles = defaultContentProfiles(10);
  }

  TrafficMix mix;
  mix.tenants = makeTenantConfigs(cfg.tenantCount);
  mix.ticks =
      static_cast<std::uint64_t>(std::ceil(cfg.daySeconds / cfg.tickSeconds));
  mix.arrivalsPerHour.assign(24, 0);

  // Per-tick arrival weights along the diurnal curve, normalized to land
  // exactly cfg.sessions arrivals via error diffusion (deterministic; no
  // rounding drift can gain or lose a session).
  std::vector<double> tickWeight(mix.ticks);
  double totalWeight = 0.0;
  for (std::uint64_t t = 0; t < mix.ticks; ++t) {
    const double hour = (static_cast<double>(t) * cfg.tickSeconds /
                         cfg.daySeconds) * 24.0;
    tickWeight[t] = diurnalWeight(cfg.diurnal, hour);
    totalWeight += tickWeight[t];
  }

  media::SplitMix64 rng(cfg.seed ^ 0x50A4C0DEULL);
  mix.sessions.reserve(cfg.sessions);
  double carry = 0.0;
  std::size_t planned = 0;
  for (std::uint64_t t = 0; t < mix.ticks && planned < cfg.sessions; ++t) {
    carry += static_cast<double>(cfg.sessions) * tickWeight[t] / totalWeight;
    std::size_t here = static_cast<std::size_t>(carry);
    carry -= static_cast<double>(here);
    if (t + 1 == mix.ticks) here = cfg.sessions - planned;  // flush the tail
    here = std::min(here, cfg.sessions - planned);
    for (std::size_t n = 0; n < here; ++n) {
      SessionPlan plan;
      plan.arrivalTick = t;
      plan.deviceClass = pickWeighted(cfg.deviceClasses, rng.uniform());
      plan.contentProfile = pickWeighted(cfg.contentProfiles, rng.uniform());
      plan.tenant = static_cast<std::uint32_t>(rng.below(cfg.tenantCount));
      const DeviceClass& dc = cfg.deviceClasses[plan.deviceClass];
      plan.bandwidthScale =
          rng.uniform(1.0 - dc.bandwidthJitter, 1.0 + dc.bandwidthJitter);
      if (rng.uniform() < cfg.faultFraction) {
        plan.faultSeed = rng.next() | 1;  // nonzero by construction
      }
      if (rng.uniform() < cfg.leaveFraction) {
        // Leave somewhere inside a typical lifetime (a few virtual seconds).
        plan.leaveAfterTicks = 2 + rng.below(40);
      }
      mix.sessions.push_back(plan);
      const std::size_t hour = std::min<std::size_t>(
          23, static_cast<std::size_t>(
                  (static_cast<double>(t) * cfg.tickSeconds / cfg.daySeconds) *
                  24.0));
      ++mix.arrivalsPerHour[hour];
      ++planned;
    }
  }

  mix.config = std::move(cfg);
  return mix;
}

}  // namespace anno::soak
