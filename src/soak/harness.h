// The canned server -> proxy -> client -> loss workload shared by the
// observability tools (tools/metrics_dump, tools/trace_report) and the soak
// tool's smoke pass.  One end-to-end pass over every layer of the paper's
// Fig. 1, parameterized by which arms run -- previously duplicated per tool,
// now one implementation with per-tool flag sets.
#pragma once

namespace anno::telemetry {
class Registry;
class TraceRecorder;
}

namespace anno::soak {

/// Which arms of the canned workload run.  The defaults are the superset;
/// each tool narrows to the arms whose events/counters it reports on.
struct HarnessOptions {
  /// Annotator worker threads (cosmetic: all outputs bit-identical).
  unsigned threads = 1;
  /// When set, every layer's metrics hooks attach here (server, proxy,
  /// client, codec, pool, loss, fault, engine observer).
  telemetry::Registry* registry = nullptr;
  /// When set, every layer's trace hooks attach here (engine scene spans,
  /// server/proxy/client spans, pool + loss events).
  telemetry::TraceRecorder* trace = nullptr;
  /// Ingest a second clip and run the proxy transcode over its raw bytes
  /// (false: the proxy re-annotates the primary clip instead, keeping a
  /// single-clip session timeline).
  bool proxySecondClip = true;
  /// Feed the proxy's transcoded stream through the client (false: the
  /// transcode still runs and is traced, but the client receives only the
  /// server stream -- keeps single-session timelines reconstructable).
  bool clientReceivesProxy = true;
  /// Deterministic fault corpora: mutated served streams into the client,
  /// annotation-targeted bit flips (partial-repair path), and a corpus over
  /// the encoded per-frame track through the lenient decoder.
  bool faultCorpus = true;
  /// A client negotiating a quality level the track does not carry
  /// (annotation fallback without damage).
  bool negotiationMismatch = true;
  /// Packetized video over a lossy 802.11b hop + concealment decode.
  bool lossyVideoHop = true;
  /// Annotation track over a tiny-MTU lossy hop WITHOUT NACK first (erasure
  /// + lenient decode); the NACK-recovered pass always runs.
  bool annotationHopNoNack = true;
  /// Use the per-frame-granularity track for the lossy annotation hop
  /// (spans dozens of packets); false uses the server's default track.
  bool perFrameLossyTrack = true;
  /// Simulated playback over a constrained link (provably stalls once, for
  /// rebuffer spans in the trace).
  bool sessionSim = false;
};

/// Runs the workload.  Attach/detach of module-level hooks (codec, pool,
/// loss, fault) is handled internally; the registry/recorder must outlive
/// the call.
void runCannedWorkload(const HarnessOptions& opts);

}  // namespace anno::soak
