#include "soak/capacity.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <set>
#include <stdexcept>

namespace anno::soak {

namespace {

double ratio(double num, double den) { return den > 0.0 ? num / den : 0.0; }

MetricCheck check(std::string name, double predicted, double measured,
                  double tolerance) {
  MetricCheck c;
  c.name = std::move(name);
  c.predicted = predicted;
  c.measured = measured;
  const double scale = std::max(std::abs(measured), 1e-12);
  c.relativeError = std::abs(predicted - measured) / scale;
  c.within = c.relativeError <= tolerance;
  return c;
}

std::string num(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return buf;
}

}  // namespace

CapacityModel CapacityModel::fit(const FleetSoakReport& report) {
  if (report.cells.empty()) {
    throw std::invalid_argument("CapacityModel::fit: report has no cells");
  }
  CapacityModel model;
  std::uint64_t totalSessions = 0, totalStarted = 0, totalCompleted = 0;
  double totalServed = 0.0, totalJoules = 0.0, totalStartup = 0.0;
  double totalStall = 0.0, totalBytes = 0.0;
  for (const SoakCell& cell : report.cells) {
    CellRates r;
    r.sessions = cell.sessions;
    const double n = static_cast<double>(cell.sessions);
    r.servedSecondsPerSession = ratio(cell.servedSeconds, n);
    r.joulesPerSession = ratio(cell.joulesSaved, n);
    r.startupSecondsPerStarted =
        ratio(cell.startupSecondsSum, static_cast<double>(cell.started));
    r.stallSecondsPerSession = ratio(cell.stallSecondsSum, n);
    r.streamBytesPerSession = ratio(cell.streamBytesSum, n);
    r.startedFraction = ratio(static_cast<double>(cell.started), n);
    r.completedFraction = ratio(static_cast<double>(cell.completed), n);
    model.cells_.emplace(
        std::make_tuple(cell.tenant, cell.deviceClass, cell.contentProfile),
        r);
    totalSessions += cell.sessions;
    totalStarted += cell.started;
    totalCompleted += cell.completed;
    totalServed += cell.servedSeconds;
    totalJoules += cell.joulesSaved;
    totalStartup += cell.startupSecondsSum;
    totalStall += cell.stallSecondsSum;
    totalBytes += cell.streamBytesSum;
  }
  const double n = static_cast<double>(totalSessions);
  model.fallback_.sessions = totalSessions;
  model.fallback_.servedSecondsPerSession = ratio(totalServed, n);
  model.fallback_.joulesPerSession = ratio(totalJoules, n);
  model.fallback_.startupSecondsPerStarted =
      ratio(totalStartup, static_cast<double>(totalStarted));
  model.fallback_.stallSecondsPerSession = ratio(totalStall, n);
  model.fallback_.streamBytesPerSession = ratio(totalBytes, n);
  model.fallback_.startedFraction =
      ratio(static_cast<double>(totalStarted), n);
  model.fallback_.completedFraction =
      ratio(static_cast<double>(totalCompleted), n);
  model.meanFillSeconds_ =
      report.cacheFills > 0
          ? report.engineSecondsTotal / static_cast<double>(report.cacheFills)
          : 0.0;
  return model;
}

CapacityPrediction CapacityModel::predict(const TrafficMix& mix) const {
  CapacityPrediction p;
  p.sessions = mix.sessions.size();
  p.uniqueAnnotationKeys = mix.uniqueAnnotationKeys();

  std::set<std::tuple<std::uint32_t, std::uint64_t, std::uint32_t>> streams;
  double served = 0.0, joules = 0.0, startupWeighted = 0.0, started = 0.0;
  double bytes = 0.0;
  for (const SessionPlan& plan : mix.sessions) {
    streams.insert({plan.contentProfile,
                    mix.tenants[plan.tenant].fingerprint(),
                    plan.deviceClass});
    const auto it = cells_.find(std::make_tuple(
        plan.tenant, plan.deviceClass, plan.contentProfile));
    const CellRates& r = it != cells_.end() ? it->second : fallback_;
    if (it == cells_.end()) ++p.uncoveredSessions;
    served += r.servedSecondsPerSession;
    joules += r.joulesPerSession;
    startupWeighted += r.startedFraction * r.startupSecondsPerStarted;
    started += r.startedFraction;
    bytes += r.streamBytesPerSession;
  }
  p.uniqueStreams = streams.size();
  p.servedHours = served / 3600.0;
  p.joulesSaved = joules;
  p.wattsSavedPerMillionSessions = served > 0.0 ? joules / served * 1e6 : 0.0;
  // Cache traffic is structural: one lookup per session join (the client's
  // track resolution) plus one per materialized stream group (the serve
  // path's own resolution); the misses are exactly the unique keys.
  const double lookups =
      static_cast<double>(p.sessions) + static_cast<double>(p.uniqueStreams);
  p.cacheHitRate =
      lookups > 0.0
          ? 1.0 - static_cast<double>(p.uniqueAnnotationKeys) / lookups
          : 0.0;
  p.meanStartupSeconds = started > 0.0 ? startupWeighted / started : 0.0;
  p.streamBytesPerSession =
      p.sessions > 0 ? bytes / static_cast<double>(p.sessions) : 0.0;
  p.enginePassesPerServedHour =
      p.servedHours > 0.0
          ? static_cast<double>(p.uniqueAnnotationKeys) / p.servedHours
          : 0.0;
  return p;
}

CapacityValidation CapacityModel::validate(const CapacityPrediction& predicted,
                                           const FleetSoakReport& measured,
                                           double tolerance) {
  CapacityValidation v;
  v.tolerance = tolerance;
  double startupSum = 0.0, bytesSum = 0.0;
  std::uint64_t startedSum = 0;
  for (const SoakCell& cell : measured.cells) {
    startupSum += cell.startupSecondsSum;
    bytesSum += cell.streamBytesSum;
    startedSum += cell.started;
  }
  const double measuredStartup =
      startedSum > 0 ? startupSum / static_cast<double>(startedSum) : 0.0;
  const double measuredBytesPerSession =
      measured.sessionsJoined > 0
          ? bytesSum / static_cast<double>(measured.sessionsJoined)
          : 0.0;
  v.checks.push_back(check("watts_saved_per_million_sessions",
                           predicted.wattsSavedPerMillionSessions,
                           measured.wattsSavedPerMillionSessions, tolerance));
  v.checks.push_back(check("served_hours", predicted.servedHours,
                           measured.servedHours, tolerance));
  v.checks.push_back(check("cache_hit_rate", predicted.cacheHitRate,
                           measured.cacheHitRate, tolerance));
  v.checks.push_back(
      check("engine_passes",
            static_cast<double>(predicted.uniqueAnnotationKeys),
            static_cast<double>(measured.cacheFills), tolerance));
  v.checks.push_back(check("mean_startup_seconds",
                           predicted.meanStartupSeconds, measuredStartup,
                           tolerance));
  v.checks.push_back(check("stream_bytes_per_session",
                           predicted.streamBytesPerSession,
                           measuredBytesPerSession, tolerance));
  v.pass = true;
  for (const MetricCheck& c : v.checks) v.pass = v.pass && c.within;
  return v;
}

double CapacityModel::joulesSavedPerServedHour(std::uint32_t tenant) const {
  double joules = 0.0, served = 0.0;
  for (const auto& [key, r] : cells_) {
    if (std::get<0>(key) != tenant) continue;
    const double n = static_cast<double>(r.sessions);
    joules += r.joulesPerSession * n;
    served += r.servedSecondsPerSession * n;
  }
  return served > 0.0 ? joules / (served / 3600.0) : 0.0;
}

double CapacityModel::sessionsPerEngineCoreHour(double hitRate) const {
  const double missRate = std::clamp(1.0 - hitRate, 0.0, 1.0);
  const double secondsPerSession = missRate * meanFillSeconds_;
  if (secondsPerSession <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return 3600.0 / secondsPerSession;
}

std::string toJson(const CapacityValidation& v) {
  std::string out = "  \"capacity_validation\": {\n";
  out += "    \"tolerance\": " + num(v.tolerance) + ",\n";
  out += std::string("    \"pass\": ") + (v.pass ? "true" : "false") + ",\n";
  out += "    \"checks\": [\n";
  for (std::size_t i = 0; i < v.checks.size(); ++i) {
    const MetricCheck& c = v.checks[i];
    out += "      {\"name\": \"" + c.name +
           "\", \"predicted\": " + num(c.predicted) +
           ", \"measured\": " + num(c.measured) +
           ", \"relative_error\": " + num(c.relativeError) +
           ", \"within\": " + (c.within ? "true" : "false") + "}";
    out += i + 1 < v.checks.size() ? ",\n" : "\n";
  }
  out += "    ]\n  }\n";
  return out;
}

}  // namespace anno::soak
