// The fleet soak driver: replays a TrafficMix against the REAL serving
// stack -- MediaServer + TrackCache + SessionScheduler (and, for the
// fault-injection arm, fault::injectFaults + a real ClientSession decode) --
// and rolls the per-session accounting up into one fleet-level report.
//
// This is the composition PR 1-8 built toward: the engine, the codec's
// lenient decode, the cache's single-flight sharing, the scheduler's
// discrete-tick playback and the fault injectors all run together for tens
// of thousands of sessions over a diurnal day.  The report answers the
// north-star questions directly: watts saved per million streaming
// sessions, p50/p99 startup and rebuffer, annotation-cache hit rate, and
// engine-seconds per served-hour.
//
// Determinism contract: every field of FleetSoakReport except the
// `measured` wall-clock block is a pure function of SoakConfig -- same
// config, same report, on any machine and at any deliveryThreads setting
// (the scheduler's worker-pool tick is pinned identical to serial).
// deterministicJson() serializes exactly that reproducible core; the
// fleet_soak tool diffs it across two same-seed runs as its self-check.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "soak/traffic_mix.h"
#include "stream/scheduler.h"
#include "telemetry/health.h"

namespace anno::soak {

/// One injected mid-run degradation: a deterministic fault the health layer
/// is expected to catch (tools/fleet_health drives these and asserts which
/// rules fire when).
struct Degradation {
  enum class Kind : std::uint8_t {
    /// Force `magnitude` of arrivals (fraction, 0..1) into the
    /// fault-injection arm regardless of the mix's faultFraction.
    kFaultRateStep = 0,
    /// Multiply the TrackCache byte budget by `magnitude` (e.g. 1/1024).
    kCacheSqueeze = 1,
    /// Clamp the scheduler's per-tick service budget to `magnitude`
    /// sessions (an egress-capacity loss).
    kServiceBudgetSqueeze = 2,
    /// Multiply the powerWeight of JOINING sessions by `magnitude` -- a
    /// power-savings regression visible only through the playing-power
    /// gauges (the joules roll-up keeps using the true per-cell watts, so
    /// this drill perturbs exactly what the watts SLO watches).
    kPowerRegression = 3,
  };
  Kind kind = Kind::kFaultRateStep;
  std::uint64_t startTick = 0;
  /// Exclusive end; 0 = rest of the run.
  std::uint64_t endTick = 0;
  double magnitude = 0.0;
};

/// The soak's live-health arm: when enabled, the serving stack runs with a
/// registry attached, a HealthMonitor observing every tick, and (optionally)
/// a FlightRecorder freezing a trace capture on each firing.
struct HealthOptions {
  bool enabled = false;
  telemetry::HealthConfig config;
  bool flightRecorder = true;
  telemetry::FlightRecorder::Config flight;
};

/// Signals + rules tuned to this mix's scale: stall rate < 0.5% of
/// session-ticks, cache hit rate > 85%, startup p99 < 2s, fault-session
/// rate < 8%, and (when `expectedWattsPerMillionSessions` > 0) watts saved
/// per million playing sessions inside [0.5x, 2x] of expectation.  Windows
/// derive from the mix's virtual hour so the rules mean the same thing at
/// any day length.
[[nodiscard]] HealthOptions defaultHealthOptions(
    const TrafficMixConfig& mix,
    double expectedWattsPerMillionSessions = 0.0);

/// Everything a soak run needs beyond the mix itself.
struct SoakConfig {
  TrafficMixConfig mix;
  stream::SchedulePolicy policy = stream::SchedulePolicy::kRoundRobin;
  /// Sessions granted delivery per scheduler tick (0 = unlimited).
  std::size_t serviceBudgetPerTick = 0;
  /// Scheduler delivery-phase worker threads (1 = serial, 0 = hardware).
  unsigned deliveryThreads = 1;
  /// Server ingest threads (cosmetic for all outputs; 0 = hardware).
  unsigned ingestThreads = 0;
  /// TrackCache byte budget.  The default is generous: the soak measures
  /// sharing; eviction churn has its own suite (tests/soak).
  std::size_t cacheByteBudget = 256u << 20;
  /// Master switch for the fault-injection arm (mix.faultFraction picks
  /// the sessions; this gates whether their plans run at all).
  bool faultInjection = true;
  /// Safety valve for the tick loop (0 = derived from the mix horizon).
  std::uint64_t maxTicks = 0;
  /// Live-health arm (off by default: a plain soak pays nothing).
  HealthOptions health;
  /// Deterministic mid-run faults for the health layer to catch.
  std::vector<Degradation> degradations;
};

/// One virtual hour of the day (24 per run): the diurnal roll-up behind
/// `plot_results.py --soak`.
struct SoakHourBucket {
  std::size_t arrivals = 0;
  std::size_t completions = 0;
  std::size_t activeAtEnd = 0;
  std::uint64_t cacheHits = 0;
  std::uint64_t cacheMisses = 0;
  std::uint64_t stallEvents = 0;
  std::uint64_t bytesDelivered = 0;
  /// Joules saved by sessions ARRIVING in this bucket (attribution by
  /// arrival keeps the number deterministic and single-counted).
  double joulesSaved = 0.0;
  double servedSeconds = 0.0;

  [[nodiscard]] double hitRate() const noexcept {
    const std::uint64_t total = cacheHits + cacheMisses;
    return total > 0 ? static_cast<double>(cacheHits) /
                           static_cast<double>(total)
                     : 0.0;
  }
};

/// One cell of the (tenant x device class x content profile) cross-product:
/// the capacity model's fitting unit.
struct SoakCell {
  std::uint32_t tenant = 0;
  std::uint32_t deviceClass = 0;
  std::uint32_t contentProfile = 0;
  std::uint64_t sessions = 0;
  std::uint64_t started = 0;    ///< reached playback (startup stats valid)
  std::uint64_t completed = 0;
  double servedSeconds = 0.0;
  double joulesSaved = 0.0;     ///< backlight joules vs full-backlight
  double startupSecondsSum = 0.0;
  double stallSecondsSum = 0.0;
  double streamBytesSum = 0.0;

  friend bool operator==(const SoakCell&, const SoakCell&) = default;
};

/// One SLO transition, stamped with its diurnal hour.
struct SoakHealthEvent {
  std::string rule;
  bool fired = false;
  std::uint64_t tick = 0;
  std::size_t hour = 0;
  double fastValue = 0.0;
  double slowValue = 0.0;
  double limit = 0.0;

  friend bool operator==(const SoakHealthEvent&,
                         const SoakHealthEvent&) = default;
};

/// Final per-rule verdict.
struct SoakHealthRule {
  std::string name;
  std::string state;  ///< warmup | ok | firing
  std::uint64_t fireCount = 0;
  double fastValue = 0.0;
  double margin = 0.0;

  friend bool operator==(const SoakHealthRule&,
                         const SoakHealthRule&) = default;
};

/// Per-rule margin sampled at each virtual-hour boundary (the time series
/// behind plot_results.py --health).
struct SoakHealthSample {
  std::uint64_t tick = 0;
  std::size_t hour = 0;
  std::string rule;
  std::string state;
  double fastValue = 0.0;
  double margin = 0.0;

  friend bool operator==(const SoakHealthSample&,
                         const SoakHealthSample&) = default;
};

/// The fleet-level report.
struct FleetSoakReport {
  // --- deterministic core -------------------------------------------------
  std::uint64_t seed = 0;
  std::size_t sessionsPlanned = 0;
  std::size_t sessionsJoined = 0;
  std::size_t sessionsCompleted = 0;
  std::size_t sessionsLeft = 0;
  std::size_t peakConcurrentSessions = 0;
  std::uint64_t ticks = 0;
  std::size_t tenants = 0;
  std::size_t deviceClasses = 0;
  std::size_t contentProfiles = 0;
  std::size_t uniqueStreams = 0;
  std::uint64_t cacheHits = 0;
  std::uint64_t cacheMisses = 0;
  std::uint64_t cacheFills = 0;       ///< == engine passes
  std::uint64_t cacheEvictions = 0;
  double cacheHitRate = 0.0;
  double servedHours = 0.0;           ///< sum of played content time
  double joulesSaved = 0.0;           ///< backlight joules vs full backlight
  /// Mean backlight watts saved per active session, scaled to a fleet of
  /// one million concurrent sessions: (joulesSaved / servedSeconds) * 1e6.
  double wattsSavedPerMillionSessions = 0.0;
  /// Same roll-up as a fraction of full-backlight power (device-mix
  /// weighted): the paper's Fig. 9 number held at fleet scale.
  double backlightSavingsFraction = 0.0;
  double startupP50Seconds = 0.0;
  double startupP99Seconds = 0.0;
  double rebufferP50Seconds = 0.0;
  double rebufferP99Seconds = 0.0;
  std::uint64_t stallEvents = 0;
  double stallSeconds = 0.0;
  std::uint64_t bytesDelivered = 0;
  double enginePassesPerServedHour = 0.0;  ///< deterministic twin of below
  // Fault-injection arm.
  std::size_t faultSessions = 0;        ///< streams mutated + decoded
  std::size_t faultMutationsApplied = 0;
  std::size_t faultDecodeOk = 0;        ///< still playable after damage
  std::size_t faultFallbacks = 0;       ///< degraded to full backlight
  std::size_t faultUndecodable = 0;     ///< ok == false (video destroyed)
  std::size_t faultThrows = 0;          ///< MUST stay 0: receive never throws
  std::vector<SoakHourBucket> hours;    ///< 24 diurnal buckets
  std::vector<SoakCell> cells;          ///< capacity-model observations
  // Live-health arm (all empty/zero when HealthOptions.enabled == false).
  std::vector<SoakHealthEvent> healthEvents;
  std::vector<SoakHealthRule> healthRules;
  std::vector<SoakHealthSample> healthSamples;
  std::uint64_t flightTriggers = 0;     ///< rule firings seen by the recorder
  std::size_t flightCaptureCount = 0;
  // --- measured (wall clock; excluded from the determinism digest) --------
  /// Frozen anomaly traces.  The event SEQUENCE is deterministic but the
  /// wall stamps are real nanoseconds, so captures live outside the digest
  /// (their COUNT above is inside it).
  std::vector<telemetry::FlightRecorder::Capture> flightCaptures;
  double engineSecondsTotal = 0.0;      ///< wall time inside cache fills
  double engineSecondsPerServedHour = 0.0;
  double ingestSeconds = 0.0;
  double soakWallSeconds = 0.0;
};

/// Runs the soak.  Throws only on configuration errors; workload-induced
/// exceptions anywhere in the stack are a bug (the tool counts a run that
/// throws as a crash).
[[nodiscard]] FleetSoakReport runSoak(const SoakConfig& cfg);

/// Serializes ONLY the deterministic core (stable field order, exact
/// formatting): two same-seed runs must produce byte-identical output.
[[nodiscard]] std::string deterministicJson(const FleetSoakReport& report);

/// Full FLEET_SOAK.json body: the deterministic core plus the measured
/// block; `extra` (optional, pre-rendered JSON object members) is appended
/// verbatim -- the tool uses it for the capacity-validation block.
[[nodiscard]] std::string toJson(const FleetSoakReport& report,
                                 const std::string& extra = "");

}  // namespace anno::soak
