// Queryable capacity/power model fit from a soak run (McPAT spirit: measure
// once, then answer "what does this configuration cost at scale" without
// re-running the fleet).
//
// The model is deliberately simple and inspectable: one rate vector per
// (tenant x device class x content profile) cell observed in the fit run --
// served seconds per session, joules saved per session, startup seconds per
// started session, stream bytes per session.  A prediction for a NEW traffic
// mix composes those cell rates weighted by the mix's planned cell counts;
// cache behaviour is predicted structurally (unique annotation keys and
// unique stream groups are exact functions of the mix).  Validation runs the
// prediction against a fresh measured soak and gates every deterministic
// metric at a relative tolerance -- the fleet_soak tool ships with a
// held-out seed check at 10%.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "soak/driver.h"
#include "soak/traffic_mix.h"

namespace anno::soak {

/// Per-cell rates learned from one soak run.
struct CellRates {
  std::uint64_t sessions = 0;            ///< fit-run sample size
  double servedSecondsPerSession = 0.0;
  double joulesPerSession = 0.0;
  double startupSecondsPerStarted = 0.0;
  double stallSecondsPerSession = 0.0;
  double streamBytesPerSession = 0.0;
  double startedFraction = 0.0;
  double completedFraction = 0.0;
};

/// What the model predicts for a mix (all deterministic given mix + model).
struct CapacityPrediction {
  std::size_t sessions = 0;
  std::size_t uniqueAnnotationKeys = 0;  ///< == predicted engine passes/fills
  std::size_t uniqueStreams = 0;
  double servedHours = 0.0;
  double joulesSaved = 0.0;
  double wattsSavedPerMillionSessions = 0.0;
  double cacheHitRate = 0.0;
  double meanStartupSeconds = 0.0;
  double streamBytesPerSession = 0.0;
  double enginePassesPerServedHour = 0.0;
  /// Plans landing in cells the fit run never observed (served by the
  /// global fallback rates; nonzero means the fit mix under-covered).
  std::size_t uncoveredSessions = 0;
};

/// One predicted-vs-measured comparison.
struct MetricCheck {
  std::string name;
  double predicted = 0.0;
  double measured = 0.0;
  double relativeError = 0.0;
  bool within = false;
};

/// The validation verdict the fleet_soak tool gates its exit code on.
struct CapacityValidation {
  double tolerance = 0.10;
  bool pass = false;
  std::vector<MetricCheck> checks;
};

class CapacityModel {
 public:
  /// Fits cell rates from a finished soak report.  Throws
  /// std::invalid_argument on a report with no cells.
  [[nodiscard]] static CapacityModel fit(const FleetSoakReport& report);

  /// Predicts fleet metrics for `mix` by composing fit-run cell rates over
  /// the mix's planned cell counts.
  [[nodiscard]] CapacityPrediction predict(const TrafficMix& mix) const;

  /// Compares a prediction against a measured run; every check must land
  /// within `tolerance` relative error for pass == true.
  [[nodiscard]] static CapacityValidation validate(
      const CapacityPrediction& predicted, const FleetSoakReport& measured,
      double tolerance = 0.10);

  // --- direct queries ("what does this config cost at scale") -------------

  /// Backlight joules saved per served-hour under tenant `tenant` (summed
  /// over that tenant's observed cells).  0.0 for unobserved tenants.
  [[nodiscard]] double joulesSavedPerServedHour(std::uint32_t tenant) const;

  /// Mean wall seconds one engine pass (cache fill) cost in the fit run.
  /// Wall-clock derived -- a sizing query, not a determinism-gated metric.
  [[nodiscard]] double meanFillSeconds() const noexcept {
    return meanFillSeconds_;
  }

  /// Sessions one engine core sustains per hour at `hitRate`: each session
  /// costs (1 - hitRate) expected fills of meanFillSeconds() each.
  /// Returns +inf at hitRate == 1 with a zero-cost fill history.
  [[nodiscard]] double sessionsPerEngineCoreHour(double hitRate) const;

  [[nodiscard]] const std::map<std::tuple<std::uint32_t, std::uint32_t,
                                          std::uint32_t>,
                               CellRates>&
  cells() const noexcept {
    return cells_;
  }

 private:
  std::map<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>, CellRates>
      cells_;
  CellRates fallback_;  ///< global per-session averages (uncovered cells)
  double meanFillSeconds_ = 0.0;
};

/// Renders a validation block as JSON object members (no surrounding
/// braces) for embedding into FLEET_SOAK.json.
[[nodiscard]] std::string toJson(const CapacityValidation& validation);

}  // namespace anno::soak
