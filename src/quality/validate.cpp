#include "quality/validate.h"

namespace anno::quality {

ValidationReport validateCompensation(const display::DeviceModel& device,
                                      CameraModel& camera,
                                      const media::Image& original,
                                      const media::Image& compensated,
                                      int backlightLevel,
                                      const QualityThresholds& thresholds) {
  ValidationReport report;
  report.backlightLevel = backlightLevel;

  const media::GrayImage reference =
      camera.snapshot(device, original, 255);
  const media::GrayImage adjusted =
      camera.snapshot(device, compensated, backlightLevel);

  report.referenceHistogram = media::Histogram::ofGray(reference);
  report.compensatedHistogram = media::Histogram::ofGray(adjusted);
  report.comparison =
      compareHistograms(report.referenceHistogram,
                        report.compensatedHistogram);
  report.pass = acceptable(report.comparison, thresholds);
  return report;
}

}  // namespace anno::quality
