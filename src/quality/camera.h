// Digital camera model for objective display validation.
//
// Paper Sec. 4.2: "We introduce an alternative, novel way of validating the
// results with a digital camera. ... The picture taken by the camera
// incorporates the actual characteristics of the handheld display, which are
// not otherwise captured by a simulation. ... A digital camera has a
// monotonic nonlinear transfer function [Debevec & Malik, SIGGRAPH'97] and
// allows us to objectively estimate the similarity between two images."
//
// The model: scene radiance (panel output) -> exposure scaling -> optical
// vignetting -> monotonic non-linear response curve -> sensor noise -> 8-bit
// quantization.  The response curve is invertible (linearize()), mirroring
// Debevec-Malik response recovery, which the characterization flow uses.
#pragma once

#include <cstdint>
#include <vector>

#include "display/characterize.h"
#include "display/device.h"
#include "media/image.h"
#include "media/rng.h"

namespace anno::quality {

/// Camera parameters.
struct CameraConfig {
  double exposure = 1.0;        ///< radiance multiplier before the response
  double responseGamma = 2.2;   ///< response(x) = x^(1/gamma), monotone
  double vignetting = 0.12;     ///< corner falloff fraction (0 = none)
  double noiseRms = 0.8;        ///< sensor noise, 8-bit code units
  std::uint64_t seed = 0xCA3;
};

/// Simulated digital camera.
class CameraModel {
 public:
  explicit CameraModel(CameraConfig cfg = {});

  /// Photographs a panel emission map (relative luminance per pixel encoded
  /// as 8-bit codes, e.g. from display::displayedLuma).  Deterministic for
  /// a fixed camera instance sequence.
  [[nodiscard]] media::GrayImage capture(const media::GrayImage& panelOutput);

  /// Photographs `frame` as shown on `device` at `backlightLevel`
  /// (convenience wrapper: render panel output, then capture).
  [[nodiscard]] media::GrayImage snapshot(const display::DeviceModel& device,
                                          const media::Image& frame,
                                          int backlightLevel,
                                          double ambientRel = 0.0);

  /// Inverts the response curve (vignetting/noise cannot be undone): maps a
  /// captured code value back to relative scene radiance in [0,1].
  [[nodiscard]] double linearize(std::uint8_t code) const;

  [[nodiscard]] const CameraConfig& config() const noexcept { return cfg_; }

 private:
  CameraConfig cfg_;
  media::SplitMix64 rng_;
};

/// Recovered camera response (Debevec & Malik, SIGGRAPH'97 -- the paper's
/// citation [8] for why a digital camera permits objective comparison).
/// Given snapshots of the same static patch at several known exposure
/// ratios, fits the monotone power-law response the camera applies, WITHOUT
/// access to the camera's configuration.  The recovered gamma lets any
/// third-party validate panels with an uncalibrated camera.
struct ResponseRecovery {
  double gamma = 2.2;          ///< fitted response exponent
  double rmsResidual = 0.0;    ///< fit quality (log-domain)
  int samplesUsed = 0;
};

/// Runs the recovery: photographs `patch` (an 8-bit radiance map) through
/// `camera` at each exposure in `exposureRatios` (relative to the camera's
/// base exposure) and least-squares fits log(code) vs log(radiance).
/// Throws std::invalid_argument on fewer than two exposures.
[[nodiscard]] ResponseRecovery recoverResponse(
    const CameraModel& camera, const media::GrayImage& patch,
    const std::vector<double>& exposureRatios);

/// Adapts the camera to the display-characterization LuminanceMeter
/// interface: photographs a solid patch and averages the linearized centre
/// region (centre crop avoids the vignetted corners).
class CameraMeter final : public display::LuminanceMeter {
 public:
  explicit CameraMeter(CameraConfig cfg = {}, int patchSize = 64);

  [[nodiscard]] double measure(const display::DeviceModel& device,
                               std::uint8_t grayValue,
                               int backlightLevel) override;

 private:
  CameraModel camera_;
  int patchSize_;
};

}  // namespace anno::quality
