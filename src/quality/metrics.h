// Image quality metrics.
//
// The paper's primary metric is histogram comparison (average point shift +
// dynamic range change, Sec. 4.2 / Fig. 3); PSNR is implemented as well
// because the QABS baseline [Cheng et al., LNCS'05] optimizes for it and the
// benches compare the two philosophies.
#pragma once

#include <string>

#include "media/histogram.h"
#include "media/image.h"

namespace anno::quality {

/// Mean squared error between two gray images (same size required).
[[nodiscard]] double mse(const media::GrayImage& a, const media::GrayImage& b);

/// PSNR in dB (infinity-clamped to 99 dB for identical images).
[[nodiscard]] double psnr(const media::GrayImage& a,
                          const media::GrayImage& b);

/// MSE / PSNR over the luma planes of RGB images.
[[nodiscard]] double mse(const media::Image& a, const media::Image& b);
[[nodiscard]] double psnr(const media::Image& a, const media::Image& b);

/// Structural similarity (Wang et al. 2004) over the luma planes: mean of
/// per-window SSIM on non-overlapping 8x8 windows, standard constants
/// (K1=0.01, K2=0.03, L=255).  Returns a value in [-1, 1]; 1 = identical.
/// More aligned with perceived quality than PSNR -- useful when comparing
/// the clipping artefacts of aggressive quality levels.
[[nodiscard]] double ssim(const media::GrayImage& a, const media::GrayImage& b);
[[nodiscard]] double ssim(const media::Image& a, const media::Image& b);

/// Histogram-based comparison report (the paper's quality verdict).
struct HistogramComparison {
  double averagePointShift = 0.0;   ///< |avg(a) - avg(b)|, code values
  double dynamicRangeChange = 0.0;  ///< |dr(a) - dr(b)|, code values
  double intersection = 1.0;        ///< [0,1], 1 = identical shape
  double earthMovers = 0.0;         ///< code-value units
};

[[nodiscard]] HistogramComparison compareHistograms(const media::Histogram& a,
                                                    const media::Histogram& b);

/// Quality verdict thresholds (code-value units for shift/EMD).  Defaults
/// correspond to "hardly noticeable for a human" in the paper's Fig. 4
/// example, where a 50% backlight compensated frame moved the average
/// brightness by only a few codes.
struct QualityThresholds {
  double maxAveragePointShift = 12.0;
  double maxEarthMovers = 14.0;
  double minIntersection = 0.55;
};

/// True if the comparison passes all thresholds.
[[nodiscard]] bool acceptable(const HistogramComparison& c,
                              const QualityThresholds& t = {});

[[nodiscard]] std::string toString(const HistogramComparison& c);

}  // namespace anno::quality
