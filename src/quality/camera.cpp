#include "quality/camera.h"

#include <cmath>
#include <stdexcept>

#include "display/panel.h"

namespace anno::quality {

CameraModel::CameraModel(CameraConfig cfg) : cfg_(cfg), rng_(cfg.seed) {
  if (cfg_.exposure <= 0.0 || cfg_.responseGamma <= 0.0 ||
      cfg_.vignetting < 0.0 || cfg_.vignetting >= 1.0 || cfg_.noiseRms < 0.0) {
    throw std::invalid_argument("CameraModel: invalid configuration");
  }
}

media::GrayImage CameraModel::capture(const media::GrayImage& panelOutput) {
  if (panelOutput.empty()) {
    throw std::invalid_argument("CameraModel::capture: empty input");
  }
  const int w = panelOutput.width();
  const int h = panelOutput.height();
  media::GrayImage out(w, h);
  const double cx = (w - 1) / 2.0;
  const double cy = (h - 1) / 2.0;
  const double maxR2 = cx * cx + cy * cy;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      // Scene radiance in [0,1].
      double radiance = panelOutput(x, y) / 255.0;
      radiance *= cfg_.exposure;
      // Cos^4-style vignetting approximated radially.
      if (cfg_.vignetting > 0.0 && maxR2 > 0.0) {
        const double r2 = ((x - cx) * (x - cx) + (y - cy) * (y - cy)) / maxR2;
        radiance *= 1.0 - cfg_.vignetting * r2;
      }
      if (radiance > 1.0) radiance = 1.0;
      // Monotonic non-linear response.
      const double response = std::pow(radiance, 1.0 / cfg_.responseGamma);
      const double code = response * 255.0 + rng_.gaussian(0.0, cfg_.noiseRms);
      out(x, y) = media::clamp8(code);
    }
  }
  return out;
}

media::GrayImage CameraModel::snapshot(const display::DeviceModel& device,
                                       const media::Image& frame,
                                       int backlightLevel, double ambientRel) {
  const double backlightRel = device.transfer.relLuminance(backlightLevel);
  return capture(
      display::displayedLuma(device.panel, frame, backlightRel, ambientRel));
}

double CameraModel::linearize(std::uint8_t code) const {
  const double response = code / 255.0;
  return std::pow(response, cfg_.responseGamma) / cfg_.exposure;
}

ResponseRecovery recoverResponse(const CameraModel& camera,
                                 const media::GrayImage& patch,
                                 const std::vector<double>& exposureRatios) {
  if (exposureRatios.size() < 2) {
    throw std::invalid_argument("recoverResponse: need >= 2 exposures");
  }
  if (patch.empty()) {
    throw std::invalid_argument("recoverResponse: empty patch");
  }
  // Least squares on log(code) = (1/gamma) * log(radiance) + c, over the
  // centre crop (dodging vignetting) of every exposure.
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  int n = 0;
  std::vector<std::pair<double, double>> points;
  for (double ratio : exposureRatios) {
    if (ratio <= 0.0) {
      throw std::invalid_argument("recoverResponse: exposure ratio <= 0");
    }
    CameraConfig cfg = camera.config();
    cfg.exposure *= ratio;
    CameraModel exposed(cfg);
    const media::GrayImage shot = exposed.capture(patch);
    const int x0 = patch.width() / 4;
    const int x1 = patch.width() - patch.width() / 4;
    const int y0 = patch.height() / 4;
    const int y1 = patch.height() - patch.height() / 4;
    for (int y = y0; y < y1; ++y) {
      for (int x = x0; x < x1; ++x) {
        const std::uint8_t code = shot(x, y);
        const double radiance =
            patch(x, y) / 255.0 * camera.config().exposure * ratio;
        // Skip the saturated/noisy extremes, as Debevec-Malik do with
        // their weighting function.
        if (code < 10 || code > 245 || radiance <= 1e-6 || radiance > 1.0) {
          continue;
        }
        const double lx = std::log(radiance);
        const double ly = std::log(code / 255.0);
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
        points.emplace_back(lx, ly);
        ++n;
      }
    }
  }
  if (n < 8) {
    throw std::runtime_error(
        "recoverResponse: not enough usable samples (patch too dark/bright)");
  }
  const double denom = n * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) {
    throw std::runtime_error("recoverResponse: degenerate exposures");
  }
  const double slope = (n * sxy - sx * sy) / denom;
  const double intercept = (sy - slope * sx) / n;
  ResponseRecovery result;
  result.gamma = slope > 1e-9 ? 1.0 / slope : 0.0;
  result.samplesUsed = n;
  double sse = 0.0;
  for (const auto& [lx, ly] : points) {
    const double e = ly - (slope * lx + intercept);
    sse += e * e;
  }
  result.rmsResidual = std::sqrt(sse / n);
  return result;
}

CameraMeter::CameraMeter(CameraConfig cfg, int patchSize)
    : camera_(cfg), patchSize_(patchSize) {
  if (patchSize_ < 8) {
    throw std::invalid_argument("CameraMeter: patch too small");
  }
}

double CameraMeter::measure(const display::DeviceModel& device,
                            std::uint8_t grayValue, int backlightLevel) {
  const media::Image patch(patchSize_, patchSize_,
                           media::Rgb8{grayValue, grayValue, grayValue});
  const media::GrayImage shot =
      camera_.snapshot(device, patch, backlightLevel);
  // Average the linearized centre crop (half-size window) to dodge the
  // vignetted corners, as one would with a real camera.
  const int x0 = patchSize_ / 4;
  const int x1 = patchSize_ - patchSize_ / 4;
  double sum = 0.0;
  int n = 0;
  for (int y = x0; y < x1; ++y) {
    for (int x = x0; x < x1; ++x) {
      sum += camera_.linearize(shot(x, y));
      ++n;
    }
  }
  return n > 0 ? sum / n : 0.0;
}

}  // namespace anno::quality
