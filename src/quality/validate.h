// Camera-based compensation validation (paper Fig. 2).
//
// Phase 1: photograph the PDA showing the ORIGINAL frame at FULL backlight
//          (reference snapshot).
// Phase 2: photograph the PDA showing the COMPENSATED frame at the REDUCED
//          backlight (compensated snapshot).
// Quality evaluation: compare the two snapshots' histograms.
#pragma once

#include "display/device.h"
#include "media/histogram.h"
#include "media/image.h"
#include "quality/camera.h"
#include "quality/metrics.h"

namespace anno::quality {

/// Result of one validation run.
struct ValidationReport {
  media::Histogram referenceHistogram;
  media::Histogram compensatedHistogram;
  HistogramComparison comparison;
  bool pass = false;
  int backlightLevel = 255;  ///< reduced level used for the compensated shot
};

/// Runs the Fig. 2 flow for one frame pair on one device.
/// `original` is shown at full backlight; `compensated` at `backlightLevel`.
[[nodiscard]] ValidationReport validateCompensation(
    const display::DeviceModel& device, CameraModel& camera,
    const media::Image& original, const media::Image& compensated,
    int backlightLevel, const QualityThresholds& thresholds = {});

}  // namespace anno::quality
