#include "quality/metrics.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "media/luminance.h"

namespace anno::quality {
namespace {

template <typename Img>
void checkSameSize(const Img& a, const Img& b, const char* what) {
  if (a.width() != b.width() || a.height() != b.height() || a.empty()) {
    throw std::invalid_argument(std::string(what) +
                                ": images must be same non-empty size");
  }
}

}  // namespace

double mse(const media::GrayImage& a, const media::GrayImage& b) {
  checkSameSize(a, b, "mse");
  double sum = 0.0;
  auto pa = a.pixels();
  auto pb = b.pixels();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    const double d = static_cast<double>(pa[i]) - static_cast<double>(pb[i]);
    sum += d * d;
  }
  return sum / static_cast<double>(pa.size());
}

double psnr(const media::GrayImage& a, const media::GrayImage& b) {
  const double m = mse(a, b);
  if (m <= 0.0) return 99.0;
  return std::min(99.0, 10.0 * std::log10(255.0 * 255.0 / m));
}

double mse(const media::Image& a, const media::Image& b) {
  checkSameSize(a, b, "mse");
  return mse(media::lumaPlane(a), media::lumaPlane(b));
}

double psnr(const media::Image& a, const media::Image& b) {
  checkSameSize(a, b, "psnr");
  return psnr(media::lumaPlane(a), media::lumaPlane(b));
}

double ssim(const media::GrayImage& a, const media::GrayImage& b) {
  checkSameSize(a, b, "ssim");
  constexpr double kC1 = (0.01 * 255.0) * (0.01 * 255.0);
  constexpr double kC2 = (0.03 * 255.0) * (0.03 * 255.0);
  constexpr int kWin = 8;
  double sum = 0.0;
  int windows = 0;
  for (int y0 = 0; y0 + kWin <= a.height(); y0 += kWin) {
    for (int x0 = 0; x0 + kWin <= a.width(); x0 += kWin) {
      double meanA = 0.0, meanB = 0.0;
      for (int y = y0; y < y0 + kWin; ++y) {
        for (int x = x0; x < x0 + kWin; ++x) {
          meanA += a(x, y);
          meanB += b(x, y);
        }
      }
      constexpr double kN = kWin * kWin;
      meanA /= kN;
      meanB /= kN;
      double varA = 0.0, varB = 0.0, cov = 0.0;
      for (int y = y0; y < y0 + kWin; ++y) {
        for (int x = x0; x < x0 + kWin; ++x) {
          const double da = a(x, y) - meanA;
          const double db = b(x, y) - meanB;
          varA += da * da;
          varB += db * db;
          cov += da * db;
        }
      }
      varA /= kN - 1.0;
      varB /= kN - 1.0;
      cov /= kN - 1.0;
      sum += ((2.0 * meanA * meanB + kC1) * (2.0 * cov + kC2)) /
             ((meanA * meanA + meanB * meanB + kC1) * (varA + varB + kC2));
      ++windows;
    }
  }
  if (windows == 0) {
    throw std::invalid_argument("ssim: images smaller than the 8x8 window");
  }
  return sum / windows;
}

double ssim(const media::Image& a, const media::Image& b) {
  checkSameSize(a, b, "ssim");
  return ssim(media::lumaPlane(a), media::lumaPlane(b));
}

HistogramComparison compareHistograms(const media::Histogram& a,
                                      const media::Histogram& b) {
  HistogramComparison c;
  c.averagePointShift = std::abs(a.averagePoint() - b.averagePoint());
  // Trim 0.5% outlier mass from each tail so a handful of noisy camera
  // pixels cannot dominate the dynamic-range reading.
  c.dynamicRangeChange =
      std::abs(static_cast<double>(a.dynamicRange(0.005)) -
               static_cast<double>(b.dynamicRange(0.005)));
  c.intersection = media::Histogram::intersection(a, b);
  c.earthMovers = media::Histogram::earthMovers(a, b);
  return c;
}

bool acceptable(const HistogramComparison& c, const QualityThresholds& t) {
  return c.averagePointShift <= t.maxAveragePointShift &&
         c.earthMovers <= t.maxEarthMovers &&
         c.intersection >= t.minIntersection;
}

std::string toString(const HistogramComparison& c) {
  std::ostringstream os;
  os << "avgShift=" << c.averagePointShift
     << " drChange=" << c.dynamicRangeChange
     << " intersection=" << c.intersection << " emd=" << c.earthMovers;
  return os.str();
}

}  // namespace anno::quality
