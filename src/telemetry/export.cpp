#include "telemetry/export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace anno::telemetry {

std::string formatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Trim to the shortest representation that still round-trips visually:
  // %.17g is exact but ugly; prefer %g when it encodes the same value.
  char shortBuf[64];
  std::snprintf(shortBuf, sizeof shortBuf, "%g", v);
  double back = 0.0;
  std::sscanf(shortBuf, "%lf", &back);
  return back == v ? shortBuf : buf;
}

std::string escapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string escapeJson(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// Renders `{k="v",...}` (empty string for no labels); `extra` appends one
/// more pair (the histogram `le` label).
std::string labelBlock(const Labels& labels, const std::string& extraKey = "",
                       const std::string& extraValue = "") {
  if (labels.empty() && extraKey.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + escapeLabelValue(v) + "\"";
  }
  if (!extraKey.empty()) {
    if (!first) out += ",";
    out += extraKey + "=\"" + escapeLabelValue(extraValue) + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

double quantileFromBucketCounts(const std::vector<double>& bounds,
                                const std::vector<std::uint64_t>& counts,
                                double q) {
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0 || bounds.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  double cumBefore = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double inBucket = static_cast<double>(counts[i]);
    if (inBucket > 0.0 && cumBefore + inBucket >= rank) {
      if (i >= bounds.size()) return bounds.back();  // +Inf bucket
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      return lo + (bounds[i] - lo) * ((rank - cumBefore) / inBucket);
    }
    cumBefore += inBucket;
  }
  return bounds.back();
}

double histogramQuantile(const HistogramSnapshot& histogram, double q) {
  return quantileFromBucketCounts(histogram.bounds, histogram.counts, q);
}

std::uint64_t Snapshot::counterValue(const std::string& name,
                                     const Labels& labels) const {
  Labels canon = labels;
  std::sort(canon.begin(), canon.end());
  for (const InstrumentSnapshot& inst : instruments) {
    if (inst.kind == InstrumentKind::kCounter && inst.name == name &&
        inst.labels == canon) {
      return inst.counterValue;
    }
  }
  return 0;
}

Snapshot scrape(const Registry& registry) {
  Snapshot snap;
  {
    const std::lock_guard<std::mutex> lock(registry.mu_);
    snap.instruments.reserve(registry.instruments_.size());
    for (const auto& instPtr : registry.instruments_) {
      const Registry::Instrument& inst = *instPtr;
      InstrumentSnapshot out;
      out.name = inst.name;
      out.labels = inst.labels;
      out.help = inst.help;
      out.kind = inst.kind;
      switch (inst.kind) {
        case InstrumentKind::kCounter:
          out.counterValue = inst.counter->value();
          break;
        case InstrumentKind::kGauge:
          out.gaugeValue = inst.gauge->value();
          break;
        case InstrumentKind::kHistogram: {
          const Histogram& h = *inst.histogram;
          out.histogram.bounds = h.bounds();
          out.histogram.counts.reserve(h.bounds().size() + 1);
          for (std::size_t i = 0; i <= h.bounds().size(); ++i) {
            out.histogram.counts.push_back(h.bucketCount(i));
          }
          out.histogram.count = h.count();
          out.histogram.sum = h.sum();
          break;
        }
      }
      snap.instruments.push_back(std::move(out));
    }
  }
  std::sort(snap.instruments.begin(), snap.instruments.end(),
            [](const InstrumentSnapshot& a, const InstrumentSnapshot& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  return snap;
}

Snapshot scrape() { return scrape(Registry::global()); }

std::string toPrometheusText(const Snapshot& snapshot) {
  std::string out;
  std::string lastFamily;
  for (const InstrumentSnapshot& inst : snapshot.instruments) {
    if (inst.name != lastFamily) {
      lastFamily = inst.name;
      if (!inst.help.empty()) {
        // HELP text follows the exposition-format escaping rules for
        // comments: a raw newline here would truncate the line and turn
        // the remainder into garbage series.
        std::string help;
        help.reserve(inst.help.size());
        for (char c : inst.help) {
          if (c == '\\') help += "\\\\";
          else if (c == '\n') help += "\\n";
          else help += c;
        }
        out += "# HELP " + inst.name + " " + help + "\n";
      }
      out += "# TYPE " + inst.name + " ";
      out += instrumentKindName(inst.kind);
      out += "\n";
    }
    char num[64];
    switch (inst.kind) {
      case InstrumentKind::kCounter:
        std::snprintf(num, sizeof num, " %" PRIu64 "\n", inst.counterValue);
        out += inst.name + labelBlock(inst.labels) + num;
        break;
      case InstrumentKind::kGauge:
        std::snprintf(num, sizeof num, " %" PRId64 "\n", inst.gaugeValue);
        out += inst.name + labelBlock(inst.labels) + num;
        break;
      case InstrumentKind::kHistogram: {
        const HistogramSnapshot& h = inst.histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.bounds.size(); ++i) {
          cumulative += h.counts[i];
          std::snprintf(num, sizeof num, " %" PRIu64 "\n", cumulative);
          out += inst.name + "_bucket" +
                 labelBlock(inst.labels, "le", formatDouble(h.bounds[i])) +
                 num;
        }
        cumulative += h.counts.back();
        std::snprintf(num, sizeof num, " %" PRIu64 "\n", cumulative);
        out += inst.name + "_bucket" + labelBlock(inst.labels, "le", "+Inf") +
               num;
        out += inst.name + "_sum" + labelBlock(inst.labels) + " " +
               formatDouble(h.sum) + "\n";
        std::snprintf(num, sizeof num, " %" PRIu64 "\n", h.count);
        out += inst.name + "_count" + labelBlock(inst.labels) + num;
        break;
      }
    }
  }
  return out;
}

std::string toJson(const Snapshot& snapshot) {
  std::string out = "{\n  \"instruments\": [";
  bool firstInst = true;
  for (const InstrumentSnapshot& inst : snapshot.instruments) {
    out += firstInst ? "\n" : ",\n";
    firstInst = false;
    out += "    {\"name\": \"" + escapeJson(inst.name) + "\", \"kind\": \"";
    out += instrumentKindName(inst.kind);
    out += "\", \"labels\": {";
    bool firstLabel = true;
    for (const auto& [k, v] : inst.labels) {
      if (!firstLabel) out += ", ";
      firstLabel = false;
      out += "\"" + escapeJson(k) + "\": \"" + escapeJson(v) + "\"";
    }
    out += "}";
    char num[96];
    switch (inst.kind) {
      case InstrumentKind::kCounter:
        std::snprintf(num, sizeof num, ", \"value\": %" PRIu64,
                      inst.counterValue);
        out += num;
        break;
      case InstrumentKind::kGauge:
        std::snprintf(num, sizeof num, ", \"value\": %" PRId64,
                      inst.gaugeValue);
        out += num;
        break;
      case InstrumentKind::kHistogram: {
        const HistogramSnapshot& h = inst.histogram;
        std::snprintf(num, sizeof num, ", \"count\": %" PRIu64 ", \"sum\": ",
                      h.count);
        out += num;
        out += formatDouble(h.sum);
        out += ", \"p50\": ";
        out += formatDouble(histogramQuantile(h, 0.50));
        out += ", \"p90\": ";
        out += formatDouble(histogramQuantile(h, 0.90));
        out += ", \"p99\": ";
        out += formatDouble(histogramQuantile(h, 0.99));
        out += ", \"buckets\": [";
        for (std::size_t i = 0; i < h.counts.size(); ++i) {
          if (i > 0) out += ", ";
          out += "{\"le\": ";
          out += i < h.bounds.size() ? formatDouble(h.bounds[i])
                                     : std::string("\"+Inf\"");
          std::snprintf(num, sizeof num, ", \"count\": %" PRIu64 "}",
                        h.counts[i]);
          out += num;
        }
        out += "]";
        break;
      }
    }
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace anno::telemetry
