#include "telemetry/metrics.h"

#include <algorithm>
#include <stdexcept>

namespace anno::telemetry {
namespace {

bool validName(const std::string& s) {
  if (s.empty()) return false;
  const auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(s.front())) return false;
  return std::all_of(s.begin(), s.end(), [&](char c) {
    return head(c) || (c >= '0' && c <= '9');
  });
}

/// Canonical identity key: name + sorted k=v pairs.  Label VALUES are
/// arbitrary strings; a 0x1f separator keeps the key unambiguous.
std::string canonicalKey(const std::string& name, const Labels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

Labels canonicalLabels(Labels labels) {
  std::sort(labels.begin(), labels.end());
  for (std::size_t i = 0; i + 1 < labels.size(); ++i) {
    if (labels[i].first == labels[i + 1].first) {
      throw std::invalid_argument("telemetry: duplicate label key: " +
                                  labels[i].first);
    }
  }
  return labels;
}

}  // namespace

const char* instrumentKindName(InstrumentKind kind) noexcept {
  switch (kind) {
    case InstrumentKind::kCounter: return "counter";
    case InstrumentKind::kGauge: return "gauge";
    case InstrumentKind::kHistogram: return "histogram";
  }
  return "unknown";
}

std::vector<double> secondsBuckets() {
  return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0};
}

std::vector<double> countBuckets() {
  return {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096};
}

std::vector<double> magnitudeBuckets() {
  return {1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9};
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Registry::Instrument& Registry::findOrCreate(const std::string& name,
                                             const Labels& labels,
                                             const std::string& help,
                                             InstrumentKind kind) {
  if (!validName(name)) {
    throw std::invalid_argument("telemetry: invalid metric name: " + name);
  }
  for (const auto& [k, v] : labels) {
    if (!validName(k)) {
      throw std::invalid_argument("telemetry: invalid label key: " + k);
    }
  }
  const std::string key = canonicalKey(name, labels);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    Instrument& existing = *instruments_[it->second];
    if (existing.kind != kind) {
      throw std::invalid_argument(
          "telemetry: " + name + " already registered as " +
          instrumentKindName(existing.kind));
    }
    if (existing.help.empty() && !help.empty()) existing.help = help;
    return existing;
  }
  auto inst = std::make_unique<Instrument>();
  inst->name = name;
  inst->labels = labels;
  inst->help = help;
  inst->kind = kind;
  instruments_.push_back(std::move(inst));
  index_.emplace(key, instruments_.size() - 1);
  return *instruments_.back();
}

Counter& Registry::counter(const std::string& name, const Labels& labels,
                           const std::string& help) {
  const Labels canon = canonicalLabels(labels);
  const std::lock_guard<std::mutex> lock(mu_);
  Instrument& inst =
      findOrCreate(name, canon, help, InstrumentKind::kCounter);
  if (!inst.counter) inst.counter = std::make_unique<Counter>();
  return *inst.counter;
}

Gauge& Registry::gauge(const std::string& name, const Labels& labels,
                       const std::string& help) {
  const Labels canon = canonicalLabels(labels);
  const std::lock_guard<std::mutex> lock(mu_);
  Instrument& inst = findOrCreate(name, canon, help, InstrumentKind::kGauge);
  if (!inst.gauge) inst.gauge = std::make_unique<Gauge>();
  return *inst.gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bucketBounds,
                               const Labels& labels, const std::string& help) {
  if (bucketBounds.empty()) {
    throw std::invalid_argument("telemetry: histogram needs >= 1 bucket: " +
                                name);
  }
  if (!std::is_sorted(bucketBounds.begin(), bucketBounds.end()) ||
      std::adjacent_find(bucketBounds.begin(), bucketBounds.end()) !=
          bucketBounds.end()) {
    throw std::invalid_argument(
        "telemetry: histogram bounds must be strictly ascending: " + name);
  }
  const Labels canon = canonicalLabels(labels);
  const std::lock_guard<std::mutex> lock(mu_);
  Instrument& inst =
      findOrCreate(name, canon, help, InstrumentKind::kHistogram);
  if (!inst.histogram) {
    inst.histogram.reset(new Histogram(std::move(bucketBounds)));
  } else if (inst.histogram->bounds() != bucketBounds) {
    throw std::invalid_argument(
        "telemetry: histogram re-registered with different bounds: " + name);
  }
  return *inst.histogram;
}

std::size_t Registry::instrumentCount() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return instruments_.size();
}

Registry::Instrument* Registry::findExisting(const std::string& name,
                                             const Labels& labels,
                                             InstrumentKind kind) const {
  Labels canon = labels;
  std::sort(canon.begin(), canon.end());
  const auto it = index_.find(canonicalKey(name, canon));
  if (it == index_.end()) return nullptr;
  Instrument* inst = instruments_[it->second].get();
  return inst->kind == kind ? inst : nullptr;
}

Counter* Registry::findCounter(const std::string& name,
                               const Labels& labels) const {
  const std::lock_guard<std::mutex> lock(mu_);
  Instrument* inst = findExisting(name, labels, InstrumentKind::kCounter);
  return inst != nullptr ? inst->counter.get() : nullptr;
}

Gauge* Registry::findGauge(const std::string& name,
                           const Labels& labels) const {
  const std::lock_guard<std::mutex> lock(mu_);
  Instrument* inst = findExisting(name, labels, InstrumentKind::kGauge);
  return inst != nullptr ? inst->gauge.get() : nullptr;
}

Histogram* Registry::findHistogram(const std::string& name,
                                   const Labels& labels) const {
  const std::lock_guard<std::mutex> lock(mu_);
  Instrument* inst = findExisting(name, labels, InstrumentKind::kHistogram);
  return inst != nullptr ? inst->histogram.get() : nullptr;
}

}  // namespace anno::telemetry
