// Process-wide metrics core: named Counter / Gauge / Histogram instruments
// behind a thread-safe Registry, plus a lightweight Span timer.
//
// The design rule is "pay at registration, not at increment": a label set is
// resolved to a stable instrument handle ONCE (under the registry mutex) and
// every subsequent hot-path operation is a single relaxed atomic -- no locks,
// no allocation, no string hashing.  Scraping reads the same relaxed atomics,
// so writers and the scraper never contend and the whole module is TSan-clean
// by construction.
//
// Zero-cost when unused: instrumented subsystems hold nullable handles
// (defaulting to nullptr) and go through the null-safe free helpers at the
// bottom of this header, so a process that never attaches a registry pays
// one predictable branch per would-be increment and nothing else.
//
// Naming convention (DESIGN.md §10): `anno_<subsystem>_<what>[_total]`,
// Prometheus-compatible ([a-zA-Z_:][a-zA-Z0-9_:]*); counters end in
// `_total`, duration histograms end in `_seconds`.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace anno::telemetry {

/// Canonicalized label set: (key, value) pairs, sorted by key at
/// registration time.  Two registrations with the same pairs in any order
/// resolve to the same instrument.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class InstrumentKind : std::uint8_t { kCounter, kGauge, kHistogram };

[[nodiscard]] const char* instrumentKindName(InstrumentKind kind) noexcept;

/// Monotonically increasing event count.  inc() is one relaxed fetch_add.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous signed value (catalog size, queue depth).  updateMax() is
/// the high-water idiom: a relaxed CAS loop that only ever raises the value.
class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  void updateMax(std::int64_t v) noexcept {
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket distribution.  Bucket upper bounds are frozen at
/// registration (ascending, finite); an implicit +Inf bucket catches the
/// tail.  observe() is a short linear scan (bucket counts are small by
/// design) plus two relaxed atomics; the bucket layout never changes, so
/// there is nothing to lock.
class Histogram {
 public:
  /// Value lands in the first bucket whose upper bound is >= v.
  void observe(double v) noexcept {
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    counts_[i].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// Per-bucket (NON-cumulative) count; index bounds().size() is +Inf.
  [[nodiscard]] std::uint64_t bucketCount(std::size_t i) const noexcept {
    return counts_[i].load(std::memory_order_relaxed);
  }
  /// Total observations, derived as the bucket sum so the Prometheus
  /// invariant (le="+Inf" cumulative count == _count) holds exactly; this
  /// keeps observe() at two relaxed RMWs.
  [[nodiscard]] std::uint64_t count() const noexcept {
    std::uint64_t total = 0;
    for (const std::atomic<std::uint64_t>& c : counts_) {
      total += c.load(std::memory_order_relaxed);
    }
    return total;
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  explicit Histogram(std::vector<double> bounds)
      : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {}

  std::vector<double> bounds_;                     ///< ascending, finite
  std::vector<std::atomic<std::uint64_t>> counts_; ///< bounds+1 (+Inf last)
  std::atomic<double> sum_{0.0};
};

/// Standard bucket ladders for the instrument catalog.
[[nodiscard]] std::vector<double> secondsBuckets();     ///< 1us .. 10s, decades
[[nodiscard]] std::vector<double> countBuckets();       ///< 1 .. 4096, octaves
[[nodiscard]] std::vector<double> magnitudeBuckets();   ///< 1e3 .. 1e9, decades

struct Snapshot;  // export.h

/// The registry: owns instruments, hands out stable handles, and is the
/// scrape root.  Registration and scraping lock a mutex; instrument
/// operations never do.  Handles stay valid for the registry's lifetime.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry (what telemetry::scrape() reads).
  [[nodiscard]] static Registry& global();

  /// Registers (or finds) an instrument.  Re-registering the same
  /// (name, labels) returns the SAME handle; registering it as a different
  /// kind -- or a histogram with different bounds -- throws
  /// std::invalid_argument, as does a non-Prometheus name or label key.
  [[nodiscard]] Counter& counter(const std::string& name,
                                 const Labels& labels = {},
                                 const std::string& help = "");
  [[nodiscard]] Gauge& gauge(const std::string& name,
                             const Labels& labels = {},
                             const std::string& help = "");
  [[nodiscard]] Histogram& histogram(const std::string& name,
                                     std::vector<double> bucketBounds,
                                     const Labels& labels = {},
                                     const std::string& help = "");

  [[nodiscard]] std::size_t instrumentCount() const;

  /// Read-only lookup: the instrument if it is already registered with the
  /// matching kind, else nullptr.  Never registers anything -- this is how
  /// consumers that only READ (the health monitor's signal resolution) find
  /// handles without perturbing the instrument set.
  [[nodiscard]] Counter* findCounter(const std::string& name,
                                     const Labels& labels = {}) const;
  [[nodiscard]] Gauge* findGauge(const std::string& name,
                                 const Labels& labels = {}) const;
  [[nodiscard]] Histogram* findHistogram(const std::string& name,
                                         const Labels& labels = {}) const;

 private:
  friend Snapshot scrape(const Registry& registry);

  struct Instrument {
    std::string name;
    Labels labels;  ///< canonical (sorted by key)
    std::string help;
    InstrumentKind kind = InstrumentKind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Instrument& findOrCreate(const std::string& name, const Labels& labels,
                           const std::string& help, InstrumentKind kind);
  /// Lookup half of the find* accessors; caller holds mu_.  Null when the
  /// instrument is absent or registered as a different kind.
  [[nodiscard]] Instrument* findExisting(const std::string& name,
                                         const Labels& labels,
                                         InstrumentKind kind) const;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Instrument>> instruments_;
  std::map<std::string, std::size_t> index_;  ///< canonical key -> slot
};

/// RAII wall-time timer: records elapsed seconds into a Histogram on
/// destruction (or stop()).  A null sink makes construction and destruction
/// free -- no clock is read -- so instrumented code paths cost nothing when
/// telemetry is detached.
class Span {
 public:
  explicit Span(Histogram* sink) noexcept : sink_(sink) {
    if (sink_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { stop(); }

  /// Records now; further stop() calls are no-ops.
  void stop() noexcept {
    if (sink_ == nullptr) return;
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start_;
    sink_->observe(elapsed.count());
    sink_ = nullptr;
  }

 private:
  Histogram* sink_;
  std::chrono::steady_clock::time_point start_;
};

// Null-safe helpers: the idiom every instrumented subsystem uses so that a
// detached (nullptr) instrument costs one branch.
inline void inc(Counter* c, std::uint64_t n = 1) noexcept {
  if (c != nullptr) c->inc(n);
}
inline void set(Gauge* g, std::int64_t v) noexcept {
  if (g != nullptr) g->set(v);
}
inline void add(Gauge* g, std::int64_t d) noexcept {
  if (g != nullptr) g->add(d);
}
inline void updateMax(Gauge* g, std::int64_t v) noexcept {
  if (g != nullptr) g->updateMax(v);
}
inline void observe(Histogram* h, double v) noexcept {
  if (h != nullptr) h->observe(v);
}

}  // namespace anno::telemetry
