// SessionTimeline: the paper's Figs. 7-10 rebuilt from a trace.
//
// The raw trace (telemetry/trace.h) is a flat stream of events.  This layer
// reconstructs what the paper actually plots: a per-frame timeline of
// backlight level, compensation factor k, clipped-pixel fraction and
// display/device power (via the src/display + src/power models), plus
// per-scene energy/quality summaries -- "what did the backlight and power
// do at t=37s, and why did the engine cut there".
//
// Reconstruction consumes only SEMANTIC trace events (the vocabulary in
// DESIGN.md §11): the client's `session` metadata + `backlight_switch`
// instants + `clipped_fraction` counter samples, the engine's `scene`
// spans (cut reason, safe luma), and session_sim's `rebuffer` spans.  It
// therefore works identically on a live snapshot and on a parsed dump --
// tools/trace_report uses it for both.
//
// Lives in its own CMake target (anno_timeline) because it links the
// display/power models, which themselves sit above anno_telemetry; keeping
// the recorder the bottom leaf of the dependency graph means this
// reconstruction cannot live inside anno_telemetry without a cycle.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "power/power.h"
#include "telemetry/trace.h"

namespace anno::telemetry {

/// One frame of the reconstructed session.
struct TimelinePoint {
  std::int64_t frame = 0;
  double seconds = 0.0;          ///< frame / fps (virtual media time)
  int backlightLevel = 255;
  double gainK = 1.0;            ///< pixel compensation factor in force
  double clippedFraction = 0.0;  ///< last sampled clipped-pixel fraction
  double backlightWatts = 0.0;
  double deviceWatts = 0.0;      ///< whole-device model at this backlight
  bool stalled = false;          ///< a rebuffer event landed on this frame
};

/// Energy/quality summary of one annotated scene.
struct SceneSummary {
  std::int64_t firstFrame = 0;
  std::int64_t frames = 0;
  std::string cutReason;         ///< core::cutReasonName of the closing cut
  double safeLuma = 0.0;         ///< planned safe luminance ceiling
  int backlightLevel = 255;      ///< level in force at scene start
  double gainK = 1.0;
  double meanClippedFraction = 0.0;
  double backlightEnergyJoules = 0.0;
  double deviceEnergyJoules = 0.0;
  double fullBacklightEnergyJoules = 0.0;  ///< same span at level 255
  double backlightSavingsFraction = 0.0;
};

/// The reconstructed session: identity, per-frame points, per-scene
/// summaries, and whole-session energy totals.
struct SessionTimeline {
  std::string device;
  std::string clip;
  double fps = 0.0;
  std::int64_t frames = 0;
  double qualityLevel = 0.0;     ///< configured clipped-pixel budget

  std::vector<TimelinePoint> points;   ///< one per frame, in order
  std::vector<SceneSummary> scenes;    ///< in stream order

  double backlightEnergyJoules = 0.0;
  double deviceEnergyJoules = 0.0;
  double fullBacklightEnergyJoules = 0.0;
  double fullDeviceEnergyJoules = 0.0;
  double backlightSavingsFraction = 0.0;  ///< paper Fig. 9 quantity
  double deviceSavingsFraction = 0.0;     ///< paper Fig. 10 quantity

  std::int64_t stallEvents = 0;
  double stallSeconds = 0.0;

  /// Self-describing JSON document (consumed by tools/plot_results.py).
  [[nodiscard]] std::string toJson() const;
  /// Per-frame CSV: frame,seconds,backlight_level,gain_k,... one row/frame.
  [[nodiscard]] std::string toCsv() const;
};

/// Rebuilds the timeline from a trace snapshot using the given device power
/// model.  Throws std::runtime_error when the snapshot has no client
/// `session` metadata event (nothing to reconstruct).
[[nodiscard]] SessionTimeline reconstructTimeline(
    const TraceSnapshot& snapshot, const power::MobileDevicePower& power);

}  // namespace anno::telemetry
