#include "telemetry/timeline.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <stdexcept>

#include "telemetry/export.h"  // escapeJson / formatDouble

namespace anno::telemetry {
namespace {

/// Looks up a numeric arg by key; returns `fallback` when absent.
double argOr(const TraceSnapshotEvent& ev, const char* key, double fallback) {
  for (const auto& [k, v] : ev.args) {
    if (k == key) return v;
  }
  return fallback;
}

bool hasArg(const TraceSnapshotEvent& ev, const char* key) {
  for (const auto& [k, v] : ev.args) {
    if (k == key) return true;
  }
  return false;
}

}  // namespace

SessionTimeline reconstructTimeline(const TraceSnapshot& snapshot,
                                    const power::MobileDevicePower& power) {
  SessionTimeline tl;

  // --- Pass 1: pull the semantic events out of the flat stream ------------
  struct Switch {
    std::int64_t frame;
    int level;
    double gainK;
  };
  std::vector<Switch> switches;
  std::map<std::int64_t, double> clippedByFrame;  // last sample wins
  std::vector<std::int64_t> stallFrames;
  bool sawSession = false;

  for (const TraceSnapshotEvent& ev : snapshot.events) {
    if (ev.cat == "client") {
      if (ev.type == TraceEventType::kMetadata && ev.name == "session") {
        sawSession = true;
        tl.frames = static_cast<std::int64_t>(argOr(ev, "frames", 0.0));
        tl.fps = argOr(ev, "fps", 0.0);
        tl.qualityLevel = argOr(ev, "quality", 0.0);
        if (ev.strKey == "clip") tl.clip = ev.strValue;
      } else if (ev.type == TraceEventType::kMetadata &&
                 ev.name == "device") {
        if (ev.strKey == "name") tl.device = ev.strValue;
      } else if (ev.type == TraceEventType::kInstant &&
                 ev.name == "backlight_switch") {
        switches.push_back(
            {static_cast<std::int64_t>(argOr(ev, "frame", 0.0)),
             static_cast<int>(argOr(ev, "level", 255.0)),
             argOr(ev, "gain_k", 1.0)});
      } else if (ev.type == TraceEventType::kCounter &&
                 ev.name == "clipped_fraction" &&
                 std::isfinite(ev.mediaSeconds) && tl.fps > 0.0) {
        const auto frame =
            static_cast<std::int64_t>(std::llround(ev.mediaSeconds * tl.fps));
        clippedByFrame[frame] = ev.value;
      }
    } else if (ev.cat == "engine" && ev.name == "scene" &&
               ev.type == TraceEventType::kSpanEnd && hasArg(ev, "frames")) {
      SceneSummary scene;
      scene.firstFrame =
          static_cast<std::int64_t>(argOr(ev, "first_frame", 0.0));
      scene.frames = static_cast<std::int64_t>(argOr(ev, "frames", 0.0));
      scene.safeLuma = argOr(ev, "safe_luma", 0.0);
      if (ev.strKey == "reason") scene.cutReason = ev.strValue;
      tl.scenes.push_back(std::move(scene));
    } else if (ev.cat == "session" && ev.name == "rebuffer" &&
               ev.type == TraceEventType::kSpanEnd) {
      ++tl.stallEvents;
      tl.stallSeconds += argOr(ev, "seconds", 0.0);
      // Remember the frame the stall interrupted; marked on points below.
      const auto frame = static_cast<std::int64_t>(argOr(ev, "frame", -1.0));
      if (frame >= 0) stallFrames.push_back(frame);
    }
  }

  if (!sawSession) {
    throw std::runtime_error(
        "reconstructTimeline: no client session metadata event in trace");
  }
  std::stable_sort(switches.begin(), switches.end(),
                   [](const Switch& a, const Switch& b) {
                     return a.frame < b.frame;
                   });
  std::stable_sort(tl.scenes.begin(), tl.scenes.end(),
                   [](const SceneSummary& a, const SceneSummary& b) {
                     return a.firstFrame < b.firstFrame;
                   });
  // Re-annotating the same content (e.g. the proxy transcoding a clip the
  // server already profiled) emits the same scene spans again; annotation
  // is deterministic, so identical (first_frame, frames) IS the same scene.
  tl.scenes.erase(
      std::unique(tl.scenes.begin(), tl.scenes.end(),
                  [](const SceneSummary& a, const SceneSummary& b) {
                    return a.firstFrame == b.firstFrame &&
                           a.frames == b.frames;
                  }),
      tl.scenes.end());

  // --- Pass 2: per-frame timeline ------------------------------------------
  const double frameSeconds = tl.fps > 0.0 ? 1.0 / tl.fps : 0.0;
  const double fullBacklightWatts = power.backlightWatts(255);
  const power::OperatingPoint fullOp{power::CpuState::kDecode,
                                     power::NicState::kReceive, 255, true};
  const double fullDeviceWatts = power.totalWatts(fullOp);

  tl.points.reserve(static_cast<std::size_t>(std::max<std::int64_t>(
      tl.frames, 0)));
  std::size_t nextSwitch = 0;
  int level = 255;
  double gainK = 1.0;
  double clipped = 0.0;
  for (std::int64_t f = 0; f < tl.frames; ++f) {
    while (nextSwitch < switches.size() && switches[nextSwitch].frame <= f) {
      level = switches[nextSwitch].level;
      gainK = switches[nextSwitch].gainK;
      ++nextSwitch;
    }
    if (auto it = clippedByFrame.find(f); it != clippedByFrame.end()) {
      clipped = it->second;
    }
    TimelinePoint p;
    p.frame = f;
    p.seconds = static_cast<double>(f) * frameSeconds;
    p.backlightLevel = level;
    p.gainK = gainK;
    p.clippedFraction = clipped;
    p.backlightWatts = power.backlightWatts(level);
    p.deviceWatts = power.totalWatts({power::CpuState::kDecode,
                                      power::NicState::kReceive, level, true});
    tl.points.push_back(p);

    tl.backlightEnergyJoules += p.backlightWatts * frameSeconds;
    tl.deviceEnergyJoules += p.deviceWatts * frameSeconds;
    tl.fullBacklightEnergyJoules += fullBacklightWatts * frameSeconds;
    tl.fullDeviceEnergyJoules += fullDeviceWatts * frameSeconds;
  }
  for (std::int64_t f : stallFrames) {
    if (f >= 0 && f < static_cast<std::int64_t>(tl.points.size())) {
      tl.points[static_cast<std::size_t>(f)].stalled = true;
    }
  }
  if (tl.fullBacklightEnergyJoules > 0.0) {
    tl.backlightSavingsFraction =
        1.0 - tl.backlightEnergyJoules / tl.fullBacklightEnergyJoules;
  }
  if (tl.fullDeviceEnergyJoules > 0.0) {
    tl.deviceSavingsFraction =
        1.0 - tl.deviceEnergyJoules / tl.fullDeviceEnergyJoules;
  }

  // --- Pass 3: per-scene energy/quality summaries --------------------------
  for (SceneSummary& scene : tl.scenes) {
    const std::int64_t begin =
        std::clamp<std::int64_t>(scene.firstFrame, 0,
                                 static_cast<std::int64_t>(tl.points.size()));
    const std::int64_t end = std::clamp<std::int64_t>(
        scene.firstFrame + scene.frames, begin,
        static_cast<std::int64_t>(tl.points.size()));
    if (begin < end) {
      const TimelinePoint& first = tl.points[static_cast<std::size_t>(begin)];
      scene.backlightLevel = first.backlightLevel;
      scene.gainK = first.gainK;
    }
    double clippedSum = 0.0;
    for (std::int64_t f = begin; f < end; ++f) {
      const TimelinePoint& p = tl.points[static_cast<std::size_t>(f)];
      scene.backlightEnergyJoules += p.backlightWatts * frameSeconds;
      scene.deviceEnergyJoules += p.deviceWatts * frameSeconds;
      scene.fullBacklightEnergyJoules += fullBacklightWatts * frameSeconds;
      clippedSum += p.clippedFraction;
    }
    if (begin < end) {
      scene.meanClippedFraction =
          clippedSum / static_cast<double>(end - begin);
    }
    if (scene.fullBacklightEnergyJoules > 0.0) {
      scene.backlightSavingsFraction =
          1.0 - scene.backlightEnergyJoules / scene.fullBacklightEnergyJoules;
    }
  }
  return tl;
}

std::string SessionTimeline::toJson() const {
  std::string out = "{\n";
  out += "  \"device\": \"" + escapeJson(device) + "\",\n";
  out += "  \"clip\": \"" + escapeJson(clip) + "\",\n";
  out += "  \"fps\": " + formatDouble(fps) + ",\n";
  char buf[64];
  std::snprintf(buf, sizeof buf, "  \"frames\": %lld,\n",
                static_cast<long long>(frames));
  out += buf;
  out += "  \"quality_level\": " + formatDouble(qualityLevel) + ",\n";
  out += "  \"totals\": {";
  out += "\"backlight_energy_j\": " + formatDouble(backlightEnergyJoules);
  out += ", \"device_energy_j\": " + formatDouble(deviceEnergyJoules);
  out += ", \"full_backlight_energy_j\": " +
         formatDouble(fullBacklightEnergyJoules);
  out += ", \"full_device_energy_j\": " + formatDouble(fullDeviceEnergyJoules);
  out += ", \"backlight_savings_fraction\": " +
         formatDouble(backlightSavingsFraction);
  out += ", \"device_savings_fraction\": " +
         formatDouble(deviceSavingsFraction);
  std::snprintf(buf, sizeof buf, ", \"stall_events\": %lld",
                static_cast<long long>(stallEvents));
  out += buf;
  out += ", \"stall_seconds\": " + formatDouble(stallSeconds);
  out += "},\n  \"scenes\": [";
  bool firstItem = true;
  for (const SceneSummary& s : scenes) {
    out += firstItem ? "\n" : ",\n";
    firstItem = false;
    std::snprintf(buf, sizeof buf,
                  "    {\"first_frame\": %lld, \"frames\": %lld",
                  static_cast<long long>(s.firstFrame),
                  static_cast<long long>(s.frames));
    out += buf;
    out += ", \"cut_reason\": \"" + escapeJson(s.cutReason) + "\"";
    out += ", \"safe_luma\": " + formatDouble(s.safeLuma);
    std::snprintf(buf, sizeof buf, ", \"backlight_level\": %d",
                  s.backlightLevel);
    out += buf;
    out += ", \"gain_k\": " + formatDouble(s.gainK);
    out += ", \"mean_clipped_fraction\": " +
           formatDouble(s.meanClippedFraction);
    out += ", \"backlight_energy_j\": " +
           formatDouble(s.backlightEnergyJoules);
    out += ", \"device_energy_j\": " + formatDouble(s.deviceEnergyJoules);
    out += ", \"backlight_savings_fraction\": " +
           formatDouble(s.backlightSavingsFraction);
    out += "}";
  }
  out += "\n  ],\n  \"points\": [";
  firstItem = true;
  for (const TimelinePoint& p : points) {
    out += firstItem ? "\n" : ",\n";
    firstItem = false;
    std::snprintf(buf, sizeof buf,
                  "    {\"frame\": %lld, \"seconds\": ",
                  static_cast<long long>(p.frame));
    out += buf;
    out += formatDouble(p.seconds);
    std::snprintf(buf, sizeof buf, ", \"backlight_level\": %d",
                  p.backlightLevel);
    out += buf;
    out += ", \"gain_k\": " + formatDouble(p.gainK);
    out += ", \"clipped_fraction\": " + formatDouble(p.clippedFraction);
    out += ", \"backlight_watts\": " + formatDouble(p.backlightWatts);
    out += ", \"device_watts\": " + formatDouble(p.deviceWatts);
    out += std::string(", \"stalled\": ") + (p.stalled ? "true" : "false");
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string SessionTimeline::toCsv() const {
  std::string out =
      "frame,seconds,backlight_level,gain_k,clipped_fraction,"
      "backlight_watts,device_watts,stalled\n";
  char buf[64];
  for (const TimelinePoint& p : points) {
    std::snprintf(buf, sizeof buf, "%lld,", static_cast<long long>(p.frame));
    out += buf;
    out += formatDouble(p.seconds) + ",";
    std::snprintf(buf, sizeof buf, "%d,", p.backlightLevel);
    out += buf;
    out += formatDouble(p.gainK) + ",";
    out += formatDouble(p.clippedFraction) + ",";
    out += formatDouble(p.backlightWatts) + ",";
    out += formatDouble(p.deviceWatts) + ",";
    out += p.stalled ? "1\n" : "0\n";
  }
  return out;
}

}  // namespace anno::telemetry
