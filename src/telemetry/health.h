// Live fleet health: rolling-window signal evaluation over the metrics
// registry, SLO rule firing with hysteresis, and an anomaly-triggered
// trace flight recorder (DESIGN.md §16).
//
// PRs 4/5/9 built the raw observability signals -- lock-free counters,
// per-thread traces, a 50k-session soak -- but nothing watched them WHILE
// serving.  This module is that watcher:
//
//   HealthMonitor   one observe() per scheduler tick reads a fixed set of
//                   pre-resolved instrument handles (pay-at-registration,
//                   like the registry itself: no scrape, no allocation, no
//                   wall clock) into fixed-size rolling windows, computes
//                   per-rule fast/slow aggregates (rates, ratios, means,
//                   bucket-interpolated quantiles -- the SAME estimator the
//                   JSON exporter uses) and runs each SloRuleEngine.
//   FlightRecorder  a small always-on TraceRecorder ring, rotated in
//                   generations so ~2 rotations of history always exist;
//                   when a rule fires, the merged generations are frozen
//                   into a Perfetto-loadable capture -- the anomaly ships
//                   its own evidence, and a healthy run writes nothing.
//
// Determinism contract: observe() consumes only instrument values and tick
// arithmetic, so with deterministic inputs (the soak driver) the event
// stream is byte-reproducible.  Null-object contract: a scheduler with no
// monitor attached pays one branch per tick; a monitor with no registry
// serves kDirect signals only.
//
// Thread contract: HealthMonitor and FlightRecorder belong to ONE driving
// thread (the scheduler/soak tick loop).  The instruments they READ may be
// written concurrently from anywhere -- reads are the same relaxed atomics
// the scrapers use.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "telemetry/export.h"
#include "telemetry/metrics.h"
#include "telemetry/slo.h"
#include "telemetry/trace.h"

namespace anno::telemetry {

/// How a signal's per-tick sample and window aggregate are derived.
enum class HealthSignalKind : std::uint8_t {
  /// Window mean of a gauge's sampled values.
  kGauge = 0,
  /// Counter delta over the window divided by the window's seconds.
  kCounterRate = 1,
  /// Counter-delta ratio: metric delta / summed denominator deltas
  /// (stall rate, cache hit rate).  Weight = denominator delta.
  kCounterRatio = 2,
  /// Ratio of two gauges' window sums (watts-saved per playing session).
  /// Weight = denominator sum.
  kGaugeRatio = 3,
  /// Bucket-interpolated quantile of the histogram's window delta
  /// (quantileFromBucketCounts).  Weight = observations in the window.
  kHistogramQuantile = 4,
  /// Caller-pushed value via setSignal() (tests, external feeds).
  kDirect = 5,
};

[[nodiscard]] const char* healthSignalKindName(HealthSignalKind kind) noexcept;

/// One named signal derived from registry instruments.
struct HealthSignal {
  std::string name;
  HealthSignalKind kind = HealthSignalKind::kDirect;
  std::string metric;  ///< source instrument (numerator for ratios)
  Labels labels;       ///< instrument labels (shared by denominators)
  /// kCounterRatio: denominator counters, summed (hits+misses).
  std::vector<std::string> denominatorMetrics;
  /// kGaugeRatio: the denominator gauge.
  std::string denominatorMetric;
  double quantile = 0.99;  ///< kHistogramQuantile
  double scale = 1.0;      ///< multiplies the window aggregate
};

/// The monitor's full declarative configuration.
struct HealthConfig {
  /// Seconds per observe() tick (kCounterRate denominator).
  double tickSeconds = 0.1;
  std::vector<HealthSignal> signals;
  std::vector<SloRule> rules;  ///< each names a signal above
};

/// Anomaly-triggered trace capture over rotating TraceRecorder generations.
///
/// The per-thread rings drop NEWEST events when full, so one long-lived
/// ring would be full of ancient history by the time a rule fires.  The
/// recorder therefore ping-pongs two generations: emitters fetch
/// recorder() each tick, onTick() retires the older generation every
/// `rotateTicks`, and a capture merges previous + current -- between one
/// and two rotations of the freshest history, ending at the firing tick.
class FlightRecorder {
 public:
  struct Config {
    /// Per-generation ring sizing: small and always-on by design.
    TraceConfig trace{.eventsPerThread = 1 << 12};
    std::uint64_t rotateTicks = 512;
    /// Captures kept per run; later firings still count triggers but stop
    /// freezing snapshots (each capture copies the rings).
    std::size_t maxCaptures = 8;
  };

  /// One frozen anomaly: the triggering event plus the merged-generation
  /// trace ending at the firing tick.  The snapshot's wall clock is NOT
  /// deterministic (trace stamps are real nanoseconds); the media clock
  /// and the event sequence are.
  struct Capture {
    HealthEvent trigger;
    TraceSnapshot snapshot;
  };

  // Separate default ctor: a `cfg = {}` default argument would need
  // Config's member initializers before the enclosing class is complete.
  FlightRecorder();
  explicit FlightRecorder(Config cfg);

  /// The current generation.  Re-fetch every tick: rotation replaces it.
  [[nodiscard]] TraceRecorder* recorder() noexcept { return gens_[cur_].get(); }

  /// Rotation point; call once per driver tick BEFORE emitting that tick's
  /// events.  Destroys the retired generation -- single-driver contract.
  void onTick(std::uint64_t tick);

  /// Marks the transition in the trace (an instant on the "health"
  /// category) and, on a firing, freezes a capture.
  void onEvent(const HealthEvent& event);

  [[nodiscard]] const std::vector<Capture>& captures() const noexcept {
    return captures_;
  }
  /// All firings seen, including those past maxCaptures.
  [[nodiscard]] std::uint64_t triggerCount() const noexcept {
    return triggers_;
  }
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

 private:
  [[nodiscard]] TraceSnapshot mergedSnapshot() const;

  Config cfg_;
  std::unique_ptr<TraceRecorder> gens_[2];
  std::size_t cur_ = 0;
  std::uint64_t lastRotateTick_ = 0;
  std::uint64_t triggers_ = 0;
  std::vector<Capture> captures_;
};

/// Rule status with its rule, as reports consume it.
struct HealthRuleStatus {
  SloRule rule;
  SloRuleStatus status;
};

/// The monitor.  Construct against a registry (instruments may register
/// before OR after: handles resolve lazily, once), call observe() every
/// tick, read events()/ruleStatuses() whenever.
class HealthMonitor {
 public:
  /// Throws std::invalid_argument when a rule names an unknown signal, a
  /// signal is misdeclared for its kind, or tickSeconds <= 0.
  HealthMonitor(HealthConfig cfg, const Registry* registry);

  /// Pushes a kDirect signal's value for the NEXT observe() tick.
  /// Throws std::invalid_argument for unknown/non-direct names.
  void setSignal(const std::string& name, double value);

  /// One deterministic tick: sample every signal, evaluate every rule,
  /// append transition events (and forward them to the flight recorder).
  void observe();

  void attachFlightRecorder(FlightRecorder* flight) noexcept {
    flight_ = flight;
  }

  [[nodiscard]] std::uint64_t observedTicks() const noexcept { return ticks_; }
  [[nodiscard]] const std::vector<HealthEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::vector<HealthRuleStatus> ruleStatuses() const;
  /// Current windowed value of one signal over `windowTicks` (testing and
  /// dashboards; same math the rules see).
  [[nodiscard]] SloWindowValue signalWindow(const std::string& name,
                                            std::uint64_t windowTicks) const;

 private:
  struct Series {
    HealthSignal cfg;
    std::size_t cap = 2;  ///< ring capacity: longest referencing window + 1
    /// Per-tick samples, modular ring of `cap` (cumulative values for
    /// counter kinds, instantaneous for gauges/direct).
    std::vector<double> ring;
    std::vector<double> denomRing;  ///< cum denominator sum / gauge value
    /// kHistogramQuantile: cumulative bucket counts per tick.
    std::vector<std::vector<std::uint64_t>> bucketRing;
    double direct = 0.0;  ///< latest setSignal() value
    // Lazily resolved instrument handles (const: the monitor only reads).
    const Counter* num = nullptr;
    std::vector<const Counter*> denoms;
    const Gauge* gauge = nullptr;
    const Gauge* denomGauge = nullptr;
    const Histogram* hist = nullptr;
    bool resolved = false;
    /// First tick sampled with resolved handles; windows reaching further
    /// back are not ready (an instrument registering mid-run must not leak
    /// a zeros-to-live jump into a rate).  kDirect resolves at 0.
    std::uint64_t firstResolvedTick = UINT64_MAX;
  };

  struct RuleRuntime {
    SloRuleEngine engine;
    std::size_t seriesIndex = 0;
  };

  void resolve(Series& s);
  void sample(Series& s, std::uint64_t tick);
  [[nodiscard]] SloWindowValue windowValue(const Series& s,
                                           std::uint64_t window,
                                           std::uint64_t tick) const;

  HealthConfig cfg_;
  const Registry* registry_;
  std::vector<Series> series_;
  std::vector<RuleRuntime> rules_;
  std::vector<HealthEvent> events_;
  FlightRecorder* flight_ = nullptr;
  std::uint64_t ticks_ = 0;
};

}  // namespace anno::telemetry
