// Declarative SLO rules and the burn-rate state machine that evaluates
// them: the decision half of the live fleet-health layer (DESIGN.md §16).
//
// A rule watches ONE health signal (telemetry/health.h computes those from
// registry snapshots) through TWO rolling windows, the multiwindow
// burn-rate idiom: the FAST window reacts quickly and the SLOW window
// supplies confirmation, so a rule fires only when both agree the bound is
// violated -- a transient spike shorter than the fast window cannot page,
// and a slow drift is still caught once the slow window absorbs it.
// Clearing is hysteretic twice over: the fast value must come back INSIDE
// the bound by a fractional margin (`hysteresis`) and STAY there for
// `clearHoldTicks` consecutive ticks, so a signal oscillating on the
// threshold produces one event, not a flap storm (pinned by tests/health).
//
// Everything here is pure tick arithmetic -- no wall clock, no allocation
// after construction -- so rule evaluation is deterministic and the soak
// driver can assert exact fire/clear tick indices across runs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace anno::telemetry {

/// Which side(s) of the limit are healthy.
enum class SloBoundKind : std::uint8_t {
  kMax = 0,   ///< healthy while value <= limit (stall rate, p99 startup)
  kMin = 1,   ///< healthy while value >= limit (cache hit rate)
  kBand = 2,  ///< healthy while limit <= value <= limitHigh (watts saved)
};

[[nodiscard]] const char* sloBoundKindName(SloBoundKind kind) noexcept;

/// One declarative service-level objective.
struct SloRule {
  std::string name;    ///< event/report identity, e.g. "stall_rate"
  std::string signal;  ///< HealthSignal this rule evaluates
  SloBoundKind bound = SloBoundKind::kMax;
  double limit = 0.0;      ///< kMax: upper; kMin: lower; kBand: lower edge
  double limitHigh = 0.0;  ///< kBand only: upper edge
  /// Fractional clear margin: a fired kMax rule clears only once the fast
  /// value is back under limit*(1-hysteresis); kMin mirrors to
  /// limit*(1+hysteresis); kBand shrinks both edges inward.  0 = clear at
  /// the firing threshold itself (flappy; tests do this deliberately).
  double hysteresis = 0.1;
  std::uint64_t fastWindowTicks = 30;   ///< reaction window
  std::uint64_t slowWindowTicks = 150;  ///< confirmation window
  /// Consecutive in-bound fast-window ticks required before clearing.
  std::uint64_t clearHoldTicks = 25;
  /// Ticks before the rule evaluates at all (0 = slowWindowTicks); raise it
  /// for signals whose early window is structurally unrepresentative
  /// (cold-cache hit rate).
  std::uint64_t warmupTicks = 0;
  /// Minimum evidence mass (window weight: counter delta, ratio
  /// denominator, histogram observations) in BOTH windows for the rule to
  /// act; underweight ticks hold the current state.
  double minWeight = 0.0;
};

enum class SloRuleState : std::uint8_t {
  kWarmup = 0,  ///< not enough history yet; never fires
  kOk = 1,
  kFiring = 2,
};

[[nodiscard]] const char* sloRuleStateName(SloRuleState state) noexcept;

/// One firing or clearing transition (the typed event stream HealthMonitor
/// accumulates and the flight recorder snapshots on).
struct HealthEvent {
  std::string rule;
  bool fired = false;  ///< true = entered kFiring, false = cleared to kOk
  std::uint64_t tick = 0;
  double fastValue = 0.0;
  double slowValue = 0.0;
  double limit = 0.0;  ///< the rule edge the fast value violated/recrossed
};

/// Point-in-time rule status (reports, plot_results.py --health).
struct SloRuleStatus {
  SloRuleState state = SloRuleState::kWarmup;
  std::uint64_t fireCount = 0;         ///< lifetime firings
  std::uint64_t lastTransitionTick = 0;
  double fastValue = 0.0;
  double slowValue = 0.0;
  /// Signed distance from the fast value to the nearest rule edge;
  /// positive = healthy headroom, negative = violation depth.
  double margin = 0.0;
};

/// One rolling-window aggregate handed to evaluate() by the monitor.
struct SloWindowValue {
  double value = 0.0;
  /// Evidence mass behind the value (see SloRule::minWeight).
  double weight = 0.0;
  /// Window fully populated (enough samples for the window length).
  bool ready = false;
};

/// The per-rule state machine.  evaluate() once per monitor tick; returns
/// the transition event when the rule fires or clears, nullopt otherwise.
class SloRuleEngine {
 public:
  explicit SloRuleEngine(SloRule rule);

  std::optional<HealthEvent> evaluate(std::uint64_t tick,
                                      const SloWindowValue& fast,
                                      const SloWindowValue& slow);

  [[nodiscard]] const SloRule& rule() const noexcept { return rule_; }
  [[nodiscard]] const SloRuleStatus& status() const noexcept {
    return status_;
  }

 private:
  [[nodiscard]] bool violates(double v) const noexcept;
  [[nodiscard]] bool withinClearBound(double v) const noexcept;
  /// The rule edge nearest to (or violated by) `v`.
  [[nodiscard]] double nearestEdge(double v) const noexcept;
  [[nodiscard]] double marginOf(double v) const noexcept;

  SloRule rule_;
  SloRuleStatus status_;
  std::uint64_t inBoundStreak_ = 0;  ///< consecutive clear-eligible ticks
};

}  // namespace anno::telemetry
