// Unified exporters over the metrics registry: one scrape, two renderings.
//
// scrape() takes a point-in-time Snapshot of every instrument (values read
// with relaxed atomics -- writers are never blocked) sorted by
// (name, labels), so the exposition is byte-stable for a given set of
// instrument values regardless of registration or scheduling order.  The two
// renderers consume the SAME snapshot:
//
//   toPrometheusText()  Prometheus text exposition format 0.0.4
//                       (# HELP / # TYPE, cumulative `le` buckets,
//                        _sum/_count series)
//   toJson()            a self-describing JSON document (one object per
//                       instrument) for dashboards and test assertions
//
// so a server can answer /metrics and /metrics.json from one pass.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/metrics.h"

namespace anno::telemetry {

/// Point-in-time value of one histogram.
struct HistogramSnapshot {
  std::vector<double> bounds;          ///< finite upper bounds, ascending
  std::vector<std::uint64_t> counts;   ///< per-bucket (non-cumulative); +Inf last
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// Point-in-time value of one instrument.
struct InstrumentSnapshot {
  std::string name;
  Labels labels;  ///< canonical (sorted by key)
  std::string help;
  InstrumentKind kind = InstrumentKind::kCounter;
  std::uint64_t counterValue = 0;
  std::int64_t gaugeValue = 0;
  HistogramSnapshot histogram;
};

/// Everything a scrape saw, sorted by (name, labels).
struct Snapshot {
  std::vector<InstrumentSnapshot> instruments;

  /// Value of the named counter (labels must match canonically); 0 when
  /// absent.  Convenience for tests and determinism checks.
  [[nodiscard]] std::uint64_t counterValue(const std::string& name,
                                           const Labels& labels = {}) const;
};

/// Scrapes a registry (the process-wide one by default).
[[nodiscard]] Snapshot scrape(const Registry& registry);
[[nodiscard]] Snapshot scrape();

/// Prometheus text exposition format 0.0.4.
[[nodiscard]] std::string toPrometheusText(const Snapshot& snapshot);

/// JSON document: {"instruments": [...]} with one object per instrument.
/// Histograms additionally carry "p50"/"p90"/"p99" bucket-interpolated
/// quantile estimates (histogramQuantile below).
[[nodiscard]] std::string toJson(const Snapshot& snapshot);

// --- Histogram quantile estimation -----------------------------------------
// The ONE quantile estimator in the project: the JSON exporter and the
// health monitor (telemetry/health.h) both call it, so a dashboard p99 and
// an SLO-rule p99 can never disagree.

/// Prometheus-style histogram_quantile over per-bucket (NON-cumulative)
/// counts: finds the bucket containing rank q*total and interpolates
/// linearly inside it.  The first bucket interpolates up from 0 (the
/// instrument catalog is non-negative); a rank landing in the +Inf bucket
/// clamps to the last finite bound.  `counts` has bounds.size()+1 entries
/// (+Inf last); returns 0 when the histogram is empty.
[[nodiscard]] double quantileFromBucketCounts(
    const std::vector<double>& bounds,
    const std::vector<std::uint64_t>& counts, double q);

/// Convenience overload over a scraped histogram.
[[nodiscard]] double histogramQuantile(const HistogramSnapshot& histogram,
                                       double q);

// --- Shared string-rendering helpers ---------------------------------------
// Used by both the metrics exporters here and the trace exporter
// (telemetry/trace.h); public so every JSON/exposition producer in the
// project escapes identically.

/// Escapes a string for embedding in a JSON string literal: backslash,
/// quote, \n, \r, \t, and every other control character < 0x20 (as \uXXXX).
[[nodiscard]] std::string escapeJson(const std::string& v);

/// Escapes a Prometheus label value.  The exposition format only requires
/// backslash, quote and newline, but we additionally render \t, \r and the
/// remaining control characters < 0x20 as \uXXXX so a hostile label can
/// never smuggle a raw control byte into (or break a line of) the
/// exposition.
[[nodiscard]] std::string escapeLabelValue(const std::string& v);

/// Shortest %g rendering of `v` that still round-trips, else exact %.17g.
[[nodiscard]] std::string formatDouble(double v);

}  // namespace anno::telemetry
