// Session tracing: a lock-free trace recorder for time-resolved events,
// the time-domain half of the observability story the metrics registry
// (metrics.h) started.
//
// Where the registry answers "how many scenes were cut and why, in total",
// the trace answers "what did the backlight, the quality level and the
// display power do at t=37s, and why did the engine cut there" -- the
// paper's whole evaluation (Figs. 7-10) is this kind of per-scene timeline,
// not an aggregate counter.
//
// Design rules, mirroring the registry:
//  - Per-thread fixed-capacity ring buffers.  A thread registers its buffer
//    once (mutex, slow path); every subsequent emit is a handful of plain
//    stores plus one release-store of the head index -- no locks, no
//    allocation, no string copies (names are interned pointers or string
//    literals).  When a buffer is full further events are DROPPED and
//    counted in an atomic drop counter; recorded slots are written exactly
//    once, which is what makes concurrent export TSan-clean by
//    construction.
//  - Zero-cost when unused: instrumented subsystems hold a nullable
//    `TraceRecorder*` (default nullptr) and go through the null-safe
//    helpers at the bottom of this header, so a detached path pays one
//    predictable branch and never reads a clock (bench_trace enforces
//    this, plus a <5% attached budget on the engine push loop).
//  - Two clocks per event: WALL time (steady-clock nanoseconds since the
//    recorder's construction) stamped by the recorder, and VIRTUAL MEDIA
//    time (seconds of content; stream/session_sim runs in simulated time)
//    taken from a per-thread media clock the instrumented site advances
//    via setMediaTime().  NaN means "no media clock in scope".
//
// Event model (DESIGN.md §11): five typed events -- span begin/end (nested
// durations on a thread track), instant (a point occurrence), counter
// sample (a named value over time), metadata (session/track description).
// Events carry up to three numeric args and one string arg; keys and
// string values are interned pointers, so the hot path never allocates.
//
// Export: snapshotTrace() copies every published slot under the
// registration mutex (writers are never blocked), and
// toChromeTraceJson() renders the snapshot as Chrome trace-event JSON
// that loads directly in Perfetto (ui.perfetto.dev) or chrome://tracing.
// serializeTraceDump()/parseTraceDump() round-trip a snapshot through a
// plain-text dump so tools/trace_report can replay a capture offline.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace anno::telemetry {

class Registry;
class Gauge;

enum class TraceEventType : std::uint8_t {
  kSpanBegin = 0,  ///< opens a duration on this thread's track
  kSpanEnd = 1,    ///< closes the most recent open span on this track
  kInstant = 2,    ///< a point event
  kCounter = 3,    ///< a sampled value (rendered as a counter track)
  kMetadata = 4,   ///< session/track description, not a timed occurrence
};
inline constexpr std::size_t kTraceEventTypeCount = 5;

[[nodiscard]] const char* traceEventTypeName(TraceEventType type) noexcept;

/// One numeric argument; a null key means "slot unused".
struct TraceArg {
  const char* key = nullptr;
  double value = 0.0;
};

/// One recorded event.  Trivially copyable: string fields are interned
/// pointers owned by the recorder (or string literals), never allocations.
struct TraceEvent {
  const char* name = nullptr;  ///< interned or static
  const char* cat = nullptr;   ///< category (static literal): engine, client...
  TraceEventType type = TraceEventType::kInstant;
  std::int64_t wallNanos = 0;  ///< steady clock, since recorder construction
  /// Virtual media time in seconds (the second clock); NaN when the
  /// emitting site had no media clock in scope.
  double mediaSeconds = std::numeric_limits<double>::quiet_NaN();
  double value = 0.0;          ///< kCounter: the sampled value
  std::array<TraceArg, 3> args{};
  const char* strKey = nullptr;    ///< optional string argument
  const char* strValue = nullptr;
};

/// Recorder sizing knobs.
struct TraceConfig {
  /// Fixed event capacity of each per-thread buffer.  Once a buffer is
  /// full, further events from that thread are dropped (and counted);
  /// recorded events are never overwritten, so export can run while
  /// writers are live.
  std::size_t eventsPerThread = 1 << 14;
};

struct TraceSnapshot;  // below

/// The trace recorder.  One instance captures one session; instrumented
/// subsystems hold a nullable pointer to it (null = detached = free).
///
/// Thread contract: any thread may emit concurrently (each writes only its
/// own buffer) and any thread may snapshot concurrently with writers.
/// Destroying the recorder while another thread is still emitting is a
/// use-after-free -- detach (null the pointers) and quiesce first, exactly
/// like Registry instrument handles.
class TraceRecorder {
 public:
  explicit TraceRecorder(TraceConfig cfg = {});
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // --- Hot path (lock-free after this thread's first event) ---------------

  void spanBegin(const char* name, const char* cat,
                 std::initializer_list<TraceArg> args = {});
  void spanEnd(const char* name, const char* cat,
               std::initializer_list<TraceArg> args = {},
               const char* strKey = nullptr, const char* strValue = nullptr);
  void instant(const char* name, const char* cat,
               std::initializer_list<TraceArg> args = {},
               const char* strKey = nullptr, const char* strValue = nullptr);
  void counter(const char* name, const char* cat, double value);
  void metadata(const char* name, const char* cat,
                std::initializer_list<TraceArg> args = {},
                const char* strKey = nullptr, const char* strValue = nullptr);

  /// Sets this thread's virtual media clock; subsequent events from this
  /// thread are stamped with it until the next set/clear.
  void setMediaTime(double seconds);
  /// Clears this thread's media clock (events stamp NaN again).
  void clearMediaTime();

  /// Names this thread's track in the exported trace (e.g. "pool-worker").
  /// `name` must be a literal or an interned pointer.
  void nameThisThread(const char* name);

  // --- Registration-cost path ---------------------------------------------

  /// Copies `s` into recorder-owned stable storage and returns a pointer
  /// valid for the recorder's lifetime.  Use for dynamic names (clip names,
  /// device names); literals can be passed to the emit calls directly.
  /// Interning the same string twice returns the same pointer.
  [[nodiscard]] const char* intern(std::string_view s);

  // --- Introspection ------------------------------------------------------

  /// Events recorded across all thread buffers (published slots only).
  [[nodiscard]] std::uint64_t recordedEvents() const;
  /// Events dropped because a thread's buffer was full.
  [[nodiscard]] std::uint64_t droppedEvents() const;

  [[nodiscard]] const TraceConfig& config() const noexcept { return cfg_; }

  /// Registers trace-loss introspection gauges in `registry` and starts
  /// publishing, so trace loss is itself monitorable (DESIGN.md §16):
  ///   anno_trace_dropped_events     events lost to full thread buffers
  ///   anno_trace_intern_pool_size   interned strings held alive
  /// The drop gauge is bumped on the (already off-happy-path) drop branch;
  /// the intern gauge under the intern mutex -- the lock-free emit path is
  /// untouched.  Attach before concurrent use; same null-object contract as
  /// every other subsystem.
  void attachTelemetry(Registry& registry);
  void detachTelemetry() noexcept;

 private:
  friend TraceSnapshot snapshotTrace(const TraceRecorder& recorder);

  struct ThreadBuffer {
    ThreadBuffer(std::size_t capacity, std::uint32_t tidIn)
        : tid(tidIn), slots(capacity) {}
    const std::uint32_t tid;
    std::vector<TraceEvent> slots;
    /// Publication index: slots [0, min(head, capacity)) are immutable and
    /// safe to read after an acquire load of head.
    std::atomic<std::uint64_t> head{0};
    std::atomic<std::uint64_t> dropped{0};
    std::atomic<const char*> threadName{nullptr};
    /// Owning thread only (events copy it at emit time).
    double mediaNow = std::numeric_limits<double>::quiet_NaN();
  };

  void emit(TraceEvent ev, std::initializer_list<TraceArg> args);
  [[nodiscard]] ThreadBuffer& bufferForThisThread();
  [[nodiscard]] std::int64_t nowNanos() const;

  struct Telemetry {
    Gauge* droppedEvents = nullptr;
    Gauge* internPoolSize = nullptr;
  };

  TraceConfig cfg_;
  const std::uint64_t id_;  ///< process-unique, for the thread-local cache
  std::chrono::steady_clock::time_point epoch_;
  Telemetry metrics_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;  ///< guarded by mu_
  std::map<std::string, std::unique_ptr<std::string>, std::less<>>
      interned_;  ///< guarded by mu_; values are pointer-stable
};

/// RAII span: begin on construction, end on destruction (or end()).  A null
/// recorder makes both free -- no clock read, no buffer touch.
class TraceSpan {
 public:
  TraceSpan(TraceRecorder* recorder, const char* name, const char* cat,
            std::initializer_list<TraceArg> args = {}) noexcept
      : recorder_(recorder), name_(name), cat_(cat) {
    if (recorder_ != nullptr) recorder_->spanBegin(name_, cat_, args);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() { end(); }

  /// Ends the span now, optionally attaching result args; further end()
  /// calls are no-ops.
  void end(std::initializer_list<TraceArg> args = {},
           const char* strKey = nullptr,
           const char* strValue = nullptr) noexcept {
    if (recorder_ == nullptr) return;
    recorder_->spanEnd(name_, cat_, args, strKey, strValue);
    recorder_ = nullptr;
  }

 private:
  TraceRecorder* recorder_;
  const char* name_;
  const char* cat_;
};

// ---------------------------------------------------------------------------
// Snapshot + exporters
// ---------------------------------------------------------------------------

/// One exported event: same shape as TraceEvent but owning its strings, so
/// a snapshot outlives the recorder (and can be parsed back from a dump).
struct TraceSnapshotEvent {
  std::string name;
  std::string cat;
  TraceEventType type = TraceEventType::kInstant;
  std::uint32_t tid = 0;
  std::int64_t wallNanos = 0;
  double mediaSeconds = std::numeric_limits<double>::quiet_NaN();
  double value = 0.0;
  std::vector<std::pair<std::string, double>> args;
  std::string strKey;    ///< empty = no string argument
  std::string strValue;

  /// Field-wise equality, except that two NaN media stamps compare EQUAL
  /// (NaN is the "no media clock" sentinel, and it must survive a dump
  /// round-trip).
  friend bool operator==(const TraceSnapshotEvent& a,
                         const TraceSnapshotEvent& b);
};

/// Everything one export saw: events sorted by (wallNanos, tid, emission
/// order) -- per-thread order is always preserved -- plus the thread-track
/// names and the total drop count.
struct TraceSnapshot {
  std::vector<TraceSnapshotEvent> events;
  std::vector<std::pair<std::uint32_t, std::string>> threads;  ///< tid -> name
  std::uint64_t droppedEvents = 0;

  friend bool operator==(const TraceSnapshot&, const TraceSnapshot&) = default;
};

/// Copies every published event out of the recorder.  Safe to call while
/// writers are live: only slots published before the snapshot are read.
[[nodiscard]] TraceSnapshot snapshotTrace(const TraceRecorder& recorder);

/// Chrome trace-event JSON (the "JSON Array Format" object variant) --
/// loads in Perfetto and chrome://tracing.  Wall time maps to `ts`
/// (microseconds); the media clock travels as a `media_t` arg on every
/// event that had one.
[[nodiscard]] std::string toChromeTraceJson(const TraceSnapshot& snapshot);

/// Plain-text dump of a snapshot (one event per line, versioned header)
/// for offline replay; parseTraceDump inverts it exactly and throws
/// std::runtime_error on malformed input.
[[nodiscard]] std::string serializeTraceDump(const TraceSnapshot& snapshot);
[[nodiscard]] TraceSnapshot parseTraceDump(std::string_view dump);

// ---------------------------------------------------------------------------
// Null-safe helpers: the idiom every instrumented subsystem uses so that a
// detached (nullptr) recorder costs one branch and reads no clock.
// ---------------------------------------------------------------------------

inline void traceInstant(TraceRecorder* r, const char* name, const char* cat,
                         std::initializer_list<TraceArg> args = {},
                         const char* strKey = nullptr,
                         const char* strValue = nullptr) {
  if (r != nullptr) r->instant(name, cat, args, strKey, strValue);
}
inline void traceCounter(TraceRecorder* r, const char* name, const char* cat,
                         double value) {
  if (r != nullptr) r->counter(name, cat, value);
}
inline void traceMetadata(TraceRecorder* r, const char* name, const char* cat,
                          std::initializer_list<TraceArg> args = {},
                          const char* strKey = nullptr,
                          const char* strValue = nullptr) {
  if (r != nullptr) r->metadata(name, cat, args, strKey, strValue);
}
inline void traceSetMediaTime(TraceRecorder* r, double seconds) {
  if (r != nullptr) r->setMediaTime(seconds);
}
inline void traceClearMediaTime(TraceRecorder* r) {
  if (r != nullptr) r->clearMediaTime();
}

}  // namespace anno::telemetry
