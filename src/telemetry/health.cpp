#include "telemetry/health.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace anno::telemetry {

const char* healthSignalKindName(HealthSignalKind kind) noexcept {
  switch (kind) {
    case HealthSignalKind::kGauge: return "gauge";
    case HealthSignalKind::kCounterRate: return "counter_rate";
    case HealthSignalKind::kCounterRatio: return "counter_ratio";
    case HealthSignalKind::kGaugeRatio: return "gauge_ratio";
    case HealthSignalKind::kHistogramQuantile: return "histogram_quantile";
    case HealthSignalKind::kDirect: return "direct";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// FlightRecorder
// ---------------------------------------------------------------------------

FlightRecorder::FlightRecorder() : FlightRecorder(Config{}) {}

FlightRecorder::FlightRecorder(Config cfg) : cfg_(cfg) {
  if (cfg_.rotateTicks == 0) cfg_.rotateTicks = 1;
  gens_[0] = std::make_unique<TraceRecorder>(cfg_.trace);
  gens_[1] = std::make_unique<TraceRecorder>(cfg_.trace);
}

void FlightRecorder::onTick(std::uint64_t tick) {
  if (tick < lastRotateTick_ + cfg_.rotateTicks) return;
  lastRotateTick_ = tick;
  // Retire the older generation; the freshly-rotated-out one becomes
  // "previous".  Safe because emitters run on this same driver thread.
  const std::size_t old = 1 - cur_;
  gens_[old] = std::make_unique<TraceRecorder>(cfg_.trace);
  cur_ = old;
}

void FlightRecorder::onEvent(const HealthEvent& event) {
  TraceRecorder* rec = recorder();
  rec->instant(event.fired ? "slo_fired" : "slo_cleared", "health",
               {{"tick", static_cast<double>(event.tick)},
                {"fast", event.fastValue},
                {"slow", event.slowValue}},
               "rule", rec->intern(event.rule));
  if (!event.fired) return;
  ++triggers_;
  if (captures_.size() >= cfg_.maxCaptures) return;
  captures_.push_back(Capture{event, mergedSnapshot()});
}

TraceSnapshot FlightRecorder::mergedSnapshot() const {
  // Previous generation first, then the current one shifted past it on both
  // the tid and wall axes, so the merged timeline reads oldest-to-newest and
  // the two generations' thread tracks never collide.
  TraceSnapshot prev = snapshotTrace(*gens_[1 - cur_]);
  TraceSnapshot curr = snapshotTrace(*gens_[cur_]);

  std::uint32_t maxTid = 0;
  std::int64_t maxWall = 0;
  for (const auto& ev : prev.events) {
    maxTid = std::max(maxTid, ev.tid);
    maxWall = std::max(maxWall, ev.wallNanos);
  }
  for (const auto& [tid, name] : prev.threads) maxTid = std::max(maxTid, tid);

  TraceSnapshot merged = std::move(prev);
  merged.events.reserve(merged.events.size() + curr.events.size());
  for (auto& ev : curr.events) {
    ev.tid += maxTid;
    ev.wallNanos += maxWall + 1;
    merged.events.push_back(std::move(ev));
  }
  for (auto& [tid, name] : curr.threads) {
    merged.threads.emplace_back(tid + maxTid, std::move(name));
  }
  merged.droppedEvents += curr.droppedEvents;
  return merged;
}

// ---------------------------------------------------------------------------
// HealthMonitor
// ---------------------------------------------------------------------------

HealthMonitor::HealthMonitor(HealthConfig cfg, const Registry* registry)
    : cfg_(std::move(cfg)), registry_(registry) {
  if (!(cfg_.tickSeconds > 0.0)) {
    throw std::invalid_argument("HealthMonitor: tickSeconds must be > 0");
  }

  std::unordered_map<std::string, std::size_t> byName;
  series_.reserve(cfg_.signals.size());
  for (const HealthSignal& sig : cfg_.signals) {
    if (sig.name.empty()) {
      throw std::invalid_argument("HealthSignal: name must be non-empty");
    }
    if (!byName.emplace(sig.name, series_.size()).second) {
      throw std::invalid_argument("HealthSignal " + sig.name + ": duplicate");
    }
    const bool needsMetric = sig.kind != HealthSignalKind::kDirect;
    if (needsMetric && sig.metric.empty()) {
      throw std::invalid_argument("HealthSignal " + sig.name +
                                  ": kind needs a source metric");
    }
    if (sig.kind == HealthSignalKind::kCounterRatio &&
        sig.denominatorMetrics.empty()) {
      throw std::invalid_argument("HealthSignal " + sig.name +
                                  ": counter ratio needs denominators");
    }
    if (sig.kind == HealthSignalKind::kGaugeRatio &&
        sig.denominatorMetric.empty()) {
      throw std::invalid_argument("HealthSignal " + sig.name +
                                  ": gauge ratio needs a denominator");
    }
    Series s;
    s.cfg = sig;
    if (sig.kind == HealthSignalKind::kDirect) {
      s.resolved = true;
      s.firstResolvedTick = 0;
    }
    series_.push_back(std::move(s));
  }

  rules_.reserve(cfg_.rules.size());
  for (const SloRule& rule : cfg_.rules) {
    const auto it = byName.find(rule.signal);
    if (it == byName.end()) {
      throw std::invalid_argument("SloRule " + rule.name +
                                  ": unknown signal " + rule.signal);
    }
    RuleRuntime rt{SloRuleEngine(rule), it->second};
    Series& s = series_[it->second];
    s.cap = std::max<std::size_t>(s.cap, rule.slowWindowTicks + 1);
    rules_.push_back(std::move(rt));
  }

  for (Series& s : series_) {
    s.ring.assign(s.cap, 0.0);
    if (s.cfg.kind == HealthSignalKind::kCounterRatio ||
        s.cfg.kind == HealthSignalKind::kGaugeRatio) {
      s.denomRing.assign(s.cap, 0.0);
    }
    if (s.cfg.kind == HealthSignalKind::kHistogramQuantile) {
      s.bucketRing.assign(s.cap, {});
    }
  }
}

void HealthMonitor::setSignal(const std::string& name, double value) {
  for (Series& s : series_) {
    if (s.cfg.name != name) continue;
    if (s.cfg.kind != HealthSignalKind::kDirect) {
      throw std::invalid_argument("HealthMonitor: signal " + name +
                                  " is not kDirect");
    }
    s.direct = value;
    return;
  }
  throw std::invalid_argument("HealthMonitor: unknown signal " + name);
}

void HealthMonitor::resolve(Series& s) {
  if (s.resolved || registry_ == nullptr) return;
  switch (s.cfg.kind) {
    case HealthSignalKind::kDirect:
      return;  // resolved at construction
    case HealthSignalKind::kCounterRate: {
      s.num = registry_->findCounter(s.cfg.metric, s.cfg.labels);
      s.resolved = s.num != nullptr;
      return;
    }
    case HealthSignalKind::kCounterRatio: {
      const Counter* num = registry_->findCounter(s.cfg.metric, s.cfg.labels);
      if (num == nullptr) return;
      std::vector<const Counter*> denoms;
      denoms.reserve(s.cfg.denominatorMetrics.size());
      for (const std::string& d : s.cfg.denominatorMetrics) {
        const Counter* c = registry_->findCounter(d, s.cfg.labels);
        if (c == nullptr) return;  // all or nothing
        denoms.push_back(c);
      }
      s.num = num;
      s.denoms = std::move(denoms);
      s.resolved = true;
      return;
    }
    case HealthSignalKind::kGauge: {
      s.gauge = registry_->findGauge(s.cfg.metric, s.cfg.labels);
      s.resolved = s.gauge != nullptr;
      return;
    }
    case HealthSignalKind::kGaugeRatio: {
      const Gauge* num = registry_->findGauge(s.cfg.metric, s.cfg.labels);
      const Gauge* den =
          registry_->findGauge(s.cfg.denominatorMetric, s.cfg.labels);
      if (num == nullptr || den == nullptr) return;
      s.gauge = num;
      s.denomGauge = den;
      s.resolved = true;
      return;
    }
    case HealthSignalKind::kHistogramQuantile: {
      s.hist = registry_->findHistogram(s.cfg.metric, s.cfg.labels);
      s.resolved = s.hist != nullptr;
      return;
    }
  }
}

void HealthMonitor::sample(Series& s, std::uint64_t tick) {
  if (!s.resolved) {
    resolve(s);
    if (s.resolved && s.firstResolvedTick == UINT64_MAX) {
      s.firstResolvedTick = tick;
    }
  }
  const std::size_t i = tick % s.cap;
  switch (s.cfg.kind) {
    case HealthSignalKind::kDirect:
      s.ring[i] = s.direct;
      return;
    case HealthSignalKind::kCounterRate:
      s.ring[i] =
          s.resolved ? static_cast<double>(s.num->value()) : 0.0;
      return;
    case HealthSignalKind::kCounterRatio: {
      if (!s.resolved) {
        s.ring[i] = 0.0;
        s.denomRing[i] = 0.0;
        return;
      }
      s.ring[i] = static_cast<double>(s.num->value());
      double den = 0.0;
      for (const Counter* c : s.denoms) den += static_cast<double>(c->value());
      s.denomRing[i] = den;
      return;
    }
    case HealthSignalKind::kGauge:
      s.ring[i] = s.resolved ? static_cast<double>(s.gauge->value()) : 0.0;
      return;
    case HealthSignalKind::kGaugeRatio:
      s.ring[i] = s.resolved ? static_cast<double>(s.gauge->value()) : 0.0;
      s.denomRing[i] =
          s.resolved ? static_cast<double>(s.denomGauge->value()) : 0.0;
      return;
    case HealthSignalKind::kHistogramQuantile: {
      if (!s.resolved) {
        s.bucketRing[i].clear();
        return;
      }
      const std::size_t buckets = s.hist->bounds().size() + 1;
      std::vector<std::uint64_t>& cum = s.bucketRing[i];
      cum.resize(buckets);
      for (std::size_t b = 0; b < buckets; ++b) cum[b] = s.hist->bucketCount(b);
      return;
    }
  }
}

SloWindowValue HealthMonitor::windowValue(const Series& s, std::uint64_t window,
                                          std::uint64_t tick) const {
  SloWindowValue out;
  window = std::min<std::uint64_t>(window, s.cap - 1);
  if (window == 0) return out;

  const bool cumulative = s.cfg.kind == HealthSignalKind::kCounterRate ||
                          s.cfg.kind == HealthSignalKind::kCounterRatio ||
                          s.cfg.kind == HealthSignalKind::kHistogramQuantile;
  if (cumulative) {
    // Window delta between the sample at tick-window and the one at tick;
    // both ends must postdate handle resolution or the delta fabricates a
    // zeros-to-live jump.
    if (tick < window || s.firstResolvedTick > tick - window) return out;
    const std::size_t a = (tick - window) % s.cap;
    const std::size_t b = tick % s.cap;
    switch (s.cfg.kind) {
      case HealthSignalKind::kCounterRate: {
        const double delta = s.ring[b] - s.ring[a];
        out.value = delta / (static_cast<double>(window) * cfg_.tickSeconds);
        out.weight = delta;
        break;
      }
      case HealthSignalKind::kCounterRatio: {
        const double numDelta = s.ring[b] - s.ring[a];
        const double denDelta = s.denomRing[b] - s.denomRing[a];
        out.value = denDelta > 0.0 ? numDelta / denDelta : 0.0;
        out.weight = denDelta;
        break;
      }
      case HealthSignalKind::kHistogramQuantile: {
        const std::vector<std::uint64_t>& cb = s.bucketRing[b];
        if (cb.empty()) return out;
        const std::vector<std::uint64_t>& ca = s.bucketRing[a];
        std::vector<std::uint64_t> delta(cb.size());
        std::uint64_t total = 0;
        for (std::size_t k = 0; k < cb.size(); ++k) {
          // Pre-resolution slots hold no counts: treat them as zeros.
          const std::uint64_t before = k < ca.size() ? ca[k] : 0;
          delta[k] = cb[k] - before;
          total += delta[k];
        }
        out.value =
            quantileFromBucketCounts(s.hist->bounds(), delta, s.cfg.quantile);
        out.weight = static_cast<double>(total);
        break;
      }
      default: break;
    }
  } else {
    // Instantaneous kinds: aggregate the last `window` samples.
    if (tick + 1 < window || s.firstResolvedTick > tick + 1 - window) {
      return out;
    }
    double sum = 0.0;
    double denomSum = 0.0;
    for (std::uint64_t k = tick + 1 - window; k <= tick; ++k) {
      const std::size_t i = k % s.cap;
      sum += s.ring[i];
      if (s.cfg.kind == HealthSignalKind::kGaugeRatio) {
        denomSum += s.denomRing[i];
      }
    }
    if (s.cfg.kind == HealthSignalKind::kGaugeRatio) {
      out.value = denomSum > 0.0 ? sum / denomSum : 0.0;
      out.weight = denomSum;
    } else {
      out.value = sum / static_cast<double>(window);
      out.weight = static_cast<double>(window);
    }
  }
  out.value *= s.cfg.scale;
  out.ready = true;
  return out;
}

void HealthMonitor::observe() {
  const std::uint64_t tick = ticks_;
  for (Series& s : series_) sample(s, tick);
  for (RuleRuntime& rt : rules_) {
    const Series& s = series_[rt.seriesIndex];
    const SloRule& rule = rt.engine.rule();
    const SloWindowValue fast = windowValue(s, rule.fastWindowTicks, tick);
    const SloWindowValue slow = windowValue(s, rule.slowWindowTicks, tick);
    if (std::optional<HealthEvent> ev = rt.engine.evaluate(tick, fast, slow)) {
      events_.push_back(*ev);
      if (flight_ != nullptr) flight_->onEvent(*ev);
    }
  }
  ++ticks_;
}

std::vector<HealthRuleStatus> HealthMonitor::ruleStatuses() const {
  std::vector<HealthRuleStatus> out;
  out.reserve(rules_.size());
  for (const RuleRuntime& rt : rules_) {
    out.push_back(HealthRuleStatus{rt.engine.rule(), rt.engine.status()});
  }
  return out;
}

SloWindowValue HealthMonitor::signalWindow(const std::string& name,
                                           std::uint64_t windowTicks) const {
  if (ticks_ == 0) return {};
  for (const Series& s : series_) {
    if (s.cfg.name == name) return windowValue(s, windowTicks, ticks_ - 1);
  }
  throw std::invalid_argument("HealthMonitor: unknown signal " + name);
}

}  // namespace anno::telemetry
