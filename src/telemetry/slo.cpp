#include "telemetry/slo.h"

#include <algorithm>
#include <stdexcept>

namespace anno::telemetry {

const char* sloBoundKindName(SloBoundKind kind) noexcept {
  switch (kind) {
    case SloBoundKind::kMax: return "max";
    case SloBoundKind::kMin: return "min";
    case SloBoundKind::kBand: return "band";
  }
  return "unknown";
}

const char* sloRuleStateName(SloRuleState state) noexcept {
  switch (state) {
    case SloRuleState::kWarmup: return "warmup";
    case SloRuleState::kOk: return "ok";
    case SloRuleState::kFiring: return "firing";
  }
  return "unknown";
}

SloRuleEngine::SloRuleEngine(SloRule rule) : rule_(std::move(rule)) {
  if (rule_.name.empty()) {
    throw std::invalid_argument("SloRule: name must be non-empty");
  }
  if (rule_.fastWindowTicks == 0 || rule_.slowWindowTicks == 0) {
    throw std::invalid_argument("SloRule " + rule_.name +
                                ": window lengths must be > 0");
  }
  if (rule_.fastWindowTicks > rule_.slowWindowTicks) {
    throw std::invalid_argument(
        "SloRule " + rule_.name +
        ": fast window must not exceed the slow window");
  }
  if (rule_.bound == SloBoundKind::kBand && rule_.limitHigh <= rule_.limit) {
    throw std::invalid_argument("SloRule " + rule_.name +
                                ": band needs limit < limitHigh");
  }
  if (rule_.hysteresis < 0.0) {
    throw std::invalid_argument("SloRule " + rule_.name +
                                ": hysteresis must be >= 0");
  }
}

bool SloRuleEngine::violates(double v) const noexcept {
  switch (rule_.bound) {
    case SloBoundKind::kMax: return v > rule_.limit;
    case SloBoundKind::kMin: return v < rule_.limit;
    case SloBoundKind::kBand:
      return v < rule_.limit || v > rule_.limitHigh;
  }
  return false;
}

bool SloRuleEngine::withinClearBound(double v) const noexcept {
  const double h = rule_.hysteresis;
  switch (rule_.bound) {
    case SloBoundKind::kMax: return v <= rule_.limit * (1.0 - h);
    case SloBoundKind::kMin: return v >= rule_.limit * (1.0 + h);
    case SloBoundKind::kBand:
      return v >= rule_.limit * (1.0 + h) && v <= rule_.limitHigh * (1.0 - h);
  }
  return false;
}

double SloRuleEngine::nearestEdge(double v) const noexcept {
  if (rule_.bound != SloBoundKind::kBand) return rule_.limit;
  // The band edge this value violates, or the closer of the two when
  // inside: the event/margin should name the edge that matters.
  const double toLow = v - rule_.limit;
  const double toHigh = rule_.limitHigh - v;
  return toLow <= toHigh ? rule_.limit : rule_.limitHigh;
}

double SloRuleEngine::marginOf(double v) const noexcept {
  switch (rule_.bound) {
    case SloBoundKind::kMax: return rule_.limit - v;
    case SloBoundKind::kMin: return v - rule_.limit;
    case SloBoundKind::kBand:
      return std::min(v - rule_.limit, rule_.limitHigh - v);
  }
  return 0.0;
}

std::optional<HealthEvent> SloRuleEngine::evaluate(
    std::uint64_t tick, const SloWindowValue& fast,
    const SloWindowValue& slow) {
  status_.fastValue = fast.value;
  status_.slowValue = slow.value;
  status_.margin = marginOf(fast.value);

  const bool haveData = fast.ready && slow.ready &&
                        fast.weight >= rule_.minWeight &&
                        slow.weight >= rule_.minWeight;

  if (status_.state == SloRuleState::kWarmup) {
    const std::uint64_t warmup =
        rule_.warmupTicks != 0 ? rule_.warmupTicks : rule_.slowWindowTicks;
    if (tick + 1 < warmup || !haveData) return std::nullopt;
    status_.state = SloRuleState::kOk;  // fall through: may fire this tick
  }

  if (status_.state == SloRuleState::kOk) {
    if (haveData && violates(fast.value) && violates(slow.value)) {
      status_.state = SloRuleState::kFiring;
      ++status_.fireCount;
      status_.lastTransitionTick = tick;
      inBoundStreak_ = 0;
      return HealthEvent{rule_.name, true, tick, fast.value, slow.value,
                         nearestEdge(fast.value)};
    }
    return std::nullopt;
  }

  // kFiring: clear only after clearHoldTicks consecutive ticks with the
  // fast value back inside the hysteresis-shrunk bound (underweight ticks
  // reset the streak -- absence of evidence is not recovery).
  if (haveData && withinClearBound(fast.value)) {
    if (++inBoundStreak_ >= rule_.clearHoldTicks) {
      status_.state = SloRuleState::kOk;
      status_.lastTransitionTick = tick;
      inBoundStreak_ = 0;
      return HealthEvent{rule_.name, false, tick, fast.value, slow.value,
                         nearestEdge(fast.value)};
    }
  } else {
    inBoundStreak_ = 0;
  }
  return std::nullopt;
}

}  // namespace anno::telemetry
