#include "telemetry/trace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "telemetry/export.h"  // escapeJson / formatDouble, shared with metrics

namespace anno::telemetry {
namespace {

/// Process-unique recorder ids; the thread-local fast-path cache is keyed
/// on the id rather than the recorder address so a recorder destroyed and
/// another allocated at the same address can never alias a stale cache
/// entry on a long-lived thread (pool workers outlive recorders).
std::atomic<std::uint64_t> g_nextRecorderId{1};

struct ThreadCache {
  std::uint64_t recorderId = 0;
  void* buffer = nullptr;
};
thread_local ThreadCache t_cache;

constexpr const char* kTypeNames[kTraceEventTypeCount] = {
    "span_begin", "span_end", "instant", "counter", "metadata"};

}  // namespace

const char* traceEventTypeName(TraceEventType type) noexcept {
  const auto i = static_cast<std::size_t>(type);
  return i < kTraceEventTypeCount ? kTypeNames[i] : "unknown";
}

TraceRecorder::TraceRecorder(TraceConfig cfg)
    : cfg_(cfg),
      id_(g_nextRecorderId.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {
  if (cfg_.eventsPerThread == 0) cfg_.eventsPerThread = 1;
}

TraceRecorder::~TraceRecorder() = default;

std::int64_t TraceRecorder::nowNanos() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

TraceRecorder::ThreadBuffer& TraceRecorder::bufferForThisThread() {
  if (t_cache.recorderId == id_) {
    return *static_cast<ThreadBuffer*>(t_cache.buffer);
  }
  // Slow path: first event from this thread on this recorder.
  const std::lock_guard<std::mutex> lock(mu_);
  auto buf = std::make_unique<ThreadBuffer>(
      cfg_.eventsPerThread, static_cast<std::uint32_t>(buffers_.size() + 1));
  ThreadBuffer& ref = *buf;
  buffers_.push_back(std::move(buf));
  t_cache = {id_, &ref};
  return ref;
}

void TraceRecorder::emit(TraceEvent ev, std::initializer_list<TraceArg> args) {
  ThreadBuffer& buf = bufferForThisThread();
  // Only the owning thread advances head, so a relaxed load observes our
  // own latest value.
  const std::uint64_t h = buf.head.load(std::memory_order_relaxed);
  if (h >= buf.slots.size()) {
    buf.dropped.fetch_add(1, std::memory_order_relaxed);
    telemetry::add(metrics_.droppedEvents, 1);
    return;
  }
  ev.wallNanos = nowNanos();
  ev.mediaSeconds = buf.mediaNow;
  std::size_t i = 0;
  for (const TraceArg& a : args) {
    if (i >= ev.args.size()) break;
    ev.args[i++] = a;
  }
  buf.slots[h] = ev;
  // Publish: the slot write must be visible before the new head.
  buf.head.store(h + 1, std::memory_order_release);
}

void TraceRecorder::spanBegin(const char* name, const char* cat,
                              std::initializer_list<TraceArg> args) {
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.type = TraceEventType::kSpanBegin;
  emit(ev, args);
}

void TraceRecorder::spanEnd(const char* name, const char* cat,
                            std::initializer_list<TraceArg> args,
                            const char* strKey, const char* strValue) {
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.type = TraceEventType::kSpanEnd;
  ev.strKey = strKey;
  ev.strValue = strValue;
  emit(ev, args);
}

void TraceRecorder::instant(const char* name, const char* cat,
                            std::initializer_list<TraceArg> args,
                            const char* strKey, const char* strValue) {
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.type = TraceEventType::kInstant;
  ev.strKey = strKey;
  ev.strValue = strValue;
  emit(ev, args);
}

void TraceRecorder::counter(const char* name, const char* cat, double value) {
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.type = TraceEventType::kCounter;
  ev.value = value;
  emit(ev, {});
}

void TraceRecorder::metadata(const char* name, const char* cat,
                             std::initializer_list<TraceArg> args,
                             const char* strKey, const char* strValue) {
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.type = TraceEventType::kMetadata;
  ev.strKey = strKey;
  ev.strValue = strValue;
  emit(ev, args);
}

void TraceRecorder::setMediaTime(double seconds) {
  bufferForThisThread().mediaNow = seconds;
}

void TraceRecorder::clearMediaTime() {
  bufferForThisThread().mediaNow = std::numeric_limits<double>::quiet_NaN();
}

void TraceRecorder::nameThisThread(const char* name) {
  bufferForThisThread().threadName.store(name, std::memory_order_relaxed);
}

const char* TraceRecorder::intern(std::string_view s) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = interned_.find(s);
  if (it == interned_.end()) {
    it = interned_
             .emplace(std::string(s), std::make_unique<std::string>(s))
             .first;
    telemetry::set(metrics_.internPoolSize,
                   static_cast<std::int64_t>(interned_.size()));
  }
  return it->second->c_str();
}

void TraceRecorder::attachTelemetry(Registry& registry) {
  metrics_.droppedEvents = &registry.gauge(
      "anno_trace_dropped_events", {},
      "Trace events lost because a thread's ring buffer was full");
  metrics_.internPoolSize = &registry.gauge(
      "anno_trace_intern_pool_size", {},
      "Distinct strings held by the recorder's intern pool");
  const std::lock_guard<std::mutex> lock(mu_);
  std::int64_t dropped = 0;
  for (const auto& buf : buffers_) {
    dropped += static_cast<std::int64_t>(
        buf->dropped.load(std::memory_order_relaxed));
  }
  metrics_.droppedEvents->set(dropped);
  metrics_.internPoolSize->set(static_cast<std::int64_t>(interned_.size()));
}

void TraceRecorder::detachTelemetry() noexcept { metrics_ = Telemetry{}; }

std::uint64_t TraceRecorder::recordedEvents() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& buf : buffers_) {
    total += std::min<std::uint64_t>(buf->head.load(std::memory_order_acquire),
                                     buf->slots.size());
  }
  return total;
}

std::uint64_t TraceRecorder::droppedEvents() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& buf : buffers_) {
    total += buf->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

bool operator==(const TraceSnapshotEvent& a, const TraceSnapshotEvent& b) {
  const bool mediaEqual =
      a.mediaSeconds == b.mediaSeconds ||
      (std::isnan(a.mediaSeconds) && std::isnan(b.mediaSeconds));
  return mediaEqual && a.name == b.name && a.cat == b.cat &&
         a.type == b.type && a.tid == b.tid && a.wallNanos == b.wallNanos &&
         a.value == b.value && a.args == b.args && a.strKey == b.strKey &&
         a.strValue == b.strValue;
}

TraceSnapshot snapshotTrace(const TraceRecorder& recorder) {
  TraceSnapshot snap;
  const std::lock_guard<std::mutex> lock(recorder.mu_);
  for (const auto& bufPtr : recorder.buffers_) {
    const TraceRecorder::ThreadBuffer& buf = *bufPtr;
    // Acquire pairs with the writer's release store: all slots below the
    // observed head are fully written and immutable.
    const std::uint64_t published = std::min<std::uint64_t>(
        buf.head.load(std::memory_order_acquire), buf.slots.size());
    for (std::uint64_t i = 0; i < published; ++i) {
      const TraceEvent& ev = buf.slots[i];
      TraceSnapshotEvent out;
      out.name = ev.name != nullptr ? ev.name : "";
      out.cat = ev.cat != nullptr ? ev.cat : "";
      out.type = ev.type;
      out.tid = buf.tid;
      out.wallNanos = ev.wallNanos;
      out.mediaSeconds = ev.mediaSeconds;
      out.value = ev.value;
      for (const TraceArg& a : ev.args) {
        if (a.key == nullptr) break;
        out.args.emplace_back(a.key, a.value);
      }
      if (ev.strKey != nullptr) {
        out.strKey = ev.strKey;
        out.strValue = ev.strValue != nullptr ? ev.strValue : "";
      }
      snap.events.push_back(std::move(out));
    }
    const char* name = buf.threadName.load(std::memory_order_relaxed);
    snap.threads.emplace_back(buf.tid, name != nullptr ? name : "");
    snap.droppedEvents += buf.dropped.load(std::memory_order_relaxed);
  }
  // Global time order; stable so each thread's emission order is kept for
  // equal timestamps (coarse clocks make ties common).
  std::stable_sort(snap.events.begin(), snap.events.end(),
                   [](const TraceSnapshotEvent& a, const TraceSnapshotEvent& b) {
                     if (a.wallNanos != b.wallNanos)
                       return a.wallNanos < b.wallNanos;
                     return a.tid < b.tid;
                   });
  return snap;
}

// ---------------------------------------------------------------------------
// Chrome trace-event JSON
// ---------------------------------------------------------------------------

namespace {

/// Chrome `ph` phase letter for each event type.
char phaseLetter(TraceEventType type) {
  switch (type) {
    case TraceEventType::kSpanBegin: return 'B';
    case TraceEventType::kSpanEnd: return 'E';
    case TraceEventType::kInstant: return 'i';
    case TraceEventType::kCounter: return 'C';
    case TraceEventType::kMetadata: return 'M';
  }
  return 'i';
}

std::string jsonNumber(double v) {
  // JSON has no NaN/Inf; those never reach here (callers filter), but be
  // defensive anyway.
  if (!std::isfinite(v)) return "null";
  return formatDouble(v);
}

}  // namespace

std::string toChromeTraceJson(const TraceSnapshot& snapshot) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buf[96];
  auto append = [&](const std::string& body) {
    out += first ? "\n" : ",\n";
    first = false;
    out += body;
  };

  // Thread-track names first: standard chrome metadata events Perfetto
  // uses to label the per-thread (and per-pool-worker) tracks.
  for (const auto& [tid, name] : snapshot.threads) {
    if (name.empty()) continue;
    std::snprintf(buf, sizeof buf,
                  "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,"
                  "\"tid\":%u,\"args\":{\"name\":\"",
                  tid);
    append(std::string(buf) + escapeJson(name) + "\"}}");
  }

  for (const TraceSnapshotEvent& ev : snapshot.events) {
    std::string body = "{\"ph\":\"";
    body += phaseLetter(ev.type);
    body += "\",\"name\":\"" + escapeJson(ev.name) + "\",\"cat\":\"" +
            escapeJson(ev.cat) + "\"";
    // ts is microseconds in the trace-event format.
    std::snprintf(buf, sizeof buf, ",\"ts\":%.3f,\"pid\":1,\"tid\":%u",
                  static_cast<double>(ev.wallNanos) / 1000.0, ev.tid);
    body += buf;
    if (ev.type == TraceEventType::kInstant) body += ",\"s\":\"t\"";
    // Args: counters render their sample as the counter series value;
    // everything else carries its numeric/string args plus the media
    // clock, so both clocks survive into the Perfetto UI.
    body += ",\"args\":{";
    bool firstArg = true;
    auto arg = [&](const std::string& k, const std::string& renderedValue) {
      if (!firstArg) body += ",";
      firstArg = false;
      body += "\"" + escapeJson(k) + "\":" + renderedValue;
    };
    if (ev.type == TraceEventType::kCounter) {
      arg("value", jsonNumber(ev.value));
    }
    for (const auto& [k, v] : ev.args) arg(k, jsonNumber(v));
    if (!ev.strKey.empty()) {
      arg(ev.strKey, "\"" + escapeJson(ev.strValue) + "\"");
    }
    if (std::isfinite(ev.mediaSeconds)) {
      arg("media_t", formatDouble(ev.mediaSeconds));
    }
    body += "}}";
    append(body);
  }
  std::snprintf(buf, sizeof buf,
                "\n],\"displayTimeUnit\":\"ms\","
                "\"otherData\":{\"droppedEvents\":%llu}}\n",
                static_cast<unsigned long long>(snapshot.droppedEvents));
  out += buf;
  return out;
}

// ---------------------------------------------------------------------------
// Dump serialization (offline replay)
// ---------------------------------------------------------------------------

namespace {

constexpr std::string_view kDumpMagic = "ANNOTRACE 1";

/// Escapes a dump field so fields can be tab-separated and records
/// newline-separated regardless of content.
std::string escapeDumpField(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

std::string unescapeDumpField(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    if (++i >= s.size()) throw std::runtime_error("trace dump: bad escape");
    switch (s[i]) {
      case '\\': out += '\\'; break;
      case 't': out += '\t'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      default: throw std::runtime_error("trace dump: bad escape");
    }
  }
  return out;
}

std::string dumpDouble(double v) {
  if (std::isnan(v)) return "nan";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

double parseDumpDouble(const std::string& s) {
  if (s == "nan") return std::numeric_limits<double>::quiet_NaN();
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    throw std::runtime_error("trace dump: bad number '" + s + "'");
  }
  return v;
}

std::uint64_t parseDumpU64(const std::string& s) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') {
    throw std::runtime_error("trace dump: bad integer '" + s + "'");
  }
  return v;
}

std::int64_t parseDumpI64(const std::string& s) {
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') {
    throw std::runtime_error("trace dump: bad integer '" + s + "'");
  }
  return v;
}

std::vector<std::string> splitFields(std::string_view line) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  // Split on raw tabs only: escaped tabs inside fields are "\t" two-byte
  // sequences, never a 0x09 byte.
  for (std::size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == '\t') {
      fields.push_back(unescapeDumpField(line.substr(start, i - start)));
      start = i + 1;
    }
  }
  return fields;
}

}  // namespace

std::string serializeTraceDump(const TraceSnapshot& snapshot) {
  std::string out(kDumpMagic);
  out += "\n";
  char buf[64];
  std::snprintf(buf, sizeof buf, "d\t%llu\n",
                static_cast<unsigned long long>(snapshot.droppedEvents));
  out += buf;
  for (const auto& [tid, name] : snapshot.threads) {
    std::snprintf(buf, sizeof buf, "t\t%u\t", tid);
    out += buf;
    out += escapeDumpField(name) + "\n";
  }
  for (const TraceSnapshotEvent& ev : snapshot.events) {
    std::snprintf(buf, sizeof buf, "e\t%u\t%u\t%lld\t",
                  static_cast<unsigned>(ev.type), ev.tid,
                  static_cast<long long>(ev.wallNanos));
    out += buf;
    out += dumpDouble(ev.mediaSeconds) + "\t" + dumpDouble(ev.value) + "\t" +
           escapeDumpField(ev.name) + "\t" + escapeDumpField(ev.cat) + "\t" +
           escapeDumpField(ev.strKey) + "\t" + escapeDumpField(ev.strValue);
    std::snprintf(buf, sizeof buf, "\t%zu", ev.args.size());
    out += buf;
    for (const auto& [k, v] : ev.args) {
      out += "\t" + escapeDumpField(k) + "\t" + dumpDouble(v);
    }
    out += "\n";
  }
  return out;
}

TraceSnapshot parseTraceDump(std::string_view dump) {
  TraceSnapshot snap;
  std::size_t pos = 0;
  bool sawMagic = false;
  while (pos < dump.size()) {
    std::size_t eol = dump.find('\n', pos);
    if (eol == std::string_view::npos) eol = dump.size();
    const std::string_view line = dump.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (!sawMagic) {
      if (line != kDumpMagic) {
        throw std::runtime_error("trace dump: bad magic line");
      }
      sawMagic = true;
      continue;
    }
    const std::vector<std::string> f = splitFields(line);
    if (f[0] == "d") {
      if (f.size() != 2) throw std::runtime_error("trace dump: bad d record");
      snap.droppedEvents = parseDumpU64(f[1]);
    } else if (f[0] == "t") {
      if (f.size() != 3) throw std::runtime_error("trace dump: bad t record");
      snap.threads.emplace_back(
          static_cast<std::uint32_t>(parseDumpU64(f[1])), f[2]);
    } else if (f[0] == "e") {
      if (f.size() < 11) throw std::runtime_error("trace dump: bad e record");
      TraceSnapshotEvent ev;
      const std::uint64_t type = parseDumpU64(f[1]);
      if (type >= kTraceEventTypeCount) {
        throw std::runtime_error("trace dump: bad event type");
      }
      ev.type = static_cast<TraceEventType>(type);
      ev.tid = static_cast<std::uint32_t>(parseDumpU64(f[2]));
      ev.wallNanos = parseDumpI64(f[3]);
      ev.mediaSeconds = parseDumpDouble(f[4]);
      ev.value = parseDumpDouble(f[5]);
      ev.name = f[6];
      ev.cat = f[7];
      ev.strKey = f[8];
      ev.strValue = f[9];
      const std::uint64_t nargs = parseDumpU64(f[10]);
      if (f.size() != 11 + 2 * nargs) {
        throw std::runtime_error("trace dump: bad arg count");
      }
      for (std::uint64_t i = 0; i < nargs; ++i) {
        ev.args.emplace_back(f[11 + 2 * i], parseDumpDouble(f[12 + 2 * i]));
      }
      snap.events.push_back(std::move(ev));
    } else {
      throw std::runtime_error("trace dump: unknown record '" + f[0] + "'");
    }
  }
  if (!sawMagic) throw std::runtime_error("trace dump: empty input");
  return snap;
}

}  // namespace anno::telemetry
