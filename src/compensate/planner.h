// Compensation planning: from a scene's clip-safe maximum luminance to a
// concrete (backlight level, gain k) pair for a specific device.
//
// Derivation (paper Sec. 4.1, with T the device's backlight->luminance
// transfer, Ysafe the luminance below which all but the clip budget lies):
//   perceived intensity at full backlight:  I = rho * T(255) * Y = rho * Y
//   at reduced level b with gain k:         I' = rho * T(b) * min(255, Y*k)
//   choose b = T^-1(Ysafe/255)  (smallest level able to show Ysafe faithfully)
//   choose k = 1 / T(b)         (then I' = I for all Y <= 255*T(b) >= Ysafe)
// Pixels brighter than 255*T(b) saturate; by construction their population
// is within the requested clip budget.
#pragma once

#include <cstdint>

#include "display/device.h"
#include "media/histogram.h"

namespace anno::compensate {

/// A concrete per-scene (or per-frame) compensation decision.
struct CompensationPlan {
  std::uint8_t sceneLuma = 255;   ///< clip-safe max luminance the plan serves
  std::uint8_t backlightLevel = 255;
  double gainK = 1.0;             ///< contrast-enhancement factor
  double backlightRel = 1.0;      ///< T(backlightLevel)
  double lumaCeiling = 255.0;     ///< luminance above which pixels clip
};

/// Quality levels evaluated in the paper: fraction of the brightest pixels
/// allowed to clip (Figs. 9/10 sweep 0%..20% in 5% steps).
inline constexpr double kPaperQualityLevels[] = {0.00, 0.05, 0.10, 0.15, 0.20};
inline constexpr int kPaperQualityLevelCount = 5;

/// Plans compensation for a scene whose clip-safe maximum luminance is
/// `sceneLuma`, on `device`.  `minBacklightLevel` bounds the dimming (very
/// low levels render panels unreadable; the paper never drops to zero).
[[nodiscard]] CompensationPlan planForLuma(const display::DeviceModel& device,
                                           std::uint8_t sceneLuma,
                                           int minBacklightLevel = 10);

/// Plans from a scene-accumulated luma histogram and a clip budget:
/// determines the clip-safe luminance at `clipFraction`, then plans for it.
[[nodiscard]] CompensationPlan planForHistogram(
    const display::DeviceModel& device, const media::Histogram& sceneHistogram,
    double clipFraction, int minBacklightLevel = 10);

/// Fraction of `sceneHistogram` mass the plan will clip (sanity check:
/// should not exceed the requested budget).
[[nodiscard]] double plannedClipFraction(const CompensationPlan& plan,
                                         const media::Histogram& sceneHistogram);

/// Predicted histogram of the COMPENSATED frame: every luminance bin y maps
/// to min(255, y*k).  Exact for gray content; approximate for colour (per-
/// channel saturation perturbs luma slightly).  Lets the server reason
/// about post-compensation statistics without re-profiling pixels.
[[nodiscard]] media::Histogram predictCompensatedHistogram(
    const media::Histogram& original, double gainK);

/// Predicted histogram of the PERCEIVED image under a plan: with gain
/// k = 1/T(b), a pixel of luminance y displays at min(y, lumaCeiling) --
/// unclipped pixels are exactly preserved, clipped ones pin at the ceiling.
[[nodiscard]] media::Histogram predictPerceivedHistogram(
    const media::Histogram& original, const CompensationPlan& plan);

/// Predicted perceived-quality EMD of a plan (original vs predicted
/// perceived histogram) -- the server-side quality estimate that needs no
/// camera and no pixel pass.
[[nodiscard]] double predictPerceivedEmd(const media::Histogram& original,
                                         const CompensationPlan& plan);

/// QoS-threshold planning (paper Sec. 4.2: "the system tries to maximize
/// power savings while maintaining the quality of service above the given
/// threshold"): finds the DIMMEST plan whose predicted perceived-EMD stays
/// within `maxPerceivedEmd`, by scanning the scene histogram's clip-safe
/// levels.  This replaces the fixed clip-percent grid with a direct quality
/// contract.
[[nodiscard]] CompensationPlan planForQualityThreshold(
    const display::DeviceModel& device, const media::Histogram& sceneHistogram,
    double maxPerceivedEmd, int minBacklightLevel = 10);

/// Channel-clip-budget planning: finds the DIMMEST plan whose fraction of
/// pixels saturating in at least one RGB channel under the plan's gain
/// stays within `maxClipFraction`.  Unlike planForHistogram (which budgets
/// on luma), this bounds the per-channel saturation the compensation
/// transform actually applies -- colourful pixels can clip a channel well
/// below their luma ceiling.  `maxChannelHist` is
/// media::Histogram::ofMaxChannel of a representative frame; each candidate
/// gain in the walk is evaluated in O(256) from it
/// (compensate::clippedFraction histogram overload), so the sweep costs no
/// pixel passes.
[[nodiscard]] CompensationPlan planForChannelClipBudget(
    const display::DeviceModel& device, const media::Histogram& maxChannelHist,
    double maxClipFraction, int minBacklightLevel = 10);

/// Ambient-aware planning for reflective/transflective panels.
///
/// Outdoors, the reflective path contributes rho_r * A * Y of perceived
/// intensity for free (paper Sec. 4.1: transflective panels "perform best
/// both indoors (low light) and outdoors (in sunlight)").  Matching the
/// dark-room full-backlight reference rho_t * Y then requires only
///     T(b) >= Ysafe/255 - (rho_r/rho_t) * A,
/// so the brighter the ambient, the lower the backlight may go -- extra
/// savings the transmissive-only formula leaves on the table.  The gain
/// accounts for both light paths: k = 1 / (T(b) + (rho_r/rho_t) * A).
/// For transmissive panels (no reflective path) this reduces exactly to
/// planForLuma.
[[nodiscard]] CompensationPlan planForLumaAmbient(
    const display::DeviceModel& device, std::uint8_t sceneLuma,
    double ambientRel, int minBacklightLevel = 10);

}  // namespace anno::compensate
