#include "compensate/planner.h"

#include <algorithm>
#include <stdexcept>

#include "compensate/compensate.h"
#include "media/kernels/kernels.h"

namespace anno::compensate {

CompensationPlan planForLuma(const display::DeviceModel& device,
                             std::uint8_t sceneLuma, int minBacklightLevel) {
  if (minBacklightLevel < 0 || minBacklightLevel > 255) {
    throw std::invalid_argument("planForLuma: minBacklightLevel in [0,255]");
  }
  CompensationPlan plan;
  plan.sceneLuma = sceneLuma;
  const double target = std::max<double>(sceneLuma, 1.0) / 255.0;
  int level = device.transfer.minimumLevelFor(target);
  level = std::max(level, minBacklightLevel);
  plan.backlightLevel = static_cast<std::uint8_t>(level);
  plan.backlightRel = device.transfer.relLuminance(level);
  // Gain derived from the *achieved* backlight luminance so perceived
  // intensity is preserved exactly even when the transfer LUT is coarse.
  plan.gainK = plan.backlightRel > 0.0 ? 1.0 / plan.backlightRel : 1.0;
  if (plan.gainK < 1.0) plan.gainK = 1.0;
  plan.lumaCeiling = 255.0 * plan.backlightRel;
  return plan;
}

CompensationPlan planForHistogram(const display::DeviceModel& device,
                                  const media::Histogram& sceneHistogram,
                                  double clipFraction,
                                  int minBacklightLevel) {
  if (clipFraction < 0.0 || clipFraction >= 1.0) {
    throw std::invalid_argument("planForHistogram: clipFraction in [0,1)");
  }
  if (sceneHistogram.total() == 0) {
    throw std::invalid_argument("planForHistogram: empty histogram");
  }
  // Smallest luminance with at most clipFraction of the mass above it.
  const auto budget = static_cast<std::uint64_t>(
      clipFraction * static_cast<double>(sceneHistogram.total()));
  const auto safe = static_cast<std::uint8_t>(
      media::kernels::active().tailBudgetLevel(sceneHistogram.counts().data(),
                                               budget));
  return planForLuma(device, safe, minBacklightLevel);
}

CompensationPlan planForQualityThreshold(const display::DeviceModel& device,
                                         const media::Histogram& sceneHistogram,
                                         double maxPerceivedEmd,
                                         int minBacklightLevel) {
  if (maxPerceivedEmd < 0.0) {
    throw std::invalid_argument(
        "planForQualityThreshold: maxPerceivedEmd must be >= 0");
  }
  if (sceneHistogram.total() == 0) {
    throw std::invalid_argument("planForQualityThreshold: empty histogram");
  }
  // Candidate ceilings are the occupied luminance levels, highest first;
  // walk down while the predicted quality stays inside the contract.
  CompensationPlan best = planForLuma(
      device, static_cast<std::uint8_t>(sceneHistogram.highPoint()),
      minBacklightLevel);
  for (int ceiling = sceneHistogram.highPoint(); ceiling >= 1; --ceiling) {
    if (sceneHistogram.count(ceiling) == 0 &&
        ceiling != sceneHistogram.highPoint()) {
      continue;  // ceilings between occupied bins change nothing
    }
    const CompensationPlan plan = planForLuma(
        device, static_cast<std::uint8_t>(ceiling), minBacklightLevel);
    if (predictPerceivedEmd(sceneHistogram, plan) > maxPerceivedEmd) break;
    best = plan;
    if (plan.backlightLevel <= minBacklightLevel) break;  // floor reached
  }
  return best;
}

CompensationPlan planForChannelClipBudget(const display::DeviceModel& device,
                                          const media::Histogram& maxChannelHist,
                                          double maxClipFraction,
                                          int minBacklightLevel) {
  if (maxClipFraction < 0.0 || maxClipFraction >= 1.0) {
    throw std::invalid_argument(
        "planForChannelClipBudget: maxClipFraction in [0,1)");
  }
  if (maxChannelHist.total() == 0) {
    throw std::invalid_argument("planForChannelClipBudget: empty histogram");
  }
  // Walk candidate ceilings from brightest down; each step's gain is
  // checked against the clip budget in O(256) via the max-channel
  // histogram, so the whole sweep costs no pixel passes.
  CompensationPlan best = planForLuma(device, 255, minBacklightLevel);
  for (int ceiling = 255; ceiling >= 1; --ceiling) {
    const CompensationPlan plan = planForLuma(
        device, static_cast<std::uint8_t>(ceiling), minBacklightLevel);
    if (clippedFraction(maxChannelHist, plan.gainK) > maxClipFraction) break;
    best = plan;
    if (plan.backlightLevel <= minBacklightLevel) break;  // floor reached
  }
  return best;
}

media::Histogram predictCompensatedHistogram(const media::Histogram& original,
                                             double gainK) {
  if (gainK < 1.0) {
    throw std::invalid_argument(
        "predictCompensatedHistogram: gainK must be >= 1");
  }
  media::Histogram predicted;
  for (int y = 0; y < 256; ++y) {
    const std::uint64_t mass = original.count(y);
    if (mass == 0) continue;
    const double scaled = y * gainK;
    predicted.add(scaled >= 255.0
                      ? std::uint8_t{255}
                      : static_cast<std::uint8_t>(scaled + 0.5),
                  mass);
  }
  return predicted;
}

media::Histogram predictPerceivedHistogram(const media::Histogram& original,
                                           const CompensationPlan& plan) {
  media::Histogram predicted;
  const auto ceiling = static_cast<std::uint8_t>(
      std::min(255.0, plan.lumaCeiling + 0.5));
  for (int y = 0; y < 256; ++y) {
    const std::uint64_t mass = original.count(y);
    if (mass == 0) continue;
    predicted.add(y > ceiling ? ceiling : static_cast<std::uint8_t>(y), mass);
  }
  return predicted;
}

double predictPerceivedEmd(const media::Histogram& original,
                           const CompensationPlan& plan) {
  return media::Histogram::earthMovers(
      original, predictPerceivedHistogram(original, plan));
}

CompensationPlan planForLumaAmbient(const display::DeviceModel& device,
                                    std::uint8_t sceneLuma, double ambientRel,
                                    int minBacklightLevel) {
  if (ambientRel < 0.0) {
    throw std::invalid_argument("planForLumaAmbient: ambientRel >= 0");
  }
  if (minBacklightLevel < 0 || minBacklightLevel > 255) {
    throw std::invalid_argument(
        "planForLumaAmbient: minBacklightLevel in [0,255]");
  }
  // Reflective contribution relative to the transmissive path.
  double reflectiveBoost = 0.0;
  if (device.panel.type != display::PanelType::kTransmissive &&
      device.panel.transmittance > 0.0) {
    reflectiveBoost =
        device.panel.reflectance / device.panel.transmittance * ambientRel;
  }
  CompensationPlan plan;
  plan.sceneLuma = sceneLuma;
  const double target = std::max(
      0.0, std::max<double>(sceneLuma, 1.0) / 255.0 - reflectiveBoost);
  int level = device.transfer.minimumLevelFor(target);
  level = std::max(level, minBacklightLevel);
  plan.backlightLevel = static_cast<std::uint8_t>(level);
  plan.backlightRel = device.transfer.relLuminance(level);
  const double effective = plan.backlightRel + reflectiveBoost;
  plan.gainK = effective > 0.0 ? std::max(1.0, 1.0 / effective) : 1.0;
  plan.lumaCeiling = std::min(255.0, 255.0 * effective);
  return plan;
}

double plannedClipFraction(const CompensationPlan& plan,
                           const media::Histogram& sceneHistogram) {
  if (sceneHistogram.total() == 0) return 0.0;
  return sceneHistogram.fractionAbove(
      static_cast<std::uint8_t>(std::min(255.0, plan.lumaCeiling)));
}

}  // namespace anno::compensate
