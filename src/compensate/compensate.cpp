#include "compensate/compensate.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "media/kernels/kernels.h"
#include "media/pixel.h"

namespace anno::compensate {
namespace {

/// YCbCr-domain op: transform luma with `f`, keep chroma.
template <typename F>
media::Image lumaDomainOp(const media::Image& img, F&& f) {
  media::Image out(img.width(), img.height());
  auto src = img.pixels();
  auto dst = out.pixels();
  for (std::size_t i = 0; i < src.size(); ++i) {
    const media::Rgb8& p = src[i];
    const double y = media::luminance(p);
    const double cb = -0.168736 * p.r - 0.331264 * p.g + 0.5 * p.b;
    const double cr = 0.5 * p.r - 0.418688 * p.g - 0.081312 * p.b;
    const double y2 = f(y);
    dst[i] = media::Rgb8{media::clamp8(y2 + 1.402 * cr),
                         media::clamp8(y2 - 0.344136 * cb - 0.714136 * cr),
                         media::clamp8(y2 + 1.772 * cb)};
  }
  return out;
}

}  // namespace

media::Image contrastEnhance(const media::Image& img, double k,
                             Domain domain) {
  if (k < 1.0) {
    throw std::invalid_argument("contrastEnhance: k must be >= 1");
  }
  if (img.empty()) {
    throw std::invalid_argument("contrastEnhance: empty image");
  }
  if (domain == Domain::kLuminance) {
    return lumaDomainOp(img, [k](double y) { return y * k; });
  }
  media::Image out(img.width(), img.height());
  media::kernels::active().scalePixels(img.pixels().data(), img.pixelCount(),
                                       k, out.pixels().data());
  return out;
}

media::Image brightnessCompensate(const media::Image& img, double delta,
                                  Domain domain) {
  if (delta < 0.0) {
    throw std::invalid_argument("brightnessCompensate: delta must be >= 0");
  }
  if (img.empty()) {
    throw std::invalid_argument("brightnessCompensate: empty image");
  }
  if (domain == Domain::kLuminance) {
    return lumaDomainOp(img, [delta](double y) { return y + delta; });
  }
  media::Image out(img.width(), img.height());
  auto src = img.pixels();
  auto dst = out.pixels();
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = media::offset(src[i], delta);
  }
  return out;
}

media::Image applyToneCurve(const media::Image& img, const ToneCurve& curve) {
  if (img.empty()) {
    throw std::invalid_argument("applyToneCurve: empty image");
  }
  return lumaDomainOp(img, [&curve](double y) {
    const int idx = static_cast<int>(std::clamp(y, 0.0, 255.0));
    // Interpolate between adjacent entries to avoid banding.
    const int next = std::min(idx + 1, 255);
    const double frac = std::clamp(y, 0.0, 255.0) - idx;
    return curve[idx] + (curve[next] - curve[idx]) * frac;
  });
}

ToneCurve softKneeToneCurve(double k, double kneeFraction) {
  if (k < 1.0) {
    throw std::invalid_argument("softKneeToneCurve: k must be >= 1");
  }
  if (kneeFraction <= 0.0 || kneeFraction > 1.0) {
    throw std::invalid_argument("softKneeToneCurve: kneeFraction in (0,1]");
  }
  ToneCurve curve{};
  const double knee = 255.0 * kneeFraction;  // output value where knee sits
  const double kneeIn = knee / k;            // input reaching the knee
  for (int y = 0; y < 256; ++y) {
    double out;
    if (y <= kneeIn) {
      out = y * k;
    } else {
      // Exponential roll-off approaching 255 asymptotically.
      const double span = 255.0 - knee;
      out = knee + span * (1.0 - std::exp(-k * (y - kneeIn) / span));
    }
    curve[y] = media::clamp8(out);
  }
  return curve;
}

double toneCurveMse(const media::Histogram& hist, const ToneCurve& curve,
                    double k) {
  if (k < 1.0) {
    throw std::invalid_argument("toneCurveMse: k must be >= 1");
  }
  if (hist.total() == 0) return 0.0;
  double sse = 0.0;
  for (int y = 0; y < 256; ++y) {
    // Perceived luminance at the dimmed backlight: curve(y) * T(b) with
    // T(b) = 1/k; the target is the original y.
    const double err = y - static_cast<double>(curve[y]) / k;
    sse += err * err * static_cast<double>(hist.count(y));
  }
  return sse / static_cast<double>(hist.total());
}

double clippedFraction(const media::Image& img, double k) {
  if (img.empty()) return 0.0;
  const std::size_t clipped =
      media::kernels::active().countClipped(img.pixels().data(),
                                            img.pixelCount(), k);
  return static_cast<double>(clipped) /
         static_cast<double>(img.pixelCount());
}

double clippedFraction(const media::Histogram& maxChannelHist, double k) {
  if (maxChannelHist.total() == 0) return 0.0;
  const int threshold = media::kernels::clipThreshold(k);
  std::uint64_t clipped = 0;
  for (int v = threshold; v < 256; ++v) clipped += maxChannelHist.count(v);
  return static_cast<double>(clipped) /
         static_cast<double>(maxChannelHist.total());
}

double fractionAboveLuma(const media::Image& img, std::uint8_t lumaCeiling) {
  if (img.empty()) return 0.0;
  // The profile kernel's histogram answers any ceiling in O(256); at one
  // fused SIMD pass this also beats the old per-pixel luma8 walk.
  media::kernels::FrameProfile profile;
  media::kernels::active().profileRgb(img.pixels().data(), img.pixelCount(),
                                      profile);
  std::uint64_t above = 0;
  for (int v = lumaCeiling + 1; v < 256; ++v) above += profile.hist[v];
  return static_cast<double>(above) /
         static_cast<double>(img.pixelCount());
}

}  // namespace anno::compensate
