#include "compensate/backend.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace anno::compensate {
namespace {

/// Control-point abscissae: y = 8*i for i = 0..31, then y = 255.
[[nodiscard]] constexpr int controlAbscissa(int i) {
  return i < 32 ? 8 * i : 255;
}

/// Mean squared perceived error of showing `curve` instead of identity,
/// weighted by the scene histogram.
[[nodiscard]] double perceivedMse(const media::Histogram& hist,
                                  const ToneCurve& curve) {
  if (hist.total() == 0) return 0.0;
  double acc = 0.0;
  for (int y = 0; y < 256; ++y) {
    const double e = y - static_cast<double>(curve[y]);
    acc += static_cast<double>(hist.count(y)) * e * e;
  }
  return acc / static_cast<double>(hist.total());
}

/// The quality budget a clamp at `ceiling` spends: the paper's linear
/// scheme shows min(y, ceiling), so its MSE is the reference any
/// alternative curve for the same quality level must not exceed.
[[nodiscard]] double clampMse(const media::Histogram& hist,
                              std::uint8_t ceiling) {
  if (hist.total() == 0) return 0.0;
  double acc = 0.0;
  for (int y = ceiling + 1; y < 256; ++y) {
    const double e = y - ceiling;
    acc += static_cast<double>(hist.count(y)) * e * e;
  }
  return acc / static_cast<double>(hist.total());
}

/// Smallest control-point abscissa >= v (clamp curves at grid ceilings are
/// exactly representable, so the search always has a valid starting point).
[[nodiscard]] std::uint8_t ceilToGrid(std::uint8_t v) {
  if (v > 248) return 255;
  return static_cast<std::uint8_t>((v + 7) & ~7);
}

[[nodiscard]] ToneCurve canonical(const ToneCurve& c) {
  const auto pts = curveToControlPoints(c);
  return curveFromControlPoints(pts);
}

[[nodiscard]] ToneCurve clampCurve(std::uint8_t ceiling) {
  ToneCurve c;
  for (int y = 0; y < 256; ++y)
    c[y] = static_cast<std::uint8_t>(std::min<int>(y, ceiling));
  return c;
}

class LinearGainBackend final : public Backend {
 public:
  [[nodiscard]] BackendKind kind() const noexcept override {
    return BackendKind::kLinearGain;
  }

  [[nodiscard]] CompensationDecision decide(
      const display::DeviceModel& device, std::uint8_t safeLuma,
      const ToneCurve* /*perceivedCurve*/, int minBacklightLevel,
      const media::Histogram* sceneHist) const override {
    CompensationDecision d;
    d.kind = kind();
    d.plan = planForLuma(device, safeLuma, minBacklightLevel);
    if (sceneHist != nullptr && sceneHist->total() > 0)
      d.predictedEmd = predictPerceivedEmd(*sceneHist, d.plan);
    return d;
  }
};

class HebsBackend final : public Backend {
 public:
  explicit HebsBackend(double equalizationWeight)
      : weight_(equalizationWeight) {}

  [[nodiscard]] BackendKind kind() const noexcept override {
    return BackendKind::kHebs;
  }

  [[nodiscard]] std::vector<ToneCurve> annotateScene(
      const media::Histogram& sceneHist,
      std::span<const std::uint8_t> safeLuma) const override {
    std::vector<ToneCurve> out;
    out.reserve(safeLuma.size());
    for (const std::uint8_t ys : safeLuma)
      out.push_back(solveForLevel(sceneHist, ys));
    return out;
  }

  [[nodiscard]] CompensationDecision decide(
      const display::DeviceModel& device, std::uint8_t /*safeLuma*/,
      const ToneCurve* perceivedCurve, int minBacklightLevel,
      const media::Histogram* sceneHist) const override {
    CompensationDecision d;
    d.kind = kind();
    if (perceivedCurve == nullptr) {
      // No curve in the track (legacy producer, damaged chunk): the client
      // cannot know what peak the content was equalized for, so the only
      // safe display is full backlight with untouched pixels.
      return d;
    }
    const std::uint8_t peak = (*perceivedCurve)[255];
    d.plan = planForLuma(device, peak, minBacklightLevel);
    auto pixel = std::make_shared<ToneCurve>();
    for (int y = 0; y < 256; ++y) {
      const double v = (*perceivedCurve)[y] * d.plan.gainK;
      (*pixel)[y] = static_cast<std::uint8_t>(
          std::min<long>(255, std::lround(v)));
    }
    d.pixelCurve = std::move(pixel);
    if (sceneHist != nullptr && sceneHist->total() > 0) {
      media::Histogram perceived;
      for (int y = 0; y < 256; ++y) {
        if (const std::uint64_t n = sceneHist->count(y); n > 0)
          perceived.add((*perceivedCurve)[y], n);
      }
      d.predictedEmd = media::Histogram::earthMovers(*sceneHist, perceived);
    }
    return d;
  }

 private:
  /// Solves one quality level: find the DIMMEST perceived peak whose best
  /// curve (hard clamp vs equalization blend) stays within the quality
  /// budget the linear clamp at `ys` would spend.
  [[nodiscard]] ToneCurve solveForLevel(const media::Histogram& hist,
                                        std::uint8_t ys) const {
    const double budget = clampMse(hist, ys) + 1e-9;
    const std::uint8_t start = ceilToGrid(ys);
    ToneCurve best = canonical(clampCurve(start));
    if (hist.total() == 0) return best;
    for (int peak = start; peak >= 16; --peak) {
      const ToneCurve clampC =
          canonical(clampCurve(static_cast<std::uint8_t>(peak)));
      const ToneCurve blendC = canonical(
          blendedCurve(hist, static_cast<std::uint8_t>(peak)));
      const double mClamp = perceivedMse(hist, clampC);
      const double mBlend = perceivedMse(hist, blendC);
      const ToneCurve& cand = mBlend < mClamp ? blendC : clampC;
      const double m = std::min(mClamp, mBlend);
      if (m > budget) break;
      best = cand;
    }
    return best;
  }

  /// HEBS curve for a target perceived peak: identity below the knee, a
  /// histogram-equalization ramp (cumulative mass re-mapped onto the
  /// remaining output range) above it, blended with the hard clamp by the
  /// configured weight.  Monotone, P(y) <= y by construction.
  [[nodiscard]] ToneCurve blendedCurve(const media::Histogram& hist,
                                       std::uint8_t peak) const {
    const int knee = peak / 2;
    double massBelowKnee = 0.0;
    for (int y = 0; y <= knee; ++y)
      massBelowKnee += static_cast<double>(hist.count(y));
    const double massAbove =
        static_cast<double>(hist.total()) - massBelowKnee;
    ToneCurve c;
    double cum = 0.0;
    int prev = 0;
    for (int y = 0; y < 256; ++y) {
      int v;
      if (y <= knee) {
        v = y;
      } else {
        cum += static_cast<double>(hist.count(y));
        const double frac = massAbove > 0 ? cum / massAbove : 1.0;
        const int eq = knee + static_cast<int>(
                                  std::lround((peak - knee) * frac));
        const int clamp = std::min<int>(y, peak);
        v = static_cast<int>(
            std::lround(weight_ * eq + (1.0 - weight_) * clamp));
      }
      v = std::clamp(v, prev, std::min<int>(y, peak));
      c[y] = static_cast<std::uint8_t>(v);
      prev = v;
    }
    return c;
  }

  double weight_;
};

class SpatialScalingBackend final : public Backend {
 public:
  explicit SpatialScalingBackend(double scale) : scale_(scale) {}

  [[nodiscard]] BackendKind kind() const noexcept override {
    return BackendKind::kSpatialScaling;
  }

  [[nodiscard]] CompensationDecision decide(
      const display::DeviceModel& device, std::uint8_t safeLuma,
      const ToneCurve* /*perceivedCurve*/, int minBacklightLevel,
      const media::Histogram* sceneHist) const override {
    CompensationDecision d;
    d.kind = kind();
    d.plan = planForLuma(device, safeLuma, minBacklightLevel);
    d.spatialScale = scale_;
    if (sceneHist != nullptr && sceneHist->total() > 0)
      d.predictedEmd = predictPerceivedEmd(*sceneHist, d.plan);
    return d;
  }

 private:
  double scale_;
};

}  // namespace

const char* backendName(BackendKind kind) noexcept {
  switch (kind) {
    case BackendKind::kLinearGain:
      return "linear_gain";
    case BackendKind::kHebs:
      return "hebs";
    case BackendKind::kSpatialScaling:
      return "spatial_scaling";
  }
  return "unknown";
}

bool isKnownBackendKind(std::uint8_t raw) noexcept {
  return raw <= static_cast<std::uint8_t>(BackendKind::kSpatialScaling);
}

std::array<std::uint8_t, kCurveControlPoints> curveToControlPoints(
    const ToneCurve& curve) {
  std::array<std::uint8_t, kCurveControlPoints> pts;
  for (int i = 0; i < kCurveControlPoints; ++i)
    pts[i] = curve[controlAbscissa(i)];
  return pts;
}

ToneCurve curveFromControlPoints(std::span<const std::uint8_t> points) {
  if (points.size() != kCurveControlPoints)
    throw std::invalid_argument("curveFromControlPoints: need 33 points");
  ToneCurve c;
  for (int i = 0; i + 1 < kCurveControlPoints; ++i) {
    const int x0 = controlAbscissa(i);
    const int x1 = controlAbscissa(i + 1);
    const int p0 = points[i];
    const int p1 = points[i + 1];
    for (int y = x0; y < x1; ++y) {
      // Round-half-up integer interpolation: deterministic on every host.
      const int num = p0 * (x1 - y) + p1 * (y - x0);
      c[y] = static_cast<std::uint8_t>((2 * num + (x1 - x0)) / (2 * (x1 - x0)));
    }
  }
  c[255] = points[kCurveControlPoints - 1];
  return c;
}

std::vector<ToneCurve> Backend::annotateScene(
    const media::Histogram& /*sceneHist*/,
    std::span<const std::uint8_t> /*safeLuma*/) const {
  return {};
}

media::Image Backend::apply(const media::Image& frame,
                            const CompensationDecision& decision) const {
  const media::Image* src = &frame;
  media::Image scaled;
  if (decision.spatialScale < 1.0) {
    const int w = std::max<int>(
        1, static_cast<int>(std::lround(frame.width() * decision.spatialScale)));
    const int h = std::max<int>(
        1,
        static_cast<int>(std::lround(frame.height() * decision.spatialScale)));
    scaled = media::resizeBilinear(frame, w, h);
    src = &scaled;
  }
  if (decision.pixelCurve != nullptr)
    return applyToneCurve(*src, *decision.pixelCurve);
  if (decision.plan.gainK > 1.0)
    return contrastEnhance(*src, decision.plan.gainK);
  return *src;
}

std::unique_ptr<const Backend> makeBackend(const BackendConfig& cfg) {
  switch (cfg.kind) {
    case BackendKind::kLinearGain:
      return std::make_unique<LinearGainBackend>();
    case BackendKind::kHebs:
      if (!(cfg.hebsEqualizationWeight >= 0.0 &&
            cfg.hebsEqualizationWeight <= 1.0))
        throw std::invalid_argument(
            "BackendConfig: hebsEqualizationWeight must be in [0, 1]");
      return std::make_unique<HebsBackend>(cfg.hebsEqualizationWeight);
    case BackendKind::kSpatialScaling:
      if (!(cfg.spatialScale > 0.0 && cfg.spatialScale <= 1.0))
        throw std::invalid_argument(
            "BackendConfig: spatialScale must be in (0, 1]");
      return std::make_unique<SpatialScalingBackend>(cfg.spatialScale);
  }
  throw std::invalid_argument("BackendConfig: unknown backend kind");
}

}  // namespace anno::compensate
