// Image compensation: the pixel transforms that accompany backlight dimming.
//
// Paper Sec. 4.1.  Two schemes:
//   Brightness compensation: C' = min(1, C + deltaC)   (constant offset)
//   Contrast enhancement:    C' = min(1, C * k)        (constant gain)
// "We use this method [contrast enhancement] in our work and we select a k
// value to maintain the same perceived intensity I (keep the product of L
// and Y constant, i.e. k = L/L')."
//
// Both can operate per RGB channel or on the computed luminance Y only.
#pragma once

#include <array>
#include <cstdint>

#include "media/histogram.h"
#include "media/image.h"

namespace anno::compensate {

/// Which domain the transform operates in.
enum class Domain {
  kPerChannel,  ///< apply to R, G, B independently (preserves hue for gains)
  kLuminance,   ///< scale luma only, preserve chroma (YCbCr domain)
};

/// Contrast enhancement: multiply by `k` >= 1 with saturation.
[[nodiscard]] media::Image contrastEnhance(const media::Image& img, double k,
                                           Domain domain = Domain::kPerChannel);

/// Brightness compensation: add `delta` (8-bit code units) with saturation.
[[nodiscard]] media::Image brightnessCompensate(
    const media::Image& img, double delta,
    Domain domain = Domain::kPerChannel);

/// 256-entry tone curve on luminance codes (for DTM-style baselines,
/// cf. Iranli & Pedram, DAC'05).
using ToneCurve = std::array<std::uint8_t, 256>;

/// Applies a tone curve in the luminance domain (chroma preserved).
[[nodiscard]] media::Image applyToneCurve(const media::Image& img,
                                          const ToneCurve& curve);

/// Soft-knee brightening curve: linear gain `k` up to the knee, smooth
/// compression above it so bright pixels roll off instead of clipping hard.
/// kneeFraction in (0,1] positions the knee on the OUTPUT range.
[[nodiscard]] ToneCurve softKneeToneCurve(double k, double kneeFraction = 0.85);

/// Mean squared PERCEIVED-luminance error of showing tone-mapped content at
/// the backlight whose compensation gain is `k` (= 1/T(b)): the viewer sees
/// curve(y)/k, which should equal y.  Computed over the content histogram;
/// used by tone-mapping policies to pick the deepest acceptable dimming.
[[nodiscard]] double toneCurveMse(const media::Histogram& hist,
                                  const ToneCurve& curve, double k);

/// Fraction of pixels that saturate in at least one channel when scaled by
/// `k` (predicts the quality degradation of a given gain).
[[nodiscard]] double clippedFraction(const media::Image& img, double k);

/// O(256) overload over a max-channel histogram
/// (media::Histogram::ofMaxChannel).  A pixel clips under gain k iff its
/// max channel reaches the exact scalar clip threshold for k, so for the
/// image the histogram was built from this returns EXACTLY the same value
/// as the pixel-walk overload, for any k >= 0 -- at histogram cost.  Build
/// the histogram once, then sweep k for free (planner loops, per-frame
/// telemetry).
[[nodiscard]] double clippedFraction(const media::Histogram& maxChannelHist,
                                     double k);

/// Fraction of pixels whose *luminance* exceeds `lumaCeiling` (the pixels a
/// plan will clip, per the paper's "fixed percent of the very bright
/// pixels" heuristic).
[[nodiscard]] double fractionAboveLuma(const media::Image& img,
                                       std::uint8_t lumaCeiling);

}  // namespace anno::compensate
