// Pluggable compensation backends.
//
// The paper's scheme -- contrast enhancement C' = min(1, C*k) with the
// backlight chosen from the clip-safe luminance (Sec. 4.1) -- is one point
// in the design space.  This interface splits compensation into the three
// roles the serving pipeline actually has:
//
//   annotateScene  server-side, DEVICE-INDEPENDENT.  From the accumulated
//                  scene histogram and the per-quality safe-luma ceilings,
//                  derive whatever extra per-scene data the backend ships in
//                  the annotation track (HEBS: perceived-target tone curves;
//                  linear/spatial: nothing).
//   decide         client/proxy-side, DEVICE-SPECIFIC.  Combine the
//                  annotation with the device model into a concrete
//                  CompensationDecision: backlight level plus a pixel
//                  transform (linear gain, 256-entry tone curve, or spatial
//                  scale factor) and a predicted perceived-quality estimate
//                  for QoS planning.
//   apply          execute the decision's pixel transform on a frame.
//
// HEBS curves are stored in the PERCEIVED domain: a monotone map
// P: [0,255] -> [0,255] with P(y) <= y giving the luminance the viewer
// should perceive for content luminance y.  That keeps annotations device-
// independent (paper Sec. 3: annotations describe content, not panels); the
// client turns P into a device transform by planning the backlight for the
// curve's peak P(255) and scaling the curve by the resulting gain.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "compensate/compensate.h"
#include "compensate/planner.h"
#include "display/device.h"
#include "media/histogram.h"
#include "media/image.h"

namespace anno::compensate {

/// Identity of a compensation backend.  Values are wire format (ANN1
/// backend chunk) and fingerprint inputs -- append only, never renumber.
enum class BackendKind : std::uint8_t {
  kLinearGain = 0,      ///< paper Sec. 4.1: backlight + linear gain (default)
  kHebs = 1,            ///< histogram-equalization tone curve per scene
  kSpatialScaling = 2,  ///< proxy-side resolution/power trade + linear gain
};

/// Stable short name for telemetry/trace labels and reports.
[[nodiscard]] const char* backendName(BackendKind kind) noexcept;

/// True for the enumerators above (wire-decode validation).
[[nodiscard]] bool isKnownBackendKind(std::uint8_t raw) noexcept;

/// Backend selection + knobs, carried by core::AnnotatorConfig.  Knobs only
/// affect (and are only fingerprinted for) the backend they belong to.
struct BackendConfig {
  BackendKind kind = BackendKind::kLinearGain;
  /// HEBS: blend between the hard clamp curve and the histogram-
  /// equalization curve when searching for a dimmer perceived peak.
  /// 0 = pure clamp, 1 = pure equalization.  In [0, 1].
  double hebsEqualizationWeight = 0.5;
  /// Spatial scaling: linear resolution factor applied by the proxy during
  /// transcode.  In (0, 1].
  double spatialScale = 0.75;

  friend bool operator==(const BackendConfig&, const BackendConfig&) = default;
};

/// A concrete, device-specific compensation decision for one scene.
struct CompensationDecision {
  CompensationPlan plan;  ///< backlight level, gain, ceiling
  BackendKind kind = BackendKind::kLinearGain;
  /// Pixel-domain tone curve to apply (already device-scaled, i.e. includes
  /// the plan's gain).  Null: apply the plan's linear gain instead.
  std::shared_ptr<const ToneCurve> pixelCurve;
  /// Resolution factor (< 1 only for kSpatialScaling).
  double spatialScale = 1.0;
  /// Predicted perceived-quality EMD vs the original scene histogram
  /// (0 when no scene histogram was available to the planner).
  double predictedEmd = 0.0;
};

/// Number of control points in the canonical wire encoding of a tone curve:
/// y = 8*i for i = 0..31, plus y = 255.
inline constexpr int kCurveControlPoints = 33;

/// Canonicalizes a curve to its 33 wire control points.
[[nodiscard]] std::array<std::uint8_t, kCurveControlPoints>
curveToControlPoints(const ToneCurve& curve);

/// Expands 33 control points back to a 256-entry curve by deterministic
/// linear interpolation.  curveFromControlPoints(curveToControlPoints(c))
/// is the canonical form every producer must store so encode/decode
/// round-trips bit-identically.
[[nodiscard]] ToneCurve curveFromControlPoints(
    std::span<const std::uint8_t> points);

class Backend {
 public:
  virtual ~Backend() = default;

  [[nodiscard]] virtual BackendKind kind() const noexcept = 0;
  [[nodiscard]] const char* name() const noexcept {
    return backendName(kind());
  }

  /// Server-side, device-independent: per-quality-level perceived-target
  /// curves for one scene (parallel to `safeLuma`).  Empty when the backend
  /// ships no curves (linear, spatial).  Returned curves are canonical
  /// (control-point round-trip stable) and satisfy P(y) <= y, monotone.
  [[nodiscard]] virtual std::vector<ToneCurve> annotateScene(
      const media::Histogram& sceneHist,
      std::span<const std::uint8_t> safeLuma) const;

  /// Client/proxy-side, device-specific.  `perceivedCurve` is this scene's
  /// curve for the chosen quality level (null when the track carries none;
  /// curve-carrying backends must then fall back to full backlight, since
  /// the client cannot know what peak the content was compensated for).
  /// `sceneHist` (optional) enables the predicted-EMD estimate.
  [[nodiscard]] virtual CompensationDecision decide(
      const display::DeviceModel& device, std::uint8_t safeLuma,
      const ToneCurve* perceivedCurve, int minBacklightLevel,
      const media::Histogram* sceneHist) const = 0;

  /// Executes the decision's pixel transform (spatial downscale first, then
  /// tone curve or linear gain).  The default implementation covers all
  /// current backends.
  [[nodiscard]] virtual media::Image apply(
      const media::Image& frame, const CompensationDecision& decision) const;
};

/// Factory.  Throws std::invalid_argument on out-of-range knobs.
[[nodiscard]] std::unique_ptr<const Backend> makeBackend(
    const BackendConfig& cfg);

}  // namespace anno::compensate
