#include "display/quantize.h"

#include <cmath>
#include <stdexcept>

namespace anno::display {
namespace {

/// 4x4 Bayer matrix, values 0..15.
constexpr int kBayer4[4][4] = {
    {0, 8, 2, 10}, {12, 4, 14, 6}, {3, 11, 1, 9}, {15, 7, 13, 5}};

/// Quantize an 8-bit value to `bits` (truncation, as RGB565 hardware does)
/// and expand back by bit replication.  `ditherOffset` in [0,1) raises the
/// value by a sub-step amount before truncation (ordered dithering); 0
/// gives the plain idempotent mapping.
std::uint8_t quantizeChannel(int v, int bits, double ditherOffset) {
  const int levels = 1 << bits;
  const int step = 256 / levels;
  int q = (v + static_cast<int>(ditherOffset * step)) / step;
  if (q >= levels) q = levels - 1;
  // Bit-replication expansion (e.g. 5 bits: q<<3 | q>>2).
  const int hi = q << (8 - bits);
  return static_cast<std::uint8_t>(hi | (hi >> bits));
}

}  // namespace

media::Rgb8 toRgb565(const media::Rgb8& p) noexcept {
  return media::Rgb8{quantizeChannel(p.r, 5, 0.0),
                     quantizeChannel(p.g, 6, 0.0),
                     quantizeChannel(p.b, 5, 0.0)};
}

media::Image quantizeRgb565(const media::Image& img, bool dither) {
  if (img.empty()) {
    throw std::invalid_argument("quantizeRgb565: empty image");
  }
  media::Image out(img.width(), img.height());
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      if (!dither) {
        out(x, y) = toRgb565(img(x, y));
        continue;
      }
      // Ordered dithering: per-pixel threshold in [0,1) from the Bayer
      // matrix replaces the fixed 0.5 rounding offset.
      const double t = (kBayer4[y & 3][x & 3] + 0.5) / 16.0;
      const media::Rgb8& p = img(x, y);
      out(x, y) = media::Rgb8{quantizeChannel(p.r, 5, t),
                              quantizeChannel(p.g, 6, t),
                              quantizeChannel(p.b, 5, t)};
    }
  }
  return out;
}

double quantizationError(const media::Image& original,
                         const media::Image& quantized) {
  if (original.width() != quantized.width() ||
      original.height() != quantized.height() || original.empty()) {
    throw std::invalid_argument("quantizationError: geometry mismatch");
  }
  double sum = 0.0;
  auto po = original.pixels();
  auto pq = quantized.pixels();
  for (std::size_t i = 0; i < po.size(); ++i) {
    sum += std::abs(po[i].r - pq[i].r) + std::abs(po[i].g - pq[i].g) +
           std::abs(po[i].b - pq[i].b);
  }
  return sum / (3.0 * static_cast<double>(po.size()));
}

}  // namespace anno::display
