// Emissive (OLED/AMOLED) display model: the applicability BOUNDARY of the
// paper's technique.
//
// An emissive panel has no backlight -- each subpixel emits its own light,
// so power is a function of CONTENT, not of a global lamp.  Two
// consequences the library should make explicit:
//   1. Backlight scaling does not apply; its dual (dimming the content
//      itself) is what saves power on OLED.
//   2. The paper's server-side compensation (brightening pixels so the
//      backlight can dim) actively INCREASES an OLED's power draw -- a
//      compensated stream must never be sent to an emissive client, which
//      is exactly what the capability negotiation exists to prevent.
#pragma once

#include <string>

#include "media/image.h"
#include "media/video.h"

namespace anno::display {

/// Parametric emissive panel.  Subpixel power follows the gamma-linearized
/// drive current, weighted per channel (blue emitters are the least
/// efficient, so blue-heavy content costs more).
struct EmissiveDisplay {
  std::string name = "generic_oled";
  double maxPowerWatts = 1.1;   ///< full-screen full-white emission
  double basePanelWatts = 0.08; ///< drivers, scan logic
  double weightR = 0.9;
  double weightG = 0.7;
  double weightB = 1.4;
  double gammaExp = 2.2;

  /// Instantaneous panel power showing `frame`.
  [[nodiscard]] double powerWatts(const media::Image& frame) const;

  /// Average power over a clip.
  [[nodiscard]] double averagePowerWatts(const media::VideoClip& clip) const;
};

/// A representative early-2000s AMOLED handset panel.
[[nodiscard]] EmissiveDisplay makeGenericOled();

/// Content dimming (the OLED dual of backlight scaling): scales every pixel
/// by `factor` in [0,1].  Returns the dimmed frame; power drops roughly as
/// factor^gamma.
[[nodiscard]] media::Image dimContent(const media::Image& frame,
                                      double factor);

}  // namespace anno::display
