// LCD panel and backlight models.
//
// Perceived pixel intensity on a back-lit LCD (paper Sec. 4.1):
//     I = rho * L * Y
// where rho is the panel transmittance, L the backlight luminance and Y the
// displayed image luminance.  Transflective panels add a reflective term
// driven by ambient light, which is why they "perform best both indoors and
// outdoors".  Backlight power is "almost proportional to backlight level,
// but little dependent of pixel values" (Sec. 5), which is what lets the
// paper estimate savings analytically; our power model is affine in the
// emitted-light fraction with a technology-dependent floor (CCFL inverters
// burn power as soon as the lamp is struck; LEDs scale nearly from zero).
#pragma once

#include <cstdint>
#include <string>

#include "display/transfer.h"
#include "media/image.h"

namespace anno::display {

enum class PanelType { kReflective, kTransmissive, kTransflective };
enum class BacklightType { kCcfl, kLed };

[[nodiscard]] std::string toString(PanelType t);
[[nodiscard]] std::string toString(BacklightType t);

/// Optical model of the panel glass.
struct LcdPanel {
  PanelType type = PanelType::kTransflective;
  double transmittance = 0.08;  ///< rho: typical TFT stack passes ~5-10%
  double reflectance = 0.02;    ///< transflective/reflective bounce factor

  /// Relative perceived intensity of a pixel with 8-bit luma `luma`, given
  /// backlight relative luminance `backlightRel` in [0,1] and ambient
  /// illumination `ambientRel` (0 = dark room, the paper's measurement
  /// condition).  Result is relative (unitless); comparisons across
  /// configurations of the same panel are meaningful.
  [[nodiscard]] double perceivedIntensity(std::uint8_t luma,
                                          double backlightRel,
                                          double ambientRel = 0.0) const;
};

/// Electrical/optical model of the backlight unit.
struct Backlight {
  BacklightType type = BacklightType::kLed;
  double maxPowerWatts = 1.2;   ///< at level 255
  double floorPowerWatts = 0.0; ///< fixed cost while lit (CCFL inverter)
  double responseTimeMs = 5.0;  ///< settling time after a level change

  /// Electrical power at a software backlight level in [0,255], given the
  /// device's transfer function (power tracks emitted light, with a floor
  /// while the lamp is on).  Level 0 consumes nothing.
  [[nodiscard]] double powerWatts(int level,
                                  const TransferFunction& transfer) const;
};

/// Renders the image actually shown: what an ideal observer (or our camera
/// model) would see on the panel -- per-pixel perceived intensity quantized
/// back to 8-bit codes relative to the panel's full-backlight white.
/// Used by the camera-validation flow.
[[nodiscard]] media::GrayImage displayedLuma(const LcdPanel& panel,
                                             const media::Image& frame,
                                             double backlightRel,
                                             double ambientRel = 0.0);

}  // namespace anno::display
