// Device profile files: load/save DeviceModel as a small text format, so a
// deployment can add a new PDA (name, panel, backlight, measured transfer
// LUT) without recompiling -- the artifact a characterization session
// produces and a client loads at startup.
//
// Format (line-oriented, "key value", '#' comments):
//
//   annolight-device 1
//   name          ipaq5555
//   panel         transflective
//   transmittance 0.08
//   reflectance   0.03
//   backlight     LED
//   max_watts     0.95
//   floor_watts   0.02
//   response_ms   5
//   transfer      <256 space-separated relative luminances>
#pragma once

#include <string>

#include "display/device.h"

namespace anno::display {

/// Serializes a device model to the profile text format.
[[nodiscard]] std::string formatDeviceProfile(const DeviceModel& device);

/// Parses a profile; throws std::runtime_error with a line diagnostic on
/// malformed input.
[[nodiscard]] DeviceModel parseDeviceProfile(const std::string& text);

/// File convenience wrappers.
void saveDeviceProfile(const DeviceModel& device, const std::string& path);
[[nodiscard]] DeviceModel loadDeviceProfile(const std::string& path);

}  // namespace anno::display
