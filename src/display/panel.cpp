#include "display/panel.h"

#include <algorithm>
#include <stdexcept>

#include "media/pixel.h"

namespace anno::display {

std::string toString(PanelType t) {
  switch (t) {
    case PanelType::kReflective: return "reflective";
    case PanelType::kTransmissive: return "transmissive";
    case PanelType::kTransflective: return "transflective";
  }
  throw std::invalid_argument("toString(PanelType): bad value");
}

std::string toString(BacklightType t) {
  switch (t) {
    case BacklightType::kCcfl: return "CCFL";
    case BacklightType::kLed: return "LED";
  }
  throw std::invalid_argument("toString(BacklightType): bad value");
}

double LcdPanel::perceivedIntensity(std::uint8_t luma, double backlightRel,
                                    double ambientRel) const {
  if (backlightRel < 0.0 || backlightRel > 1.0) {
    throw std::invalid_argument("perceivedIntensity: backlightRel in [0,1]");
  }
  if (ambientRel < 0.0) {
    throw std::invalid_argument("perceivedIntensity: ambientRel >= 0");
  }
  const double y = luma / 255.0;
  // Transmissive path: I = rho * L * Y.
  double intensity = transmittance * backlightRel * y;
  // Reflective path (reflective & transflective panels): ambient light
  // passes the stack twice, modulated by the same pixel value.
  if (type != PanelType::kTransmissive) {
    intensity += reflectance * ambientRel * y;
  }
  return intensity;
}

double Backlight::powerWatts(int level,
                             const TransferFunction& transfer) const {
  if (level < 0 || level > 255) {
    throw std::invalid_argument("Backlight::powerWatts: level in [0,255]");
  }
  if (level == 0) return 0.0;
  const double light = transfer.relLuminance(level);
  return floorPowerWatts + (maxPowerWatts - floorPowerWatts) * light;
}

media::GrayImage displayedLuma(const LcdPanel& panel,
                               const media::Image& frame, double backlightRel,
                               double ambientRel) {
  if (frame.empty()) {
    throw std::invalid_argument("displayedLuma: empty frame");
  }
  media::GrayImage out(frame.width(), frame.height());
  // Normalize so that full white at full backlight maps to code 255 for
  // this panel in a dark room.
  const double white = panel.perceivedIntensity(255, 1.0, 0.0);
  auto src = frame.pixels();
  auto dst = out.pixels();
  for (std::size_t i = 0; i < src.size(); ++i) {
    const double rel =
        panel.perceivedIntensity(media::luma8(src[i]), backlightRel,
                                 ambientRel) /
        white;
    dst[i] = media::clamp8(rel * 255.0);
  }
  return out;
}

}  // namespace anno::display
