// Display characterization flow (paper Sec. 5, Figs. 7 & 8).
//
// "We start by first characterizing the display and backlight of our PDAs.
//  This is performed by displaying images of different solid gray levels on
//  the handhelds and capturing snapshots of the screen with a digital
//  camera."
//
// The flow is meter-agnostic: any LuminanceMeter (our camera model from
// src/quality, an ideal meter for tests, or a real illuminometer in a port
// to hardware) can drive it.  The result is a fitted TransferFunction plus
// the raw sweep tables behind Fig. 7 (brightness vs backlight at white=255)
// and Fig. 8 (brightness vs white value at fixed backlight).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "display/device.h"
#include "display/transfer.h"
#include "media/image.h"

namespace anno::display {

/// Anything that can report the (relative) brightness of the panel while it
/// shows a solid patch.  Implementations: quality::CameraMeter (realistic),
/// IdealMeter (exact, for tests).
class LuminanceMeter {
 public:
  virtual ~LuminanceMeter() = default;

  /// Measured relative brightness of `device` showing a full-screen solid
  /// gray of value `grayValue` at backlight `backlightLevel`.  Scale is
  /// arbitrary but must be consistent across calls.
  [[nodiscard]] virtual double measure(const DeviceModel& device,
                                       std::uint8_t grayValue,
                                       int backlightLevel) = 0;
};

/// Exact meter: reads the panel model directly (no camera distortions).
class IdealMeter final : public LuminanceMeter {
 public:
  [[nodiscard]] double measure(const DeviceModel& device,
                               std::uint8_t grayValue,
                               int backlightLevel) override;
};

/// One sweep sample.
struct SweepPoint {
  int x = 0;          ///< swept variable (backlight level or white value)
  double brightness = 0.0;
};

/// Fig. 7 sweep: white patch (gray=255), backlight swept over [0,255] in
/// `steps` samples.
[[nodiscard]] std::vector<SweepPoint> sweepBacklight(const DeviceModel& device,
                                                     LuminanceMeter& meter,
                                                     int steps = 18);

/// Fig. 8 sweep: backlight fixed, gray value swept over [0,255].
[[nodiscard]] std::vector<SweepPoint> sweepWhiteLevel(
    const DeviceModel& device, LuminanceMeter& meter, int backlightLevel,
    int steps = 18);

/// Full characterization: runs the backlight sweep and fits the device's
/// backlight->luminance TransferFunction from the measurements.
struct CharacterizationResult {
  std::vector<SweepPoint> backlightSweep;       ///< Fig. 7 data
  std::vector<SweepPoint> whiteSweepFull;       ///< Fig. 8, backlight=255
  std::vector<SweepPoint> whiteSweepHalf;       ///< Fig. 8, backlight=128
  TransferFunction fittedTransfer;              ///< fit of backlightSweep
  double maxAbsFitError = 0.0;  ///< max |fitted - true| over all 256 levels
};

[[nodiscard]] CharacterizationResult characterizeDevice(
    const DeviceModel& device, LuminanceMeter& meter, int steps = 18);

}  // namespace anno::display
