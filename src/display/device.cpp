#include "display/device.h"

#include <stdexcept>

namespace anno::display {

DeviceModel makeDevice(KnownDevice device) {
  DeviceModel m;
  switch (device) {
    case KnownDevice::kIpaq3650:
      m.name = "ipaq3650";
      m.panel = LcdPanel{PanelType::kReflective, 0.065, 0.045};
      // CCFL front-light: inverter floor, lamp will not strike below ~15%.
      m.backlight = Backlight{BacklightType::kCcfl, 1.40, 0.30, 80.0};
      m.transfer = TransferFunction::ccfl(0.15, 1.20);
      return m;
    case KnownDevice::kZaurusSl5600:
      m.name = "zaurus_sl5600";
      m.panel = LcdPanel{PanelType::kReflective, 0.070, 0.040};
      m.backlight = Backlight{BacklightType::kCcfl, 1.25, 0.25, 70.0};
      m.transfer = TransferFunction::ccfl(0.10, 1.05);
      return m;
    case KnownDevice::kIpaq5555:
      m.name = "ipaq5555";
      m.panel = LcdPanel{PanelType::kTransflective, 0.080, 0.030};
      // White LEDs: negligible floor, fast response, lower max power --
      // "simpler drive circuitry ... lower power consumption with a faster
      // response time" (Sec. 2).
      m.backlight = Backlight{BacklightType::kLed, 0.95, 0.02, 5.0};
      // Measured-style concave curve: luminance rises faster than linearly
      // at low levels (Fig. 7 "not linear with the backlight level").
      m.transfer = TransferFunction::gamma(0.75);
      return m;
  }
  throw std::invalid_argument("makeDevice: unknown device");
}

std::vector<KnownDevice> allKnownDevices() {
  return {KnownDevice::kIpaq3650, KnownDevice::kZaurusSl5600,
          KnownDevice::kIpaq5555};
}

std::string deviceName(KnownDevice device) {
  switch (device) {
    case KnownDevice::kIpaq3650: return "ipaq3650";
    case KnownDevice::kZaurusSl5600: return "zaurus_sl5600";
    case KnownDevice::kIpaq5555: return "ipaq5555";
  }
  throw std::invalid_argument("deviceName: unknown device");
}

}  // namespace anno::display
