// Device database: the three PDAs characterized in the paper's Sec. 5.
//
//   - iPAQ 3650   : reflective panel, CCFL front-light
//   - Zaurus SL-5600: reflective panel, CCFL front-light
//   - iPAQ 5555   : transflective panel, white-LED backlight (the device the
//                   paper implements and measures on: 400 MHz XScale,
//                   64K-colour display, Familiar Linux)
//
// Each device carries its own backlight->luminance transfer function (the
// paper stresses these differ per display technology and must be "included
// in the loop") and its backlight electrical parameters.
#pragma once

#include <string>
#include <vector>

#include "display/panel.h"
#include "display/transfer.h"

namespace anno::display {

/// A concrete handheld display subsystem.
struct DeviceModel {
  std::string name;
  LcdPanel panel;
  Backlight backlight;
  TransferFunction transfer;

  /// Electrical backlight power at a software level in [0,255].
  [[nodiscard]] double backlightPowerWatts(int level) const {
    return backlight.powerWatts(level, transfer);
  }

  /// Power saved (fraction of full-backlight power) when running at `level`.
  [[nodiscard]] double backlightSavings(int level) const {
    const double full = backlightPowerWatts(255);
    return full > 0.0 ? 1.0 - backlightPowerWatts(level) / full : 0.0;
  }
};

/// Device identifiers.
enum class KnownDevice { kIpaq3650, kZaurusSl5600, kIpaq5555 };

/// Builds the model for a known device.
[[nodiscard]] DeviceModel makeDevice(KnownDevice device);

/// All devices used in the paper's characterization experiments.
[[nodiscard]] std::vector<KnownDevice> allKnownDevices();

[[nodiscard]] std::string deviceName(KnownDevice device);

}  // namespace anno::display
