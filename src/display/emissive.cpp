#include "display/emissive.h"

#include <cmath>
#include <stdexcept>

#include "media/pixel.h"

namespace anno::display {

double EmissiveDisplay::powerWatts(const media::Image& frame) const {
  if (frame.empty()) {
    throw std::invalid_argument("EmissiveDisplay::powerWatts: empty frame");
  }
  const double wsum = weightR + weightG + weightB;
  double emission = 0.0;
  for (const media::Rgb8& p : frame.pixels()) {
    emission += weightR * std::pow(p.r / 255.0, gammaExp) +
                weightG * std::pow(p.g / 255.0, gammaExp) +
                weightB * std::pow(p.b / 255.0, gammaExp);
  }
  emission /= wsum * static_cast<double>(frame.pixelCount());
  return basePanelWatts + maxPowerWatts * emission;
}

double EmissiveDisplay::averagePowerWatts(const media::VideoClip& clip) const {
  media::validateClip(clip);
  double sum = 0.0;
  for (const media::Image& f : clip.frames) sum += powerWatts(f);
  return sum / static_cast<double>(clip.frames.size());
}

EmissiveDisplay makeGenericOled() { return EmissiveDisplay{}; }

media::Image dimContent(const media::Image& frame, double factor) {
  if (factor < 0.0 || factor > 1.0) {
    throw std::invalid_argument("dimContent: factor must be in [0,1]");
  }
  if (frame.empty()) {
    throw std::invalid_argument("dimContent: empty frame");
  }
  media::Image out(frame.width(), frame.height());
  auto src = frame.pixels();
  auto dst = out.pixels();
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = media::Rgb8{media::clamp8(src[i].r * factor),
                         media::clamp8(src[i].g * factor),
                         media::clamp8(src[i].b * factor)};
  }
  return out;
}

}  // namespace anno::display
