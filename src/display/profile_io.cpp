#include "display/profile_io.h"

#include <array>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace anno::display {
namespace {

PanelType parsePanelType(const std::string& s) {
  if (s == "reflective") return PanelType::kReflective;
  if (s == "transmissive") return PanelType::kTransmissive;
  if (s == "transflective") return PanelType::kTransflective;
  throw std::runtime_error("device profile: unknown panel type '" + s + "'");
}

BacklightType parseBacklightType(const std::string& s) {
  if (s == "CCFL") return BacklightType::kCcfl;
  if (s == "LED") return BacklightType::kLed;
  throw std::runtime_error("device profile: unknown backlight type '" + s +
                           "'");
}

}  // namespace

std::string formatDeviceProfile(const DeviceModel& device) {
  std::ostringstream os;
  os << "annolight-device 1\n";
  os << "name " << device.name << "\n";
  os << "panel " << toString(device.panel.type) << "\n";
  os << "transmittance " << device.panel.transmittance << "\n";
  os << "reflectance " << device.panel.reflectance << "\n";
  os << "backlight " << toString(device.backlight.type) << "\n";
  os << "max_watts " << device.backlight.maxPowerWatts << "\n";
  os << "floor_watts " << device.backlight.floorPowerWatts << "\n";
  os << "response_ms " << device.backlight.responseTimeMs << "\n";
  os << "transfer";
  for (int level = 0; level < 256; ++level) {
    os << ' ' << device.transfer.relLuminance(level);
  }
  os << "\n";
  return os.str();
}

DeviceModel parseDeviceProfile(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  DeviceModel device;
  bool sawHeader = false;
  bool sawTransfer = false;
  bool sawName = false;
  int lineNo = 0;
  while (std::getline(is, line)) {
    ++lineNo;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;  // blank / comment-only line
    const auto fail = [&](const std::string& what) -> std::runtime_error {
      return std::runtime_error("device profile line " +
                                std::to_string(lineNo) + ": " + what);
    };
    if (!sawHeader) {
      int version = 0;
      if (key != "annolight-device" || !(ls >> version) || version != 1) {
        throw fail("expected 'annolight-device 1' header");
      }
      sawHeader = true;
      continue;
    }
    if (key == "name") {
      if (!(ls >> device.name)) throw fail("missing name");
      sawName = true;
    } else if (key == "panel") {
      std::string v;
      if (!(ls >> v)) throw fail("missing panel type");
      try {
        device.panel.type = parsePanelType(v);
      } catch (const std::runtime_error& e) {
        throw fail(e.what());
      }
    } else if (key == "transmittance") {
      if (!(ls >> device.panel.transmittance) ||
          device.panel.transmittance <= 0.0) {
        throw fail("bad transmittance");
      }
    } else if (key == "reflectance") {
      if (!(ls >> device.panel.reflectance) ||
          device.panel.reflectance < 0.0) {
        throw fail("bad reflectance");
      }
    } else if (key == "backlight") {
      std::string v;
      if (!(ls >> v)) throw fail("missing backlight type");
      try {
        device.backlight.type = parseBacklightType(v);
      } catch (const std::runtime_error& e) {
        throw fail(e.what());
      }
    } else if (key == "max_watts") {
      if (!(ls >> device.backlight.maxPowerWatts) ||
          device.backlight.maxPowerWatts <= 0.0) {
        throw fail("bad max_watts");
      }
    } else if (key == "floor_watts") {
      if (!(ls >> device.backlight.floorPowerWatts) ||
          device.backlight.floorPowerWatts < 0.0) {
        throw fail("bad floor_watts");
      }
    } else if (key == "response_ms") {
      if (!(ls >> device.backlight.responseTimeMs) ||
          device.backlight.responseTimeMs < 0.0) {
        throw fail("bad response_ms");
      }
    } else if (key == "transfer") {
      std::array<double, 256> lut{};
      for (int level = 0; level < 256; ++level) {
        if (!(ls >> lut[level])) {
          throw fail("transfer needs 256 values, stopped at " +
                     std::to_string(level));
        }
      }
      device.transfer = TransferFunction::fromLut(lut);
      sawTransfer = true;
    } else {
      throw fail("unknown key '" + key + "'");
    }
  }
  if (!sawHeader) throw std::runtime_error("device profile: empty input");
  if (!sawName) throw std::runtime_error("device profile: missing name");
  if (!sawTransfer) {
    throw std::runtime_error("device profile: missing transfer LUT");
  }
  return device;
}

void saveDeviceProfile(const DeviceModel& device, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open for writing: " + path);
  f << formatDeviceProfile(device);
  if (!f) throw std::runtime_error("write failed: " + path);
}

DeviceModel loadDeviceProfile(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open: " + path);
  std::ostringstream os;
  os << f.rdbuf();
  return parseDeviceProfile(os.str());
}

}  // namespace anno::display
