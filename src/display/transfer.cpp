#include "display/transfer.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace anno::display {
namespace {

std::array<double, 256> normalizeMonotone(std::array<double, 256> lut) {
  // Monotonize first, normalize second: inputs may arrive on an arbitrary
  // meter scale (camera characterization), so clamping to [0,1] before
  // dividing by the top would flatten every bright sample.
  double runMax = 0.0;
  for (double& v : lut) {
    v = std::max(v, 0.0);
    runMax = std::max(runMax, v);
    v = runMax;
  }
  if (lut.back() <= 0.0) {
    throw std::invalid_argument("TransferFunction: top of LUT must be > 0");
  }
  const double top = lut.back();
  for (double& v : lut) v /= top;
  return lut;
}

}  // namespace

TransferFunction::TransferFunction() {
  for (int i = 0; i < 256; ++i) lut_[i] = i / 255.0;
}

TransferFunction TransferFunction::fromLut(std::span<const double> lut256) {
  if (lut256.size() != 256) {
    throw std::invalid_argument("TransferFunction::fromLut: need 256 entries");
  }
  std::array<double, 256> lut{};
  std::copy(lut256.begin(), lut256.end(), lut.begin());
  TransferFunction tf;
  tf.lut_ = normalizeMonotone(lut);
  return tf;
}

TransferFunction TransferFunction::linear() { return TransferFunction(); }

TransferFunction TransferFunction::gamma(double g) {
  if (g <= 0.0) {
    throw std::invalid_argument("TransferFunction::gamma: g must be > 0");
  }
  std::array<double, 256> lut{};
  for (int i = 0; i < 256; ++i) lut[i] = std::pow(i / 255.0, g);
  TransferFunction tf;
  tf.lut_ = normalizeMonotone(lut);
  return tf;
}

TransferFunction TransferFunction::ccfl(double threshold, double g) {
  if (threshold < 0.0 || threshold >= 1.0) {
    throw std::invalid_argument("TransferFunction::ccfl: bad threshold");
  }
  std::array<double, 256> lut{};
  for (int i = 0; i < 256; ++i) {
    const double x = i / 255.0;
    lut[i] = x <= threshold
                 ? 0.0
                 : std::pow((x - threshold) / (1.0 - threshold), g);
  }
  TransferFunction tf;
  tf.lut_ = normalizeMonotone(lut);
  return tf;
}

TransferFunction TransferFunction::sCurve(double midpoint, double steepness) {
  if (midpoint <= 0.0 || midpoint >= 1.0 || steepness <= 0.0) {
    throw std::invalid_argument("TransferFunction::sCurve: bad parameters");
  }
  std::array<double, 256> lut{};
  const auto logistic = [&](double x) {
    return 1.0 / (1.0 + std::exp(-steepness * (x - midpoint)));
  };
  const double lo = logistic(0.0);
  const double hi = logistic(1.0);
  for (int i = 0; i < 256; ++i) {
    lut[i] = (logistic(i / 255.0) - lo) / (hi - lo);
  }
  TransferFunction tf;
  tf.lut_ = normalizeMonotone(lut);
  return tf;
}

TransferFunction TransferFunction::fitFromSamples(
    std::span<const std::pair<int, double>> samples) {
  std::vector<std::pair<int, double>> pts(samples.begin(), samples.end());
  std::sort(pts.begin(), pts.end());
  pts.erase(std::unique(pts.begin(), pts.end(),
                        [](const auto& a, const auto& b) {
                          return a.first == b.first;
                        }),
            pts.end());
  if (pts.size() < 2) {
    throw std::invalid_argument(
        "TransferFunction::fitFromSamples: need >= 2 distinct levels");
  }
  for (const auto& [lvl, lum] : pts) {
    if (lvl < 0 || lvl > 255) {
      throw std::invalid_argument(
          "TransferFunction::fitFromSamples: level out of [0,255]");
    }
    (void)lum;
  }
  std::array<double, 256> lut{};
  // Linear interpolation between sample points; flat extrapolation outside.
  std::size_t seg = 0;
  for (int i = 0; i < 256; ++i) {
    if (i <= pts.front().first) {
      lut[i] = pts.front().second;
      continue;
    }
    if (i >= pts.back().first) {
      lut[i] = pts.back().second;
      continue;
    }
    while (seg + 1 < pts.size() && pts[seg + 1].first < i) ++seg;
    const auto& [x0, y0] = pts[seg];
    const auto& [x1, y1] = pts[seg + 1];
    const double t = static_cast<double>(i - x0) / (x1 - x0);
    lut[i] = y0 + t * (y1 - y0);
  }
  TransferFunction tf;
  tf.lut_ = normalizeMonotone(lut);
  return tf;
}

double TransferFunction::relLuminance(int level) const {
  if (level < 0 || level > 255) {
    throw std::invalid_argument("TransferFunction: level out of [0,255]");
  }
  return lut_[level];
}

std::uint8_t TransferFunction::minimumLevelFor(
    double targetRelLuminance) const {
  const double target = std::clamp(targetRelLuminance, 0.0, 1.0);
  // LUT is monotone: binary search for the first level >= target.
  const auto it = std::lower_bound(lut_.begin(), lut_.end(), target);
  if (it == lut_.end()) return 255;
  return static_cast<std::uint8_t>(it - lut_.begin());
}

}  // namespace anno::display
