#include "display/characterize.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace anno::display {

double IdealMeter::measure(const DeviceModel& device, std::uint8_t grayValue,
                           int backlightLevel) {
  return device.panel.perceivedIntensity(
      grayValue, device.transfer.relLuminance(backlightLevel), 0.0);
}

std::vector<SweepPoint> sweepBacklight(const DeviceModel& device,
                                       LuminanceMeter& meter, int steps) {
  if (steps < 2) {
    throw std::invalid_argument("sweepBacklight: need >= 2 steps");
  }
  std::vector<SweepPoint> sweep;
  sweep.reserve(steps);
  for (int i = 0; i < steps; ++i) {
    const int level = i * 255 / (steps - 1);
    sweep.push_back({level, meter.measure(device, 255, level)});
  }
  return sweep;
}

std::vector<SweepPoint> sweepWhiteLevel(const DeviceModel& device,
                                        LuminanceMeter& meter,
                                        int backlightLevel, int steps) {
  if (steps < 2) {
    throw std::invalid_argument("sweepWhiteLevel: need >= 2 steps");
  }
  if (backlightLevel < 0 || backlightLevel > 255) {
    throw std::invalid_argument("sweepWhiteLevel: backlight out of range");
  }
  std::vector<SweepPoint> sweep;
  sweep.reserve(steps);
  for (int i = 0; i < steps; ++i) {
    const int gray = i * 255 / (steps - 1);
    sweep.push_back(
        {gray, meter.measure(device, static_cast<std::uint8_t>(gray),
                             backlightLevel)});
  }
  return sweep;
}

CharacterizationResult characterizeDevice(const DeviceModel& device,
                                          LuminanceMeter& meter, int steps) {
  CharacterizationResult result;
  result.backlightSweep = sweepBacklight(device, meter, steps);
  result.whiteSweepFull = sweepWhiteLevel(device, meter, 255, steps);
  result.whiteSweepHalf = sweepWhiteLevel(device, meter, 128, steps);

  std::vector<std::pair<int, double>> samples;
  samples.reserve(result.backlightSweep.size());
  for (const SweepPoint& p : result.backlightSweep) {
    samples.emplace_back(p.x, p.brightness);
  }
  result.fittedTransfer = TransferFunction::fitFromSamples(samples);

  double maxErr = 0.0;
  for (int level = 0; level < 256; ++level) {
    maxErr = std::max(maxErr,
                      std::abs(result.fittedTransfer.relLuminance(level) -
                               device.transfer.relLuminance(level)));
  }
  result.maxAbsFitError = maxErr;
  return result;
}

}  // namespace anno::display
