// Panel colour quantization.
//
// The paper's measurement device is a "64K-color transflective LCD": the
// panel shows RGB565, not RGB888.  This module models that quantization
// (with optional ordered dithering, which PDA drivers of the era used) so
// display-accurate experiments can include the panel's real colour depth.
#pragma once

#include "media/image.h"

namespace anno::display {

/// Quantizes one pixel to RGB565 and expands back to 8-bit codes using the
/// standard bit-replication expansion.
[[nodiscard]] media::Rgb8 toRgb565(const media::Rgb8& p) noexcept;

/// Quantizes a full frame.  With `dither`, a 4x4 Bayer ordered-dither
/// threshold is applied before truncation, trading spatial noise for mean
/// accuracy (banding removal).
[[nodiscard]] media::Image quantizeRgb565(const media::Image& img,
                                          bool dither = false);

/// Mean absolute per-channel error introduced by 565 quantization of `img`
/// (diagnostic; bounded by 4 for the 5-bit channels / 2 for green).
[[nodiscard]] double quantizationError(const media::Image& original,
                                       const media::Image& quantized);

}  // namespace anno::display
