// Backlight-level -> luminance transfer functions.
//
// Paper Sec. 5: "the measured luminance was almost linear with the luminance
// of the image (Figure 7), but not linear with the backlight level
// (Figure 8). Each display technology showed a different transfer
// characteristic. The luminance-backlight transfer function allows us to
// compute the backlight level needed to achieve a desired luminance level
// during playback and is essential in order to minimize the degradation
// introduced by the compensation scheme."
//
// We model the transfer as a 256-entry monotone non-decreasing LUT of
// relative luminance (T(255) == 1), with an exact inverse lookup.  Builders
// provide the characteristic shapes of the paper's three device classes and
// a fit-from-samples path used by the camera characterization flow.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <utility>

namespace anno::display {

/// Monotone backlight->relative-luminance map with inverse.
class TransferFunction {
 public:
  /// Identity default: linear with level.
  TransferFunction();

  /// Builds from an explicit LUT.  Values are clamped to [0,1]; the table is
  /// made monotone non-decreasing (running max) and normalized so the top
  /// entry is exactly 1.  Throws std::invalid_argument if the top value
  /// would be zero.
  static TransferFunction fromLut(std::span<const double> lut256);

  /// Perfectly linear transfer (idealized panel).
  static TransferFunction linear();

  /// Power-law transfer T(x) = x^gamma (gamma < 1: concave, typical of the
  /// LED-backlit iPAQ 5555 whose luminance rises quickly at low levels;
  /// gamma > 1: convex).
  static TransferFunction gamma(double g);

  /// CCFL-style transfer: no light output below a turn-on threshold (the
  /// lamp inverter will not strike), then a slightly convex rise.
  static TransferFunction ccfl(double threshold = 0.12, double g = 1.15);

  /// Logistic s-curve, another measured shape seen on cheap panels.
  static TransferFunction sCurve(double midpoint = 0.5, double steepness = 6.0);

  /// Least-squares-free monotone fit from (level, measuredLuminance) sample
  /// pairs (camera characterization): samples are sorted, linearly
  /// interpolated onto the 256-entry grid, then normalized.  At least two
  /// distinct levels are required.
  static TransferFunction fitFromSamples(
      std::span<const std::pair<int, double>> samples);

  /// Relative luminance in [0,1] at a backlight level in [0,255].
  [[nodiscard]] double relLuminance(int level) const;

  /// Smallest backlight level whose relative luminance is >= target
  /// (target clamped to [0,1]).  This is the table lookup the client
  /// performs at runtime ("a simple multiplication, followed by a table
  /// look-up", Sec. 4.3).
  [[nodiscard]] std::uint8_t minimumLevelFor(double targetRelLuminance) const;

  [[nodiscard]] const std::array<double, 256>& lut() const noexcept {
    return lut_;
  }

 private:
  std::array<double, 256> lut_{};
};

}  // namespace anno::display
