// Stream container: multiplexes the compressed video and its annotation
// track into one byte stream ("the annotations can be generated and added to
// the video stream at either the server or proxy node, with no changes for
// the client" -- clients that do not understand the annotation section can
// skip it, because sections are length-prefixed).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/anno_codec.h"
#include "core/annotation.h"
#include "core/sketch.h"
#include "media/codec.h"
#include "power/dvfs.h"

namespace anno::stream {

/// A demuxed stream.  Optional sections degrade instead of aborting the
/// demux: a damaged annotation section decodes leniently (partial track +
/// damage report), and damaged complexity/sketch riders simply come back
/// absent -- only the video section is load-bearing.
struct DemuxedStream {
  media::EncodedClip video;
  std::optional<core::AnnotationTrack> annotations;
  /// Damage report for the annotation section.  When `annotations` is
  /// engaged and this is non-intact, the track contains full-backlight
  /// repair scenes for the spans listed here.
  core::TrackDamageReport annotationDamage;
  /// Optional per-frame decode-workload annotations (drives client DVFS).
  std::optional<power::ComplexityTrack> complexity;
  /// Optional per-scene histogram sketches (drives client-side tone
  /// mapping without frame analysis).
  std::optional<core::SketchTrack> sketches;
  /// Optional sections that were present but undecodable (dropped).
  bool complexityDamaged = false;
  bool sketchesDamaged = false;
};

/// Muxes video (+ optional annotation tracks) into one container stream.
[[nodiscard]] std::vector<std::uint8_t> mux(
    const media::EncodedClip& video,
    const core::AnnotationTrack* annotations = nullptr,
    const power::ComplexityTrack* complexity = nullptr,
    const core::SketchTrack* sketches = nullptr);

/// Demuxes a container.  Unknown sections are skipped (forward compat);
/// throws std::runtime_error if the video section is missing or malformed.
[[nodiscard]] DemuxedStream demux(std::span<const std::uint8_t> bytes);

/// Section-level size report: how much of the stream is video vs annotation
/// (the Sec. 4.3 overhead claim, "hundreds of bytes" vs "a few megabytes").
struct MuxSizeReport {
  std::size_t totalBytes = 0;
  std::size_t videoBytes = 0;
  std::size_t annotationBytes = 0;

  [[nodiscard]] double annotationOverhead() const noexcept {
    return totalBytes > 0
               ? static_cast<double>(annotationBytes) /
                     static_cast<double>(totalBytes)
               : 0.0;
  }
};

[[nodiscard]] MuxSizeReport measureMux(
    const media::EncodedClip& video,
    const core::AnnotationTrack* annotations = nullptr);

}  // namespace anno::stream
