// Event-driven streaming session simulation: paced delivery over a
// time-varying wireless link into a client jitter buffer, with startup
// buffering, flow control and rebuffering stalls.
//
// The analytic NetworkPath answers "how long does this payload take"; this
// simulator answers the streaming questions the paper's system model (Fig. 1)
// implies but does not measure: does playback start promptly, does it stall
// when the wireless link dips, and does the annotation overhead cost any
// startup time (it must not -- it is hundreds of bytes).
#pragma once

#include <cstdint>
#include <vector>

#include "media/codec.h"
#include "media/rng.h"
#include "stream/loss.h"
#include "stream/net.h"

namespace anno::telemetry {
class TraceRecorder;
}

namespace anno::stream {

/// Piecewise-constant link bandwidth over time.
class BandwidthTrace {
 public:
  /// Constant rate.
  static BandwidthTrace constant(double bitsPerSec);

  /// Periodic dips: `bitsPerSec` except for `dipSeconds` out of every
  /// `periodSeconds`, where it falls to `dipBitsPerSec` (AP contention,
  /// microwave ovens, elevators...).
  static BandwidthTrace periodicDip(double bitsPerSec, double dipBitsPerSec,
                                    double periodSeconds, double dipSeconds);

  /// Deterministic bounded random walk around `meanBitsPerSec`.
  static BandwidthTrace randomWalk(double meanBitsPerSec, double volatility,
                                   std::uint64_t seed, double stepSeconds,
                                   double durationSeconds);

  /// Bandwidth at time t (flat extrapolation beyond the trace).
  [[nodiscard]] double at(double tSeconds) const;

 private:
  std::vector<double> rates_;  ///< one entry per step
  double stepSeconds_ = 1.0;
};

/// Client/session parameters.
struct SessionSimConfig {
  /// Playback starts once this much content (in seconds) is buffered.
  double startupBufferSeconds = 1.0;
  /// Delivery pauses while the buffer holds this much content.
  double bufferCapacitySeconds = 8.0;
  /// Simulation step.
  double tickSeconds = 0.001;
  /// Extra bytes delivered before frame 0 (container header + annotation
  /// track): models the annotation overhead's effect on startup.
  std::size_t preambleBytes = 0;
  /// How much of the preamble is the annotation track; those packets ride
  /// the lossy channel below (0 = annotation delivery assumed reliable).
  std::size_t annotationBytes = 0;
  /// Loss + NACK/retransmit policy for the annotation packets.  With NACK
  /// enabled, lost annotation packets are resent ahead of frame data
  /// (head-of-line) and recovery stalls delivery by whole NACK RTTs.
  AnnotationDeliveryConfig annotationDelivery;
  /// Trace recorder (telemetry/trace.h).  Null = untraced (zero cost).
  /// When attached the simulation emits (cat "session") a
  /// `startup_complete` instant, `rebuffer` spans and periodic
  /// `buffer_seconds` counter samples, all stamped with the virtual media
  /// clock (framesPlayed / fps) -- the simulator runs in simulated time,
  /// which is exactly why trace events carry two clocks.  Not owned.
  telemetry::TraceRecorder* trace = nullptr;
};

/// Outcome of one session.
struct SessionSimResult {
  double startupDelaySeconds = 0.0;
  std::size_t rebufferEvents = 0;
  double rebufferTotalSeconds = 0.0;
  double sessionSeconds = 0.0;   ///< wall clock until the last frame played
  double maxBufferSeconds = 0.0;
  bool completed = false;
  /// Annotation-packet robustness accounting (see SessionSimConfig).
  std::size_t annotationPacketsLost = 0;
  std::size_t annotationRetransmits = 0;
  std::size_t annotationNackRounds = 0;
  /// False when annotation packets stayed lost (no NACK, or retry budget
  /// exhausted): the client will decode leniently and repair with
  /// full-backlight spans.
  bool annotationDeliveredIntact = true;

  [[nodiscard]] double stallFraction() const noexcept {
    return sessionSeconds > 0.0 ? rebufferTotalSeconds / sessionSeconds : 0.0;
  }
};

/// Simulates streaming `clip` over `link` whose nominal bandwidth is
/// replaced by `bandwidth` (the link still supplies the per-packet
/// overhead).  Deterministic.
[[nodiscard]] SessionSimResult simulateSession(const media::EncodedClip& clip,
                                               const Link& link,
                                               const BandwidthTrace& bandwidth,
                                               const SessionSimConfig& cfg = {});

}  // namespace anno::stream
