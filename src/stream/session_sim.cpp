#include "stream/session_sim.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "telemetry/trace.h"

namespace anno::stream {

BandwidthTrace BandwidthTrace::constant(double bitsPerSec) {
  if (bitsPerSec <= 0.0) {
    throw std::invalid_argument("BandwidthTrace: rate must be positive");
  }
  BandwidthTrace t;
  t.rates_ = {bitsPerSec};
  t.stepSeconds_ = 1.0;
  return t;
}

BandwidthTrace BandwidthTrace::periodicDip(double bitsPerSec,
                                           double dipBitsPerSec,
                                           double periodSeconds,
                                           double dipSeconds) {
  if (bitsPerSec <= 0.0 || dipBitsPerSec < 0.0 || periodSeconds <= 0.0 ||
      dipSeconds < 0.0 || dipSeconds > periodSeconds) {
    throw std::invalid_argument("BandwidthTrace::periodicDip: bad parameters");
  }
  BandwidthTrace t;
  // One period at 10 ms resolution; at() wraps via modulo below, so we bake
  // repetition by generating a long trace (100 periods covers any clip we
  // simulate; flat extrapolation beyond is the steady rate).
  t.stepSeconds_ = 0.01;
  const int stepsPerPeriod =
      std::max(1, static_cast<int>(periodSeconds / t.stepSeconds_));
  const int dipSteps = static_cast<int>(dipSeconds / t.stepSeconds_);
  for (int period = 0; period < 100; ++period) {
    for (int s = 0; s < stepsPerPeriod; ++s) {
      t.rates_.push_back(s < dipSteps ? dipBitsPerSec : bitsPerSec);
    }
  }
  return t;
}

BandwidthTrace BandwidthTrace::randomWalk(double meanBitsPerSec,
                                          double volatility,
                                          std::uint64_t seed,
                                          double stepSeconds,
                                          double durationSeconds) {
  if (meanBitsPerSec <= 0.0 || volatility < 0.0 || volatility >= 1.0 ||
      stepSeconds <= 0.0 || durationSeconds <= 0.0) {
    throw std::invalid_argument("BandwidthTrace::randomWalk: bad parameters");
  }
  BandwidthTrace t;
  t.stepSeconds_ = stepSeconds;
  media::SplitMix64 rng(seed);
  double rate = meanBitsPerSec;
  const auto steps =
      static_cast<std::size_t>(std::ceil(durationSeconds / stepSeconds));
  for (std::size_t i = 0; i < steps; ++i) {
    rate += meanBitsPerSec * volatility * rng.uniform(-1.0, 1.0);
    // Mean reversion + floor keeps the walk bounded and positive.
    rate = std::clamp(rate + 0.1 * (meanBitsPerSec - rate),
                      0.1 * meanBitsPerSec, 2.0 * meanBitsPerSec);
    t.rates_.push_back(rate);
  }
  return t;
}

double BandwidthTrace::at(double tSeconds) const {
  if (rates_.empty()) return 0.0;
  if (tSeconds < 0.0) return rates_.front();
  const auto idx = static_cast<std::size_t>(tSeconds / stepSeconds_);
  return idx < rates_.size() ? rates_[idx] : rates_.back();
}

SessionSimResult simulateSession(const media::EncodedClip& clip,
                                 const Link& link,
                                 const BandwidthTrace& bandwidth,
                                 const SessionSimConfig& cfg) {
  if (clip.frames.empty() || clip.fps <= 0.0) {
    throw std::invalid_argument("simulateSession: empty or invalid clip");
  }
  if (cfg.tickSeconds <= 0.0 || cfg.startupBufferSeconds < 0.0 ||
      cfg.bufferCapacitySeconds <= cfg.startupBufferSeconds) {
    throw std::invalid_argument("simulateSession: invalid configuration");
  }
  const double frameSeconds = 1.0 / clip.fps;

  // Wire size (payload + packet headers) per frame, preamble first.
  std::vector<double> wireBytes;
  wireBytes.reserve(clip.frames.size() + 1);
  wireBytes.push_back(static_cast<double>(
      transferOverLink(link, cfg.preambleBytes).wireBytes));
  for (const media::EncodedFrame& f : clip.frames) {
    wireBytes.push_back(static_cast<double>(
        transferOverLink(link, f.sizeBytes()).wireBytes));
  }

  SessionSimResult result;

  // Annotation-packet loss/NACK accounting (tentpole: the hundreds-of-bytes
  // track is recoverable within a NACK round trip).  Retransmitted packets
  // ride ahead of frame data; unrecovered losses surface to the client as
  // erasures that decodeTrackLenient repairs.
  double nackDelaySeconds = 0.0;
  if (cfg.annotationBytes > 0 &&
      cfg.annotationDelivery.channel.packetLossProbability > 0.0) {
    const std::vector<std::uint8_t> trackStandIn(cfg.annotationBytes, 0);
    const AnnotationDelivery delivery =
        deliverAnnotationTrack(trackStandIn, link, cfg.annotationDelivery);
    result.annotationPacketsLost = delivery.packetsLost;
    result.annotationRetransmits = delivery.retransmits;
    result.annotationNackRounds = delivery.nackRounds;
    result.annotationDeliveredIntact = delivery.complete;
    const std::size_t packetWireBytes =
        link.mtuBytes > kPacketHeaderBytes ? link.mtuBytes : kPacketHeaderBytes + 1;
    wireBytes[0] += static_cast<double>(delivery.retransmits * packetWireBytes);
    nackDelaySeconds = static_cast<double>(delivery.nackRounds) *
                       cfg.annotationDelivery.rttSeconds;
  }

  double t = 0.0;
  double partialBytes = 0.0;       // of the frame currently in flight
  std::size_t nextDelivery = 0;    // index into wireBytes
  double bufferedSeconds = 0.0;    // content in the jitter buffer
  double preambleBytesDoneAt = -1.0;  // when preamble bytes finished
  bool preambleDone = false;
  bool playing = false;
  double playClock = 0.0;          // consumes buffered content
  std::size_t framesPlayed = 0;
  bool stalled = false;

  // Trace state: the simulator runs in simulated time, so events are
  // stamped with the media clock (framesPlayed / fps) and carry sim time
  // as an arg; buffer depth is sampled at a coarse stride to keep the
  // event volume proportional to the session, not the tick rate.
  telemetry::TraceRecorder* const trace = cfg.trace;
  bool startupEmitted = false;
  double stallStartT = 0.0;
  const auto ticksPerSample = static_cast<std::size_t>(
      std::max(1.0, std::round(0.25 / cfg.tickSeconds)));
  std::size_t tick = 0;
  const auto mediaNow = [&] {
    return static_cast<double>(framesPlayed) * frameSeconds;
  };

  const double maxSimSeconds =
      60.0 * 60.0;  // hard stop: pathological starvation
  while (framesPlayed < clip.frames.size() && t < maxSimSeconds) {
    // ---- Delivery -----------------------------------------------------
    const bool bufferFull = bufferedSeconds >= cfg.bufferCapacitySeconds;
    if (nextDelivery < wireBytes.size() && !bufferFull) {
      partialBytes += bandwidth.at(t) / 8.0 * cfg.tickSeconds;
      while (nextDelivery < wireBytes.size() &&
             partialBytes >= wireBytes[nextDelivery]) {
        if (!preambleDone) {
          // Preamble bytes are in; NACK recovery of lost annotation
          // packets holds the line (head-of-line) for whole RTTs.
          if (preambleBytesDoneAt < 0.0) preambleBytesDoneAt = t;
          if (t < preambleBytesDoneAt + nackDelaySeconds) break;
          preambleDone = true;
        } else {
          bufferedSeconds += frameSeconds;
        }
        partialBytes -= wireBytes[nextDelivery];
        ++nextDelivery;
      }
    }

    // ---- Playback -----------------------------------------------------
    if (!playing) {
      const bool allDelivered = nextDelivery >= wireBytes.size();
      if (bufferedSeconds >= cfg.startupBufferSeconds || allDelivered) {
        playing = true;
        if (result.startupDelaySeconds == 0.0) {
          result.startupDelaySeconds = t;
        }
        if (trace != nullptr) {
          trace->setMediaTime(mediaNow());
          if (!startupEmitted) {
            startupEmitted = true;
            trace->instant("startup_complete", "session", {{"delay_s", t}});
          }
          if (stalled) {
            trace->spanEnd("rebuffer", "session",
                           {{"frame", static_cast<double>(framesPlayed)},
                            {"seconds", t - stallStartT}});
          }
        }
        if (stalled) {
          stalled = false;
        }
      } else if (stalled) {
        result.rebufferTotalSeconds += cfg.tickSeconds;
      }
    }
    if (playing) {
      playClock += cfg.tickSeconds;
      while (playClock >= frameSeconds && framesPlayed < clip.frames.size()) {
        if (bufferedSeconds >= frameSeconds - 1e-12) {
          bufferedSeconds -= frameSeconds;
          ++framesPlayed;
          playClock -= frameSeconds;
        } else {
          // Buffer underrun: stall until the startup buffer refills.
          playing = false;
          stalled = true;
          ++result.rebufferEvents;
          playClock = 0.0;
          stallStartT = t;
          if (trace != nullptr) {
            trace->setMediaTime(mediaNow());
            trace->spanBegin("rebuffer", "session",
                            {{"frame", static_cast<double>(framesPlayed)}});
          }
          break;
        }
      }
    }

    if (trace != nullptr && ++tick % ticksPerSample == 0) {
      trace->setMediaTime(mediaNow());
      trace->counter("buffer_seconds", "session", bufferedSeconds);
    }
    result.maxBufferSeconds = std::max(result.maxBufferSeconds,
                                       bufferedSeconds);
    t += cfg.tickSeconds;
  }
  if (trace != nullptr) {
    trace->setMediaTime(mediaNow());
    if (stalled) {
      // Session ended mid-stall (starvation hard stop): close the span.
      trace->spanEnd("rebuffer", "session",
                     {{"frame", static_cast<double>(framesPlayed)},
                      {"seconds", t - stallStartT}});
    }
    trace->clearMediaTime();
  }
  result.sessionSeconds = t;
  result.completed = framesPlayed == clip.frames.size();
  return result;
}

}  // namespace anno::stream
