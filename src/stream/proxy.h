// Proxy node: on-the-fly annotation + compensation of a raw stream.
//
// Paper Fig. 1 / Sec. 3: "The communication between the handheld device and
// the server can be routed through a proxy node -- a high-end machine with
// the ability to process the video stream in real-time, on-the-fly (example
// in videoconferencing). Note that for our scheme either the proxy or the
// server node suffices."
//
// The proxy cannot look arbitrarily far ahead, so it runs the CAUSAL
// core::AnnotationEngine: frames are pushed until a scene cut is confirmed,
// then the finished scene is annotated, compensated and forwarded.  For
// stored content the causal pass produces exactly the same scene partition
// as the server's offline pass (tested byte-for-byte in tests/engine),
// because the offline pass IS the same engine fed in frame order.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/annotate.h"
#include "core/engine.h"
#include "media/codec.h"
#include "stream/server.h"

namespace anno::telemetry {
class Registry;
class Counter;
class Histogram;
class TraceRecorder;
}

namespace anno::stream {

/// The streaming-side causal annotator is exactly the core annotation
/// engine -- push per-frame stats, receive finished scenes.  Historically
/// this was a separate hand-maintained mirror of core::detectScenes (which
/// silently ignored cfg.detector == kHistogramEmd, so a proxy could
/// annotate with a different algorithm than the server it is supposed to
/// be interchangeable with); the alias guarantees the two can never drift
/// again.  See core/engine.h for the push/flush contract and the
/// maxLatencyFrames live-video bound.
using OnlineAnnotator = core::AnnotationEngine;

/// Result of one fan-out run: per-client streams plus the sharing ledger
/// the fleet bench reports against.
struct FanoutResult {
  /// Muxed streams, index-parallel to the `clients` span.  Byte-identical
  /// to calling transcode() per client (pinned in tests/fleet).
  std::vector<std::vector<std::uint8_t>> streams;
  std::size_t enginePasses = 0;   ///< causal annotation passes run (== 1)
  std::size_t uniqueRenders = 0;  ///< distinct capability groups rendered
  std::size_t frames = 0;         ///< frames decoded+annotated (once, shared)
  std::size_t scenes = 0;         ///< scenes the shared pass closed
};

/// The proxy: consumes a raw muxed stream, produces an annotated +
/// compensated muxed stream for the negotiated client.
class ProxyNode {
 public:
  explicit ProxyNode(core::AnnotatorConfig annotatorCfg = {},
                     media::CodecConfig codecCfg = {});

  /// Transcodes `rawStream` (video-only container from serveRaw) into an
  /// annotated, compensated container for `caps`.  When `targetWidth` /
  /// `targetHeight` are nonzero, frames are also resampled to that
  /// resolution -- the data-shaping role of the Fig. 1 proxy for clients
  /// with smaller screens (smaller frames also shrink the stream and the
  /// client's decode workload).
  [[nodiscard]] std::vector<std::uint8_t> transcode(
      std::span<const std::uint8_t> rawStream, const ClientCapabilities& caps,
      int targetWidth = 0, int targetHeight = 0) const;

  /// Fan-out (Fig. 1 proxy serving N subscribed clients of ONE source
  /// stream, e.g. a videoconference): decode + causal scene detection +
  /// planning run ONCE, then each client gets only its device-specific
  /// compensation + encode + mux.  Clients that negotiated identical
  /// capability bytes share a single rendered stream (uniqueRenders counts
  /// the distinct groups), so fleet cost scales with device diversity, not
  /// audience size.  Each returned stream is byte-identical to a standalone
  /// transcode(rawStream, clients[i], ...) call.
  [[nodiscard]] FanoutResult transcodeFanout(
      std::span<const std::uint8_t> rawStream,
      std::span<const ClientCapabilities> clients, int targetWidth = 0,
      int targetHeight = 0) const;

  /// Registers proxy instruments in `registry` and starts recording:
  ///   anno_proxy_transcodes_total, anno_proxy_frames_reannotated_total,
  ///   anno_proxy_scenes_reannotated_total, anno_proxy_transcode_seconds,
  ///   anno_proxy_fanouts_total, anno_proxy_fanout_clients_total,
  ///   anno_proxy_fanout_shared_renders_total (clients served from another
  ///   client's identical render).
  /// Every transcode() run is one per-client re-annotation of the source
  /// stream -- the fan-out cost signal the ROADMAP's shared-engine-pass
  /// item wants to drive down.  Detached by default (zero recording cost).
  void attachTelemetry(telemetry::Registry& registry);
  void detachTelemetry() noexcept;

  /// Starts emitting trace spans (cat "proxy"): `transcode` around each
  /// run, carrying clip name, frame and scene counts, with the virtual
  /// media clock advanced per decoded frame.  The causal annotator inside
  /// transcode() additionally emits engine scene spans into the same
  /// recorder.  Same null-object contract as attachTelemetry.
  void attachTrace(telemetry::TraceRecorder& trace) noexcept;
  void detachTrace() noexcept;

 private:
  struct Telemetry {
    telemetry::Counter* transcodes = nullptr;
    telemetry::Counter* framesReannotated = nullptr;
    telemetry::Counter* scenesReannotated = nullptr;
    telemetry::Histogram* transcodeSeconds = nullptr;
    telemetry::Counter* fanouts = nullptr;
    telemetry::Counter* fanoutClients = nullptr;
    telemetry::Counter* fanoutSharedRenders = nullptr;
  };

  /// One decoded + causally annotated source: everything client-independent.
  struct AnnotatedSource {
    media::VideoClip base;        ///< decoded (and, if requested, resized)
    core::AnnotationTrack track;  ///< the single shared engine pass's output
  };

  /// Runs the shared half of a transcode: demux, incremental decode (with
  /// optional resampling), causal annotation.  Exactly one engine pass.
  [[nodiscard]] AnnotatedSource annotateSource(
      std::span<const std::uint8_t> rawStream, int targetWidth,
      int targetHeight) const;

  /// Runs the per-client half: scene-by-scene compensation for the client's
  /// device (skipped for emissive panels), encode, mux.
  [[nodiscard]] std::vector<std::uint8_t> renderForClient(
      const AnnotatedSource& source, const ClientCapabilities& caps) const;

  void checkQualityIndex(const char* who, std::size_t requested) const;

  core::AnnotatorConfig annotatorCfg_;
  media::CodecConfig codecCfg_;
  Telemetry metrics_;
  telemetry::TraceRecorder* trace_ = nullptr;
};

}  // namespace anno::stream
