// Proxy node: on-the-fly annotation + compensation of a raw stream.
//
// Paper Fig. 1 / Sec. 3: "The communication between the handheld device and
// the server can be routed through a proxy node -- a high-end machine with
// the ability to process the video stream in real-time, on-the-fly (example
// in videoconferencing). Note that for our scheme either the proxy or the
// server node suffices."
//
// The proxy cannot look arbitrarily far ahead, so it runs a *causal* version
// of the annotator: frames are buffered until a scene cut is confirmed, then
// the finished scene is annotated, compensated and forwarded.  For stored
// content the causal pass produces exactly the same scene partition as the
// server's offline pass (tested), since the offline detector is itself
// causal in structure.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/annotate.h"
#include "media/codec.h"
#include "stream/server.h"

namespace anno::stream {

/// Causal scene annotator: push per-frame stats, receive finished scenes.
///
/// LATENCY: a scene's annotation is only known when the scene ENDS, so the
/// proxy delays each frame by its scene's remaining length.  For stored
/// streaming that is free (the whole clip is on disk); for live video
/// (videoconferencing) set `maxLatencyFrames` to force a scene cut after
/// that many frames -- annotation delay is then bounded at the cost of a
/// few extra (identical-level, hence merged) backlight commands.
class OnlineAnnotator {
 public:
  explicit OnlineAnnotator(core::AnnotatorConfig cfg = {},
                           std::uint32_t maxLatencyFrames = 0);

  /// Feeds the next frame's statistics.  Returns a completed annotation
  /// when this frame *starts a new scene* (the returned annotation covers
  /// the previous scene).
  [[nodiscard]] std::optional<core::SceneAnnotation> push(
      const media::FrameStats& stats);

  /// Finishes the stream: returns the final open scene, if any.
  [[nodiscard]] std::optional<core::SceneAnnotation> flush();

  [[nodiscard]] std::uint32_t framesSeen() const noexcept { return frame_; }

  /// Worst-case frames a frame can wait for its scene's annotation (the
  /// live-video latency bound); 0 means unbounded (stored streaming).
  [[nodiscard]] std::uint32_t maxLatencyFrames() const noexcept {
    return maxLatencyFrames_;
  }

 private:
  [[nodiscard]] core::SceneAnnotation finishScene(std::uint32_t endFrame);

  core::AnnotatorConfig cfg_;
  std::uint32_t maxLatencyFrames_;
  std::uint32_t frame_ = 0;
  std::uint32_t sceneStart_ = 0;
  double reference_ = 0.0;
  media::Histogram sceneHist_;
};

/// The proxy: consumes a raw muxed stream, produces an annotated +
/// compensated muxed stream for the negotiated client.
class ProxyNode {
 public:
  explicit ProxyNode(core::AnnotatorConfig annotatorCfg = {},
                     media::CodecConfig codecCfg = {});

  /// Transcodes `rawStream` (video-only container from serveRaw) into an
  /// annotated, compensated container for `caps`.  When `targetWidth` /
  /// `targetHeight` are nonzero, frames are also resampled to that
  /// resolution -- the data-shaping role of the Fig. 1 proxy for clients
  /// with smaller screens (smaller frames also shrink the stream and the
  /// client's decode workload).
  [[nodiscard]] std::vector<std::uint8_t> transcode(
      std::span<const std::uint8_t> rawStream, const ClientCapabilities& caps,
      int targetWidth = 0, int targetHeight = 0) const;

 private:
  core::AnnotatorConfig annotatorCfg_;
  media::CodecConfig codecCfg_;
};

}  // namespace anno::stream
