#include "stream/server.h"

#include <array>
#include <atomic>
#include <stdexcept>

#include "media/bitstream.h"
#include "stream/mux.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace anno::stream {

namespace {

/// Process-unique server ids keep cacheIds from colliding when several
/// MediaServer instances share one TrackCache.
std::uint64_t nextServerId() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::string qualityRangeMessage(const char* who, std::size_t requested,
                                std::size_t available) {
  return std::string(who) + ": quality index " + std::to_string(requested) +
         " out of range: " + std::to_string(available) +
         " level(s) offered, valid indices [0, " +
         std::to_string(available == 0 ? 0 : available - 1) + "]";
}

}  // namespace

void MediaServer::attachTelemetry(telemetry::Registry& registry) {
  metrics_.clipsAnnotated = &registry.counter(
      "anno_server_clips_annotated_total", {},
      "Clips profiled and annotated into the catalog");
  metrics_.serves = &registry.counter(
      "anno_server_serves_total", {},
      "serve() requests (compensated + muxed streams)");
  metrics_.cacheHits = &registry.counter(
      "anno_server_cache_hits_total", {},
      "serve() requests answered from the memoized stream cache");
  metrics_.cacheMisses = &registry.counter(
      "anno_server_cache_misses_total", {},
      "serve() requests that had to compensate + encode + mux");
  metrics_.catalogSize = &registry.gauge(
      "anno_server_catalog_size", {}, "Clips currently in the catalog");
  metrics_.profileSeconds = &registry.histogram(
      "anno_server_profile_seconds", telemetry::secondsBuckets(), {},
      "Wall time of one addClips ingest (profile + annotate + sketch)");
  metrics_.serveSeconds = &registry.histogram(
      "anno_server_serve_seconds", telemetry::secondsBuckets(), {},
      "Wall time of one serve() request");
}

void MediaServer::detachTelemetry() noexcept { metrics_ = Telemetry{}; }

void MediaServer::attachTrace(telemetry::TraceRecorder& trace) noexcept {
  trace_ = &trace;
}

void MediaServer::detachTrace() noexcept { trace_ = nullptr; }

MediaServer::MediaServer(core::AnnotatorConfig annotatorCfg,
                         media::CodecConfig codecCfg)
    : annotatorCfg_(std::move(annotatorCfg)),
      annotatorFingerprint_(annotatorCfg_.fingerprint()),
      codecCfg_(codecCfg),
      serverId_(nextServerId()) {}

void MediaServer::attachTrackCache(core::TrackCache& cache) noexcept {
  trackCache_ = &cache;
}

void MediaServer::detachTrackCache() noexcept { trackCache_ = nullptr; }

void MediaServer::addClip(media::VideoClip clip) {
  std::vector<media::VideoClip> one;
  one.push_back(std::move(clip));
  addClips(std::move(one));
}

void MediaServer::addClips(std::vector<media::VideoClip> clips) {
  telemetry::Span profileSpan(metrics_.profileSeconds);
  telemetry::TraceSpan traceSpan(
      trace_, "profile", "server",
      {{"clips", static_cast<double>(clips.size())}});
  telemetry::inc(metrics_.clipsAnnotated, clips.size());
  // One profiling pass feeds both the annotator and the sketch builder
  // (addClip used to profile twice); the batch path fans clips, frames, and
  // scenes out across the annotator's pool.
  std::vector<std::vector<media::FrameStats>> stats;
  std::vector<core::AnnotationTrack> tracks =
      core::annotateClips(clips, annotatorCfg_, &stats);
  for (std::size_t i = 0; i < clips.size(); ++i) {
    CatalogEntry entry;
    entry.track = std::move(tracks[i]);
    entry.sketches = core::buildSketchTrack(entry.track, stats[i]);
    entry.stats = std::move(stats[i]);
    entry.original = std::move(clips[i]);
    entry.cacheId = "s" + std::to_string(serverId_) + "/" +
                    entry.original.name + "@" +
                    std::to_string(++ingestRevision_);
    // Replacing content: reclaim the superseded revision's cached tracks
    // (the new cacheId already guarantees no stale serve).
    if (trackCache_ != nullptr) {
      const auto old = catalog_.find(entry.original.name);
      if (old != catalog_.end()) trackCache_->eraseClip(old->second.cacheId);
    }
    catalog_.insert_or_assign(entry.original.name, std::move(entry));
  }
  telemetry::set(metrics_.catalogSize,
                 static_cast<std::int64_t>(catalog_.size()));
  // New or replaced content invalidates every memoized stream.
  const std::lock_guard<std::mutex> lock(serveCacheMu_);
  serveCache_.clear();
}

std::vector<std::string> MediaServer::catalog() const {
  std::vector<std::string> names;
  names.reserve(catalog_.size());
  for (const auto& [name, entry] : catalog_) names.push_back(name);
  return names;
}

bool MediaServer::hasClip(const std::string& name) const {
  return catalog_.contains(name);
}

const CatalogEntry& MediaServer::entry(const std::string& name) const {
  return findOrThrow(name);
}

const CatalogEntry& MediaServer::findOrThrow(const std::string& name) const {
  const auto it = catalog_.find(name);
  if (it == catalog_.end()) {
    throw std::out_of_range("MediaServer: no such clip: " + name);
  }
  return it->second;
}

std::vector<std::uint8_t> MediaServer::serve(
    const std::string& clipName, const ClientCapabilities& caps) const {
  return serveImpl(clipName, caps, annotatorCfg_, /*isDefaultConfig=*/true);
}

std::vector<std::uint8_t> MediaServer::serve(
    const std::string& clipName, const ClientCapabilities& caps,
    const core::AnnotatorConfig& tenantCfg) const {
  return serveImpl(clipName, caps, tenantCfg,
                   tenantCfg.fingerprint() == annotatorFingerprint_);
}

core::CachedTrackPtr MediaServer::annotationFor(
    const std::string& clipName, const core::AnnotatorConfig& tenantCfg) const {
  const CatalogEntry& e = findOrThrow(clipName);
  const std::uint64_t fp = tenantCfg.fingerprint();
  const auto compute = [&e, &tenantCfg, fp, this] {
    auto value = std::make_shared<core::CachedTrack>();
    if (fp == annotatorFingerprint_) {
      // The ingest-time pass already planned exactly this config.
      value->track = e.track;
      value->sketches = e.sketches;
    } else {
      // Profiling is shared (config-independent, done at ingest); the fill
      // is only the cheap causal engine pass over the stored stats --
      // bit-identical to a cold annotateClip of the original.
      value->track = core::annotate(e.original.name, e.original.fps, e.stats,
                                    tenantCfg);
      value->sketches = core::buildSketchTrack(value->track, e.stats);
    }
    return value;
  };
  if (trackCache_ == nullptr) return compute();
  return trackCache_->getOrFill(core::TrackKey{e.cacheId, fp}, compute);
}

std::vector<std::uint8_t> MediaServer::serveImpl(
    const std::string& clipName, const ClientCapabilities& caps,
    const core::AnnotatorConfig& tenantCfg, bool isDefaultConfig) const {
  telemetry::inc(metrics_.serves);
  telemetry::Span serveSpan(metrics_.serveSeconds);
  telemetry::TraceSpan traceSpan(trace_, "serve", "server");
  const char* const tracedClip =
      trace_ != nullptr ? trace_->intern(clipName) : nullptr;
  const CatalogEntry& e = findOrThrow(clipName);
  const std::size_t offered = isDefaultConfig
                                  ? e.track.qualityLevels.size()
                                  : tenantCfg.qualityLevels.size();
  if (caps.qualityIndex >= offered) {
    throw std::out_of_range(
        qualityRangeMessage("MediaServer::serve", caps.qualityIndex, offered));
  }
  // Exact memoization key: clip name + annotator fingerprint + the
  // negotiation message verbatim.  Identical devices negotiate identical
  // bytes, so a device fleet shares one cached stream; any capability or
  // plan difference changes the key.
  const std::uint64_t fp =
      isDefaultConfig ? annotatorFingerprint_ : tenantCfg.fingerprint();
  const std::vector<std::uint8_t> capsBytes = encodeCapabilities(caps);
  std::string cacheKey = clipName;
  cacheKey.push_back('\0');
  for (int i = 0; i < 8; ++i) {
    cacheKey.push_back(static_cast<char>(fp >> (8 * i)));
  }
  cacheKey.push_back('\0');
  cacheKey.append(reinterpret_cast<const char*>(capsBytes.data()),
                  capsBytes.size());
  {
    const std::lock_guard<std::mutex> lock(serveCacheMu_);
    const auto it = serveCache_.find(cacheKey);
    if (it != serveCache_.end()) {
      telemetry::inc(metrics_.cacheHits);
      traceSpan.end({{"cache_hit", 1.0},
                     {"bytes", static_cast<double>(it->second.size())}},
                    "clip", tracedClip);
      return it->second;
    }
  }
  telemetry::inc(metrics_.cacheMisses);
  // The default config's track/sketches live in the entry; tenant configs
  // resolve through the shared TrackCache (one engine pass per fingerprint).
  core::CachedTrackPtr tenantTrack;
  if (!isDefaultConfig) tenantTrack = annotationFor(clipName, tenantCfg);
  const core::AnnotationTrack& track =
      isDefaultConfig ? e.track : tenantTrack->track;
  const core::SketchTrack& sketches =
      isDefaultConfig ? e.sketches : tenantTrack->sketches;
  // Emissive panels must not receive brightened pixels (compensation would
  // RAISE their power); they get the original stream plus the annotations.
  const bool compensate =
      caps.technology == DisplayTechnology::kBacklitLcd;
  const display::DeviceModel device = deviceFromCapabilities(caps);
  const media::VideoClip compensated =
      compensate
          ? core::compensateClip(e.original, track, caps.qualityIndex,
                                 device, caps.minBacklightLevel)
          : e.original;
  const media::EncodedClip encoded = media::encodeClip(compensated, codecCfg_);
  // Decode-workload annotations come for free once the clip is encoded
  // (sizes are known before any client decodes a byte) -- Sec. 3's "more
  // optimizations" rider.
  const power::ComplexityTrack complexity =
      power::ComplexityTrack::fromEncodedClip(encoded);
  std::vector<std::uint8_t> bytes =
      mux(encoded, &track, &complexity, &sketches);
  const std::lock_guard<std::mutex> lock(serveCacheMu_);
  serveCache_.emplace(std::move(cacheKey), bytes);
  traceSpan.end(
      {{"cache_hit", 0.0}, {"bytes", static_cast<double>(bytes.size())}},
      "clip", tracedClip);
  return bytes;
}

std::vector<std::uint8_t> MediaServer::serveRaw(
    const std::string& clipName) const {
  const CatalogEntry& e = findOrThrow(clipName);
  const media::EncodedClip encoded = media::encodeClip(e.original, codecCfg_);
  return mux(encoded, nullptr);
}

display::DeviceModel deviceFromCapabilities(const ClientCapabilities& caps) {
  display::DeviceModel device;
  device.name = caps.deviceName;
  device.transfer = caps.transfer;
  return device;
}

namespace {
constexpr std::uint32_t kCapsMagic = 0x43415030;  // "CAP0"
}

std::vector<std::uint8_t> encodeCapabilities(const ClientCapabilities& caps) {
  media::ByteWriter w;
  w.u32(kCapsMagic);
  w.varint(caps.deviceName.size());
  w.bytes(std::span(
      reinterpret_cast<const std::uint8_t*>(caps.deviceName.data()),
      caps.deviceName.size()));
  w.varint(caps.qualityIndex);
  w.u8(static_cast<std::uint8_t>(caps.technology));
  w.u8(static_cast<std::uint8_t>(caps.minBacklightLevel));
  // Transfer LUT as 16-bit fixed point in [0,1].
  for (int level = 0; level < 256; ++level) {
    const double v = caps.transfer.relLuminance(level);
    w.u16(static_cast<std::uint16_t>(v * 65535.0 + 0.5));
  }
  return w.take();
}

ClientCapabilities decodeCapabilities(std::span<const std::uint8_t> bytes) {
  media::ByteReader r(bytes);
  if (r.u32() != kCapsMagic) {
    throw std::runtime_error("decodeCapabilities: bad magic");
  }
  ClientCapabilities caps;
  const std::size_t nameLen = r.varint();
  auto nameBytes = r.bytes(nameLen);
  caps.deviceName.assign(reinterpret_cast<const char*>(nameBytes.data()),
                         nameLen);
  caps.qualityIndex = r.varint();
  const std::uint8_t tech = r.u8();
  if (tech > static_cast<std::uint8_t>(DisplayTechnology::kEmissive)) {
    throw std::runtime_error("decodeCapabilities: unknown display technology");
  }
  caps.technology = static_cast<DisplayTechnology>(tech);
  caps.minBacklightLevel = r.u8();
  std::array<double, 256> lut{};
  for (int level = 0; level < 256; ++level) {
    lut[level] = r.u16() / 65535.0;
  }
  caps.transfer = display::TransferFunction::fromLut(lut);
  return caps;
}

}  // namespace anno::stream
