#include "stream/server.h"

#include <array>
#include <stdexcept>

#include "media/bitstream.h"
#include "stream/mux.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace anno::stream {

void MediaServer::attachTelemetry(telemetry::Registry& registry) {
  metrics_.clipsAnnotated = &registry.counter(
      "anno_server_clips_annotated_total", {},
      "Clips profiled and annotated into the catalog");
  metrics_.serves = &registry.counter(
      "anno_server_serves_total", {},
      "serve() requests (compensated + muxed streams)");
  metrics_.cacheHits = &registry.counter(
      "anno_server_cache_hits_total", {},
      "serve() requests answered from the memoized stream cache");
  metrics_.cacheMisses = &registry.counter(
      "anno_server_cache_misses_total", {},
      "serve() requests that had to compensate + encode + mux");
  metrics_.catalogSize = &registry.gauge(
      "anno_server_catalog_size", {}, "Clips currently in the catalog");
  metrics_.profileSeconds = &registry.histogram(
      "anno_server_profile_seconds", telemetry::secondsBuckets(), {},
      "Wall time of one addClips ingest (profile + annotate + sketch)");
  metrics_.serveSeconds = &registry.histogram(
      "anno_server_serve_seconds", telemetry::secondsBuckets(), {},
      "Wall time of one serve() request");
}

void MediaServer::detachTelemetry() noexcept { metrics_ = Telemetry{}; }

void MediaServer::attachTrace(telemetry::TraceRecorder& trace) noexcept {
  trace_ = &trace;
}

void MediaServer::detachTrace() noexcept { trace_ = nullptr; }

MediaServer::MediaServer(core::AnnotatorConfig annotatorCfg,
                         media::CodecConfig codecCfg)
    : annotatorCfg_(std::move(annotatorCfg)), codecCfg_(codecCfg) {}

void MediaServer::addClip(media::VideoClip clip) {
  std::vector<media::VideoClip> one;
  one.push_back(std::move(clip));
  addClips(std::move(one));
}

void MediaServer::addClips(std::vector<media::VideoClip> clips) {
  telemetry::Span profileSpan(metrics_.profileSeconds);
  telemetry::TraceSpan traceSpan(
      trace_, "profile", "server",
      {{"clips", static_cast<double>(clips.size())}});
  telemetry::inc(metrics_.clipsAnnotated, clips.size());
  // One profiling pass feeds both the annotator and the sketch builder
  // (addClip used to profile twice); the batch path fans clips, frames, and
  // scenes out across the annotator's pool.
  std::vector<std::vector<media::FrameStats>> stats;
  std::vector<core::AnnotationTrack> tracks =
      core::annotateClips(clips, annotatorCfg_, &stats);
  for (std::size_t i = 0; i < clips.size(); ++i) {
    CatalogEntry entry;
    entry.track = std::move(tracks[i]);
    entry.sketches = core::buildSketchTrack(entry.track, stats[i]);
    entry.original = std::move(clips[i]);
    catalog_.insert_or_assign(entry.original.name, std::move(entry));
  }
  telemetry::set(metrics_.catalogSize,
                 static_cast<std::int64_t>(catalog_.size()));
  // New or replaced content invalidates every memoized stream.
  const std::lock_guard<std::mutex> lock(serveCacheMu_);
  serveCache_.clear();
}

std::vector<std::string> MediaServer::catalog() const {
  std::vector<std::string> names;
  names.reserve(catalog_.size());
  for (const auto& [name, entry] : catalog_) names.push_back(name);
  return names;
}

bool MediaServer::hasClip(const std::string& name) const {
  return catalog_.contains(name);
}

const CatalogEntry& MediaServer::entry(const std::string& name) const {
  return findOrThrow(name);
}

const CatalogEntry& MediaServer::findOrThrow(const std::string& name) const {
  const auto it = catalog_.find(name);
  if (it == catalog_.end()) {
    throw std::out_of_range("MediaServer: no such clip: " + name);
  }
  return it->second;
}

std::vector<std::uint8_t> MediaServer::serve(
    const std::string& clipName, const ClientCapabilities& caps) const {
  telemetry::inc(metrics_.serves);
  telemetry::Span serveSpan(metrics_.serveSeconds);
  telemetry::TraceSpan traceSpan(trace_, "serve", "server");
  const char* const tracedClip =
      trace_ != nullptr ? trace_->intern(clipName) : nullptr;
  const CatalogEntry& e = findOrThrow(clipName);
  if (caps.qualityIndex >= e.track.qualityLevels.size()) {
    throw std::out_of_range("MediaServer::serve: quality index out of range");
  }
  // Exact memoization key: clip name + the negotiation message verbatim.
  // Identical devices negotiate identical bytes, so a device fleet shares
  // one cached stream; any capability difference changes the key.
  const std::vector<std::uint8_t> capsBytes = encodeCapabilities(caps);
  std::string cacheKey = clipName;
  cacheKey.push_back('\0');
  cacheKey.append(reinterpret_cast<const char*>(capsBytes.data()),
                  capsBytes.size());
  {
    const std::lock_guard<std::mutex> lock(serveCacheMu_);
    const auto it = serveCache_.find(cacheKey);
    if (it != serveCache_.end()) {
      telemetry::inc(metrics_.cacheHits);
      traceSpan.end({{"cache_hit", 1.0},
                     {"bytes", static_cast<double>(it->second.size())}},
                    "clip", tracedClip);
      return it->second;
    }
  }
  telemetry::inc(metrics_.cacheMisses);
  // Emissive panels must not receive brightened pixels (compensation would
  // RAISE their power); they get the original stream plus the annotations.
  const bool compensate =
      caps.technology == DisplayTechnology::kBacklitLcd;
  const display::DeviceModel device = deviceFromCapabilities(caps);
  const media::VideoClip compensated =
      compensate
          ? core::compensateClip(e.original, e.track, caps.qualityIndex,
                                 device, caps.minBacklightLevel)
          : e.original;
  const media::EncodedClip encoded = media::encodeClip(compensated, codecCfg_);
  // Decode-workload annotations come for free once the clip is encoded
  // (sizes are known before any client decodes a byte) -- Sec. 3's "more
  // optimizations" rider.
  const power::ComplexityTrack complexity =
      power::ComplexityTrack::fromEncodedClip(encoded);
  std::vector<std::uint8_t> bytes =
      mux(encoded, &e.track, &complexity, &e.sketches);
  const std::lock_guard<std::mutex> lock(serveCacheMu_);
  serveCache_.emplace(std::move(cacheKey), bytes);
  traceSpan.end(
      {{"cache_hit", 0.0}, {"bytes", static_cast<double>(bytes.size())}},
      "clip", tracedClip);
  return bytes;
}

std::vector<std::uint8_t> MediaServer::serveRaw(
    const std::string& clipName) const {
  const CatalogEntry& e = findOrThrow(clipName);
  const media::EncodedClip encoded = media::encodeClip(e.original, codecCfg_);
  return mux(encoded, nullptr);
}

display::DeviceModel deviceFromCapabilities(const ClientCapabilities& caps) {
  display::DeviceModel device;
  device.name = caps.deviceName;
  device.transfer = caps.transfer;
  return device;
}

namespace {
constexpr std::uint32_t kCapsMagic = 0x43415030;  // "CAP0"
}

std::vector<std::uint8_t> encodeCapabilities(const ClientCapabilities& caps) {
  media::ByteWriter w;
  w.u32(kCapsMagic);
  w.varint(caps.deviceName.size());
  w.bytes(std::span(
      reinterpret_cast<const std::uint8_t*>(caps.deviceName.data()),
      caps.deviceName.size()));
  w.varint(caps.qualityIndex);
  w.u8(static_cast<std::uint8_t>(caps.technology));
  w.u8(static_cast<std::uint8_t>(caps.minBacklightLevel));
  // Transfer LUT as 16-bit fixed point in [0,1].
  for (int level = 0; level < 256; ++level) {
    const double v = caps.transfer.relLuminance(level);
    w.u16(static_cast<std::uint16_t>(v * 65535.0 + 0.5));
  }
  return w.take();
}

ClientCapabilities decodeCapabilities(std::span<const std::uint8_t> bytes) {
  media::ByteReader r(bytes);
  if (r.u32() != kCapsMagic) {
    throw std::runtime_error("decodeCapabilities: bad magic");
  }
  ClientCapabilities caps;
  const std::size_t nameLen = r.varint();
  auto nameBytes = r.bytes(nameLen);
  caps.deviceName.assign(reinterpret_cast<const char*>(nameBytes.data()),
                         nameLen);
  caps.qualityIndex = r.varint();
  const std::uint8_t tech = r.u8();
  if (tech > static_cast<std::uint8_t>(DisplayTechnology::kEmissive)) {
    throw std::runtime_error("decodeCapabilities: unknown display technology");
  }
  caps.technology = static_cast<DisplayTechnology>(tech);
  caps.minBacklightLevel = r.u8();
  std::array<double, 256> lut{};
  for (int level = 0; level < 256; ++level) {
    lut[level] = r.u16() / 65535.0;
  }
  caps.transfer = display::TransferFunction::fromLut(lut);
  return caps;
}

}  // namespace anno::stream
