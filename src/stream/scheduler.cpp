#include "stream/scheduler.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "concurrency/parallel.h"
#include "stream/client.h"
#include "telemetry/health.h"
#include "telemetry/metrics.h"

namespace anno::stream {

SessionScheduler::SessionScheduler(const MediaServer& server)
    : SessionScheduler(server, Config{}) {}

SessionScheduler::SessionScheduler(const MediaServer& server, Config cfg)
    : server_(server),
      cfg_(cfg),
      deliveryPool_(concurrency::leaseFor(cfg.deliveryThreads)) {
  if (cfg_.tickSeconds <= 0.0) {
    throw std::invalid_argument("SessionScheduler: tickSeconds must be > 0");
  }
}

std::uint64_t SessionScheduler::join(const FleetSessionConfig& cfg) {
  Session s;
  s.id = nextId_++;
  s.cfg = cfg;
  s.joinedAtSeconds = now_;

  // Resolve the stream through the server's memoized, cache-backed serve
  // path.  The scheduler's own directory keys on the same triple the server
  // memo uses, so N sessions of one group share ONE byte vector here and
  // the server pays one compensate+encode+mux for all of them.
  const std::uint64_t fp = cfg.tenantCfg.has_value()
                               ? cfg.tenantCfg->fingerprint()
                               : server_.annotatorConfig().fingerprint();
  const std::vector<std::uint8_t> capsBytes = encodeCapabilities(cfg.caps);
  std::string streamKey = cfg.clipName;
  streamKey.push_back('\0');
  for (int i = 0; i < 8; ++i) {
    streamKey.push_back(static_cast<char>(fp >> (8 * i)));
  }
  streamKey.push_back('\0');
  streamKey.append(reinterpret_cast<const char*>(capsBytes.data()),
                   capsBytes.size());
  auto it = streams_.find(streamKey);
  if (it == streams_.end()) {
    std::vector<std::uint8_t> bytes =
        cfg.tenantCfg.has_value()
            ? server_.serve(cfg.clipName, cfg.caps, *cfg.tenantCfg)
            : server_.serve(cfg.clipName, cfg.caps);
    it = streams_
             .emplace(std::move(streamKey),
                      std::make_shared<const std::vector<std::uint8_t>>(
                          std::move(bytes)))
             .first;
    stats_.uniqueStreams = streams_.size();
    telemetry::set(metrics_.uniqueStreams,
                   static_cast<std::int64_t>(streams_.size()));
  }
  s.stream = it->second;

  const CatalogEntry& entry = server_.entry(cfg.clipName);
  const double fps = entry.original.fps > 0.0 ? entry.original.fps : 1.0;
  s.durationSeconds =
      static_cast<double>(entry.original.frames.size()) / fps;
  if (s.durationSeconds <= 0.0) s.durationSeconds = cfg_.tickSeconds;
  s.bytesPerContentSecond =
      static_cast<double>(s.stream->size()) / s.durationSeconds;

  const std::uint64_t id = s.id;
  active_.emplace(id, std::move(s));
  ++stats_.sessionsJoined;
  stats_.activeSessions = active_.size();
  stats_.peakConcurrentSessions =
      std::max(stats_.peakConcurrentSessions, active_.size());
  telemetry::inc(metrics_.joined);
  telemetry::set(metrics_.active, static_cast<std::int64_t>(active_.size()));
  return id;
}

bool SessionScheduler::leave(std::uint64_t sessionId) {
  const auto it = active_.find(sessionId);
  if (it == active_.end()) return false;
  Session& s = it->second;
  s.phase = SessionPhase::kLeft;
  ++stats_.sessionsLeft;
  telemetry::inc(metrics_.left);
  if (s.started) exitPlaying(s);
  finishSession(s);
  active_.erase(it);
  stats_.activeSessions = active_.size();
  telemetry::set(metrics_.active, static_cast<std::int64_t>(active_.size()));
  return true;
}

bool SessionScheduler::wantsService(const Session& s) const {
  return s.bytesDelivered < static_cast<double>(s.stream->size()) &&
         s.bufferedSeconds < s.cfg.bufferCapacitySeconds;
}

double SessionScheduler::deliverTo(Session& s) const {
  const double elapsed = now_ - s.joinedAtSeconds;
  const double rate = s.cfg.bandwidth.at(elapsed);  // bits/sec
  double bytes = rate / 8.0 * cfg_.tickSeconds;
  const double remaining =
      static_cast<double>(s.stream->size()) - s.bytesDelivered;
  bytes = std::min(bytes, remaining);
  // Flow control: never deliver past the buffer cap.
  const double capBytes = (s.cfg.bufferCapacitySeconds - s.bufferedSeconds) *
                          s.bytesPerContentSecond;
  bytes = std::min(bytes, std::max(0.0, capBytes));
  s.bytesDelivered += bytes;
  s.bufferedSeconds += bytes / s.bytesPerContentSecond;
  return bytes;
}

void SessionScheduler::deliverAll(const std::vector<Session*>& serviced) {
  const std::size_t n = serviced.size();
  if (n == 0) return;
  concurrency::ThreadPool* pool = deliveryPool_.get();
  if (pool == nullptr) {
    for (Session* s : serviced) {
      const double bytes = deliverTo(*s);
      stats_.bytesDelivered += static_cast<std::uint64_t>(bytes);
      telemetry::inc(metrics_.bytesDelivered, static_cast<std::size_t>(bytes));
    }
    return;
  }
  // Parallel phase: each delivery touches only its own session (the policy
  // selected distinct sessions), so disjoint ranges are race-free.  The
  // grain is fixed -- chunk boundaries must not depend on pool size.
  std::vector<double> bytesFor(n);
  concurrency::parallelFor(pool, n, /*grain=*/64,
                           [&](std::size_t begin, std::size_t end) {
                             for (std::size_t i = begin; i < end; ++i) {
                               bytesFor[i] = deliverTo(*serviced[i]);
                             }
                           });
  // Fold per-delivery byte counts serially IN SERVICE ORDER: the per-call
  // uint64 truncation below must accumulate exactly as the serial tick's,
  // or stats would drift from the single-threaded run.
  for (std::size_t i = 0; i < n; ++i) {
    stats_.bytesDelivered += static_cast<std::uint64_t>(bytesFor[i]);
    telemetry::inc(metrics_.bytesDelivered,
                   static_cast<std::size_t>(bytesFor[i]));
  }
}

void SessionScheduler::advancePlayback(Session& s) {
  const bool fullyDelivered =
      s.bytesDelivered >= static_cast<double>(s.stream->size()) - 1e-6;
  if (!s.started) {
    if (s.bufferedSeconds >= s.cfg.startupBufferSeconds || fullyDelivered) {
      s.started = true;
      s.startupDelaySeconds = now_ + cfg_.tickSeconds - s.joinedAtSeconds;
      s.phase = SessionPhase::kPlaying;
      telemetry::observe(metrics_.startupSeconds, s.startupDelaySeconds);
      enterPlaying(s);
    }
    return;  // still kBuffering
  }
  const double want =
      std::min(cfg_.tickSeconds, s.durationSeconds - s.playedSeconds);
  const double canPlay = std::min(want, s.bufferedSeconds);
  s.playedSeconds += canPlay;
  s.bufferedSeconds -= canPlay;
  if (s.playedSeconds >= s.durationSeconds - 1e-9) {
    s.phase = SessionPhase::kCompleted;
    return;
  }
  if (canPlay + 1e-12 < want && !fullyDelivered) {
    // Buffer ran dry mid-playback: a rebuffering stall.
    if (s.phase != SessionPhase::kStalled) {
      s.phase = SessionPhase::kStalled;
      ++s.stalls;
      ++stats_.stallEvents;
      telemetry::inc(metrics_.stalls);
    }
    s.stallSeconds += want - canPlay;
    stats_.stallSeconds += want - canPlay;
  } else {
    s.phase = SessionPhase::kPlaying;
  }
}

void SessionScheduler::finishSession(Session& s) {
  if (s.phase == SessionPhase::kCompleted && s.cfg.decodeOnComplete) {
    // Full end-to-end validation: a real client decodes the exact bytes the
    // fleet session streamed.
    ClientConfig clientCfg;
    clientCfg.device = deviceFromCapabilities(s.cfg.caps);
    clientCfg.qualityIndex = s.cfg.caps.qualityIndex;
    clientCfg.minBacklightLevel = s.cfg.caps.minBacklightLevel;
    const ClientSession client(clientCfg, makeReferencePath());
    s.decodeOk = client.receive(*s.stream).ok;
  }
  SessionReport r;
  r.phase = s.phase;
  r.startupDelaySeconds = s.startupDelaySeconds;
  r.playedSeconds = s.playedSeconds;
  r.stallSeconds = s.stallSeconds;
  r.stalls = s.stalls;
  r.streamBytes = s.stream->size();
  r.bytesDelivered = static_cast<std::size_t>(s.bytesDelivered);
  r.decodeOk = s.decodeOk;
  reports_[s.id] = r;
}

void SessionScheduler::tick() {
  // Phase 1: spend the service budget.
  if (!active_.empty()) {
    std::vector<Session*> wanting;
    wanting.reserve(active_.size());
    for (auto& [id, s] : active_) {
      if (wantsService(s)) wanting.push_back(&s);
    }
    const std::size_t budget = cfg_.serviceBudgetPerTick == 0
                                   ? wanting.size()
                                   : cfg_.serviceBudgetPerTick;
    if (budget >= wanting.size()) {
      deliverAll(wanting);
    } else if (cfg_.policy == SchedulePolicy::kDeadline) {
      // Urgency = content-seconds of headroom before underrun; unstarted
      // sessions count distance to their startup threshold.  Ascending,
      // ties by id -- a total, deterministic order.
      const auto moreUrgent = [](const Session* a, const Session* b) {
        const double ua = a->started ? a->bufferedSeconds
                                     : a->bufferedSeconds -
                                           a->cfg.startupBufferSeconds;
        const double ub = b->started ? b->bufferedSeconds
                                     : b->bufferedSeconds -
                                           b->cfg.startupBufferSeconds;
        if (ua != ub) return ua < ub;
        return a->id < b->id;
      };
      // Budget-sized heap selection: keep the `budget` most urgent in a
      // max-heap (front = least urgent of the kept set) and stream the
      // rest past it in one scan -- O(n log budget) against partial_sort's
      // O(n log n), which matters in the oversubscribed steady state where
      // budget << wanting.  The comparator is a strict total order (ties
      // fall through to the unique id), so the selected set and the final
      // ascending service order are exactly what partial_sort produced.
      const auto mid =
          wanting.begin() + static_cast<std::ptrdiff_t>(budget);
      std::make_heap(wanting.begin(), mid, moreUrgent);
      for (auto it = mid; it != wanting.end(); ++it) {
        if (moreUrgent(*it, wanting.front())) {
          std::pop_heap(wanting.begin(), mid, moreUrgent);
          *(mid - 1) = *it;
          std::push_heap(wanting.begin(), mid, moreUrgent);
        }
      }
      std::sort_heap(wanting.begin(), mid, moreUrgent);
      wanting.resize(budget);
      deliverAll(wanting);
    } else {
      // Round-robin: resume after the last id serviced on a previous tick.
      const auto firstAbove = std::partition_point(
          wanting.begin(), wanting.end(),
          [this](const Session* s) { return s->id <= rrCursor_; });
      std::vector<Session*> serviced;
      serviced.reserve(budget);
      std::size_t spent = 0;
      auto it = firstAbove;
      while (spent < budget) {
        if (it == wanting.end()) it = wanting.begin();
        serviced.push_back(*it);
        rrCursor_ = (*it)->id;
        ++it;
        ++spent;
      }
      deliverAll(serviced);
    }
  }

  // Phase 2: advance every active session's playback clock.
  now_ += cfg_.tickSeconds;
  ++stats_.ticks;
  telemetry::inc(metrics_.ticks);
  // Session-ticks: the per-session exposure this tick (the stall-rate SLO's
  // denominator -- stalls per session-tick, not per wall tick).
  telemetry::inc(metrics_.sessionTicks, active_.size());
  for (auto it = active_.begin(); it != active_.end();) {
    Session& s = it->second;
    advancePlayback(s);
    if (s.phase == SessionPhase::kCompleted) {
      ++stats_.sessionsCompleted;
      telemetry::inc(metrics_.completed);
      exitPlaying(s);
      finishSession(s);
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
  stats_.activeSessions = active_.size();
  telemetry::set(metrics_.active, static_cast<std::int64_t>(active_.size()));
  if (health_ != nullptr) health_->observe();
}

void SessionScheduler::enterPlaying(const Session& s) {
  ++playingCount_;
  playingPowerMilliwatts_ +=
      static_cast<std::int64_t>(std::llround(s.cfg.powerWeight * 1000.0));
  telemetry::set(metrics_.playing, playingCount_);
  telemetry::set(metrics_.playingPowerMilliwatts, playingPowerMilliwatts_);
}

void SessionScheduler::exitPlaying(const Session& s) {
  --playingCount_;
  playingPowerMilliwatts_ -=
      static_cast<std::int64_t>(std::llround(s.cfg.powerWeight * 1000.0));
  telemetry::set(metrics_.playing, playingCount_);
  telemetry::set(metrics_.playingPowerMilliwatts, playingPowerMilliwatts_);
}

std::uint64_t SessionScheduler::run(std::uint64_t maxTicks) {
  std::uint64_t ran = 0;
  while (!allSessionsTerminal() && ran < maxTicks) {
    tick();
    ++ran;
  }
  return ran;
}

bool SessionScheduler::allSessionsTerminal() const { return active_.empty(); }

FleetStats SessionScheduler::stats() const { return stats_; }

SessionReport SessionScheduler::report(std::uint64_t sessionId) const {
  const auto done = reports_.find(sessionId);
  if (done != reports_.end()) return done->second;
  const auto it = active_.find(sessionId);
  if (it == active_.end()) {
    throw std::out_of_range("SessionScheduler::report: unknown session id " +
                            std::to_string(sessionId));
  }
  const Session& s = it->second;
  SessionReport r;
  r.phase = s.phase;
  r.startupDelaySeconds = s.startupDelaySeconds;
  r.playedSeconds = s.playedSeconds;
  r.stallSeconds = s.stallSeconds;
  r.stalls = s.stalls;
  r.streamBytes = s.stream->size();
  r.bytesDelivered = static_cast<std::size_t>(s.bytesDelivered);
  r.decodeOk = s.decodeOk;
  return r;
}

void SessionScheduler::attachTelemetry(telemetry::Registry& registry) {
  metrics_.joined = &registry.counter(
      "anno_fleet_sessions_joined_total", {}, "Sessions admitted by join()");
  metrics_.completed = &registry.counter(
      "anno_fleet_sessions_completed_total", {},
      "Sessions that played their whole clip");
  metrics_.left = &registry.counter(
      "anno_fleet_sessions_left_total", {},
      "Sessions removed mid-stream by leave()");
  metrics_.active = &registry.gauge(
      "anno_fleet_sessions_active", {}, "Sessions currently in flight");
  metrics_.stalls = &registry.counter(
      "anno_fleet_stalls_total", {}, "Rebuffering events across the fleet");
  metrics_.ticks = &registry.counter(
      "anno_fleet_ticks_total", {}, "Scheduler ticks run");
  metrics_.sessionTicks = &registry.counter(
      "anno_fleet_session_ticks_total", {},
      "Active-session ticks (per-session exposure; stall-rate denominator)");
  metrics_.bytesDelivered = &registry.counter(
      "anno_fleet_bytes_delivered_total", {},
      "Stream bytes delivered to sessions");
  metrics_.uniqueStreams = &registry.gauge(
      "anno_fleet_unique_streams", {},
      "Distinct (clip, fingerprint, capabilities) streams materialized");
  metrics_.startupSeconds = &registry.histogram(
      "anno_fleet_startup_seconds",
      {0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0}, {},
      "Join-to-first-play delay per session");
  metrics_.playing = &registry.gauge(
      "anno_fleet_sessions_playing", {},
      "Sessions past startup and not yet terminal");
  metrics_.playingPowerMilliwatts = &registry.gauge(
      "anno_fleet_playing_power_milliwatts", {},
      "Summed per-session saved backlight power over the playing cohort");
  telemetry::set(metrics_.active, static_cast<std::int64_t>(active_.size()));
  telemetry::set(metrics_.uniqueStreams,
                 static_cast<std::int64_t>(streams_.size()));
  telemetry::set(metrics_.playing, playingCount_);
  telemetry::set(metrics_.playingPowerMilliwatts, playingPowerMilliwatts_);
}

void SessionScheduler::detachTelemetry() noexcept { metrics_ = Telemetry{}; }

}  // namespace anno::stream
