// Fleet-scale session scheduler: drives thousands of concurrent client
// sessions over the in-process network simulation from ONE deterministic
// discrete-tick loop.
//
// The paper's economics only work at fleet scale: annotation is computed
// once upstream so that thousands of battery-constrained clients can reuse
// it.  This scheduler is the serving half of that claim.  Sessions join
// (negotiate + resolve their stream through the MediaServer, hence through
// the shared TrackCache and the per-(clip, fingerprint, capabilities)
// stream memo), are paced by a per-tick service budget under a round-robin
// or deadline-ordered policy, and leave cleanly mid-stream.  Concurrency
// here means sessions in flight, not threads: one loop owns every session,
// so a 10k-session run is exactly reproducible.
//
// Engine-seconds stay sub-linear in client count because joins share:
// every (clip, tenant fingerprint) pair costs at most one engine pass
// (TrackCache single-flight) and every (clip, fingerprint, capability
// bytes) group costs at most one compensate+encode+mux (serve memo).  The
// fleet bench (bench/bench_fleet.cpp) measures exactly this.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "concurrency/thread_pool.h"
#include "core/engine.h"
#include "stream/server.h"
#include "stream/session_sim.h"

namespace anno::telemetry {
class Registry;
class Counter;
class Gauge;
class Histogram;
class HealthMonitor;
}

namespace anno::stream {

/// How the per-tick service budget is spent across sessions wanting bytes.
enum class SchedulePolicy : std::uint8_t {
  /// Fair rotation: pick up where the previous tick stopped.
  kRoundRobin = 0,
  /// Urgency order: sessions closest to buffer underrun are serviced first
  /// (ties broken by session id, so the order is total and deterministic).
  kDeadline = 1,
};

/// Per-session lifecycle (the state machine tests/fleet pins).
///
///   join() -> kBuffering -> kPlaying <-> kStalled -> kCompleted
///                  \------------ leave() ------------> kLeft
enum class SessionPhase : std::uint8_t {
  kBuffering = 0,  ///< delivered bytes accumulating toward startup
  kPlaying = 1,    ///< consuming buffered content in real time
  kStalled = 2,    ///< buffer ran dry mid-playback (rebuffering)
  kCompleted = 3,  ///< every content second played; terminal
  kLeft = 4,       ///< leave() mid-stream; terminal
};

/// One session's parameters at join time.
struct FleetSessionConfig {
  std::string clipName;
  ClientCapabilities caps;
  /// Annotator config this session's tenant runs; null = the server's
  /// default config.  Sessions sharing a fingerprint share one engine pass.
  std::optional<core::AnnotatorConfig> tenantCfg;
  /// Link bandwidth over time (shared shapes are cheap to copy).
  BandwidthTrace bandwidth = BandwidthTrace::constant(4e6);
  double startupBufferSeconds = 1.0;
  double bufferCapacitySeconds = 8.0;
  /// When true, the muxed stream is decoded through a real ClientSession on
  /// completion and the result recorded in the report (full end-to-end
  /// validation -- intended for small fleets, not 10k-session benches).
  bool decodeOnComplete = false;
  /// Mean backlight watts this session's annotation schedule saves while it
  /// plays.  Purely observational: it feeds the playing-power gauges the
  /// health layer watches (watts-saved-per-session SLO) and changes no
  /// scheduling decision.
  double powerWeight = 0.0;
};

/// Final (or latest) per-session accounting.
struct SessionReport {
  SessionPhase phase = SessionPhase::kBuffering;
  double startupDelaySeconds = 0.0;  ///< valid once playback started
  double playedSeconds = 0.0;
  double stallSeconds = 0.0;
  std::size_t stalls = 0;
  std::size_t streamBytes = 0;
  std::size_t bytesDelivered = 0;
  /// decodeOnComplete verdict (unset when disabled or not yet completed).
  std::optional<bool> decodeOk;
};

/// Fleet-level accounting.
struct FleetStats {
  std::size_t sessionsJoined = 0;
  std::size_t sessionsCompleted = 0;
  std::size_t sessionsLeft = 0;
  std::size_t activeSessions = 0;
  std::size_t peakConcurrentSessions = 0;
  std::uint64_t ticks = 0;
  std::uint64_t stallEvents = 0;
  double stallSeconds = 0.0;
  std::uint64_t bytesDelivered = 0;
  /// Distinct streams materialized (unique (clip, fingerprint, caps)
  /// groups) -- the denominator of the fleet's sharing story.
  std::size_t uniqueStreams = 0;
};

/// The scheduler.  Owns no threads; not itself thread-safe (one driver).
class SessionScheduler {
 public:
  struct Config {
    SchedulePolicy policy = SchedulePolicy::kRoundRobin;
    double tickSeconds = 0.1;
    /// Sessions granted delivery per tick (models server egress capacity);
    /// 0 = unlimited (every wanting session is serviced each tick).
    std::size_t serviceBudgetPerTick = 0;
    /// Worker threads for the delivery phase of tick().  1 = serial (the
    /// default), 0 = one per hardware thread, N = exactly N.  Per-session
    /// delivery is independent state, so it parallelizes; policy selection
    /// and stats accumulation stay on the driving thread in service order,
    /// which keeps every report and counter BIT-IDENTICAL to the serial
    /// tick at any thread count (pinned by tests/fleet + tests/soak).
    unsigned deliveryThreads = 1;
  };

  /// `server` must outlive the scheduler.  Attach a TrackCache to the
  /// server first for cross-tenant sharing.
  explicit SessionScheduler(const MediaServer& server);
  SessionScheduler(const MediaServer& server, Config cfg);

  /// Negotiates and admits a session; returns its id.  The stream is
  /// resolved immediately (server serve path -- memoized, cache-backed),
  /// so join cost is amortized across every session sharing the same
  /// (clip, fingerprint, capabilities).  Throws what serve() throws
  /// (unknown clip, quality index out of range).
  std::uint64_t join(const FleetSessionConfig& cfg);

  /// Removes a session mid-stream (user closed the player).  Terminal:
  /// the session keeps its accounting but receives no further service.
  /// Returns false for unknown/already-terminal ids.
  bool leave(std::uint64_t sessionId);

  /// Advances simulated time by one tick: spends the service budget over
  /// wanting sessions per the policy, then advances every active session's
  /// playback clock (startup, stall and completion transitions).
  void tick();

  /// Ticks until every session is terminal (or `maxTicks` elapse).
  /// Returns the number of ticks run.
  std::uint64_t run(std::uint64_t maxTicks = 1'000'000);

  /// Changes the per-tick service budget mid-run (0 = unlimited) -- the
  /// capacity-squeeze lever degradation drills pull.
  void setServiceBudget(std::size_t sessionsPerTick) noexcept {
    cfg_.serviceBudgetPerTick = sessionsPerTick;
  }

  [[nodiscard]] bool allSessionsTerminal() const;
  [[nodiscard]] double nowSeconds() const noexcept { return now_; }
  [[nodiscard]] FleetStats stats() const;
  /// Latest accounting for one session (throws std::out_of_range on
  /// unknown ids).
  [[nodiscard]] SessionReport report(std::uint64_t sessionId) const;

  /// Registers fleet instruments in `registry` and starts recording:
  ///   anno_fleet_sessions_joined_total / anno_fleet_sessions_completed_total
  ///   / anno_fleet_sessions_left_total, anno_fleet_sessions_active,
  ///   anno_fleet_stalls_total, anno_fleet_ticks_total,
  ///   anno_fleet_session_ticks_total (active-session-ticks: the stall-rate
  ///   denominator), anno_fleet_bytes_delivered_total,
  ///   anno_fleet_unique_streams, anno_fleet_startup_seconds (histogram),
  ///   anno_fleet_sessions_playing, anno_fleet_playing_power_milliwatts.
  /// Same null-object contract as the other subsystems.
  void attachTelemetry(telemetry::Registry& registry);
  void detachTelemetry() noexcept;

  /// Couples a HealthMonitor to the tick loop: after each tick's playback
  /// phase the monitor observes once, so its window indices line up 1:1
  /// with scheduler ticks.  Null-object contract: detached = one branch.
  /// The monitor must outlive the scheduler or be detached first.
  void attachHealth(telemetry::HealthMonitor* health) noexcept {
    health_ = health;
  }

 private:
  struct Session {
    std::uint64_t id = 0;
    SessionPhase phase = SessionPhase::kBuffering;
    FleetSessionConfig cfg;
    std::shared_ptr<const std::vector<std::uint8_t>> stream;
    double durationSeconds = 0.0;
    double bytesPerContentSecond = 0.0;
    double joinedAtSeconds = 0.0;
    /// Exact (fractional) bytes delivered -- slow links deliver less than a
    /// byte per tick, and truncating would strand the stream's tail.
    double bytesDelivered = 0.0;
    double bufferedSeconds = 0.0;   ///< delivered but not yet played
    double playedSeconds = 0.0;
    double startupDelaySeconds = 0.0;
    double stallSeconds = 0.0;
    std::size_t stalls = 0;
    bool started = false;
    std::optional<bool> decodeOk;
  };

  struct Telemetry {
    telemetry::Counter* joined = nullptr;
    telemetry::Counter* completed = nullptr;
    telemetry::Counter* left = nullptr;
    telemetry::Gauge* active = nullptr;
    telemetry::Counter* stalls = nullptr;
    telemetry::Counter* ticks = nullptr;
    telemetry::Counter* sessionTicks = nullptr;
    telemetry::Counter* bytesDelivered = nullptr;
    telemetry::Gauge* uniqueStreams = nullptr;
    telemetry::Histogram* startupSeconds = nullptr;
    telemetry::Gauge* playing = nullptr;
    telemetry::Gauge* playingPowerMilliwatts = nullptr;
  };

  [[nodiscard]] bool wantsService(const Session& s) const;
  /// Applies one tick's delivery to `s` (session-local state only) and
  /// returns the bytes delivered; fleet stats/telemetry are accumulated by
  /// deliverAll so the per-session work can run on a worker thread.
  double deliverTo(Session& s) const;
  /// Delivers to every selected session (in `serviced` order), on the
  /// delivery pool when one is configured, then folds the per-delivery
  /// byte counts into stats in service order.
  void deliverAll(const std::vector<Session*>& serviced);
  void advancePlayback(Session& s);
  void finishSession(Session& s);
  /// Playing-cohort accounting: a session enters the cohort when playback
  /// starts and exits when it turns terminal; the two gauges the health
  /// layer ratios (sessions playing, their summed powerWeight) move on
  /// exactly those transitions.
  void enterPlaying(const Session& s);
  void exitPlaying(const Session& s);

  const MediaServer& server_;
  Config cfg_;
  /// Delivery-phase workers (null pool = serial; see Config.deliveryThreads).
  concurrency::PoolLease deliveryPool_;
  double now_ = 0.0;
  std::uint64_t nextId_ = 1;
  std::uint64_t rrCursor_ = 0;  ///< round-robin resume point (session id)
  /// Active (non-terminal) sessions in id order; terminal sessions move to
  /// reports_ so the hot loop never iterates the departed.
  std::map<std::uint64_t, Session> active_;
  std::map<std::uint64_t, SessionReport> reports_;
  /// One materialized stream per (clip, fingerprint, capability bytes) --
  /// sessions hold shared_ptrs, so 10k identical sessions cost one copy.
  std::map<std::string, std::shared_ptr<const std::vector<std::uint8_t>>>
      streams_;
  FleetStats stats_;
  Telemetry metrics_;
  std::int64_t playingCount_ = 0;
  std::int64_t playingPowerMilliwatts_ = 0;
  telemetry::HealthMonitor* health_ = nullptr;
};

}  // namespace anno::stream
