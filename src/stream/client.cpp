#include "stream/client.h"

#include <stdexcept>

namespace anno::stream {

ClientSession::ClientSession(ClientConfig cfg, NetworkPath path)
    : cfg_(std::move(cfg)), path_(std::move(path)) {}

ClientCapabilities ClientSession::capabilities() const {
  ClientCapabilities caps{cfg_.device.name, cfg_.device.transfer,
                          cfg_.qualityIndex};
  caps.minBacklightLevel = cfg_.minBacklightLevel;
  return caps;
}

ReceivedStream ClientSession::receive(
    std::span<const std::uint8_t> muxedBytes) const {
  ReceivedStream out;
  out.streamBytes = muxedBytes.size();
  out.network = path_.transfer(muxedBytes.size());

  DemuxedStream demuxed = demux(muxedBytes);
  if (!demuxed.annotations.has_value()) {
    throw std::runtime_error(
        "ClientSession::receive: stream has no annotation track");
  }
  out.track = std::move(*demuxed.annotations);
  out.complexity = std::move(demuxed.complexity);
  out.sketches = std::move(demuxed.sketches);
  if (cfg_.qualityIndex >= out.track.qualityLevels.size()) {
    throw std::out_of_range(
        "ClientSession::receive: negotiated quality index missing");
  }
  out.video = media::decodeClip(demuxed.video);
  out.schedule = core::buildSchedule(out.track, cfg_.qualityIndex,
                                     cfg_.device, cfg_.minBacklightLevel);
  return out;
}

}  // namespace anno::stream
