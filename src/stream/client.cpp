#include "stream/client.h"

#include <utility>

namespace anno::stream {

ClientSession::ClientSession(ClientConfig cfg, NetworkPath path)
    : cfg_(std::move(cfg)), path_(std::move(path)) {}

ClientCapabilities ClientSession::capabilities() const {
  ClientCapabilities caps{cfg_.device.name, cfg_.device.transfer,
                          cfg_.qualityIndex};
  caps.minBacklightLevel = cfg_.minBacklightLevel;
  return caps;
}

ReceivedStream ClientSession::receive(
    std::span<const std::uint8_t> muxedBytes) const {
  ReceivedStream out;
  out.streamBytes = muxedBytes.size();
  out.network = path_.transfer(muxedBytes.size());

  DemuxedStream demuxed;
  try {
    demuxed = demux(muxedBytes);
    out.video = media::decodeClip(demuxed.video);
  } catch (const std::exception& e) {
    // Container or video section unrecoverable: nothing to play.  Still no
    // exception -- a streaming client must survive arbitrary bytes.
    out.error = e.what();
    return out;
  }
  out.ok = true;
  out.complexity = std::move(demuxed.complexity);
  out.sketches = std::move(demuxed.sketches);
  out.damage = demuxed.annotationDamage;

  const auto frameCount = static_cast<std::uint32_t>(out.video.frames.size());
  const bool trackUsable =
      demuxed.annotations.has_value() &&
      cfg_.qualityIndex < demuxed.annotations->qualityLevels.size() &&
      demuxed.annotations->frameCount == frameCount;
  if (trackUsable) {
    out.track = std::move(*demuxed.annotations);
    out.annotationFallback = !out.damage.intact();
    out.schedule = core::buildSchedule(out.track, cfg_.qualityIndex,
                                       cfg_.device, cfg_.minBacklightLevel);
  } else {
    // No annotations, a damaged-beyond-repair track, or a negotiation
    // mismatch (quality index / frame count): the client cannot invent safe
    // backlight levels, so it runs the non-annotated baseline.
    out.annotationFallback = true;
    out.schedule = core::fullBacklightSchedule(frameCount);
  }
  if (out.annotationFallback) {
    // Repair/fallback transitions are not scene-merged like an intact
    // schedule; bound the per-frame delta so they cannot flicker.
    out.schedule =
        core::limitSlewRate(out.schedule, cfg_.maxBacklightDeltaPerFrame);
  }
  return out;
}

}  // namespace anno::stream
