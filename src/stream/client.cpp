#include "stream/client.h"

#include <utility>

#include "compensate/compensate.h"
#include "media/histogram.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace anno::stream {

ClientSession::ClientSession(ClientConfig cfg, NetworkPath path)
    : cfg_(std::move(cfg)), path_(std::move(path)) {}

void ClientSession::attachTelemetry(telemetry::Registry& registry) {
  metrics_.streamsReceived = &registry.counter(
      "anno_client_streams_received_total", {},
      "Muxed streams handed to receive()");
  metrics_.streamsUndecodable = &registry.counter(
      "anno_client_streams_undecodable_total", {},
      "Streams whose container or video section was unplayable (ok == false)");
  metrics_.framesShown = &registry.counter(
      "anno_client_frames_shown_total", {},
      "Frames decoded for playback across received streams");
  metrics_.backlightSwitches = &registry.counter(
      "anno_client_backlight_switches_total", {},
      "Backlight level changes programmed during playback (flicker proxy)");
  metrics_.annotationFallbacks = &registry.counter(
      "anno_client_annotation_fallback_total", {},
      "Sessions that fell back (at least partly) to full backlight");
  metrics_.trackMismatches = &registry.counter(
      "anno_client_track_mismatch_total", {},
      "Streams whose annotations were present but unusable for this "
      "negotiation (quality index out of range or frame-count mismatch)");
  metrics_.repairedScenes = &registry.counter(
      "anno_client_repaired_scenes_total", {},
      "Full-backlight repair scenes synthesized for damaged annotation spans");
  metrics_.damagedFrames = &registry.counter(
      "anno_client_damaged_frames_total", {},
      "Frames whose annotations were lost to damage");
  metrics_.slewClampedFrames = &registry.counter(
      "anno_client_slew_clamped_frames_total", {},
      "Frames whose backlight level the slew-rate limiter had to raise");
}

void ClientSession::detachTelemetry() noexcept { metrics_ = Telemetry{}; }

void ClientSession::attachTrace(telemetry::TraceRecorder& trace) noexcept {
  trace_ = &trace;
}

void ClientSession::detachTrace() noexcept { trace_ = nullptr; }

ClientCapabilities ClientSession::capabilities() const {
  ClientCapabilities caps{cfg_.device.name, cfg_.device.transfer,
                          cfg_.qualityIndex};
  caps.minBacklightLevel = cfg_.minBacklightLevel;
  return caps;
}

ReceivedStream ClientSession::receive(
    std::span<const std::uint8_t> muxedBytes) const {
  telemetry::inc(metrics_.streamsReceived);
  telemetry::TraceSpan traceSpan(
      trace_, "receive", "client",
      {{"stream_bytes", static_cast<double>(muxedBytes.size())}});
  ReceivedStream out;
  out.streamBytes = muxedBytes.size();
  out.network = path_.transfer(muxedBytes.size());

  DemuxedStream demuxed;
  try {
    demuxed = demux(muxedBytes);
    out.video = media::decodeClip(demuxed.video);
  } catch (const std::exception& e) {
    // Container or video section unrecoverable: nothing to play.  Still no
    // exception -- a streaming client must survive arbitrary bytes.
    out.error = e.what();
    telemetry::inc(metrics_.streamsUndecodable);
    telemetry::traceInstant(
        trace_, "undecodable", "client", {}, "error",
        trace_ != nullptr ? trace_->intern(out.error) : nullptr);
    return out;
  }
  out.ok = true;
  out.complexity = std::move(demuxed.complexity);
  out.sketches = std::move(demuxed.sketches);
  out.damage = demuxed.annotationDamage;

  const auto frameCount = static_cast<std::uint32_t>(out.video.frames.size());
  const bool trackUsable =
      demuxed.annotations.has_value() &&
      cfg_.qualityIndex < demuxed.annotations->qualityLevels.size() &&
      demuxed.annotations->frameCount == frameCount;
  if (demuxed.annotations.has_value() && !trackUsable) {
    telemetry::inc(metrics_.trackMismatches);
    telemetry::traceInstant(trace_, "track_mismatch", "client");
  }
  if (trackUsable) {
    out.track = std::move(*demuxed.annotations);
    out.annotationFallback = !out.damage.intact();
    out.schedule = core::buildSchedule(out.track, cfg_.qualityIndex,
                                       cfg_.device, cfg_.minBacklightLevel);
  } else {
    // No annotations, a damaged-beyond-repair track, or a negotiation
    // mismatch (quality index / frame count): the client cannot invent safe
    // backlight levels, so it runs the non-annotated baseline.
    out.annotationFallback = true;
    out.schedule = core::fullBacklightSchedule(frameCount);
  }
  if (out.annotationFallback) {
    // Repair/fallback transitions are not scene-merged like an intact
    // schedule; bound the per-frame delta so they cannot flicker.
    out.schedule = core::limitSlewRate(
        out.schedule, cfg_.maxBacklightDeltaPerFrame, &out.slewClampedFrames);
    telemetry::inc(metrics_.annotationFallbacks);
    telemetry::traceInstant(trace_, "annotation_fallback", "client");
    if (out.slewClampedFrames > 0) {
      telemetry::traceInstant(
          trace_, "slew_clamp", "client",
          {{"frames", static_cast<double>(out.slewClampedFrames)}});
    }
  }
  // Surface what the lenient decode repaired instead of discarding it: how
  // much of the track was synthesized, and how much playback that covers.
  telemetry::inc(metrics_.repairedScenes, out.damage.repairedSpans.size());
  telemetry::inc(metrics_.damagedFrames, out.damage.damagedFrames);
  telemetry::inc(metrics_.slewClampedFrames, out.slewClampedFrames);
  telemetry::inc(metrics_.framesShown, frameCount);
  telemetry::inc(metrics_.backlightSwitches, out.schedule.switchCount());

  if (trace_ != nullptr) {
    // The semantic event vocabulary SessionTimeline reconstructs from
    // (DESIGN.md §11): session identity, the backlight plan as switch
    // instants on the media clock, and per-frame clipped-pixel samples
    // (an O(pixels) scan paid only when a recorder is attached).
    const double quality =
        trackUsable && cfg_.qualityIndex < out.track.qualityLevels.size()
            ? out.track.qualityLevels[cfg_.qualityIndex]
            : 0.0;
    trace_->metadata("session", "client",
                     {{"frames", static_cast<double>(frameCount)},
                      {"fps", out.video.fps},
                      {"quality", quality}},
                     "clip", trace_->intern(out.video.name));
    if (trackUsable) {
      trace_->metadata(
          "backend", "client",
          {{"kind", static_cast<double>(out.track.backendKind)},
           {"spatial_scale", out.track.spatialScale}},
          "name",
          trace_->intern(compensate::backendName(out.track.backendKind)));
    }
    trace_->metadata("device", "client",
                     {{"min_backlight",
                       static_cast<double>(cfg_.minBacklightLevel)}},
                     "name", trace_->intern(cfg_.device.name));
    const double frameSeconds =
        out.video.fps > 0.0 ? 1.0 / out.video.fps : 0.0;
    for (const core::BacklightCommand& cmd : out.schedule.commands) {
      trace_->setMediaTime(static_cast<double>(cmd.frame) * frameSeconds);
      trace_->instant("backlight_switch", "client",
                      {{"frame", static_cast<double>(cmd.frame)},
                       {"level", static_cast<double>(cmd.level)},
                       {"gain_k", cmd.gainK}});
    }
    for (std::uint32_t f = 0; f < frameCount; ++f) {
      trace_->setMediaTime(static_cast<double>(f) * frameSeconds);
      // Max-channel histogram + O(256) threshold query: exactly the value
      // the old per-pixel clipsWhenScaled walk produced, one SIMD-friendly
      // byte pass instead of a double predicate per pixel.
      trace_->counter("clipped_fraction", "client",
                      compensate::clippedFraction(
                          media::Histogram::ofMaxChannel(out.video.frames[f]),
                          1.0));
    }
    trace_->clearMediaTime();
    traceSpan.end(
        {{"frames", static_cast<double>(frameCount)},
         {"switches", static_cast<double>(out.schedule.switchCount())},
         {"fallback", out.annotationFallback ? 1.0 : 0.0}},
        "clip", trace_->intern(out.video.name));
  }
  return out;
}

}  // namespace anno::stream
