#include "stream/loss.h"

#include <stdexcept>

namespace anno::stream {

std::vector<FrameDelivery> deliverFrames(const media::EncodedClip& clip,
                                         const Link& link,
                                         const LossyChannel& channel) {
  if (channel.packetLossProbability < 0.0 ||
      channel.packetLossProbability >= 1.0) {
    throw std::invalid_argument("deliverFrames: loss probability in [0,1)");
  }
  media::SplitMix64 rng(channel.seed);
  std::vector<FrameDelivery> deliveries;
  deliveries.reserve(clip.frames.size());
  for (const media::EncodedFrame& f : clip.frames) {
    FrameDelivery d;
    d.packetsSent = transferOverLink(link, f.sizeBytes()).packetCount;
    for (std::size_t p = 0; p < d.packetsSent; ++p) {
      if (rng.uniform() < channel.packetLossProbability) ++d.packetsLost;
    }
    d.intact = d.packetsLost == 0;
    deliveries.push_back(d);
  }
  return deliveries;
}

ConcealedPlayback decodeWithConcealment(
    const media::EncodedClip& clip,
    const std::vector<FrameDelivery>& deliveries) {
  if (deliveries.size() != clip.frames.size()) {
    throw std::invalid_argument(
        "decodeWithConcealment: delivery count != frame count");
  }
  if (clip.frames.empty()) {
    throw std::invalid_argument("decodeWithConcealment: empty clip");
  }
  ConcealedPlayback out;
  out.video.name = clip.name;
  out.video.fps = clip.fps;
  out.video.frames.reserve(clip.frames.size());

  // `reference` is the last correctly DECODED frame (P frames chain off
  // it); `chainBroken` marks that decoding must wait for the next intact
  // I frame.  Concealment shows the last displayed frame meanwhile.
  media::Image reference;
  bool haveReference = false;
  bool chainBroken = false;
  for (std::size_t i = 0; i < clip.frames.size(); ++i) {
    const media::EncodedFrame& f = clip.frames[i];
    const bool decodable =
        deliveries[i].intact &&
        (f.intra || (haveReference && !chainBroken));
    if (decodable) {
      reference = media::decodeFrame(f, clip.width, clip.height,
                                     f.intra ? nullptr : &reference);
      haveReference = true;
      chainBroken = false;
      out.video.frames.push_back(reference);
      ++out.intactFrames;
      continue;
    }
    // Frame unusable: break the P chain until the next intact I frame.
    chainBroken = true;
    ++out.concealedFrames;
    if (haveReference) {
      out.video.frames.push_back(out.video.frames.back());
    } else {
      // Nothing ever decoded: show black.
      out.video.frames.push_back(media::Image(clip.width, clip.height));
    }
  }
  return out;
}

}  // namespace anno::stream
