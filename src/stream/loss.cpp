#include "stream/loss.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace anno::stream {

namespace {

/// Module-level instrument block, published atomically on attach so
/// concurrent delivery calls either see the whole block or none of it.
struct LossTelemetry {
  telemetry::Counter* videoPacketsLost = nullptr;
  telemetry::Counter* concealedFrames = nullptr;
  telemetry::Counter* annoPacketsLost = nullptr;
  telemetry::Counter* retransmits = nullptr;
  telemetry::Counter* nackRounds = nullptr;
  telemetry::Counter* erasures = nullptr;
};

std::atomic<const LossTelemetry*> g_lossTelemetry{nullptr};

const LossTelemetry* lossTelemetry() noexcept {
  return g_lossTelemetry.load(std::memory_order_acquire);
}

std::atomic<telemetry::TraceRecorder*> g_lossTrace{nullptr};

telemetry::TraceRecorder* lossTrace() noexcept {
  return g_lossTrace.load(std::memory_order_acquire);
}

}  // namespace

void attachLossTelemetry(telemetry::Registry& registry) {
  static LossTelemetry block;
  block.videoPacketsLost = &registry.counter(
      "anno_loss_video_packets_lost_total", {},
      "Video packets dropped by the lossy channel");
  block.concealedFrames = &registry.counter(
      "anno_loss_concealed_frames_total", {},
      "Frames concealed (repeated) because of loss or a broken P chain");
  block.annoPacketsLost = &registry.counter(
      "anno_loss_anno_packets_lost_total", {},
      "Annotation packet transmissions lost (any attempt, incl. retries)");
  block.retransmits = &registry.counter(
      "anno_loss_retransmits_total", {},
      "NACK-triggered annotation packet retransmissions");
  block.nackRounds = &registry.counter(
      "anno_loss_nack_rounds_total", {},
      "RTT rounds spent recovering annotation tracks via NACK");
  block.erasures = &registry.counter(
      "anno_loss_erasures_total", {},
      "Unrecovered annotation packet erasures (zero-filled spans handed to "
      "the lenient decoder for repair)");
  g_lossTelemetry.store(&block, std::memory_order_release);
}

void detachLossTelemetry() noexcept {
  g_lossTelemetry.store(nullptr, std::memory_order_release);
}

void attachLossTrace(telemetry::TraceRecorder& trace) noexcept {
  g_lossTrace.store(&trace, std::memory_order_release);
}

void detachLossTrace() noexcept {
  g_lossTrace.store(nullptr, std::memory_order_release);
}

std::vector<FrameDelivery> deliverFrames(const media::EncodedClip& clip,
                                         const Link& link,
                                         const LossyChannel& channel) {
  if (channel.packetLossProbability < 0.0 ||
      channel.packetLossProbability >= 1.0) {
    throw std::invalid_argument("deliverFrames: loss probability in [0,1)");
  }
  media::SplitMix64 rng(channel.seed);
  std::vector<FrameDelivery> deliveries;
  deliveries.reserve(clip.frames.size());
  for (const media::EncodedFrame& f : clip.frames) {
    FrameDelivery d;
    d.packetsSent = transferOverLink(link, f.sizeBytes()).packetCount;
    for (std::size_t p = 0; p < d.packetsSent; ++p) {
      if (rng.uniform() < channel.packetLossProbability) ++d.packetsLost;
    }
    d.intact = d.packetsLost == 0;
    deliveries.push_back(d);
  }
  if (const LossTelemetry* m = lossTelemetry()) {
    std::size_t lost = 0;
    for (const FrameDelivery& d : deliveries) lost += d.packetsLost;
    telemetry::inc(m->videoPacketsLost, lost);
  }
  return deliveries;
}

ConcealedPlayback decodeWithConcealment(
    const media::EncodedClip& clip,
    const std::vector<FrameDelivery>& deliveries) {
  if (deliveries.size() != clip.frames.size()) {
    throw std::invalid_argument(
        "decodeWithConcealment: delivery count != frame count");
  }
  if (clip.frames.empty()) {
    throw std::invalid_argument("decodeWithConcealment: empty clip");
  }
  ConcealedPlayback out;
  out.video.name = clip.name;
  out.video.fps = clip.fps;
  out.video.frames.reserve(clip.frames.size());

  // `reference` is the last correctly DECODED frame (P frames chain off
  // it); `chainBroken` marks that decoding must wait for the next intact
  // I frame.  Concealment shows the last displayed frame meanwhile.
  media::Image reference;
  bool haveReference = false;
  bool chainBroken = false;
  for (std::size_t i = 0; i < clip.frames.size(); ++i) {
    const media::EncodedFrame& f = clip.frames[i];
    const bool decodable =
        deliveries[i].intact &&
        (f.intra || (haveReference && !chainBroken));
    if (decodable) {
      reference = media::decodeFrame(f, clip.width, clip.height,
                                     f.intra ? nullptr : &reference);
      haveReference = true;
      chainBroken = false;
      out.video.frames.push_back(reference);
      ++out.intactFrames;
      continue;
    }
    // Frame unusable: break the P chain until the next intact I frame.
    chainBroken = true;
    ++out.concealedFrames;
    if (haveReference) {
      out.video.frames.push_back(out.video.frames.back());
    } else {
      // Nothing ever decoded: show black.
      out.video.frames.push_back(media::Image(clip.width, clip.height));
    }
  }
  if (const LossTelemetry* m = lossTelemetry()) {
    telemetry::inc(m->concealedFrames, out.concealedFrames);
  }
  return out;
}

AnnotationDelivery deliverAnnotationTrack(
    std::span<const std::uint8_t> trackBytes, const Link& link,
    const AnnotationDeliveryConfig& cfg) {
  if (cfg.channel.packetLossProbability < 0.0 ||
      cfg.channel.packetLossProbability >= 1.0) {
    throw std::invalid_argument(
        "deliverAnnotationTrack: loss probability in [0,1)");
  }
  if (cfg.maxRetransmits < 0 || cfg.rttSeconds < 0.0) {
    throw std::invalid_argument(
        "deliverAnnotationTrack: bad NACK parameters");
  }
  AnnotationDelivery out;
  out.bytes.assign(trackBytes.begin(), trackBytes.end());
  if (trackBytes.empty()) {
    out.complete = true;
    return out;
  }

  const std::size_t payloadPerPacket =
      link.mtuBytes > kPacketHeaderBytes ? link.mtuBytes - kPacketHeaderBytes
                                         : 1;
  out.packetCount =
      (trackBytes.size() + payloadPerPacket - 1) / payloadPerPacket;

  // Base serialization + latency for the whole track on this hop.
  out.deliverySeconds = transferOverLink(link, trackBytes.size()).durationSeconds;

  media::SplitMix64 rng(cfg.channel.seed);
  const double secondsPerPacket =
      (static_cast<double>(payloadPerPacket + kPacketHeaderBytes) * 8.0) /
      link.bandwidthBitsPerSec;

  telemetry::TraceRecorder* const trace = lossTrace();
  std::size_t maxRoundsUsed = 0;
  for (std::size_t p = 0; p < out.packetCount; ++p) {
    ++out.packetsSent;
    bool arrived = rng.uniform() >= cfg.channel.packetLossProbability;
    if (!arrived) ++out.packetsLost;
    std::size_t rounds = 0;
    while (!arrived && cfg.nackEnabled &&
           rounds < static_cast<std::size_t>(cfg.maxRetransmits)) {
      ++rounds;
      ++out.packetsSent;
      ++out.retransmits;
      out.deliverySeconds += secondsPerPacket;
      telemetry::traceInstant(trace, "nack_round", "loss",
                              {{"packet", static_cast<double>(p)},
                               {"round", static_cast<double>(rounds)}});
      arrived = rng.uniform() >= cfg.channel.packetLossProbability;
      if (!arrived) ++out.packetsLost;
    }
    maxRoundsUsed = std::max(maxRoundsUsed, rounds);
    if (!arrived) {
      // Unrecovered: known-length erasure (zero-filled, framing preserved).
      const std::size_t offset = p * payloadPerPacket;
      const std::size_t len =
          std::min(payloadPerPacket, trackBytes.size() - offset);
      std::fill_n(out.bytes.begin() + static_cast<std::ptrdiff_t>(offset),
                  len, std::uint8_t{0});
      out.erasedSpans.emplace_back(offset, len);
      telemetry::traceInstant(trace, "erasure", "loss",
                              {{"offset", static_cast<double>(offset)},
                               {"length", static_cast<double>(len)}});
    }
  }
  // NACK rounds overlap across packets (the client NACKs every missing
  // sequence number at once), so recovery costs max-rounds RTTs, not
  // per-packet RTTs.
  out.nackRounds = maxRoundsUsed;
  out.deliverySeconds += static_cast<double>(maxRoundsUsed) * cfg.rttSeconds;
  out.complete = out.erasedSpans.empty();
  if (const LossTelemetry* m = lossTelemetry()) {
    telemetry::inc(m->annoPacketsLost, out.packetsLost);
    telemetry::inc(m->retransmits, out.retransmits);
    telemetry::inc(m->nackRounds, out.nackRounds);
    telemetry::inc(m->erasures, out.erasedSpans.size());
  }
  telemetry::traceInstant(
      trace, "anno_delivery", "loss",
      {{"packets", static_cast<double>(out.packetCount)},
       {"retransmits", static_cast<double>(out.retransmits)},
       {"rounds", static_cast<double>(out.nackRounds)}});
  return out;
}

}  // namespace anno::stream
