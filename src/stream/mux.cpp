#include "stream/mux.h"

#include <stdexcept>

#include "core/anno_codec.h"
#include "media/bitstream.h"

namespace anno::stream {
namespace {

constexpr std::uint32_t kMuxMagic = 0x4D555830;  // "MUX0"
constexpr std::uint8_t kSectionVideo = 1;
constexpr std::uint8_t kSectionAnnotations = 2;
constexpr std::uint8_t kSectionComplexity = 3;
constexpr std::uint8_t kSectionSketches = 4;

}  // namespace

std::vector<std::uint8_t> mux(const media::EncodedClip& video,
                              const core::AnnotationTrack* annotations,
                              const power::ComplexityTrack* complexity,
                              const core::SketchTrack* sketches) {
  media::ByteWriter w;
  w.u32(kMuxMagic);
  {
    const std::vector<std::uint8_t> payload = media::serializeClip(video);
    w.u8(kSectionVideo);
    w.varint(payload.size());
    w.bytes(payload);
  }
  if (annotations != nullptr) {
    const std::vector<std::uint8_t> payload = core::encodeTrack(*annotations);
    w.u8(kSectionAnnotations);
    w.varint(payload.size());
    w.bytes(payload);
  }
  if (complexity != nullptr) {
    const std::vector<std::uint8_t> payload = complexity->encode();
    w.u8(kSectionComplexity);
    w.varint(payload.size());
    w.bytes(payload);
  }
  if (sketches != nullptr) {
    const std::vector<std::uint8_t> payload = sketches->encode();
    w.u8(kSectionSketches);
    w.varint(payload.size());
    w.bytes(payload);
  }
  return w.take();
}

DemuxedStream demux(std::span<const std::uint8_t> bytes) {
  media::ByteReader r(bytes);
  if (r.u32() != kMuxMagic) {
    throw std::runtime_error("demux: bad container magic");
  }
  DemuxedStream out;
  bool sawVideo = false;
  while (!r.atEnd()) {
    const std::uint8_t section = r.u8();
    const std::size_t len = r.varint();
    auto payload = r.bytes(len);
    switch (section) {
      case kSectionVideo:
        out.video = media::parseClip(payload);
        sawVideo = true;
        break;
      case kSectionAnnotations: {
        // Lenient: a damaged annotation section must not cost the video.
        core::LenientDecodeResult lenient = core::decodeTrackLenient(payload);
        out.annotationDamage = lenient.damage;
        if (lenient.usable) {
          out.annotations = std::move(lenient.track);
        }
        break;
      }
      case kSectionComplexity:
        try {
          out.complexity = power::ComplexityTrack::decode(payload);
        } catch (const std::exception&) {
          out.complexityDamaged = true;  // optional rider: drop, don't abort
        }
        break;
      case kSectionSketches:
        try {
          out.sketches = core::SketchTrack::decode(payload);
        } catch (const std::exception&) {
          out.sketchesDamaged = true;  // optional rider: drop, don't abort
        }
        break;
      default:
        break;  // unknown section: skip (forward compatibility)
    }
  }
  if (!sawVideo) {
    throw std::runtime_error("demux: container has no video section");
  }
  return out;
}

MuxSizeReport measureMux(const media::EncodedClip& video,
                         const core::AnnotationTrack* annotations) {
  MuxSizeReport report;
  report.videoBytes = media::serializeClip(video).size();
  report.annotationBytes =
      annotations != nullptr ? core::encodeTrack(*annotations).size() : 0;
  report.totalBytes = mux(video, annotations).size();
  return report;
}

}  // namespace anno::stream
