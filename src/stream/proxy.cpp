#include "stream/proxy.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "compensate/compensate.h"
#include "compensate/planner.h"
#include "stream/mux.h"

namespace anno::stream {

OnlineAnnotator::OnlineAnnotator(core::AnnotatorConfig cfg,
                                 std::uint32_t maxLatencyFrames)
    : cfg_(std::move(cfg)), maxLatencyFrames_(maxLatencyFrames) {
  if (cfg_.qualityLevels.empty()) {
    throw std::invalid_argument("OnlineAnnotator: no quality levels");
  }
  if (maxLatencyFrames_ != 0 &&
      maxLatencyFrames_ <
          static_cast<std::uint32_t>(cfg_.sceneDetect.minSceneFrames)) {
    throw std::invalid_argument(
        "OnlineAnnotator: latency bound below minimum scene length");
  }
}

core::SceneAnnotation OnlineAnnotator::finishScene(std::uint32_t endFrame) {
  core::SceneAnnotation sa;
  sa.span = core::SceneSpan{sceneStart_, endFrame - sceneStart_};
  if (cfg_.protectCredits && core::looksLikeCredits(sceneHist_)) {
    std::vector<double> capped = cfg_.qualityLevels;
    for (double& q : capped) q = std::min(q, cfg_.creditsClipCap);
    sa.safeLuma = core::safeLumaLevels(sceneHist_, capped);
  } else {
    sa.safeLuma = core::safeLumaLevels(sceneHist_, cfg_.qualityLevels);
  }
  sceneHist_ = media::Histogram{};
  sceneStart_ = endFrame;
  return sa;
}

std::optional<core::SceneAnnotation> OnlineAnnotator::push(
    const media::FrameStats& stats) {
  std::optional<core::SceneAnnotation> finished;
  const double current = stats.luminance.maxLuma;
  if (frame_ == 0) {
    reference_ = current;
  } else {
    // Mirror of core::detectScenes, evaluated causally.
    const double base = std::max(reference_, 1.0);
    const bool bigChange =
        std::abs(current - reference_) / base >= cfg_.sceneDetect.changeThreshold;
    const bool longEnough =
        frame_ - sceneStart_ >=
        static_cast<std::uint32_t>(cfg_.sceneDetect.minSceneFrames);
    // Live mode: force a cut once the latency bound is reached, even mid-
    // scene (the two chunks annotate to near-identical levels and merge in
    // the client's schedule).
    const bool latencyForced =
        maxLatencyFrames_ != 0 && frame_ - sceneStart_ >= maxLatencyFrames_;
    if ((bigChange && longEnough) || latencyForced) {
      finished = finishScene(frame_);
      reference_ = current;
    } else {
      reference_ = std::max(reference_, current);
    }
  }
  if (cfg_.granularity == core::Granularity::kPerFrame && frame_ > 0) {
    // Per-frame mode: every frame closes the previous one-frame scene.
    if (!finished) finished = finishScene(frame_);
  }
  sceneHist_.accumulate(stats.histogram);
  ++frame_;
  return finished;
}

std::optional<core::SceneAnnotation> OnlineAnnotator::flush() {
  if (frame_ == sceneStart_) return std::nullopt;
  return finishScene(frame_);
}

ProxyNode::ProxyNode(core::AnnotatorConfig annotatorCfg,
                     media::CodecConfig codecCfg)
    : annotatorCfg_(std::move(annotatorCfg)), codecCfg_(codecCfg) {}

std::vector<std::uint8_t> ProxyNode::transcode(
    std::span<const std::uint8_t> rawStream, const ClientCapabilities& caps,
    int targetWidth, int targetHeight) const {
  const DemuxedStream in = demux(rawStream);
  if (caps.qualityIndex >= annotatorCfg_.qualityLevels.size()) {
    throw std::out_of_range("ProxyNode: quality index out of range");
  }
  if ((targetWidth == 0) != (targetHeight == 0)) {
    throw std::invalid_argument(
        "ProxyNode: specify both target dimensions or neither");
  }
  const bool resize = targetWidth > 0;
  const display::DeviceModel device = deviceFromCapabilities(caps);

  // Decode incrementally, annotate causally, compensate per finished scene.
  core::AnnotationTrack track;
  track.clipName = in.video.name;
  track.fps = in.video.fps;
  track.frameCount = static_cast<std::uint32_t>(in.video.frames.size());
  track.granularity = annotatorCfg_.granularity;
  track.qualityLevels = annotatorCfg_.qualityLevels;

  OnlineAnnotator annotator(annotatorCfg_);
  std::vector<media::Image> decoded;
  std::vector<media::Image> resized;
  decoded.reserve(in.video.frames.size());
  if (resize) resized.reserve(in.video.frames.size());
  media::VideoClip outClip;
  outClip.name = in.video.name;
  outClip.fps = in.video.fps;

  // Like the server: emissive clients must not receive brightened pixels.
  const bool applyGain = caps.technology == DisplayTechnology::kBacklitLcd;
  const auto emitScene = [&](const core::SceneAnnotation& scene) {
    const compensate::CompensationPlan plan = compensate::planForLuma(
        device, scene.safeLuma[caps.qualityIndex], caps.minBacklightLevel);
    const std::vector<media::Image>& source = resize ? resized : decoded;
    for (std::uint32_t f = scene.span.firstFrame; f <= scene.span.lastFrame();
         ++f) {
      outClip.frames.push_back(
          applyGain ? compensate::contrastEnhance(source[f], plan.gainK)
                    : source[f]);
    }
    track.scenes.push_back(scene);
  };

  for (const media::EncodedFrame& ef : in.video.frames) {
    const media::Image* ref = decoded.empty() ? nullptr : &decoded.back();
    media::Image frame =
        media::decodeFrame(ef, in.video.width, in.video.height, ref);
    if (resize) {
      // Keep the full-size frame as the P-frame reference; annotate and
      // forward the resampled one (luminance statistics are resolution-
      // invariant, so annotations remain valid -- tested).
      decoded.push_back(frame);
      media::Image scaled =
          media::resizeBilinear(frame, targetWidth, targetHeight);
      if (auto scene = annotator.push(media::profileFrame(scaled))) {
        emitScene(*scene);
      }
      resized.push_back(std::move(scaled));
      continue;
    }
    decoded.push_back(std::move(frame));
    if (auto scene = annotator.push(media::profileFrame(decoded.back()))) {
      emitScene(*scene);
    }
  }
  if (auto scene = annotator.flush()) emitScene(*scene);

  core::validateTrack(track);
  const media::EncodedClip encoded = media::encodeClip(outClip, codecCfg_);
  return mux(encoded, &track);
}

}  // namespace anno::stream
