#include "stream/proxy.h"

#include <map>
#include <stdexcept>
#include <utility>

#include "compensate/backend.h"
#include "compensate/compensate.h"
#include "compensate/planner.h"
#include "core/runtime.h"
#include "stream/mux.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace anno::stream {

namespace {

std::string proxyQualityRangeMessage(const char* who, std::size_t requested,
                                     std::size_t available) {
  return std::string(who) + ": quality index " + std::to_string(requested) +
         " out of range: " + std::to_string(available) +
         " level(s) offered, valid indices [0, " +
         std::to_string(available == 0 ? 0 : available - 1) + "]";
}

}  // namespace

ProxyNode::ProxyNode(core::AnnotatorConfig annotatorCfg,
                     media::CodecConfig codecCfg)
    : annotatorCfg_(std::move(annotatorCfg)), codecCfg_(codecCfg) {}

void ProxyNode::attachTelemetry(telemetry::Registry& registry) {
  metrics_.transcodes = &registry.counter(
      "anno_proxy_transcodes_total", {},
      "Raw streams annotated + compensated on the fly");
  metrics_.framesReannotated = &registry.counter(
      "anno_proxy_frames_reannotated_total", {},
      "Frames pushed through the causal annotator during transcodes");
  metrics_.scenesReannotated = &registry.counter(
      "anno_proxy_scenes_reannotated_total", {},
      "Scenes the causal annotator closed during transcodes");
  metrics_.transcodeSeconds = &registry.histogram(
      "anno_proxy_transcode_seconds", telemetry::secondsBuckets(), {},
      "Wall time of one transcode (decode + annotate + compensate + mux)");
  metrics_.fanouts = &registry.counter(
      "anno_proxy_fanouts_total", {},
      "Fan-out runs (one shared engine pass serving N clients)");
  metrics_.fanoutClients = &registry.counter(
      "anno_proxy_fanout_clients_total", {},
      "Client streams produced across fan-out runs");
  metrics_.fanoutSharedRenders = &registry.counter(
      "anno_proxy_fanout_shared_renders_total", {},
      "Fan-out clients served from another client's identical render");
}

void ProxyNode::detachTelemetry() noexcept { metrics_ = Telemetry{}; }

void ProxyNode::attachTrace(telemetry::TraceRecorder& trace) noexcept {
  trace_ = &trace;
  annotatorCfg_.trace = &trace;  // the causal annotator shares the recorder
}

void ProxyNode::detachTrace() noexcept {
  trace_ = nullptr;
  annotatorCfg_.trace = nullptr;
}

void ProxyNode::checkQualityIndex(const char* who,
                                  std::size_t requested) const {
  if (requested >= annotatorCfg_.qualityLevels.size()) {
    throw std::out_of_range(proxyQualityRangeMessage(
        who, requested, annotatorCfg_.qualityLevels.size()));
  }
}

ProxyNode::AnnotatedSource ProxyNode::annotateSource(
    std::span<const std::uint8_t> rawStream, int targetWidth,
    int targetHeight) const {
  const DemuxedStream in = demux(rawStream);
  if ((targetWidth == 0) != (targetHeight == 0)) {
    throw std::invalid_argument(
        "ProxyNode: specify both target dimensions or neither");
  }
  const bool resize = targetWidth > 0;

  AnnotatedSource out;
  out.track.clipName = in.video.name;
  out.track.fps = in.video.fps;
  out.track.frameCount = static_cast<std::uint32_t>(in.video.frames.size());
  out.track.granularity = annotatorCfg_.granularity;
  out.track.qualityLevels = annotatorCfg_.qualityLevels;
  out.track.backendKind = annotatorCfg_.backend.kind;
  out.track.spatialScale =
      annotatorCfg_.backend.kind == compensate::BackendKind::kSpatialScaling
          ? annotatorCfg_.backend.spatialScale
          : 1.0;
  out.base.name = in.video.name;
  out.base.fps = in.video.fps;
  out.base.frames.reserve(in.video.frames.size());

  // Decode incrementally, annotate causally -- the client-independent half
  // of a transcode, run exactly once no matter how many clients subscribe.
  OnlineAnnotator annotator(annotatorCfg_);
  std::vector<media::Image> decoded;
  decoded.reserve(resize ? in.video.frames.size() : 0);
  const auto emitScene = [&out](const core::SceneAnnotation& scene) {
    out.track.scenes.push_back(scene);
  };
  const double frameSeconds = in.video.fps > 0.0 ? 1.0 / in.video.fps : 0.0;
  std::size_t frameIndex = 0;
  for (const media::EncodedFrame& ef : in.video.frames) {
    telemetry::traceSetMediaTime(
        trace_, static_cast<double>(frameIndex++) * frameSeconds);
    const media::Image* ref =
        resize ? (decoded.empty() ? nullptr : &decoded.back())
               : (out.base.frames.empty() ? nullptr : &out.base.frames.back());
    media::Image frame =
        media::decodeFrame(ef, in.video.width, in.video.height, ref);
    if (resize) {
      // Keep the full-size frame as the P-frame reference; annotate and
      // forward the resampled one (luminance statistics are resolution-
      // invariant, so annotations remain valid -- tested).
      decoded.push_back(frame);
      media::Image scaled =
          media::resizeBilinear(frame, targetWidth, targetHeight);
      if (auto scene = annotator.push(media::profileFrame(scaled))) {
        emitScene(*scene);
      }
      out.base.frames.push_back(std::move(scaled));
      continue;
    }
    out.base.frames.push_back(std::move(frame));
    if (auto scene = annotator.push(media::profileFrame(out.base.frames.back()))) {
      emitScene(*scene);
    }
  }
  if (auto scene = annotator.flush()) emitScene(*scene);
  telemetry::traceClearMediaTime(trace_);
  telemetry::inc(metrics_.framesReannotated, out.base.frames.size());
  telemetry::inc(metrics_.scenesReannotated, out.track.scenes.size());
  core::validateTrack(out.track);
  return out;
}

std::vector<std::uint8_t> ProxyNode::renderForClient(
    const AnnotatedSource& source, const ClientCapabilities& caps) const {
  const display::DeviceModel device = deviceFromCapabilities(caps);
  // Like the server: emissive clients must not receive brightened pixels.
  const bool applyGain = caps.technology == DisplayTechnology::kBacklitLcd;
  media::VideoClip outClip;
  outClip.name = source.base.name;
  outClip.fps = source.base.fps;
  outClip.frames.reserve(source.base.frames.size());
  const std::unique_ptr<const compensate::Backend> backend =
      core::backendForTrack(source.track);
  for (std::size_t si = 0; si < source.track.scenes.size(); ++si) {
    const core::SceneAnnotation& scene = source.track.scenes[si];
    const compensate::CompensationDecision decision = core::decideForScene(
        *backend, source.track, si, caps.qualityIndex, device,
        caps.minBacklightLevel);
    for (std::uint32_t f = scene.span.firstFrame; f <= scene.span.lastFrame();
         ++f) {
      outClip.frames.push_back(applyGain
                                   ? backend->apply(source.base.frames[f],
                                                    decision)
                                   : source.base.frames[f]);
    }
  }
  const media::EncodedClip encoded = media::encodeClip(outClip, codecCfg_);
  return mux(encoded, &source.track);
}

std::vector<std::uint8_t> ProxyNode::transcode(
    std::span<const std::uint8_t> rawStream, const ClientCapabilities& caps,
    int targetWidth, int targetHeight) const {
  telemetry::inc(metrics_.transcodes);
  telemetry::Span transcodeSpan(metrics_.transcodeSeconds);
  telemetry::TraceSpan traceSpan(trace_, "transcode", "proxy");
  checkQualityIndex("ProxyNode::transcode", caps.qualityIndex);
  const AnnotatedSource source =
      annotateSource(rawStream, targetWidth, targetHeight);
  std::vector<std::uint8_t> bytes = renderForClient(source, caps);
  traceSpan.end(
      {{"frames", static_cast<double>(source.base.frames.size())},
       {"scenes", static_cast<double>(source.track.scenes.size())},
       {"backend", static_cast<double>(source.track.backendKind)}},
      "clip",
      trace_ != nullptr ? trace_->intern(source.base.name) : nullptr);
  return bytes;
}

FanoutResult ProxyNode::transcodeFanout(
    std::span<const std::uint8_t> rawStream,
    std::span<const ClientCapabilities> clients, int targetWidth,
    int targetHeight) const {
  telemetry::inc(metrics_.fanouts);
  telemetry::inc(metrics_.fanoutClients, clients.size());
  telemetry::Span transcodeSpan(metrics_.transcodeSeconds);
  telemetry::TraceSpan traceSpan(trace_, "fanout", "proxy");
  // Validate every subscriber before paying for the shared pass.
  for (const ClientCapabilities& caps : clients) {
    checkQualityIndex("ProxyNode::transcodeFanout", caps.qualityIndex);
  }
  FanoutResult result;
  result.streams.resize(clients.size());
  if (clients.empty()) {
    traceSpan.end({{"clients", 0.0}});
    return result;
  }
  const AnnotatedSource source =
      annotateSource(rawStream, targetWidth, targetHeight);
  result.enginePasses = 1;
  result.frames = source.base.frames.size();
  result.scenes = source.track.scenes.size();
  // Group subscribers by their exact negotiation bytes: identical devices
  // share one rendered stream, so per-client work scales with device
  // diversity, not audience size.
  std::map<std::vector<std::uint8_t>, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    groups[encodeCapabilities(clients[i])].push_back(i);
  }
  for (const auto& [capsBytes, indices] : groups) {
    std::vector<std::uint8_t> bytes =
        renderForClient(source, clients[indices.front()]);
    for (std::size_t j = 1; j < indices.size(); ++j) {
      result.streams[indices[j]] = bytes;
    }
    result.streams[indices.front()] = std::move(bytes);
    telemetry::inc(metrics_.fanoutSharedRenders, indices.size() - 1);
  }
  result.uniqueRenders = groups.size();
  traceSpan.end(
      {{"clients", static_cast<double>(clients.size())},
       {"unique_renders", static_cast<double>(result.uniqueRenders)},
       {"frames", static_cast<double>(result.frames)},
       {"scenes", static_cast<double>(result.scenes)},
       {"backend", static_cast<double>(source.track.backendKind)}},
      "clip",
      trace_ != nullptr ? trace_->intern(source.base.name) : nullptr);
  return result;
}

}  // namespace anno::stream
