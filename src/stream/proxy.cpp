#include "stream/proxy.h"

#include <stdexcept>

#include "compensate/compensate.h"
#include "compensate/planner.h"
#include "stream/mux.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace anno::stream {

ProxyNode::ProxyNode(core::AnnotatorConfig annotatorCfg,
                     media::CodecConfig codecCfg)
    : annotatorCfg_(std::move(annotatorCfg)), codecCfg_(codecCfg) {}

void ProxyNode::attachTelemetry(telemetry::Registry& registry) {
  metrics_.transcodes = &registry.counter(
      "anno_proxy_transcodes_total", {},
      "Raw streams annotated + compensated on the fly");
  metrics_.framesReannotated = &registry.counter(
      "anno_proxy_frames_reannotated_total", {},
      "Frames pushed through the causal annotator during transcodes");
  metrics_.scenesReannotated = &registry.counter(
      "anno_proxy_scenes_reannotated_total", {},
      "Scenes the causal annotator closed during transcodes");
  metrics_.transcodeSeconds = &registry.histogram(
      "anno_proxy_transcode_seconds", telemetry::secondsBuckets(), {},
      "Wall time of one transcode (decode + annotate + compensate + mux)");
}

void ProxyNode::detachTelemetry() noexcept { metrics_ = Telemetry{}; }

void ProxyNode::attachTrace(telemetry::TraceRecorder& trace) noexcept {
  trace_ = &trace;
  annotatorCfg_.trace = &trace;  // the causal annotator shares the recorder
}

void ProxyNode::detachTrace() noexcept {
  trace_ = nullptr;
  annotatorCfg_.trace = nullptr;
}

std::vector<std::uint8_t> ProxyNode::transcode(
    std::span<const std::uint8_t> rawStream, const ClientCapabilities& caps,
    int targetWidth, int targetHeight) const {
  telemetry::inc(metrics_.transcodes);
  telemetry::Span transcodeSpan(metrics_.transcodeSeconds);
  telemetry::TraceSpan traceSpan(trace_, "transcode", "proxy");
  const DemuxedStream in = demux(rawStream);
  if (caps.qualityIndex >= annotatorCfg_.qualityLevels.size()) {
    throw std::out_of_range("ProxyNode: quality index out of range");
  }
  if ((targetWidth == 0) != (targetHeight == 0)) {
    throw std::invalid_argument(
        "ProxyNode: specify both target dimensions or neither");
  }
  const bool resize = targetWidth > 0;
  const display::DeviceModel device = deviceFromCapabilities(caps);

  // Decode incrementally, annotate causally, compensate per finished scene.
  core::AnnotationTrack track;
  track.clipName = in.video.name;
  track.fps = in.video.fps;
  track.frameCount = static_cast<std::uint32_t>(in.video.frames.size());
  track.granularity = annotatorCfg_.granularity;
  track.qualityLevels = annotatorCfg_.qualityLevels;

  OnlineAnnotator annotator(annotatorCfg_);
  std::vector<media::Image> decoded;
  std::vector<media::Image> resized;
  decoded.reserve(in.video.frames.size());
  if (resize) resized.reserve(in.video.frames.size());
  media::VideoClip outClip;
  outClip.name = in.video.name;
  outClip.fps = in.video.fps;

  // Like the server: emissive clients must not receive brightened pixels.
  const bool applyGain = caps.technology == DisplayTechnology::kBacklitLcd;
  const auto emitScene = [&](const core::SceneAnnotation& scene) {
    const compensate::CompensationPlan plan = compensate::planForLuma(
        device, scene.safeLuma[caps.qualityIndex], caps.minBacklightLevel);
    const std::vector<media::Image>& source = resize ? resized : decoded;
    for (std::uint32_t f = scene.span.firstFrame; f <= scene.span.lastFrame();
         ++f) {
      outClip.frames.push_back(
          applyGain ? compensate::contrastEnhance(source[f], plan.gainK)
                    : source[f]);
    }
    track.scenes.push_back(scene);
  };

  const double frameSeconds = in.video.fps > 0.0 ? 1.0 / in.video.fps : 0.0;
  std::size_t frameIndex = 0;
  for (const media::EncodedFrame& ef : in.video.frames) {
    telemetry::traceSetMediaTime(
        trace_, static_cast<double>(frameIndex++) * frameSeconds);
    const media::Image* ref = decoded.empty() ? nullptr : &decoded.back();
    media::Image frame =
        media::decodeFrame(ef, in.video.width, in.video.height, ref);
    if (resize) {
      // Keep the full-size frame as the P-frame reference; annotate and
      // forward the resampled one (luminance statistics are resolution-
      // invariant, so annotations remain valid -- tested).
      decoded.push_back(frame);
      media::Image scaled =
          media::resizeBilinear(frame, targetWidth, targetHeight);
      if (auto scene = annotator.push(media::profileFrame(scaled))) {
        emitScene(*scene);
      }
      resized.push_back(std::move(scaled));
      continue;
    }
    decoded.push_back(std::move(frame));
    if (auto scene = annotator.push(media::profileFrame(decoded.back()))) {
      emitScene(*scene);
    }
  }
  if (auto scene = annotator.flush()) emitScene(*scene);
  telemetry::traceClearMediaTime(trace_);
  telemetry::inc(metrics_.framesReannotated, in.video.frames.size());
  telemetry::inc(metrics_.scenesReannotated, track.scenes.size());

  core::validateTrack(track);
  const media::EncodedClip encoded = media::encodeClip(outClip, codecCfg_);
  std::vector<std::uint8_t> bytes = mux(encoded, &track);
  traceSpan.end(
      {{"frames", static_cast<double>(in.video.frames.size())},
       {"scenes", static_cast<double>(track.scenes.size())}},
      "clip", trace_ != nullptr ? trace_->intern(in.video.name) : nullptr);
  return bytes;
}

}  // namespace anno::stream
