#include "stream/traffic.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace anno::stream {
namespace {

void checkArgs(const std::vector<std::size_t>& frames, double fps) {
  if (frames.empty()) {
    throw std::invalid_argument("nic schedule: no frames");
  }
  if (fps <= 0.0) {
    throw std::invalid_argument("nic schedule: fps must be positive");
  }
}

}  // namespace

std::vector<double> frameAirSeconds(
    const std::vector<std::size_t>& frameWireBytes, const Link& link) {
  if (link.bandwidthBitsPerSec <= 0.0) {
    throw std::invalid_argument("frameAirSeconds: invalid link");
  }
  std::vector<double> air;
  air.reserve(frameWireBytes.size());
  for (std::size_t bytes : frameWireBytes) {
    air.push_back(static_cast<double>(bytes) * 8.0 /
                  link.bandwidthBitsPerSec);
  }
  return air;
}

NicScheduleResult nicAlwaysOn(const power::NicModel& nic,
                              const std::vector<std::size_t>& frameWireBytes,
                              const Link& link, double fps) {
  checkArgs(frameWireBytes, fps);
  const std::vector<double> air = frameAirSeconds(frameWireBytes, link);
  NicScheduleResult result;
  result.durationSeconds =
      static_cast<double>(frameWireBytes.size()) / fps;
  double rx = 0.0;
  for (double a : air) rx += a;
  rx = std::min(rx, result.durationSeconds);
  result.energyJoules = nic.watts(power::NicState::kReceive) * rx +
                        nic.watts(power::NicState::kIdle) *
                            (result.durationSeconds - rx);
  result.awakeFraction = 1.0;
  result.wakeups = 0;
  return result;
}

NicScheduleResult nicPsm(const power::NicModel& nic,
                         const std::vector<std::size_t>& frameWireBytes,
                         const Link& link, double fps,
                         const NicScheduleConfig& cfg) {
  checkArgs(frameWireBytes, fps);
  if (cfg.beaconIntervalSeconds <= 0.0) {
    throw std::invalid_argument("nicPsm: beacon interval must be positive");
  }
  const std::vector<double> air = frameAirSeconds(frameWireBytes, link);
  NicScheduleResult result;
  result.durationSeconds =
      static_cast<double>(frameWireBytes.size()) / fps;

  double awake = 0.0;
  double energy = 0.0;
  // Walk beacons; each wake pays transition + listen window, then drains
  // the frames that landed in the AP buffer during the beacon interval.
  const double framesPerBeacon = cfg.beaconIntervalSeconds * fps;
  const auto beacons = static_cast<std::size_t>(
      std::ceil(result.durationSeconds / cfg.beaconIntervalSeconds - 1e-9));
  double framePos = 0.0;
  std::size_t frame = 0;
  for (std::size_t beacon = 0; beacon < beacons; ++beacon) {
    ++result.wakeups;
    double burstRx = 0.0;
    framePos += framesPerBeacon;
    while (frame < air.size() &&
           static_cast<double>(frame) < framePos) {
      burstRx += air[frame];
      ++frame;
    }
    const double awakeThisBeacon =
        cfg.wakePenaltySeconds + cfg.beaconListenSeconds + burstRx;
    awake += awakeThisBeacon;
    energy += nic.watts(power::NicState::kReceive) * burstRx +
              nic.watts(power::NicState::kIdle) *
                  (cfg.wakePenaltySeconds + cfg.beaconListenSeconds);
  }
  const double asleep = std::max(0.0, result.durationSeconds - awake);
  energy += nic.watts(power::NicState::kSleep) * asleep;
  result.energyJoules = energy;
  result.awakeFraction = std::min(1.0, awake / result.durationSeconds);
  return result;
}

NicScheduleResult nicAnnotated(const power::NicModel& nic,
                               const std::vector<std::size_t>& frameWireBytes,
                               const Link& link, double fps,
                               const NicScheduleConfig& cfg) {
  checkArgs(frameWireBytes, fps);
  if (cfg.framesPerBurst < 1) {
    throw std::invalid_argument("nicAnnotated: framesPerBurst must be >= 1");
  }
  const std::vector<double> air = frameAirSeconds(frameWireBytes, link);
  NicScheduleResult result;
  result.durationSeconds =
      static_cast<double>(frameWireBytes.size()) / fps;

  double awake = 0.0;
  double energy = 0.0;
  for (std::size_t start = 0; start < air.size();
       start += static_cast<std::size_t>(cfg.framesPerBurst)) {
    double burstRx = 0.0;
    const std::size_t end = std::min(
        air.size(), start + static_cast<std::size_t>(cfg.framesPerBurst));
    for (std::size_t i = start; i < end; ++i) burstRx += air[i];
    if (burstRx <= 0.0) continue;  // annotations say: nothing to receive
    ++result.wakeups;
    // The burst length is annotated, so no listen window is needed beyond
    // the physical wake transition.
    awake += cfg.wakePenaltySeconds + burstRx;
    energy += nic.watts(power::NicState::kReceive) * burstRx +
              nic.watts(power::NicState::kIdle) * cfg.wakePenaltySeconds;
  }
  const double asleep = std::max(0.0, result.durationSeconds - awake);
  energy += nic.watts(power::NicState::kSleep) * asleep;
  result.energyJoules = energy;
  result.awakeFraction = std::min(1.0, awake / result.durationSeconds);
  return result;
}

}  // namespace anno::stream
