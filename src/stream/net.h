// Network path simulator for the paper's system model (Fig. 1):
//
//   Server --wired--> Proxy --wired--> Access Point --wireless--> PDA
//
// Analytic store-and-forward model: each link adds propagation latency plus
// per-packet serialization delay; byte counts feed the client NIC energy
// model.  No loss model -- the paper's experiments stream over a reliable
// path; the interesting contention is energy, not recovery.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace anno::stream {

/// One hop.
struct Link {
  std::string name;
  double bandwidthBitsPerSec = 11e6;  ///< 802.11b default
  double latencySeconds = 0.002;
  std::size_t mtuBytes = 1500;
};

/// Transfer accounting for one payload over one link or a path.
struct TransferStats {
  double durationSeconds = 0.0;
  std::size_t payloadBytes = 0;
  std::size_t packetCount = 0;
  std::size_t wireBytes = 0;  ///< payload + per-packet header overhead
};

inline constexpr std::size_t kPacketHeaderBytes = 40;  // IP+UDP+RTP class

/// Time and packet accounting for `payloadBytes` over a single link.
[[nodiscard]] TransferStats transferOverLink(const Link& link,
                                             std::size_t payloadBytes);

/// A multi-hop path.
class NetworkPath {
 public:
  explicit NetworkPath(std::vector<Link> links);

  /// Store-and-forward total: serialization on every hop, latency summed.
  [[nodiscard]] TransferStats transfer(std::size_t payloadBytes) const;

  [[nodiscard]] const std::vector<Link>& links() const noexcept {
    return links_;
  }

  /// The wireless last hop (for client NIC energy accounting).
  [[nodiscard]] const Link& lastHop() const;

 private:
  std::vector<Link> links_;
};

/// The paper's reference path: wired server->proxy->AP, 802.11b AP->PDA.
[[nodiscard]] NetworkPath makeReferencePath();

}  // namespace anno::stream
