// Annotation-driven network interface scheduling.
//
// The second "more optimizations are possible" example from paper Sec. 3:
// with annotations, information about the stream is available before the
// data itself ("for example network packet optimizations").  When the
// per-frame payload sizes ride in the annotation track, the client radio
// knows exactly when and how long it must listen, and can sleep the rest of
// the time instead of idle-listening.
//
// Three policies:
//   alwaysOn   -- radio in receive for bursts, idle-listening otherwise
//                 (a streaming client without power management).
//   psm        -- 802.11 power-save mode: wake at every beacon, pay a fixed
//                 listen window (TIM + contention), receive, sleep.
//   annotated  -- wake exactly at annotated burst times for exactly the
//                 annotated burst lengths; bursts coalesce `framesPerBurst`
//                 frames to amortize the wake penalty.
#pragma once

#include <cstddef>
#include <vector>

#include "power/power.h"
#include "stream/net.h"

namespace anno::stream {

/// Radio timing costs.
struct NicScheduleConfig {
  double wakePenaltySeconds = 0.003;   ///< sleep->rx transition
  double beaconIntervalSeconds = 0.1;  ///< 802.11 PSM beacon period
  double beaconListenSeconds = 0.008;  ///< TIM decode + contention per wake
  int framesPerBurst = 4;              ///< annotated coalescing factor
};

/// Outcome of one radio schedule over a clip's delivery.
struct NicScheduleResult {
  double energyJoules = 0.0;
  double durationSeconds = 0.0;
  double awakeFraction = 0.0;  ///< time in rx/idle (not sleeping)
  std::size_t wakeups = 0;

  [[nodiscard]] double savingsVs(const NicScheduleResult& baseline) const {
    return baseline.energyJoules > 0.0
               ? 1.0 - energyJoules / baseline.energyJoules
               : 0.0;
  }
};

/// Per-frame on-air receive durations for a clip streamed over `link`.
[[nodiscard]] std::vector<double> frameAirSeconds(
    const std::vector<std::size_t>& frameWireBytes, const Link& link);

/// Baseline: rx during bursts, idle-listen between them, never sleeps.
[[nodiscard]] NicScheduleResult nicAlwaysOn(
    const power::NicModel& nic,
    const std::vector<std::size_t>& frameWireBytes, const Link& link,
    double fps);

/// 802.11 PSM: wake every beacon, pay the listen window, drain buffered
/// frames, sleep.
[[nodiscard]] NicScheduleResult nicPsm(
    const power::NicModel& nic,
    const std::vector<std::size_t>& frameWireBytes, const Link& link,
    double fps, const NicScheduleConfig& cfg = {});

/// Annotated: the schedule is known ahead; wake exactly when a coalesced
/// burst arrives and listen exactly as long as its annotated size needs.
[[nodiscard]] NicScheduleResult nicAnnotated(
    const power::NicModel& nic,
    const std::vector<std::size_t>& frameWireBytes, const Link& link,
    double fps, const NicScheduleConfig& cfg = {});

}  // namespace anno::stream
