// Media server (paper Fig. 1): stores clips, profiles and annotates them
// offline, and streams compensated+annotated content on request.
//
// "The video clips available for streaming at the servers are first
// profiled, processed and annotated with data characterizing the luminance
// levels during various scenes."  Compensation itself is device-specific
// (the gain depends on the chosen backlight level, hence on the device's
// transfer function), so the client's characteristics arrive "during the
// initial negotiation phase".
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/annotate.h"
#include "core/sketch.h"
#include "core/track_cache.h"
#include "display/device.h"
#include "media/codec.h"
#include "media/video.h"

namespace anno::telemetry {
class Registry;
class Counter;
class Gauge;
class Histogram;
class TraceRecorder;
}

namespace anno::stream {

/// Display technology declared during negotiation.  Backlit LCDs get
/// compensated streams (the paper's scheme); emissive (OLED) panels must
/// NOT -- brightened pixels drive their emitters harder (see
/// display/emissive.h), so they receive the original pixels and use the
/// annotations, if at all, for content-side decisions.
enum class DisplayTechnology : std::uint8_t {
  kBacklitLcd = 0,
  kEmissive = 1,
};

/// What the client sends during negotiation.
struct ClientCapabilities {
  std::string deviceName;
  display::TransferFunction transfer;  ///< from the device's characterization
  std::size_t qualityIndex = 0;        ///< chosen quality level (paper: user)
  DisplayTechnology technology = DisplayTechnology::kBacklitLcd;
  /// The client's backlight floor.  The server must compensate with gains
  /// derived from the SAME floor the client will clamp its levels to, or
  /// floor-clamped scenes would render brighter than intended.
  int minBacklightLevel = 10;
};

/// A prepared catalog entry.
struct CatalogEntry {
  media::VideoClip original;
  core::AnnotationTrack track;  ///< annotated with the server's default config
  core::SketchTrack sketches;   ///< per-scene histogram sketches
  /// Per-frame profiling statistics, computed ONCE at ingest.  Profiling is
  /// config-independent (pixels in, luminance stats out), so every tenant
  /// config's engine pass reuses these -- a tenant fill costs one cheap
  /// causal pass over stats, never a second walk over pixels.
  std::vector<media::FrameStats> stats;
  /// TrackCache clip identity: unique per (server instance, name, ingest
  /// revision), so replaced content can never serve a stale cached track.
  std::string cacheId;
};

/// The streaming server.
class MediaServer {
 public:
  explicit MediaServer(core::AnnotatorConfig annotatorCfg = {},
                       media::CodecConfig codecCfg = {});

  /// Ingests a clip: profiles, annotates, stores.  Replaces any clip of the
  /// same name.
  void addClip(media::VideoClip clip);

  /// Batch ingest: profiles + annotates all clips concurrently over one
  /// thread pool (the annotator config's `threads` knob; 1 = serial), then
  /// stores them.  The resulting catalog is identical to calling addClip on
  /// each clip in turn -- annotation is deterministic for any thread count.
  void addClips(std::vector<media::VideoClip> clips);

  [[nodiscard]] std::vector<std::string> catalog() const;
  [[nodiscard]] bool hasClip(const std::string& name) const;
  [[nodiscard]] const CatalogEntry& entry(const std::string& name) const;

  /// Full service path: compensate frames for the negotiated device and
  /// quality, encode, and mux video + annotations.  Served streams are
  /// memoized per (clip, annotator fingerprint, exact capabilities): a
  /// repeat request for the same negotiation returns the cached bytes
  /// (compensation + encode + mux skipped), which is what makes one catalog
  /// entry cheap to fan out to a fleet of identical devices.  The cache is
  /// invalidated by addClip(s).
  [[nodiscard]] std::vector<std::uint8_t> serve(
      const std::string& clipName, const ClientCapabilities& caps) const;

  /// Tenant-aware service path: like serve(clip, caps) but annotated under
  /// `tenantCfg` instead of the server's default config.  The annotation
  /// track is resolved through the attached TrackCache (see annotationFor),
  /// so M tenants across N clips cost at most M-fingerprints x N engine
  /// passes regardless of how many sessions request them; the compensated
  /// stream itself is memoized per (clip, fingerprint, capabilities).
  [[nodiscard]] std::vector<std::uint8_t> serve(
      const std::string& clipName, const ClientCapabilities& caps,
      const core::AnnotatorConfig& tenantCfg) const;

  /// The annotation result for (clip, tenant config).  With a TrackCache
  /// attached, resolves through it keyed on (entry cacheId,
  /// tenantCfg.fingerprint()) with a single-flight fill that reuses the
  /// ingest-time profiling stats (one cheap engine pass per missing key,
  /// even under racing requests); without one, computes a cold per-call
  /// result.  Either way the returned track is bit-identical to a cold
  /// core::annotateClip(entry.original, tenantCfg) run -- the tenant-matrix
  /// suite (tests/fleet) pins this by CRC32 of encodeTrack.
  [[nodiscard]] core::CachedTrackPtr annotationFor(
      const std::string& clipName,
      const core::AnnotatorConfig& tenantCfg) const;

  /// Attaches the shared annotation-track cache (fleet mode).  Not owned;
  /// one cache is typically shared by every server/proxy in the process.
  /// Must outlive the server or be detached first.
  void attachTrackCache(core::TrackCache& cache) noexcept;
  void detachTrackCache() noexcept;
  [[nodiscard]] core::TrackCache* trackCache() const noexcept {
    return trackCache_;
  }

  /// Registers server instruments in `registry` and starts recording:
  ///   anno_server_clips_annotated_total, anno_server_serves_total,
  ///   anno_server_cache_hits_total / anno_server_cache_misses_total,
  ///   anno_server_catalog_size, anno_server_profile_seconds,
  ///   anno_server_serve_seconds.
  /// Detached by default (null handles, zero recording cost).  Pair with an
  /// EngineObserver on the annotator config for engine-level counters.
  void attachTelemetry(telemetry::Registry& registry);
  void detachTelemetry() noexcept;

  /// Starts emitting trace spans (cat "server"): `profile` around each
  /// addClips ingest and `serve` around each request (carrying the clip
  /// name and cache-hit flag).  Same null-object contract as
  /// attachTelemetry; the recorder must outlive the server or be detached
  /// first.  For engine scene spans, set `trace` on the AnnotatorConfig
  /// the server is constructed with.
  void attachTrace(telemetry::TraceRecorder& trace) noexcept;
  void detachTrace() noexcept;

  /// Raw path: original video, no compensation, no annotations (what a
  /// legacy server would send; the proxy then annotates on the fly).
  [[nodiscard]] std::vector<std::uint8_t> serveRaw(
      const std::string& clipName) const;

  [[nodiscard]] const core::AnnotatorConfig& annotatorConfig() const noexcept {
    return annotatorCfg_;
  }

 private:
  struct Telemetry {
    telemetry::Counter* clipsAnnotated = nullptr;
    telemetry::Counter* serves = nullptr;
    telemetry::Counter* cacheHits = nullptr;
    telemetry::Counter* cacheMisses = nullptr;
    telemetry::Gauge* catalogSize = nullptr;
    telemetry::Histogram* profileSeconds = nullptr;
    telemetry::Histogram* serveSeconds = nullptr;
  };

  const CatalogEntry& findOrThrow(const std::string& name) const;
  [[nodiscard]] std::vector<std::uint8_t> serveImpl(
      const std::string& clipName, const ClientCapabilities& caps,
      const core::AnnotatorConfig& tenantCfg, bool isDefaultConfig) const;

  core::AnnotatorConfig annotatorCfg_;
  std::uint64_t annotatorFingerprint_ = 0;  ///< annotatorCfg_.fingerprint()
  media::CodecConfig codecCfg_;
  std::map<std::string, CatalogEntry> catalog_;
  Telemetry metrics_;
  telemetry::TraceRecorder* trace_ = nullptr;
  core::TrackCache* trackCache_ = nullptr;  ///< shared, not owned
  std::uint64_t serverId_ = 0;   ///< process-unique, part of cacheId
  std::uint64_t ingestRevision_ = 0;  ///< bumped per stored clip
  /// Memoized serve() results keyed by clip name + annotator fingerprint +
  /// exact negotiation bytes (no collisions by construction).  Mutable +
  /// mutex: serving is logically const and must stay thread-safe for
  /// concurrent sessions.
  mutable std::mutex serveCacheMu_;
  mutable std::map<std::string, std::vector<std::uint8_t>> serveCache_;
};

/// Builds a minimal device model from negotiated capabilities (name +
/// transfer are all the server needs to compute gains and levels).
[[nodiscard]] display::DeviceModel deviceFromCapabilities(
    const ClientCapabilities& caps);

/// Wire format for the negotiation message (paper Sec. 4.3: "client
/// characteristics are sent during the initial negotiation phase").  The
/// transfer LUT travels as 256 16-bit fixed-point samples (~515 bytes
/// total) -- sent once per session.
[[nodiscard]] std::vector<std::uint8_t> encodeCapabilities(
    const ClientCapabilities& caps);

/// Parses a negotiation message; throws std::runtime_error on malformed
/// input.  The decoded transfer reproduces the original to within the
/// 16-bit quantization (< 2e-5 absolute).
[[nodiscard]] ClientCapabilities decodeCapabilities(
    std::span<const std::uint8_t> bytes);

}  // namespace anno::stream
