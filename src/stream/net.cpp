#include "stream/net.h"

#include <stdexcept>

namespace anno::stream {

TransferStats transferOverLink(const Link& link, std::size_t payloadBytes) {
  if (link.bandwidthBitsPerSec <= 0.0 || link.mtuBytes <= kPacketHeaderBytes) {
    throw std::invalid_argument("transferOverLink: invalid link parameters");
  }
  TransferStats stats;
  stats.payloadBytes = payloadBytes;
  const std::size_t perPacketPayload = link.mtuBytes - kPacketHeaderBytes;
  stats.packetCount = payloadBytes == 0
                          ? 0
                          : (payloadBytes + perPacketPayload - 1) /
                                perPacketPayload;
  stats.wireBytes = payloadBytes + stats.packetCount * kPacketHeaderBytes;
  stats.durationSeconds =
      link.latencySeconds +
      static_cast<double>(stats.wireBytes) * 8.0 / link.bandwidthBitsPerSec;
  return stats;
}

NetworkPath::NetworkPath(std::vector<Link> links) : links_(std::move(links)) {
  if (links_.empty()) {
    throw std::invalid_argument("NetworkPath: need at least one link");
  }
}

TransferStats NetworkPath::transfer(std::size_t payloadBytes) const {
  TransferStats total;
  total.payloadBytes = payloadBytes;
  for (const Link& link : links_) {
    const TransferStats hop = transferOverLink(link, payloadBytes);
    total.durationSeconds += hop.durationSeconds;
    // Wire bytes / packets reported for the final (wireless) hop, which is
    // what the client radio actually sees.
    total.packetCount = hop.packetCount;
    total.wireBytes = hop.wireBytes;
  }
  return total;
}

const Link& NetworkPath::lastHop() const { return links_.back(); }

NetworkPath makeReferencePath() {
  return NetworkPath({
      Link{"server-proxy", 100e6, 0.001, 1500},
      Link{"proxy-ap", 100e6, 0.001, 1500},
      Link{"ap-pda", 11e6, 0.004, 1500},
  });
}

}  // namespace anno::stream
