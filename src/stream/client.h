// Client session: negotiation, reception, demux, schedule construction.
//
// The client is deliberately thin -- the paper's central claim is that the
// handheld does (almost) no work: it sends its display characteristics once,
// then during playback merely decodes video and programs the backlight from
// the annotation schedule.
//
// Robustness contract: a thin client on a lossy 802.11b hop must tolerate
// ANY stream bytes.  receive() never throws on malformed or damaged input;
// it degrades.  Missing or damaged annotation spans fall back to full
// backlight (the non-annotated baseline: costs power, never correctness),
// with a slew-rate limiter bounding per-frame backlight deltas so repair
// boundaries do not flicker.  Only an undecodable VIDEO section leaves the
// result unplayable, reported via `ok == false` -- still no exception.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "core/runtime.h"
#include "display/device.h"
#include "media/video.h"
#include "stream/mux.h"
#include "stream/net.h"
#include "stream/server.h"

namespace anno::telemetry {
class Registry;
class Counter;
class TraceRecorder;
}

namespace anno::stream {

/// Client configuration.
struct ClientConfig {
  display::DeviceModel device;  ///< the PDA (with characterized transfer)
  std::size_t qualityIndex = 0;
  int minBacklightLevel = 10;
  /// Flicker bound applied when the schedule contains repair/fallback
  /// transitions: backlight level moves at most this much per frame across
  /// damage boundaries (0 = no limiting).  Intact streams are untouched --
  /// their schedules already merge scenes to minimize switches.
  std::uint8_t maxBacklightDeltaPerFrame = 8;
};

/// Everything the client ends up with after one streaming session.
struct ReceivedStream {
  media::VideoClip video;            ///< decoded (already compensated) frames
  core::AnnotationTrack track;       ///< annotations (may contain repairs)
  core::BacklightSchedule schedule;  ///< client-computed backlight plan
  /// Decode-workload annotations, when the server sent them (drives DVFS).
  std::optional<power::ComplexityTrack> complexity;
  /// Per-scene histogram sketches, when sent (drives client tone mapping).
  std::optional<core::SketchTrack> sketches;
  TransferStats network;             ///< delivery accounting
  std::size_t streamBytes = 0;
  /// Frames whose backlight level the slew-rate limiter raised above the
  /// planned schedule (0 when no limiting happened or none was needed).
  std::size_t slewClampedFrames = 0;

  /// True when the video decoded and the stream is playable.
  bool ok = false;
  /// True when any part of the backlight schedule had to fall back to full
  /// backlight (no/damaged annotations, or a negotiation mismatch).
  bool annotationFallback = false;
  /// What was lost from the annotation track (empty report when intact).
  core::TrackDamageReport damage;
  /// Human-readable reason when `ok == false`.
  std::string error;
};

class ClientSession {
 public:
  ClientSession(ClientConfig cfg, NetworkPath path);

  /// The negotiation message sent to the server/proxy.
  [[nodiscard]] ClientCapabilities capabilities() const;

  /// Receives a muxed stream (bytes as delivered over `path`), demuxes,
  /// decodes, and builds the backlight schedule from the annotations.
  /// Never throws on stream content: damaged/missing annotations degrade to
  /// a (slew-limited) full-backlight schedule, and an undecodable video
  /// section returns `ok == false` with `error` set.
  [[nodiscard]] ReceivedStream receive(
      std::span<const std::uint8_t> muxedBytes) const;

  [[nodiscard]] const ClientConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const NetworkPath& path() const noexcept { return path_; }

  /// Registers client instruments in `registry` and starts recording.  The
  /// playback-side half of the paper's power story:
  ///   anno_client_streams_received_total / anno_client_streams_undecodable_total,
  ///   anno_client_frames_shown_total, anno_client_backlight_switches_total
  ///   (flicker proxy), anno_client_annotation_fallback_total (sessions that
  ///   ran the full-backlight baseline), anno_client_track_mismatch_total
  ///   (annotations present but unusable for this negotiation),
  ///   anno_client_repaired_scenes_total / anno_client_damaged_frames_total
  ///   (surfaced from TrackDamageReport), anno_client_slew_clamped_frames_total.
  /// Detached by default (null handles, zero recording cost).
  void attachTelemetry(telemetry::Registry& registry);
  void detachTelemetry() noexcept;

  /// Starts emitting trace events (cat "client") during receive(): a
  /// `receive` span, `session`/`device` metadata, one `backlight_switch`
  /// instant per schedule command (frame/level/gain, stamped on the media
  /// clock), per-frame `clipped_fraction` counter samples, and
  /// `track_mismatch` / `annotation_fallback` / `slew_clamp` /
  /// `undecodable` instants on the degradation paths.  These are the
  /// semantic events telemetry::SessionTimeline reconstructs the paper's
  /// power/QoS timeline from.  Per-frame clipped-pixel sampling is only
  /// paid when attached; same null-object contract as attachTelemetry.
  void attachTrace(telemetry::TraceRecorder& trace) noexcept;
  void detachTrace() noexcept;

 private:
  struct Telemetry {
    telemetry::Counter* streamsReceived = nullptr;
    telemetry::Counter* streamsUndecodable = nullptr;
    telemetry::Counter* framesShown = nullptr;
    telemetry::Counter* backlightSwitches = nullptr;
    telemetry::Counter* annotationFallbacks = nullptr;
    telemetry::Counter* trackMismatches = nullptr;
    telemetry::Counter* repairedScenes = nullptr;
    telemetry::Counter* damagedFrames = nullptr;
    telemetry::Counter* slewClampedFrames = nullptr;
  };

  ClientConfig cfg_;
  NetworkPath path_;
  Telemetry metrics_;
  telemetry::TraceRecorder* trace_ = nullptr;
};

}  // namespace anno::stream
