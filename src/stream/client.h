// Client session: negotiation, reception, demux, schedule construction.
//
// The client is deliberately thin -- the paper's central claim is that the
// handheld does (almost) no work: it sends its display characteristics once,
// then during playback merely decodes video and programs the backlight from
// the annotation schedule.
#pragma once

#include <cstdint>
#include <span>

#include "core/runtime.h"
#include "display/device.h"
#include "media/video.h"
#include "stream/mux.h"
#include "stream/net.h"
#include "stream/server.h"

namespace anno::stream {

/// Client configuration.
struct ClientConfig {
  display::DeviceModel device;  ///< the PDA (with characterized transfer)
  std::size_t qualityIndex = 0;
  int minBacklightLevel = 10;
};

/// Everything the client ends up with after one streaming session.
struct ReceivedStream {
  media::VideoClip video;            ///< decoded (already compensated) frames
  core::AnnotationTrack track;       ///< annotations from the stream
  core::BacklightSchedule schedule;  ///< client-computed backlight plan
  /// Decode-workload annotations, when the server sent them (drives DVFS).
  std::optional<power::ComplexityTrack> complexity;
  /// Per-scene histogram sketches, when sent (drives client tone mapping).
  std::optional<core::SketchTrack> sketches;
  TransferStats network;             ///< delivery accounting
  std::size_t streamBytes = 0;
};

class ClientSession {
 public:
  ClientSession(ClientConfig cfg, NetworkPath path);

  /// The negotiation message sent to the server/proxy.
  [[nodiscard]] ClientCapabilities capabilities() const;

  /// Receives a muxed stream (bytes as delivered over `path`), demuxes,
  /// decodes, and builds the backlight schedule from the annotations.
  /// Throws std::runtime_error if the stream carries no annotation track
  /// (the client cannot invent safe backlight levels).
  [[nodiscard]] ReceivedStream receive(
      std::span<const std::uint8_t> muxedBytes) const;

  [[nodiscard]] const ClientConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const NetworkPath& path() const noexcept { return path_; }

 private:
  ClientConfig cfg_;
  NetworkPath path_;
};

}  // namespace anno::stream
