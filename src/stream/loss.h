// Lossy-channel model and client-side error concealment.
//
// The paper's wireless hop (802.11b to a PDA) drops packets in practice;
// a lost packet kills its frame, and with inter (P) coding the damage
// propagates until the next I frame.  The client conceals by repeating the
// last good frame.  This module quantifies the robustness-vs-compression
// trade GOP length makes -- context for choosing the codec settings the
// annotation stream rides on (cf. the authors' later error-resilient
// encoding work, PBPAIR/EAVE).
#pragma once

#include <cstdint>
#include <vector>

#include "media/codec.h"
#include "media/rng.h"
#include "stream/net.h"

namespace anno::stream {

/// Bernoulli packet-loss channel (independent losses, deterministic seed).
struct LossyChannel {
  double packetLossProbability = 0.0;
  std::uint64_t seed = 0x105;
};

/// Delivery outcome for one frame.
struct FrameDelivery {
  bool intact = true;        ///< all packets arrived
  std::size_t packetsSent = 0;
  std::size_t packetsLost = 0;
};

/// Simulates packetized delivery of each encoded frame over `link` through
/// `channel`.  A frame is intact only if every one of its packets arrives.
[[nodiscard]] std::vector<FrameDelivery> deliverFrames(
    const media::EncodedClip& clip, const Link& link,
    const LossyChannel& channel);

/// Decodes what arrived, with concealment: a damaged frame -- or any
/// P frame whose reference chain is broken -- repeats the previous
/// displayed frame; a fresh I frame resynchronizes.
/// Returns the displayed sequence (same frame count as the clip) plus the
/// count of frames that had to be concealed.
struct ConcealedPlayback {
  media::VideoClip video;
  std::size_t concealedFrames = 0;
  std::size_t intactFrames = 0;
};

[[nodiscard]] ConcealedPlayback decodeWithConcealment(
    const media::EncodedClip& clip,
    const std::vector<FrameDelivery>& deliveries);

}  // namespace anno::stream
