// Lossy-channel model and client-side error concealment.
//
// The paper's wireless hop (802.11b to a PDA) drops packets in practice;
// a lost packet kills its frame, and with inter (P) coding the damage
// propagates until the next I frame.  The client conceals by repeating the
// last good frame.  This module quantifies the robustness-vs-compression
// trade GOP length makes -- context for choosing the codec settings the
// annotation stream rides on (cf. the authors' later error-resilient
// encoding work, PBPAIR/EAVE).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "media/codec.h"
#include "media/rng.h"
#include "stream/net.h"

namespace anno::telemetry {
class Registry;
class TraceRecorder;
}

namespace anno::stream {

/// Registers loss/NACK instruments in `registry` and starts recording from
/// every delivery/concealment call in the process (the functions in this
/// header are free functions, so attachment is module-level):
///   anno_loss_video_packets_lost_total, anno_loss_concealed_frames_total,
///   anno_loss_anno_packets_lost_total, anno_loss_retransmits_total,
///   anno_loss_nack_rounds_total, anno_loss_erasures_total.
/// Detached by default; detach restores zero recording cost.
void attachLossTelemetry(telemetry::Registry& registry);
void detachLossTelemetry() noexcept;

/// Starts emitting trace events (cat "loss") from every
/// deliverAnnotationTrack call in the process: one `nack_round` instant per
/// RTT spent recovering, one `erasure` instant per unrecovered span, and an
/// `anno_delivery` summary instant (packets/retransmits/rounds).  Module-
/// level like attachLossTelemetry (these are free functions); the recorder
/// must outlive attachment.  Detach restores zero recording cost.
void attachLossTrace(telemetry::TraceRecorder& trace) noexcept;
void detachLossTrace() noexcept;

/// Bernoulli packet-loss channel (independent losses, deterministic seed).
struct LossyChannel {
  double packetLossProbability = 0.0;
  std::uint64_t seed = 0x105;
};

/// Delivery outcome for one frame.
struct FrameDelivery {
  bool intact = true;        ///< all packets arrived
  std::size_t packetsSent = 0;
  std::size_t packetsLost = 0;
};

/// Simulates packetized delivery of each encoded frame over `link` through
/// `channel`.  A frame is intact only if every one of its packets arrives.
[[nodiscard]] std::vector<FrameDelivery> deliverFrames(
    const media::EncodedClip& clip, const Link& link,
    const LossyChannel& channel);

/// Decodes what arrived, with concealment: a damaged frame -- or any
/// P frame whose reference chain is broken -- repeats the previous
/// displayed frame; a fresh I frame resynchronizes.
/// Returns the displayed sequence (same frame count as the clip) plus the
/// count of frames that had to be concealed.
struct ConcealedPlayback {
  media::VideoClip video;
  std::size_t concealedFrames = 0;
  std::size_t intactFrames = 0;
};

[[nodiscard]] ConcealedPlayback decodeWithConcealment(
    const media::EncodedClip& clip,
    const std::vector<FrameDelivery>& deliveries);

// ---------------------------------------------------------------------------
// Annotation-packet delivery with optional NACK/retransmit.
//
// The annotation track is hundreds of bytes -- a handful of packets -- so
// unlike video it is cheaply recoverable: the client NACKs a missing packet
// and the server retransmits it within one RTT.  Without NACK, a lost packet
// becomes a known-length erasure (the client knows the sequence numbers that
// never arrived), which the resilient ANN1 framing turns into per-chunk
// damage that decodeTrackLenient repairs with full-backlight spans.
// ---------------------------------------------------------------------------

/// Delivery policy for the annotation track.
struct AnnotationDeliveryConfig {
  LossyChannel channel;       ///< loss process for annotation packets
  bool nackEnabled = false;   ///< retransmit lost packets
  int maxRetransmits = 8;     ///< per-packet retry budget
  double rttSeconds = 0.05;   ///< one NACK round trip (detect + resend)
};

/// Outcome of delivering one serialized annotation track.
struct AnnotationDelivery {
  /// Received payload, same length as the input: packets that never arrived
  /// are zero-filled erasures (sequence numbers make the holes known), so
  /// downstream framing stays byte-aligned and CRC catches the damage.
  std::vector<std::uint8_t> bytes;
  bool complete = false;          ///< every packet eventually arrived
  std::size_t packetCount = 0;    ///< distinct packets in the track
  std::size_t packetsSent = 0;    ///< transmissions incl. retransmits
  std::size_t packetsLost = 0;    ///< lost transmissions (any attempt)
  std::size_t retransmits = 0;    ///< NACK-triggered resends
  std::size_t nackRounds = 0;     ///< RTTs spent recovering
  double deliverySeconds = 0.0;   ///< serialization + latency + NACK RTTs
  /// Byte ranges erased by unrecovered packets: [offset, offset+length).
  std::vector<std::pair<std::size_t, std::size_t>> erasedSpans;
};

/// Packetizes `trackBytes` onto `link` (MTU minus header per packet) through
/// `channel`, optionally recovering losses via NACK/retransmit.  With NACK
/// and p <= 2% loss, the track is whole after at most a round or two -- the
/// schedule the client builds is then bit-identical to lossless delivery.
/// Deterministic for a given (channel seed, config).
[[nodiscard]] AnnotationDelivery deliverAnnotationTrack(
    std::span<const std::uint8_t> trackBytes, const Link& link,
    const AnnotationDeliveryConfig& cfg);

}  // namespace anno::stream
