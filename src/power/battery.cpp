#include "power/battery.h"

#include <cmath>

namespace anno::power {

double BatteryModel::runtimeHours(double averageWatts) const {
  if (averageWatts <= 0.0) {
    throw std::invalid_argument("BatteryModel::runtimeHours: power must be > 0");
  }
  const double currentA = averageWatts / voltage_;
  const double ratedA = capacitymAh_ / 1000.0;  // 1C reference current
  // Peukert: t = (C/I) * (I_rated/I)^(k-1); at I = I_rated this is exactly
  // one hour per 1C of capacity.
  const double hoursIdeal = (capacitymAh_ / 1000.0) / currentA;
  return hoursIdeal * std::pow(ratedA / currentA, peukert_ - 1.0);
}

double BatteryModel::extensionFactor(double baselineWatts,
                                     double optimizedWatts) const {
  return runtimeHours(optimizedWatts) / runtimeHours(baselineWatts);
}

}  // namespace anno::power
