// Annotation-driven CPU frequency/voltage scaling.
//
// Paper Sec. 3: "because the information is available even before decoding
// the data, more optimizations are possible than would otherwise be possible
// at runtime ... Optimizations like frequency/voltage scaling can be applied
// before decoding is finished, because the annotated information is
// available early from the data stream."
//
// This module realizes that application: the server annotates each frame's
// decode workload (derivable from the compressed frame before decoding it);
// the client then runs each frame at the lowest operating point that meets
// the display deadline.  The comparison baselines are race-to-idle (always
// max frequency, idle out the slack) and reactive DVFS (predict this frame's
// workload from the previous frame -- which misses deadlines on I frames
// after cheap P frames, the same misprediction failure the paper describes
// for backlight).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "media/codec.h"

namespace anno::power {

/// One CPU operating performance point.
struct CpuOpp {
  double freqMHz = 400.0;
  double volts = 1.3;
};

/// A DVFS-capable CPU: power at an OPP scales as f * V^2 (switching power),
/// normalized so the top OPP draws `maxActiveWatts`.
class DvfsCpu {
 public:
  DvfsCpu(std::vector<CpuOpp> opps, double maxActiveWatts,
          double idleWatts);

  /// Intel XScale PXA255-class table (the paper's 400 MHz iPAQ 5555 CPU).
  static DvfsCpu xscalePxa255();

  [[nodiscard]] const std::vector<CpuOpp>& opps() const noexcept {
    return opps_;
  }
  [[nodiscard]] std::size_t oppCount() const noexcept { return opps_.size(); }

  /// Active power at OPP index (throws std::out_of_range).
  [[nodiscard]] double activeWatts(std::size_t opp) const;

  /// Idle (clock-gated) power.
  [[nodiscard]] double idleWatts() const noexcept { return idleWatts_; }

  /// Seconds to retire `megacycles` at an OPP.
  [[nodiscard]] double secondsFor(double megacycles, std::size_t opp) const;

  /// Lowest OPP that retires `megacycles` within `deadlineSeconds`;
  /// returns the top OPP if none suffices.
  [[nodiscard]] std::size_t lowestOppFor(double megacycles,
                                         double deadlineSeconds) const;

 private:
  std::vector<CpuOpp> opps_;  // sorted by frequency ascending
  double maxActiveWatts_;
  double idleWatts_;
};

/// Decode workload model: cycles = bytes * cyclesPerByte (entropy decode)
/// + pixels * cyclesPerPixel (IDCT + colour).  Defaults calibrated so a
/// 320x240 I frame decodes in roughly a 30 fps frame time at 400 MHz --
/// the software-MPEG reality of the paper's PDA.
struct DecodeWorkModel {
  double cyclesPerByte = 400.0;
  double cyclesPerPixel = 120.0;

  [[nodiscard]] double megacyclesFor(std::size_t frameBytes,
                                     std::size_t pixels) const {
    return (cyclesPerByte * static_cast<double>(frameBytes) +
            cyclesPerPixel * static_cast<double>(pixels)) /
           1e6;
  }
};

/// Per-frame decode-workload annotation (attached to the stream by the
/// server, like the luminance annotations).
struct ComplexityTrack {
  std::vector<double> frameMegacycles;

  /// Derives the track from a compressed clip (the server can compute this
  /// without decoding -- sizes are in the container).
  static ComplexityTrack fromEncodedClip(const media::EncodedClip& clip,
                                         const DecodeWorkModel& model = {});

  /// Compact serialization (varint centicycles), symmetric decode.
  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static ComplexityTrack decode(std::span<const std::uint8_t> bytes);
};

/// Result of simulating one DVFS policy over a clip.
struct DvfsResult {
  double energyJoules = 0.0;
  double averageFreqMHz = 0.0;
  std::size_t missedDeadlines = 0;
  std::vector<std::uint8_t> oppPerFrame;

  [[nodiscard]] double savingsVs(const DvfsResult& baseline) const {
    return baseline.energyJoules > 0.0
               ? 1.0 - energyJoules / baseline.energyJoules
               : 0.0;
  }
};

/// Annotated DVFS: exact per-frame workload known BEFORE decode; always the
/// lowest OPP that meets the deadline; never misses (unless even the top
/// OPP cannot make it).
[[nodiscard]] DvfsResult scheduleAnnotated(const DvfsCpu& cpu,
                                           const ComplexityTrack& track,
                                           double fps);

/// Race-to-idle baseline: top OPP for every frame, idle out the slack.
[[nodiscard]] DvfsResult scheduleRaceToIdle(const DvfsCpu& cpu,
                                            const ComplexityTrack& track,
                                            double fps);

/// Reactive baseline (no annotations): predict this frame's workload as
/// `margin` times the previous frame's actual; first frame at top OPP.
/// Underestimates at P->I transitions cause deadline misses.
[[nodiscard]] DvfsResult scheduleReactive(const DvfsCpu& cpu,
                                          const ComplexityTrack& track,
                                          double fps, double margin = 1.1);

}  // namespace anno::power
