// Battery model: turns average power into the metric users feel -- runtime.
//
// "In spite of technological advances, battery life still remains a major
// limitation of portable devices" (paper Sec. 1).  We model a Li-ion pack
// with the rate-capacity (Peukert) effect: effective capacity shrinks as the
// discharge current rises, so power savings extend runtime slightly MORE
// than linearly.
#pragma once

#include <stdexcept>

namespace anno::power {

class BatteryModel {
 public:
  /// `nominalCapacitymAh` is rated at the 1C discharge current;
  /// `peukertExponent` >= 1 (1.0 = ideal battery; Li-ion ~1.03-1.10).
  BatteryModel(double voltage, double nominalCapacitymAh,
               double peukertExponent = 1.05)
      : voltage_(voltage),
        capacitymAh_(nominalCapacitymAh),
        peukert_(peukertExponent) {
    if (voltage_ <= 0.0 || capacitymAh_ <= 0.0 || peukert_ < 1.0) {
      throw std::invalid_argument("BatteryModel: invalid parameters");
    }
  }

  /// The iPAQ 5555's pack: 3.7 V, 1250 mAh Li-ion.
  static BatteryModel ipaq5555() { return BatteryModel(3.7, 1250.0, 1.05); }

  /// Runtime in hours at a constant average power draw.
  [[nodiscard]] double runtimeHours(double averageWatts) const;

  /// Runtime extension factor of drawing `optimizedWatts` instead of
  /// `baselineWatts` (e.g. 1.25 = 25% longer on a charge).
  [[nodiscard]] double extensionFactor(double baselineWatts,
                                       double optimizedWatts) const;

  [[nodiscard]] double voltage() const noexcept { return voltage_; }
  [[nodiscard]] double nominalCapacitymAh() const noexcept {
    return capacitymAh_;
  }

 private:
  double voltage_;
  double capacitymAh_;
  double peukert_;
};

}  // namespace anno::power
