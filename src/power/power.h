// Whole-device power model for a streaming PDA.
//
// Paper Sec. 4: "On a typical PDA the backlight dominates other components,
// with about 25-30% of total power consumption."  Fig. 10 reports *total*
// measured device power savings of 15-20%, which is the backlight savings
// scaled by the backlight's share.  We model the main consumers the paper
// names -- CPU, network interface, display -- as state machines with typical
// XScale-era power numbers, so total-device experiments recover the same
// ratio structure.
#pragma once

#include <stdexcept>
#include <string>

#include "display/device.h"

namespace anno::power {

/// CPU power states (Intel XScale PXA255-class @ 400 MHz).
enum class CpuState { kIdle, kDecode, kDecodeCompensate };

/// Network interface states (802.11b CF card).
enum class NicState { kSleep, kIdle, kReceive, kTransmit };

/// CPU model: software MPEG decode keeps the core mostly busy; doing
/// image compensation on-device (the approach the paper avoids) costs more.
struct CpuModel {
  double idleWatts = 0.15;
  double decodeWatts = 0.90;
  /// Decode + per-pixel compensation on the client (no annotations): the
  /// extra load the paper's server-side scheme removes.
  double decodeCompensateWatts = 1.15;

  [[nodiscard]] double watts(CpuState s) const {
    switch (s) {
      case CpuState::kIdle: return idleWatts;
      case CpuState::kDecode: return decodeWatts;
      case CpuState::kDecodeCompensate: return decodeCompensateWatts;
    }
    throw std::invalid_argument("CpuModel::watts: bad state");
  }
};

/// WLAN model.
struct NicModel {
  double sleepWatts = 0.02;
  double idleWatts = 0.16;
  double receiveWatts = 0.65;
  double transmitWatts = 0.90;

  [[nodiscard]] double watts(NicState s) const {
    switch (s) {
      case NicState::kSleep: return sleepWatts;
      case NicState::kIdle: return idleWatts;
      case NicState::kReceive: return receiveWatts;
      case NicState::kTransmit: return transmitWatts;
    }
    throw std::invalid_argument("NicModel::watts: bad state");
  }
};

/// Instantaneous operating point of the device.
struct OperatingPoint {
  CpuState cpu = CpuState::kDecode;
  NicState nic = NicState::kReceive;
  int backlightLevel = 255;
  bool panelOn = true;
};

/// Whole-device model: components plus fixed base (memory, audio, leakage).
class MobileDevicePower {
 public:
  MobileDevicePower(display::DeviceModel displayDevice, CpuModel cpu = {},
                    NicModel nic = {}, double panelWatts = 0.30,
                    double baseWatts = 0.45)
      : display_(std::move(displayDevice)),
        cpu_(cpu),
        nic_(nic),
        panelWatts_(panelWatts),
        baseWatts_(baseWatts) {}

  /// Total instantaneous power at an operating point.
  [[nodiscard]] double totalWatts(const OperatingPoint& op) const;

  /// Backlight power alone.
  [[nodiscard]] double backlightWatts(int level) const {
    return display_.backlightPowerWatts(level);
  }

  /// Fraction of full-load device power drawn by the backlight at full
  /// level (the paper's "about 25-30%").
  [[nodiscard]] double backlightShare() const;

  [[nodiscard]] const display::DeviceModel& displayDevice() const noexcept {
    return display_;
  }
  [[nodiscard]] const CpuModel& cpu() const noexcept { return cpu_; }
  [[nodiscard]] const NicModel& nic() const noexcept { return nic_; }

 private:
  display::DeviceModel display_;
  CpuModel cpu_;
  NicModel nic_;
  double panelWatts_;
  double baseWatts_;
};

/// Builds the measurement target of the paper (iPAQ 5555 class device).
[[nodiscard]] MobileDevicePower makeIpaq5555Power();

}  // namespace anno::power
