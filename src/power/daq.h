// Data-acquisition board simulator.
//
// Paper Sec. 5.1: "The batteries were removed from the iPAQ during the
// experiment. A PCI DAQ board was used to sample voltage drops across a
// resistor and the iPAQ, and sampled the voltages at 20K samples/sec."
//
// We reproduce that measurement chain: the device draws a (piecewise
// constant) power from a fixed supply rail through a small sense resistor;
// the DAQ samples the two voltage drops with a finite-resolution ADC and
// additive Gaussian noise; power is then *reconstructed* from the sampled
// voltages exactly as the paper's rig does (P = V_device * V_sense / R).
// Tests verify the reconstruction error stays within the ADC noise budget.
#pragma once

#include <cstdint>
#include <functional>

#include "media/rng.h"
#include "power/trace.h"

namespace anno::power {

/// Measurement-rig parameters.
struct DaqConfig {
  double sampleRateHz = 20000.0;   ///< paper: 20 kS/s
  double supplyVolts = 5.0;        ///< bench supply replacing the battery
  double senseResistorOhms = 0.1;  ///< shunt in series with the device
  int adcBits = 12;                ///< PCI DAQ class converter
  double adcFullScaleVolts = 10.0;
  double noiseRmsVolts = 0.002;    ///< input-referred noise
  std::uint64_t seed = 0xDA0;
};

/// Simulates the rig over a ground-truth power function of time.
class DaqSimulator {
 public:
  explicit DaqSimulator(DaqConfig cfg);

  /// Samples `truePowerWatts(t)` for `durationSeconds`, returning the
  /// power trace *as reconstructed from the measured voltages* (with ADC
  /// quantization and noise folded in).
  [[nodiscard]] PowerTrace record(
      const std::function<double(double)>& truePowerWatts,
      double durationSeconds);

  [[nodiscard]] const DaqConfig& config() const noexcept { return cfg_; }

 private:
  /// One ADC conversion: quantize + noise.
  [[nodiscard]] double convert(double volts);

  DaqConfig cfg_;
  media::SplitMix64 rng_;
};

}  // namespace anno::power
