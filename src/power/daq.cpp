#include "power/daq.h"

#include <cmath>
#include <stdexcept>

namespace anno::power {

DaqSimulator::DaqSimulator(DaqConfig cfg) : cfg_(cfg), rng_(cfg.seed) {
  if (cfg_.sampleRateHz <= 0.0 || cfg_.supplyVolts <= 0.0 ||
      cfg_.senseResistorOhms <= 0.0 || cfg_.adcBits < 1 ||
      cfg_.adcBits > 24 || cfg_.adcFullScaleVolts <= 0.0 ||
      cfg_.noiseRmsVolts < 0.0) {
    throw std::invalid_argument("DaqSimulator: invalid configuration");
  }
}

double DaqSimulator::convert(double volts) {
  const double noisy = volts + rng_.gaussian(0.0, cfg_.noiseRmsVolts);
  const double codes = static_cast<double>(1 << cfg_.adcBits);
  const double lsb = cfg_.adcFullScaleVolts / codes;
  double q = std::round(noisy / lsb) * lsb;
  if (q < 0.0) q = 0.0;
  if (q > cfg_.adcFullScaleVolts) q = cfg_.adcFullScaleVolts;
  return q;
}

PowerTrace DaqSimulator::record(
    const std::function<double(double)>& truePowerWatts,
    double durationSeconds) {
  if (!truePowerWatts) {
    throw std::invalid_argument("DaqSimulator::record: null power function");
  }
  if (durationSeconds <= 0.0) {
    throw std::invalid_argument("DaqSimulator::record: duration must be > 0");
  }
  const double dt = 1.0 / cfg_.sampleRateHz;
  const auto n = static_cast<std::size_t>(std::llround(durationSeconds /
                                                       dt));
  PowerTrace trace(dt);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) * dt;
    const double p = truePowerWatts(t);
    if (p < 0.0) {
      throw std::domain_error("DaqSimulator::record: negative power");
    }
    // Device draws current I = P / V_device where V_device is the supply
    // minus the shunt drop; solve the small quadratic exactly:
    //   P = (Vs - I*R) * I  =>  R*I^2 - Vs*I + P = 0.
    const double vs = cfg_.supplyVolts;
    const double r = cfg_.senseResistorOhms;
    const double disc = vs * vs - 4.0 * r * p;
    if (disc < 0.0) {
      throw std::domain_error(
          "DaqSimulator::record: power exceeds supply capability");
    }
    const double current = (vs - std::sqrt(disc)) / (2.0 * r);
    const double vSense = current * r;
    const double vDevice = vs - vSense;
    // The rig measures both drops and reconstructs P = V_device * V_sense/R.
    const double vSenseMeas = convert(vSense);
    const double vDeviceMeas = convert(vDevice);
    trace.append(vDeviceMeas * vSenseMeas / r);
  }
  return trace;
}

}  // namespace anno::power
