#include "power/dvfs.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "media/bitstream.h"

namespace anno::power {

DvfsCpu::DvfsCpu(std::vector<CpuOpp> opps, double maxActiveWatts,
                 double idleWatts)
    : opps_(std::move(opps)),
      maxActiveWatts_(maxActiveWatts),
      idleWatts_(idleWatts) {
  if (opps_.empty()) {
    throw std::invalid_argument("DvfsCpu: need at least one OPP");
  }
  if (maxActiveWatts_ <= 0.0 || idleWatts_ < 0.0) {
    throw std::invalid_argument("DvfsCpu: invalid power numbers");
  }
  std::sort(opps_.begin(), opps_.end(),
            [](const CpuOpp& a, const CpuOpp& b) {
              return a.freqMHz < b.freqMHz;
            });
  for (const CpuOpp& o : opps_) {
    if (o.freqMHz <= 0.0 || o.volts <= 0.0) {
      throw std::invalid_argument("DvfsCpu: invalid OPP");
    }
  }
}

DvfsCpu DvfsCpu::xscalePxa255() {
  // PXA255-class frequency/voltage pairs; 0.90 W at the top point matches
  // the CpuModel::decodeWatts used by the playback power model.
  return DvfsCpu({{100.0, 0.85}, {200.0, 1.00}, {300.0, 1.10},
                  {400.0, 1.30}},
                 /*maxActiveWatts=*/0.90, /*idleWatts=*/0.15);
}

double DvfsCpu::activeWatts(std::size_t opp) const {
  if (opp >= opps_.size()) {
    throw std::out_of_range("DvfsCpu::activeWatts: bad OPP index");
  }
  const CpuOpp& top = opps_.back();
  const CpuOpp& o = opps_[opp];
  // Dynamic power ~ f * V^2 rides on top of the static floor (leakage,
  // clock tree), so active power at any OPP stays above idle.
  const double rel = (o.freqMHz * o.volts * o.volts) /
                     (top.freqMHz * top.volts * top.volts);
  return idleWatts_ + (maxActiveWatts_ - idleWatts_) * rel;
}

double DvfsCpu::secondsFor(double megacycles, std::size_t opp) const {
  if (opp >= opps_.size()) {
    throw std::out_of_range("DvfsCpu::secondsFor: bad OPP index");
  }
  if (megacycles < 0.0) {
    throw std::invalid_argument("DvfsCpu::secondsFor: negative work");
  }
  return megacycles / opps_[opp].freqMHz;
}

std::size_t DvfsCpu::lowestOppFor(double megacycles,
                                  double deadlineSeconds) const {
  for (std::size_t i = 0; i < opps_.size(); ++i) {
    if (secondsFor(megacycles, i) <= deadlineSeconds) return i;
  }
  return opps_.size() - 1;
}

ComplexityTrack ComplexityTrack::fromEncodedClip(
    const media::EncodedClip& clip, const DecodeWorkModel& model) {
  ComplexityTrack track;
  track.frameMegacycles.reserve(clip.frames.size());
  const auto pixels =
      static_cast<std::size_t>(clip.width) * static_cast<std::size_t>(clip.height);
  for (const media::EncodedFrame& f : clip.frames) {
    track.frameMegacycles.push_back(model.megacyclesFor(f.sizeBytes(), pixels));
  }
  return track;
}

std::vector<std::uint8_t> ComplexityTrack::encode() const {
  media::ByteWriter w;
  w.varint(frameMegacycles.size());
  // Delta-coded centi-megacycles: consecutive frames are similar, so the
  // deltas stay small.
  std::int64_t prev = 0;
  for (double mc : frameMegacycles) {
    const auto v = static_cast<std::int64_t>(std::llround(mc * 100.0));
    w.svarint(v - prev);
    prev = v;
  }
  return w.take();
}

ComplexityTrack ComplexityTrack::decode(std::span<const std::uint8_t> bytes) {
  media::ByteReader r(bytes);
  ComplexityTrack track;
  const std::size_t n = r.varint();
  track.frameMegacycles.reserve(n);
  std::int64_t value = 0;
  for (std::size_t i = 0; i < n; ++i) {
    value += r.svarint();
    if (value < 0) {
      throw std::runtime_error("ComplexityTrack: negative workload");
    }
    track.frameMegacycles.push_back(static_cast<double>(value) / 100.0);
  }
  return track;
}

namespace {

void checkScheduleArgs(const ComplexityTrack& track, double fps) {
  if (track.frameMegacycles.empty()) {
    throw std::invalid_argument("DVFS schedule: empty complexity track");
  }
  if (fps <= 0.0) {
    throw std::invalid_argument("DVFS schedule: fps must be positive");
  }
}

/// Accounts one frame at a chosen OPP; returns busy seconds.
double accountFrame(const DvfsCpu& cpu, double megacycles, std::size_t opp,
                    double deadline, DvfsResult& result) {
  const double busy = cpu.secondsFor(megacycles, opp);
  const double idle = std::max(0.0, deadline - busy);
  result.energyJoules += cpu.activeWatts(opp) * std::min(busy, deadline) +
                         cpu.idleWatts() * idle;
  if (busy > deadline + 1e-12) {
    ++result.missedDeadlines;
    // The overrun still costs energy (decode continues into the next
    // period); bill the remainder at the same OPP.
    result.energyJoules += cpu.activeWatts(opp) * (busy - deadline);
  }
  result.averageFreqMHz += cpu.opps()[opp].freqMHz;
  result.oppPerFrame.push_back(static_cast<std::uint8_t>(opp));
  return busy;
}

}  // namespace

DvfsResult scheduleAnnotated(const DvfsCpu& cpu, const ComplexityTrack& track,
                             double fps) {
  checkScheduleArgs(track, fps);
  const double deadline = 1.0 / fps;
  DvfsResult result;
  for (double mc : track.frameMegacycles) {
    accountFrame(cpu, mc, cpu.lowestOppFor(mc, deadline), deadline, result);
  }
  result.averageFreqMHz /= static_cast<double>(track.frameMegacycles.size());
  return result;
}

DvfsResult scheduleRaceToIdle(const DvfsCpu& cpu,
                              const ComplexityTrack& track, double fps) {
  checkScheduleArgs(track, fps);
  const double deadline = 1.0 / fps;
  DvfsResult result;
  const std::size_t top = cpu.oppCount() - 1;
  for (double mc : track.frameMegacycles) {
    accountFrame(cpu, mc, top, deadline, result);
  }
  result.averageFreqMHz /= static_cast<double>(track.frameMegacycles.size());
  return result;
}

DvfsResult scheduleReactive(const DvfsCpu& cpu, const ComplexityTrack& track,
                            double fps, double margin) {
  checkScheduleArgs(track, fps);
  if (margin < 1.0) {
    throw std::invalid_argument("scheduleReactive: margin must be >= 1");
  }
  const double deadline = 1.0 / fps;
  DvfsResult result;
  double predicted = -1.0;  // unknown: first frame at top OPP
  for (double mc : track.frameMegacycles) {
    const std::size_t opp =
        predicted < 0.0 ? cpu.oppCount() - 1
                        : cpu.lowestOppFor(predicted * margin, deadline);
    accountFrame(cpu, mc, opp, deadline, result);
    predicted = mc;
  }
  result.averageFreqMHz /= static_cast<double>(track.frameMegacycles.size());
  return result;
}

}  // namespace anno::power
