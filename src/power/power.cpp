#include "power/power.h"

namespace anno::power {

double MobileDevicePower::totalWatts(const OperatingPoint& op) const {
  double total = baseWatts_;
  total += cpu_.watts(op.cpu);
  total += nic_.watts(op.nic);
  if (op.panelOn) {
    total += panelWatts_;
    total += display_.backlightPowerWatts(op.backlightLevel);
  }
  return total;
}

double MobileDevicePower::backlightShare() const {
  const OperatingPoint full{CpuState::kDecode, NicState::kReceive, 255, true};
  const double total = totalWatts(full);
  return total > 0.0 ? display_.backlightPowerWatts(255) / total : 0.0;
}

MobileDevicePower makeIpaq5555Power() {
  return MobileDevicePower(
      display::makeDevice(display::KnownDevice::kIpaq5555));
}

}  // namespace anno::power
