#include "power/trace.h"

#include <algorithm>

namespace anno::power {

void PowerTrace::append(const PowerTrace& other) {
  if (other.dt_ != dt_) {
    throw std::invalid_argument("PowerTrace::append: sample rates differ");
  }
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
}

double PowerTrace::energyJoules() const noexcept {
  double sum = 0.0;
  for (double w : samples_) sum += w;
  return sum * dt_;
}

double PowerTrace::averageWatts() const noexcept {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double w : samples_) sum += w;
  return sum / static_cast<double>(samples_.size());
}

double PowerTrace::peakWatts() const noexcept {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double PowerTrace::minWatts() const noexcept {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double energySavings(const PowerTrace& baseline, const PowerTrace& optimized) {
  if (baseline.sampleCount() == 0 || optimized.sampleCount() == 0) {
    throw std::invalid_argument("energySavings: empty trace");
  }
  // Compare average power, not raw energy, so traces of slightly different
  // length (dropped last frame etc.) remain comparable.
  const double base = baseline.averageWatts();
  return base > 0.0 ? 1.0 - optimized.averageWatts() / base : 0.0;
}

}  // namespace anno::power
