// Power traces: time series of instantaneous power with energy integration.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace anno::power {

/// Uniformly sampled power trace.
class PowerTrace {
 public:
  PowerTrace() = default;
  explicit PowerTrace(double sampleIntervalSeconds)
      : dt_(sampleIntervalSeconds) {
    if (dt_ <= 0.0) {
      throw std::invalid_argument("PowerTrace: interval must be positive");
    }
  }

  void append(double watts) { samples_.push_back(watts); }
  void append(const PowerTrace& other);

  [[nodiscard]] double sampleIntervalSeconds() const noexcept { return dt_; }
  [[nodiscard]] std::size_t sampleCount() const noexcept {
    return samples_.size();
  }
  [[nodiscard]] double durationSeconds() const noexcept {
    return dt_ * static_cast<double>(samples_.size());
  }
  [[nodiscard]] const std::vector<double>& samples() const noexcept {
    return samples_;
  }

  /// Trapezoid-free rectangular integration (samples are averages over dt).
  [[nodiscard]] double energyJoules() const noexcept;

  [[nodiscard]] double averageWatts() const noexcept;
  [[nodiscard]] double peakWatts() const noexcept;
  [[nodiscard]] double minWatts() const noexcept;

 private:
  double dt_ = 1.0 / 20000.0;  ///< paper's DAQ: 20 kS/s
  std::vector<double> samples_;
};

/// Relative energy savings of `optimized` vs `baseline`; both traces must be
/// non-empty.  Positive means `optimized` used less energy.
[[nodiscard]] double energySavings(const PowerTrace& baseline,
                                   const PowerTrace& optimized);

}  // namespace anno::power
