// Telemetry under contention: the lock-free hot path must lose no
// increments and the scraping reader must never block writers or tear a
// value.  Runs under the `concurrency` ctest label, so the TSan
// configuration (-DANNO_SANITIZE=thread) exercises exactly these races.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "concurrency/thread_pool.h"
#include "core/annotate.h"
#include "core/engine_metrics.h"
#include "media/clipgen.h"
#include "telemetry/export.h"
#include "telemetry/metrics.h"

namespace anno {
namespace {

using telemetry::Registry;
using telemetry::Snapshot;

TEST(TelemetryStress, EightWritersOneScrapingReaderExactCounts) {
  constexpr int kWriters = 8;
  constexpr std::uint64_t kIncrementsPerWriter = 50000;
  Registry reg;
  telemetry::Counter& counter = reg.counter("anno_stress_total", {}, "");
  telemetry::Gauge& highWater = reg.gauge("anno_stress_high_water", {}, "");
  telemetry::Histogram& hist =
      reg.histogram("anno_stress_h", {0.25, 0.5, 0.75}, {}, "");

  std::atomic<bool> done{false};
  std::thread reader([&] {
    std::uint64_t last = 0;
    while (!done.load(std::memory_order_acquire)) {
      const Snapshot snap = telemetry::scrape(reg);
      const std::uint64_t seen = snap.counterValue("anno_stress_total");
      // Monotone: a scrape never observes the counter going backwards.
      EXPECT_GE(seen, last);
      last = seen;
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (std::uint64_t i = 1; i <= kIncrementsPerWriter; ++i) {
        counter.inc();
        highWater.updateMax(static_cast<std::int64_t>(w * kIncrementsPerWriter + i));
        hist.observe(static_cast<double>(i % 4) / 4.0);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();

  // Exact final values: nothing lost, nothing double-counted.
  constexpr std::uint64_t kTotal = kWriters * kIncrementsPerWriter;
  EXPECT_EQ(counter.value(), kTotal);
  EXPECT_EQ(highWater.value(),
            static_cast<std::int64_t>(kWriters * kIncrementsPerWriter));
  EXPECT_EQ(hist.count(), kTotal);
  const Snapshot snap = telemetry::scrape(reg);
  std::uint64_t bucketSum = 0;
  for (const telemetry::InstrumentSnapshot& ins : snap.instruments) {
    if (ins.name != "anno_stress_h") continue;
    for (std::uint64_t c : ins.histogram.counts) bucketSum += c;
  }
  EXPECT_EQ(bucketSum, kTotal);
}

TEST(TelemetryStress, ConcurrentRegistrationYieldsOneInstrument) {
  constexpr int kThreads = 8;
  Registry reg;
  std::vector<telemetry::Counter*> handles(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      handles[t] = &reg.counter("anno_race_total", {}, "");
      handles[t]->inc();
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(handles[t], handles[0]);
  EXPECT_EQ(reg.instrumentCount(), 1u);
  EXPECT_EQ(handles[0]->value(), static_cast<std::uint64_t>(kThreads));
}

TEST(TelemetryStress, PoolTelemetryCountsTasksAndQueueHighWater) {
  Registry reg;
  concurrency::attachPoolTelemetry(reg);
  {
    concurrency::ThreadPool pool(4);
    std::atomic<int> ran{0};
    pool.runChunked(64, [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran.load(), 64);
  }
  concurrency::detachPoolTelemetry();
  const Snapshot snap = telemetry::scrape(reg);
  EXPECT_EQ(snap.counterValue("anno_pool_tasks_run_total"), 64u);
  EXPECT_EQ(snap.counterValue("anno_pool_chunked_calls_total"), 1u);
  EXPECT_EQ(snap.counterValue("anno_pool_workers_started_total"), 3u);
  // The caller participates in its own chunked call, but is not GUARANTEED
  // a chunk -- under a sanitizer the workers can drain the batch before
  // the caller's loop claims one -- so only an upper bound holds here (the
  // serial-path test below pins the exact caller count).
  EXPECT_LE(snap.counterValue("anno_pool_caller_chunks_total"), 64u);
  // Queue high-water: 3 helper tasks were enqueued for one batch.
  for (const telemetry::InstrumentSnapshot& ins : snap.instruments) {
    if (ins.name != "anno_pool_queue_depth_high_water") continue;
    EXPECT_GE(ins.gaugeValue, 1);
    EXPECT_LE(ins.gaugeValue, 3);
    return;
  }
  FAIL() << "anno_pool_queue_depth_high_water not found";
}

TEST(TelemetryStress, SerialPoolPathCountsCallerChunks) {
  Registry reg;
  concurrency::attachPoolTelemetry(reg);
  {
    concurrency::ThreadPool pool(1);  // serial fast path: no workers
    std::atomic<int> ran{0};
    pool.runChunked(8, [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran.load(), 8);
  }
  concurrency::detachPoolTelemetry();
  const Snapshot snap = telemetry::scrape(reg);
  EXPECT_EQ(snap.counterValue("anno_pool_serial_calls_total"), 1u);
  EXPECT_EQ(snap.counterValue("anno_pool_tasks_run_total"), 8u);
  EXPECT_EQ(snap.counterValue("anno_pool_caller_chunks_total"), 8u);
  EXPECT_EQ(snap.counterValue("anno_pool_workers_started_total"), 0u);
}

/// Batch annotation with an attached observer is the system's real
/// concurrent-writer workload: clips annotate in parallel, every engine
/// feeds the same counters.  Totals must be exact regardless of threads.
TEST(TelemetryStress, BatchAnnotationObserverTotalsExact) {
  std::vector<media::VideoClip> clips;
  clips.push_back(media::generatePaperClip(media::PaperClip::kTheMovie,
                                           0.05, 48, 36));
  clips.push_back(media::generatePaperClip(media::PaperClip::kShrek2,
                                           0.05, 48, 36));
  clips.push_back(media::generatePaperClip(media::PaperClip::kIceAge,
                                           0.05, 48, 36));
  std::uint64_t expectedScenes = 0;
  std::uint64_t expectedFrames = 0;
  for (const media::VideoClip& clip : clips) {
    const core::AnnotationTrack t = core::annotateClip(clip, {});
    expectedScenes += t.scenes.size();
    expectedFrames += clip.frames.size();
  }
  for (unsigned threads : {1u, 2u, 8u}) {
    Registry reg;
    core::EngineTelemetry observer(reg);
    core::AnnotatorConfig cfg;
    cfg.observer = &observer;
    cfg.threads = threads;
    (void)core::annotateClips(clips, cfg);
    const Snapshot snap = telemetry::scrape(reg);
    EXPECT_EQ(snap.counterValue("anno_engine_scenes_closed_total"),
              expectedScenes)
        << "threads=" << threads;
    EXPECT_EQ(snap.counterValue("anno_engine_frames_total"), expectedFrames)
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace anno
