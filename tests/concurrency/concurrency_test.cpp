// Thread-pool primitives and the parallel annotation pipeline's determinism
// guarantee: for ANY thread count the parallel path must be bit-identical to
// the serial one (sharded histograms merged in frame order, slot writes, no
// atomics on bins).  These tests carry the `concurrency` ctest label so
// sanitized builds (-DANNO_SANITIZE=thread) can target them directly.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "concurrency/parallel.h"
#include "concurrency/thread_pool.h"
#include "core/annotate.h"
#include "media/clipgen.h"
#include "stream/server.h"

namespace anno {
namespace {

using core::AnnotationTrack;
using core::AnnotatorConfig;

TEST(ThreadPool, ResolveThreads) {
  EXPECT_GE(concurrency::resolveThreads(0), 1u);
  EXPECT_EQ(concurrency::resolveThreads(1), 1u);
  EXPECT_EQ(concurrency::resolveThreads(7), 7u);
}

TEST(ThreadPool, ConcurrencyCountsCaller) {
  concurrency::ThreadPool serial(1);
  EXPECT_EQ(serial.concurrency(), 1u);
  concurrency::ThreadPool four(4);
  EXPECT_EQ(four.concurrency(), 4u);
}

TEST(ThreadPool, RunChunkedExecutesEveryChunkExactlyOnce) {
  concurrency::ThreadPool pool(4);
  constexpr std::size_t kChunks = 250;
  std::vector<std::atomic<int>> hits(kChunks);
  pool.runChunked(kChunks, [&](std::size_t c) { hits[c].fetch_add(1); });
  for (std::size_t c = 0; c < kChunks; ++c) {
    EXPECT_EQ(hits[c].load(), 1) << "chunk " << c;
  }
}

TEST(ThreadPool, RunChunkedZeroChunksIsANoop) {
  concurrency::ThreadPool pool(2);
  bool ran = false;
  pool.runChunked(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, RunChunkedRethrowsLowestIndexedChunkException) {
  concurrency::ThreadPool pool(4);
  // Repeat to give scheduling a chance to reorder; the *observed* exception
  // must always come from the lowest-indexed throwing chunk.
  for (int rep = 0; rep < 20; ++rep) {
    try {
      pool.runChunked(32, [&](std::size_t c) {
        if (c == 5 || c == 11 || c == 29) {
          throw std::runtime_error(std::to_string(c));
        }
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "5");
    }
  }
}

TEST(Parallel, ParallelForCoversTheRange) {
  concurrency::ThreadPool pool(4);
  constexpr std::size_t kN = 1337;
  std::vector<int> marks(kN, 0);
  concurrency::parallelFor(&pool, kN, 16,
                           [&](std::size_t begin, std::size_t end) {
                             for (std::size_t i = begin; i < end; ++i) {
                               ++marks[i];
                             }
                           });
  EXPECT_EQ(std::accumulate(marks.begin(), marks.end(), 0),
            static_cast<int>(kN));
  EXPECT_EQ(*std::min_element(marks.begin(), marks.end()), 1);
}

TEST(Parallel, NullPoolRunsSerially) {
  std::size_t calls = 0;
  concurrency::parallelFor(nullptr, 100, 10,
                           [&](std::size_t begin, std::size_t end) {
                             ++calls;
                             EXPECT_EQ(begin, 0u);
                             EXPECT_EQ(end, 100u);
                           });
  EXPECT_EQ(calls, 1u);
}

TEST(Parallel, ReduceIsDeterministicForNonCommutativeMerge) {
  // String concatenation is order-sensitive: identical output across pool
  // sizes proves shards merge in chunk order, not completion order.
  const auto concat = [](concurrency::ThreadPool* pool) {
    return concurrency::parallelReduce(
        pool, 97, 8, std::string{},
        [](std::size_t begin, std::size_t end) {
          return "[" + std::to_string(begin) + "," + std::to_string(end) + ")";
        },
        [](std::string& acc, std::string&& shard) { acc += shard; });
  };
  const std::string serial = concat(nullptr);
  for (unsigned threads : {1u, 2u, 8u}) {
    concurrency::ThreadPool pool(threads);
    for (int rep = 0; rep < 10; ++rep) {
      EXPECT_EQ(concat(&pool), serial) << threads << " threads, rep " << rep;
    }
  }
}

TEST(Parallel, NestedParallelismOnOnePoolCompletes) {
  // A pool task that itself fans out on the same pool must not deadlock:
  // the caller participates, so nested calls degrade to serial at worst.
  concurrency::ThreadPool pool(4);
  std::vector<std::uint64_t> sums(8, 0);
  concurrency::parallelFor(&pool, sums.size(), 1,
                           [&](std::size_t begin, std::size_t end) {
                             for (std::size_t i = begin; i < end; ++i) {
                               sums[i] = concurrency::parallelReduce(
                                   &pool, 1000, 50, std::uint64_t{0},
                                   [](std::size_t b, std::size_t e) {
                                     std::uint64_t s = 0;
                                     for (std::size_t v = b; v < e; ++v) s += v;
                                     return s;
                                   },
                                   [](std::uint64_t& acc, std::uint64_t&& s) {
                                     acc += s;
                                   });
                             }
                           });
  for (const std::uint64_t s : sums) EXPECT_EQ(s, 999u * 1000u / 2u);
}

// ---------------------------------------------------------------------------
// Determinism of the annotation pipeline across thread counts.

media::VideoClip trailerClip() {
  return media::generatePaperClip(media::PaperClip::kTheMovie, 0.15, 96, 72);
}

media::VideoClip creditsClip() {
  media::ClipProfile profile;
  profile.name = "credits";
  profile.width = 96;
  profile.height = 72;
  profile.fps = 12.0;
  profile.seed = 3;
  profile.scenes.push_back(media::creditsScene(2.0));
  return media::generateClip(profile);
}

TEST(Determinism, ProfileClipBitIdenticalAcrossThreadCounts) {
  const media::VideoClip clip = trailerClip();
  const std::vector<media::FrameStats> serial = media::profileClip(clip);
  for (unsigned threads : {1u, 2u, 8u}) {
    concurrency::ThreadPool pool(threads);
    EXPECT_EQ(media::profileClip(clip, &pool), serial)
        << threads << " threads";
  }
}

TEST(Determinism, AnnotateClipBitIdenticalAcrossThreadCounts) {
  const media::VideoClip clip = trailerClip();
  AnnotatorConfig serialCfg;
  serialCfg.threads = 1;
  const AnnotationTrack serial = annotateClip(clip, serialCfg);
  for (unsigned threads : {2u, 8u}) {
    AnnotatorConfig cfg = serialCfg;
    cfg.threads = threads;
    EXPECT_EQ(annotateClip(clip, cfg), serial) << threads << " threads";
  }
}

TEST(Determinism, HistogramEmdDetectorPathIsThreadCountInvariant) {
  const media::VideoClip clip = trailerClip();
  AnnotatorConfig cfg;
  cfg.detector = core::SceneDetector::kHistogramEmd;
  cfg.threads = 1;
  const AnnotationTrack serial = annotateClip(clip, cfg);
  for (unsigned threads : {2u, 8u}) {
    cfg.threads = threads;
    EXPECT_EQ(annotateClip(clip, cfg), serial) << threads << " threads";
  }
}

TEST(Determinism, CreditsProtectionPathIsThreadCountInvariant) {
  const media::VideoClip clip = creditsClip();
  AnnotatorConfig cfg;
  cfg.protectCredits = true;
  cfg.threads = 1;
  const AnnotationTrack serial = annotateClip(clip, cfg);
  // Sanity: the credits heuristic actually fired (ceiling above the text
  // luminance, which an unprotected 20% budget would clip away).
  ASSERT_FALSE(serial.scenes.empty());
  EXPECT_GT(static_cast<int>(serial.scenes[0].safeLuma.back()), 200);
  for (unsigned threads : {2u, 8u}) {
    cfg.threads = threads;
    EXPECT_EQ(annotateClip(clip, cfg), serial) << threads << " threads";
  }
}

TEST(Determinism, PerFrameGranularityIsThreadCountInvariant) {
  const media::VideoClip clip = trailerClip();
  AnnotatorConfig cfg;
  cfg.granularity = core::Granularity::kPerFrame;
  cfg.threads = 1;
  const AnnotationTrack serial = annotateClip(clip, cfg);
  EXPECT_EQ(serial.scenes.size(), clip.frameCount());
  for (unsigned threads : {2u, 8u}) {
    cfg.threads = threads;
    EXPECT_EQ(annotateClip(clip, cfg), serial) << threads << " threads";
  }
}

TEST(Determinism, ZeroMeansHardwareConcurrency) {
  const media::VideoClip clip = trailerClip();
  AnnotatorConfig serialCfg;
  serialCfg.threads = 1;
  AnnotatorConfig hwCfg;
  hwCfg.threads = 0;  // shared hardware-sized pool
  EXPECT_EQ(annotateClip(clip, hwCfg), annotateClip(clip, serialCfg));
}

TEST(Batch, AnnotateClipsMatchesPerClipAnnotation) {
  std::vector<media::VideoClip> clips;
  clips.push_back(trailerClip());
  clips.push_back(creditsClip());
  clips.push_back(
      media::generatePaperClip(media::PaperClip::kIceAge, 0.1, 96, 72));

  AnnotatorConfig cfg;
  cfg.protectCredits = true;
  cfg.threads = 1;
  std::vector<AnnotationTrack> serial;
  for (const media::VideoClip& clip : clips) {
    serial.push_back(annotateClip(clip, cfg));
  }

  for (unsigned threads : {1u, 2u, 8u}) {
    AnnotatorConfig batchCfg = cfg;
    batchCfg.threads = threads;
    std::vector<std::vector<media::FrameStats>> stats;
    const std::vector<AnnotationTrack> tracks =
        core::annotateClips(clips, batchCfg, &stats);
    ASSERT_EQ(tracks.size(), clips.size());
    ASSERT_EQ(stats.size(), clips.size());
    for (std::size_t i = 0; i < clips.size(); ++i) {
      EXPECT_EQ(tracks[i], serial[i]) << "clip " << i << ", " << threads
                                      << " threads";
      EXPECT_EQ(stats[i], media::profileClip(clips[i]))
          << "clip " << i << ", " << threads << " threads";
    }
  }
}

TEST(Batch, AnnotateClipsPropagatesValidationErrors) {
  std::vector<media::VideoClip> clips(2);
  clips[0] = trailerClip();
  clips[1].name = "empty";  // no frames -> validateClip throws
  AnnotatorConfig cfg;
  cfg.threads = 4;
  EXPECT_THROW((void)core::annotateClips(clips, cfg), std::invalid_argument);
}

TEST(Batch, MediaServerBatchIngestMatchesSerialIngest) {
  std::vector<media::VideoClip> clips;
  clips.push_back(trailerClip());
  clips.push_back(
      media::generatePaperClip(media::PaperClip::kShrek2, 0.1, 96, 72));

  AnnotatorConfig serialCfg;
  serialCfg.threads = 1;
  stream::MediaServer serialServer(serialCfg);
  for (const media::VideoClip& clip : clips) serialServer.addClip(clip);

  AnnotatorConfig parallelCfg;
  parallelCfg.threads = 8;
  stream::MediaServer batchServer(parallelCfg);
  batchServer.addClips(clips);

  ASSERT_EQ(batchServer.catalog(), serialServer.catalog());
  for (const std::string& name : serialServer.catalog()) {
    EXPECT_EQ(batchServer.entry(name).track, serialServer.entry(name).track);
    EXPECT_EQ(batchServer.entry(name).sketches,
              serialServer.entry(name).sketches);
    EXPECT_EQ(batchServer.entry(name).original.frames,
              serialServer.entry(name).original.frames);
  }
}

}  // namespace
}  // namespace anno
