// Compensation-backend suite: the ANN1 backend/tone-curve chunks must
// round-trip exactly, degrade to full-backlight when damaged, and stay
// invisible on default linear tracks; the fingerprint must key every
// backend (and only its ACTIVE knobs) so distinct backends can never alias
// in the TrackCache.
#include "compensate/backend.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/anno_codec.h"
#include "core/annotate.h"
#include "core/engine.h"
#include "core/runtime.h"
#include "core/track_cache.h"
#include "display/device.h"
#include "media/clipgen.h"

namespace anno::core {
namespace {

media::VideoClip testClip() {
  return media::generatePaperClip(media::PaperClip::kShrek2, 0.05, 48, 36);
}

AnnotationTrack annotateWith(const compensate::BackendConfig& backend) {
  AnnotatorConfig cfg;
  cfg.backend = backend;
  return annotateClip(testClip(), cfg);
}

TEST(BackendCodec, HebsTrackRoundTripsWithCurves) {
  compensate::BackendConfig backend;
  backend.kind = compensate::BackendKind::kHebs;
  const AnnotationTrack track = annotateWith(backend);
  ASSERT_EQ(track.backendKind, compensate::BackendKind::kHebs);
  ASSERT_FALSE(track.scenes.empty());
  for (const SceneAnnotation& s : track.scenes) {
    ASSERT_EQ(s.perceivedCurves.size(), track.qualityLevels.size());
  }
  const std::vector<std::uint8_t> bytes = encodeTrack(track);
  EXPECT_EQ(decodeTrack(bytes), track);
  const LenientDecodeResult lenient = decodeTrackLenient(bytes);
  ASSERT_TRUE(lenient.usable);
  EXPECT_TRUE(lenient.damage.intact());
  EXPECT_EQ(lenient.track, track);
}

TEST(BackendCodec, SpatialScalingFieldsRoundTrip) {
  compensate::BackendConfig backend;
  backend.kind = compensate::BackendKind::kSpatialScaling;
  backend.spatialScale = 0.5;
  const AnnotationTrack track = annotateWith(backend);
  ASSERT_EQ(track.backendKind, compensate::BackendKind::kSpatialScaling);
  ASSERT_EQ(track.spatialScale, 0.5);
  const AnnotationTrack decoded = decodeTrack(encodeTrack(track));
  EXPECT_EQ(decoded.backendKind, compensate::BackendKind::kSpatialScaling);
  EXPECT_EQ(decoded.spatialScale, 0.5);
  EXPECT_EQ(decoded, track);
}

TEST(BackendCodec, DamagedCurveChunkFallsBackToFullBacklight) {
  compensate::BackendConfig backend;
  backend.kind = compensate::BackendKind::kHebs;
  const AnnotationTrack track = annotateWith(backend);
  std::vector<std::uint8_t> bytes = encodeTrack(track);
  // The stream ends with the last scene group's tone-curve chunk; flipping
  // a payload byte kills that chunk's CRC but nothing else.
  bytes[bytes.size() - 3] ^= 0x40;
  const LenientDecodeResult lenient = decodeTrackLenient(bytes);
  ASSERT_TRUE(lenient.usable);
  EXPECT_TRUE(lenient.damage.headerIntact);
  EXPECT_GE(lenient.damage.damagedChunks, 1u);
  // Curve loss is not scene loss: the safe-luma scene groups all survived.
  EXPECT_TRUE(lenient.damage.repairedSpans.empty());
  EXPECT_EQ(lenient.track.scenes.size(), track.scenes.size());
  std::size_t lostCurves = 0;
  for (const SceneAnnotation& s : lenient.track.scenes) {
    if (s.perceivedCurves.empty()) ++lostCurves;
  }
  ASSERT_GT(lostCurves, 0u);
  // A HEBS decision for a curve-less scene must be the conservative
  // full-backlight default, never a stale or garbage dim level.
  const std::unique_ptr<const compensate::Backend> be =
      backendForTrack(lenient.track);
  const display::DeviceModel device =
      display::makeDevice(display::KnownDevice::kIpaq5555);
  for (std::size_t s = 0; s < lenient.track.scenes.size(); ++s) {
    if (!lenient.track.scenes[s].perceivedCurves.empty()) continue;
    const compensate::CompensationDecision d =
        decideForScene(*be, lenient.track, s, 2, device);
    EXPECT_EQ(d.plan.backlightLevel, 255);
    EXPECT_EQ(d.plan.gainK, 1.0);
    EXPECT_EQ(d.pixelCurve, nullptr);
  }
}

TEST(BackendCodec, DefaultLinearTracksCarryNoBackendChunks) {
  // Legacy byte-identity: a default-config track's ANN1 stream must
  // contain exactly the chunks the pre-backend encoder wrote -- one
  // header plus one chunk per 16-scene group -- and both framings must
  // decode to a track with the default backend fields.
  const AnnotationTrack track = annotateWith({});
  ASSERT_EQ(track.backendKind, compensate::BackendKind::kLinearGain);
  ASSERT_EQ(track.spatialScale, 1.0);
  for (const SceneAnnotation& s : track.scenes) {
    ASSERT_TRUE(s.perceivedCurves.empty());
  }
  const std::vector<std::uint8_t> bytes = encodeTrack(track);
  const LenientDecodeResult lenient = decodeTrackLenient(bytes);
  ASSERT_TRUE(lenient.usable);
  EXPECT_TRUE(lenient.damage.intact());
  EXPECT_EQ(lenient.damage.totalChunks,
            1 + (track.scenes.size() + 15) / 16);
  EXPECT_EQ(lenient.track, track);
  // ANN0 has no chunk vocabulary at all; it must still round-trip the
  // default track exactly (backend fields land on their defaults).
  const AnnotationTrack legacy = decodeTrack(encodeTrackLegacy(track));
  EXPECT_EQ(legacy.backendKind, compensate::BackendKind::kLinearGain);
  EXPECT_EQ(legacy.spatialScale, 1.0);
  EXPECT_EQ(legacy, track);
}

TEST(BackendFingerprint, KindAlwaysFeedsTheHash) {
  AnnotatorConfig base;
  AnnotatorConfig hebs;
  hebs.backend.kind = compensate::BackendKind::kHebs;
  AnnotatorConfig spatial;
  spatial.backend.kind = compensate::BackendKind::kSpatialScaling;
  EXPECT_NE(base.fingerprint(), hebs.fingerprint());
  EXPECT_NE(base.fingerprint(), spatial.fingerprint());
  EXPECT_NE(hebs.fingerprint(), spatial.fingerprint());
}

TEST(BackendFingerprint, KnobsFeedTheHashOnlyWhileActive) {
  // hebsEqualizationWeight is dormant under linear/spatial, live under
  // HEBS; spatialScale is dormant under linear/HEBS, live under spatial.
  // Dormant knobs must not split the cache key (they cannot change the
  // plan), live knobs must.
  AnnotatorConfig linear;
  AnnotatorConfig linearTweaked = linear;
  linearTweaked.backend.hebsEqualizationWeight = 0.9;
  linearTweaked.backend.spatialScale = 0.33;
  EXPECT_EQ(linear.fingerprint(), linearTweaked.fingerprint());

  AnnotatorConfig hebs;
  hebs.backend.kind = compensate::BackendKind::kHebs;
  AnnotatorConfig hebsWeight = hebs;
  hebsWeight.backend.hebsEqualizationWeight = 0.9;
  EXPECT_NE(hebs.fingerprint(), hebsWeight.fingerprint());
  AnnotatorConfig hebsScale = hebs;
  hebsScale.backend.spatialScale = 0.33;
  EXPECT_EQ(hebs.fingerprint(), hebsScale.fingerprint());

  AnnotatorConfig spatial;
  spatial.backend.kind = compensate::BackendKind::kSpatialScaling;
  AnnotatorConfig spatialScale = spatial;
  spatialScale.backend.spatialScale = 0.33;
  EXPECT_NE(spatial.fingerprint(), spatialScale.fingerprint());
  AnnotatorConfig spatialWeight = spatial;
  spatialWeight.backend.hebsEqualizationWeight = 0.9;
  EXPECT_EQ(spatial.fingerprint(), spatialWeight.fingerprint());
}

TEST(BackendCache, DistinctBackendsNeverAlias) {
  // The acceptance criterion verbatim: three tenants identical except for
  // the backend must occupy three separate TrackCache entries, each
  // filled once.
  TrackCache cache;
  const media::VideoClip clip = testClip();
  std::vector<AnnotatorConfig> tenants(3);
  tenants[1].backend.kind = compensate::BackendKind::kHebs;
  tenants[2].backend.kind = compensate::BackendKind::kSpatialScaling;
  std::vector<CachedTrackPtr> held;
  for (const AnnotatorConfig& cfg : tenants) {
    const TrackKey key{"shrek2@1", cfg.fingerprint()};
    held.push_back(cache.getOrFill(key, [&] {
      auto cached = std::make_shared<CachedTrack>();
      cached->track = annotateClip(clip, cfg);
      return cached;
    }));
    // Same tenant again: served from cache, no second fill.
    EXPECT_EQ(cache.getOrFill(key, [&]() -> CachedTrackPtr {
                ADD_FAILURE() << "refill for an identical tenant";
                return nullptr;
              }),
              held.back());
  }
  EXPECT_EQ(cache.stats().fills, 3u);
  EXPECT_EQ(held[0]->track.backendKind, compensate::BackendKind::kLinearGain);
  EXPECT_EQ(held[1]->track.backendKind, compensate::BackendKind::kHebs);
  EXPECT_EQ(held[2]->track.backendKind,
            compensate::BackendKind::kSpatialScaling);
}

}  // namespace
}  // namespace anno::core
