// soak::CapacityModel: fit on one measured soak, predict a held-out mix,
// and stay within tolerance of a fresh measured run -- the "measure once,
// answer capacity questions offline" contract the fleet_soak tool gates on.
#include "soak/capacity.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "soak/driver.h"
#include "soak/traffic_mix.h"

namespace anno::soak {
namespace {

SoakConfig fitConfig() {
  SoakConfig cfg;
  cfg.mix.sessions = 1200;
  cfg.mix.daySeconds = 40.0;
  cfg.mix.tenantCount = 6;
  return cfg;
}

TEST(CapacityModel, SelfPredictionMatchesFitRun) {
  const SoakConfig cfg = fitConfig();
  const FleetSoakReport report = runSoak(cfg);
  const CapacityModel model = CapacityModel::fit(report);
  const CapacityPrediction prediction =
      model.predict(generateTrafficMix(cfg.mix));
  EXPECT_EQ(prediction.uncoveredSessions, 0u);
  // Predicting the very mix the model was fit on composes each cell's own
  // rates over its own counts: the per-session aggregates reproduce.
  const CapacityValidation v =
      CapacityModel::validate(prediction, report, /*tolerance=*/0.01);
  EXPECT_TRUE(v.pass);
  for (const MetricCheck& c : v.checks) {
    EXPECT_TRUE(c.within) << c.name << ": predicted " << c.predicted
                          << " measured " << c.measured;
  }
}

TEST(CapacityModel, HeldOutSeedWithinTenPercent) {
  const SoakConfig cfg = fitConfig();
  const CapacityModel model = CapacityModel::fit(runSoak(cfg));
  SoakConfig holdout = cfg;
  holdout.mix.seed = cfg.mix.seed ^ 0x9E3779B97F4A7C15ULL;
  holdout.mix.sessions = 400;
  const CapacityPrediction prediction =
      model.predict(generateTrafficMix(holdout.mix));
  const FleetSoakReport measured = runSoak(holdout);
  const CapacityValidation v =
      CapacityModel::validate(prediction, measured, /*tolerance=*/0.10);
  EXPECT_TRUE(v.pass);
  EXPECT_EQ(v.checks.size(), 6u);
  for (const MetricCheck& c : v.checks) {
    EXPECT_TRUE(c.within) << c.name << ": predicted " << c.predicted
                          << " measured " << c.measured << " ("
                          << 100.0 * c.relativeError << "% err)";
  }
}

TEST(CapacityModel, StructuralCachePredictionIsExact) {
  const SoakConfig cfg = fitConfig();
  const FleetSoakReport report = runSoak(cfg);
  const CapacityModel model = CapacityModel::fit(report);
  const CapacityPrediction prediction =
      model.predict(generateTrafficMix(cfg.mix));
  // Engine passes and stream groups are exact functions of the mix, not
  // fitted rates: the prediction must hit the measured run dead on.  The
  // hit RATE is near-exact, not exact: its lookup-count denominator
  // (sessions + unique stream groups) is a model of the serve path, and a
  // handful of lookups shift with session interleaving (e.g. groups whose
  // only session leaves before materialization).
  EXPECT_EQ(prediction.uniqueAnnotationKeys, report.cacheFills);
  EXPECT_EQ(prediction.uniqueStreams, report.uniqueStreams);
  EXPECT_NEAR(prediction.cacheHitRate, report.cacheHitRate, 0.01);
}

TEST(CapacityModel, UncoveredCellsFallBackToGlobalRates) {
  SoakConfig narrow = fitConfig();
  narrow.mix.tenantCount = 2;
  const CapacityModel model = CapacityModel::fit(runSoak(narrow));
  SoakConfig wide = fitConfig();
  wide.mix.tenantCount = 8;
  const CapacityPrediction prediction =
      model.predict(generateTrafficMix(wide.mix));
  EXPECT_GT(prediction.uncoveredSessions, 0u);
  EXPECT_GT(prediction.servedHours, 0.0);
  EXPECT_GT(prediction.wattsSavedPerMillionSessions, 0.0);
}

TEST(CapacityModel, QueriesAnswerSanely) {
  const FleetSoakReport report = runSoak(fitConfig());
  const CapacityModel model = CapacityModel::fit(report);
  EXPECT_GT(model.joulesSavedPerServedHour(0), 0.0);
  EXPECT_EQ(model.joulesSavedPerServedHour(999), 0.0);
  EXPECT_GE(model.meanFillSeconds(), 0.0);
  EXPECT_FALSE(model.cells().empty());
  // More sharing -> more sessions per engine core.
  EXPECT_GE(model.sessionsPerEngineCoreHour(0.99),
            model.sessionsPerEngineCoreHour(0.50));
}

TEST(CapacityModel, FitRejectsEmptyReport) {
  EXPECT_THROW((void)CapacityModel::fit(FleetSoakReport{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace anno::soak
